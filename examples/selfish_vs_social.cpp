// Selfish vs social: how much does decentralization cost?
//
//   ./selfish_vs_social [--users 10] [--skew 10]
//
// The introduction frames three operating points: the social optimum
// (GOS), the per-user Nash equilibrium (NASH), and the per-job Wardrop
// equilibrium (IOS). This example sweeps utilization and reports the
// "price of anarchy" style ratios D_NASH/D_GOS and D_IOS/D_GOS together
// with the fairness each point delivers — the quantitative version of the
// paper's argument that NASH buys decentralization and user-optimality at
// a tiny efficiency premium (cf. Roughgarden & Tardos's 4/3 bound for
// linear costs; M/M/1 costs are not linear, so watch the tail).
#include <cstdio>

#include "schemes/gos.hpp"
#include "schemes/ios.hpp"
#include "schemes/metrics.hpp"
#include "schemes/nash.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "workload/configs.hpp"

int main(int argc, char** argv) {
  using namespace nashlb;
  const util::Args args(argc, argv);
  const auto users = static_cast<std::size_t>(args.get_int("users", 10));
  const double skew = args.get_double("skew", 10.0);

  std::printf("16 computers (2 fast @ %.0fx, 14 slow), %zu users\n\n",
              skew, users);

  util::Table table({"utilization", "D_GOS (s)", "D_NASH/D_GOS",
                     "D_IOS/D_GOS", "fair GOS", "fair NASH", "fair IOS"});
  for (int pct = 10; pct <= 90; pct += 10) {
    const double rho = pct / 100.0;
    core::Instance inst =
        workload::skewness_instance(skew, rho);
    if (users != 10) {
      const double phi = inst.total_arrival_rate();
      inst.phi.clear();
      for (double f : workload::user_fractions(users)) {
        inst.phi.push_back(f * phi);
      }
    }
    const schemes::Metrics gos =
        schemes::evaluate(inst, schemes::GlobalOptimalScheme().solve(inst));
    const schemes::Metrics nash = schemes::evaluate(
        inst, schemes::NashScheme(core::Initialization::Proportional, 1e-6)
                  .solve(inst));
    const schemes::Metrics ios = schemes::evaluate(
        inst, schemes::IndividualOptimalScheme().solve(inst));
    table.add_row(
        {util::format_percent(rho),
         util::format_fixed(gos.overall_response_time, 4),
         util::format_fixed(
             nash.overall_response_time / gos.overall_response_time, 3),
         util::format_fixed(
             ios.overall_response_time / gos.overall_response_time, 3),
         util::format_fixed(gos.fairness, 3),
         util::format_fixed(nash.fairness, 3),
         util::format_fixed(ios.fairness, 3)});
  }
  std::printf("%s\n", table.str().c_str());
  std::printf(
      "reading: NASH's efficiency premium over GOS stays small while\n"
      "delivering fairness ~1 and needing no central authority; the\n"
      "per-job (IOS) equilibrium pays more, especially at medium skew.\n");
  return 0;
}
