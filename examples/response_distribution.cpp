// Response-time *distributions* under different schemes — what the means
// in the paper's figures hide.
//
//   ./response_distribution [--utilization 0.6] [--scheme NASH]
//                           [--scheme2 PS] [--horizon 4000]
//
// Simulates the Table 1 system under two schemes and renders the
// response-time histograms side by side (plus tail percentiles computed
// from the streamed samples). Two schemes with similar means can differ
// sharply in the tail — the p99 a user actually experiences.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "schemes/registry.hpp"
#include "simmodel/system_sim.hpp"
#include "stats/histogram.hpp"
#include "util/cli.hpp"
#include "workload/configs.hpp"

namespace {

using namespace nashlb;

struct DistributionReport {
  stats::Histogram histogram{0.0, 0.5, 25};
  std::vector<double> samples;  // for exact percentiles
  double mean = 0.0;
};

DistributionReport run(const core::Instance& inst, const std::string& name,
                       double horizon) {
  DistributionReport report;
  const schemes::SchemePtr scheme = schemes::make_scheme(name);
  const core::StrategyProfile profile = scheme->solve(inst);
  simmodel::SimConfig cfg;
  cfg.horizon = horizon;
  cfg.warmup = horizon * 0.05;
  cfg.on_sample = [&](std::size_t, double r) {
    report.histogram.add(r);
    report.samples.push_back(r);
  };
  const simmodel::SimRunResult res = simmodel::simulate(inst, profile, cfg);
  report.mean = res.overall_mean_response;
  std::sort(report.samples.begin(), report.samples.end());
  return report;
}

double percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const auto idx = static_cast<std::size_t>(
      p * static_cast<double>(sorted.size() - 1));
  return sorted[idx];
}

}  // namespace

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  const double utilization = args.get_double("utilization", 0.6);
  const std::string scheme_a = args.get("scheme", "NASH");
  const std::string scheme_b = args.get("scheme2", "PS");
  const double horizon = args.get_double("horizon", 4000.0);

  const core::Instance inst = workload::table1_instance(utilization);
  std::printf("Table 1 system at %.0f%% utilization; %s vs %s; "
              "%.0f simulated seconds\n\n",
              100.0 * utilization, scheme_a.c_str(), scheme_b.c_str(),
              horizon);

  const DistributionReport a = run(inst, scheme_a, horizon);
  const DistributionReport b = run(inst, scheme_b, horizon);

  std::printf("%s response-time distribution (%zu jobs):\n%s\n",
              scheme_a.c_str(), a.samples.size(),
              a.histogram.ascii(40).c_str());
  std::printf("%s response-time distribution (%zu jobs):\n%s\n",
              scheme_b.c_str(), b.samples.size(),
              b.histogram.ascii(40).c_str());

  std::printf("           %10s  %10s\n", scheme_a.c_str(), scheme_b.c_str());
  std::printf("mean       %10.4f  %10.4f\n", a.mean, b.mean);
  for (double p : {0.5, 0.9, 0.99}) {
    std::printf("p%-8.0f  %10.4f  %10.4f\n", p * 100.0,
                percentile(a.samples, p), percentile(b.samples, p));
  }
  std::printf(
      "\nreading: scheme choice moves the whole distribution, not just\n"
      "the mean — the tail gap is typically wider than the mean gap.\n");
  return 0;
}
