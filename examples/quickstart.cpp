// Quickstart: compute the Nash-equilibrium load balancing for a small
// heterogeneous cluster and inspect it.
//
//   ./quickstart [--utilization 0.6] [--eps 1e-6]
//
// Walks through the library's core loop:
//   1. describe the system (computers' rates, users' arrival rates);
//   2. run the NASH scheme (greedy best-reply dynamics, §3 of the paper);
//   3. verify the result is a Nash equilibrium;
//   4. read each user's strategy and expected response time;
//   5. sanity-check against the simple proportional allocation.
#include <cstdio>

#include "core/equilibrium.hpp"
#include "schemes/metrics.hpp"
#include "schemes/nash.hpp"
#include "schemes/ps.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace nashlb;
  const util::Args args(argc, argv);
  const double utilization = args.get_double("utilization", 0.6);
  const double eps = args.get_double("eps", 1e-6);

  // 1. The system: four computers (one fast, one medium, two slow)
  //    shared by three users of very different sizes.
  core::Instance inst;
  inst.mu = {100.0, 50.0, 10.0, 10.0};               // jobs/sec
  const double phi_total = utilization * 170.0;      // total demand
  inst.phi = {0.6 * phi_total, 0.3 * phi_total, 0.1 * phi_total};
  inst.validate();

  std::printf("system: 4 computers (100/50/10/10 jobs/s), 3 users, "
              "utilization %.0f%%\n\n", 100.0 * utilization);

  // 2. Solve for the Nash equilibrium.
  const schemes::NashScheme nash(core::Initialization::Proportional, eps);
  const core::DynamicsResult trace = nash.solve_with_trace(inst);
  std::printf("NASH converged in %zu best-reply rounds (eps = %g)\n\n",
              trace.iterations, eps);

  // 3. Verify: nobody can gain by deviating unilaterally.
  const double gain = core::max_best_reply_gain(inst, trace.profile);
  std::printf("equilibrium certificate: max unilateral gain = %.2e s %s\n\n",
              gain, gain < 1e-6 ? "(Nash equilibrium)" : "(NOT converged!)");

  // 4. Per-user strategies and response times.
  util::Table table({"user", "jobs/s", "-> c0", "-> c1", "-> c2", "-> c3",
                     "E[response] (s)"});
  const schemes::Metrics m = schemes::evaluate(inst, trace.profile);
  for (std::size_t j = 0; j < inst.num_users(); ++j) {
    table.add_row({std::to_string(j + 1),
                   util::format_fixed(inst.phi[j], 1),
                   util::format_fixed(trace.profile.at(j, 0), 3),
                   util::format_fixed(trace.profile.at(j, 1), 3),
                   util::format_fixed(trace.profile.at(j, 2), 3),
                   util::format_fixed(trace.profile.at(j, 3), 3),
                   util::format_fixed(m.user_response_times[j], 4)});
  }
  std::printf("%s\n", table.str().c_str());

  // 5. Compare with the naive proportional split.
  const schemes::Metrics ps =
      schemes::evaluate(inst, schemes::ProportionalScheme().solve(inst));
  std::printf("overall expected response time: NASH %.4f s vs "
              "proportional %.4f s (%.0f%% better)\n",
              m.overall_response_time, ps.overall_response_time,
              100.0 * (1.0 - m.overall_response_time /
                                 ps.overall_response_time));
  std::printf("fairness index: NASH %.3f, proportional %.3f\n",
              m.fairness, ps.fairness);
  return 0;
}
