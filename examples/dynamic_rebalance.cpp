// Dynamic re-balancing: the deployment mode of §3 — "the execution of
// this algorithm is initiated periodically or when the system parameters
// are changed".
//
//   ./dynamic_rebalance [--epochs 8] [--drift 0.35]
//
// A day in the life of a 16-computer system: every epoch the users'
// arrival rates drift (diurnal load swing). At each epoch boundary the
// users re-run the distributed NASH ring protocol starting from the
// *previous* equilibrium — which, like NASH_P's warm start, re-converges
// in a handful of rounds. The example reports per-epoch re-convergence
// cost and the response-time penalty of NOT re-balancing (keeping the
// stale strategy).
#include <cmath>
#include <cstdio>

#include "core/cost.hpp"
#include "core/dynamics.hpp"
#include "schemes/metrics.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "workload/configs.hpp"

int main(int argc, char** argv) {
  using namespace nashlb;
  const util::Args args(argc, argv);
  const long epochs = args.get_int("epochs", 8);
  const double drift = args.get_double("drift", 0.35);

  const std::vector<double> mu = workload::table1_rates();
  const std::vector<double> q = workload::default_user_fractions();

  std::printf("16-computer system; 10 users; utilization swings "
              "0.6 +/- %.2f over %ld epochs\n\n", 0.25 * drift * 2, epochs);

  util::Table table({"epoch", "utilization", "rounds to re-converge",
                     "E[resp] rebalanced (s)", "E[resp] stale (s)",
                     "stale penalty"});

  core::Instance inst = workload::table1_instance(0.6);
  core::DynamicsOptions opts;
  opts.tolerance = 1e-6;
  core::DynamicsResult eq = core::best_reply_dynamics(inst, opts);
  core::StrategyProfile stale = eq.profile;  // never re-balanced again

  for (long e = 1; e <= epochs; ++e) {
    // Diurnal swing of total demand around 60% utilization.
    const double swing =
        0.6 + 0.25 * drift *
                  std::sin(2.0 * 3.14159265358979 * static_cast<double>(e) /
                           static_cast<double>(epochs));
    const core::Instance next = workload::make_instance(mu, q, swing);

    // Warm re-start from the previous equilibrium (what a real system
    // does when "the system parameters are changed").
    const core::DynamicsResult re =
        core::best_reply_dynamics_from(next, eq.profile, opts);

    const double d_re = core::overall_response_time(next, re.profile);
    const double d_stale = core::overall_response_time(next, stale);
    const std::string penalty =
        std::isfinite(d_stale)
            ? util::format_percent(d_stale / d_re - 1.0, 1)
            : "overloaded!";
    table.add_row({std::to_string(e), util::format_percent(swing, 1),
                   std::to_string(re.iterations),
                   util::format_fixed(d_re, 4),
                   std::isfinite(d_stale) ? util::format_fixed(d_stale, 4)
                                          : "inf",
                   penalty});
    eq = re;
    inst = next;
  }
  std::printf("%s\n", table.str().c_str());
  std::printf(
      "warm re-starts re-converge in a handful of rounds (the previous\n"
      "equilibrium is an excellent initialization), while a stale strategy\n"
      "pays a growing penalty as the load drifts away from its epoch.\n");
  return 0;
}
