// Multi-core equilibrium: the game beyond M/M/1, using the generic
// convex best-reply solver.
//
//   ./multicore_equilibrium [--users 6] [--utilization 0.6]
//
// A mixed fleet: a 16-core box, a pair of 4-core boxes, and one very
// fast single-core machine. Each node is an M/M/c queue (one shared
// run queue per node, Erlang-C waiting). The paper's closed-form OPTIMAL
// no longer applies — the KKT best-reply solver does — and the selfish
// users still settle into an equilibrium. The example prints the
// per-node equilibrium flows and contrasts them with a naive
// capacity-proportional split.
#include <cstdio>
#include <memory>
#include <vector>

#include "core/convex_reply.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace nashlb;
  const util::Args args(argc, argv);
  const auto users = static_cast<std::size_t>(args.get_int("users", 6));
  const double utilization = args.get_double("utilization", 0.6);

  struct Node {
    const char* name;
    unsigned cores;
    double core_rate;
  };
  const std::vector<Node> nodes{
      {"batch-16x5", 16, 5.0},    // 16 cores x 5 jobs/s = 80
      {"mid-4x15 (a)", 4, 15.0},  // 60
      {"mid-4x15 (b)", 4, 15.0},  // 60
      {"turbo-1x100", 1, 100.0},  // 100
  };

  std::vector<core::DelayModelPtr> models;
  double capacity = 0.0;
  for (const Node& node : nodes) {
    models.push_back(
        std::make_shared<core::MMCDelay>(node.core_rate, node.cores));
    capacity += node.core_rate * node.cores;
  }
  const double phi_total = utilization * capacity;
  const std::vector<double> phi(users, phi_total / static_cast<double>(users));

  std::printf("fleet capacity %.0f jobs/s, %zu users, utilization %.0f%%\n\n",
              capacity, users, 100.0 * utilization);

  const core::GenericDynamicsResult eq =
      core::generic_best_reply_dynamics(models, phi, 1e-8, 2000);
  if (!eq.converged) {
    std::printf("best-reply dynamics did not converge!\n");
    return 1;
  }
  std::printf("equilibrium reached in %zu best-reply rounds\n\n",
              eq.iterations);

  std::vector<double> loads(nodes.size(), 0.0);
  for (const auto& row : eq.flows) {
    for (std::size_t i = 0; i < loads.size(); ++i) loads[i] += row[i];
  }

  util::Table table({"node", "capacity", "equilibrium load",
                     "naive prop. load", "utilization",
                     "E[response] (s)"});
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const double cap_i =
        nodes[i].core_rate * static_cast<double>(nodes[i].cores);
    table.add_row({nodes[i].name, util::format_fixed(cap_i, 0),
                   util::format_fixed(loads[i], 1),
                   util::format_fixed(phi_total * cap_i / capacity, 1),
                   util::format_percent(loads[i] / cap_i),
                   util::format_fixed(models[i]->response_time(loads[i]),
                                      4)});
  }
  std::printf("%s\n", table.str().c_str());

  std::printf("per-user expected response times:");
  for (double d : eq.user_times) std::printf(" %.4f", d);
  std::printf(" s\n\n");
  std::printf(
      "reading: the equilibrium under-uses the many-slow-core box\n"
      "relative to its raw capacity (queueing at slow cores is expensive)\n"
      "and over-uses the fast single-core machine — exactly the effect a\n"
      "capacity-proportional policy misses.\n");
  return 0;
}
