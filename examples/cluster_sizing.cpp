// Cluster sizing with selfish users: how much capacity do you need, and
// where, when you cannot dictate user behaviour?
//
//   ./cluster_sizing [--demand 300] [--target 0.05]
//
// Scenario (the intro's motivation: "when the demand for computing power
// increases the load balancing problem becomes important"): a site serves
// a fixed aggregate demand from 10 independent, selfish user groups. The
// operator can keep adding servers of one of two shapes — a big node
// (100 jobs/s) or a batch of four small nodes (4 x 25 jobs/s) — and wants
// the cheapest configuration whose *equilibrium* (not centrally planned!)
// overall response time meets a target. Because users are selfish, the
// operating point to evaluate is the Nash equilibrium, not GOS.
#include <cstdio>
#include <vector>

#include "schemes/metrics.hpp"
#include "schemes/nash.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "workload/configs.hpp"

namespace {

using namespace nashlb;

/// Equilibrium overall response time for a rate vector and demand, or a
/// negative value when the system is infeasible/overloaded.
double equilibrium_response(std::vector<double> mu, double demand) {
  double cap = 0.0;
  for (double m : mu) cap += m;
  if (demand >= 0.98 * cap) return -1.0;  // refuse near-saturation designs
  core::Instance inst;
  inst.mu = std::move(mu);
  const std::vector<double> q = workload::user_fractions(10);
  for (double f : q) inst.phi.push_back(f * demand);
  const schemes::NashScheme nash(core::Initialization::Proportional, 1e-6);
  return schemes::evaluate(inst, nash.solve(inst)).overall_response_time;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  const double demand = args.get_double("demand", 300.0);   // jobs/s
  const double target = args.get_double("target", 0.05);    // seconds

  std::printf("demand: %.0f jobs/s from 10 selfish user groups; "
              "target equilibrium response: %.3f s\n\n", demand, target);

  // Baseline: two big nodes (may be overloaded).
  util::Table table({"design", "capacity (jobs/s)",
                     "equilibrium E[response] (s)", "meets target?"});

  struct Design {
    std::string name;
    std::vector<double> mu;
  };
  std::vector<Design> designs;
  // Grow big nodes.
  for (int big = 2; big <= 6; ++big) {
    Design d;
    d.name = std::to_string(big) + " x big(100)";
    d.mu.assign(static_cast<std::size_t>(big), 100.0);
    designs.push_back(d);
  }
  // Mixed: 3 big + k batches of small.
  for (int batch = 1; batch <= 4; ++batch) {
    Design d;
    d.name = "3 x big(100) + " + std::to_string(4 * batch) + " x small(25)";
    d.mu.assign(3, 100.0);
    for (int i = 0; i < 4 * batch; ++i) d.mu.push_back(25.0);
    designs.push_back(d);
  }

  std::string first_ok;
  for (const Design& d : designs) {
    double cap = 0.0;
    for (double m : d.mu) cap += m;
    const double resp = equilibrium_response(d.mu, demand);
    const bool ok = resp > 0.0 && resp <= target;
    if (ok && first_ok.empty()) first_ok = d.name;
    table.add_row({d.name, util::format_fixed(cap, 0),
                   resp > 0.0 ? util::format_fixed(resp, 4) : "overloaded",
                   ok ? "yes" : "no"});
  }
  std::printf("%s\n", table.str().c_str());

  if (first_ok.empty()) {
    std::printf("no evaluated design meets the target — raise capacity or "
                "relax the target.\n");
  } else {
    std::printf("cheapest evaluated design meeting the target at the "
                "*selfish* operating point: %s\n", first_ok.c_str());
    std::printf("\nnote: a planner using GOS numbers would under-provision "
                "whenever the\nequilibrium is worse than the social "
                "optimum (see selfish_vs_social).\n");
  }
  return 0;
}
