// Span tracing: nestable named intervals serialized as Chrome
// trace-event JSON (loadable in chrome://tracing and Perfetto).
//
// Where the TraceSink answers "what were the per-round numbers", a span
// trace answers "where did the time go": a dynamics round is a span
// that *encloses* one best-reply span per user; a ring-protocol round
// is a sequence of compute and hop spans laid out on per-node tracks.
// Two recording styles:
//
//   * RAII / begin–end against the tracer's own wall clock
//     (`begin`/`end`, `ScopedSpan`) — for host-time profiling of the
//     in-memory solver;
//   * explicit timestamps (`record_span`) — for DES events, whose
//     timeline is *simulated* seconds and whose durations are known
//     when the event is scheduled.
//
// One tracer is one timeline: do not mix wall-clock and simulated-time
// spans in the same tracer. Timestamps are exported in microseconds
// (the trace-event format's unit).
//
// The serialized schema is declared programmatically by
// `span_trace_fields()`; the arity of every emitted event is checked
// against it by tools/lint_nashlb.py (`trace-arity` rule) and at
// runtime by the writer. Like every obs type, a -DNASHLB_OBS=OFF build
// swaps in an empty no-op twin. See docs/OBSERVABILITY.md
// ("Span tracing").
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/config.hpp"  // NASHLB_OBS_ENABLED default + kEnabled

namespace nashlb::obs {

/// Opaque handle returned by begin(); pass it to end().
struct SpanId {
  std::uint64_t value = 0;
};

/// One completed span. `track` maps to the trace-event `tid` (one
/// horizontal lane per track in Perfetto); `id` is a free-form integer
/// tag (round index, user index, ...) exported under `args`.
struct SpanEvent {
  std::string name;
  std::string category;
  double start_us = 0.0;     ///< microseconds since the tracer's epoch
  double duration_us = 0.0;  ///< microseconds
  std::uint32_t track = 0;
  std::int64_t id = 0;
};

/// Field names of one serialized trace event, in emission order. The
/// Chrome trace-event format requires name/cat/ph/ts/dur/pid/tid for a
/// complete ("X") event; `args` carries the span's integer tag.
[[nodiscard]] std::vector<std::string> span_trace_fields();

namespace detail {

class EnabledSpanTracer {
 public:
  /// The epoch (t = 0 of the exported timeline) is construction time
  /// for wall-clock spans; record_span timestamps are relative to 0.
  EnabledSpanTracer() : epoch_(std::chrono::steady_clock::now()) {}

  /// Opens a wall-clock span; close it with end(). Spans may nest and
  /// interleave freely (ends may arrive in any order).
  [[nodiscard]] SpanId begin(std::string name, std::string category,
                             std::uint32_t track = 0, std::int64_t id = 0);
  /// Closes an open span; unknown/already-closed ids are ignored.
  void end(SpanId span);

  /// Records a complete span with explicit timestamps (seconds on the
  /// caller's timeline, e.g. simulated time). Negative durations are
  /// clamped to 0.
  void record_span(std::string name, std::string category,
                   double start_seconds, double duration_seconds,
                   std::uint32_t track = 0, std::int64_t id = 0);

  [[nodiscard]] std::size_t size() const noexcept { return events_.size(); }
  [[nodiscard]] bool empty() const noexcept { return events_.empty(); }
  /// Completed spans, in completion order.
  [[nodiscard]] const std::vector<SpanEvent>& events() const noexcept {
    return events_;
  }
  /// Spans begun but not yet ended.
  [[nodiscard]] std::size_t open_spans() const noexcept {
    return open_.size();
  }

  /// Writes the Chrome trace-event JSON ({"traceEvents": [...]}). Open
  /// spans are not exported. Throws std::runtime_error if the file
  /// cannot be opened.
  void write_chrome_trace(const std::string& path) const;

  void clear() noexcept {
    events_.clear();
    open_.clear();
  }

 private:
  struct OpenSpan {
    std::uint64_t id_value = 0;
    SpanEvent event;
  };

  [[nodiscard]] double now_us() const noexcept {
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
  }

  std::chrono::steady_clock::time_point epoch_;
  std::vector<SpanEvent> events_;
  std::vector<OpenSpan> open_;
  std::uint64_t next_id_ = 1;
};

/// No-op twin: identical interface, empty layout, writes no files.
class NullSpanTracer {
 public:
  [[nodiscard]] SpanId begin(const std::string&, const std::string&,
                             std::uint32_t = 0, std::int64_t = 0) noexcept {
    return {};
  }
  void end(SpanId) noexcept {}
  void record_span(const std::string&, const std::string&, double, double,
                   std::uint32_t = 0, std::int64_t = 0) noexcept {}
  [[nodiscard]] constexpr std::size_t size() const noexcept { return 0; }
  [[nodiscard]] constexpr bool empty() const noexcept { return true; }
  [[nodiscard]] const std::vector<SpanEvent>& events() const noexcept {
    static const std::vector<SpanEvent> kEmpty;
    return kEmpty;
  }
  [[nodiscard]] constexpr std::size_t open_spans() const noexcept {
    return 0;
  }
  void write_chrome_trace(const std::string&) const noexcept {}
  void clear() noexcept {}
};

/// RAII span against a tracer's wall clock: begins at construction,
/// ends at scope exit.
class EnabledScopedSpan {
 public:
  EnabledScopedSpan(EnabledSpanTracer& tracer, std::string name,
                    std::string category, std::uint32_t track = 0,
                    std::int64_t id = 0)
      : tracer_(&tracer),
        span_(tracer.begin(std::move(name), std::move(category), track, id)) {
  }
  EnabledScopedSpan(const EnabledScopedSpan&) = delete;
  EnabledScopedSpan& operator=(const EnabledScopedSpan&) = delete;
  ~EnabledScopedSpan() { tracer_->end(span_); }

 private:
  EnabledSpanTracer* tracer_;
  SpanId span_;
};

class NullScopedSpan {
 public:
  NullScopedSpan(NullSpanTracer&, const std::string&, const std::string&,
                 std::uint32_t = 0, std::int64_t = 0) noexcept {}
  NullScopedSpan(const NullScopedSpan&) = delete;
  NullScopedSpan& operator=(const NullScopedSpan&) = delete;
};

}  // namespace detail

#if NASHLB_OBS_ENABLED
using SpanTracer = detail::EnabledSpanTracer;
using ScopedSpan = detail::EnabledScopedSpan;
#else
using SpanTracer = detail::NullSpanTracer;
using ScopedSpan = detail::NullScopedSpan;
#endif

}  // namespace nashlb::obs
