// Flight-recorder event journal: the third obs layer next to the
// counters/histograms of metrics.hpp and the row traces of trace.hpp.
//
// A Journal is a fixed-capacity ring of numeric events. Schemas are
// registered up front (register_event gives each named event a field
// list, arity-checked at emit time exactly like TraceSink::record), and
// emitting is allocation-free after construction: one slot assignment of
// PODs, wrapping over the oldest entry when the ring is full. Overflow
// is not silent — emitted/dropped counts are kept and can be surfaced as
// Registry counters via publish_metrics().
//
// Two consumers:
//   * post-mortem forensics — install_crash_handler() wires the journal
//     into util::contract_failure_hook(), so a NASHLB_EXPECT/ENSURE/
//     INVARIANT violation dumps the last events to stderr (fprintf from
//     fixed slots, no allocation) before abort();
//   * offline analysis — write_jsonl() dumps the retained window as one
//     JSON object per line for tools/nashlb_report.py.
//
// Threading follows the sharded-registry pattern: a Journal is NOT
// thread-safe; each worker records into its own shard and the owner
// folds shards with merge(), which is noexcept and allocation-free so it
// can run inside util::ThreadPool workers without risking terminate.
// Merge order is caller-controlled (shard index order), so merged
// contents are deterministic.
//
// Build-time switch: `using Journal` aliases the enabled implementation
// or an empty no-op twin under -DNASHLB_OBS=OFF; both twins always
// compile (see config.hpp).
#pragma once

#include <cstdint>
#include <cstdio>
#include <initializer_list>
#include <string>
#include <vector>

#include "obs/config.hpp"
#include "obs/metrics.hpp"

namespace nashlb::obs {

/// Handle for a registered event schema: an index into the journal's
/// schema table, returned by register_event and required by emit.
struct EventId {
  std::uint32_t index = 0;
};

/// Hard cap on fields per event. Slots store a fixed `double[ ]` payload
/// so emit() never allocates; richer events belong in a TraceSink.
inline constexpr std::size_t kJournalMaxFields = 8;

/// How many trailing events the contract-failure crash dump prints.
inline constexpr std::size_t kJournalCrashTail = 32;

namespace detail {

class EnabledJournal {
 public:
  /// One retained event: schema index, sequence number (0-based, global
  /// over the journal's lifetime), and the fixed numeric payload.
  struct Slot {
    std::uint64_t seq = 0;
    std::uint32_t event = 0;
    std::uint32_t arity = 0;
    double values[kJournalMaxFields] = {};
  };

  /// Ring capacity is fixed at construction; all slot storage is
  /// allocated here, never on the emit path.
  explicit EnabledJournal(std::size_t capacity = 1024);

  ~EnabledJournal();
  EnabledJournal(const EnabledJournal&) = default;
  EnabledJournal& operator=(const EnabledJournal&) = default;

  /// Registers (or looks up) the schema for `name`. Re-registering the
  /// same name with the same field list returns the original id —
  /// solvers register per run() call without bookkeeping. Throws
  /// std::invalid_argument on an empty name, more than kJournalMaxFields
  /// fields, or a field list that conflicts with an earlier
  /// registration of the same name.
  EventId register_event(const std::string& name,
                         const std::vector<std::string>& fields);

  /// Records one event. The value count must equal the registered field
  /// count (throws std::invalid_argument otherwise — same contract as
  /// TraceSink::record). No allocation; overwrites the oldest retained
  /// slot when full and counts the casualty in dropped().
  void emit(EventId id, std::initializer_list<double> values);

  [[nodiscard]] std::size_t capacity() const noexcept { return ring_.size(); }
  /// Events currently retained (<= capacity).
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  /// Total events ever emitted into (or merged into) this journal.
  [[nodiscard]] std::uint64_t emitted() const noexcept { return emitted_; }
  /// Events lost to ring overflow or discarded by merge().
  [[nodiscard]] std::uint64_t dropped() const noexcept { return dropped_; }
  /// Registered schema count.
  [[nodiscard]] std::size_t num_events() const noexcept {
    return schemas_.size();
  }
  /// Name of a registered event (empty if out of range).
  [[nodiscard]] const std::string& event_name(EventId id) const noexcept;

  /// The retained window, oldest first. Index 0 is the oldest retained
  /// event; copies slots into `out` (resized to size()).
  void snapshot(std::vector<Slot>& out) const;

  /// Folds a shard into this journal: appends the shard's retained
  /// events oldest-first (so a fixed shard visit order gives a
  /// deterministic merged window), and accumulates its emitted/dropped
  /// totals. Events whose schema index is not registered here, or whose
  /// arity disagrees, are discarded and counted as dropped — merge must
  /// not throw (it runs inside pool workers; see parallel.hpp).
  void merge(const EnabledJournal& other) noexcept;

  /// Surfaces the drop accounting as Registry counters:
  /// `<prefix>.emitted`, `<prefix>.dropped`, `<prefix>.retained`.
  void publish_metrics(EnabledRegistry& registry,
                       const std::string& prefix = "journal") const;

  /// Writes the retained window as JSON lines, oldest first:
  /// {"seq":12,"event":"dynamics.round","round":3,"norm":0.5}.
  /// Throws std::runtime_error if the file cannot be opened.
  void write_jsonl(const std::string& path) const;

  /// Prints the last min(n, size()) events to `out`, oldest first, one
  /// per line. fprintf from fixed slots — noexcept, no allocation — so
  /// it is safe on the contract-failure path.
  void dump_tail(std::FILE* out, std::size_t n) const noexcept;

  /// Makes this journal the process-wide crash-dump target: installs a
  /// util::contract_failure_hook() that dump_tail()s the last
  /// kJournalCrashTail events to stderr before abort(). The journal
  /// must outlive the installation (the destructor uninstalls itself).
  void install_crash_handler() noexcept;

  /// Clears the hook if any journal is installed.
  static void uninstall_crash_handler() noexcept;

  /// Drops all retained events and resets the counters; registered
  /// schemas survive.
  void clear() noexcept;

 private:
  struct Schema {
    std::string name;
    std::vector<std::string> fields;
  };

  std::vector<Schema> schemas_;
  std::vector<Slot> ring_;
  std::size_t head_ = 0;  // next write position
  std::size_t size_ = 0;  // retained count
  std::uint64_t emitted_ = 0;
  std::uint64_t dropped_ = 0;

  void append(const Slot& slot) noexcept;
};

/// No-op twin for -DNASHLB_OBS=OFF: stateless, and write_jsonl creates
/// no file. Kept source-compatible with EnabledJournal so call sites
/// compile unchanged.
class NullJournal {
 public:
  explicit NullJournal(std::size_t = 0) noexcept {}
  EventId register_event(const std::string&,
                         const std::vector<std::string>&) noexcept {
    return {};
  }
  void emit(EventId, std::initializer_list<double>) noexcept {}
  [[nodiscard]] std::size_t capacity() const noexcept { return 0; }
  [[nodiscard]] std::size_t size() const noexcept { return 0; }
  [[nodiscard]] bool empty() const noexcept { return true; }
  [[nodiscard]] std::uint64_t emitted() const noexcept { return 0; }
  [[nodiscard]] std::uint64_t dropped() const noexcept { return 0; }
  [[nodiscard]] std::size_t num_events() const noexcept { return 0; }
  [[nodiscard]] const std::string& event_name(EventId) const noexcept {
    static const std::string kEmpty;
    return kEmpty;
  }
  /// Snapshot of nothing: empties the caller's buffer, mirroring the
  /// enabled twin's API so kEnabled-guarded blocks type-check.
  void snapshot(std::vector<EnabledJournal::Slot>& out) const noexcept {
    out.clear();
  }
  void merge(const NullJournal&) noexcept {}
  void publish_metrics(NullRegistry&, const std::string& = {}) const noexcept {
  }
  void write_jsonl(const std::string&) const noexcept {}
  void dump_tail(std::FILE*, std::size_t) const noexcept {}
  void install_crash_handler() noexcept {}
  static void uninstall_crash_handler() noexcept {}
  void clear() noexcept {}
};

}  // namespace detail

#if NASHLB_OBS_ENABLED
using Journal = detail::EnabledJournal;
#else
using Journal = detail::NullJournal;
#endif

}  // namespace nashlb::obs
