// Tiny JSON value formatting for the JSON-lines exporters.
//
// The obs layer emits flat records only (no nesting), so all it needs is
// correct escaping of strings and round-trippable number formatting —
// not a JSON library.
#pragma once

#include <cstdio>
#include <cstdint>
#include <cmath>
#include <string>

namespace nashlb::obs {

/// Quotes and escapes `s` per RFC 8259 (quotes, backslash, control chars).
[[nodiscard]] inline std::string json_quote(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

/// Shortest round-trippable decimal form; non-finite values (which JSON
/// cannot represent) become null.
[[nodiscard]] inline std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  // Prefer the shorter %g form when it round-trips exactly.
  char short_buf[32];
  std::snprintf(short_buf, sizeof short_buf, "%g", v);
  double back = 0.0;
  if (std::sscanf(short_buf, "%lf", &back) == 1 && back == v) {
    return short_buf;
  }
  return buf;
}

[[nodiscard]] inline std::string json_number(std::int64_t v) {
  return std::to_string(v);
}

[[nodiscard]] inline std::string json_number(std::uint64_t v) {
  return std::to_string(v);
}

}  // namespace nashlb::obs
