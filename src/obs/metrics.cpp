#include "obs/metrics.hpp"

#include <fstream>
#include <stdexcept>

#include "obs/json.hpp"
#include "util/csv.hpp"

namespace nashlb::obs::detail {

std::vector<MetricSnapshot> EnabledRegistry::snapshot() const {
  std::vector<MetricSnapshot> out;
  out.reserve(size());
  for (const auto& [name, counter] : counters_) {
    out.push_back({name, "counter", counter.value(), 0.0});
  }
  for (const auto& [name, timer] : timers_) {
    out.push_back({name, "timer", timer.count(), timer.total_seconds()});
  }
  return out;
}

void EnabledRegistry::write_csv(const std::string& path) const {
  util::CsvWriter writer(path, {"metric", "kind", "count", "total_seconds"});
  for (const MetricSnapshot& m : snapshot()) {
    writer.add_row({m.name, m.kind, std::to_string(m.count),
                    json_number(m.total_seconds)});
  }
}

void EnabledRegistry::write_jsonl(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("Registry: cannot open '" + path + "'");
  }
  for (const MetricSnapshot& m : snapshot()) {
    out << "{\"metric\":" << json_quote(m.name)
        << ",\"kind\":" << json_quote(m.kind) << ",\"count\":" << m.count
        << ",\"total_seconds\":" << json_number(m.total_seconds) << "}\n";
  }
}

}  // namespace nashlb::obs::detail
