#include "obs/metrics.hpp"

#include <fstream>
#include <stdexcept>

#include "obs/json.hpp"
#include "util/csv.hpp"

namespace nashlb::obs {

std::vector<std::string> registry_export_columns() {
  return {"metric", "kind",        "count",       "total_seconds",
          "min_seconds", "max_seconds", "p50", "p90", "p99"};
}

namespace detail {

void EnabledRegistry::merge(const EnabledRegistry& other) {
  for (const auto& [name, c] : other.counters_) counters_[name].merge(c);
  for (const auto& [name, t] : other.timers_) timers_[name].merge(t);
  for (const auto& [name, h] : other.histograms_) histograms_[name].merge(h);
}

std::vector<MetricSnapshot> EnabledRegistry::snapshot() const {
  std::vector<MetricSnapshot> out;
  out.reserve(size());
  for (const auto& [name, counter] : counters_) {
    out.push_back(
        {name, "counter", counter.value(), 0.0, 0.0, 0.0, 0.0, 0.0, 0.0});
  }
  for (const auto& [name, timer] : timers_) {
    out.push_back({name, "timer", timer.count(), timer.total_seconds(),
                   timer.min_seconds(), timer.max_seconds(), 0.0, 0.0, 0.0});
  }
  for (const auto& [name, hist] : histograms_) {
    out.push_back({name, "histogram", hist.count(), hist.sum(), hist.min(),
                   hist.max(), hist.p50(), hist.p90(), hist.p99()});
  }
  return out;
}

void EnabledRegistry::write_csv(const std::string& path) const {
  util::CsvWriter writer(path, registry_export_columns());
  for (const MetricSnapshot& m : snapshot()) {
    writer.add_row({m.name, m.kind, std::to_string(m.count),
                    json_number(m.total_seconds), json_number(m.min_seconds),
                    json_number(m.max_seconds), json_number(m.p50),
                    json_number(m.p90), json_number(m.p99)});
  }
}

void EnabledRegistry::write_jsonl(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("Registry: cannot open '" + path + "'");
  }
  for (const MetricSnapshot& m : snapshot()) {
    out << "{\"metric\":" << json_quote(m.name)
        << ",\"kind\":" << json_quote(m.kind) << ",\"count\":" << m.count
        << ",\"total_seconds\":" << json_number(m.total_seconds)
        << ",\"min_seconds\":" << json_number(m.min_seconds)
        << ",\"max_seconds\":" << json_number(m.max_seconds)
        << ",\"p50\":" << json_number(m.p50)
        << ",\"p90\":" << json_number(m.p90)
        << ",\"p99\":" << json_number(m.p99) << "}\n";
  }
}

}  // namespace detail
}  // namespace nashlb::obs
