#include "obs/trace.hpp"

#include <cmath>
#include <fstream>
#include <limits>
#include <set>
#include <stdexcept>

#include "obs/json.hpp"
#include "util/csv.hpp"

namespace nashlb::obs {
namespace {

std::string double_repr(double v) {
  if (std::isnan(v)) return "nan";
  if (std::isinf(v)) return v > 0 ? "inf" : "-inf";
  return json_number(v);  // shortest round-trippable decimal
}

}  // namespace

std::string cell_to_string(const Cell& cell) {
  switch (cell.index()) {
    case 0: return std::to_string(std::get<std::int64_t>(cell));
    case 1: return double_repr(std::get<double>(cell));
    default: return std::get<std::string>(cell);
  }
}

std::string cell_to_json(const Cell& cell) {
  switch (cell.index()) {
    case 0: return json_number(std::get<std::int64_t>(cell));
    case 1: return json_number(std::get<double>(cell));
    default: return json_quote(std::get<std::string>(cell));
  }
}

namespace detail {

EnabledTraceSink::EnabledTraceSink(std::vector<std::string> columns)
    : columns_(std::move(columns)) {
  if (columns_.empty()) {
    throw std::invalid_argument("TraceSink: need at least one column");
  }
  const std::set<std::string> unique(columns_.begin(), columns_.end());
  if (unique.size() != columns_.size()) {
    throw std::invalid_argument("TraceSink: duplicate column name");
  }
}

void EnabledTraceSink::record(std::vector<Cell> row) {
  if (row.size() != columns_.size()) {
    throw std::invalid_argument(
        "TraceSink::record: row has " + std::to_string(row.size()) +
        " cells, schema has " + std::to_string(columns_.size()));
  }
  rows_.push_back(std::move(row));
}

std::vector<double> EnabledTraceSink::column_as_doubles(
    const std::string& col) const {
  std::size_t idx = columns_.size();
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    if (columns_[c] == col) {
      idx = c;
      break;
    }
  }
  if (idx == columns_.size()) {
    throw std::out_of_range("TraceSink: no column named '" + col + "'");
  }
  std::vector<double> out;
  out.reserve(rows_.size());
  for (const std::vector<Cell>& row : rows_) {
    const Cell& cell = row[idx];
    switch (cell.index()) {
      case 0:
        out.push_back(static_cast<double>(std::get<std::int64_t>(cell)));
        break;
      case 1:
        out.push_back(std::get<double>(cell));
        break;
      default:
        out.push_back(std::numeric_limits<double>::quiet_NaN());
    }
  }
  return out;
}

void EnabledTraceSink::write_csv(const std::string& path) const {
  util::CsvWriter writer(path, columns_);
  std::vector<std::string> cells(columns_.size());
  for (const std::vector<Cell>& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      cells[c] = cell_to_string(row[c]);
    }
    writer.add_row(cells);
  }
}

void EnabledTraceSink::write_jsonl(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("TraceSink: cannot open '" + path + "'");
  }
  for (const std::vector<Cell>& row : rows_) {
    out << '{';
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != 0) out << ',';
      out << json_quote(columns_[c]) << ':' << cell_to_json(row[c]);
    }
    out << "}\n";
  }
}

}  // namespace detail
}  // namespace nashlb::obs
