#include "obs/convergence.hpp"

#include <cmath>
#include <fstream>
#include <limits>
#include <stdexcept>

#include "obs/json.hpp"
#include "obs/trace.hpp"
#include "util/csv.hpp"

namespace nashlb::obs {

std::vector<std::string> convergence_trace_columns() {
  return {"round",        "norm",
          "eps_nash_gap", "potential",
          "overall_cost", "active_set_churn",
          "util_spread"};
}

namespace detail {

namespace {

/// Row fields as Cells, in convergence_trace_columns() order, so the
/// exports share cell_to_string/cell_to_json with the trace layer.
std::vector<Cell> row_cells(const EnabledConvergenceProbe::Row& row) {
  return {row.round,        row.norm,
          row.eps_nash_gap, row.potential,
          row.overall_cost, row.active_set_churn,
          row.util_spread};
}

}  // namespace

void EnabledConvergenceProbe::record_round(std::int64_t round, double norm,
                                           double eps_nash_gap,
                                           double potential,
                                           double overall_cost,
                                           std::int64_t active_set_churn,
                                           double util_spread) {
  rows_.push_back(Row{round, norm, eps_nash_gap, potential, overall_cost,
                      active_set_churn, util_spread});
}

std::int64_t EnabledConvergenceProbe::rounds_to_tol(
    double tol) const noexcept {
  for (const Row& row : rows_) {
    if (row.norm <= tol) return row.round;
  }
  return 0;
}

double EnabledConvergenceProbe::final_eps_nash() const noexcept {
  for (std::size_t k = rows_.size(); k > 0; --k) {
    const double gap = rows_[k - 1].eps_nash_gap;
    if (std::isfinite(gap)) return gap;
  }
  return std::numeric_limits<double>::quiet_NaN();
}

void EnabledConvergenceProbe::write_csv(const std::string& path) const {
  const std::vector<std::string> columns = convergence_trace_columns();
  util::CsvWriter writer(path, columns);
  std::vector<std::string> cells(columns.size());
  for (const Row& row : rows_) {
    const std::vector<Cell> as_cells = row_cells(row);
    for (std::size_t c = 0; c < as_cells.size(); ++c) {
      cells[c] = cell_to_string(as_cells[c]);
    }
    // Arity is pinned by row_cells() above, not a braced literal.
    // nashlb-lint: allow(trace-arity)
    writer.add_row(cells);
  }
}

void EnabledConvergenceProbe::write_jsonl(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("ConvergenceProbe: cannot open '" + path + "'");
  }
  const std::vector<std::string> columns = convergence_trace_columns();
  for (const Row& row : rows_) {
    const std::vector<Cell> as_cells = row_cells(row);
    out << '{';
    for (std::size_t c = 0; c < as_cells.size(); ++c) {
      if (c != 0) out << ',';
      out << json_quote(columns[c]) << ':' << cell_to_json(as_cells[c]);
    }
    out << "}\n";
  }
}

}  // namespace detail
}  // namespace nashlb::obs
