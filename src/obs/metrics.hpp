// Lightweight runtime metrics: counters, wall-clock timers, and a named
// registry, with a compile-time off switch.
//
// The observability layer exists so the solvers (core, distributed) and
// the simulation substrate (des, simmodel) can expose what they are doing
// — iteration counts, event throughput, busy time — without ad-hoc printf
// instrumentation in every bench. Design constraints:
//
//   * near-zero cost when enabled: a counter increment is one add, a
//     timer stop is one steady_clock read plus an add;
//   * exactly zero cost when disabled: building with
//     -DNASHLB_OBS_ENABLED=0 swaps every type for an empty no-op twin
//     (`detail::Null*`), and `obs::kEnabled` is a constexpr false that
//     lets call sites guard expensive derived statistics with an
//     `if (obs::kEnabled && ...)` the compiler deletes outright;
//   * both twins are always *compiled* (they live in this header), so the
//     unit tests can assert the no-op contract regardless of how the
//     library itself was built.
//
// See docs/OBSERVABILITY.md for the exported schemas and a worked example.
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#ifndef NASHLB_OBS_ENABLED
#define NASHLB_OBS_ENABLED 1
#endif

namespace nashlb::obs {

/// Compile-time master switch; `if (obs::kEnabled && ...)` blocks are
/// dead-code-eliminated when the layer is disabled.
inline constexpr bool kEnabled = NASHLB_OBS_ENABLED != 0;

namespace detail {

/// Monotonic event counter.
class EnabledCounter {
 public:
  void add(std::uint64_t n = 1) noexcept { value_ += n; }
  [[nodiscard]] std::uint64_t value() const noexcept { return value_; }
  void reset() noexcept { value_ = 0; }

 private:
  std::uint64_t value_ = 0;
};

/// Accumulates wall-clock durations (seconds) plus an observation count.
class EnabledTimer {
 public:
  void add_seconds(double s) noexcept {
    total_seconds_ += s;
    ++count_;
  }
  /// Folds a pre-aggregated batch: `total` seconds over `n` observations.
  void add_batch(double total, std::uint64_t n) noexcept {
    total_seconds_ += total;
    count_ += n;
  }
  [[nodiscard]] double total_seconds() const noexcept { return total_seconds_; }
  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  /// Mean seconds per observation (0 if none recorded).
  [[nodiscard]] double mean_seconds() const noexcept {
    return count_ == 0 ? 0.0
                       : total_seconds_ / static_cast<double>(count_);
  }
  void reset() noexcept {
    total_seconds_ = 0.0;
    count_ = 0;
  }

 private:
  double total_seconds_ = 0.0;
  std::uint64_t count_ = 0;
};

/// RAII scope timer: accumulates the scope's wall time into a Timer.
class EnabledScopedTimer {
 public:
  explicit EnabledScopedTimer(EnabledTimer& timer) noexcept
      : timer_(&timer), start_(std::chrono::steady_clock::now()) {}
  EnabledScopedTimer(const EnabledScopedTimer&) = delete;
  EnabledScopedTimer& operator=(const EnabledScopedTimer&) = delete;
  ~EnabledScopedTimer() { timer_->add_seconds(elapsed_seconds()); }

  /// Seconds elapsed since construction (the timer is charged at scope
  /// exit; this reads the clock without stopping).
  [[nodiscard]] double elapsed_seconds() const noexcept {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  EnabledTimer* timer_;
  std::chrono::steady_clock::time_point start_;
};

/// No-op twins: identical interfaces, empty bodies, empty layout. The
/// aliases below select these when NASHLB_OBS_ENABLED is 0.
class NullCounter {
 public:
  void add(std::uint64_t = 1) noexcept {}
  [[nodiscard]] constexpr std::uint64_t value() const noexcept { return 0; }
  void reset() noexcept {}
};

class NullTimer {
 public:
  void add_seconds(double) noexcept {}
  void add_batch(double, std::uint64_t) noexcept {}
  [[nodiscard]] constexpr double total_seconds() const noexcept { return 0.0; }
  [[nodiscard]] constexpr std::uint64_t count() const noexcept { return 0; }
  [[nodiscard]] constexpr double mean_seconds() const noexcept { return 0.0; }
  void reset() noexcept {}
};

class NullScopedTimer {
 public:
  explicit NullScopedTimer(NullTimer&) noexcept {}
  NullScopedTimer(const NullScopedTimer&) = delete;
  NullScopedTimer& operator=(const NullScopedTimer&) = delete;
  [[nodiscard]] constexpr double elapsed_seconds() const noexcept {
    return 0.0;
  }
};

}  // namespace detail

/// Point-in-time view of one named metric (see Registry::snapshot).
struct MetricSnapshot {
  std::string name;
  std::string kind;       ///< "counter" or "timer"
  std::uint64_t count;    ///< counter value, or timer observation count
  double total_seconds;   ///< 0 for counters
};

namespace detail {

/// Named metric store. References returned by counter()/timer() stay
/// valid for the registry's lifetime (node-based map). Not thread-safe;
/// give each thread its own registry and merge, or publish after joining.
class EnabledRegistry {
 public:
  /// Returns (creating on first use) the counter named `name`.
  EnabledCounter& counter(const std::string& name) { return counters_[name]; }
  /// Returns (creating on first use) the timer named `name`.
  EnabledTimer& timer(const std::string& name) { return timers_[name]; }

  [[nodiscard]] std::size_t size() const noexcept {
    return counters_.size() + timers_.size();
  }

  /// All metrics, counters first then timers, each group name-sorted.
  [[nodiscard]] std::vector<MetricSnapshot> snapshot() const;

  /// Writes the snapshot as CSV: metric,kind,count,total_seconds.
  void write_csv(const std::string& path) const;
  /// Writes the snapshot as JSON-lines, one metric object per line.
  void write_jsonl(const std::string& path) const;

  void clear() noexcept {
    counters_.clear();
    timers_.clear();
  }

 private:
  std::map<std::string, EnabledCounter> counters_;
  std::map<std::string, EnabledTimer> timers_;
};

class NullRegistry {
 public:
  NullCounter& counter(const std::string&) noexcept { return counter_; }
  NullTimer& timer(const std::string&) noexcept { return timer_; }
  [[nodiscard]] constexpr std::size_t size() const noexcept { return 0; }
  [[nodiscard]] std::vector<MetricSnapshot> snapshot() const { return {}; }
  void write_csv(const std::string&) const noexcept {}
  void write_jsonl(const std::string&) const noexcept {}
  void clear() noexcept {}

 private:
  NullCounter counter_;
  NullTimer timer_;
};

}  // namespace detail

#if NASHLB_OBS_ENABLED
using Counter = detail::EnabledCounter;
using Timer = detail::EnabledTimer;
using ScopedTimer = detail::EnabledScopedTimer;
using Registry = detail::EnabledRegistry;
#else
using Counter = detail::NullCounter;
using Timer = detail::NullTimer;
using ScopedTimer = detail::NullScopedTimer;
using Registry = detail::NullRegistry;
#endif

}  // namespace nashlb::obs
