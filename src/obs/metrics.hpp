// Lightweight runtime metrics: counters, wall-clock timers, and a named
// registry, with a compile-time off switch.
//
// The observability layer exists so the solvers (core, distributed) and
// the simulation substrate (des, simmodel) can expose what they are doing
// — iteration counts, event throughput, busy time — without ad-hoc printf
// instrumentation in every bench. Design constraints:
//
//   * near-zero cost when enabled: a counter increment is one add, a
//     timer stop is one steady_clock read plus an add;
//   * exactly zero cost when disabled: building with
//     -DNASHLB_OBS_ENABLED=0 swaps every type for an empty no-op twin
//     (`detail::Null*`), and `obs::kEnabled` is a constexpr false that
//     lets call sites guard expensive derived statistics with an
//     `if (obs::kEnabled && ...)` the compiler deletes outright;
//   * both twins are always *compiled* (they live in this header), so the
//     unit tests can assert the no-op contract regardless of how the
//     library itself was built.
//
// See docs/OBSERVABILITY.md for the exported schemas and a worked example.
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "obs/config.hpp"     // NASHLB_OBS_ENABLED default + kEnabled
#include "obs/histogram.hpp"  // the Registry stores histograms too

namespace nashlb::obs {

namespace detail {

/// Monotonic event counter.
class EnabledCounter {
 public:
  void add(std::uint64_t n = 1) noexcept { value_ += n; }
  /// Folds another counter's total into this one (shard reduction).
  void merge(const EnabledCounter& other) noexcept { value_ += other.value_; }
  [[nodiscard]] std::uint64_t value() const noexcept { return value_; }
  void reset() noexcept { value_ = 0; }

 private:
  std::uint64_t value_ = 0;
};

/// Accumulates wall-clock durations (seconds) plus an observation count
/// and the observed extremes.
class EnabledTimer {
 public:
  void add_seconds(double s) noexcept {
    total_seconds_ += s;
    ++count_;
    note_extreme(s, s);
  }
  /// Folds a pre-aggregated batch: `total` seconds over `n` observations.
  /// The batch carries no per-observation extremes, so min/max are
  /// untouched; use the 4-argument overload when the producer knows them.
  void add_batch(double total, std::uint64_t n) noexcept {
    total_seconds_ += total;
    count_ += n;
  }
  /// Batch fold with the batch's own observed extremes.
  void add_batch(double total, std::uint64_t n, double batch_min,
                 double batch_max) noexcept {
    add_batch(total, n);
    if (n != 0) note_extreme(batch_min, batch_max);
  }
  /// Folds another timer into this one (shard reduction): totals and
  /// counts sum; extremes fold by min/max, but only when `other`
  /// actually observed extremes (a shard fed exclusively by extreme-less
  /// add_batch calls contributes none, exactly as if its batches had
  /// been folded here directly).
  void merge(const EnabledTimer& other) noexcept {
    total_seconds_ += other.total_seconds_;
    count_ += other.count_;
    if (other.min_ <= other.max_) note_extreme(other.min_, other.max_);
  }
  [[nodiscard]] double total_seconds() const noexcept { return total_seconds_; }
  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  /// Smallest / largest single observation seen (0 while none carried
  /// extremes — batches folded without them don't count).
  [[nodiscard]] double min_seconds() const noexcept {
    return min_ <= max_ ? min_ : 0.0;
  }
  [[nodiscard]] double max_seconds() const noexcept {
    return min_ <= max_ ? max_ : 0.0;
  }
  /// Mean seconds per observation (0 if none recorded).
  [[nodiscard]] double mean_seconds() const noexcept {
    return count_ == 0 ? 0.0
                       : total_seconds_ / static_cast<double>(count_);
  }
  void reset() noexcept {
    total_seconds_ = 0.0;
    count_ = 0;
    min_ = 1.0;
    max_ = 0.0;
  }

 private:
  void note_extreme(double lo, double hi) noexcept {
    if (min_ > max_) {  // no extremes recorded yet
      min_ = lo;
      max_ = hi;
    } else {
      if (lo < min_) min_ = lo;
      if (hi > max_) max_ = hi;
    }
  }

  double total_seconds_ = 0.0;
  std::uint64_t count_ = 0;
  // min_ > max_ encodes "no extremes yet" without a separate flag.
  double min_ = 1.0;
  double max_ = 0.0;
};

/// RAII scope timer: accumulates the scope's wall time into a Timer.
class EnabledScopedTimer {
 public:
  explicit EnabledScopedTimer(EnabledTimer& timer) noexcept
      : timer_(&timer), start_(std::chrono::steady_clock::now()) {}
  EnabledScopedTimer(const EnabledScopedTimer&) = delete;
  EnabledScopedTimer& operator=(const EnabledScopedTimer&) = delete;
  ~EnabledScopedTimer() { timer_->add_seconds(elapsed_seconds()); }

  /// Seconds elapsed since construction (the timer is charged at scope
  /// exit; this reads the clock without stopping).
  [[nodiscard]] double elapsed_seconds() const noexcept {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  EnabledTimer* timer_;
  std::chrono::steady_clock::time_point start_;
};

/// No-op twins: identical interfaces, empty bodies, empty layout. The
/// aliases below select these when NASHLB_OBS_ENABLED is 0.
class NullCounter {
 public:
  void add(std::uint64_t = 1) noexcept {}
  void merge(const NullCounter&) noexcept {}
  [[nodiscard]] constexpr std::uint64_t value() const noexcept { return 0; }
  void reset() noexcept {}
};

class NullTimer {
 public:
  void add_seconds(double) noexcept {}
  void add_batch(double, std::uint64_t) noexcept {}
  void add_batch(double, std::uint64_t, double, double) noexcept {}
  void merge(const NullTimer&) noexcept {}
  [[nodiscard]] constexpr double total_seconds() const noexcept { return 0.0; }
  [[nodiscard]] constexpr std::uint64_t count() const noexcept { return 0; }
  [[nodiscard]] constexpr double min_seconds() const noexcept { return 0.0; }
  [[nodiscard]] constexpr double max_seconds() const noexcept { return 0.0; }
  [[nodiscard]] constexpr double mean_seconds() const noexcept { return 0.0; }
  void reset() noexcept {}
};

class NullScopedTimer {
 public:
  explicit NullScopedTimer(NullTimer&) noexcept {}
  NullScopedTimer(const NullScopedTimer&) = delete;
  NullScopedTimer& operator=(const NullScopedTimer&) = delete;
  [[nodiscard]] constexpr double elapsed_seconds() const noexcept {
    return 0.0;
  }
};

}  // namespace detail

/// Point-in-time view of one named metric (see Registry::snapshot).
/// Fields a kind doesn't define are 0: counters carry only `count`;
/// timers add totals and extremes; histograms add the quantiles.
struct MetricSnapshot {
  std::string name;
  std::string kind;       ///< "counter", "timer" or "histogram"
  std::uint64_t count;    ///< counter value, or observation count
  double total_seconds;   ///< accumulated seconds (histogram: sum)
  double min_seconds;     ///< smallest observation (0 if unknown)
  double max_seconds;     ///< largest observation (0 if unknown)
  double p50;             ///< histogram quantiles (0 for other kinds)
  double p90;
  double p99;
};

/// Column names of the Registry's CSV export, in order. Declared
/// programmatically (like the `*_trace_columns()` schemas) so consumers
/// never hardcode the export layout; tools/lint_nashlb.py checks every
/// exported row against this arity.
[[nodiscard]] std::vector<std::string> registry_export_columns();

namespace detail {

/// Named metric store. References returned by counter()/timer() stay
/// valid for the registry's lifetime (node-based map). Not thread-safe;
/// the sharding pattern (docs/OBSERVABILITY.md, "Sharded registries") is
/// one registry per worker, merged in worker/index order after the join
/// — never a shared registry under concurrent mutation.
class EnabledRegistry {
 public:
  /// Returns (creating on first use) the counter named `name`.
  EnabledCounter& counter(const std::string& name) { return counters_[name]; }
  /// Returns (creating on first use) the timer named `name`.
  EnabledTimer& timer(const std::string& name) { return timers_[name]; }
  /// Returns (creating on first use) the histogram named `name`.
  EnabledHistogram& histogram(const std::string& name) {
    return histograms_[name];
  }

  /// Folds another registry (a per-thread shard) into this one, metric
  /// by metric: counters sum, timers fold totals/counts and min/max
  /// extremes, histograms merge cell-by-cell. Metrics only named in
  /// `other` are created here. Merging shards in a fixed order yields a
  /// result independent of how work was scheduled across threads (the
  /// only float folds are sums of each shard's subtotals in that order).
  void merge(const EnabledRegistry& other);

  [[nodiscard]] std::size_t size() const noexcept {
    return counters_.size() + timers_.size() + histograms_.size();
  }

  /// All metrics — counters, then timers, then histograms, each group
  /// name-sorted.
  [[nodiscard]] std::vector<MetricSnapshot> snapshot() const;

  /// Writes the snapshot as CSV under `registry_export_columns()`.
  void write_csv(const std::string& path) const;
  /// Writes the snapshot as JSON-lines, one metric object per line.
  void write_jsonl(const std::string& path) const;

  void clear() noexcept {
    counters_.clear();
    timers_.clear();
    histograms_.clear();
  }

 private:
  std::map<std::string, EnabledCounter> counters_;
  std::map<std::string, EnabledTimer> timers_;
  std::map<std::string, EnabledHistogram> histograms_;
};

class NullRegistry {
 public:
  NullCounter& counter(const std::string&) noexcept { return counter_; }
  NullTimer& timer(const std::string&) noexcept { return timer_; }
  NullHistogram& histogram(const std::string&) noexcept { return histogram_; }
  void merge(const NullRegistry&) noexcept {}
  [[nodiscard]] constexpr std::size_t size() const noexcept { return 0; }
  [[nodiscard]] std::vector<MetricSnapshot> snapshot() const { return {}; }
  void write_csv(const std::string&) const noexcept {}
  void write_jsonl(const std::string&) const noexcept {}
  void clear() noexcept {}

 private:
  NullCounter counter_;
  NullTimer timer_;
  NullHistogram histogram_;
};

}  // namespace detail

#if NASHLB_OBS_ENABLED
using Counter = detail::EnabledCounter;
using Timer = detail::EnabledTimer;
using ScopedTimer = detail::EnabledScopedTimer;
using Registry = detail::EnabledRegistry;
#else
using Counter = detail::NullCounter;
using Timer = detail::NullTimer;
using ScopedTimer = detail::NullScopedTimer;
using Registry = detail::NullRegistry;
#endif

}  // namespace nashlb::obs
