// Convergence telemetry: per-round equilibrium-trajectory series.
//
// Rounds-to-eps-Nash is the scientific claim of Grosu & Chronopoulos'
// NASH scheme, and the quantity the related work (Berenbrink et al.;
// Yun & Proutiere — see PAPERS.md) frames its results in. The
// ConvergenceProbe gives that trajectory a first-class record: one row
// per best-reply round with
//
//   round            — 1-based round number,
//   norm             — the stopping norm sum_j |D_j - D_j_prev|,
//   eps_nash_gap     — max_j best-reply gain (NaN on strided-off rounds
//                      or when the gap is uncomputable, e.g. diverged),
//   potential        — Beckmann potential at the round's loads (NaN if
//                      a computer is overloaded),
//   overall_cost     — expected response time D(s) from the loads,
//   active_set_churn — users whose best-reply support (the Thm 2.1 cut)
//                      changed this round,
//   util_spread      — max_i lambda_i/mu_i - min_i lambda_i/mu_i.
//
// The probe itself is pure storage + export + summary over numbers the
// solver layer computes (obs must not depend on core); the driver that
// derives the quantities from solver state is core::ConvergenceProbeDriver
// (core/dynamics.hpp), wired through all three dynamics orders,
// class-mode rounds, and the distributed ring protocol.
//
// Build-time switch: `using ConvergenceProbe` aliases the enabled
// implementation or an empty no-op twin under -DNASHLB_OBS=OFF.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/config.hpp"

namespace nashlb::obs {

/// Column schema of the probe's CSV/JSON-lines export, in row order.
/// Declared programmatically like the other trace schemas so
/// tools/lint_nashlb.py can arity-check record_round against it.
std::vector<std::string> convergence_trace_columns();

namespace detail {

class EnabledConvergenceProbe {
 public:
  /// One recorded round; field order matches convergence_trace_columns.
  struct Row {
    std::int64_t round = 0;
    double norm = 0.0;
    double eps_nash_gap = 0.0;
    double potential = 0.0;
    double overall_cost = 0.0;
    std::int64_t active_set_churn = 0;
    double util_spread = 0.0;
  };

  /// Appends one round. Call once per completed round, in round order.
  void record_round(std::int64_t round, double norm, double eps_nash_gap,
                    double potential, double overall_cost,
                    std::int64_t active_set_churn, double util_spread);

  [[nodiscard]] std::size_t size() const noexcept { return rows_.size(); }
  [[nodiscard]] bool empty() const noexcept { return rows_.empty(); }
  [[nodiscard]] const std::vector<Row>& rows() const noexcept { return rows_; }

  /// First recorded round whose norm is <= tol, or 0 if none is.
  [[nodiscard]] std::int64_t rounds_to_tol(double tol) const noexcept;

  /// The last finite eps_nash_gap in the series (the certified distance
  /// from equilibrium at the end of the run), or NaN if no round
  /// recorded a finite gap.
  [[nodiscard]] double final_eps_nash() const noexcept;

  /// CSV with a convergence_trace_columns() header row. Throws
  /// std::runtime_error if the file cannot be opened.
  void write_csv(const std::string& path) const;
  /// JSON lines, one object per round keyed by the column names.
  void write_jsonl(const std::string& path) const;

  void clear() noexcept { rows_.clear(); }

 private:
  std::vector<Row> rows_;
};

/// No-op twin for -DNASHLB_OBS=OFF: stateless, writes no files. The
/// read API mirrors the enabled twin (reporting an empty series) so
/// `if constexpr (obs::kEnabled)` blocks type-check in either build.
class NullConvergenceProbe {
 public:
  void record_round(std::int64_t, double, double, double, double, std::int64_t,
                    double) noexcept {}
  [[nodiscard]] std::size_t size() const noexcept { return 0; }
  [[nodiscard]] bool empty() const noexcept { return true; }
  [[nodiscard]] const std::vector<EnabledConvergenceProbe::Row>& rows()
      const noexcept {
    static const std::vector<EnabledConvergenceProbe::Row> kEmpty;
    return kEmpty;
  }
  [[nodiscard]] std::int64_t rounds_to_tol(double) const noexcept { return 0; }
  [[nodiscard]] double final_eps_nash() const noexcept { return 0.0; }
  void write_csv(const std::string&) const noexcept {}
  void write_jsonl(const std::string&) const noexcept {}
  void clear() noexcept {}
};

}  // namespace detail

#if NASHLB_OBS_ENABLED
using ConvergenceProbe = detail::EnabledConvergenceProbe;
#else
using ConvergenceProbe = detail::NullConvergenceProbe;
#endif

}  // namespace nashlb::obs
