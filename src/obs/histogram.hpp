// Log-bucketed latency histogram with a fixed, shared bucket layout.
//
// The paper's claims are about *response time* distributions — the
// per-computer M/M/1 sojourn F_i(s) is an exponential random variable,
// not just its mean 1/(mu_i - lambda_i) — so the obs layer needs an
// instrument that captures where the mass of a latency distribution
// sits, not only its first moment. Design constraints:
//
//   * fixed layout: every Histogram shares one compile-time bucket
//     grid (powers of two subdivided kBucketsPerOctave times, covering
//     ~1 ns to ~1 hour), so any two histograms merge cell-by-cell with
//     no rebinning and the memory footprint is a constant few KiB;
//   * log buckets: each bucket's bounds differ by the constant factor
//     2^(1/kBucketsPerOctave) (~4.4% relative width), so quantile
//     estimates carry the same *relative* error at 50 µs and 50 s;
//   * bounds are declared programmatically (bucket_count(),
//     bucket_lower_bound(), bucket_upper_bound()) — consumers must
//     never hardcode edges; tools/lint_nashlb.py enforces this
//     (`histogram-bounds` rule);
//   * like every obs type, a -DNASHLB_OBS=OFF build swaps in an empty
//     no-op twin.
//
// See docs/OBSERVABILITY.md ("Histograms") for the export schema and a
// worked example.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "obs/config.hpp"  // NASHLB_OBS_ENABLED default + kEnabled

namespace nashlb::obs {

/// The shared bucket grid: bucket k covers
///   [2^(kMinExponent + k/kBucketsPerOctave),
///    2^(kMinExponent + (k+1)/kBucketsPerOctave)).
/// Values below the grid land in bucket 0, values above in the last
/// bucket; exact min/max/sum are tracked separately so the clamping
/// never loses the extremes.
struct HistogramLayout {
  static constexpr int kMinExponent = -30;       ///< 2^-30 s ~ 0.93 ns
  static constexpr int kMaxExponent = 12;        ///< 2^12 s ~ 68 min
  static constexpr int kBucketsPerOctave = 16;   ///< 2^(1/16) ~ +4.4%/bucket

  [[nodiscard]] static constexpr std::size_t bucket_count() noexcept {
    return static_cast<std::size_t>(kMaxExponent - kMinExponent) *
           static_cast<std::size_t>(kBucketsPerOctave);
  }
  /// Inclusive lower bound of bucket `k` in seconds.
  [[nodiscard]] static double bucket_lower_bound(std::size_t k) noexcept;
  /// Exclusive upper bound of bucket `k` in seconds.
  [[nodiscard]] static double bucket_upper_bound(std::size_t k) noexcept;
  /// Index of the bucket containing `seconds` (clamped to the grid).
  [[nodiscard]] static std::size_t bucket_index(double seconds) noexcept;
};

namespace detail {

/// The enabled histogram. Copyable (it is plain counts), mergeable with
/// any other histogram (same fixed layout by construction).
class EnabledHistogram {
 public:
  using Layout = HistogramLayout;

  EnabledHistogram() = default;

  /// Folds one latency observation (seconds). Non-finite or negative
  /// values are counted but routed to the bottom bucket.
  void record(double seconds) noexcept;

  /// Cell-by-cell merge; min/max/sum/count fold exactly.
  void merge(const EnabledHistogram& other) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] double sum() const noexcept { return sum_; }
  /// Exact observed extremes (0 when empty).
  [[nodiscard]] double min() const noexcept { return count_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return count_ ? max_ : 0.0; }
  [[nodiscard]] double mean() const noexcept {
    return count_ ? sum_ / static_cast<double>(count_) : 0.0;
  }

  /// Quantile estimate for q in [0, 1]: linear interpolation inside
  /// the covering bucket, clamped to the exact [min, max]. Relative
  /// error is bounded by the bucket width (~4.4%). Returns 0 when
  /// empty; q outside [0, 1] is clamped.
  [[nodiscard]] double quantile(double q) const noexcept;

  [[nodiscard]] double p50() const noexcept { return quantile(0.50); }
  [[nodiscard]] double p90() const noexcept { return quantile(0.90); }
  [[nodiscard]] double p99() const noexcept { return quantile(0.99); }

  /// Count in bucket `k` (0 for an empty histogram or out-of-range k).
  [[nodiscard]] std::uint64_t bucket(std::size_t k) const noexcept;

  void reset() noexcept;

 private:
  // Allocated on first record() so an unused histogram costs a pointer.
  std::vector<std::uint64_t> counts_;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// No-op twin: identical interface, empty layout, records nothing.
class NullHistogram {
 public:
  using Layout = HistogramLayout;
  void record(double) noexcept {}
  void merge(const NullHistogram&) noexcept {}
  [[nodiscard]] constexpr std::uint64_t count() const noexcept { return 0; }
  [[nodiscard]] constexpr double sum() const noexcept { return 0.0; }
  [[nodiscard]] constexpr double min() const noexcept { return 0.0; }
  [[nodiscard]] constexpr double max() const noexcept { return 0.0; }
  [[nodiscard]] constexpr double mean() const noexcept { return 0.0; }
  [[nodiscard]] constexpr double quantile(double) const noexcept {
    return 0.0;
  }
  [[nodiscard]] constexpr double p50() const noexcept { return 0.0; }
  [[nodiscard]] constexpr double p90() const noexcept { return 0.0; }
  [[nodiscard]] constexpr double p99() const noexcept { return 0.0; }
  [[nodiscard]] constexpr std::uint64_t bucket(std::size_t) const noexcept {
    return 0;
  }
  void reset() noexcept {}
};

}  // namespace detail

#if NASHLB_OBS_ENABLED
using Histogram = detail::EnabledHistogram;
#else
using Histogram = detail::NullHistogram;
#endif

}  // namespace nashlb::obs
