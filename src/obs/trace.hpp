// Structured trace sink: typed rows under a fixed schema, exportable as
// CSV (via util::CsvWriter) or JSON-lines.
//
// A TraceSink is the "flight recorder" of an iterative computation: the
// best-reply dynamics appends one row per round, the distributed ring
// protocol one row per token circulation, the replication driver one row
// per replication. Producers declare the schema (column names) once;
// record() enforces arity so a trace can never silently skew.
//
// Like the metrics in obs/metrics.hpp, the sink has a no-op twin selected
// by NASHLB_OBS_ENABLED so instrumented call sites cost nothing in a
// disabled build. Instrumentation points take a `TraceSink*` (not owned,
// may be null) and guard with `if (obs::kEnabled && sink)`.
//
// Not thread-safe: record from one thread, or buffer per worker and
// append after joining (see simmodel::replicate for the pattern).
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "obs/metrics.hpp"  // NASHLB_OBS_ENABLED default + kEnabled

namespace nashlb::obs {

/// One cell of a trace row. Integers and reals stay typed so the JSON
/// exporter can emit them unquoted.
using Cell = std::variant<std::int64_t, double, std::string>;

/// Renders a cell for CSV output (integers plain, reals via %.17g-style
/// shortest round-trip, strings verbatim — CsvWriter handles quoting).
[[nodiscard]] std::string cell_to_string(const Cell& cell);

/// Renders a cell as a JSON value (strings quoted/escaped).
[[nodiscard]] std::string cell_to_json(const Cell& cell);

namespace detail {

class EnabledTraceSink {
 public:
  /// Declares the schema. Throws std::invalid_argument on an empty or
  /// duplicate column list.
  explicit EnabledTraceSink(std::vector<std::string> columns);

  [[nodiscard]] const std::vector<std::string>& columns() const noexcept {
    return columns_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return rows_.size(); }
  [[nodiscard]] bool empty() const noexcept { return rows_.empty(); }
  [[nodiscard]] const std::vector<std::vector<Cell>>& rows() const noexcept {
    return rows_;
  }

  /// Appends one row. Throws std::invalid_argument on arity mismatch.
  void record(std::vector<Cell> row);

  /// Column `col` of every row, converted to double (strings -> NaN).
  /// Throws std::out_of_range for an unknown column name.
  [[nodiscard]] std::vector<double> column_as_doubles(
      const std::string& col) const;

  /// Writes header + rows as RFC 4180 CSV. Throws std::runtime_error if
  /// the file cannot be opened.
  void write_csv(const std::string& path) const;
  /// Writes one JSON object per row ({"col": value, ...} lines).
  void write_jsonl(const std::string& path) const;

  void clear() noexcept { rows_.clear(); }

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<Cell>> rows_;
};

class NullTraceSink {
 public:
  explicit NullTraceSink(std::vector<std::string>) noexcept {}
  [[nodiscard]] const std::vector<std::string>& columns() const noexcept {
    static const std::vector<std::string> kEmpty;
    return kEmpty;
  }
  [[nodiscard]] constexpr std::size_t size() const noexcept { return 0; }
  [[nodiscard]] constexpr bool empty() const noexcept { return true; }
  [[nodiscard]] const std::vector<std::vector<Cell>>& rows() const noexcept {
    static const std::vector<std::vector<Cell>> kEmpty;
    return kEmpty;
  }
  void record(std::vector<Cell>) noexcept {}
  [[nodiscard]] std::vector<double> column_as_doubles(
      const std::string&) const {
    return {};
  }
  void write_csv(const std::string&) const noexcept {}
  void write_jsonl(const std::string&) const noexcept {}
  void clear() noexcept {}
};

}  // namespace detail

#if NASHLB_OBS_ENABLED
using TraceSink = detail::EnabledTraceSink;
#else
using TraceSink = detail::NullTraceSink;
#endif

}  // namespace nashlb::obs
