#include "obs/journal.hpp"

#include <algorithm>
#include <cinttypes>
#include <stdexcept>

#include "obs/json.hpp"
#include "util/contracts.hpp"

namespace nashlb::obs::detail {

namespace {

/// The journal the contract-failure hook dumps, if any. Plain pointer,
/// no ownership: install_crash_handler() sets it, the journal's
/// destructor clears it, and the hook itself is allocation-free.
EnabledJournal* g_crash_journal = nullptr;

void crash_dump_hook() noexcept {
  if (g_crash_journal == nullptr) return;
  std::fprintf(stderr,
               "nashlb journal: flight recorder tail (last %zu of %" PRIu64
               " events, %" PRIu64 " dropped):\n",
               std::min(g_crash_journal->size(), kJournalCrashTail),
               g_crash_journal->emitted(), g_crash_journal->dropped());
  g_crash_journal->dump_tail(stderr, kJournalCrashTail);
}

}  // namespace

EnabledJournal::EnabledJournal(std::size_t capacity) {
  if (capacity == 0) {
    throw std::invalid_argument("Journal: capacity must be positive");
  }
  ring_.resize(capacity);
}

EnabledJournal::~EnabledJournal() {
  if (g_crash_journal == this) uninstall_crash_handler();
}

EventId EnabledJournal::register_event(const std::string& name,
                                       const std::vector<std::string>& fields) {
  if (name.empty()) {
    throw std::invalid_argument("Journal: event name must be non-empty");
  }
  if (fields.size() > kJournalMaxFields) {
    throw std::invalid_argument("Journal: event \"" + name + "\" declares " +
                                std::to_string(fields.size()) +
                                " fields; the slot payload holds at most " +
                                std::to_string(kJournalMaxFields));
  }
  for (std::size_t e = 0; e < schemas_.size(); ++e) {
    if (schemas_[e].name != name) continue;
    if (schemas_[e].fields != fields) {
      throw std::invalid_argument(
          "Journal: event \"" + name +
          "\" re-registered with a different field list");
    }
    return EventId{static_cast<std::uint32_t>(e)};
  }
  schemas_.push_back(Schema{name, fields});
  return EventId{static_cast<std::uint32_t>(schemas_.size() - 1)};
}

void EnabledJournal::emit(EventId id, std::initializer_list<double> values) {
  if (id.index >= schemas_.size()) {
    throw std::invalid_argument("Journal: emit() with unregistered event id " +
                                std::to_string(id.index));
  }
  const Schema& schema = schemas_[id.index];
  if (values.size() != schema.fields.size()) {
    throw std::invalid_argument(
        "Journal: event \"" + schema.name + "\" expects " +
        std::to_string(schema.fields.size()) + " values, emit() passed " +
        std::to_string(values.size()));
  }
  Slot slot;
  slot.seq = emitted_;
  slot.event = id.index;
  slot.arity = static_cast<std::uint32_t>(values.size());
  std::size_t v = 0;
  for (double value : values) slot.values[v++] = value;
  append(slot);
  ++emitted_;
}

void EnabledJournal::append(const Slot& slot) noexcept {
  if (size_ == ring_.size()) ++dropped_;  // overwriting the oldest entry
  ring_[head_] = slot;
  head_ = (head_ + 1) % ring_.size();
  if (size_ < ring_.size()) ++size_;
}

const std::string& EnabledJournal::event_name(EventId id) const noexcept {
  static const std::string kEmpty;
  if (id.index >= schemas_.size()) return kEmpty;
  return schemas_[id.index].name;
}

void EnabledJournal::snapshot(std::vector<Slot>& out) const {
  out.resize(size_);
  const std::size_t oldest = (head_ + ring_.size() - size_) % ring_.size();
  for (std::size_t k = 0; k < size_; ++k) {
    out[k] = ring_[(oldest + k) % ring_.size()];
  }
}

void EnabledJournal::merge(const EnabledJournal& other) noexcept {
  const std::size_t oldest =
      (other.head_ + other.ring_.size() - other.size_) % other.ring_.size();
  for (std::size_t k = 0; k < other.size_; ++k) {
    const Slot& slot = other.ring_[(oldest + k) % other.ring_.size()];
    // A shard cloned from this journal's registrations always matches;
    // a foreign slot (unknown index or arity drift) is dropped rather
    // than misattributed — merge runs in workers and must not throw.
    if (slot.event >= schemas_.size() ||
        slot.arity != schemas_[slot.event].fields.size()) {
      ++emitted_;
      ++dropped_;
      continue;
    }
    Slot renumbered = slot;
    renumbered.seq = emitted_;
    append(renumbered);
    ++emitted_;
  }
  // Keep emitted == dropped + retained across the fold: the shard's own
  // casualties count as both offered and lost here.
  emitted_ += other.dropped_;
  dropped_ += other.dropped_;
}

void EnabledJournal::publish_metrics(EnabledRegistry& registry,
                                     const std::string& prefix) const {
  registry.counter(prefix + ".emitted").add(emitted_);
  registry.counter(prefix + ".dropped").add(dropped_);
  registry.counter(prefix + ".retained").add(size_);
}

void EnabledJournal::write_jsonl(const std::string& path) const {
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    throw std::runtime_error("Journal: cannot open " + path);
  }
  std::vector<Slot> window;
  snapshot(window);
  for (const Slot& slot : window) {
    const Schema& schema = schemas_[slot.event];
    std::string line = "{\"seq\":" + std::to_string(slot.seq) +
                       ",\"event\":" + json_quote(schema.name);
    for (std::size_t f = 0; f < schema.fields.size(); ++f) {
      line += ',';
      line += json_quote(schema.fields[f]);
      line += ':';
      line += json_number(slot.values[f]);
    }
    line += "}\n";
    std::fputs(line.c_str(), out);
  }
  std::fclose(out);
}

void EnabledJournal::dump_tail(std::FILE* out, std::size_t n) const noexcept {
  const std::size_t count = std::min(n, size_);
  const std::size_t oldest =
      (head_ + ring_.size() - count) % ring_.size();
  for (std::size_t k = 0; k < count; ++k) {
    const Slot& slot = ring_[(oldest + k) % ring_.size()];
    const Schema& schema = schemas_[slot.event];
    std::fprintf(out, "  [%" PRIu64 "] %s:", slot.seq, schema.name.c_str());
    for (std::size_t f = 0; f < slot.arity && f < schema.fields.size(); ++f) {
      std::fprintf(out, " %s=%.17g", schema.fields[f].c_str(),
                   slot.values[f]);
    }
    std::fputc('\n', out);
  }
}

void EnabledJournal::install_crash_handler() noexcept {
  g_crash_journal = this;
  util::contract_failure_hook() = &crash_dump_hook;
}

void EnabledJournal::uninstall_crash_handler() noexcept {
  g_crash_journal = nullptr;
  if (util::contract_failure_hook() == &crash_dump_hook) {
    util::contract_failure_hook() = nullptr;
  }
}

void EnabledJournal::clear() noexcept {
  head_ = 0;
  size_ = 0;
  emitted_ = 0;
  dropped_ = 0;
}

}  // namespace nashlb::obs::detail
