#include "obs/histogram.hpp"

#include <algorithm>
#include <cmath>

namespace nashlb::obs {

double HistogramLayout::bucket_lower_bound(std::size_t k) noexcept {
  if (k >= bucket_count()) k = bucket_count() - 1;
  return std::exp2(static_cast<double>(kMinExponent) +
                   static_cast<double>(k) /
                       static_cast<double>(kBucketsPerOctave));
}

double HistogramLayout::bucket_upper_bound(std::size_t k) noexcept {
  if (k >= bucket_count()) k = bucket_count() - 1;
  return std::exp2(static_cast<double>(kMinExponent) +
                   static_cast<double>(k + 1) /
                       static_cast<double>(kBucketsPerOctave));
}

std::size_t HistogramLayout::bucket_index(double seconds) noexcept {
  if (!(seconds > 0.0) || !std::isfinite(seconds)) return 0;
  const double pos = (std::log2(seconds) - static_cast<double>(kMinExponent)) *
                     static_cast<double>(kBucketsPerOctave);
  if (pos <= 0.0) return 0;
  const auto k = static_cast<std::size_t>(pos);
  return k >= bucket_count() ? bucket_count() - 1 : k;
}

namespace detail {

void EnabledHistogram::record(double seconds) noexcept {
  if (counts_.empty()) counts_.assign(Layout::bucket_count(), 0);
  ++counts_[Layout::bucket_index(seconds)];
  if (count_ == 0) {
    min_ = seconds;
    max_ = seconds;
  } else {
    min_ = std::min(min_, seconds);
    max_ = std::max(max_, seconds);
  }
  ++count_;
  sum_ += seconds;
}

void EnabledHistogram::merge(const EnabledHistogram& other) noexcept {
  if (other.count_ == 0) return;
  if (counts_.empty()) counts_.assign(Layout::bucket_count(), 0);
  for (std::size_t k = 0; k < counts_.size(); ++k) {
    counts_[k] += other.counts_[k];
  }
  min_ = count_ == 0 ? other.min_ : std::min(min_, other.min_);
  max_ = count_ == 0 ? other.max_ : std::max(max_, other.max_);
  count_ += other.count_;
  sum_ += other.sum_;
}

std::uint64_t EnabledHistogram::bucket(std::size_t k) const noexcept {
  return k < counts_.size() ? counts_[k] : 0;
}

double EnabledHistogram::quantile(double q) const noexcept {
  if (count_ == 0) return 0.0;
  if (q <= 0.0) return min_;  // the degenerate quantiles are exact
  if (q >= 1.0) return max_;
  // Target rank in (0, count]; bucket b is the one whose cumulative
  // count first reaches it.
  const double target =
      std::max(1.0, q * static_cast<double>(count_));
  std::uint64_t cum = 0;
  for (std::size_t k = 0; k < counts_.size(); ++k) {
    if (counts_[k] == 0) continue;
    const double before = static_cast<double>(cum);
    cum += counts_[k];
    if (static_cast<double>(cum) >= target) {
      const double lo = Layout::bucket_lower_bound(k);
      const double hi = Layout::bucket_upper_bound(k);
      const double frac =
          (target - before) / static_cast<double>(counts_[k]);
      return std::clamp(lo + (hi - lo) * frac, min_, max_);
    }
  }
  return max_;  // unreachable for a consistent histogram
}

void EnabledHistogram::reset() noexcept {
  counts_.clear();
  count_ = 0;
  sum_ = 0.0;
  min_ = 0.0;
  max_ = 0.0;
}

}  // namespace detail
}  // namespace nashlb::obs
