// Run manifests: the provenance stamp for bench output.
//
// A BENCH_*.json or CSV number is only comparable to another run's if
// the two runs were built and configured the same way. RunManifest
// captures the build identity (git sha baked at configure time, the
// OBS/CHECK/SANITIZE/WERROR switches), the resolved thread count, and
// free-form run parameters (seeds, instance shape) as ordered key/value
// extras, plus an FNV-1a hash over the whole record so two manifests
// can be compared with one number. Every bench stamps its manifest into
// its JSON output (bench::write_manifest), and tools/nashlb_report.py
// renders and diffs them; tools/check_bench.py reports manifest drift
// without treating the fields as metrics.
//
// Deliberately NOT twinned: a manifest must exist precisely so an
// -DNASHLB_OBS=OFF run is labeled as such, and it costs nothing on any
// hot path (it is built once per bench process).
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace nashlb::obs {

struct RunManifest {
  std::string git_sha = "unknown";
  bool obs_enabled = false;
  bool check_enabled = false;
  std::string sanitize = "OFF";
  bool werror = false;
  std::size_t threads = 0;
  /// Run-specific parameters (seeds, config), in insertion order.
  std::vector<std::pair<std::string, std::string>> extras;

  /// Fills the build-identity fields from the compiled-in configuration
  /// and `threads` from util::resolve_threads(0).
  [[nodiscard]] static RunManifest collect();

  /// Appends (or overwrites) an extra. Values are stored as strings;
  /// numeric overloads format deterministically.
  void set(const std::string& key, const std::string& value);
  void set(const std::string& key, std::int64_t value);
  void set(const std::string& key, double value);

  /// FNV-1a over the canonical serialization of every field above —
  /// equal hashes mean identical build identity and run parameters.
  [[nodiscard]] std::uint64_t config_hash() const;

  /// One JSON object (no trailing newline) with the fields above plus
  /// "config_hash"; extras serialize as a nested "extras" object.
  [[nodiscard]] std::string to_json() const;

  /// Writes to_json() plus a newline. Throws std::runtime_error if the
  /// file cannot be opened.
  void write_json(const std::string& path) const;
};

}  // namespace nashlb::obs
