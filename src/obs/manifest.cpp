#include "obs/manifest.hpp"

#include <cstdio>
#include <stdexcept>

#include "obs/config.hpp"
#include "obs/json.hpp"
#include "util/contracts.hpp"
#include "util/parallel.hpp"

// Configure-time stamps (src/obs/CMakeLists.txt): the git sha of the
// checked-out tree and the cache values of the sanitizer/-Werror
// switches, which have no runtime macro of their own.
#ifndef NASHLB_GIT_SHA
#define NASHLB_GIT_SHA "unknown"
#endif
#ifndef NASHLB_SANITIZE_NAME
#define NASHLB_SANITIZE_NAME "OFF"
#endif
#ifndef NASHLB_WERROR_FLAG
#define NASHLB_WERROR_FLAG 0
#endif

namespace nashlb::obs {

RunManifest RunManifest::collect() {
  RunManifest m;
  m.git_sha = NASHLB_GIT_SHA;
  m.obs_enabled = kEnabled;
  m.check_enabled = util::kCheckEnabled;
  m.sanitize = NASHLB_SANITIZE_NAME;
  m.werror = NASHLB_WERROR_FLAG != 0;
  m.threads = util::resolve_threads(0);
  return m;
}

void RunManifest::set(const std::string& key, const std::string& value) {
  for (auto& kv : extras) {
    if (kv.first == key) {
      kv.second = value;
      return;
    }
  }
  extras.emplace_back(key, value);
}

void RunManifest::set(const std::string& key, std::int64_t value) {
  set(key, json_number(value));
}

void RunManifest::set(const std::string& key, double value) {
  set(key, json_number(value));
}

std::uint64_t RunManifest::config_hash() const {
  // FNV-1a, 64-bit: stable across platforms, good enough to tell two
  // run configurations apart at a glance.
  std::uint64_t h = 14695981039346656037ULL;
  const auto mix = [&h](const std::string& s) {
    for (char c : s) {
      h ^= static_cast<unsigned char>(c);
      h *= 1099511628211ULL;
    }
    h ^= 0xffU;  // field separator so ("ab","c") != ("a","bc")
    h *= 1099511628211ULL;
  };
  mix(git_sha);
  mix(obs_enabled ? "obs=1" : "obs=0");
  mix(check_enabled ? "check=1" : "check=0");
  mix(sanitize);
  mix(werror ? "werror=1" : "werror=0");
  mix(std::to_string(threads));
  for (const auto& kv : extras) {
    mix(kv.first);
    mix(kv.second);
  }
  return h;
}

std::string RunManifest::to_json() const {
  std::string out = "{";
  out += "\"git_sha\":" + json_quote(git_sha);
  out += ",\"obs\":" + std::string(obs_enabled ? "true" : "false");
  out += ",\"check\":" + std::string(check_enabled ? "true" : "false");
  out += ",\"sanitize\":" + json_quote(sanitize);
  out += ",\"werror\":" + std::string(werror ? "true" : "false");
  out += ",\"threads\":" + json_number(static_cast<std::uint64_t>(threads));
  out += ",\"config_hash\":" + json_quote([this] {
    char buf[19];
    std::snprintf(buf, sizeof buf, "%016llx",
                  static_cast<unsigned long long>(config_hash()));
    return std::string(buf);
  }());
  out += ",\"extras\":{";
  for (std::size_t k = 0; k < extras.size(); ++k) {
    if (k != 0) out += ",";
    out += json_quote(extras[k].first) + ":" + json_quote(extras[k].second);
  }
  out += "}}";
  return out;
}

void RunManifest::write_json(const std::string& path) const {
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    throw std::runtime_error("RunManifest: cannot open " + path);
  }
  const std::string body = to_json();
  std::fputs(body.c_str(), out);
  std::fputc('\n', out);
  std::fclose(out);
}

}  // namespace nashlb::obs
