// The obs layer's compile-time master switch, shared by every
// instrument header (metrics, histogram, span, trace) so they can
// select their enabled/no-op twin without including each other.
#pragma once

#ifndef NASHLB_OBS_ENABLED
#define NASHLB_OBS_ENABLED 1
#endif

namespace nashlb::obs {

/// Compile-time master switch; `if (obs::kEnabled && ...)` blocks are
/// dead-code-eliminated when the layer is disabled.
inline constexpr bool kEnabled = NASHLB_OBS_ENABLED != 0;

}  // namespace nashlb::obs
