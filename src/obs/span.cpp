#include "obs/span.hpp"

#include <fstream>
#include <stdexcept>
#include <utility>

#include "obs/json.hpp"

namespace nashlb::obs {

std::vector<std::string> span_trace_fields() {
  return {"name", "cat", "ph", "ts", "dur", "pid", "tid", "args"};
}

namespace {

/// Writes one trace event as `{"field": value, ...}`, zipping the
/// declared field names with the pre-rendered JSON values. The arity
/// guard backs the lint-time check with a runtime one.
void emit_event(std::ofstream& out, const std::vector<std::string>& fields,
                const std::vector<std::string>& values) {
  if (fields.size() != values.size()) {
    throw std::logic_error("SpanTracer: event arity != span_trace_fields()");
  }
  out << '{';
  for (std::size_t f = 0; f < fields.size(); ++f) {
    if (f != 0) out << ',';
    out << json_quote(fields[f]) << ':' << values[f];
  }
  out << '}';
}

}  // namespace

namespace detail {

SpanId EnabledSpanTracer::begin(std::string name, std::string category,
                                std::uint32_t track, std::int64_t id) {
  OpenSpan open;
  open.id_value = next_id_++;
  open.event.name = std::move(name);
  open.event.category = std::move(category);
  open.event.start_us = now_us();
  open.event.track = track;
  open.event.id = id;
  open_.push_back(std::move(open));
  return {open_.back().id_value};
}

void EnabledSpanTracer::end(SpanId span) {
  if (span.value == 0) return;
  // Scan back-to-front: RAII nesting closes the most recent span first.
  for (std::size_t k = open_.size(); k > 0; --k) {
    OpenSpan& open = open_[k - 1];
    if (open.id_value != span.value) continue;
    open.event.duration_us = now_us() - open.event.start_us;
    events_.push_back(std::move(open.event));
    open_.erase(open_.begin() + static_cast<std::ptrdiff_t>(k - 1));
    return;
  }
}

void EnabledSpanTracer::record_span(std::string name, std::string category,
                                    double start_seconds,
                                    double duration_seconds,
                                    std::uint32_t track, std::int64_t id) {
  SpanEvent event;
  event.name = std::move(name);
  event.category = std::move(category);
  event.start_us = start_seconds * 1e6;
  event.duration_us = duration_seconds > 0.0 ? duration_seconds * 1e6 : 0.0;
  event.track = track;
  event.id = id;
  events_.push_back(std::move(event));
}

void EnabledSpanTracer::write_chrome_trace(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("SpanTracer: cannot open '" + path + "'");
  }
  const std::vector<std::string> fields = span_trace_fields();
  out << "{\"traceEvents\":[\n";
  for (std::size_t e = 0; e < events_.size(); ++e) {
    const SpanEvent& event = events_[e];
    emit_event(out, fields,
               {json_quote(event.name), json_quote(event.category), "\"X\"",
                json_number(event.start_us), json_number(event.duration_us),
                "0", json_number(static_cast<std::int64_t>(event.track)),
                "{\"id\":" + json_number(event.id) + "}"});
    out << (e + 1 < events_.size() ? ",\n" : "\n");
  }
  out << "],\"displayTimeUnit\":\"ms\"}\n";
}

}  // namespace detail
}  // namespace nashlb::obs
