#include "distributed/monitor.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace nashlb::distributed {

RateMonitor::RateMonitor(double noise_sigma, std::uint64_t seed)
    : noise_sigma_(noise_sigma), rng_(seed) {
  if (!(noise_sigma >= 0.0)) {
    throw std::invalid_argument("RateMonitor: noise_sigma must be >= 0");
  }
}

std::vector<double> RateMonitor::observe(const core::Instance& inst,
                                         const core::StrategyProfile& s,
                                         std::size_t user) {
  std::vector<double> avail = s.available_rates(inst, user);
  perturb(inst, avail);
  return avail;
}

void RateMonitor::perturb(const core::Instance& inst,
                          std::span<double> avail) {
  if (noise_sigma_ == 0.0) return;

  const stats::Normal noise(0.0, noise_sigma_);
  for (std::size_t i = 0; i < avail.size(); ++i) {
    const double factor = std::exp(noise.sample(rng_));
    // Clamp into (0, true value]: an estimator can under-observe idle
    // capacity but cannot see more capacity than physically exists, and a
    // non-positive estimate would make the computer unusable forever.
    const double estimated = avail[i] * factor;
    avail[i] = std::clamp(estimated, 1e-6 * inst.mu[i], avail[i]);
  }
}

}  // namespace nashlb::distributed
