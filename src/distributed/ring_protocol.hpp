// The NASH distributed load balancing algorithm (§3) as a genuine
// message-passing protocol, executed on the discrete-event simulator.
//
// The users form a logical ring. A token message carrying
// (iteration l, accumulated norm) circulates: on receipt, user j inspects
// the run queues (RateMonitor), computes its best reply with the OPTIMAL
// algorithm, installs the new strategy, adds |D_j^(l) - D_j^(l-1)| to the
// token's norm, and forwards the token after a compute delay. User 1
// (index 0 here) closes each round: it records the round norm and either
// starts the next round or, when norm <= epsilon, sends a STOP message
// around the ring — exactly the Send/Recv structure of the paper's
// pseudocode.
//
// With exact monitoring (noise_sigma = 0) the protocol performs the same
// sequence of best replies as core::best_reply_dynamics, so it converges
// to the same equilibrium in the same number of rounds — verified by the
// V2 bench and the integration tests. What the protocol adds is the
// deployment view: wall-clock (simulated) convergence latency and message
// count as functions of link latency and compute time.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/dynamics.hpp"
#include "core/types.hpp"
#include "obs/convergence.hpp"
#include "obs/journal.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "obs/trace.hpp"

namespace nashlb::distributed {

/// Protocol parameters.
struct RingOptions {
  core::Initialization init = core::Initialization::Proportional;
  /// Acceptance tolerance epsilon on the per-round norm (seconds).
  double tolerance = 1e-4;
  /// Hard cap on rounds; exceeded => converged = false.
  std::size_t max_rounds = 1000;
  /// One-way message latency between ring neighbours (simulated seconds).
  double link_latency = 1e-3;
  /// Local time to inspect run queues + run OPTIMAL (simulated seconds).
  double compute_time = 5e-4;
  /// Log-normal sigma of the run-queue estimation error (0 = exact).
  double noise_sigma = 0.0;
  /// RNG seed for the estimation noise.
  std::uint64_t seed = 0x5eedULL;
  /// Optional per-round trace (not owned, may be null): one row per round
  /// close under the `ring_trace_columns()` schema.
  obs::TraceSink* trace = nullptr;
  /// Optional span tracer (not owned, may be null) on the *simulated*
  /// timeline: every token/STOP hop becomes a "hop"/"stop" span on the
  /// sending user's track and every local best-reply a "compute" span on
  /// the updating user's track (id = round). A no-op when the obs layer
  /// is compiled out.
  obs::SpanTracer* spans = nullptr;
  /// Optional metric registry (not owned, may be null): the protocol
  /// counts messages sent per node under `ring.node.<j>.sent`.
  obs::Registry* metrics = nullptr;
  /// Optional convergence probe (not owned, may be null): one row per
  /// round close under the `convergence_trace_columns()` schema, driven
  /// by the same core::ConvergenceProbeDriver as the in-memory dynamics
  /// — so a protocol trajectory diffs directly against a dynamics one.
  obs::ConvergenceProbe* probe = nullptr;
  /// Optional event journal (not owned, may be null): the protocol
  /// registers `ring.round` {round, norm, messages} and emits one event
  /// per round close.
  obs::Journal* journal = nullptr;
};

/// Schema of the ring protocol's per-round trace, in column order:
/// round (1-based), norm (seconds), messages (cumulative ring messages),
/// sim_time (simulated seconds when user 1 closed the round),
/// wall_seconds (cumulative host wall time).
[[nodiscard]] std::vector<std::string> ring_trace_columns();

/// Protocol outcome.
struct RingResult {
  core::StrategyProfile profile;  ///< final strategy profile
  bool converged = false;
  std::size_t rounds = 0;         ///< completed update rounds
  std::size_t messages = 0;       ///< total ring messages (incl. STOP wave)
  double finish_time = 0.0;       ///< simulated seconds until quiescence
  std::vector<double> norm_history;  ///< norm recorded at each round close
  std::vector<double> user_times;    ///< final D_j per user
};

/// Runs the protocol on instance `inst` until convergence or the round cap.
[[nodiscard]] RingResult run_ring_protocol(const core::Instance& inst,
                                           const RingOptions& options = {});

}  // namespace nashlb::distributed
