#include "distributed/ring_protocol.hpp"

#include <chrono>
#include <cmath>
#include <memory>
#include <optional>
#include <stdexcept>

#include "core/best_reply.hpp"
#include "core/cost.hpp"
#include "core/load_state.hpp"
#include "des/simulator.hpp"
#include "distributed/monitor.hpp"
#include "util/contracts.hpp"

namespace nashlb::distributed {

std::vector<std::string> ring_trace_columns() {
  return {"round", "norm", "messages", "sim_time", "wall_seconds"};
}

namespace {

/// All mutable protocol state, shared by the event closures.
struct ProtocolState {
  const core::Instance& inst;
  RingOptions opts;
  des::Simulator sim;
  RateMonitor monitor;
  core::StrategyProfile profile;
  core::LoadState state;          // incremental aggregate loads
  core::BestReplyWorkspace ws;    // per-update scratch (no allocation)
  std::vector<double> last_times;  // D_j at each user's previous update
  std::size_t round = 1;
  double norm = 0.0;
  // Wall clock feeds the round trace's elapsed-seconds column only —
  // protocol time is the DES simulator's `sim.now()`, never this.
  // nashlb-analyzer: allow(nondeterminism-sources) -- trace-only timing
  std::chrono::steady_clock::time_point wall_start =
      std::chrono::steady_clock::now();
  // Convergence telemetry (same driver as the in-memory dynamics) and
  // the round event of the journal, both engaged only when the caller
  // passes the instruments.
  std::optional<core::ConvergenceProbeDriver> probe_driver;
  obs::EventId round_event{};
  RingResult result;

  ProtocolState(const core::Instance& instance, const RingOptions& options,
                core::StrategyProfile start)
      : inst(instance),
        opts(options),
        monitor(options.noise_sigma, options.seed),
        profile(std::move(start)),
        state(instance, profile),
        last_times(instance.num_users(), 0.0),
        result{profile, false, 0, 0, 0.0, {}, {}} {
    ws.resize(instance.num_computers());
  }
};

/// Token arrival at `user`: update strategy, forward. Declared up front so
/// the closures can recurse.
void deliver_token(const std::shared_ptr<ProtocolState>& st,
                   std::size_t user);

/// Books one outgoing message for the node sending to `to`: per-node
/// counter plus a hop span on the sender's track of the simulated
/// timeline. `kind` is "hop" (token) or "stop" (STOP wave).
void note_send(const std::shared_ptr<ProtocolState>& st, std::size_t to,
               const char* kind) {
  const std::size_t m = st->inst.num_users();
  const std::size_t from = (to + m - 1) % m;
  if (obs::kEnabled && st->opts.metrics) {
    st->opts.metrics->counter("ring.node." + std::to_string(from) + ".sent")
        .add();
  }
  if (obs::kEnabled && st->opts.spans) {
    st->opts.spans->record_span(kind, "ring", st->sim.now(),
                                st->opts.link_latency,
                                static_cast<std::uint32_t>(from),
                                static_cast<std::int64_t>(st->round));
  }
}

void send_token(const std::shared_ptr<ProtocolState>& st, std::size_t to) {
  ++st->result.messages;
  note_send(st, to, "hop");
  st->sim.schedule(st->opts.link_latency,
                   [st, to](des::SimTime) { deliver_token(st, to); });
}

/// The STOP wave: each user forwards it once, then exits (§3 pseudocode).
void send_stop(const std::shared_ptr<ProtocolState>& st, std::size_t to) {
  if (to == 0) return;  // wave completed the ring
  ++st->result.messages;
  note_send(st, to, "stop");
  st->sim.schedule(st->opts.link_latency, [st, to](des::SimTime) {
    send_stop(st, (to + 1) % st->inst.num_users());
  });
}

/// Books the compute window [now, now + compute_time] in which `user`
/// inspects the queues and runs OPTIMAL.
void note_compute(const std::shared_ptr<ProtocolState>& st,
                  std::size_t user) {
  if (obs::kEnabled && st->opts.spans) {
    st->opts.spans->record_span("compute", "ring", st->sim.now(),
                                st->opts.compute_time,
                                static_cast<std::uint32_t>(user),
                                static_cast<std::int64_t>(st->round));
  }
}

void update_user(const std::shared_ptr<ProtocolState>& st, std::size_t user) {
  // Token sanity: a token addressed past the ring means the forwarding
  // arithmetic broke; an update after the STOP wave would double-count.
  NASHLB_EXPECT(user < st->inst.num_users(),
                "token delivered to user %zu of a %zu-user ring", user,
                st->inst.num_users());
  NASHLB_EXPECT(st->round <= st->opts.max_rounds,
                "token circulating in round %zu past max_rounds=%zu",
                st->round, st->opts.max_rounds);
  // Inspect the run queues (O(n) off the incremental loads), apply the
  // monitor's noise model, reply, and commit — the same per-move sequence
  // as core::best_reply_dynamics, so exact monitoring reproduces the
  // in-memory dynamics bit-for-bit.
  st->state.available_rates(st->profile, user, st->ws.avail);
  st->monitor.perturb(st->inst, st->ws.avail);
  core::optimal_fractions_into(st->ws.avail, st->inst.phi[user], st->ws.reply,
                               st->ws.waterfill);
  st->state.commit_row(st->profile, user, st->ws.reply);
  const double d = st->state.user_response_time(st->profile, user);
  st->norm += std::fabs(d - st->last_times[user]);
  st->last_times[user] = d;
}

void close_round(const std::shared_ptr<ProtocolState>& st) {
  // The round norm is a sum of |D_j - D_j_prev| terms: nonnegative by
  // construction, and finite under exact monitoring (a noisy monitor can
  // legitimately overload a computer for a round, so only NaN — order of
  // operations gone wrong — is a contract breach there).
  NASHLB_INVARIANT(st->norm >= 0.0 &&
                       (std::isfinite(st->norm) ||
                        (st->opts.noise_sigma > 0.0 && !std::isnan(st->norm))),
                   "round %zu closed with norm=%.17g (noise_sigma=%.3g)",
                   st->round, st->norm, st->opts.noise_sigma);
  st->result.norm_history.push_back(st->norm);
  st->result.rounds = st->round;
  if (obs::kEnabled && st->opts.trace) {
    st->opts.trace->record(
        {static_cast<std::int64_t>(st->round), st->norm,
         static_cast<std::int64_t>(st->result.messages), st->sim.now(),
         // nashlb-analyzer: allow(nondeterminism-sources) -- trace-only
         std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       st->wall_start)
             .count()});
  }
  if (st->probe_driver) {
    st->probe_driver->record_round(st->inst, st->profile, st->state.loads(),
                                   st->round, st->norm, true);
  }
  if (obs::kEnabled && st->opts.journal) {
    st->opts.journal->emit(
        st->round_event,
        {static_cast<double>(st->round), st->norm,
         static_cast<double>(st->result.messages)});
  }
  if (st->norm <= st->opts.tolerance) {
    st->result.converged = true;
    send_stop(st, 1 % st->inst.num_users());
    return;
  }
  if (st->round >= st->opts.max_rounds) return;  // give up, not converged
  ++st->round;
  st->norm = 0.0;
  // User 1 (index 0) starts the next round with its own update. The
  // loads are rebuilt from the profile at each round boundary, mirroring
  // core::best_reply_dynamics' drift control exactly.
  note_compute(st, 0);
  st->sim.schedule(st->opts.compute_time, [st](des::SimTime) {
    st->state.rebuild(st->profile);
    update_user(st, 0);
    send_token(st, 1 % st->inst.num_users());
  });
}

void deliver_token(const std::shared_ptr<ProtocolState>& st,
                   std::size_t user) {
  if (user == 0) {
    // Token back at user 1: the round is complete.
    close_round(st);
    return;
  }
  note_compute(st, user);
  st->sim.schedule(st->opts.compute_time, [st, user](des::SimTime) {
    update_user(st, user);
    send_token(st, (user + 1) % st->inst.num_users());
  });
}

}  // namespace

RingResult run_ring_protocol(const core::Instance& inst,
                             const RingOptions& options) {
  inst.validate();
  if (!(options.link_latency >= 0.0) || !(options.compute_time >= 0.0)) {
    throw std::invalid_argument(
        "run_ring_protocol: latencies must be >= 0");
  }
  const std::size_t m = inst.num_users();

  core::StrategyProfile start(m, inst.num_computers());
  std::vector<double> initial_times(m, 0.0);
  if (options.init == core::Initialization::Proportional) {
    start = core::StrategyProfile::proportional(inst);
    initial_times = core::user_response_times(inst, start);
  }

  auto st = std::make_shared<ProtocolState>(inst, options, std::move(start));
  st->last_times = std::move(initial_times);
  if (obs::kEnabled && options.probe != nullptr) {
    st->probe_driver.emplace(*options.probe, inst, st->profile);
  }
  if (obs::kEnabled && options.journal != nullptr) {
    st->round_event = options.journal->register_event(
        "ring.round", {"round", "norm", "messages"});
  }

  // Kick off round 1 at user 1 (index 0).
  note_compute(st, 0);
  st->sim.schedule(options.compute_time, [st, m](des::SimTime) {
    update_user(st, 0);
    if (m == 1) {
      close_round(st);
    } else {
      send_token(st, 1);
    }
  });
  // Single-user rings degenerate: each "round" is just user 0's update.
  if (m == 1) {
    // close_round above re-schedules user 0 directly; nothing extra to do.
  }

  st->sim.run();
  st->result.finish_time = st->sim.now();
  st->result.profile = st->profile;
  st->result.user_times =
      core::user_response_times(inst, st->profile);
  return st->result;
}

}  // namespace nashlb::distributed
