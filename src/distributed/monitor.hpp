// Run-queue monitor: how a user of the distributed algorithm observes the
// system.
//
// §2, remark after Theorem 2.2: "the available processing rate can be
// determined by statistical estimation of the run queue length of each
// processor". In simulation the exact available rates derive from the
// current strategy profile; the monitor reports them either exactly
// (the default — the protocol then reproduces the in-memory dynamics
// bit-for-bit) or with multiplicative log-normal estimation noise, which
// the A6 uncertainty bench uses to probe robustness.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "core/types.hpp"
#include "stats/distributions.hpp"
#include "stats/rng.hpp"

namespace nashlb::distributed {

/// Observes available processing rates on behalf of one user.
class RateMonitor {
 public:
  /// `noise_sigma` is the standard deviation of the log-normal
  /// multiplicative estimation error; 0 means exact observation.
  explicit RateMonitor(double noise_sigma = 0.0,
                       std::uint64_t seed = 0x5eedULL);

  /// Available rates mu^j seen by `user` under `profile`, possibly
  /// perturbed by estimation noise. Noisy estimates are clamped below the
  /// true total capacity headroom so a user never *plans* to overload a
  /// computer it can observe (a real estimator bounds its estimate by the
  /// processor's nominal rate the same way).
  [[nodiscard]] std::vector<double> observe(const core::Instance& inst,
                                            const core::StrategyProfile& s,
                                            std::size_t user);

  /// In-place noise model for callers that already hold the exact
  /// available rates (e.g. computed in O(n) from an incremental
  /// core::LoadState): perturbs `avail` exactly as `observe` would.
  /// A no-op when noise_sigma is 0 — no RNG draws are consumed, so exact
  /// monitoring stays bit-for-bit reproducible.
  void perturb(const core::Instance& inst, std::span<double> avail);

  [[nodiscard]] double noise_sigma() const noexcept { return noise_sigma_; }

 private:
  double noise_sigma_;
  stats::Xoshiro256 rng_;
};

}  // namespace nashlb::distributed
