#include "core/delay_model.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "queueing/mmc.hpp"

namespace nashlb::core {

MM1Delay::MM1Delay(double mu) : mu_(mu) {
  if (!(mu > 0.0) || !std::isfinite(mu)) {
    throw std::invalid_argument("MM1Delay: mu must be finite and > 0");
  }
}

double MM1Delay::response_time(double lambda) const {
  if (!(lambda >= 0.0) || !(lambda < mu_)) {
    throw std::invalid_argument("MM1Delay: load out of [0, mu)");
  }
  return 1.0 / (mu_ - lambda);
}

double MM1Delay::response_time_derivative(double lambda) const {
  const double slack = mu_ - lambda;
  if (!(lambda >= 0.0) || !(slack > 0.0)) {
    throw std::invalid_argument("MM1Delay: load out of [0, mu)");
  }
  return 1.0 / (slack * slack);
}

MMCDelay::MMCDelay(double mu_core, unsigned servers)
    : mu_(mu_core), c_(servers) {
  if (c_ == 0 || !(mu_core > 0.0) || !std::isfinite(mu_core)) {
    throw std::invalid_argument("MMCDelay: need servers >= 1 and mu > 0");
  }
}

double MMCDelay::capacity() const {
  return mu_ * static_cast<double>(c_);
}

double MMCDelay::response_time(double lambda) const {
  return queueing::MMC(lambda, mu_, c_).mean_response_time();
}

double MMCDelay::response_time_derivative(double lambda) const {
  const double cap = capacity();
  if (!(lambda >= 0.0) || !(lambda < cap)) {
    throw std::invalid_argument("MMCDelay: load out of [0, capacity)");
  }
  // Central difference with a step scaled to the remaining slack so the
  // stencil never leaves the stability region.
  const double h = std::min(1e-6 * cap, 0.49 * (cap - lambda));
  if (h <= 0.0) {
    throw std::invalid_argument("MMCDelay: load too close to capacity");
  }
  const double lo = std::max(0.0, lambda - h);
  const double hi = lambda + h;
  return (response_time(hi) - response_time(lo)) / (hi - lo);
}

ShiftedDelay::ShiftedDelay(DelayModelPtr inner, double shift)
    : inner_(std::move(inner)), shift_(shift) {
  if (!inner_) {
    throw std::invalid_argument("ShiftedDelay: null inner model");
  }
  if (!(shift >= 0.0) || !std::isfinite(shift)) {
    throw std::invalid_argument(
        "ShiftedDelay: shift must be finite and >= 0");
  }
}

double ShiftedDelay::response_time(double lambda) const {
  return inner_->response_time(lambda) + shift_;
}

double ShiftedDelay::response_time_derivative(double lambda) const {
  return inner_->response_time_derivative(lambda);
}

double ShiftedDelay::capacity() const { return inner_->capacity(); }

std::vector<DelayModelPtr> mm1_models_with_comm(
    const std::vector<double>& mu, const std::vector<double>& comm_delay) {
  if (mu.size() != comm_delay.size()) {
    throw std::invalid_argument("mm1_models_with_comm: size mismatch");
  }
  std::vector<DelayModelPtr> models;
  models.reserve(mu.size());
  for (std::size_t i = 0; i < mu.size(); ++i) {
    models.push_back(std::make_shared<ShiftedDelay>(
        std::make_shared<MM1Delay>(mu[i]), comm_delay[i]));
  }
  return models;
}

std::vector<DelayModelPtr> mm1_models(const std::vector<double>& mu) {
  std::vector<DelayModelPtr> models;
  models.reserve(mu.size());
  for (double m : mu) models.push_back(std::make_shared<MM1Delay>(m));
  return models;
}

}  // namespace nashlb::core
