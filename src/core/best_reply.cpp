#include "core/best_reply.hpp"

#include <cmath>
#include <stdexcept>

#include "core/cost.hpp"
#include "core/waterfill.hpp"

namespace nashlb::core {

std::vector<double> optimal_fractions(std::span<const double> available_rates,
                                      double phi) {
  if (!(phi > 0.0) || !std::isfinite(phi)) {
    throw std::invalid_argument(
        "optimal_fractions: phi must be finite and > 0");
  }
  const WaterfillResult wf = waterfill_sqrt(available_rates, phi);
  std::vector<double> fractions(wf.lambda.size());
  for (std::size_t i = 0; i < fractions.size(); ++i) {
    fractions[i] = wf.lambda[i] / phi;
  }
  return fractions;
}

std::vector<double> best_reply(const Instance& inst, const StrategyProfile& s,
                               std::size_t user) {
  if (user >= inst.num_users()) {
    throw std::out_of_range("best_reply: user out of range");
  }
  const std::vector<double> avail = s.available_rates(inst, user);
  for (std::size_t i = 0; i < avail.size(); ++i) {
    if (!(avail[i] > 0.0)) {
      throw std::invalid_argument(
          "best_reply: other users overload computer " + std::to_string(i));
    }
  }
  return optimal_fractions(avail, inst.phi[user]);
}

double best_reply_gain(const Instance& inst, const StrategyProfile& s,
                       std::size_t user) {
  const double current = user_response_time(inst, s, user);
  StrategyProfile deviated = s;
  const std::vector<double> reply = best_reply(inst, s, user);
  deviated.set_row(user, reply);
  const double best = user_response_time(inst, deviated, user);
  return current - best;
}

}  // namespace nashlb::core
