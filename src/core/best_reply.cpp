#include "core/best_reply.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "core/cost.hpp"
#include "core/waterfill.hpp"
#include "util/contracts.hpp"

namespace nashlb::core {
namespace {

void check_phi(double phi) {
  if (!(phi > 0.0) || !std::isfinite(phi)) {
    throw std::invalid_argument(
        "optimal_fractions: phi must be finite and > 0");
  }
}

void check_available(std::span<const double> avail) {
  for (std::size_t i = 0; i < avail.size(); ++i) {
    if (!(avail[i] > 0.0)) {
      throw std::invalid_argument(
          "best_reply: other users overload computer " + std::to_string(i));
    }
  }
}

}  // namespace

std::vector<double> optimal_fractions(std::span<const double> available_rates,
                                      double phi) {
  check_phi(phi);
  const WaterfillResult wf = waterfill_sqrt(available_rates, phi);
  std::vector<double> fractions(wf.lambda.size());
  for (std::size_t i = 0; i < fractions.size(); ++i) {
    fractions[i] = wf.lambda[i] / phi;
  }
  return fractions;
}

void optimal_fractions_into(std::span<const double> available_rates,
                            double phi, std::span<double> out,
                            WaterfillWorkspace& ws) {
  check_phi(phi);
  static_cast<void>(waterfill_sqrt_into(available_rates, phi, out, ws));
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] /= phi;
  }
#if NASHLB_CHECK_ENABLED
  // The reply the dynamics commits must be a strategy, i.e. a point of
  // the probability simplex (paper constraint sum_i s_ji = 1, s_ji >= 0).
  double sum = 0.0;
  for (std::size_t i = 0; i < out.size(); ++i) {
    NASHLB_ENSURE(out[i] >= 0.0 && out[i] <= 1.0 + 1e-12,
                  "reply fraction out[%zu]=%.17g outside [0, 1]", i, out[i]);
    sum += out[i];
  }
  NASHLB_ENSURE(std::fabs(sum - 1.0) <= 1e-9 * static_cast<double>(out.size() + 1),
                "reply fractions sum to %.17g, not 1", sum);
#endif
}

std::vector<double> best_reply(const Instance& inst, const StrategyProfile& s,
                               std::size_t user) {
  if (user >= inst.num_users()) {
    throw std::out_of_range("best_reply: user out of range");
  }
  const std::vector<double> avail = s.available_rates(inst, user);
  check_available(avail);
  return optimal_fractions(avail, inst.phi[user]);
}

std::span<const double> best_reply_into(const Instance& inst,
                                        const StrategyProfile& s,
                                        const LoadState& state,
                                        std::size_t user,
                                        BestReplyWorkspace& ws) {
  if (user >= inst.num_users()) {
    throw std::out_of_range("best_reply: user out of range");
  }
  return best_reply_into(inst, s, state, user, inst.phi[user], ws);
}

std::span<const double> best_reply_into(const Instance& inst,
                                        const StrategyProfile& s,
                                        const LoadState& state,
                                        std::size_t user, double demand,
                                        BestReplyWorkspace& ws) {
  if (user >= inst.num_users()) {
    throw std::out_of_range("best_reply: user out of range");
  }
  ws.resize(inst.num_computers());
  state.available_rates(s, user, demand, ws.avail);
  check_available(ws.avail);
  optimal_fractions_into(ws.avail, demand, ws.reply, ws.waterfill);
  return {ws.reply.data(), ws.reply.size()};
}

double best_reply_gain(const Instance& inst, const StrategyProfile& s,
                       std::size_t user, std::span<const double> loads) {
  if (user >= inst.num_users()) {
    throw std::out_of_range("best_reply_gain: user out of range");
  }
  if (loads.size() != inst.num_computers()) {
    throw std::invalid_argument("best_reply_gain: loads size mismatch");
  }
  constexpr double kInf = std::numeric_limits<double>::infinity();
  const std::span<const double> strategy = s.row(user);
  const double phi = inst.phi[user];

  std::vector<double> avail(loads.size());
  for (std::size_t i = 0; i < loads.size(); ++i) {
    avail[i] = inst.mu[i] - (loads[i] - strategy[i] * phi);
  }
  check_available(avail);

  // Current D_j directly from the loads (no profile copy): the slack the
  // user sees at computer i is mu_i - lambda_i = mu^j_i - s_ji phi_j.
  double current = 0.0;
  for (std::size_t i = 0; i < avail.size(); ++i) {
    if (strategy[i] > 0.0) {
      const double slack = inst.mu[i] - loads[i];
      if (!(slack > 0.0)) {
        current = kInf;
        break;
      }
      current += strategy[i] * (1.0 / slack);
    }
  }

  const std::vector<double> reply = optimal_fractions(avail, phi);
  double best = 0.0;
  for (std::size_t i = 0; i < reply.size(); ++i) {
    if (reply[i] > 0.0) {
      best += reply[i] / (avail[i] - reply[i] * phi);
    }
  }
  return current - best;
}

double best_reply_gain(const Instance& inst, const StrategyProfile& s,
                       std::size_t user) {
  return best_reply_gain(inst, s, user, s.loads(inst));
}

}  // namespace nashlb::core
