// Problem and strategy types of the load balancing game (paper §2).
//
// An `Instance` is the static description of the distributed system: the
// computers' processing rates mu_i and the users' job arrival rates phi_j.
// A `StrategyProfile` is the matrix s with s[j][i] = fraction of user j's
// jobs sent to computer i — one row per user, the paper's strategy vector.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace nashlb::core {

/// Static description of the system: n heterogeneous M/M/1 computers
/// shared by m users with Poisson job streams.
struct Instance {
  /// Processing rate mu_i of each computer (jobs/sec), all > 0.
  std::vector<double> mu;
  /// Job arrival rate phi_j of each user (jobs/sec), all > 0.
  std::vector<double> phi;

  [[nodiscard]] std::size_t num_computers() const noexcept {
    return mu.size();
  }
  [[nodiscard]] std::size_t num_users() const noexcept { return phi.size(); }

  /// Phi = sum_j phi_j.
  [[nodiscard]] double total_arrival_rate() const noexcept;
  /// sum_i mu_i.
  [[nodiscard]] double total_capacity() const noexcept;
  /// rho = Phi / sum_i mu_i — the "system utilization" of Figure 4.
  [[nodiscard]] double system_utilization() const noexcept;

  /// Validates positivity of all rates and the aggregate stability
  /// condition Phi < sum_i mu_i; throws std::invalid_argument with a
  /// descriptive message on violation.
  void validate() const;
};

/// The strategy profile s: row j is user j's load balancing strategy
/// (s_j1 .. s_jn). Dense row-major storage.
class StrategyProfile {
 public:
  /// All-zero profile (the NASH_0 initialization — not itself feasible,
  /// it violates conservation until each user's first best reply).
  StrategyProfile(std::size_t num_users, std::size_t num_computers);

  /// Profile where every user splits proportionally to processing rates:
  /// s_ji = mu_i / sum_k mu_k (the NASH_P initialization and the PS
  /// scheme's allocation).
  static StrategyProfile proportional(const Instance& inst);

  [[nodiscard]] std::size_t num_users() const noexcept { return m_; }
  [[nodiscard]] std::size_t num_computers() const noexcept { return n_; }

  [[nodiscard]] double at(std::size_t user, std::size_t computer) const;
  void set(std::size_t user, std::size_t computer, double fraction);

  /// User j's strategy vector (read-only view).
  [[nodiscard]] std::span<const double> row(std::size_t user) const;
  /// Replaces user j's whole strategy.
  void set_row(std::size_t user, std::span<const double> strategy);

  /// Total arrival rate at each computer: lambda_i = sum_j s_ji phi_j.
  [[nodiscard]] std::vector<double> loads(const Instance& inst) const;

  /// Available processing rate seen by `user` at each computer:
  /// mu^j_i = mu_i - sum_{k != j} s_ki phi_k  (paper §2). This is what a
  /// real deployment estimates from run-queue lengths.
  [[nodiscard]] std::vector<double> available_rates(const Instance& inst,
                                                    std::size_t user) const;

  /// Feasibility of the full profile per the paper's constraints:
  /// (i) positivity, (ii) per-user conservation sum_i s_ji = 1 within
  /// `tol`, (iii) stability lambda_i < mu_i at every computer.
  [[nodiscard]] bool is_feasible(const Instance& inst,
                                 double tol = 1e-9) const;

  /// Max-norm distance between two profiles (used in convergence tests).
  [[nodiscard]] double max_difference(const StrategyProfile& other) const;

  friend bool operator==(const StrategyProfile& a,
                         const StrategyProfile& b) noexcept = default;

 private:
  std::size_t m_;
  std::size_t n_;
  std::vector<double> data_;  // row-major m_ x n_
};

}  // namespace nashlb::core
