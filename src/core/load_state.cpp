#include "core/load_state.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "util/contracts.hpp"

namespace nashlb::core {

LoadState::LoadState(const Instance& inst, const StrategyProfile& s)
    : inst_(&inst), lambda_(inst.num_computers(), 0.0) {
  if (s.num_users() != inst.num_users() ||
      s.num_computers() != inst.num_computers()) {
    throw std::invalid_argument("LoadState: profile/instance mismatch");
  }
  rebuild(s);
}

void LoadState::check_dimensions(const StrategyProfile& s) const {
  if (s.num_users() != inst_->num_users() ||
      s.num_computers() != lambda_.size()) {
    throw std::invalid_argument("LoadState: profile dimension mismatch");
  }
}

void LoadState::rebuild(const StrategyProfile& s) {
  check_dimensions(s);
  const std::size_t n = lambda_.size();
  std::fill(lambda_.begin(), lambda_.end(), 0.0);
  for (std::size_t j = 0; j < s.num_users(); ++j) {
    const std::span<const double> row = s.row(j);
    const double rate = inst_->phi[j];
    for (std::size_t i = 0; i < n; ++i) {
      lambda_[i] += row[i] * rate;
    }
  }
  commits_since_check_ = 0;
#if NASHLB_CHECK_ENABLED
  // Stability (paper assumption A2): the aggregate load the profile
  // places on the system must stay below the aggregate capacity. Rows
  // at or below the simplex (sum_i s_ji <= 1) imply sum lambda <= Phi,
  // so any valid instance satisfies this; a breach means lambda drifted
  // past mu somewhere upstream.
  double total_lambda = 0.0;
  for (double l : lambda_) total_lambda += l;
  const double total_mu = inst_->total_capacity();
  NASHLB_INVARIANT(total_lambda < total_mu,
                   "unstable loads: sum lambda=%.17g >= sum mu=%.17g",
                   total_lambda, total_mu);
#endif
}

void LoadState::available_rates(const StrategyProfile& s, std::size_t user,
                                std::span<double> out) const {
  check_dimensions(s);
  if (user >= s.num_users()) {
    throw std::out_of_range("LoadState::available_rates: user out of range");
  }
  available_rates(s, user, inst_->phi[user], out);
}

void LoadState::available_rates(const StrategyProfile& s, std::size_t user,
                                double self_demand,
                                std::span<double> out) const {
  check_dimensions(s);
  if (user >= s.num_users()) {
    throw std::out_of_range("LoadState::available_rates: user out of range");
  }
  if (out.size() != lambda_.size()) {
    throw std::invalid_argument(
        "LoadState::available_rates: output size mismatch");
  }
  // Own-flow demand is a job rate (phi_j or a class representative's
  // share): a negative value would *inflate* mu^j and let a best reply
  // overload the computer it came from.
  NASHLB_EXPECT(self_demand >= 0.0, "user %zu: negative self demand %.17g",
                user, self_demand);
  const std::span<const double> row = s.row(user);
  const double rate = self_demand;
  for (std::size_t i = 0; i < lambda_.size(); ++i) {
    out[i] = inst_->mu[i] - (lambda_[i] - row[i] * rate);
  }
}

void LoadState::commit_row(StrategyProfile& s, std::size_t user,
                           std::span<const double> new_row) {
  check_dimensions(s);
  if (new_row.size() != lambda_.size()) {
    throw std::invalid_argument("LoadState::commit_row: row size mismatch");
  }
#if NASHLB_CHECK_ENABLED
  // Simplex membership (paper constraint set): committing a row that
  // leaves the simplex silently corrupts every later available-rate
  // computation for *other* users.
  double row_sum = 0.0;
  for (std::size_t i = 0; i < new_row.size(); ++i) {
    NASHLB_EXPECT(new_row[i] >= 0.0,
                  "user %zu: strategy fraction s[%zu]=%.17g < 0", user, i,
                  new_row[i]);
    row_sum += new_row[i];
  }
  NASHLB_EXPECT(std::fabs(row_sum - 1.0) <= 1e-7,
                "user %zu: strategy row sums to %.17g, not 1", user, row_sum);
#endif
  const std::span<const double> old_row = s.row(user);
  const double rate = inst_->phi[user];
  for (std::size_t i = 0; i < lambda_.size(); ++i) {
    lambda_[i] += (new_row[i] - old_row[i]) * rate;
  }
  s.set_row(user, new_row);
  if (util::kCheckEnabled && ++commits_since_check_ >= kConsistencyStride) {
    assert_consistent(s);
    commits_since_check_ = 0;
  }
}

void LoadState::assert_consistent(const StrategyProfile& s,
                                  [[maybe_unused]] double tol) const {
  check_dimensions(s);
#if NASHLB_CHECK_ENABLED
  NASHLB_INVARIANT(max_drift(s) <= tol,
                   "stale LoadState: carried lambda drifted %.17g from a "
                   "from-scratch rebuild (tol %.3g)",
                   max_drift(s), tol);
#endif
}

double LoadState::user_response_time(const StrategyProfile& s,
                                     std::size_t user) const {
  check_dimensions(s);
  const std::span<const double> row = s.row(user);
  double d = 0.0;
  for (std::size_t i = 0; i < lambda_.size(); ++i) {
    if (row[i] > 0.0) {
      const double slack = inst_->mu[i] - lambda_[i];
      if (!(slack > 0.0)) return std::numeric_limits<double>::infinity();
      d += row[i] * (1.0 / slack);  // same rounding as cost.hpp's F_i
    }
  }
  // D_j sums nonnegative fractions times positive response times; a
  // negative value means lambda drifted above mu without tripping the
  // slack guard, i.e. the state is stale.
  NASHLB_ENSURE(d >= 0.0, "user %zu: negative response time %.17g", user, d);
  return d;
}

double LoadState::max_drift(const StrategyProfile& s) const {
  check_dimensions(s);
  const std::vector<double> fresh = s.loads(*inst_);
  double worst = 0.0;
  for (std::size_t i = 0; i < lambda_.size(); ++i) {
    worst = std::max(worst, std::fabs(lambda_[i] - fresh[i]));
  }
  return worst;
}

}  // namespace nashlb::core
