// The OPTIMAL algorithm (paper §2, Theorems 2.1 & 2.2): one user's best
// reply against the rest of the strategy profile.
//
// With every other user's strategy frozen, user j minimizes
//   D_j(s_j) = sum_i s_ji / (mu^j_i - s_ji phi_j)
// over the simplex, where mu^j_i = mu_i - sum_{k != j} s_ki phi_k is the
// available rate at computer i as seen by user j. Substituting
// lambda_i = s_ji phi_j shows this is the sqrt-rule water-filling problem
// with capacities mu^j — see waterfill.hpp — so the best reply is unique
// and computable in O(n log n).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "core/load_state.hpp"
#include "core/types.hpp"
#include "core/waterfill.hpp"

namespace nashlb::core {

/// Scratch buffers for the allocation-free best-reply fast path: one
/// available-rates vector, one reply vector, and the waterfill sort
/// order. One workspace per sequential caller (dynamics loop, ring
/// protocol, bench) — reusing it across users keeps the capacity order
/// nearly sorted, so the waterfill re-sort stays near O(n).
struct BestReplyWorkspace {
  std::vector<double> avail;
  std::vector<double> reply;
  WaterfillWorkspace waterfill;

  void resize(std::size_t num_computers) {
    avail.resize(num_computers);
    reply.resize(num_computers);
  }
};

/// Best reply computed from raw available rates (the paper's
/// OPTIMAL(mu^j_1..mu^j_n, phi_j) signature): returns the load fractions
/// s_j1..s_jn. `available_rates` must all be positive and their sum must
/// strictly exceed `phi`; throws std::invalid_argument otherwise.
[[nodiscard]] std::vector<double> optimal_fractions(
    std::span<const double> available_rates, double phi);

/// Allocation-free `optimal_fractions`: writes the load fractions into
/// `out` (same size as `available_rates`), reusing the workspace's sort
/// order. Identical results to the allocating overload.
void optimal_fractions_into(std::span<const double> available_rates,
                            double phi, std::span<double> out,
                            WaterfillWorkspace& ws);

/// Best reply of `user` against profile `s` in instance `inst` — computes
/// the available rates and delegates to optimal_fractions. The profile's
/// other rows must describe a load with lambda_i - s_ji phi_j < mu_i
/// everywhere (any feasible profile qualifies).
[[nodiscard]] std::vector<double> best_reply(const Instance& inst,
                                             const StrategyProfile& s,
                                             std::size_t user);

/// Allocation-free best reply on the incremental core: reads the
/// available rates from `state` (which must be consistent with `s`) in
/// O(n) instead of recomputing the m×n aggregate, and writes the reply
/// into `ws.reply`, returning a view of it (valid until the next call on
/// the same workspace). Throws like `best_reply` when other users
/// overload a computer.
std::span<const double> best_reply_into(const Instance& inst,
                                        const StrategyProfile& s,
                                        const LoadState& state,
                                        std::size_t user,
                                        BestReplyWorkspace& ws);

/// As above with an explicit reply demand: the available rates back out
/// `demand` of the user's own flow and the waterfill allocates `demand`.
/// The plain overload forwards here with demand = phi_j (bitwise
/// identical). The class dynamics (core/user_classes) passes the class's
/// *representative* demand while `state` aggregates full class weights.
std::span<const double> best_reply_into(const Instance& inst,
                                        const StrategyProfile& s,
                                        const LoadState& state,
                                        std::size_t user, double demand,
                                        BestReplyWorkspace& ws);

/// The improvement available to `user` by unilaterally deviating to its
/// best reply: D_j(current) - D_j(best reply), always >= 0 up to rounding.
/// Zero (within tolerance) for every user simultaneously characterizes a
/// Nash equilibrium (Definition 2.1).
[[nodiscard]] double best_reply_gain(const Instance& inst,
                                     const StrategyProfile& s,
                                     std::size_t user);

/// As above, but with the aggregate loads lambda_i = sum_j s_ji phi_j
/// already computed — O(n log n) instead of O(m·n). Both overloads
/// evaluate the deviated response time directly from the available-rates
/// vector; no profile copy is made.
[[nodiscard]] double best_reply_gain(const Instance& inst,
                                     const StrategyProfile& s,
                                     std::size_t user,
                                     std::span<const double> loads);

}  // namespace nashlb::core
