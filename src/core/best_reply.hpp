// The OPTIMAL algorithm (paper §2, Theorems 2.1 & 2.2): one user's best
// reply against the rest of the strategy profile.
//
// With every other user's strategy frozen, user j minimizes
//   D_j(s_j) = sum_i s_ji / (mu^j_i - s_ji phi_j)
// over the simplex, where mu^j_i = mu_i - sum_{k != j} s_ki phi_k is the
// available rate at computer i as seen by user j. Substituting
// lambda_i = s_ji phi_j shows this is the sqrt-rule water-filling problem
// with capacities mu^j — see waterfill.hpp — so the best reply is unique
// and computable in O(n log n).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "core/types.hpp"

namespace nashlb::core {

/// Best reply computed from raw available rates (the paper's
/// OPTIMAL(mu^j_1..mu^j_n, phi_j) signature): returns the load fractions
/// s_j1..s_jn. `available_rates` must all be positive and their sum must
/// strictly exceed `phi`; throws std::invalid_argument otherwise.
[[nodiscard]] std::vector<double> optimal_fractions(
    std::span<const double> available_rates, double phi);

/// Best reply of `user` against profile `s` in instance `inst` — computes
/// the available rates and delegates to optimal_fractions. The profile's
/// other rows must describe a load with lambda_i - s_ji phi_j < mu_i
/// everywhere (any feasible profile qualifies).
[[nodiscard]] std::vector<double> best_reply(const Instance& inst,
                                             const StrategyProfile& s,
                                             std::size_t user);

/// The improvement available to `user` by unilaterally deviating to its
/// best reply: D_j(current) - D_j(best reply), always >= 0 up to rounding.
/// Zero (within tolerance) for every user simultaneously characterizes a
/// Nash equilibrium (Definition 2.1).
[[nodiscard]] double best_reply_gain(const Instance& inst,
                                     const StrategyProfile& s,
                                     std::size_t user);

}  // namespace nashlb::core
