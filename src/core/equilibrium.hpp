// Nash equilibrium verification (Definition 2.1 and the KKT conditions of
// the appendix proof).
//
// Three independent certificates, used by tests and by callers that want
// to assert a computed profile really is an equilibrium:
//   1. best-reply gap: no user's unique best reply improves on its
//      current strategy (the definition, checked constructively);
//   2. KKT residual: the first-order conditions of the appendix —
//      marginal costs equal on each user's support, no smaller off it;
//   3. random feasible perturbations of one user's strategy never reduce
//      that user's expected response time (a falsification probe used by
//      the property tests).
#pragma once

#include <cstddef>
#include <span>

#include "core/types.hpp"
#include "stats/rng.hpp"

namespace nashlb::core {

/// Largest absolute best-reply improvement over all users:
/// max_j [ D_j(s) - D_j(best_reply_j, s_-j) ]. Zero at a Nash equilibrium.
[[nodiscard]] double max_best_reply_gain(const Instance& inst,
                                         const StrategyProfile& s);

/// As above, with the aggregate loads lambda precomputed (e.g. carried by
/// a LoadState): O(m·n log n) for the full certificate instead of
/// O(m²·n). `loads` must equal sum_j s_ji phi_j.
[[nodiscard]] double max_best_reply_gain(const Instance& inst,
                                         const StrategyProfile& s,
                                         std::span<const double> loads);

/// True iff no user can improve its expected response time by more than
/// `tolerance` seconds by unilateral deviation.
[[nodiscard]] bool is_nash_equilibrium(const Instance& inst,
                                       const StrategyProfile& s,
                                       double tolerance = 1e-6);

/// First-order (KKT) residual of user `user` at profile `s`, normalized by
/// the user's smallest marginal cost. The marginal cost of pushing flow to
/// computer i is g_i = mu^j_i / (mu^j_i - s_ji phi_j)^2; at the user's
/// optimum g_i = alpha on its support and g_i >= alpha off it. Returns
///   max( max_support |g_i - alpha| , max_off max(0, alpha - g_i) ) / alpha
/// with alpha the flow-weighted mean of support marginals. Zero (up to
/// rounding) certifies the appendix's optimality conditions.
[[nodiscard]] double kkt_residual(const Instance& inst,
                                  const StrategyProfile& s, std::size_t user);

/// As above, with the aggregate loads precomputed — O(n) per user.
[[nodiscard]] double kkt_residual(const Instance& inst,
                                  const StrategyProfile& s, std::size_t user,
                                  std::span<const double> loads);

/// Probes `trials` random feasible deviations of `user`'s strategy (moving
/// up to `step` of its traffic between computer pairs) and returns the best
/// improvement found (positive = the profile is NOT an equilibrium for this
/// user). Used by property tests as an adversarial falsifier.
[[nodiscard]] double best_random_deviation_gain(const Instance& inst,
                                                const StrategyProfile& s,
                                                std::size_t user,
                                                stats::Xoshiro256& rng,
                                                std::size_t trials = 100,
                                                double step = 0.05);

}  // namespace nashlb::core
