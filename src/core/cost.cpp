#include "core/cost.hpp"

#include <stdexcept>

#include "util/contracts.hpp"

namespace nashlb::core {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

}  // namespace

std::vector<double> computer_response_times(const Instance& inst,
                                            const StrategyProfile& s) {
  const std::vector<double> lambda = s.loads(inst);
  std::vector<double> f(lambda.size());
  for (std::size_t i = 0; i < lambda.size(); ++i) {
    const double slack = inst.mu[i] - lambda[i];
    f[i] = slack > 0.0 ? 1.0 / slack : kInf;
    // Equation (1): an M/M/1 response time is positive whenever it is
    // defined; a nonpositive F_i means mu or lambda went negative
    // upstream, which every downstream cost average would silently
    // absorb.
    NASHLB_ENSURE(f[i] > 0.0, "computer %zu: F_i=%.17g <= 0 (mu=%.17g, "
                  "lambda=%.17g)", i, f[i], inst.mu[i], lambda[i]);
  }
  return f;
}

double user_response_time(const Instance& inst, const StrategyProfile& s,
                          std::size_t user) {
  const std::vector<double> f = computer_response_times(inst, s);
  const std::span<const double> strategy = s.row(user);
  double d = 0.0;
  for (std::size_t i = 0; i < f.size(); ++i) {
    if (strategy[i] > 0.0) {
      if (f[i] == kInf) return kInf;
      d += strategy[i] * f[i];
    }
  }
  return d;
}

std::vector<double> user_response_times(const Instance& inst,
                                        const StrategyProfile& s) {
  const std::vector<double> f = computer_response_times(inst, s);
  std::vector<double> d(s.num_users(), 0.0);
  for (std::size_t j = 0; j < s.num_users(); ++j) {
    const std::span<const double> strategy = s.row(j);
    for (std::size_t i = 0; i < f.size(); ++i) {
      if (strategy[i] > 0.0) {
        if (f[i] == kInf) {
          d[j] = kInf;
          break;
        }
        d[j] += strategy[i] * f[i];
      }
    }
  }
  return d;
}

double overall_response_time(const Instance& inst, const StrategyProfile& s) {
  const std::vector<double> d = user_response_times(inst, s);
  const double phi_total = inst.total_arrival_rate();
  double acc = 0.0;
  for (std::size_t j = 0; j < d.size(); ++j) {
    if (d[j] == kInf) return kInf;
    acc += inst.phi[j] * d[j];
  }
  return acc / phi_total;
}

double overall_response_time_from_loads(std::span<const double> lambda,
                                        std::span<const double> mu) {
  if (lambda.size() != mu.size()) {
    throw std::invalid_argument(
        "overall_response_time_from_loads: size mismatch");
  }
  double total_rate = 0.0;
  double acc = 0.0;
  for (std::size_t i = 0; i < lambda.size(); ++i) {
    total_rate += lambda[i];
    if (lambda[i] > 0.0) {
      const double slack = mu[i] - lambda[i];
      if (!(slack > 0.0)) return kInf;
      acc += lambda[i] / slack;
    }
  }
  if (total_rate == 0.0) return 0.0;
  // Sum of lambda_i/(mu_i - lambda_i) terms with lambda_i > 0 and
  // positive slack: a negative accumulator means a load or rate was
  // negative, which the averaged figure-4/6 numbers would hide.
  NASHLB_ENSURE(acc >= 0.0, "negative response-time mass %.17g", acc);
  return acc / total_rate;
}

}  // namespace nashlb::core
