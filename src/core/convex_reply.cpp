#include "core/convex_reply.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "util/contracts.hpp"

namespace nashlb::core {
namespace {

/// Marginal cost of user flow l at computer i given background x:
/// g(l) = T(x + l) + l T'(x + l).
double marginal(const DelayModel& model, double background, double flow) {
  return model.response_time(background + flow) +
         flow * model.response_time_derivative(background + flow);
}

/// Inverse of the marginal by bisection: the flow l in [0, slack) with
/// g(l) = alpha, or 0 when even g(0) >= alpha. `slack` is the remaining
/// capacity headroom above the background load.
double flow_at_alpha(const DelayModel& model, double background,
                     double slack, double alpha) {
  if (marginal(model, background, 0.0) >= alpha) return 0.0;
  double lo = 0.0;
  double hi = slack * (1.0 - 1e-12);
  // g(hi) -> +inf as hi -> slack for queueing delays, so alpha is
  // bracketed; guard anyway in case a model saturates.
  if (marginal(model, background, hi) <= alpha) return hi;
  for (int step = 0; step < 200; ++step) {
    const double mid = 0.5 * (lo + hi);
    if (marginal(model, background, mid) < alpha) {
      lo = mid;
    } else {
      hi = mid;
    }
    if (hi - lo <= 1e-15 * (1.0 + hi)) break;
  }
  return 0.5 * (lo + hi);
}

}  // namespace

ConvexReplyResult convex_best_reply(const std::vector<DelayModelPtr>& models,
                                    const std::vector<double>& background,
                                    double phi, double tol) {
  const std::size_t n = models.size();
  if (n == 0 || background.size() != n) {
    throw std::invalid_argument(
        "convex_best_reply: empty models or size mismatch");
  }
  if (!(phi > 0.0) || !std::isfinite(phi)) {
    throw std::invalid_argument("convex_best_reply: phi must be > 0");
  }
  double headroom = 0.0;
  std::vector<double> slack(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (!models[i]) {
      throw std::invalid_argument("convex_best_reply: null model");
    }
    slack[i] = models[i]->capacity() - background[i];
    if (!(background[i] >= 0.0) || !(slack[i] > 0.0)) {
      throw std::invalid_argument(
          "convex_best_reply: background overloads computer " +
          std::to_string(i));
    }
    headroom += slack[i];
  }
  if (!(phi < headroom)) {
    throw std::invalid_argument(
        "convex_best_reply: demand exceeds remaining capacity");
  }

  // Bracket alpha: at alpha_lo no computer takes flow; grow alpha_hi until
  // the allocation over-covers phi.
  double alpha_lo = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < n; ++i) {
    alpha_lo = std::min(alpha_lo, marginal(*models[i], background[i], 0.0));
  }
  double alpha_hi = 2.0 * alpha_lo + 1.0;
  auto total_flow = [&](double alpha, std::vector<double>& out) {
    double total = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      out[i] = flow_at_alpha(*models[i], background[i], slack[i], alpha);
      total += out[i];
    }
    return total;
  };
  ConvexReplyResult res;
  res.flow.assign(n, 0.0);
  std::vector<double> scratch(n);
  for (int grow = 0; grow < 200; ++grow) {
    if (total_flow(alpha_hi, scratch) >= phi) break;
    alpha_hi *= 2.0;
  }

  // Outer bisection on the monotone map alpha -> sum_i l_i(alpha).
  for (std::size_t step = 0; step < 200; ++step) {
    ++res.iterations;
    const double alpha = 0.5 * (alpha_lo + alpha_hi);
    const double total = total_flow(alpha, res.flow);
    if (std::fabs(total - phi) <= tol) {
      res.alpha = alpha;
      break;
    }
    if (total < phi) {
      alpha_lo = alpha;
    } else {
      alpha_hi = alpha;
    }
    res.alpha = alpha;
  }
  // Rescale the final iterate so conservation holds exactly (the residual
  // is within tol, so the perturbation is negligible for the cost).
  double total = 0.0;
  for (double f : res.flow) total += f;
  if (total > 0.0) {
    const double scale = phi / total;
    bool safe = true;
    for (std::size_t i = 0; i < n; ++i) {
      if (res.flow[i] * scale >= slack[i]) safe = false;
    }
    if (safe) {
      for (double& f : res.flow) f *= scale;
    }
  }
  return res;
}

GenericDynamicsResult generic_best_reply_dynamics(
    const std::vector<DelayModelPtr>& models, const std::vector<double>& phi,
    double tolerance, std::size_t max_iterations) {
  const std::size_t n = models.size();
  const std::size_t m = phi.size();
  if (n == 0 || m == 0) {
    throw std::invalid_argument(
        "generic_best_reply_dynamics: empty system");
  }
  double cap = 0.0;
  for (const DelayModelPtr& model : models) {
    if (!model) {
      throw std::invalid_argument("generic_best_reply_dynamics: null model");
    }
    cap += model->capacity();
  }
  double demand = 0.0;
  for (double p : phi) {
    if (!(p > 0.0)) {
      throw std::invalid_argument(
          "generic_best_reply_dynamics: user rates must be > 0");
    }
    demand += p;
  }
  if (!(demand < cap)) {
    throw std::invalid_argument(
        "generic_best_reply_dynamics: demand exceeds capacity");
  }

  GenericDynamicsResult res;
  res.flows.assign(m, std::vector<double>(n, 0.0));
  std::vector<double> loads(n, 0.0);
  std::vector<double> last_times(m, 0.0);

  auto user_time = [&](std::size_t j) {
    double d = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      if (res.flows[j][i] > 0.0) {
        d += res.flows[j][i] * models[i]->response_time(loads[i]);
      }
    }
    return d / phi[j];
  };

  for (std::size_t round = 1; round <= max_iterations; ++round) {
    double norm = 0.0;
    for (std::size_t j = 0; j < m; ++j) {
      std::vector<double> background(n);
      for (std::size_t i = 0; i < n; ++i) {
        background[i] = loads[i] - res.flows[j][i];
      }
      const ConvexReplyResult reply =
          convex_best_reply(models, background, phi[j]);
      for (std::size_t i = 0; i < n; ++i) {
        loads[i] = background[i] + reply.flow[i];
        res.flows[j][i] = reply.flow[i];
      }
      const double d = user_time(j);
      norm += std::fabs(d - last_times[j]);
      last_times[j] = d;
    }
    res.iterations = round;
    res.norm_history.push_back(norm);
    if (norm <= tolerance) {
      res.converged = true;
      break;
    }
  }
  res.user_times = std::move(last_times);
  // One history entry per completed round: the convergence plots and
  // the iteration-count comparisons against the paper's NASH algorithm
  // both read norm_history[iterations - 1] as the final norm.
  NASHLB_ENSURE(res.norm_history.size() == res.iterations,
                "norm history has %zu entries after %zu rounds",
                res.norm_history.size(), res.iterations);
  return res;
}

}  // namespace nashlb::core
