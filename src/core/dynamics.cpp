#include "core/dynamics.hpp"

#include <chrono>
#include <cmath>
#include <limits>
#include <memory>
#include <numeric>
#include <optional>
#include <stdexcept>

#include "core/best_reply.hpp"
#include "core/cost.hpp"
#include "core/equilibrium.hpp"
#include "core/load_state.hpp"
#include "core/potential.hpp"
#include "core/user_classes.hpp"
#include "stats/rng.hpp"
#include "util/contracts.hpp"
#include "util/parallel.hpp"

namespace nashlb::core {

std::vector<std::string> dynamics_trace_columns() {
  return {"iteration",    "norm",    "best_reply_gap", "max_kkt_residual",
          "min_cut",      "max_cut", "wall_seconds"};
}

ConvergenceProbeDriver::ConvergenceProbeDriver(obs::ConvergenceProbe& probe,
                                               const Instance& inst,
                                               const StrategyProfile& start)
    : probe_(&probe) {
  NASHLB_EXPECT(start.num_users() == inst.num_users() &&
                    start.num_computers() == inst.num_computers(),
                "probe driver start profile is %zux%zu, instance %zux%zu",
                start.num_users(), start.num_computers(), inst.num_users(),
                inst.num_computers());
  const std::size_t m = start.num_users();
  const std::size_t n = inst.num_computers();
  prev_support_.assign(m * n, 0);
  for (std::size_t j = 0; j < m; ++j) {
    for (std::size_t i = 0; i < n; ++i) {
      prev_support_[j * n + i] = start.at(j, i) > 0.0 ? 1 : 0;
    }
  }
}

void ConvergenceProbeDriver::record_round(const Instance& inst,
                                          const StrategyProfile& s,
                                          std::span<const double> loads,
                                          std::size_t round, double norm,
                                          bool certificates) {
  NASHLB_EXPECT(loads.size() == inst.num_computers() &&
                    prev_support_.size() ==
                        s.num_users() * s.num_computers(),
                "probe round %zu: %zu loads / %zux%zu profile against the "
                "driver's %zu support bits",
                round, loads.size(), s.num_users(), s.num_computers(),
                prev_support_.size());
  constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
  double gap = kNaN;
  if (certificates) {
    try {
      gap = max_best_reply_gain(inst, s, loads);
    } catch (const std::exception&) {
      // infeasible intermediate profile (Jacobi divergence): leave NaN
    }
  }
  double potential = kNaN;
  try {
    potential = beckmann_potential(loads, inst.mu);
  } catch (const std::exception&) {
    // an overloaded computer has no potential value: leave NaN
  }
  const double overall = overall_response_time_from_loads(loads, inst.mu);
  const std::size_t m = s.num_users();
  const std::size_t n = s.num_computers();
  std::int64_t churn = 0;
  for (std::size_t j = 0; j < m; ++j) {
    bool changed = false;
    for (std::size_t i = 0; i < n; ++i) {
      const char on = s.at(j, i) > 0.0 ? 1 : 0;
      if (on != prev_support_[j * n + i]) changed = true;
      prev_support_[j * n + i] = on;
    }
    if (changed) ++churn;
  }
  double min_util = std::numeric_limits<double>::infinity();
  double max_util = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double util = loads[i] / inst.mu[i];
    min_util = std::min(min_util, util);
    max_util = std::max(max_util, util);
  }
  probe_->record_round(static_cast<std::int64_t>(round), norm, gap, potential,
                       overall, churn, max_util - min_util);
}

namespace {

/// Appends one row of the convergence trace. The certificates reuse the
/// dynamics' incrementally-carried loads (O(m·n log n) per recorded round
/// instead of the old O(m²·n)) and are computed only on rounds selected
/// by `certificates` — see DynamicsOptions::certificate_stride. They can
/// throw on an infeasible intermediate profile (Jacobi divergence), in
/// which case their cells record NaN rather than aborting the dynamics.
void record_round(obs::TraceSink& sink, const Instance& inst,
                  const StrategyProfile& s, std::span<const double> loads,
                  bool certificates, std::size_t round, double norm,
                  double wall_seconds) {
  constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
  double gap = kNaN;
  double kkt = kNaN;
  if (certificates) {
    try {
      gap = max_best_reply_gain(inst, s, loads);
      kkt = 0.0;
      for (std::size_t j = 0; j < inst.num_users(); ++j) {
        kkt = std::max(kkt, kkt_residual(inst, s, j, loads));
      }
    } catch (const std::exception&) {
      // leave the certificates as NaN
    }
  }
  std::size_t min_cut = inst.num_computers();
  std::size_t max_cut = 0;
  for (std::size_t j = 0; j < inst.num_users(); ++j) {
    std::size_t cut = 0;
    for (std::size_t i = 0; i < inst.num_computers(); ++i) {
      if (s.at(j, i) > 0.0) ++cut;
    }
    min_cut = std::min(min_cut, cut);
    max_cut = std::max(max_cut, cut);
  }
  sink.record({static_cast<std::int64_t>(round), norm, gap, kkt,
               static_cast<std::int64_t>(min_cut),
               static_cast<std::int64_t>(max_cut), wall_seconds});
}

/// True on the rounds whose trace row gets the certificate columns.
bool certificates_due(const DynamicsOptions& options, std::size_t round) {
  return options.certificate_stride != 0 &&
         (round - 1) % options.certificate_stride == 0;
}

/// True if every computer still has spare capacity for `user` to target.
/// `demand` is the mover's full contribution to the loads — the user's
/// phi_j, or the class weight W_k in class mode (the symmetric class
/// reply needs every rate free of the whole class to be positive).
bool replies_computable(const LoadState& state, const StrategyProfile& s,
                        std::size_t user, double demand,
                        std::span<double> scratch) {
  state.available_rates(s, user, demand, scratch);
  for (double a : scratch) {
    if (!(a > 0.0)) return false;
  }
  return true;
}

/// The dynamics loop, shared by the per-user and class-aggregated modes.
/// In class mode (`classes` non-null) `inst` is the partition's
/// aggregated instance — phi carries the class weights W_k, so the
/// LoadState accumulates correct expanded loads — each move commits the
/// symmetric within-class reply (class_reply_into; singleton classes
/// reduce to the representative-demand waterfill bitwise), and the norm
/// weights each class delta by its member count. Per-user mode passes
/// classes = nullptr; its demand span is inst.phi and its norm weights
/// are 1, which keeps the arithmetic bitwise identical to the
/// pre-aggregation code path (and to a singleton-class run).
DynamicsResult run(const Instance& inst, StrategyProfile profile,
                   std::vector<double> last_times,
                   const DynamicsOptions& options,
                   const RoundObserver& observer,
                   const UserClassPartition* classes) {
  // Stability (assumption A2): best replies only exist while the total
  // demand leaves spare capacity. inst.validate() enforces this with an
  // exception at the API boundary; the contract re-states it here where
  // the iteration actually depends on it.
  NASHLB_EXPECT(inst.total_arrival_rate() < inst.total_capacity(),
                "Phi=%.17g >= sum mu=%.17g: no feasible profile exists",
                inst.total_arrival_rate(), inst.total_capacity());
  const std::size_t m = inst.num_users();
  const bool class_mode = classes != nullptr;
  // Reply demand per mover: the representative demand in class mode, the
  // user's own phi otherwise. Norm weights (member counts) only exist in
  // class mode; the per-user path multiplies by the exact 1.0, which is
  // a bitwise no-op.
  const std::span<const double> reply_phi =
      class_mode ? classes->rep_phi() : std::span<const double>(inst.phi);
  const std::span<const double> norm_weight =
      class_mode ? classes->member_counts() : std::span<const double>();
  DynamicsResult result{std::move(profile), false, false, 0, {}, {}};
  // Wall clock feeds the obs trace's elapsed-seconds column only; no
  // iterate, tolerance, or ordering ever reads it, so determinism of
  // the solve is unaffected.
  // nashlb-analyzer: allow(nondeterminism-sources) -- trace-only timing
  const auto wall_start = std::chrono::steady_clock::now();
  const auto wall_seconds = [&wall_start] {
    // nashlb-analyzer: allow(nondeterminism-sources) -- trace-only timing
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         wall_start)
        .count();
  };
  stats::Xoshiro256 order_rng(options.order_seed);
  std::vector<std::size_t> order(m);
  std::iota(order.begin(), order.end(), std::size_t{0});

  // Convergence telemetry and the event journal ride the same per-round
  // sites as the trace; both are nullptr-gated and compiled out with the
  // obs layer (kEnabled is constexpr false under -DNASHLB_OBS=OFF).
  std::optional<ConvergenceProbeDriver> probe_driver;
  if (obs::kEnabled && options.probe != nullptr) {
    probe_driver.emplace(*options.probe, inst, result.profile);
  }
  obs::EventId round_event{};
  obs::EventId stop_event{};
  if (obs::kEnabled && options.journal != nullptr) {
    round_event =
        options.journal->register_event("dynamics.round", {"round", "norm"});
    stop_event = options.journal->register_event(
        "dynamics.stop", {"round", "norm", "converged", "diverged"});
  }

  // The incremental core: the aggregate loads ride along with the profile
  // and every per-move quantity (available rates, D_j) derives from them
  // in O(n), so a full round is O(m·n) instead of O(m²·n). The loads are
  // rebuilt from the profile at each round boundary — the rebuild is the
  // same O(m·n) as the round's own updates, and it resets the few-ulp
  // drift the incremental updates accumulate.
  LoadState state(inst, result.profile);
  BestReplyWorkspace ws;
  ws.resize(inst.num_computers());

  const bool sequential = options.order == UpdateOrder::RoundRobin ||
                          options.order == UpdateOrder::RandomOrder;
  // Parallel execution is a Jacobi-only option: a sequential order is
  // *defined* by user j reading users 1..j-1's round-l moves, so running
  // it on a pool would silently compute a different (Jacobi-ish) round.
  // The contract catches the misconfiguration in checked builds; the
  // fallback below keeps unchecked builds on the correct serial path.
  const std::size_t threads =
      options.threads == 1 ? 1 : util::resolve_threads(options.threads);
  NASHLB_EXPECT(threads <= 1 || !sequential,
                "DynamicsOptions::threads=%zu with a sequential update "
                "order: only UpdateOrder::Simultaneous (Jacobi) rounds are "
                "order-free; use threads=1 for RoundRobin/RandomOrder",
                threads);
  std::unique_ptr<util::ThreadPool> pool;
  std::vector<BestReplyWorkspace> worker_ws;
  std::vector<double> round_times;      // d_j of the pooled Jacobi round
  std::vector<char> round_computable;   // replies_computable per user
  if (!sequential && threads > 1) {
    pool = std::make_unique<util::ThreadPool>(threads);
    worker_ws.resize(pool->size());
    for (BestReplyWorkspace& w : worker_ws) w.resize(inst.num_computers());
    round_times.resize(m);
    round_computable.assign(m, 1);
  }
  for (std::size_t round = 1; round <= options.max_iterations; ++round) {
    if (round > 1 && sequential) state.rebuild(result.profile);
    obs::SpanId round_span{};
    if (obs::kEnabled && options.spans) {
      round_span = options.spans->begin("round", "dynamics", 0,
                                        static_cast<std::int64_t>(round));
    }
    double norm = 0.0;
    if (sequential) {
      if (options.order == UpdateOrder::RandomOrder) {
        // Fisher–Yates with the dynamics' own RNG: deterministic per seed.
        for (std::size_t k = m; k > 1; --k) {
          std::swap(order[k - 1],
                    order[static_cast<std::size_t>(order_rng.next_below(k))]);
        }
      }
      for (std::size_t idx = 0; idx < m; ++idx) {
        const std::size_t j = order[idx];
        obs::SpanId reply_span{};
        if (obs::kEnabled && options.spans) {
          reply_span = options.spans->begin("reply", "dynamics", 0,
                                            static_cast<std::int64_t>(j));
        }
        const std::span<const double> reply =
            class_mode
                ? class_reply_into(inst, result.profile, state, j, *classes,
                                   ws)
                : best_reply_into(inst, result.profile, state, j, reply_phi[j],
                                  ws);
        state.commit_row(result.profile, j, reply);
        const double d = state.user_response_time(result.profile, j);
        norm += (class_mode ? norm_weight[j] : 1.0) *
                std::fabs(d - last_times[j]);
        last_times[j] = d;
        if (obs::kEnabled && options.spans) options.spans->end(reply_span);
      }
    } else {
      // Jacobi: all replies against the round-(l-1) profile. The state's
      // loads stay frozen while the rows are overwritten — each user's
      // available rates need only the frozen loads and its own not-yet-
      // replaced row, so no copy of the profile is made. This is also
      // why the round parallelizes exactly: user j reads only the frozen
      // loads and row j, and writes only row j, so the pooled loop
      // touches disjoint rows and each reply is bit-identical to its
      // serial counterpart regardless of scheduling.
      if (pool) {
        pool->parallel_for(0, m, 1, [&](std::size_t j, std::size_t w) {
          result.profile.set_row(
              j, class_mode
                     ? class_reply_into(inst, result.profile, state, j,
                                        *classes, worker_ws[w])
                     : best_reply_into(inst, result.profile, state, j,
                                       reply_phi[j], worker_ws[w]));
        });
      } else {
        for (std::size_t j = 0; j < m; ++j) {
          obs::SpanId reply_span{};
          if (obs::kEnabled && options.spans) {
            reply_span = options.spans->begin("reply", "dynamics", 0,
                                              static_cast<std::int64_t>(j));
          }
          result.profile.set_row(
              j, class_mode
                     ? class_reply_into(inst, result.profile, state, j,
                                        *classes, ws)
                     : best_reply_into(inst, result.profile, state, j,
                                       reply_phi[j], ws));
          if (obs::kEnabled && options.spans) options.spans->end(reply_span);
        }
      }
      state.rebuild(result.profile);
      // The combined move can overload computers; detect and stop.
      bool ok = true;
      if (pool) {
        // Per-user feasibility and response times fan out over the pool
        // (each user writes its own slot); the norm and the ok flag then
        // reduce serially in user order, so the fold order — and the
        // resulting bits — match the serial path exactly.
        pool->parallel_for(0, m, 1, [&](std::size_t j, std::size_t w) {
          round_computable[j] = replies_computable(state, result.profile, j,
                                                   inst.phi[j],
                                                   worker_ws[w].avail)
                                    ? 1
                                    : 0;
          round_times[j] = state.user_response_time(result.profile, j);
        });
        for (std::size_t j = 0; j < m; ++j) {
          if (round_computable[j] == 0) ok = false;
          const double d = round_times[j];
          if (!std::isfinite(d)) ok = false;
          norm += (class_mode ? norm_weight[j] : 1.0) *
                  std::fabs(d - last_times[j]);
          last_times[j] = d;
        }
      } else {
        for (std::size_t j = 0; j < m && ok; ++j) {
          ok = replies_computable(state, result.profile, j, inst.phi[j],
                                  ws.avail);
        }
        for (std::size_t j = 0; j < m; ++j) {
          const double d = state.user_response_time(result.profile, j);
          if (!std::isfinite(d)) ok = false;
          norm += (class_mode ? norm_weight[j] : 1.0) *
                  std::fabs(d - last_times[j]);
          last_times[j] = d;
        }
      }
      if (!ok) {
        result.iterations = round;
        result.norm_history.push_back(norm);
        result.diverged = true;
        result.user_times = std::move(last_times);
        if (obs::kEnabled && options.trace) {
          record_round(*options.trace, inst, result.profile, state.loads(),
                       certificates_due(options, round), round, norm,
                       wall_seconds());
        }
        if (probe_driver) {
          probe_driver->record_round(inst, result.profile, state.loads(),
                                     round, norm,
                                     certificates_due(options, round));
        }
        if (obs::kEnabled && options.journal) {
          options.journal->emit(round_event,
                                {static_cast<double>(round), norm});
          options.journal->emit(stop_event, {static_cast<double>(round), norm,
                                             0.0, 1.0});
        }
        if (obs::kEnabled && options.spans) options.spans->end(round_span);
        return result;
      }
    }

    result.iterations = round;
    result.norm_history.push_back(norm);
#if NASHLB_CHECK_ENABLED
    // Class-weight invariant (alongside LoadState's stride-64 audit):
    // the aggregated instance's demands are the class weights, and their
    // sum must stay the total demand Phi the partition was built from —
    // a mismatch means the dynamics is balancing a different population
    // than the one the eps-Nash certificate will be issued for.
    if (class_mode) {
      double weight_sum = 0.0;
      for (double w : inst.phi) weight_sum += w;
      NASHLB_INVARIANT(
          std::fabs(weight_sum - classes->total_weight()) <=
              1e-9 * std::max(1.0, classes->total_weight()),
          "round %zu: class weights sum to %.17g, partition Phi=%.17g",
          round, weight_sum, classes->total_weight());
    }
#endif
    if (obs::kEnabled && options.trace) {
      record_round(*options.trace, inst, result.profile, state.loads(),
                   certificates_due(options, round), round, norm,
                   wall_seconds());
    }
    if (probe_driver) {
      probe_driver->record_round(inst, result.profile, state.loads(), round,
                                 norm, certificates_due(options, round));
    }
    if (obs::kEnabled && options.journal) {
      options.journal->emit(round_event, {static_cast<double>(round), norm});
    }
    if (obs::kEnabled && options.spans) options.spans->end(round_span);
    if (observer) observer(round, result.profile, norm);
    if (norm <= options.tolerance) {
      result.converged = true;
      break;
    }
  }
  if (obs::kEnabled && options.journal) {
    options.journal->emit(
        stop_event,
        {static_cast<double>(result.iterations),
         result.norm_history.empty() ? 0.0 : result.norm_history.back(),
         result.converged ? 1.0 : 0.0, 0.0});
  }

  // A converged profile must be feasible in the paper's sense — every
  // row on the simplex and every computer strictly stable. A violation
  // here means the incremental state and the profile disagreed.
  NASHLB_ENSURE(!result.converged || result.profile.is_feasible(inst, 1e-6),
                "converged profile infeasible after %zu rounds (norm history "
                "tail %.17g)",
                result.iterations,
                result.norm_history.empty() ? -1.0
                                            : result.norm_history.back());
  result.user_times = user_response_times(inst, result.profile);
  return result;
}

}  // namespace

namespace {

/// Class-mode front end: builds the aggregated instance and runs the
/// shared loop over classes, starting from `start` when provided (it
/// must be class-level) or from the configured initialization.
DynamicsResult run_over_classes(const Instance& inst,
                                const StrategyProfile* start,
                                const DynamicsOptions& options,
                                const RoundObserver& observer) {
  const UserClassPartition& part = *options.classes;
  if (part.num_users() != inst.num_users()) {
    throw std::invalid_argument(
        "best_reply_dynamics: class partition covers " +
        std::to_string(part.num_users()) + " users, instance has " +
        std::to_string(inst.num_users()));
  }
  part.expect_matches(inst);
  const Instance agg = part.aggregate_instance(inst);
  agg.validate();
  if (start == nullptr && options.init == Initialization::Zero) {
    StrategyProfile zero(agg.num_users(), agg.num_computers());
    std::vector<double> last_times(agg.num_users(), 0.0);
    return run(agg, std::move(zero), std::move(last_times), options, observer,
               &part);
  }
  StrategyProfile from = start != nullptr
                             ? *start
                             : StrategyProfile::proportional(agg);
  if (from.num_users() != agg.num_users() ||
      from.num_computers() != agg.num_computers()) {
    throw std::invalid_argument(
        "best_reply_dynamics_from: class-mode start profile must be "
        "class-level (num_classes x n)");
  }
  std::vector<double> last_times = user_response_times(agg, from);
  for (double& d : last_times) {
    if (!std::isfinite(d)) d = 0.0;  // e.g. an all-zero start row
  }
  return run(agg, std::move(from), std::move(last_times), options, observer,
             &part);
}

}  // namespace

DynamicsResult best_reply_dynamics(const Instance& inst,
                                   const DynamicsOptions& options,
                                   const RoundObserver& observer) {
  inst.validate();
  if (options.classes != nullptr) {
    return run_over_classes(inst, nullptr, options, observer);
  }
  const std::size_t m = inst.num_users();
  const std::size_t n = inst.num_computers();
  if (options.init == Initialization::Proportional) {
    return best_reply_dynamics_from(
        inst, StrategyProfile::proportional(inst), options, observer);
  }
  // NASH_0: start from the empty profile with D_j^(0) := 0 — the first
  // round's norm is then simply sum_j D_j^(1).
  StrategyProfile zero(m, n);
  std::vector<double> last_times(m, 0.0);
  return run(inst, std::move(zero), std::move(last_times), options, observer,
             nullptr);
}

DynamicsResult best_reply_dynamics_from(const Instance& inst,
                                        const StrategyProfile& start,
                                        const DynamicsOptions& options,
                                        const RoundObserver& observer) {
  inst.validate();
  if (options.classes != nullptr) {
    return run_over_classes(inst, &start, options, observer);
  }
  if (start.num_users() != inst.num_users() ||
      start.num_computers() != inst.num_computers()) {
    throw std::invalid_argument(
        "best_reply_dynamics_from: start profile has wrong dimensions");
  }
  std::vector<double> last_times = user_response_times(inst, start);
  for (double& d : last_times) {
    if (!std::isfinite(d)) d = 0.0;  // e.g. an all-zero start row
  }
  return run(inst, start, std::move(last_times), options, observer, nullptr);
}

}  // namespace nashlb::core
