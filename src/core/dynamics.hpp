// Greedy best-reply dynamics — the computational core of the paper's NASH
// distributed load balancing algorithm (§3), in its in-memory form.
//
// Users update their strategies one at a time in round-robin order; each
// update is the OPTIMAL best reply against the current profile. The
// stopping rule follows the paper's ring protocol: one "iteration" is a
// full round of m updates; during round l the running norm accumulates
// |D_j^(l) - D_j^(l-1)| as each user j updates; the dynamics stops when a
// round's norm falls to the acceptance tolerance epsilon.
//
// Both initializations from §4.2.1 are provided: NASH_0 (empty strategies,
// every D_j^(0) = 0) and NASH_P (proportional allocation). A Jacobi
// (simultaneous-update) variant exists for the update-order ablation; it
// is *not* the paper's algorithm and may diverge, which the result
// reports honestly.
//
// Convergence of best-reply for M/M/1 costs and more than two users is an
// open problem (§3), so the dynamics carries an iteration cap and returns
// converged = false rather than looping forever.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "core/types.hpp"
#include "obs/convergence.hpp"
#include "obs/journal.hpp"
#include "obs/span.hpp"
#include "obs/trace.hpp"

namespace nashlb::core {

class UserClassPartition;  // core/user_classes.hpp

/// Starting profile of the dynamics (§4.2.1).
enum class Initialization {
  Zero,          ///< NASH_0: all fractions zero, D_j^(0) taken as 0
  Proportional,  ///< NASH_P: s_ji = mu_i / sum_k mu_k
};

/// Who moves when.
enum class UpdateOrder {
  RoundRobin,     ///< Gauss–Seidel: user j sees users 1..j-1's round-l moves
  Simultaneous,   ///< Jacobi: everyone replies to the round-(l-1) profile
  RandomOrder,    ///< sequential updates in a fresh random permutation per
                  ///< round — models a ring without a fixed token order
};

/// Tuning knobs of the dynamics.
struct DynamicsOptions {
  Initialization init = Initialization::Proportional;
  UpdateOrder order = UpdateOrder::RoundRobin;
  /// Acceptance tolerance on the per-round response-time norm (seconds).
  double tolerance = 1e-4;
  /// Hard cap on rounds; exceeded => converged = false.
  std::size_t max_iterations = 1000;
  /// Seed for the RandomOrder permutations (ignored otherwise).
  std::uint64_t order_seed = 0x0badcafeULL;
  /// Optional per-round trace (not owned, may be null): one row per round
  /// under the `dynamics_trace_columns()` schema. Tracing computes the
  /// equilibrium certificates each round — O(m n log n) extra work — so
  /// leave it null on hot paths. See docs/OBSERVABILITY.md.
  obs::TraceSink* trace = nullptr;
  /// Cadence of the trace's certificate columns (best_reply_gap,
  /// max_kkt_residual): they are computed on rounds 1, 1+k, 1+2k, … and
  /// recorded as NaN in between; 0 disables them entirely (the other
  /// columns are still recorded every round). The default 1 preserves the
  /// full per-round trace; raise the stride (or set 0) when tracing a
  /// large system, where the certificates cost more than the round they
  /// certify. Ignored when `trace` is null.
  std::size_t certificate_stride = 1;
  /// Optional span tracer (not owned, may be null): each round becomes a
  /// "round" span (id = round index) enclosing one "reply" span per user
  /// update (id = user index). Export with
  /// SpanTracer::write_chrome_trace for chrome://tracing / Perfetto. A
  /// no-op when the obs layer is compiled out. The tracer is not
  /// thread-safe, so a pooled Jacobi run (threads != 1) records only the
  /// per-round spans; the per-reply spans require threads = 1.
  obs::SpanTracer* spans = nullptr;
  /// Worker threads for the Jacobi (Simultaneous) round: 1 = serial (the
  /// default — byte-for-byte the pre-parallel code path), 0 = auto
  /// (NASHLB_THREADS env, else hardware concurrency — see
  /// util::resolve_threads), k > 1 = exactly k workers. Each worker
  /// replies from its own BestReplyWorkspace against the frozen
  /// round-(l-1) loads and writes only its own users' rows; the new
  /// profile and the convergence norm are then reduced in user order, so
  /// the result is bitwise independent of the thread count
  /// (tests/core/test_dynamics.cpp pins this). The sequential orders
  /// (RoundRobin, RandomOrder) are inherently ordered — user j's reply
  /// reads users 1..j-1's round-l moves — so threads > 1 with them is a
  /// contract violation (NASHLB_EXPECT aborts under -DNASHLB_CHECK=ON);
  /// unchecked builds fall back to the serial path.
  std::size_t threads = 1;
  /// Optional user-class aggregation (not owned, may be null; must
  /// outlive the call). When set, the dynamics runs over the partition's
  /// weighted classes instead of individual users: the aggregate loads
  /// carry the class weights W_k, each class's move commits the
  /// *symmetric within-class reply* (the row that is the representative
  /// member's best reply when its classmates play the same row — see
  /// class_reply_into in core/user_classes.hpp), and the stopping norm
  /// weights each class's response-time delta by its member count — so
  /// one round is O(classes · n) regardless of the population size m,
  /// and the tolerance keeps its per-user meaning. All three update orders and
  /// `threads` compose as usual. The returned DynamicsResult is
  /// class-level: `profile` has num_classes rows (expand to the full
  /// per-user profile with UserClassPartition::expand; certify the
  /// equilibrium error with certify_eps_nash) and `user_times` holds the
  /// per-class representative response times. With the `singletons`
  /// partition the run is bitwise identical to the per-user solver. See
  /// docs/SCALING.md.
  const UserClassPartition* classes = nullptr;
  /// Optional convergence probe (not owned, may be null): one row per
  /// round under the `convergence_trace_columns()` schema — stopping
  /// norm, eps-Nash gap, potential, overall cost, active-set churn and
  /// utilization spread. The eps-Nash gap shares `certificate_stride`
  /// with the trace (NaN on strided-off rounds); the other columns are
  /// O(m·n) per round. Works in all three orders and in class mode
  /// (rows are then class-level). See docs/OBSERVABILITY.md.
  obs::ConvergenceProbe* probe = nullptr;
  /// Optional event journal (not owned, may be null): the dynamics
  /// registers `dynamics.round` {round, norm} and `dynamics.stop`
  /// {round, norm, converged, diverged} and emits one round event per
  /// round plus one stop event at termination — cheap enough to leave
  /// on anywhere a TraceSink would be too heavy.
  obs::Journal* journal = nullptr;
};

/// Outcome of a run of the dynamics.
struct DynamicsResult {
  StrategyProfile profile;       ///< final profile (the equilibrium if converged)
  bool converged = false;        ///< norm <= tolerance within the cap
  bool diverged = false;         ///< an intermediate state became infeasible
                                 ///< (possible only under Simultaneous)
  std::size_t iterations = 0;    ///< rounds executed
  /// norm after each round: norm_history[l-1] = sum_j |D_j^(l)-D_j^(l-1)|.
  std::vector<double> norm_history;
  /// Per-user expected response times at the final profile.
  std::vector<double> user_times;
};

/// Schema of the per-round convergence trace, in column order:
/// iteration (1-based round), norm (sum_j |D_j^(l) - D_j^(l-1)|, seconds),
/// best_reply_gap (max unilateral improvement, seconds), max_kkt_residual
/// (worst user's normalized first-order residual), min_cut / max_cut
/// (smallest and largest per-user cut index c_j — how many computers a
/// user's OPTIMAL reply spreads over), wall_seconds (cumulative wall time
/// since the dynamics started).
[[nodiscard]] std::vector<std::string> dynamics_trace_columns();

/// Derives one obs::ConvergenceProbe row per round from solver state —
/// the bridge between the core (which owns the profile, loads and
/// certificates) and the obs probe (which only stores numbers). The
/// driver carries the previous round's best-reply supports so it can
/// report active-set churn; construct it from the starting profile, then
/// call record_round once per completed round. Shared by the in-memory
/// dynamics (all orders, class mode) and the distributed ring protocol.
class ConvergenceProbeDriver {
 public:
  /// `start` is the profile the dynamics begins from (class-level in
  /// class mode); its supports seed the churn baseline, so round 1's
  /// churn counts movers relative to the initialization.
  ConvergenceProbeDriver(obs::ConvergenceProbe& probe, const Instance& inst,
                         const StrategyProfile& start);

  /// Appends the round's row. `loads` are the instance's per-computer
  /// arrival rates at `s` (e.g. LoadState::loads()); `certificates`
  /// gates the O(m·n log n) eps-Nash gap (NaN when false or when the
  /// profile is infeasible, e.g. a diverged Jacobi round).
  void record_round(const Instance& inst, const StrategyProfile& s,
                    std::span<const double> loads, std::size_t round,
                    double norm, bool certificates);

 private:
  obs::ConvergenceProbe* probe_;
  std::vector<char> prev_support_;  // m*n row-major support bits
};

/// Observer invoked after each round with (round index starting at 1,
/// current profile, round norm). Used by the Figure 2 bench to record the
/// convergence trace.
using RoundObserver =
    std::function<void(std::size_t, const StrategyProfile&, double)>;

/// Runs the dynamics from the configured initialization.
[[nodiscard]] DynamicsResult best_reply_dynamics(
    const Instance& inst, const DynamicsOptions& options = {},
    const RoundObserver& observer = nullptr);

/// Runs the dynamics from an explicit starting profile (the `init` option
/// is ignored). `start` must have the instance's dimensions.
[[nodiscard]] DynamicsResult best_reply_dynamics_from(
    const Instance& inst, const StrategyProfile& start,
    const DynamicsOptions& options = {},
    const RoundObserver& observer = nullptr);

}  // namespace nashlb::core
