#include "core/waterfill.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "util/contracts.hpp"

namespace nashlb::core {
namespace {

void check_inputs(std::span<const double> capacities, double demand,
                  const char* who) {
  if (capacities.empty()) {
    throw std::invalid_argument(std::string(who) + ": no computers");
  }
  double total = 0.0;
  for (double c : capacities) {
    if (!(c > 0.0) || !std::isfinite(c)) {
      throw std::invalid_argument(std::string(who) +
                                  ": capacities must be finite and > 0");
    }
    total += c;
  }
  if (!(demand >= 0.0) || !(demand < total)) {
    throw std::invalid_argument(std::string(who) +
                                ": need 0 <= demand < total capacity");
  }
}

void check_out(std::span<const double> capacities, std::span<double> out,
               const char* who) {
  if (out.size() != capacities.size()) {
    throw std::invalid_argument(std::string(who) +
                                ": output buffer size mismatch");
  }
}

/// Refreshes ws.order to hold indices by decreasing capacity, ties broken
/// by index — the strict total order the old stable sort produced. When
/// the workspace already holds an order of the right size (the previous
/// round's, typically nearly sorted for the new capacities), an insertion
/// pass costs O(n + inversions); otherwise a fresh O(n log n) sort.
void update_order(std::span<const double> capacities,
                  WaterfillWorkspace& ws) {
  const std::size_t n = capacities.size();
  const auto before = [&](std::size_t a, std::size_t b) {
    return capacities[a] > capacities[b] ||
           (capacities[a] == capacities[b] && a < b);
  };
  if (ws.order.size() != n) {
    ws.order.resize(n);
    std::iota(ws.order.begin(), ws.order.end(), std::size_t{0});
    std::sort(ws.order.begin(), ws.order.end(), before);
    return;
  }
  for (std::size_t k = 1; k < n; ++k) {
    const std::size_t idx = ws.order[k];
    std::size_t pos = k;
    while (pos > 0 && before(idx, ws.order[pos - 1])) {
      ws.order[pos] = ws.order[pos - 1];
      --pos;
    }
    ws.order[pos] = idx;
  }
#if NASHLB_CHECK_ENABLED
  // Every downstream cut decision assumes the workspace order is the
  // strict decreasing-capacity total order; a stale order silently
  // misplaces the Thm 2.1 cut.
  for (std::size_t k = 1; k < n; ++k) {
    NASHLB_INVARIANT(before(ws.order[k - 1], ws.order[k]),
                     "workspace order not decreasing at rank %zu: "
                     "c[%zu]=%.17g vs c[%zu]=%.17g",
                     k, ws.order[k - 1], capacities[ws.order[k - 1]],
                     ws.order[k], capacities[ws.order[k]]);
  }
#endif
}

#if NASHLB_CHECK_ENABLED
/// Postcondition shared by both water-filling rules: the allocation is a
/// point of the scaled simplex (lambda >= 0, sum = demand) that keeps
/// every computer strictly stable (lambda_i < c_i when demand > 0).
void check_allocation(std::span<const double> capacities, double demand,
                      std::span<const double> lambda, const char* who) {
  double sum = 0.0;
  for (std::size_t i = 0; i < lambda.size(); ++i) {
    NASHLB_ENSURE(lambda[i] >= 0.0, "%s: lambda[%zu]=%.17g < 0", who, i,
                  lambda[i]);
    NASHLB_ENSURE(lambda[i] <= capacities[i] + 1e-9 * (1.0 + capacities[i]),
                  "%s: lambda[%zu]=%.17g exceeds capacity %.17g", who, i,
                  lambda[i], capacities[i]);
    sum += lambda[i];
  }
  const double tol = 1e-9 * (1.0 + demand);
  NASHLB_ENSURE(std::fabs(sum - demand) <= tol,
                "%s: allocation sums to %.17g, demand %.17g (tol %.3g)", who,
                sum, demand, tol);
}
#endif

}  // namespace

WaterfillInfo waterfill_sqrt_into(std::span<const double> capacities,
                                  double demand, std::span<double> lambda_out,
                                  WaterfillWorkspace& ws) {
  check_inputs(capacities, demand, "waterfill_sqrt");
  check_out(capacities, lambda_out, "waterfill_sqrt");
  update_order(capacities, ws);
  const std::span<const std::size_t> order = ws.order;
  const std::size_t n = order.size();

  // Step 2 of OPTIMAL: running sums over the candidate active set.
  double sum_c = 0.0;
  double sum_sqrt = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    sum_c += capacities[order[k]];
    sum_sqrt += std::sqrt(capacities[order[k]]);
  }

  // Step 3: shrink the active set while the slowest candidate would be
  // assigned a non-positive share (sqrt(c_c) <= t). The paper's loop
  // condition "mu_c <= t * sqrt(mu_c)" is the same inequality.
  std::size_t c = n;
  double t = (sum_c - demand) / sum_sqrt;
  while (c > 1) {
    const double cap_last = capacities[order[c - 1]];
    if (std::sqrt(cap_last) > t) break;
    sum_c -= cap_last;
    sum_sqrt -= std::sqrt(cap_last);
    --c;
    t = (sum_c - demand) / sum_sqrt;
  }

  // Step 4: closed-form shares; the final one by subtraction so the
  // conservation constraint holds exactly in floating point.
  std::fill(lambda_out.begin(), lambda_out.end(), 0.0);
  double assigned = 0.0;
  for (std::size_t k = 0; k + 1 < c; ++k) {
    const double cap = capacities[order[k]];
    const double share = cap - std::sqrt(cap) * t;
    lambda_out[order[k]] = share;
    assigned += share;
  }
  lambda_out[order[c - 1]] = demand - assigned;
  if (lambda_out[order[c - 1]] < 0.0) lambda_out[order[c - 1]] = 0.0;
  // Thm 2.1 cut rule: the active set is exactly the prefix of the
  // decreasing-capacity order with sqrt(c_i) > t; the first computer
  // past the cut must fail that test or it was cut wrongly. The shrink
  // loop compares against the pre-removal t and t only grows by ulps on
  // re-evaluation, so allow an ulp-scale slack.
  NASHLB_ENSURE(std::isfinite(t) && t >= 0.0,
                "waterfill_sqrt: water level t=%.17g not finite/nonneg", t);
  NASHLB_ENSURE(c == n || std::sqrt(capacities[order[c]]) <=
                              t * (1.0 + 1e-12) + 1e-12,
                "waterfill_sqrt: computer %zu past the cut (c=%zu) still has "
                "sqrt(capacity)=%.17g > t=%.17g",
                order[c], c, std::sqrt(capacities[order[c]]), t);
#if NASHLB_CHECK_ENABLED
  check_allocation(capacities, demand, lambda_out, "waterfill_sqrt");
#endif
  return {demand == 0.0 ? 0 : c, t};
}

WaterfillInfo waterfill_linear_into(std::span<const double> capacities,
                                    double demand,
                                    std::span<double> lambda_out,
                                    WaterfillWorkspace& ws) {
  check_inputs(capacities, demand, "waterfill_linear");
  check_out(capacities, lambda_out, "waterfill_linear");
  update_order(capacities, ws);
  const std::span<const std::size_t> order = ws.order;
  const std::size_t n = order.size();

  double sum_c = 0.0;
  for (std::size_t k = 0; k < n; ++k) sum_c += capacities[order[k]];

  std::size_t c = n;
  double t = (sum_c - demand) / static_cast<double>(c);
  while (c > 1) {
    const double cap_last = capacities[order[c - 1]];
    if (cap_last > t) break;
    sum_c -= cap_last;
    --c;
    t = (sum_c - demand) / static_cast<double>(c);
  }

  std::fill(lambda_out.begin(), lambda_out.end(), 0.0);
  double assigned = 0.0;
  for (std::size_t k = 0; k + 1 < c; ++k) {
    const double share = capacities[order[k]] - t;
    lambda_out[order[k]] = share;
    assigned += share;
  }
  lambda_out[order[c - 1]] = demand - assigned;
  if (lambda_out[order[c - 1]] < 0.0) lambda_out[order[c - 1]] = 0.0;
  // Wardrop cut rule: active iff c_i > t under the same order (ulp-scale
  // slack for the same pre-/post-removal t rounding as the sqrt rule).
  NASHLB_ENSURE(c == n || capacities[order[c]] <= t * (1.0 + 1e-12) + 1e-12,
                "waterfill_linear: computer %zu past the cut (c=%zu) still "
                "has capacity %.17g > t=%.17g",
                order[c], c, capacities[order[c]], t);
#if NASHLB_CHECK_ENABLED
  check_allocation(capacities, demand, lambda_out, "waterfill_linear");
#endif
  return {demand == 0.0 ? 0 : c, t};
}

WaterfillResult waterfill_sqrt(std::span<const double> capacities,
                               double demand) {
  WaterfillWorkspace ws;
  WaterfillResult res;
  res.lambda.resize(capacities.size());
  const WaterfillInfo info =
      waterfill_sqrt_into(capacities, demand, res.lambda, ws);
  res.active_count = info.active_count;
  res.level = info.level;
  return res;
}

WaterfillResult waterfill_linear(std::span<const double> capacities,
                                 double demand) {
  WaterfillWorkspace ws;
  WaterfillResult res;
  res.lambda.resize(capacities.size());
  const WaterfillInfo info =
      waterfill_linear_into(capacities, demand, res.lambda, ws);
  res.active_count = info.active_count;
  res.level = info.level;
  return res;
}

}  // namespace nashlb::core
