#include "core/waterfill.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace nashlb::core {
namespace {

void check_inputs(std::span<const double> capacities, double demand,
                  const char* who) {
  if (capacities.empty()) {
    throw std::invalid_argument(std::string(who) + ": no computers");
  }
  double total = 0.0;
  for (double c : capacities) {
    if (!(c > 0.0) || !std::isfinite(c)) {
      throw std::invalid_argument(std::string(who) +
                                  ": capacities must be finite and > 0");
    }
    total += c;
  }
  if (!(demand >= 0.0) || !(demand < total)) {
    throw std::invalid_argument(std::string(who) +
                                ": need 0 <= demand < total capacity");
  }
}

/// Indices of `capacities` sorted by decreasing capacity; ties broken by
/// index so results are deterministic.
std::vector<std::size_t> sort_decreasing(std::span<const double> capacities) {
  std::vector<std::size_t> order(capacities.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return capacities[a] > capacities[b];
                   });
  return order;
}

}  // namespace

WaterfillResult waterfill_sqrt(std::span<const double> capacities,
                               double demand) {
  check_inputs(capacities, demand, "waterfill_sqrt");
  const std::vector<std::size_t> order = sort_decreasing(capacities);
  const std::size_t n = order.size();

  // Step 2 of OPTIMAL: running sums over the candidate active set.
  double sum_c = 0.0;
  double sum_sqrt = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    sum_c += capacities[order[k]];
    sum_sqrt += std::sqrt(capacities[order[k]]);
  }

  // Step 3: shrink the active set while the slowest candidate would be
  // assigned a non-positive share (sqrt(c_c) <= t). The paper's loop
  // condition "mu_c <= t * sqrt(mu_c)" is the same inequality.
  std::size_t c = n;
  double t = (sum_c - demand) / sum_sqrt;
  while (c > 1) {
    const double cap_last = capacities[order[c - 1]];
    if (std::sqrt(cap_last) > t) break;
    sum_c -= cap_last;
    sum_sqrt -= std::sqrt(cap_last);
    --c;
    t = (sum_c - demand) / sum_sqrt;
  }

  // Step 4: closed-form shares; the final one by subtraction so the
  // conservation constraint holds exactly in floating point.
  WaterfillResult res;
  res.lambda.assign(n, 0.0);
  res.level = t;
  res.active_count = c;
  double assigned = 0.0;
  for (std::size_t k = 0; k + 1 < c; ++k) {
    const double cap = capacities[order[k]];
    const double share = cap - std::sqrt(cap) * t;
    res.lambda[order[k]] = share;
    assigned += share;
  }
  res.lambda[order[c - 1]] = demand - assigned;
  if (res.lambda[order[c - 1]] < 0.0) res.lambda[order[c - 1]] = 0.0;
  if (demand == 0.0) res.active_count = 0;
  return res;
}

WaterfillResult waterfill_linear(std::span<const double> capacities,
                                 double demand) {
  check_inputs(capacities, demand, "waterfill_linear");
  const std::vector<std::size_t> order = sort_decreasing(capacities);
  const std::size_t n = order.size();

  double sum_c = 0.0;
  for (std::size_t k = 0; k < n; ++k) sum_c += capacities[order[k]];

  std::size_t c = n;
  double t = (sum_c - demand) / static_cast<double>(c);
  while (c > 1) {
    const double cap_last = capacities[order[c - 1]];
    if (cap_last > t) break;
    sum_c -= cap_last;
    --c;
    t = (sum_c - demand) / static_cast<double>(c);
  }

  WaterfillResult res;
  res.lambda.assign(n, 0.0);
  res.level = t;
  res.active_count = c;
  double assigned = 0.0;
  for (std::size_t k = 0; k + 1 < c; ++k) {
    const double share = capacities[order[k]] - t;
    res.lambda[order[k]] = share;
    assigned += share;
  }
  res.lambda[order[c - 1]] = demand - assigned;
  if (res.lambda[order[c - 1]] < 0.0) res.lambda[order[c - 1]] = 0.0;
  if (demand == 0.0) res.active_count = 0;
  return res;
}

}  // namespace nashlb::core
