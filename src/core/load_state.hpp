// Incremental aggregate-load state — the O(m·n)-per-round solver core.
//
// Every quantity the best-reply dynamics needs per user move (available
// rates mu^j, the user's expected response time D_j) is a function of the
// aggregate per-computer loads lambda_i = sum_j s_ji phi_j and the moving
// user's own row. `StrategyProfile::available_rates` recomputes lambda
// from the whole m×n profile on every call, which makes one Gauss–Seidel
// round of the dynamics O(m²·n). A `LoadState` carries lambda across the
// dynamics loop and updates it in O(n) per user move (subtract the
// mover's old contribution, add the new one), so a full round of m moves
// costs O(m·n) — plus O(n log n) per move for the water-filling reply
// itself, which an incremental re-sort (see waterfill.hpp) brings down to
// nearly O(n) in practice.
//
// Floating-point drift: each incremental update rounds differently from a
// fresh summation, so lambda can drift from recompute-from-scratch by a
// few ulps per move. Callers that iterate for many rounds call `rebuild`
// at round boundaries (itself O(m·n), the same as one round of updates,
// so the asymptotics are unchanged); the property tests bound the drift
// of long un-rebuilt sequences.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "core/types.hpp"

namespace nashlb::core {

/// The aggregate load vector lambda of one (instance, profile) pair,
/// kept consistent with the profile through `commit_row` updates.
class LoadState {
 public:
  /// Builds lambda from scratch — O(m·n). The instance must outlive the
  /// state; every later call must pass a profile with these dimensions.
  LoadState(const Instance& inst, const StrategyProfile& s);

  /// Recomputes lambda from the profile — O(m·n). Same summation order
  /// as `StrategyProfile::loads`, so the result is bitwise identical to
  /// a fresh recompute.
  void rebuild(const StrategyProfile& s);

  /// Current aggregate loads lambda_i (view into the state's storage;
  /// invalidated by commit_row/rebuild).
  [[nodiscard]] std::span<const double> loads() const noexcept {
    return lambda_;
  }

  [[nodiscard]] std::size_t num_computers() const noexcept {
    return lambda_.size();
  }

  /// Available rates mu^j_i = mu_i - (lambda_i - s_ji phi_j) seen by
  /// `user`, written into `out` (size n) — O(n).
  void available_rates(const StrategyProfile& s, std::size_t user,
                       std::span<double> out) const;

  /// As above with an explicit own-flow demand instead of the instance's
  /// phi_j: out_i = mu_i - (lambda_i - s_ji · self_demand). The class
  /// dynamics (core/user_classes) uses this with the *representative*
  /// demand while the carried lambda aggregates full class weights; the
  /// plain overload forwards here with self_demand = phi_j, so both are
  /// bitwise identical when the demands agree.
  void available_rates(const StrategyProfile& s, std::size_t user,
                       double self_demand, std::span<double> out) const;

  /// Installs `new_row` as `user`'s strategy: updates lambda by the row
  /// delta and writes the row into the profile — O(n). `new_row` must not
  /// alias the profile's own storage.
  void commit_row(StrategyProfile& s, std::size_t user,
                  std::span<const double> new_row);

  /// User `user`'s expected response time D_j = sum_i s_ji/(mu_i -
  /// lambda_i) at the current loads — O(n). +infinity if the user sends
  /// flow to a computer with no slack, matching cost.hpp's convention.
  [[nodiscard]] double user_response_time(const StrategyProfile& s,
                                          std::size_t user) const;

  /// Max-norm distance between the carried lambda and a from-scratch
  /// recompute of `s`'s loads — O(m·n). Diagnostic for drift tests.
  // nashlb-analyzer: allow(contract-coverage) -- max_drift is the primitive
  // the consistency contract itself is built from (assert_consistent wraps
  // it in NASHLB_INVARIANT); contracting it would be circular.
  [[nodiscard]] double max_drift(const StrategyProfile& s) const;

  /// Contract hook: under -DNASHLB_CHECK=ON aborts if the carried lambda
  /// has drifted more than `tol` from a from-scratch rebuild of `s`'s
  /// loads (i.e. the state is stale — someone mutated the profile behind
  /// the state's back). Compiled to a no-op otherwise. `commit_row`
  /// calls this every `kConsistencyStride` commits in checked builds, so
  /// Debug+check runs stay usable at O(m·n) every 64 O(n) commits.
  void assert_consistent(const StrategyProfile& s, double tol = 1e-7) const;

  /// Commit interval of the sampled consistency contract (checked
  /// builds only).
  static constexpr std::size_t kConsistencyStride = 64;

 private:
  void check_dimensions(const StrategyProfile& s) const;

  const Instance* inst_;
  std::vector<double> lambda_;
  // Commit counter for the stride-sampled consistency contract. Present
  // unconditionally so the class layout is identical whether or not a
  // translation unit was compiled with NASHLB_CHECK_ENABLED.
  std::size_t commits_since_check_ = 0;
};

}  // namespace nashlb::core
