// The game's cost model: M/M/1 expected response times under a profile.
//
// Equation (1): F_i(s) = 1 / (mu_i - sum_j s_ji phi_j)
// Equation (2): D_j(s) = sum_i s_ji F_i(s)  — user j's expected response
// time, the quantity each selfish user minimizes.
// The "overall expected response time" reported in the figures is the
// job-weighted average D(s) = (1/Phi) sum_j phi_j D_j(s), i.e. the mean
// response time over all jobs in the system.
#pragma once

#include <limits>
#include <span>
#include <vector>

#include "core/types.hpp"

namespace nashlb::core {

/// Expected response time at every computer: F_i(s). Unstable computers
/// (lambda_i >= mu_i) report +infinity rather than a negative time.
[[nodiscard]] std::vector<double> computer_response_times(
    const Instance& inst, const StrategyProfile& s);

/// User j's expected response time D_j(s). +infinity if any computer that
/// user j actually uses (s_ji > 0) is unstable.
[[nodiscard]] double user_response_time(const Instance& inst,
                                        const StrategyProfile& s,
                                        std::size_t user);

/// All users' expected response times (D_1 .. D_m).
[[nodiscard]] std::vector<double> user_response_times(
    const Instance& inst, const StrategyProfile& s);

/// Overall expected response time D(s) = (1/Phi) sum_j phi_j D_j(s) —
/// the objective the GOS scheme minimizes and the y-axis of Figures 4/6.
[[nodiscard]] double overall_response_time(const Instance& inst,
                                           const StrategyProfile& s);

/// Overall expected response time induced by aggregate computer loads
/// alone: (1/Phi) sum_i lambda_i / (mu_i - lambda_i). Equal to
/// `overall_response_time` for any profile with these loads.
[[nodiscard]] double overall_response_time_from_loads(
    std::span<const double> lambda, std::span<const double> mu);

}  // namespace nashlb::core
