// User-class aggregation — solving the game over weighted classes of
// users instead of individual users (the million-user scaling layer, see
// docs/SCALING.md).
//
// Users with identical (phi_j, strategy) see identical available rates
// mu^j_i and compute identical best replies, so the NASH dynamics can run
// over *classes*: class k carries the total weight W_k = sum of member
// phi_j (what the class contributes to the aggregate loads) and a
// representative demand rep_phi_k = W_k / |members| (what one member's
// waterfill reply optimizes). A best-reply round then costs
// O(classes · n) regardless of the population size m.
//
// Two construction modes:
//  * exact       — group users whose phi_j are bitwise identical. At a
//                  class fixed point every member's unilateral gain is
//                  zero (all members are interchangeable), so the
//                  expanded profile is a Nash equilibrium of the full
//                  game up to the dynamics' stopping tolerance.
//  * quantized   — bucket *near*-identical phi_j geometrically at
//                  relative width eps_phi (optionally capped at K
//                  classes). The expanded profile is an eps-Nash
//                  equilibrium; `certify_eps_nash` measures the realized
//                  eps and the a-posteriori analytic bound
//                  eps <= (gap_rep + delta·D*/(u_min − delta)) / D
//                  derived in docs/SCALING.md.
//
// The degenerate `singletons` partition (one class per user, in user
// order) makes the class dynamics bitwise identical to the per-user
// solver — pinned by tests/core/test_user_classes.cpp.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "core/best_reply.hpp"
#include "core/load_state.hpp"
#include "core/types.hpp"

namespace nashlb::core {

/// One weighted class of interchangeable (or near-interchangeable) users.
struct UserClass {
  /// Member user indices, strictly ascending.
  std::vector<std::size_t> members;
  /// W_k = sum of member phi_j — the class's contribution weight in the
  /// aggregate loads lambda_i = sum_k W_k s_ki.
  double weight = 0.0;
  /// Representative demand W_k / |members| — the phi the class's
  /// best-reply waterfill optimizes for.
  double rep_phi = 0.0;
  /// Range of member demands (equal to rep_phi in exact mode).
  double phi_min = 0.0;
  double phi_max = 0.0;
  /// Members attaining phi_min / phi_max (certificate probe points).
  std::size_t user_min = 0;
  std::size_t user_max = 0;
};

/// A partition of an instance's m users into weighted classes. Classes
/// are ordered by ascending representative demand (except `singletons`,
/// which preserves user order so singleton runs stay bitwise identical
/// to the per-user solver).
class UserClassPartition {
 public:
  /// Groups users whose phi_j compare exactly equal.
  [[nodiscard]] static UserClassPartition exact(const Instance& inst);

  /// Buckets phi_j into geometric cells of relative width `eps_phi`
  /// (cell c covers [phi_min·r^c, phi_min·r^(c+1)) with r = 1 + eps_phi).
  /// If `max_classes` > 0 and the widths would produce more cells, the
  /// ratio widens to span [phi_min, phi_max] in `max_classes` cells —
  /// the realized width is reported by `max_rel_deviation()`, never
  /// assumed. Throws std::invalid_argument unless eps_phi > 0.
  [[nodiscard]] static UserClassPartition quantized(
      const Instance& inst, double eps_phi, std::size_t max_classes = 0);

  /// One class per user, class k = {user k}: the identity partition.
  [[nodiscard]] static UserClassPartition singletons(const Instance& inst);

  /// Builds a partition from explicit member lists. Contract (checked
  /// builds abort via NASHLB_EXPECT, see util/contracts.hpp): every
  /// class non-empty, members strictly ascending, classes disjoint, and
  /// together covering exactly the instance's users.
  [[nodiscard]] static UserClassPartition from_members(
      const Instance& inst, std::vector<std::vector<std::size_t>> members);

  [[nodiscard]] std::size_t num_users() const noexcept {
    return user_class_.size();
  }
  [[nodiscard]] std::size_t num_classes() const noexcept {
    return classes_.size();
  }
  [[nodiscard]] const std::vector<UserClass>& classes() const noexcept {
    return classes_;
  }
  /// Class index of `user`.
  [[nodiscard]] std::size_t class_of(std::size_t user) const;

  /// Per-class representative demands / member counts (as doubles), in
  /// class order — contiguous views for the dynamics loop.
  [[nodiscard]] std::span<const double> rep_phi() const noexcept {
    return rep_phi_;
  }
  [[nodiscard]] std::span<const double> member_counts() const noexcept {
    return counts_;
  }

  /// sum_k W_k; equals the instance's total demand Phi up to summation
  /// order (the class-weight invariant, re-checked every dynamics round
  /// in checked builds).
  [[nodiscard]] double total_weight() const noexcept { return total_weight_; }

  [[nodiscard]] bool all_singletons() const noexcept;

  /// Worst bucketing error: max_j |phi_j − rep_phi_{class(j)}|, and the
  /// same relative to rep_phi. Zero in exact mode.
  [[nodiscard]] double max_abs_deviation() const noexcept {
    return max_abs_dev_;
  }
  [[nodiscard]] double max_rel_deviation() const noexcept {
    return max_rel_dev_;
  }

  /// The aggregated instance the class dynamics runs on: same computers,
  /// one pseudo-user per class with phi = W_k. Its total demand equals
  /// the original Phi (up to summation order), so stability carries over.
  [[nodiscard]] Instance aggregate_instance(const Instance& inst) const;

  /// Expands a class-level profile (num_classes × n) to the full
  /// per-user profile: member j of class k gets row s_k. O(m·n) memory —
  /// at m = 10^6, n = 64 this is ~0.5 GB, so large-scale callers should
  /// work from `expanded_loads` instead.
  [[nodiscard]] StrategyProfile expand(const StrategyProfile& class_profile)
      const;

  /// Collapses a full per-user profile to class level by taking each
  /// class's *first member's* row (the inverse of `expand`:
  /// collapse(expand(s)) == s bitwise; pinned by the round-trip test).
  [[nodiscard]] StrategyProfile collapse(const StrategyProfile& full_profile)
      const;

  /// Aggregate loads of the expanded profile, lambda_i = sum_k W_k s_ki,
  /// without materializing it — O(classes · n). Equals
  /// expand(s).loads(inst) up to floating-point summation order.
  [[nodiscard]] std::vector<double> expanded_loads(
      const Instance& inst, const StrategyProfile& class_profile) const;

  /// Contract hook: under -DNASHLB_CHECK=ON aborts unless the partition
  /// covers exactly `inst`'s users and the class-weight invariant holds
  /// (|sum_k W_k − Phi| <= 1e-9 · max(1, Phi)). No-op otherwise.
  void expect_matches(const Instance& inst) const;

 private:
  UserClassPartition() = default;
  /// Shared tail of every factory: weights, representatives, deviation
  /// stats, the user→class map, and the structural contract.
  static UserClassPartition build(const Instance& inst,
                                  std::vector<std::vector<std::size_t>> groups);

  std::vector<UserClass> classes_;
  std::vector<std::size_t> user_class_;  // user -> class index
  std::vector<double> rep_phi_;          // per class
  std::vector<double> counts_;           // per class, |members| as double
  double total_weight_ = 0.0;
  double max_abs_dev_ = 0.0;
  double max_rel_dev_ = 0.0;
};

/// A-posteriori eps-Nash certificate of a class-level profile, evaluated
/// against the expanded per-user profile (docs/SCALING.md derives the
/// bound). For every class the certificate probes the members with the
/// smallest and largest phi_j plus the fictitious representative
/// (demand rep_phi_k), computes each probe's exact best-reply gain at
/// the expanded loads, and records:
struct EpsNashCertificate {
  /// Measured: max over probed real members of
  /// (D_k − D*_j) / D_k — the relative unilateral improvement available.
  double eps_nash = 0.0;
  /// The analytic a-posteriori bound on the same quantity,
  /// (gap_rep + delta_j·D*_j/(u_min,j − delta_j)) / D_k maximized over
  /// probes; +infinity when some delta_j >= u_min,j (bucket wider than
  /// the slack the reply leaves). eps_nash <= analytic_bound up to
  /// rounding — the unit tests pin this ordering.
  double analytic_bound = 0.0;
  /// Largest absolute probe gain, seconds.
  double max_abs_gain_seconds = 0.0;
  /// Worst representative residual gap_rep (seconds): how far the class
  /// profile itself is from a class-level equilibrium.
  double rep_gap_seconds = 0.0;
  /// Probe attaining eps_nash.
  std::size_t worst_user = 0;
  std::size_t worst_class = 0;
  /// Number of real-member probes evaluated.
  std::size_t evaluated_members = 0;
};

/// Evaluates the certificate. `class_profile` must be a feasible
/// num_classes × n profile for the partition's aggregated instance
/// (e.g. the converged result of the class dynamics). O(classes · n log n).
[[nodiscard]] EpsNashCertificate certify_eps_nash(
    const Instance& inst, const UserClassPartition& partition,
    const StrategyProfile& class_profile);

/// Best reply of class `k` in the class dynamics. Singleton classes route
/// through `best_reply_into` with the representative demand — bitwise the
/// per-user reply. Larger classes commit their whole weight W_k at once,
/// so the committed row must be the *symmetric within-class reply*: the
/// unique row s* that is the representative's OPTIMAL reply when every
/// other member of the class also plays s*. (Committing the
/// representative's unconstrained reply would scale a small-demand
/// waterfill by W_k and can overload a computer; the symmetric reply
/// leaves strictly positive slack by construction.) Its KKT system —
/// (a_i − β T_i)/(a_i − T_i)² equal across the support, with a_i the
/// rates free of the whole class, T_i the class flow, and
/// β = (W_k − rep_phi_k)/W_k — is solved by a safeguarded Newton on the
/// water level; docs/SCALING.md derives it. `agg` must be the partition's
/// aggregated instance and `state` consistent with `s`. Allocation-free
/// after workspace warm-up; returns a view into `ws` (valid until the
/// next call). Throws std::invalid_argument when other classes overload
/// a computer, like `best_reply`.
std::span<const double> class_reply_into(const Instance& agg,
                                         const StrategyProfile& s,
                                         const LoadState& state,
                                         std::size_t k,
                                         const UserClassPartition& part,
                                         BestReplyWorkspace& ws);

}  // namespace nashlb::core
