// Potentials and inefficiency ratios — the theory toolbox around the
// game's operating points.
//
// * The Wardrop equilibrium (IOS) is the minimizer of the Beckmann
//   potential  B(lambda) = sum_i integral_0^{lambda_i} F_i(x) dx
//   = sum_i [ ln(mu_i) - ln(mu_i - lambda_i) ]  for M/M/1 delays — the
//   classical route to existence/uniqueness, and a property the tests
//   exercise against waterfill_linear.
// * The "price of anarchy" (Koutsoupias & Papadimitriou [11], cited in
//   the paper's intro) compares an equilibrium's social cost to the
//   social optimum: we expose both the per-user Nash ratio
//   D_NASH / D_GOS and the per-job Wardrop ratio D_IOS / D_GOS.
#pragma once

#include <span>

#include "core/types.hpp"

namespace nashlb::core {

/// Beckmann potential of aggregate loads on M/M/1 computers:
/// sum_i [ln(mu_i) - ln(mu_i - lambda_i)]. Requires 0 <= lambda_i < mu_i;
/// throws std::invalid_argument otherwise.
[[nodiscard]] double beckmann_potential(std::span<const double> lambda,
                                        std::span<const double> mu);

/// Inefficiency ratios of the three operating points of an instance.
struct InefficiencyReport {
  double social_optimum = 0.0;   ///< D under GOS (overall optimum)
  double nash_cost = 0.0;        ///< D at the per-user Nash equilibrium
  double wardrop_cost = 0.0;     ///< D at the per-job Wardrop equilibrium
  double nash_ratio = 1.0;       ///< nash_cost / social_optimum
  double wardrop_ratio = 1.0;    ///< wardrop_cost / social_optimum
};

/// Computes all three operating points analytically. `nash_tolerance` is
/// the best-reply dynamics' epsilon. Throws on invalid instances and
/// std::runtime_error if the dynamics fails to converge.
[[nodiscard]] InefficiencyReport inefficiency_report(
    const Instance& inst, double nash_tolerance = 1e-8);

}  // namespace nashlb::core
