// Water-filling allocators — the closed-form convex optimizers behind
// every scheme in this repository.
//
// Two allocation problems over parallel M/M/1 queues with capacities c_i
// and a demand phi < sum_i c_i recur throughout the paper:
//
// 1. "sqrt rule" (Theorem 2.1 / OPTIMAL, and the GOS aggregate optimum
//    [Tang & Chanson; Kim & Kameda]):
//        minimize sum_i lambda_i / (c_i - lambda_i)
//    KKT: c_i / (c_i - lambda_i)^2 equal on the support, hence
//        lambda_i = c_i - sqrt(c_i) * t,
//        t = (sum_active c_k - phi) / (sum_active sqrt(c_k)),
//    with the support being the fastest computers — shrink it until every
//    retained computer gets a strictly positive share.
//
// 2. "linear rule" (IOS / Wardrop equilibrium [Kameda et al.]): equalize
//    the *response time* 1/(c_i - lambda_i) itself on the support:
//        lambda_i = c_i - t,  t = (sum_active c_k - phi) / |active|.
//
// Both run in O(n log n) (sort + one shrink pass) and both guarantee
// 0 <= lambda_i < c_i and sum_i lambda_i = phi exactly (the last share is
// computed by subtraction to kill rounding drift).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace nashlb::core {

/// Result of a water-filling allocation.
struct WaterfillResult {
  /// Allocated arrival rate per computer (same indexing as the input).
  std::vector<double> lambda;
  /// Number of computers with a strictly positive allocation.
  std::size_t active_count = 0;
  /// The water level `t` at the optimum (diagnostic; see formulas above).
  double level = 0.0;
};

/// The scalar part of a WaterfillResult, returned by the allocation-free
/// `_into` variants that write lambda into a caller-provided buffer.
struct WaterfillInfo {
  std::size_t active_count = 0;
  double level = 0.0;
};

/// Reusable scratch for the `_into` variants. Holds the capacity sort
/// order from the previous call; when the next call's capacities are
/// nearly sorted under it (the common case across best-reply rounds,
/// where available rates move only slightly per move), the re-sort is an
/// O(n + inversions) insertion pass instead of a fresh O(n log n) sort.
/// A workspace may be shared across calls with different capacity sizes;
/// the order is rebuilt from scratch whenever the size changes.
struct WaterfillWorkspace {
  std::vector<std::size_t> order;  ///< indices by decreasing capacity
};

/// Minimizes sum_i lambda_i/(c_i - lambda_i) subject to lambda >= 0,
/// sum lambda = demand. This *is* the paper's OPTIMAL algorithm when
/// `capacities` are the available rates mu^j seen by one user, and the
/// GOS aggregate optimum when they are the raw mu and demand = Phi.
///
/// Requires every capacity > 0 and 0 <= demand < sum capacities;
/// throws std::invalid_argument otherwise.
[[nodiscard]] WaterfillResult waterfill_sqrt(std::span<const double> capacities,
                                             double demand);

/// Wardrop allocation: equalizes 1/(c_i - lambda_i) across the support.
/// Same preconditions and guarantees as waterfill_sqrt.
[[nodiscard]] WaterfillResult waterfill_linear(
    std::span<const double> capacities, double demand);

/// Allocation-free waterfill_sqrt: writes lambda into `lambda_out`
/// (which must have the capacities' size) and reuses/updates the
/// workspace's sort order. Produces bitwise-identical allocations to
/// `waterfill_sqrt` — the incremental re-sort reaches the exact order the
/// fresh stable sort would (ties broken by index).
WaterfillInfo waterfill_sqrt_into(std::span<const double> capacities,
                                  double demand, std::span<double> lambda_out,
                                  WaterfillWorkspace& ws);

/// Allocation-free waterfill_linear; same contract as waterfill_sqrt_into.
WaterfillInfo waterfill_linear_into(std::span<const double> capacities,
                                    double demand,
                                    std::span<double> lambda_out,
                                    WaterfillWorkspace& ws);

}  // namespace nashlb::core
