// Delay models: the cost-function abstraction of the generalized game.
//
// The paper's analysis (and OPTIMAL's closed form) is specific to M/M/1
// sojourn times, but its game-theoretic machinery only needs each
// computer's expected response time T(load) to be continuous, strictly
// increasing and convex on [0, capacity) — the conditions under which
// Orda et al. [14] guarantee a unique Nash equilibrium. This interface
// lets the generic best-reply solver (convex_reply.hpp) run the same game
// on M/M/1 computers (validating against the closed form) and on M/M/c
// multi-core nodes (a genuine extension).
#pragma once

#include <memory>
#include <vector>

namespace nashlb::core {

/// A computer's delay characteristics as a function of total arrival rate.
class DelayModel {
 public:
  virtual ~DelayModel() = default;

  /// Expected response time at total load `lambda` (0 <= lambda < capacity).
  [[nodiscard]] virtual double response_time(double lambda) const = 0;

  /// d/d(lambda) of response_time. Must be > 0 (strictly increasing delay)
  /// for the equilibrium theory to apply.
  [[nodiscard]] virtual double response_time_derivative(
      double lambda) const = 0;

  /// Maximum sustainable arrival rate (the stability bound).
  [[nodiscard]] virtual double capacity() const = 0;
};

using DelayModelPtr = std::shared_ptr<const DelayModel>;

/// M/M/1 computer: T(l) = 1/(mu - l). The paper's model.
class MM1Delay final : public DelayModel {
 public:
  /// `mu > 0`; throws std::invalid_argument otherwise.
  explicit MM1Delay(double mu);
  [[nodiscard]] double response_time(double lambda) const override;
  [[nodiscard]] double response_time_derivative(double lambda) const override;
  [[nodiscard]] double capacity() const override { return mu_; }

 private:
  double mu_;
};

/// M/M/c node: c cores of rate mu_core each, single FCFS queue
/// (Erlang-C waiting time). The derivative is evaluated by a central
/// finite difference — Erlang-C is smooth in lambda but its closed-form
/// derivative is unwieldy, and the solver only needs ~1e-8 accuracy.
class MMCDelay final : public DelayModel {
 public:
  MMCDelay(double mu_core, unsigned servers);
  [[nodiscard]] double response_time(double lambda) const override;
  [[nodiscard]] double response_time_derivative(double lambda) const override;
  [[nodiscard]] double capacity() const override;

 private:
  double mu_;
  unsigned c_;
};

/// Decorator adding a constant communication delay to any node: jobs
/// sent to this computer pay `shift` seconds of network transfer on top
/// of the queueing delay. This is the model variant the authors' later
/// work (Penmatsa & Chronopoulos) analyzes; with the generic KKT solver
/// it needs no new theory — the marginal just gains a constant.
class ShiftedDelay final : public DelayModel {
 public:
  /// `shift >= 0`; `inner` must be non-null.
  ShiftedDelay(DelayModelPtr inner, double shift);
  [[nodiscard]] double response_time(double lambda) const override;
  [[nodiscard]] double response_time_derivative(double lambda) const override;
  [[nodiscard]] double capacity() const override;

 private:
  DelayModelPtr inner_;
  double shift_;
};

/// Convenience: M/M/1 models for a whole rate vector.
[[nodiscard]] std::vector<DelayModelPtr> mm1_models(
    const std::vector<double>& mu);

/// Convenience: M/M/1 models with per-computer communication delays.
[[nodiscard]] std::vector<DelayModelPtr> mm1_models_with_comm(
    const std::vector<double>& mu, const std::vector<double>& comm_delay);

}  // namespace nashlb::core
