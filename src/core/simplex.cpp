#include "core/simplex.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/contracts.hpp"

namespace nashlb::core {

std::vector<double> project_to_simplex(std::span<const double> v,
                                       double radius) {
  if (v.empty()) {
    throw std::invalid_argument("project_to_simplex: empty vector");
  }
  if (!(radius > 0.0) || !std::isfinite(radius)) {
    throw std::invalid_argument(
        "project_to_simplex: radius must be finite and > 0");
  }
  for (double x : v) {
    if (!std::isfinite(x)) {
      throw std::invalid_argument("project_to_simplex: non-finite input");
    }
  }

  std::vector<double> sorted(v.begin(), v.end());
  std::sort(sorted.begin(), sorted.end(), std::greater<>());

  // Find the pivot rho = max { k : sorted[k] - (csum_k - radius)/(k+1) > 0 }.
  double csum = 0.0;
  double theta = 0.0;
  std::size_t rho = 0;
  double csum_at_rho = 0.0;
  for (std::size_t k = 0; k < sorted.size(); ++k) {
    csum += sorted[k];
    const double candidate =
        (csum - radius) / static_cast<double>(k + 1);
    if (sorted[k] - candidate > 0.0) {
      rho = k;
      csum_at_rho = csum;
    }
  }
  theta = (csum_at_rho - radius) / static_cast<double>(rho + 1);

  std::vector<double> out(v.size());
  for (std::size_t i = 0; i < v.size(); ++i) {
    out[i] = std::max(0.0, v[i] - theta);
  }
#if NASHLB_CHECK_ENABLED
  // The projection must land on the target simplex or the NBS solver's
  // iterates drift off the feasible set one gradient step at a time.
  double sum = 0.0;
  for (double x : out) sum += x;
  NASHLB_ENSURE(
      std::fabs(sum - radius) <= 1e-9 * (1.0 + radius),
      "projection sums to %.17g, radius %.17g", sum, radius);
#endif
  return out;
}

}  // namespace nashlb::core
