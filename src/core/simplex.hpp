// Euclidean projection onto the probability simplex.
//
// Used by the cooperative (NBS) extension's projected-gradient solver and
// by robustness tests that need to repair slightly-infeasible strategies.
// Algorithm: sort-based O(n log n) projection (Held, Wolfe & Crowder 1974;
// the formulation of Duchi et al. 2008).
#pragma once

#include <span>
#include <vector>

namespace nashlb::core {

/// Returns the Euclidean projection of `v` onto
/// { x : x_i >= 0, sum_i x_i = radius }. Requires radius > 0 and a
/// non-empty v; throws std::invalid_argument otherwise.
[[nodiscard]] std::vector<double> project_to_simplex(std::span<const double> v,
                                                     double radius = 1.0);

}  // namespace nashlb::core
