#include "core/potential.hpp"

#include <cmath>
#include <stdexcept>

#include "core/cost.hpp"
#include "core/dynamics.hpp"
#include "core/waterfill.hpp"
#include "util/contracts.hpp"

namespace nashlb::core {

double beckmann_potential(std::span<const double> lambda,
                          std::span<const double> mu) {
  if (lambda.size() != mu.size()) {
    throw std::invalid_argument("beckmann_potential: size mismatch");
  }
  double b = 0.0;
  for (std::size_t i = 0; i < lambda.size(); ++i) {
    if (!(lambda[i] >= 0.0) || !(lambda[i] < mu[i])) {
      throw std::invalid_argument(
          "beckmann_potential: loads must satisfy 0 <= lambda < mu");
    }
    b += std::log(mu[i]) - std::log(mu[i] - lambda[i]);
  }
  // Each term log(mu_i / (mu_i - lambda_i)) is >= 0 for feasible loads
  // (0 <= lambda < mu), so the Beckmann potential is nonnegative — the
  // descent argument for best-reply convergence needs this floor.
  NASHLB_ENSURE(b >= 0.0, "negative potential %.17g on feasible loads", b);
  return b;
}

InefficiencyReport inefficiency_report(const Instance& inst,
                                       double nash_tolerance) {
  inst.validate();
  const double phi = inst.total_arrival_rate();

  InefficiencyReport report;
  report.social_optimum = overall_response_time_from_loads(
      waterfill_sqrt(inst.mu, phi).lambda, inst.mu);
  report.wardrop_cost = overall_response_time_from_loads(
      waterfill_linear(inst.mu, phi).lambda, inst.mu);

  DynamicsOptions opts;
  opts.tolerance = nash_tolerance;
  opts.max_iterations = 10000;
  const DynamicsResult res = best_reply_dynamics(inst, opts);
  if (!res.converged) {
    throw std::runtime_error(
        "inefficiency_report: best-reply dynamics did not converge");
  }
  report.nash_cost = overall_response_time(inst, res.profile);
  report.nash_ratio = report.nash_cost / report.social_optimum;
  report.wardrop_ratio = report.wardrop_cost / report.social_optimum;
  return report;
}

}  // namespace nashlb::core
