#include "core/equilibrium.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "core/best_reply.hpp"
#include "core/cost.hpp"
#include "util/contracts.hpp"

namespace nashlb::core {

double max_best_reply_gain(const Instance& inst, const StrategyProfile& s) {
  return max_best_reply_gain(inst, s, s.loads(inst));
}

double max_best_reply_gain(const Instance& inst, const StrategyProfile& s,
                           std::span<const double> loads) {
  double worst = 0.0;
  for (std::size_t j = 0; j < inst.num_users(); ++j) {
    worst = std::max(worst, best_reply_gain(inst, s, j, loads));
  }
  return worst;
}

bool is_nash_equilibrium(const Instance& inst, const StrategyProfile& s,
                         double tolerance) {
  if (!s.is_feasible(inst, 1e-7)) return false;
  return max_best_reply_gain(inst, s) <= tolerance;
}

double kkt_residual(const Instance& inst, const StrategyProfile& s,
                    std::size_t user) {
  return kkt_residual(inst, s, user, s.loads(inst));
}

double kkt_residual(const Instance& inst, const StrategyProfile& s,
                    std::size_t user, std::span<const double> loads) {
  if (user >= inst.num_users()) {
    throw std::out_of_range("kkt_residual: user out of range");
  }
  if (loads.size() != inst.num_computers()) {
    throw std::invalid_argument("kkt_residual: loads size mismatch");
  }
  const std::span<const double> strategy = s.row(user);
  const double phi = inst.phi[user];
  std::vector<double> avail(loads.size());
  for (std::size_t i = 0; i < loads.size(); ++i) {
    avail[i] = inst.mu[i] - (loads[i] - strategy[i] * phi);
  }

  // Marginal cost of user flow at each computer.
  std::vector<double> g(avail.size());
  for (std::size_t i = 0; i < avail.size(); ++i) {
    const double slack = avail[i] - strategy[i] * phi;
    if (!(slack > 0.0)) return std::numeric_limits<double>::infinity();
    g[i] = avail[i] / (slack * slack);
  }

  // alpha: flow-weighted mean marginal on the support.
  double alpha = 0.0;
  double weight = 0.0;
  for (std::size_t i = 0; i < g.size(); ++i) {
    if (strategy[i] > 0.0) {
      alpha += strategy[i] * g[i];
      weight += strategy[i];
    }
  }
  if (weight == 0.0) {
    // No flow at all: vacuously stationary only if phi == 0, which the
    // instance forbids; report a unit residual.
    return 1.0;
  }
  alpha /= weight;
  // KKT multiplier: the flow-weighted marginal cost on the support is a
  // mean of strictly positive marginals g_i = mu^j_i / slack^2, so a
  // nonpositive alpha means the slack guard above was bypassed and the
  // normalized residual below would flip sign.
  NASHLB_ENSURE(alpha > 0.0, "user %zu: support marginal alpha=%.17g <= 0",
                user, alpha);

  double residual = 0.0;
  for (std::size_t i = 0; i < g.size(); ++i) {
    if (strategy[i] > 0.0) {
      residual = std::max(residual, std::fabs(g[i] - alpha));
    } else {
      residual = std::max(residual, std::max(0.0, alpha - g[i]));
    }
  }
  return residual / alpha;
}

double best_random_deviation_gain(const Instance& inst,
                                  const StrategyProfile& s, std::size_t user,
                                  stats::Xoshiro256& rng, std::size_t trials,
                                  double step) {
  if (user >= inst.num_users()) {
    throw std::out_of_range("best_random_deviation_gain: user out of range");
  }
  const std::size_t n = inst.num_computers();
  const double base = user_response_time(inst, s, user);
  double best_gain = 0.0;

  for (std::size_t trial = 0; trial < trials; ++trial) {
    // Move a random amount of user traffic from one computer to another,
    // staying inside the simplex; reject moves that break stability.
    const auto from = static_cast<std::size_t>(rng.next_below(n));
    const auto to = static_cast<std::size_t>(rng.next_below(n));
    if (from == to) continue;
    const double movable = s.at(user, from);
    if (movable <= 0.0) continue;
    const double amount = std::min(movable, step * rng.next_double_open());

    StrategyProfile deviated = s;
    deviated.set(user, from, movable - amount);
    deviated.set(user, to, s.at(user, to) + amount);
    if (!deviated.is_feasible(inst, 1e-9)) continue;
    const double d = user_response_time(inst, deviated, user);
    best_gain = std::max(best_gain, base - d);
  }
  // A deviation "gain" is clamped at zero by construction; a negative
  // value would invert every epsilon-Nash certificate built on it.
  NASHLB_ENSURE(best_gain >= 0.0, "user %zu: negative deviation gain %.17g",
                user, best_gain);
  return best_gain;
}

}  // namespace nashlb::core
