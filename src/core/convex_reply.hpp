// Generic best reply for convex delay models — OPTIMAL beyond M/M/1.
//
// With the other users' flows x_i frozen, user j chooses its own flow
// vector l (l_i >= 0, sum l_i = phi_j) minimizing
//     D_j(l) = (1/phi_j) sum_i l_i * T_i(x_i + l_i).
// For any DelayModel with T increasing and convex this is a strictly
// convex problem whose KKT conditions read: there is a multiplier alpha
// with
//     g_i(l_i) := T_i(x_i + l_i) + l_i T_i'(x_i + l_i)  = alpha  (l_i > 0)
//                                                       >= alpha (l_i = 0)
// Each marginal g_i is continuous and strictly increasing in l_i, so
// l_i(alpha) is obtained by bisection per computer, and alpha itself by an
// outer bisection on the monotone map alpha -> sum_i l_i(alpha). For
// M/M/1 models g_i(l) = mu^j_i/(mu^j_i - l)^2 and the result matches the
// paper's closed form to solver tolerance — which is exactly how the test
// suite validates this module.
#pragma once

#include <cstddef>
#include <vector>

#include "core/delay_model.hpp"

namespace nashlb::core {

/// Result of a generic best-reply computation.
struct ConvexReplyResult {
  /// The user's flow to each computer (sums to the demand).
  std::vector<double> flow;
  /// KKT multiplier (common marginal cost on the support).
  double alpha = 0.0;
  /// Outer-bisection iterations used.
  std::size_t iterations = 0;
};

/// Computes the best reply of a user with demand `phi` against background
/// loads `background` (the other users' flows at each computer).
/// Requires background[i] >= 0, background[i] < models[i]->capacity(),
/// and phi < sum_i (capacity_i - background_i); throws
/// std::invalid_argument otherwise. `tol` bounds |sum flow - phi|.
[[nodiscard]] ConvexReplyResult convex_best_reply(
    const std::vector<DelayModelPtr>& models,
    const std::vector<double>& background, double phi, double tol = 1e-10);

/// Round-robin best-reply dynamics over generic delay models: the NASH
/// algorithm of §3 with OPTIMAL replaced by convex_best_reply.
struct GenericDynamicsResult {
  /// flows[j][i]: user j's flow to computer i at the final profile.
  std::vector<std::vector<double>> flows;
  bool converged = false;
  std::size_t iterations = 0;
  std::vector<double> norm_history;
  /// Final per-user expected response times.
  std::vector<double> user_times;
};

[[nodiscard]] GenericDynamicsResult generic_best_reply_dynamics(
    const std::vector<DelayModelPtr>& models, const std::vector<double>& phi,
    double tolerance = 1e-6, std::size_t max_iterations = 1000);

}  // namespace nashlb::core
