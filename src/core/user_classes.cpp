#include "core/user_classes.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

#include "core/best_reply.hpp"
#include "util/contracts.hpp"

namespace nashlb::core {

namespace {

/// Sorts user indices by (phi, index): equal demands become contiguous
/// runs and members inside every run stay ascending.
std::vector<std::size_t> by_demand(const Instance& inst) {
  std::vector<std::size_t> order(inst.num_users());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&inst](std::size_t a, std::size_t b) {
              if (inst.phi[a] != inst.phi[b]) {
                return inst.phi[a] < inst.phi[b];
              }
              return a < b;
            });
  return order;
}

}  // namespace

UserClassPartition UserClassPartition::build(
    const Instance& inst, std::vector<std::vector<std::size_t>> groups) {
  const std::size_t m = inst.num_users();
  UserClassPartition part;
  part.user_class_.assign(m, m);  // m = "unassigned" sentinel
  part.classes_.reserve(groups.size());
  part.rep_phi_.reserve(groups.size());
  part.counts_.reserve(groups.size());
  std::size_t assigned = 0;
  for (std::vector<std::size_t>& members : groups) {
    NASHLB_EXPECT(!members.empty(),
                  "class %zu of the partition is empty", part.classes_.size());
    if (members.empty()) continue;  // unchecked builds: drop, don't crash
    UserClass cls;
    cls.phi_min = std::numeric_limits<double>::infinity();
    cls.phi_max = -std::numeric_limits<double>::infinity();
    std::size_t prev = 0;
    bool first = true;
    for (std::size_t j : members) {
      NASHLB_EXPECT(j < m, "class %zu names user %zu but the instance has "
                    "only %zu users", part.classes_.size(), j, m);
      if (j >= m) continue;  // unchecked builds: skip, don't index OOB
      NASHLB_EXPECT(first || j > prev,
                    "class %zu members not strictly ascending at user %zu",
                    part.classes_.size(), j);
      NASHLB_EXPECT(part.user_class_[j] == m,
                    "user %zu appears in classes %zu and %zu (overlap)", j,
                    part.user_class_[j], part.classes_.size());
      part.user_class_[j] = part.classes_.size();
      cls.weight += inst.phi[j];
      if (inst.phi[j] < cls.phi_min) {
        cls.phi_min = inst.phi[j];
        cls.user_min = j;
      }
      if (inst.phi[j] > cls.phi_max) {
        cls.phi_max = inst.phi[j];
        cls.user_max = j;
      }
      prev = j;
      first = false;
      ++assigned;
    }
    cls.members = std::move(members);
    // Homogeneous classes take the members' common demand verbatim so the
    // deviation is exactly zero; W/count would pick up summation rounding
    // (v + v + v need not equal 3v bitwise).
    cls.rep_phi = cls.phi_min == cls.phi_max
                      ? cls.phi_min
                      : cls.weight / static_cast<double>(cls.members.size());
    part.total_weight_ += cls.weight;
    part.rep_phi_.push_back(cls.rep_phi);
    part.counts_.push_back(static_cast<double>(cls.members.size()));
    part.classes_.push_back(std::move(cls));
  }
  NASHLB_EXPECT(assigned == m,
                "partition covers %zu of %zu users (incomplete)", assigned, m);
  for (const UserClass& cls : part.classes_) {
    for (std::size_t j : cls.members) {
      const double dev = std::fabs(inst.phi[j] - cls.rep_phi);
      part.max_abs_dev_ = std::max(part.max_abs_dev_, dev);
      if (cls.rep_phi > 0.0) {
        part.max_rel_dev_ = std::max(part.max_rel_dev_, dev / cls.rep_phi);
      }
    }
  }
  // The class-weight invariant at build time; re-checked by the dynamics
  // after every round (see core/dynamics.cpp).
  NASHLB_ENSURE(std::fabs(part.total_weight_ - inst.total_arrival_rate()) <=
                    1e-9 * std::max(1.0, inst.total_arrival_rate()),
                "class weights sum to %.17g but Phi=%.17g",
                part.total_weight_, inst.total_arrival_rate());
  return part;
}

UserClassPartition UserClassPartition::exact(const Instance& inst) {
  const std::vector<std::size_t> order = by_demand(inst);
  std::vector<std::vector<std::size_t>> groups;
  for (std::size_t pos = 0; pos < order.size();) {
    std::size_t end = pos;
    while (end < order.size() &&
           inst.phi[order[end]] == inst.phi[order[pos]]) {
      ++end;
    }
    groups.emplace_back(order.begin() + static_cast<std::ptrdiff_t>(pos),
                        order.begin() + static_cast<std::ptrdiff_t>(end));
    pos = end;
  }
  return build(inst, std::move(groups));
}

UserClassPartition UserClassPartition::quantized(const Instance& inst,
                                                 double eps_phi,
                                                 std::size_t max_classes) {
  if (!(eps_phi > 0.0) || !std::isfinite(eps_phi)) {
    throw std::invalid_argument(
        "UserClassPartition::quantized: eps_phi must be finite and > 0");
  }
  const std::vector<std::size_t> order = by_demand(inst);
  const double lo = inst.phi[order.front()];
  const double hi = inst.phi[order.back()];
  if (!(lo > 0.0)) {
    throw std::invalid_argument(
        "UserClassPartition::quantized: demands must be > 0");
  }
  double ratio = 1.0 + eps_phi;
  if (max_classes > 0 && hi > lo) {
    // Widen the cells until max_classes of them span [lo, hi]. The tiny
    // headroom keeps phi_max strictly inside the last cell.
    const double needed =
        std::pow(hi / lo, 1.0 / static_cast<double>(max_classes)) *
        (1.0 + 1e-12);
    ratio = std::max(ratio, needed);
  }
  const double log_ratio = std::log(ratio);
  std::vector<std::vector<std::size_t>> groups;
  long long current_cell = -1;
  for (std::size_t j : order) {
    long long cell =
        hi > lo ? static_cast<long long>(
                      std::floor(std::log(inst.phi[j] / lo) / log_ratio))
                : 0;
    if (max_classes > 0 && cell >= static_cast<long long>(max_classes)) {
      cell = static_cast<long long>(max_classes) - 1;
    }
    if (groups.empty() || cell != current_cell) {
      groups.emplace_back();
      current_cell = cell;
    }
    groups.back().push_back(j);
  }
  // Cell members arrive in demand order; the partition contract wants
  // them in ascending user order.
  for (std::vector<std::size_t>& g : groups) std::sort(g.begin(), g.end());
  return build(inst, std::move(groups));
}

UserClassPartition UserClassPartition::singletons(const Instance& inst) {
  std::vector<std::vector<std::size_t>> groups(inst.num_users());
  for (std::size_t j = 0; j < inst.num_users(); ++j) groups[j] = {j};
  return build(inst, std::move(groups));
}

UserClassPartition UserClassPartition::from_members(
    const Instance& inst, std::vector<std::vector<std::size_t>> members) {
  return build(inst, std::move(members));
}

std::size_t UserClassPartition::class_of(std::size_t user) const {
  if (user >= user_class_.size()) {
    throw std::out_of_range("UserClassPartition::class_of: user out of range");
  }
  return user_class_[user];
}

bool UserClassPartition::all_singletons() const noexcept {
  return classes_.size() == user_class_.size();
}

Instance UserClassPartition::aggregate_instance(const Instance& inst) const {
  Instance agg;
  agg.mu = inst.mu;
  agg.phi.reserve(classes_.size());
  for (const UserClass& cls : classes_) agg.phi.push_back(cls.weight);
  return agg;
}

StrategyProfile UserClassPartition::expand(
    const StrategyProfile& class_profile) const {
  if (class_profile.num_users() != classes_.size()) {
    throw std::invalid_argument(
        "UserClassPartition::expand: profile has " +
        std::to_string(class_profile.num_users()) + " rows, partition has " +
        std::to_string(classes_.size()) + " classes");
  }
  StrategyProfile full(user_class_.size(), class_profile.num_computers());
  for (std::size_t k = 0; k < classes_.size(); ++k) {
    const std::span<const double> row = class_profile.row(k);
    for (std::size_t j : classes_[k].members) full.set_row(j, row);
  }
  // Every user belongs to exactly one class (ctor invariant), so the
  // expansion writes each of the m rows exactly once; a partition with
  // orphaned users would leave all-zero (infeasible) rows here.
  NASHLB_ENSURE(full.num_users() == num_users(),
                "expanded %zu rows for %zu users", full.num_users(),
                num_users());
  return full;
}

StrategyProfile UserClassPartition::collapse(
    const StrategyProfile& full_profile) const {
  if (full_profile.num_users() != user_class_.size()) {
    throw std::invalid_argument(
        "UserClassPartition::collapse: profile has " +
        std::to_string(full_profile.num_users()) + " rows, partition covers " +
        std::to_string(user_class_.size()) + " users");
  }
  StrategyProfile cls(classes_.size(), full_profile.num_computers());
  for (std::size_t k = 0; k < classes_.size(); ++k) {
    cls.set_row(k, full_profile.row(classes_[k].members.front()));
  }
  NASHLB_ENSURE(cls.num_users() == num_classes(),
                "collapsed to %zu rows for %zu classes", cls.num_users(),
                num_classes());
  return cls;
}

std::vector<double> UserClassPartition::expanded_loads(
    const Instance& inst, const StrategyProfile& class_profile) const {
  if (class_profile.num_users() != classes_.size() ||
      class_profile.num_computers() != inst.num_computers()) {
    throw std::invalid_argument(
        "UserClassPartition::expanded_loads: dimension mismatch");
  }
  std::vector<double> lambda(inst.num_computers(), 0.0);
  for (std::size_t k = 0; k < classes_.size(); ++k) {
    const std::span<const double> row = class_profile.row(k);
    const double w = classes_[k].weight;
    for (std::size_t i = 0; i < lambda.size(); ++i) lambda[i] += row[i] * w;
  }
#if NASHLB_CHECK_ENABLED
  // Flow conservation: with every class row on the simplex, the
  // expanded loads carry the aggregate weight sum_k W_k = Phi — the
  // certificate math in certify_eps_nash divides by this mass, so a
  // partition whose weights drifted from the instance must abort here.
  double mass = 0.0;
  for (double l : lambda) mass += l;
  NASHLB_EXPECT(
      std::fabs(mass - total_weight_) <= 1e-7 * std::max(1.0, total_weight_),
      "expanded loads carry %.17g of the partition's %.17g total flow", mass,
      total_weight_);
#endif
  return lambda;
}

void UserClassPartition::expect_matches(
    [[maybe_unused]] const Instance& inst) const {
#if NASHLB_CHECK_ENABLED
  NASHLB_EXPECT(num_users() == inst.num_users(),
                "partition covers %zu users, instance has %zu", num_users(),
                inst.num_users());
  const double phi = inst.total_arrival_rate();
  NASHLB_EXPECT(std::fabs(total_weight_ - phi) <= 1e-9 * std::max(1.0, phi),
                "class weights sum to %.17g but Phi=%.17g", total_weight_,
                phi);
#endif
}

std::span<const double> class_reply_into(const Instance& agg,
                                         const StrategyProfile& s,
                                         const LoadState& state,
                                         std::size_t k,
                                         const UserClassPartition& part,
                                         BestReplyWorkspace& ws) {
  if (k >= agg.num_users() || k >= part.num_classes()) {
    throw std::out_of_range("class_reply_into: class out of range");
  }
  const double count = part.member_counts()[k];
  const double rep = part.rep_phi()[k];
  if (count <= 1.0) {
    return best_reply_into(agg, s, state, k, rep, ws);
  }
  const std::size_t n = agg.num_computers();
  ws.resize(n);
  // a_i: the rate at computer i free of the *whole* class — back out
  // W_k = agg.phi[k], not just the representative's share.
  const double weight = agg.phi[k];
  state.available_rates(s, k, weight, ws.avail);
  const std::span<const double> a = {ws.avail.data(), n};
  double sum_a = 0.0;
  double sum_sqrt = 0.0;
  double a_max = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    if (!(a[i] > 0.0)) {
      throw std::invalid_argument(
          "class_reply: other classes overload computer " + std::to_string(i));
    }
    sum_a += a[i];
    sum_sqrt += std::sqrt(a[i]);
    a_max = std::max(a_max, a[i]);
  }
  // Stability of the aggregated instance guarantees sum_i a_i > W_k, so a
  // root of g always exists.
  NASHLB_EXPECT(sum_a > weight,
                "class %zu: free rates sum to %.17g <= weight %.17g", k,
                sum_a, weight);

  const double beta = (weight - rep) / weight;      // classmates' share
  const double self = rep / weight;                 // 1 - beta, exactly
  std::vector<std::size_t>& order = ws.waterfill.order;
  order.resize(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&a](std::size_t x, std::size_t y) {
    if (a[x] != a[y]) return a[x] > a[y];
    return x < y;
  });

  // g(alpha) = sum_{i in support} T_i(alpha) - W, strictly increasing:
  // support = {i : a_i > 1/alpha} (a descending prefix of `order`),
  // sigma_i = (beta + sqrt(beta^2 + 4*alpha*self*a_i)) / (2 alpha),
  // T_i = a_i - sigma_i. g < 0 at alpha = 1/a_max (empty class flow) and
  // g -> sum a - W > 0 as alpha -> inf.
  const auto eval = [&](double alpha, double& dg) {
    double g = -weight;
    dg = 0.0;
    for (std::size_t p = 0; p < n; ++p) {
      const double ai = a[order[p]];
      if (!(ai * alpha > 1.0)) break;
      const double q = 4.0 * self * ai;
      const double root = std::sqrt(beta * beta + q * alpha);
      g += ai - (beta + root) / (2.0 * alpha);
      dg += (q * alpha + 2.0 * beta * (beta + root)) /
            (4.0 * alpha * alpha * root);
    }
    return g;
  };

  // Bracket the level, starting from the single-player sqrt-rule guess.
  double lo = 1.0 / a_max;
  const double guess_t = (sum_a - weight) / sum_sqrt;
  double alpha = std::max(1.0 / (guess_t * guess_t), lo * (1.0 + 1e-12));
  double dg = 0.0;
  double hi = alpha;
  while (eval(hi, dg) < 0.0) {
    lo = hi;
    hi *= 2.0;
  }
  alpha = std::min(alpha, hi);
  // Safeguarded Newton: keep the bracket, bisect when a step escapes it
  // or fails to halve the residual (so the bracket provably shrinks and
  // a mis-sized Newton step can never settle into a 2-cycle).
  double prev_abs_g = std::numeric_limits<double>::infinity();
  for (int iter = 0; iter < 200; ++iter) {
    const double g = eval(alpha, dg);
    const double abs_g = std::fabs(g);
    if (abs_g <= 1e-13 * weight) break;
    if (g > 0.0) {
      hi = alpha;
    } else {
      lo = alpha;
    }
    double next = dg > 0.0 && abs_g <= 0.5 * prev_abs_g ? alpha - g / dg
                                                        : 0.5 * (lo + hi);
    if (!(next > lo) || !(next < hi)) next = 0.5 * (lo + hi);
    if (next == alpha || !(hi - lo > 1e-15 * hi)) break;
    prev_abs_g = abs_g;
    alpha = next;
  }

  // Final allocation at the solved level; normalize the fractions so the
  // committed row sits exactly on the simplex.
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) ws.reply[i] = 0.0;
  for (std::size_t p = 0; p < n; ++p) {
    const std::size_t i = order[p];
    const double ai = a[i];
    if (!(ai * alpha > 1.0)) break;
    const double root = std::sqrt(beta * beta + 4.0 * self * ai * alpha);
    const double flow = ai - (beta + root) / (2.0 * alpha);
    if (flow > 0.0) {
      ws.reply[i] = flow;
      total += flow;
    }
  }
  NASHLB_ENSURE(total > 0.0, "class %zu: symmetric reply allocated no flow",
                k);
  for (std::size_t i = 0; i < n; ++i) ws.reply[i] /= total;
#if NASHLB_CHECK_ENABLED
  // The committed class load must leave every touched computer strictly
  // stable: T_i < a_i on the support by construction (sigma_i > 0).
  for (std::size_t i = 0; i < n; ++i) {
    NASHLB_ENSURE(ws.reply[i] * weight < a[i] || ws.reply[i] == 0.0,
                  "class %zu overloads computer %zu: flow %.17g >= free "
                  "rate %.17g",
                  k, i, ws.reply[i] * weight, a[i]);
  }
#endif
  return {ws.reply.data(), ws.reply.size()};
}

namespace {

/// Exact best-reply gain of one probe demand against the expanded loads:
/// the probe currently plays `row` (its class's strategy), so its cost is
/// D = sum_i row_i / (mu_i − lambda_i) and its best deviation is the
/// waterfill reply against avail_i = mu_i − lambda_i + row_i·phi.
struct ProbeGain {
  double gain = 0.0;    // D − D*, seconds
  double d_star = 0.0;  // deviated response time D*
  double u_min = 0.0;   // smallest slack the reply leaves, jobs/sec
  bool ok = false;      // false when the expanded profile starves a probe
};

ProbeGain probe_gain(const Instance& inst, std::span<const double> lambda,
                     std::span<const double> row, double current_d,
                     double phi) {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  ProbeGain out;
  const std::size_t n = inst.num_computers();
  std::vector<double> avail(n);
  for (std::size_t i = 0; i < n; ++i) {
    avail[i] = inst.mu[i] - (lambda[i] - row[i] * phi);
    if (!(avail[i] > 0.0)) return out;
  }
  const std::vector<double> reply = optimal_fractions(avail, phi);
  double d_star = 0.0;
  double u_min = kInf;
  for (std::size_t i = 0; i < n; ++i) {
    const double slack = avail[i] - reply[i] * phi;
    u_min = std::min(u_min, slack);
    if (reply[i] > 0.0) {
      if (!(slack > 0.0)) return out;
      d_star += reply[i] / slack;
    }
  }
  out.gain = current_d - d_star;
  out.d_star = d_star;
  out.u_min = u_min;
  out.ok = true;
  return out;
}

}  // namespace

EpsNashCertificate certify_eps_nash(const Instance& inst,
                                    const UserClassPartition& partition,
                                    const StrategyProfile& class_profile) {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  if (partition.num_users() != inst.num_users()) {
    throw std::invalid_argument(
        "certify_eps_nash: partition/instance user count mismatch");
  }
  const std::vector<double> lambda =
      partition.expanded_loads(inst, class_profile);
  EpsNashCertificate cert;
  for (std::size_t k = 0; k < partition.num_classes(); ++k) {
    const UserClass& cls = partition.classes()[k];
    const std::span<const double> row = class_profile.row(k);
    // Every member of the class plays `row`, so they all experience the
    // same response time at the expanded profile.
    double current_d = 0.0;
    for (std::size_t i = 0; i < inst.num_computers(); ++i) {
      if (row[i] > 0.0) {
        const double slack = inst.mu[i] - lambda[i];
        if (!(slack > 0.0)) {
          current_d = kInf;
          break;
        }
        current_d += row[i] / slack;
      }
    }
    if (!std::isfinite(current_d) || !(current_d > 0.0)) {
      cert.eps_nash = kInf;
      cert.analytic_bound = kInf;
      cert.worst_class = k;
      return cert;
    }
    // The representative's residual gap_rep: how far the class profile
    // is from an exact class-level equilibrium.
    const ProbeGain rep =
        probe_gain(inst, lambda, row, current_d, cls.rep_phi);
    const double rep_gap = rep.ok ? std::max(rep.gain, 0.0) : kInf;
    cert.rep_gap_seconds = std::max(cert.rep_gap_seconds, rep_gap);
    // Real-member probes: the bucket extremes (one probe when the
    // extremes coincide, as in exact mode).
    const std::size_t probes[2] = {cls.user_min, cls.user_max};
    const std::size_t num_probes =
        (cls.user_min == cls.user_max ||
         inst.phi[cls.user_min] == inst.phi[cls.user_max])
            ? 1
            : 2;
    for (std::size_t p = 0; p < num_probes; ++p) {
      const std::size_t j = probes[p];
      const double phi_j = inst.phi[j];
      const ProbeGain g = probe_gain(inst, lambda, row, current_d, phi_j);
      ++cert.evaluated_members;
      const double delta = std::fabs(phi_j - cls.rep_phi);
      const double eps_j = g.ok ? std::max(g.gain, 0.0) / current_d : kInf;
      const double spread =
          g.ok && delta < g.u_min ? delta * g.d_star / (g.u_min - delta)
                                  : kInf;
      const double bound_j =
          std::isfinite(rep_gap) && std::isfinite(spread)
              ? (rep_gap + spread) / current_d
              : kInf;
      if (eps_j > cert.eps_nash) {
        cert.eps_nash = eps_j;
        cert.worst_class = k;
        cert.worst_user = j;
      }
      cert.analytic_bound = std::max(cert.analytic_bound, bound_j);
      cert.max_abs_gain_seconds =
          std::max(cert.max_abs_gain_seconds, g.ok ? g.gain : kInf);
    }
  }
  return cert;
}

}  // namespace nashlb::core
