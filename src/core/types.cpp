#include "core/types.hpp"

#include <cmath>
#include <stdexcept>

#include "util/contracts.hpp"

namespace nashlb::core {

double Instance::total_arrival_rate() const noexcept {
  double sum = 0.0;
  for (double p : phi) sum += p;
  return sum;
}

double Instance::total_capacity() const noexcept {
  double sum = 0.0;
  for (double m : mu) sum += m;
  return sum;
}

double Instance::system_utilization() const noexcept {
  return total_arrival_rate() / total_capacity();
}

void Instance::validate() const {
  if (mu.empty()) {
    throw std::invalid_argument("Instance: need at least one computer");
  }
  if (phi.empty()) {
    throw std::invalid_argument("Instance: need at least one user");
  }
  for (std::size_t i = 0; i < mu.size(); ++i) {
    if (!(mu[i] > 0.0) || !std::isfinite(mu[i])) {
      throw std::invalid_argument("Instance: mu[" + std::to_string(i) +
                                  "] must be finite and > 0");
    }
  }
  for (std::size_t j = 0; j < phi.size(); ++j) {
    if (!(phi[j] > 0.0) || !std::isfinite(phi[j])) {
      throw std::invalid_argument("Instance: phi[" + std::to_string(j) +
                                  "] must be finite and > 0");
    }
  }
  if (!(total_arrival_rate() < total_capacity())) {
    throw std::invalid_argument(
        "Instance: total arrival rate must be < total capacity "
        "(system stability)");
  }
}

StrategyProfile::StrategyProfile(std::size_t num_users,
                                 std::size_t num_computers)
    : m_(num_users), n_(num_computers), data_(num_users * num_computers, 0.0) {
  if (m_ == 0 || n_ == 0) {
    throw std::invalid_argument("StrategyProfile: empty dimensions");
  }
}

StrategyProfile StrategyProfile::proportional(const Instance& inst) {
  inst.validate();
  StrategyProfile s(inst.num_users(), inst.num_computers());
  const double cap = inst.total_capacity();
  for (std::size_t j = 0; j < s.m_; ++j) {
    for (std::size_t i = 0; i < s.n_; ++i) {
      s.data_[j * s.n_ + i] = inst.mu[i] / cap;
    }
  }
  return s;
}

double StrategyProfile::at(std::size_t user, std::size_t computer) const {
  if (user >= m_ || computer >= n_) {
    throw std::out_of_range("StrategyProfile::at: index out of range");
  }
  return data_[user * n_ + computer];
}

void StrategyProfile::set(std::size_t user, std::size_t computer,
                          double fraction) {
  if (user >= m_ || computer >= n_) {
    throw std::out_of_range("StrategyProfile::set: index out of range");
  }
  data_[user * n_ + computer] = fraction;
}

std::span<const double> StrategyProfile::row(std::size_t user) const {
  if (user >= m_) {
    throw std::out_of_range("StrategyProfile::row: user out of range");
  }
  return {data_.data() + user * n_, n_};
}

void StrategyProfile::set_row(std::size_t user,
                              std::span<const double> strategy) {
  if (user >= m_) {
    throw std::out_of_range("StrategyProfile::set_row: user out of range");
  }
  if (strategy.size() != n_) {
    throw std::invalid_argument("StrategyProfile::set_row: size mismatch");
  }
  std::copy(strategy.begin(), strategy.end(), data_.begin() + static_cast<std::ptrdiff_t>(user * n_));
}

std::vector<double> StrategyProfile::loads(const Instance& inst) const {
  if (inst.num_users() != m_ || inst.num_computers() != n_) {
    throw std::invalid_argument("StrategyProfile::loads: instance mismatch");
  }
  std::vector<double> lambda(n_, 0.0);
  for (std::size_t j = 0; j < m_; ++j) {
    const double rate = inst.phi[j];
    for (std::size_t i = 0; i < n_; ++i) {
      lambda[i] += data_[j * n_ + i] * rate;
    }
  }
  return lambda;
}

std::vector<double> StrategyProfile::available_rates(
    const Instance& inst, std::size_t user) const {
  if (user >= m_) {
    throw std::out_of_range("available_rates: user out of range");
  }
  std::vector<double> avail = loads(inst);
  const double rate = inst.phi[user];
  for (std::size_t i = 0; i < n_; ++i) {
    const double others = avail[i] - data_[user * n_ + i] * rate;
    avail[i] = inst.mu[i] - others;
  }
  return avail;
}

bool StrategyProfile::is_feasible(const Instance& inst, double tol) const {
  if (inst.num_users() != m_ || inst.num_computers() != n_) return false;
  for (std::size_t j = 0; j < m_; ++j) {
    double total = 0.0;
    for (std::size_t i = 0; i < n_; ++i) {
      const double f = data_[j * n_ + i];
      if (!(f >= -tol) || !std::isfinite(f)) return false;  // positivity
      total += f;
    }
    if (std::fabs(total - 1.0) > tol) return false;  // conservation
  }
  const std::vector<double> lambda = loads(inst);
  for (std::size_t i = 0; i < n_; ++i) {
    if (!(lambda[i] < inst.mu[i])) return false;  // stability
  }
  return true;
}

double StrategyProfile::max_difference(const StrategyProfile& other) const {
  if (other.m_ != m_ || other.n_ != n_) {
    throw std::invalid_argument("max_difference: dimension mismatch");
  }
  double worst = 0.0;
  for (std::size_t k = 0; k < data_.size(); ++k) {
    worst = std::max(worst, std::fabs(data_[k] - other.data_[k]));
  }
  // A max-norm distance is nonnegative and finite for finite profiles;
  // NaN here (a poisoned fraction) would make every convergence test
  // comparing against a tolerance vacuously pass.
  NASHLB_ENSURE(worst >= 0.0, "max_difference produced %.17g", worst);
  return worst;
}

}  // namespace nashlb::core
