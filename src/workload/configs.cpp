#include "workload/configs.hpp"

#include <cmath>
#include <stdexcept>

namespace nashlb::workload {

std::vector<SpeedClass> table1_classes() {
  return {
      {1.0, 6, 10.0},
      {2.0, 5, 20.0},
      {5.0, 3, 50.0},
      {10.0, 2, 100.0},
  };
}

std::vector<double> table1_rates() {
  std::vector<double> mu;
  for (const SpeedClass& cls : table1_classes()) {
    for (std::size_t k = 0; k < cls.count; ++k) mu.push_back(cls.rate);
  }
  return mu;
}

std::vector<double> default_user_fractions() {
  return {0.3, 0.2, 0.1, 0.07, 0.07, 0.06, 0.06, 0.06, 0.04, 0.04};
}

std::vector<double> user_fractions(std::size_t m) {
  if (m == 0) {
    throw std::invalid_argument("user_fractions: need at least one user");
  }
  const std::vector<double> base = default_user_fractions();
  if (m == base.size()) return base;
  std::vector<double> q(m);
  double total = 0.0;
  for (std::size_t j = 0; j < m; ++j) {
    // Cycle through the published pattern, attenuating each lap so large
    // populations keep a heavy-head/long-tail mix of user sizes.
    const std::size_t lap = j / base.size();
    q[j] = base[j % base.size()] * std::pow(0.5, static_cast<double>(lap));
    total += q[j];
  }
  for (double& v : q) v /= total;
  return q;
}

core::Instance make_instance(std::vector<double> rates,
                             std::vector<double> fractions,
                             double utilization) {
  if (!(utilization > 0.0) || !(utilization < 1.0)) {
    throw std::invalid_argument(
        "make_instance: utilization must be in (0, 1)");
  }
  double frac_total = 0.0;
  for (double q : fractions) frac_total += q;
  if (std::fabs(frac_total - 1.0) > 1e-9) {
    throw std::invalid_argument(
        "make_instance: user fractions must sum to 1");
  }
  double capacity = 0.0;
  for (double mu : rates) capacity += mu;
  const double phi_total = utilization * capacity;

  core::Instance inst;
  inst.mu = std::move(rates);
  inst.phi.resize(fractions.size());
  for (std::size_t j = 0; j < fractions.size(); ++j) {
    inst.phi[j] = fractions[j] * phi_total;
  }
  inst.validate();
  return inst;
}

core::Instance table1_instance(double utilization, std::size_t num_users) {
  return make_instance(table1_rates(), user_fractions(num_users),
                       utilization);
}

core::Instance skewness_instance(double skew, double utilization,
                                 std::size_t fast_count,
                                 std::size_t slow_count, double slow_rate) {
  if (!(skew >= 1.0)) {
    throw std::invalid_argument("skewness_instance: skew must be >= 1");
  }
  if (fast_count + slow_count == 0) {
    throw std::invalid_argument("skewness_instance: no computers");
  }
  std::vector<double> mu;
  mu.reserve(fast_count + slow_count);
  for (std::size_t i = 0; i < fast_count; ++i) mu.push_back(skew * slow_rate);
  for (std::size_t i = 0; i < slow_count; ++i) mu.push_back(slow_rate);
  return make_instance(std::move(mu), default_user_fractions(), utilization);
}

}  // namespace nashlb::workload
