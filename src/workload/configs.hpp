// Named experimental configurations from the paper's evaluation (§4.2).
//
// Two system families:
//  * Table 1: the 16-computer heterogeneous system used for the
//    convergence (Fig. 2/3), utilization (Fig. 4) and per-user (Fig. 5)
//    experiments — four speed classes with relative rates {1,2,5,10},
//    counts {6,5,3,2} and absolute rates {10,20,50,100} jobs/sec;
//  * the skewness family of Figure 6: 16 computers, 2 fast + 14 slow,
//    slow rate 10 jobs/sec, fast relative rate swept from 1 to 20.
//
// User population: the workshop paper simulates 10 users but omits their
// arrival-rate split; we use the fractions published for the same setup
// in the journal version (Grosu & Chronopoulos, JPDC 65(9), 2005):
// q = {0.3, 0.2, 0.1, 0.07, 0.07, 0.06, 0.06, 0.06, 0.04, 0.04}.
#pragma once

#include <cstddef>
#include <vector>

#include "core/types.hpp"

namespace nashlb::workload {

/// One speed class of Table 1.
struct SpeedClass {
  double relative_rate;   ///< rate / slowest rate
  std::size_t count;      ///< number of computers in the class
  double rate;            ///< processing rate, jobs/sec
};

/// The four rows of Table 1.
[[nodiscard]] std::vector<SpeedClass> table1_classes();

/// The 16 per-computer processing rates of the Table 1 system, fastest
/// classes last (class order as in the table; expansion is by class).
[[nodiscard]] std::vector<double> table1_rates();

/// The 10-user arrival-rate fractions (sum to 1).
[[nodiscard]] std::vector<double> default_user_fractions();

/// Arrival-rate fractions for an arbitrary user count: the 10-user vector
/// resampled to `m` entries by geometric-like tapering (q_j proportional
/// to the default pattern cyclically), normalized to sum 1. For m == 10
/// this returns exactly `default_user_fractions()`.
[[nodiscard]] std::vector<double> user_fractions(std::size_t m);

/// Builds an instance from computer rates, user fractions, and a target
/// system utilization rho in (0, 1): Phi = rho * sum(mu),
/// phi_j = q_j * Phi. Throws std::invalid_argument if rho is out of range
/// or the fractions do not sum to ~1.
[[nodiscard]] core::Instance make_instance(std::vector<double> rates,
                                           std::vector<double> fractions,
                                           double utilization);

/// The Table 1 system at the given utilization with the default 10 users.
[[nodiscard]] core::Instance table1_instance(double utilization,
                                             std::size_t num_users = 10);

/// The Figure 6 skewness system: `fast_count` computers at
/// `skew * slow_rate` plus `slow_count` at `slow_rate`, default 2 + 14,
/// with the default 10 users, at the given utilization.
[[nodiscard]] core::Instance skewness_instance(double skew,
                                               double utilization,
                                               std::size_t fast_count = 2,
                                               std::size_t slow_count = 14,
                                               double slow_rate = 10.0);

}  // namespace nashlb::workload
