// Random problem instances for fuzzing and the convergence-evidence
// study.
//
// §3: "The convergence proof for more than two users is still an open
// problem. Several experiments done on different settings show that they
// converge." This generator produces the "different settings": seeded,
// reproducible instances spanning system size, population size,
// utilization and heterogeneity — consumed by the property tests and by
// bench_convergence_evidence.
#pragma once

#include <cstdint>

#include "core/types.hpp"

namespace nashlb::workload {

/// Knobs of the instance generator.
struct RandomInstanceOptions {
  std::size_t num_computers = 16;
  std::size_t num_users = 10;
  /// Target system utilization Phi / sum(mu), in (0, 1).
  double utilization = 0.6;
  /// Max ratio between the fastest and slowest computer (>= 1). Rates are
  /// drawn log-uniformly over [base, base * heterogeneity].
  double heterogeneity = 10.0;
  /// Max ratio between the largest and smallest user (>= 1), drawn the
  /// same way.
  double user_skew = 8.0;
  std::uint64_t seed = 1;
};

/// Generates a valid instance (throws std::invalid_argument on bad
/// options). Deterministic in `options` (including the seed).
[[nodiscard]] core::Instance random_instance(
    const RandomInstanceOptions& options);

}  // namespace nashlb::workload
