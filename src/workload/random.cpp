#include "workload/random.hpp"

#include <cmath>
#include <stdexcept>

#include "stats/rng.hpp"

namespace nashlb::workload {

core::Instance random_instance(const RandomInstanceOptions& options) {
  if (options.num_computers == 0 || options.num_users == 0) {
    throw std::invalid_argument("random_instance: empty system");
  }
  if (!(options.utilization > 0.0) || !(options.utilization < 1.0)) {
    throw std::invalid_argument(
        "random_instance: utilization must be in (0, 1)");
  }
  if (!(options.heterogeneity >= 1.0) || !(options.user_skew >= 1.0)) {
    throw std::invalid_argument(
        "random_instance: ratios must be >= 1");
  }

  stats::Xoshiro256 rng(options.seed ^ 0x9e3779b97f4a7c15ULL);
  auto log_uniform = [&](double ratio) {
    // Value in [1, ratio], log-uniform so each decade is equally likely.
    return std::exp(rng.next_double() * std::log(ratio));
  };

  core::Instance inst;
  inst.mu.resize(options.num_computers);
  double capacity = 0.0;
  for (double& mu : inst.mu) {
    mu = 10.0 * log_uniform(options.heterogeneity);
    capacity += mu;
  }

  inst.phi.resize(options.num_users);
  double weight = 0.0;
  for (double& phi : inst.phi) {
    phi = log_uniform(options.user_skew);
    weight += phi;
  }
  const double total = options.utilization * capacity;
  for (double& phi : inst.phi) phi *= total / weight;

  inst.validate();
  return inst;
}

}  // namespace nashlb::workload
