// Factory for the paper's comparison set (§4.2) and named lookup for
// benches and examples.
#pragma once

#include <vector>

#include "schemes/scheme.hpp"

namespace nashlb::schemes {

/// The four schemes of the paper's evaluation in the order the figures
/// list them: NASH (NASH_P variant), GOS (GreedyFill split), IOS, PS.
[[nodiscard]] std::vector<SchemePtr> paper_schemes(double nash_tolerance =
                                                       1e-4);

/// Lookup by display name ("NASH", "NASH_0", "NASH_P", "GOS",
/// "GOS_UNIFORM", "IOS", "PS", "NBS"); throws std::invalid_argument for an
/// unknown name.
[[nodiscard]] SchemePtr make_scheme(const std::string& name);

/// Every canonical name make_scheme accepts, one per distinct scheme
/// variant (so "NASH" is listed as "NASH_P", its canonical alias). Used
/// by the profiling bench to sweep the whole registry.
[[nodiscard]] std::vector<std::string> registered_scheme_names();

}  // namespace nashlb::schemes
