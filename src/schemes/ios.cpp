#include "schemes/ios.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/waterfill.hpp"

namespace nashlb::schemes {

std::vector<double> IndividualOptimalScheme::wardrop_loads(
    const core::Instance& inst) {
  inst.validate();
  return core::waterfill_linear(inst.mu, inst.total_arrival_rate()).lambda;
}

core::StrategyProfile IndividualOptimalScheme::solve(
    const core::Instance& inst) const {
  inst.validate();
  const std::vector<double> lambda = wardrop_loads(inst);
  const double phi_total = inst.total_arrival_rate();
  core::StrategyProfile s(inst.num_users(), inst.num_computers());
  for (std::size_t j = 0; j < inst.num_users(); ++j) {
    for (std::size_t i = 0; i < inst.num_computers(); ++i) {
      s.set(j, i, lambda[i] / phi_total);
    }
  }
  return s;
}

IosIterativeResult ios_iterative(const core::Instance& inst, double tol,
                                 std::size_t max_iters, double relaxation) {
  inst.validate();
  if (!(relaxation > 0.0) || !(relaxation <= 1.0)) {
    throw std::invalid_argument("ios_iterative: relaxation must be in (0,1]");
  }
  const std::size_t n = inst.num_computers();
  const double phi_total = inst.total_arrival_rate();
  const double cap = inst.total_capacity();

  IosIterativeResult res;
  res.loads.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    res.loads[i] = phi_total * inst.mu[i] / cap;  // proportional start
  }

  // Hub: the fastest computer (always loaded at a Wardrop equilibrium of
  // a stable system, since an idle computer may not be faster than the
  // common response level).
  std::size_t hub = 0;
  for (std::size_t i = 1; i < n; ++i) {
    if (inst.mu[i] > inst.mu[hub]) hub = i;
  }

  for (std::size_t iter = 1; iter <= max_iters; ++iter) {
    res.iterations = iter;
    // One Gauss–Seidel sweep of pairwise equalizations against the hub:
    // for the pair (i, hub) with combined flow s, the equal-response
    // split solves mu_i - l_i = mu_hub - l_hub, i.e.
    // l_i* = (s + mu_i - mu_hub) / 2, clamped to [0, s]. Each pair move
    // is exact coordinate descent on the Beckmann potential
    // sum_i -ln(mu_i - l_i); `relaxation` damps the step.
    for (std::size_t i = 0; i < n; ++i) {
      if (i == hub) continue;
      const double s = res.loads[i] + res.loads[hub];
      double target = 0.5 * (s + inst.mu[i] - inst.mu[hub]);
      target = std::min(std::max(target, 0.0), s);
      const double next_i =
          res.loads[i] + relaxation * (target - res.loads[i]);
      res.loads[hub] += res.loads[i] - next_i;
      res.loads[i] = next_i;
    }

    // Convergence: response-time spread over loaded computers, and no
    // idle computer faster than the common level.
    double f_min = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < n; ++i) {
      f_min = std::min(f_min, 1.0 / (inst.mu[i] - res.loads[i]));
    }
    double worst_gap = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      if (res.loads[i] > 1e-12 * phi_total) {
        worst_gap =
            std::max(worst_gap, 1.0 / (inst.mu[i] - res.loads[i]) - f_min);
      }
    }
    if (worst_gap <= tol * f_min) {
      res.converged = true;
      return res;
    }
  }
  return res;
}

}  // namespace nashlb::schemes
