#include "schemes/gos.hpp"

#include <algorithm>
#include <numeric>

#include "core/waterfill.hpp"

namespace nashlb::schemes {

std::vector<double> GlobalOptimalScheme::optimal_loads(
    const core::Instance& inst) {
  inst.validate();
  return core::waterfill_sqrt(inst.mu, inst.total_arrival_rate()).lambda;
}

core::StrategyProfile GlobalOptimalScheme::solve(
    const core::Instance& inst) const {
  inst.validate();
  const std::size_t m = inst.num_users();
  const std::size_t n = inst.num_computers();
  const std::vector<double> lambda = optimal_loads(inst);
  const double phi_total = inst.total_arrival_rate();

  core::StrategyProfile s(m, n);
  if (split_ == GosSplit::Uniform) {
    for (std::size_t j = 0; j < m; ++j) {
      for (std::size_t i = 0; i < n; ++i) {
        s.set(j, i, lambda[i] / phi_total);
      }
    }
    return s;
  }

  // GreedyFill: visit computers from fastest to slowest; each user in
  // index order pours its whole flow into the first computers with spare
  // optimal load. Totals per computer match lambda* exactly, so the
  // overall response time is still the global optimum.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return inst.mu[a] > inst.mu[b];
  });

  std::vector<double> room = lambda;  // unfilled share of each computer
  std::size_t cursor = 0;             // index into `order`
  for (std::size_t j = 0; j < m; ++j) {
    double rest = inst.phi[j];
    while (rest > 0.0 && cursor < n) {
      const std::size_t i = order[cursor];
      const double take = std::min(rest, room[i]);
      if (take > 0.0) {
        s.set(j, i, s.at(j, i) + take / inst.phi[j]);
        room[i] -= take;
        rest -= take;
      }
      if (room[i] <= 1e-15 * inst.mu[i]) {
        ++cursor;
      } else if (rest <= 0.0) {
        break;
      }
    }
    // Rounding can leave a sliver unassigned after the last computer with
    // room; park it on the final visited computer (share is O(ulp)).
    if (rest > 0.0) {
      const std::size_t i = order[std::min(cursor, n - 1)];
      s.set(j, i, s.at(j, i) + rest / inst.phi[j]);
    }
  }
  return s;
}

}  // namespace nashlb::schemes
