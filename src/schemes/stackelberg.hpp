// Stackelberg load balancing — the leader/follower model of Roughgarden
// (STOC 2001), cited in the paper's "Past results" as the other
// game-theoretic approach to this exact system (parallel M/M/1 machines).
//
// A fraction beta of the total flow is centrally controlled (the leader);
// the remaining (1-beta) belongs to infinitesimally small selfish jobs
// that settle into a Wardrop equilibrium *given* the leader's placement.
// Computing the optimal leader strategy is NP-hard; Roughgarden's
// Largest-Latency-First (LLF) heuristic assigns the leader's budget to
// the machines that are slowest under the globally optimal flow — with
// the guarantee (for M/M/1 latencies) that the induced flow costs at most
// 1/beta times the optimum.
//
// beta = 0 reduces to IOS (pure Wardrop); beta = 1 to GOS (pure optimum):
// the scheme interpolates between the paper's two baseline extremes.
#pragma once

#include <vector>

#include "core/types.hpp"

namespace nashlb::schemes {

/// Result of the LLF Stackelberg computation (aggregate flows).
struct StackelbergResult {
  std::vector<double> leader_flow;    ///< centrally placed flow
  std::vector<double> follower_flow;  ///< induced Wardrop flow
  /// Total (leader + follower) arrival rate at each computer.
  [[nodiscard]] std::vector<double> total_flow() const;
};

/// Computes the LLF leader placement for leader share `beta` in [0, 1]
/// and the induced Wardrop equilibrium of the followers on `inst`'s
/// computers. Throws std::invalid_argument for beta outside [0, 1] or an
/// invalid instance.
[[nodiscard]] StackelbergResult stackelberg_llf(const core::Instance& inst,
                                                double beta);

/// Overall expected response time of the induced flow.
[[nodiscard]] double stackelberg_response_time(const core::Instance& inst,
                                               const StackelbergResult& r);

}  // namespace nashlb::schemes
