// Proportional Scheme — PS (Chow & Kohler 1979, the paper's [3]).
//
// Every user allocates its jobs to computers in proportion to their
// processing rates: s_ji = mu_i / sum_k mu_k. All users get identical
// expected response times, so PS has fairness index exactly 1 at every
// load; but the slow computers run at the same utilization as the fast
// ones, which at high system load makes PS's mean response time the worst
// of the compared schemes (Figures 4–6).
#pragma once

#include "schemes/scheme.hpp"

namespace nashlb::schemes {

class ProportionalScheme final : public Scheme {
 public:
  [[nodiscard]] std::string name() const override { return "PS"; }
  [[nodiscard]] core::StrategyProfile solve(
      const core::Instance& inst) const override;
};

}  // namespace nashlb::schemes
