// Individual Optimal Scheme — IOS (Kameda, Li, Kim & Zhang 1997, the
// paper's [6]): every *job* optimizes its own response time, which in the
// infinite-player limit yields the Wardrop equilibrium — expected response
// times equal on every computer that receives traffic, and no unused
// computer faster than that common value.
//
// For parallel M/M/1 computers the Wardrop equilibrium has a closed form
// (the linear water-filling of waterfill.hpp). The reference algorithm in
// [6] is iterative and "not very efficient" (§4.2); we provide both:
//   * IndividualOptimalScheme      — exact, closed form;
//   * ios_iterative(...)           — a faithful flow-deviation style
//     iteration, used by the ablation bench to show how many sweeps the
//     iterative method needs for the same answer.
//
// Every user adopts the same fractions lambda*_i / Phi, so IOS gives all
// users identical expected response times: fairness index exactly 1.
#pragma once

#include <cstddef>
#include <vector>

#include "schemes/scheme.hpp"

namespace nashlb::schemes {

class IndividualOptimalScheme final : public Scheme {
 public:
  [[nodiscard]] std::string name() const override { return "IOS"; }
  [[nodiscard]] core::StrategyProfile solve(
      const core::Instance& inst) const override;

  /// The Wardrop-equilibrium aggregate loads lambda* (closed form).
  [[nodiscard]] static std::vector<double> wardrop_loads(
      const core::Instance& inst);
};

/// Result of the iterative Wardrop computation.
struct IosIterativeResult {
  std::vector<double> loads;     ///< final per-computer arrival rates
  std::size_t iterations = 0;    ///< sweeps executed
  bool converged = false;        ///< response-time spread <= tol on support
};

/// Flow-deviation iteration for the Wardrop equilibrium: starting from the
/// proportional allocation, each sweep moves a `relaxation` share of the
/// excess flow from every above-average computer toward the currently
/// fastest-responding one, until the response-time spread over loaded
/// computers drops below `tol`.
///
/// `relaxation` in (0, 1]; small values converge slowly (that is the point
/// of the ablation), large values can oscillate.
[[nodiscard]] IosIterativeResult ios_iterative(const core::Instance& inst,
                                               double tol = 1e-8,
                                               std::size_t max_iters = 100000,
                                               double relaxation = 0.5);

}  // namespace nashlb::schemes
