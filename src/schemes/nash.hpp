// NASH scheme — the paper's contribution, packaged behind the common
// Scheme interface: run greedy best-reply dynamics (§3) to the Nash
// equilibrium and return the equilibrium profile.
//
// The two published variants differ only in initialization (§4.2.1):
// NASH_0 starts from empty strategies, NASH_P from the proportional
// allocation (which "is close to the equilibrium point", cutting the
// iteration count by more than half — Figure 2).
#pragma once

#include "core/dynamics.hpp"
#include "schemes/scheme.hpp"

namespace nashlb::schemes {

class NashScheme final : public Scheme {
 public:
  /// `init` selects NASH_0 vs NASH_P; `tolerance` is the acceptance
  /// tolerance epsilon of the distributed algorithm.
  explicit NashScheme(
      core::Initialization init = core::Initialization::Proportional,
      double tolerance = 1e-4, std::size_t max_iterations = 1000)
      : init_(init), tolerance_(tolerance), max_iterations_(max_iterations) {}

  [[nodiscard]] std::string name() const override {
    return init_ == core::Initialization::Zero ? "NASH_0" : "NASH_P";
  }

  /// Runs the dynamics to convergence. Throws std::runtime_error if the
  /// dynamics fails to converge within the iteration cap (never observed
  /// for feasible instances; see §3 on the open convergence question).
  [[nodiscard]] core::StrategyProfile solve(
      const core::Instance& inst) const override;

  /// Like solve() but returns the full dynamics trace (iteration count,
  /// norm history) for the convergence benches.
  [[nodiscard]] core::DynamicsResult solve_with_trace(
      const core::Instance& inst) const;

  /// Extra dynamics knobs (update order, trace sink, certificate stride,
  /// order seed, user-class partition). The constructor's
  /// init/tolerance/max_iterations still take precedence over the
  /// corresponding fields here. When `classes` is set, solve() expands
  /// the class-level equilibrium back to the full per-user profile
  /// (solve_with_trace returns the raw class-level result; see
  /// docs/SCALING.md).
  void set_dynamics_options(const core::DynamicsOptions& base) {
    base_options_ = base;
  }

 private:
  core::Initialization init_;
  double tolerance_;
  std::size_t max_iterations_;
  core::DynamicsOptions base_options_;
};

}  // namespace nashlb::schemes
