#include "schemes/stackelberg.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "core/cost.hpp"
#include "core/waterfill.hpp"

namespace nashlb::schemes {

std::vector<double> StackelbergResult::total_flow() const {
  std::vector<double> total(leader_flow.size());
  for (std::size_t i = 0; i < total.size(); ++i) {
    total[i] = leader_flow[i] + follower_flow[i];
  }
  return total;
}

StackelbergResult stackelberg_llf(const core::Instance& inst, double beta) {
  inst.validate();
  if (!(beta >= 0.0 && beta <= 1.0)) {
    throw std::invalid_argument("stackelberg_llf: beta must be in [0, 1]");
  }
  const std::size_t n = inst.num_computers();
  const double phi = inst.total_arrival_rate();
  const double leader_budget = beta * phi;
  const double follower_budget = phi - leader_budget;

  StackelbergResult res;
  res.leader_flow.assign(n, 0.0);
  res.follower_flow.assign(n, 0.0);

  // Globally optimal flow o* (the sqrt rule).
  const core::WaterfillResult opt = core::waterfill_sqrt(inst.mu, phi);

  // LLF: saturate machines in order of decreasing latency under o*
  // (for the sqrt rule, latency 1/(mu_i - o_i) = 1/(sqrt(mu_i) t) is
  // *decreasing* in mu_i, so LLF fills the slowest machines first),
  // assigning each chosen machine its optimal flow o*_i.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     const double la = inst.mu[a] - opt.lambda[a];
                     const double lb = inst.mu[b] - opt.lambda[b];
                     return 1.0 / la > 1.0 / lb;
                   });
  double remaining = leader_budget;
  for (std::size_t k = 0; k < n && remaining > 0.0; ++k) {
    const std::size_t i = order[k];
    const double take = std::min(remaining, opt.lambda[i]);
    res.leader_flow[i] = take;
    remaining -= take;
  }

  // Followers: Wardrop equilibrium over the residual capacities
  // mu_i - leader_flow_i (the leader's jobs are background traffic).
  if (follower_budget > 0.0) {
    std::vector<double> residual(n);
    for (std::size_t i = 0; i < n; ++i) {
      residual[i] = inst.mu[i] - res.leader_flow[i];
    }
    const core::WaterfillResult wardrop =
        core::waterfill_linear(residual, follower_budget);
    res.follower_flow = wardrop.lambda;
  }
  return res;
}

double stackelberg_response_time(const core::Instance& inst,
                                 const StackelbergResult& r) {
  return core::overall_response_time_from_loads(r.total_flow(), inst.mu);
}

}  // namespace nashlb::schemes
