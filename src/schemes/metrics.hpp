// Uniform performance metrics of a scheme's allocation — exactly the
// quantities the paper's figures report.
#pragma once

#include <vector>

#include "core/types.hpp"

namespace nashlb::schemes {

/// Analytic steady-state metrics of a strategy profile.
struct Metrics {
  /// D(s): job-weighted mean response time over the whole system
  /// (y-axis of Figures 4 and 6).
  double overall_response_time = 0.0;
  /// D_j(s) per user (Figure 5).
  std::vector<double> user_response_times;
  /// Jain's fairness index over the D_j vector (Figures 4 and 6).
  double fairness = 1.0;
  /// Total arrival rate per computer.
  std::vector<double> loads;
  /// Per-computer utilization lambda_i / mu_i.
  std::vector<double> computer_utilization;
};

/// Evaluates `profile` on `inst` analytically (M/M/1 formulas).
[[nodiscard]] Metrics evaluate(const core::Instance& inst,
                               const core::StrategyProfile& profile);

}  // namespace nashlb::schemes
