#include "schemes/ps.hpp"

namespace nashlb::schemes {

core::StrategyProfile ProportionalScheme::solve(
    const core::Instance& inst) const {
  inst.validate();
  return core::StrategyProfile::proportional(inst);
}

}  // namespace nashlb::schemes
