#include "schemes/registry.hpp"

#include <stdexcept>

#include "schemes/gos.hpp"
#include "schemes/ios.hpp"
#include "schemes/nash.hpp"
#include "schemes/nbs.hpp"
#include "schemes/ps.hpp"

namespace nashlb::schemes {

std::vector<SchemePtr> paper_schemes(double nash_tolerance) {
  return {
      std::make_shared<NashScheme>(core::Initialization::Proportional,
                                   nash_tolerance),
      std::make_shared<GlobalOptimalScheme>(GosSplit::GreedyFill),
      std::make_shared<IndividualOptimalScheme>(),
      std::make_shared<ProportionalScheme>(),
  };
}

SchemePtr make_scheme(const std::string& name) {
  if (name == "NASH" || name == "NASH_P") {
    return std::make_shared<NashScheme>(core::Initialization::Proportional);
  }
  if (name == "NASH_0") {
    return std::make_shared<NashScheme>(core::Initialization::Zero);
  }
  if (name == "GOS") {
    return std::make_shared<GlobalOptimalScheme>(GosSplit::GreedyFill);
  }
  if (name == "GOS_UNIFORM") {
    return std::make_shared<GlobalOptimalScheme>(GosSplit::Uniform);
  }
  if (name == "IOS") return std::make_shared<IndividualOptimalScheme>();
  if (name == "PS") return std::make_shared<ProportionalScheme>();
  if (name == "NBS") return std::make_shared<NbsScheme>();
  throw std::invalid_argument("make_scheme: unknown scheme '" + name + "'");
}

std::vector<std::string> registered_scheme_names() {
  return {"NASH_P", "NASH_0", "GOS", "GOS_UNIFORM", "IOS", "PS", "NBS"};
}

}  // namespace nashlb::schemes
