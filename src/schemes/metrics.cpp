#include "schemes/metrics.hpp"

#include "core/cost.hpp"
#include "stats/fairness.hpp"

namespace nashlb::schemes {

Metrics evaluate(const core::Instance& inst,
                 const core::StrategyProfile& profile) {
  Metrics m;
  m.user_response_times = core::user_response_times(inst, profile);
  m.overall_response_time = core::overall_response_time(inst, profile);
  m.fairness = stats::fairness_index(m.user_response_times);
  m.loads = profile.loads(inst);
  m.computer_utilization.resize(m.loads.size());
  for (std::size_t i = 0; i < m.loads.size(); ++i) {
    m.computer_utilization[i] = m.loads[i] / inst.mu[i];
  }
  return m;
}

}  // namespace nashlb::schemes
