#include "schemes/nbs.hpp"

#include <cmath>
#include <stdexcept>
#include <vector>

#include "core/cost.hpp"
#include "core/simplex.hpp"

namespace nashlb::schemes {
namespace {

/// sum_j ln D_j(s); +inf outside the stability region.
double objective(const core::Instance& inst, const core::StrategyProfile& s) {
  const std::vector<double> d = core::user_response_times(inst, s);
  double g = 0.0;
  for (double dj : d) {
    if (!std::isfinite(dj) || dj <= 0.0) {
      return std::numeric_limits<double>::infinity();
    }
    g += std::log(dj);
  }
  return g;
}

/// Gradient of the objective w.r.t. every fraction s_ji.
/// dG/ds_ji = (1/D_j) F_i + phi_j F_i^2 sum_k (s_ki / D_k).
std::vector<double> gradient(const core::Instance& inst,
                             const core::StrategyProfile& s) {
  const std::size_t m = inst.num_users();
  const std::size_t n = inst.num_computers();
  const std::vector<double> f = core::computer_response_times(inst, s);
  const std::vector<double> d = core::user_response_times(inst, s);

  // w_i = sum_k s_ki / D_k, shared across users.
  std::vector<double> w(n, 0.0);
  for (std::size_t k = 0; k < m; ++k) {
    for (std::size_t i = 0; i < n; ++i) {
      w[i] += s.at(k, i) / d[k];
    }
  }
  std::vector<double> grad(m * n);
  for (std::size_t j = 0; j < m; ++j) {
    for (std::size_t i = 0; i < n; ++i) {
      grad[j * n + i] = f[i] / d[j] + inst.phi[j] * f[i] * f[i] * w[i];
    }
  }
  return grad;
}

}  // namespace

core::StrategyProfile NbsScheme::solve_with_trace(const core::Instance& inst,
                                                  NbsTrace& trace) const {
  inst.validate();
  const std::size_t m = inst.num_users();
  const std::size_t n = inst.num_computers();

  // The proportional profile is strictly feasible for any valid instance —
  // a safe interior starting point.
  core::StrategyProfile s = core::StrategyProfile::proportional(inst);
  double g = objective(inst, s);
  double step = 0.1;

  trace = NbsTrace{};
  for (std::size_t iter = 1; iter <= max_iterations_; ++iter) {
    trace.iterations = iter;
    const std::vector<double> grad = gradient(inst, s);

    // Backtracking: shrink the step until the projected move both stays
    // strictly feasible and decreases the objective.
    bool advanced = false;
    for (int attempt = 0; attempt < 60; ++attempt) {
      core::StrategyProfile candidate = s;
      for (std::size_t j = 0; j < m; ++j) {
        std::vector<double> row(n);
        for (std::size_t i = 0; i < n; ++i) {
          row[i] = s.at(j, i) - step * grad[j * n + i];
        }
        candidate.set_row(j, core::project_to_simplex(row));
      }
      const double g_new = objective(inst, candidate);
      if (g_new < g) {
        const double moved = s.max_difference(candidate);
        s = std::move(candidate);
        g = g_new;
        advanced = true;
        // Gradient-mapping convergence test: negligible projected move at
        // a healthy step size means first-order stationarity.
        if (moved <= tolerance_ && step >= 1e-6) {
          trace.converged = true;
          trace.objective = g;
          return s;
        }
        step *= 1.5;  // reward success
        break;
      }
      step *= 0.5;
    }
    if (!advanced) {
      // No descent direction at the smallest step: numerically stationary.
      trace.converged = true;
      break;
    }
  }
  trace.objective = g;
  return s;
}

core::StrategyProfile NbsScheme::solve(const core::Instance& inst) const {
  NbsTrace trace;
  core::StrategyProfile s = solve_with_trace(inst, trace);
  if (!trace.converged) {
    throw std::runtime_error("NBS: projected gradient did not converge");
  }
  return s;
}

}  // namespace nashlb::schemes
