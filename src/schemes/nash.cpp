#include "schemes/nash.hpp"

#include <stdexcept>

#include "core/user_classes.hpp"

namespace nashlb::schemes {

core::DynamicsResult NashScheme::solve_with_trace(
    const core::Instance& inst) const {
  core::DynamicsOptions opts = base_options_;
  opts.init = init_;
  opts.tolerance = tolerance_;
  opts.max_iterations = max_iterations_;
  return core::best_reply_dynamics(inst, opts);
}

core::StrategyProfile NashScheme::solve(const core::Instance& inst) const {
  core::DynamicsResult res = solve_with_trace(inst);
  if (!res.converged) {
    throw std::runtime_error(
        name() + ": best-reply dynamics did not converge within " +
        std::to_string(max_iterations_) + " iterations");
  }
  if (base_options_.classes != nullptr) {
    // Class-mode runs return a class-level profile; the Scheme contract
    // promises a full m x n strategy profile, so expand it here.
    return base_options_.classes->expand(res.profile);
  }
  return std::move(res.profile);
}

}  // namespace nashlb::schemes
