// Global Optimal Scheme — GOS (Kim & Kameda 1992, the paper's [8]).
//
// Minimizes the overall expected response time D(s) over all jobs. The
// objective depends on the profile only through the aggregate loads
// lambda_i, so the optimum decomposes into (a) the aggregate water-filling
// allocation lambda* = argmin sum_i lambda_i/(mu_i - lambda_i) with
// sum lambda_i = Phi (the sqrt rule, waterfill.hpp) and (b) a per-user
// split realizing those aggregates.
//
// The split is where GOS's unfairness comes from: the objective does not
// care which user's jobs fill which computer. Figure 5 shows the authors'
// GOS produced very unequal user response times; we model that with the
// GreedyFill policy (users in index order fill the fastest computers'
// optimal loads first, so early users monopolize fast machines and late
// users are pushed to slow ones). The Uniform policy — every user adopts
// fractions lambda*_i/Phi — attains the *same* overall optimum with
// fairness exactly 1, and exists to show (ablation A1) that GOS's
// unfairness is a property of the split, not of optimality.
#pragma once

#include "schemes/scheme.hpp"

namespace nashlb::schemes {

/// How the aggregate-optimal loads are divided among users.
enum class GosSplit {
  GreedyFill,  ///< sequential fill; unfair (reproduces Figure 5's GOS)
  Uniform,     ///< identical fractions for all users; fair
};

class GlobalOptimalScheme final : public Scheme {
 public:
  explicit GlobalOptimalScheme(GosSplit split = GosSplit::GreedyFill)
      : split_(split) {}

  [[nodiscard]] std::string name() const override { return "GOS"; }
  [[nodiscard]] core::StrategyProfile solve(
      const core::Instance& inst) const override;

  /// The aggregate-optimal per-computer loads lambda* (exposed because the
  /// GOS benches compare simulated loads against it).
  [[nodiscard]] static std::vector<double> optimal_loads(
      const core::Instance& inst);

  [[nodiscard]] GosSplit split() const noexcept { return split_; }

 private:
  GosSplit split_;
};

}  // namespace nashlb::schemes
