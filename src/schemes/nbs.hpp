// NBS — cooperative Nash Bargaining extension (paper §5 "future work";
// companion APDCM'02 paper "Load Balancing in Distributed Systems: An
// Approach Using Cooperative Games").
//
// Instead of competing, the users jointly agree on the profile maximizing
// the Nash product of their utilities. With utility 1/D_j and the
// disagreement point at zero utility, the bargaining solution maximizes
// prod_j (1/D_j), i.e. minimizes G(s) = sum_j ln D_j(s) — the
// proportional-fairness allocation. G is smooth on the interior of the
// feasible region, so we solve it with projected gradient descent over
// the product of per-user simplices, with backtracking line search to
// stay inside the stability region.
#pragma once

#include <cstddef>

#include "schemes/scheme.hpp"

namespace nashlb::schemes {

/// Diagnostics of the NBS solver run.
struct NbsTrace {
  std::size_t iterations = 0;   ///< gradient steps taken
  bool converged = false;       ///< gradient-mapping norm below tolerance
  double objective = 0.0;       ///< final sum_j ln D_j
};

class NbsScheme final : public Scheme {
 public:
  explicit NbsScheme(double tolerance = 1e-8,
                     std::size_t max_iterations = 20000)
      : tolerance_(tolerance), max_iterations_(max_iterations) {}

  [[nodiscard]] std::string name() const override { return "NBS"; }

  [[nodiscard]] core::StrategyProfile solve(
      const core::Instance& inst) const override;

  /// solve() plus solver diagnostics (for tests and the A4 bench).
  [[nodiscard]] core::StrategyProfile solve_with_trace(
      const core::Instance& inst, NbsTrace& trace) const;

 private:
  double tolerance_;
  std::size_t max_iterations_;
};

}  // namespace nashlb::schemes
