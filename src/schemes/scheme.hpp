// Common interface of every static load balancing scheme (§4.2).
//
// A scheme maps a problem instance to a full strategy profile. The four
// schemes of the paper's comparison — PS, GOS, IOS and NASH — plus the
// cooperative NBS extension all implement this interface, so benches and
// examples can sweep over them uniformly.
#pragma once

#include <memory>
#include <string>

#include "core/types.hpp"

namespace nashlb::schemes {

/// Interface: produce the scheme's strategy profile for an instance.
class Scheme {
 public:
  virtual ~Scheme() = default;

  /// Short display name ("NASH", "GOS", "IOS", "PS", "NBS").
  [[nodiscard]] virtual std::string name() const = 0;

  /// Computes the scheme's allocation. The returned profile satisfies the
  /// paper's feasibility constraints (positivity, conservation, stability)
  /// for any valid instance. Throws std::invalid_argument on an invalid
  /// instance (e.g. total demand >= total capacity).
  [[nodiscard]] virtual core::StrategyProfile solve(
      const core::Instance& inst) const = 0;
};

using SchemePtr = std::shared_ptr<const Scheme>;

}  // namespace nashlb::schemes
