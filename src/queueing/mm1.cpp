#include "queueing/mm1.hpp"

#include <cmath>
#include <stdexcept>

namespace nashlb::queueing {

MM1::MM1(double lambda, double mu) : lambda_(lambda), mu_(mu) {
  if (!(mu > 0.0) || !std::isfinite(mu)) {
    throw std::invalid_argument("MM1: service rate must be finite and > 0");
  }
  if (!(lambda >= 0.0) || !(lambda < mu)) {
    throw std::invalid_argument("MM1: need 0 <= lambda < mu (stability)");
  }
}

double MM1::prob_n_in_system(unsigned n) const noexcept {
  const double rho = utilization();
  return (1.0 - rho) * std::pow(rho, static_cast<double>(n));
}

double MM1::response_time_tail(double t) const noexcept {
  if (t <= 0.0) return 1.0;
  return std::exp(-(mu_ - lambda_) * t);
}

double MM1::response_time_variance() const noexcept {
  const double t = mean_response_time();
  return t * t;
}

double mm1_marginal_delay(double lambda, double mu) {
  if (!(mu > 0.0) || !(lambda >= 0.0) || !(lambda < mu)) {
    throw std::invalid_argument("mm1_marginal_delay: need 0 <= lambda < mu");
  }
  const double slack = mu - lambda;
  return mu / (slack * slack);
}

}  // namespace nashlb::queueing
