#include "queueing/stability.hpp"

#include <stdexcept>

namespace nashlb::queueing {

bool all_stations_stable(std::span<const double> lambda,
                         std::span<const double> mu, double margin) {
  if (lambda.size() != mu.size()) {
    throw std::invalid_argument("all_stations_stable: size mismatch");
  }
  for (std::size_t i = 0; i < lambda.size(); ++i) {
    if (!(lambda[i] >= 0.0)) return false;
    if (!(lambda[i] < mu[i] - margin)) return false;
  }
  return true;
}

bool system_stable(double total_arrival_rate, std::span<const double> mu) {
  return total_arrival_rate >= 0.0 &&
         total_arrival_rate < total_capacity(mu);
}

double system_utilization(double total_arrival_rate,
                          std::span<const double> mu) {
  const double cap = total_capacity(mu);
  if (!(cap > 0.0)) {
    throw std::invalid_argument("system_utilization: zero capacity");
  }
  return total_arrival_rate / cap;
}

double total_capacity(std::span<const double> mu) {
  double cap = 0.0;
  for (double m : mu) {
    if (!(m > 0.0)) {
      throw std::invalid_argument("total_capacity: rates must be > 0");
    }
    cap += m;
  }
  return cap;
}

}  // namespace nashlb::queueing
