// Closed-form M/M/1 queueing analytics (Kleinrock, "Queueing Systems",
// vol. 1, 1975 — the paper's reference [9]).
//
// Each computer in the distributed system model is an M/M/1 queue: Poisson
// arrivals at rate lambda, exponential service at rate mu, one server,
// FCFS, infinite waiting room. These formulas are the analytic ground
// truth the discrete-event simulator is validated against, and the cost
// model of the load balancing game (F_i(s) = 1/(mu_i - lambda_i)) is the
// `mean_response_time` below.
#pragma once

namespace nashlb::queueing {

/// Analytic descriptors of one M/M/1 station.
///
/// Construction requires mu > 0 and 0 <= lambda < mu (a stable queue);
/// throws std::invalid_argument otherwise. All quantities are exact
/// steady-state values.
class MM1 {
 public:
  MM1(double lambda, double mu);

  [[nodiscard]] double arrival_rate() const noexcept { return lambda_; }
  [[nodiscard]] double service_rate() const noexcept { return mu_; }

  /// rho = lambda / mu, also the probability the server is busy.
  [[nodiscard]] double utilization() const noexcept { return lambda_ / mu_; }

  /// T = 1 / (mu - lambda): mean sojourn (response) time. This is the
  /// F_i(s) of the paper's equation (1).
  [[nodiscard]] double mean_response_time() const noexcept {
    return 1.0 / (mu_ - lambda_);
  }

  /// W = rho / (mu - lambda): mean waiting time in queue (excl. service).
  [[nodiscard]] double mean_waiting_time() const noexcept {
    return utilization() / (mu_ - lambda_);
  }

  /// L = lambda * T: mean number in system (Little's law).
  [[nodiscard]] double mean_number_in_system() const noexcept {
    return lambda_ * mean_response_time();
  }

  /// Lq = lambda * W: mean number waiting in queue.
  [[nodiscard]] double mean_queue_length() const noexcept {
    return lambda_ * mean_waiting_time();
  }

  /// P(N = n) = (1 - rho) rho^n.
  [[nodiscard]] double prob_n_in_system(unsigned n) const noexcept;

  /// P(T > t) = exp(-(mu - lambda) t): sojourn-time tail.
  [[nodiscard]] double response_time_tail(double t) const noexcept;

  /// Variance of the sojourn time: 1 / (mu - lambda)^2 (it is exponential).
  [[nodiscard]] double response_time_variance() const noexcept;

 private:
  double lambda_;
  double mu_;
};

/// Marginal response time d(lambda·T)/d(lambda) = mu / (mu - lambda)^2 —
/// the derivative that drives every water-filling optimality condition in
/// this repository (Theorem 2.1 KKT, GOS aggregate optimum).
[[nodiscard]] double mm1_marginal_delay(double lambda, double mu);

}  // namespace nashlb::queueing
