#include "queueing/mmc.hpp"

#include <cmath>
#include <stdexcept>

namespace nashlb::queueing {

double erlang_c(unsigned servers, double offered_load) {
  if (servers == 0) {
    throw std::invalid_argument("erlang_c: need at least one server");
  }
  const double a = offered_load;
  const double c = static_cast<double>(servers);
  if (!(a >= 0.0) || !(a < c)) {
    throw std::invalid_argument("erlang_c: need 0 <= offered load < c");
  }
  if (a == 0.0) return 0.0;

  // Recurrence on the Erlang-B blocking probability (numerically stable):
  // B(0, a) = 1; B(k, a) = a B(k-1, a) / (k + a B(k-1, a)).
  double b = 1.0;
  for (unsigned k = 1; k <= servers; ++k) {
    b = a * b / (static_cast<double>(k) + a * b);
  }
  // Erlang-C from Erlang-B: C = B / (1 - rho (1 - B)), rho = a / c.
  const double rho = a / c;
  return b / (1.0 - rho * (1.0 - b));
}

MMC::MMC(double lambda, double mu_core, unsigned servers)
    : lambda_(lambda), mu_(mu_core), c_(servers) {
  if (c_ == 0 || !(mu_core > 0.0) || !std::isfinite(mu_core)) {
    throw std::invalid_argument("MMC: need servers >= 1 and mu_core > 0");
  }
  if (!(lambda >= 0.0) || !(lambda < mu_core * static_cast<double>(c_))) {
    throw std::invalid_argument("MMC: need 0 <= lambda < c * mu (stability)");
  }
}

double MMC::utilization() const noexcept {
  return lambda_ / (mu_ * static_cast<double>(c_));
}

double MMC::wait_probability() const { return erlang_c(c_, lambda_ / mu_); }

double MMC::mean_waiting_time() const {
  if (lambda_ == 0.0) return 0.0;
  return wait_probability() /
         (static_cast<double>(c_) * mu_ - lambda_);
}

double MMC::mean_response_time() const {
  return mean_waiting_time() + 1.0 / mu_;
}

double MMC::mean_number_in_system() const {
  return lambda_ * mean_response_time();
}

}  // namespace nashlb::queueing
