// Stability predicates for a farm of M/M/1 computers.
//
// The game's feasibility constraint (iii) requires every computer's total
// arrival rate to stay strictly below its processing rate, and the system
// as a whole needs total demand Phi < sum_i mu_i. These checks appear in
// three places — input validation, post-solve assertions on every scheme's
// strategy, and the simulator's configuration guard — so they live here.
#pragma once

#include <span>

namespace nashlb::queueing {

/// True iff 0 <= lambda[i] < mu[i] for all i (with slack `margin`:
/// lambda[i] <= mu[i] - margin). Sizes must match.
[[nodiscard]] bool all_stations_stable(std::span<const double> lambda,
                                       std::span<const double> mu,
                                       double margin = 0.0);

/// True iff total demand is strictly less than aggregate capacity.
[[nodiscard]] bool system_stable(double total_arrival_rate,
                                 std::span<const double> mu);

/// System utilization rho = Phi / sum_i mu_i (the x-axis of Figure 4).
[[nodiscard]] double system_utilization(double total_arrival_rate,
                                        std::span<const double> mu);

/// Aggregate processing rate sum_i mu_i.
[[nodiscard]] double total_capacity(std::span<const double> mu);

}  // namespace nashlb::queueing
