// M/M/c queueing analytics (Erlang-C) — the multi-core extension of the
// computer model.
//
// The paper models each computer as M/M/1. A natural generalization —
// needed the moment a "computer" is a multi-core node — is M/M/c: Poisson
// arrivals, c parallel exponential servers of rate mu_core each, a single
// FCFS queue. The generic best-reply solver (core/convex_reply.hpp)
// consumes these formulas through the DelayModel interface, extending the
// load balancing game beyond the closed-form M/M/1 case.
#pragma once

namespace nashlb::queueing {

/// Erlang-C: probability an arriving job waits in an M/M/c queue with
/// offered load a = lambda / mu_core and c servers. Requires a < c.
[[nodiscard]] double erlang_c(unsigned servers, double offered_load);

/// Analytic descriptors of one M/M/c station.
class MMC {
 public:
  /// `servers >= 1`, `mu_core > 0`, `0 <= lambda < servers * mu_core`.
  /// Throws std::invalid_argument otherwise.
  MMC(double lambda, double mu_core, unsigned servers);

  [[nodiscard]] double arrival_rate() const noexcept { return lambda_; }
  [[nodiscard]] double core_rate() const noexcept { return mu_; }
  [[nodiscard]] unsigned servers() const noexcept { return c_; }

  /// rho = lambda / (c * mu): per-server utilization.
  [[nodiscard]] double utilization() const noexcept;

  /// P(wait) — the Erlang-C probability.
  [[nodiscard]] double wait_probability() const;

  /// Mean waiting time in queue: C(c, a) / (c mu - lambda).
  [[nodiscard]] double mean_waiting_time() const;

  /// Mean sojourn time: Wq + 1/mu. Collapses to the M/M/1 value for c=1.
  [[nodiscard]] double mean_response_time() const;

  /// Mean number in system (Little).
  [[nodiscard]] double mean_number_in_system() const;

 private:
  double lambda_;
  double mu_;
  unsigned c_;
};

}  // namespace nashlb::queueing
