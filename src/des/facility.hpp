// Service facility: the queueing-station abstraction of the DES substrate.
//
// Mirrors the "facility" concept of Sim++ [4]: a station with one or more
// servers, a queue, and optional preemptive-priority service. The paper's
// computers are the simplest configuration — a single server, FCFS,
// run-to-completion (no preemption) — but the substrate implements the full
// facility semantics so it stands alone as a simulation library:
//
//   * FCFS within a priority class, higher priority classes served first;
//   * optional preemptive-resume: an arrival whose priority strictly
//     exceeds an in-service job's may displace it; the displaced job keeps
//     its remaining service time and re-enters at the head of its class;
//   * per-facility statistics: utilization, queue length (time-weighted),
//     waiting times, completions, preemptions.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "des/simulator.hpp"
#include "obs/metrics.hpp"
#include "stats/moments.hpp"

namespace nashlb::des {

/// Called when a job's service completes, with the completion time.
using CompletionFn = std::function<void(SimTime)>;

/// Preemption behaviour of a Facility.
enum class PreemptPolicy {
  None,    ///< run-to-completion regardless of priorities (paper's model)
  Resume,  ///< preemptive-resume on strictly higher priority arrivals
};

/// A multi-server queueing station with priority scheduling.
class Facility {
 public:
  /// `servers >= 1`. The name appears in diagnostics only.
  Facility(Simulator& sim, std::string name, unsigned servers = 1,
           PreemptPolicy policy = PreemptPolicy::None);

  Facility(const Facility&) = delete;
  Facility& operator=(const Facility&) = delete;

  /// Submits a job needing `service_time > 0` units of service at the
  /// given priority (higher = more urgent). `on_complete` fires when the
  /// job's service finishes. Returns a job id unique within this facility.
  std::uint64_t request(double service_time, int priority,
                        CompletionFn on_complete);

  /// FCFS convenience overload (priority 0).
  std::uint64_t request(double service_time, CompletionFn on_complete) {
    return request(service_time, 0, std::move(on_complete));
  }

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] unsigned servers() const noexcept {
    return static_cast<unsigned>(running_.size());
  }

  /// Jobs currently waiting (not in service).
  [[nodiscard]] std::size_t queue_length() const noexcept {
    return waiting_.size();
  }
  /// Servers currently serving a job.
  [[nodiscard]] unsigned busy_servers() const noexcept { return busy_; }

  [[nodiscard]] std::uint64_t completed() const noexcept { return completed_; }
  [[nodiscard]] std::uint64_t preemptions() const noexcept {
    return preemptions_;
  }

  /// Time-average utilization (busy server-fraction) up to `now`.
  [[nodiscard]] double utilization(SimTime now) const noexcept;

  /// Time-average number waiting up to `now`.
  [[nodiscard]] double mean_queue_length(SimTime now) const noexcept;

  /// Per-job waiting time statistics (request to first service start).
  [[nodiscard]] const stats::RunningStats& waiting_times() const noexcept {
    return wait_stats_;
  }

  /// Per-job sojourn (response) time distribution: request to service
  /// completion, one observation per completed job. For the paper's
  /// single-server FCFS facility this is the M/M/1 response time whose
  /// quantiles bench_sim_validation checks against -ln(1-q)/(mu-lambda).
  /// Empty when the obs layer is compiled out.
  [[nodiscard]] const obs::Histogram& sojourn_histogram() const noexcept {
    return sojourn_hist_;
  }

  /// Publishes this facility's counters and accumulated times into `reg`
  /// under `<name>.*`: requests, completed, preemptions (counters);
  /// busy_time (timer: busy server-seconds over [0, now], one observation
  /// per completed job), waiting (timer: total queueing delay over all
  /// jobs that ever started service), and sojourn (histogram: per-job
  /// response times). A no-op when the obs layer is compiled out.
  void publish_metrics(obs::Registry& reg, SimTime now) const;

 private:
  struct Job {
    std::uint64_t id = 0;
    int priority = 0;
    std::uint64_t seq = 0;          // admission order within the facility
    double remaining = 0.0;          // remaining service requirement
    SimTime submitted = 0.0;
    bool ever_started = false;
    CompletionFn on_complete;
  };

  struct Running {
    std::optional<Job> job;
    EventHandle completion;
    SimTime started = 0.0;
  };

  // Ordering of the waiting queue: higher priority first, then FIFO.
  struct QueueKey {
    int priority;
    std::uint64_t seq;
    bool operator<(const QueueKey& o) const noexcept {
      if (priority != o.priority) return priority > o.priority;
      return seq < o.seq;
    }
  };

  void start_service(unsigned server, Job job);
  void finish_service(unsigned server, SimTime t);
  void try_dispatch();
  [[nodiscard]] std::optional<unsigned> idle_server() const noexcept;
  [[nodiscard]] std::optional<unsigned> preemptable_server(
      int priority) const noexcept;
  void note_busy_change();
  void note_queue_change();

  Simulator& sim_;
  std::string name_;
  PreemptPolicy policy_;
  std::map<QueueKey, Job> waiting_;
  std::vector<Running> running_;
  unsigned busy_ = 0;
  std::uint64_t next_id_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t preemptions_ = 0;
  stats::TimeWeighted busy_tw_;
  stats::TimeWeighted queue_tw_;
  stats::RunningStats wait_stats_;
  obs::Histogram sojourn_hist_;
};

}  // namespace nashlb::des
