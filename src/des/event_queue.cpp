#include "des/event_queue.hpp"

#include <stdexcept>

namespace nashlb::des {

EventHandle EventQueue::push(SimTime time, EventFn fn) {
  auto rec = std::make_shared<EventRecord>();
  rec->time = time;
  rec->seq = next_seq_++;
  rec->fn = std::move(fn);
  rec->live_counter = live_;
  heap_.push_back(rec);
  sift_up(heap_.size() - 1);
  ++*live_;
  return EventHandle{rec};
}

SimTime EventQueue::next_time() const {
  const_cast<EventQueue*>(this)->drop_cancelled_top();
  if (heap_.empty()) {
    throw std::logic_error("EventQueue::next_time: queue is empty");
  }
  return heap_.front()->time;
}

std::shared_ptr<EventRecord> EventQueue::pop() {
  drop_cancelled_top();
  if (heap_.empty()) {
    throw std::logic_error("EventQueue::pop: queue is empty");
  }
  auto top = heap_.front();
  remove_top();
  top->fired = true;
  --*live_;
  return top;
}

void EventQueue::clear() noexcept {
  for (auto& rec : heap_) {
    if (!rec->cancelled && !rec->fired) rec->cancelled = true;
  }
  heap_.clear();
  *live_ = 0;
}

bool EventQueue::before(const EventRecord& a, const EventRecord& b) noexcept {
  // Strict weak ordering: earlier time first; FIFO among simultaneous
  // events (deterministic replay depends on this tie-break).
  if (a.time != b.time) return a.time < b.time;
  return a.seq < b.seq;
}

void EventQueue::drop_cancelled_top() {
  while (!heap_.empty() && heap_.front()->cancelled) {
    remove_top();
  }
}

void EventQueue::remove_top() {
  heap_.front() = std::move(heap_.back());
  heap_.pop_back();
  if (!heap_.empty()) sift_down(0);
}

void EventQueue::sift_up(std::size_t i) {
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (!before(*heap_[i], *heap_[parent])) break;
    std::swap(heap_[i], heap_[parent]);
    i = parent;
  }
}

void EventQueue::sift_down(std::size_t i) {
  const std::size_t n = heap_.size();
  for (;;) {
    const std::size_t left = 2 * i + 1;
    const std::size_t right = left + 1;
    std::size_t smallest = i;
    if (left < n && before(*heap_[left], *heap_[smallest])) smallest = left;
    if (right < n && before(*heap_[right], *heap_[smallest])) {
      smallest = right;
    }
    if (smallest == i) return;
    std::swap(heap_[i], heap_[smallest]);
    i = smallest;
  }
}

bool EventHandle::cancel() noexcept {
  auto rec = rec_.lock();
  if (!rec || rec->cancelled || rec->fired) return false;
  rec->cancelled = true;
  rec->fn = nullptr;  // release any captured resources promptly
  if (rec->live_counter) --*rec->live_counter;
  return true;
}

bool EventHandle::pending() const noexcept {
  auto rec = rec_.lock();
  return rec && !rec->cancelled && !rec->fired;
}

}  // namespace nashlb::des
