// Discrete-event simulation kernel.
//
// A clean-room functional substitute for the event-scheduling core of
// Sim++ (Cubert & Fishwick, 1995 — the paper's reference [4]), which is
// what §4.1 uses: schedule events, advance a virtual clock, run to a time
// horizon or event budget. Single-threaded by design; experiment-level
// parallelism runs independent Simulator instances on separate threads.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

#include "des/event_queue.hpp"
#include "obs/metrics.hpp"

namespace nashlb::des {

/// Why a call to run()/run_until() returned.
enum class StopReason {
  Exhausted,    ///< no pending events remain
  TimeLimit,    ///< the clock reached the requested horizon
  EventLimit,   ///< the event budget was spent
  Stopped,      ///< an event called Simulator::stop()
};

/// The simulation kernel: a clock plus the pending-event calendar.
class Simulator {
 public:
  Simulator() = default;

  // The kernel hands out `this` to facilities/processes; moving it would
  // silently dangle them.
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulation time.
  [[nodiscard]] SimTime now() const noexcept { return now_; }

  /// Schedules `fn` to fire `delay >= 0` time units from now.
  /// Throws std::invalid_argument on negative or non-finite delay.
  EventHandle schedule(SimTime delay, EventFn fn);

  /// Schedules `fn` at absolute time `t >= now()`.
  EventHandle schedule_at(SimTime t, EventFn fn);

  /// Runs until the calendar is empty, an event calls stop(), or the
  /// event budget (0 = unlimited) is exhausted.
  StopReason run(std::uint64_t max_events = 0);

  /// Runs until the clock would pass `horizon`. Events at exactly
  /// `horizon` still fire; the clock never exceeds it.
  StopReason run_until(SimTime horizon, std::uint64_t max_events = 0);

  /// Executes exactly one event if any is pending; returns whether it did.
  bool step();

  /// Requests the innermost run()/run_until() to return after the current
  /// event completes.
  void stop() noexcept { stop_requested_ = true; }

  /// Total events executed since construction.
  [[nodiscard]] std::uint64_t events_executed() const noexcept {
    return events_executed_;
  }

  /// Total events ever scheduled (including cancelled ones).
  [[nodiscard]] std::uint64_t events_scheduled() const noexcept {
    return events_scheduled_;
  }

  /// Publishes the kernel's counters into `reg` under `<prefix>.*`:
  /// events_scheduled, events_executed, pending_events. A no-op when the
  /// obs layer is compiled out.
  void publish_metrics(obs::Registry& reg,
                       const std::string& prefix = "des") const;

  /// Number of live pending events.
  [[nodiscard]] std::size_t pending_events() const noexcept {
    return queue_.size();
  }

  /// Drops all pending events and (optionally) resets the clock. Used
  /// between replications when reusing a simulator instance.
  void reset(SimTime t0 = 0.0) noexcept;

 private:
  void dispatch(const std::shared_ptr<EventRecord>& rec);

  EventQueue queue_;
  SimTime now_ = 0.0;
  std::uint64_t events_executed_ = 0;
  std::uint64_t events_scheduled_ = 0;
  bool stop_requested_ = false;
};

}  // namespace nashlb::des
