#include "des/simulator.hpp"

#include <cmath>

namespace nashlb::des {

EventHandle Simulator::schedule(SimTime delay, EventFn fn) {
  if (!(delay >= 0.0) || !std::isfinite(delay)) {
    throw std::invalid_argument(
        "Simulator::schedule: delay must be finite and >= 0");
  }
  ++events_scheduled_;
  return queue_.push(now_ + delay, std::move(fn));
}

EventHandle Simulator::schedule_at(SimTime t, EventFn fn) {
  if (!(t >= now_) || !std::isfinite(t)) {
    throw std::invalid_argument(
        "Simulator::schedule_at: time must be finite and >= now()");
  }
  ++events_scheduled_;
  return queue_.push(t, std::move(fn));
}

StopReason Simulator::run(std::uint64_t max_events) {
  stop_requested_ = false;
  std::uint64_t executed = 0;
  while (!queue_.empty()) {
    if (stop_requested_) return StopReason::Stopped;
    if (max_events != 0 && executed >= max_events) {
      return StopReason::EventLimit;
    }
    dispatch(queue_.pop());
    ++executed;
  }
  return stop_requested_ ? StopReason::Stopped : StopReason::Exhausted;
}

StopReason Simulator::run_until(SimTime horizon, std::uint64_t max_events) {
  if (!(horizon >= now_)) {
    throw std::invalid_argument(
        "Simulator::run_until: horizon must be >= now()");
  }
  stop_requested_ = false;
  std::uint64_t executed = 0;
  while (!queue_.empty()) {
    if (stop_requested_) return StopReason::Stopped;
    if (max_events != 0 && executed >= max_events) {
      return StopReason::EventLimit;
    }
    if (queue_.next_time() > horizon) {
      now_ = horizon;
      return StopReason::TimeLimit;
    }
    dispatch(queue_.pop());
    ++executed;
  }
  now_ = horizon;
  return stop_requested_ ? StopReason::Stopped : StopReason::Exhausted;
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  dispatch(queue_.pop());
  return true;
}

void Simulator::reset(SimTime t0) noexcept {
  queue_.clear();
  now_ = t0;
  stop_requested_ = false;
}

void Simulator::dispatch(const std::shared_ptr<EventRecord>& rec) {
  now_ = rec->time;
  ++events_executed_;
  if (rec->fn) rec->fn(now_);
}

void Simulator::publish_metrics(obs::Registry& reg,
                                const std::string& prefix) const {
  reg.counter(prefix + ".events_scheduled").add(events_scheduled_);
  reg.counter(prefix + ".events_executed").add(events_executed_);
  reg.counter(prefix + ".pending_events").add(queue_.size());
}

}  // namespace nashlb::des
