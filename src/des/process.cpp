#include "des/process.hpp"

namespace nashlb::des {

void spawn(Simulator& sim, Task task) {
  // Transfer frame ownership to the event closure; from the first resume
  // on, the coroutine owns itself (final_suspend = suspend_never frees
  // the frame when the body finishes).
  auto handle = std::exchange(task.handle_, nullptr);
  sim.schedule(0.0, [handle](SimTime) { handle.resume(); });
}

void DelayAwaiter::await_suspend(std::coroutine_handle<> handle) {
  sim_.schedule(dt_, [this, handle](SimTime t) {
    resume_time_ = t;
    handle.resume();
  });
}

void ServiceAwaiter::await_suspend(std::coroutine_handle<> handle) {
  facility_.request(service_time_, priority_, [this, handle](SimTime t) {
    completion_time_ = t;
    handle.resume();
  });
}

}  // namespace nashlb::des
