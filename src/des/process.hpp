// Process-interaction worldview for the DES engine (C++20 coroutines).
//
// Sim++ [4] exposes simulations as *processes* — sequential activities
// that hold state across waits — in addition to raw event scheduling.
// This module provides the same worldview on top of the event kernel:
//
//   des::Task customer(des::Simulator& sim, des::Facility& cpu) {
//     co_await des::delay(sim, 1.5);            // think time
//     co_await des::service(cpu, 0.3);          // queue + run on the CPU
//     co_await des::delay(sim, 0.5);
//   }
//   des::spawn(sim, customer(sim, cpu));
//
// Semantics:
//   * a spawned Task starts at the current simulation time (as a
//     zero-delay event) and runs until its first co_await;
//   * `delay(sim, dt)` suspends the process for dt simulated seconds;
//   * `service(facility, t, prio)` submits a job to the facility and
//     resumes the process when the job's service completes (the awaited
//     value is the completion time);
//   * tasks are detached: the coroutine frame frees itself when the body
//     finishes. An exception escaping a process body terminates the
//     program (there is no one to rethrow to) — validate inputs before
//     suspending.
//
// Single-threaded like the rest of the kernel; no synchronization needed.
#pragma once

#include <coroutine>
#include <exception>
#include <utility>

#include "des/facility.hpp"
#include "des/simulator.hpp"

namespace nashlb::des {

/// A detached simulation process. Returned by any coroutine using the
/// awaitables below; hand it to spawn() to schedule it.
class Task {
 public:
  struct promise_type {
    Task get_return_object() {
      return Task{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    // Lazily started: spawn() schedules the first resume.
    std::suspend_always initial_suspend() noexcept { return {}; }
    // Self-destruct on completion (detached semantics).
    std::suspend_never final_suspend() noexcept { return {}; }
    void return_void() noexcept {}
    [[noreturn]] void unhandled_exception() { std::terminate(); }
  };

  Task(Task&& other) noexcept
      : handle_(std::exchange(other.handle_, nullptr)) {}
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  Task& operator=(Task&&) = delete;

  /// Destroys a never-spawned task's frame; spawned tasks own themselves.
  ~Task() {
    if (handle_) handle_.destroy();
  }

 private:
  friend void spawn(Simulator& sim, Task task);
  explicit Task(std::coroutine_handle<promise_type> handle)
      : handle_(handle) {}
  std::coroutine_handle<promise_type> handle_;
};

/// Schedules `task` to start at the current simulation time. The frame
/// detaches: it frees itself when the process body returns.
void spawn(Simulator& sim, Task task);

/// Awaitable: suspend the process for `dt >= 0` simulated seconds.
/// The await expression yields the resume time.
class DelayAwaiter {
 public:
  DelayAwaiter(Simulator& sim, SimTime dt) : sim_(sim), dt_(dt) {}
  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<> handle);
  SimTime await_resume() const noexcept { return resume_time_; }

 private:
  Simulator& sim_;
  SimTime dt_;
  SimTime resume_time_ = 0.0;
};

[[nodiscard]] inline DelayAwaiter delay(Simulator& sim, SimTime dt) {
  return {sim, dt};
}

/// Awaitable: submit a job needing `service_time` at `priority` to the
/// facility; resume when its service completes. Yields the completion
/// time.
class ServiceAwaiter {
 public:
  ServiceAwaiter(Facility& facility, double service_time, int priority = 0)
      : facility_(facility), service_time_(service_time),
        priority_(priority) {}
  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<> handle);
  SimTime await_resume() const noexcept { return completion_time_; }

 private:
  Facility& facility_;
  double service_time_;
  int priority_;
  SimTime completion_time_ = 0.0;
};

[[nodiscard]] inline ServiceAwaiter service(Facility& facility,
                                            double service_time,
                                            int priority = 0) {
  return {facility, service_time, priority};
}

}  // namespace nashlb::des
