#include "des/facility.hpp"

#include <cmath>
#include <stdexcept>

namespace nashlb::des {

Facility::Facility(Simulator& sim, std::string name, unsigned servers,
                   PreemptPolicy policy)
    : sim_(sim), name_(std::move(name)), policy_(policy) {
  if (servers == 0) {
    throw std::invalid_argument("Facility: need at least one server");
  }
  running_.resize(servers);
}

std::uint64_t Facility::request(double service_time, int priority,
                                CompletionFn on_complete) {
  if (!(service_time > 0.0) || !std::isfinite(service_time)) {
    throw std::invalid_argument(
        "Facility::request: service_time must be finite and > 0");
  }
  Job job;
  job.id = next_id_++;
  job.priority = priority;
  job.seq = next_seq_++;
  job.remaining = service_time;
  job.submitted = sim_.now();
  job.on_complete = std::move(on_complete);
  const std::uint64_t id = job.id;

  if (auto server = idle_server()) {
    start_service(*server, std::move(job));
    return id;
  }
  if (policy_ == PreemptPolicy::Resume) {
    if (auto server = preemptable_server(priority)) {
      Running& slot = running_[*server];
      Job displaced = std::move(*slot.job);
      // Preemptive-resume: bank the service already received.
      displaced.remaining -= sim_.now() - slot.started;
      if (displaced.remaining < 0.0) displaced.remaining = 0.0;
      slot.completion.cancel();
      slot.job.reset();
      --busy_;
      ++preemptions_;
      note_busy_change();
      // Original seq keeps the displaced job ahead of later arrivals of
      // its class (head-of-class resume).
      waiting_.emplace(QueueKey{displaced.priority, displaced.seq},
                       std::move(displaced));
      note_queue_change();
      start_service(*server, std::move(job));
      return id;
    }
  }
  waiting_.emplace(QueueKey{job.priority, job.seq}, std::move(job));
  note_queue_change();
  return id;
}

void Facility::start_service(unsigned server, Job job) {
  Running& slot = running_[server];
  if (slot.job) {
    throw std::logic_error("Facility: starting service on a busy server");
  }
  if (!job.ever_started) {
    wait_stats_.add(sim_.now() - job.submitted);
    job.ever_started = true;
  }
  slot.started = sim_.now();
  const double quantum = job.remaining;
  slot.job = std::move(job);
  ++busy_;
  note_busy_change();
  slot.completion = sim_.schedule(
      quantum, [this, server](SimTime t) { finish_service(server, t); });
}

void Facility::finish_service(unsigned server, SimTime t) {
  Running& slot = running_[server];
  if (!slot.job) {
    throw std::logic_error("Facility: completion on an idle server");
  }
  Job job = std::move(*slot.job);
  slot.job.reset();
  --busy_;
  ++completed_;
  sojourn_hist_.record(t - job.submitted);
  note_busy_change();
  // Dispatch the next waiting job before running the completion callback:
  // the callback may submit new work and must observe a settled facility.
  try_dispatch();
  if (job.on_complete) job.on_complete(t);
}

void Facility::try_dispatch() {
  while (!waiting_.empty()) {
    const auto server = idle_server();
    if (!server) return;
    auto first = waiting_.begin();
    Job job = std::move(first->second);
    waiting_.erase(first);
    note_queue_change();
    start_service(*server, std::move(job));
  }
}

std::optional<unsigned> Facility::idle_server() const noexcept {
  for (unsigned i = 0; i < running_.size(); ++i) {
    if (!running_[i].job) return i;
  }
  return std::nullopt;
}

std::optional<unsigned> Facility::preemptable_server(
    int priority) const noexcept {
  // Choose the busy server with the lowest priority job; break ties toward
  // the most recently admitted job (smallest banked service investment on
  // average). Only strictly lower priority work may be displaced.
  std::optional<unsigned> victim;
  for (unsigned i = 0; i < running_.size(); ++i) {
    const auto& job = running_[i].job;
    if (!job || job->priority >= priority) continue;
    if (!victim) {
      victim = i;
      continue;
    }
    const auto& best = running_[*victim].job;
    if (job->priority < best->priority ||
        (job->priority == best->priority && job->seq > best->seq)) {
      victim = i;
    }
  }
  return victim;
}

void Facility::note_busy_change() {
  busy_tw_.update(sim_.now(), static_cast<double>(busy_));
}

void Facility::note_queue_change() {
  queue_tw_.update(sim_.now(), static_cast<double>(waiting_.size()));
}

double Facility::utilization(SimTime now) const noexcept {
  const double avg_busy = busy_tw_.average(now);
  return avg_busy / static_cast<double>(running_.size());
}

double Facility::mean_queue_length(SimTime now) const noexcept {
  return queue_tw_.average(now);
}

void Facility::publish_metrics(obs::Registry& reg, SimTime now) const {
  reg.counter(name_ + ".requests").add(next_id_);
  reg.counter(name_ + ".completed").add(completed_);
  reg.counter(name_ + ".preemptions").add(preemptions_);
  reg.timer(name_ + ".busy_time").add_batch(busy_tw_.average(now) * now,
                                            completed_);
  reg.timer(name_ + ".waiting")
      .add_batch(wait_stats_.sum(), wait_stats_.count(), wait_stats_.min(),
                 wait_stats_.max());
  reg.histogram(name_ + ".sojourn").merge(sojourn_hist_);
}

}  // namespace nashlb::des
