// Pending-event calendar for the discrete-event simulator.
//
// A binary min-heap keyed on (time, insertion sequence number). The
// sequence tie-break makes simultaneous events fire in scheduling order,
// which keeps every simulation deterministic given a seed — a property the
// replication methodology of §4.1 and all regression tests rely on.
//
// Cancellation is lazy: a cancelled record stays in the heap (O(1) cancel)
// and is skipped when it surfaces. The simulator's workloads cancel rarely
// (preemption only), so lazy deletion beats a tombstone-free design.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

namespace nashlb::des {

/// Simulation clock time, in model seconds.
using SimTime = double;

/// An event body. Receives the firing time.
using EventFn = std::function<void(SimTime)>;

/// Internal event record; exposed because EventHandle observes it.
struct EventRecord {
  SimTime time = 0.0;
  std::uint64_t seq = 0;
  bool cancelled = false;
  bool fired = false;
  EventFn fn;
  // Live-event counter shared with the owning queue, so cancellation via a
  // handle keeps the queue's size() exact even after the queue dies.
  std::shared_ptr<std::uint64_t> live_counter;
};

/// A cancellable reference to a scheduled event. Copyable; holding one
/// never extends the event's lifetime (weak reference).
class EventHandle {
 public:
  EventHandle() = default;
  explicit EventHandle(std::weak_ptr<EventRecord> rec) : rec_(std::move(rec)) {}

  /// Cancels the event if it has not fired; returns true if this call
  /// performed the cancellation.
  bool cancel() noexcept;

  /// True while the event is scheduled and not cancelled/fired.
  [[nodiscard]] bool pending() const noexcept;

 private:
  std::weak_ptr<EventRecord> rec_;
};

/// The calendar itself. Not thread-safe: a simulation is a single logical
/// timeline (parallel experiments run whole simulators per thread instead).
class EventQueue {
 public:
  EventQueue() : live_(std::make_shared<std::uint64_t>(0)) {}

  /// Schedules `fn` at absolute time `time`; returns a cancellable handle.
  EventHandle push(SimTime time, EventFn fn);

  /// True when no live (non-cancelled) events remain.
  [[nodiscard]] bool empty() const noexcept { return *live_ == 0; }

  /// Number of live events.
  [[nodiscard]] std::size_t size() const noexcept {
    return static_cast<std::size_t>(*live_);
  }

  /// Time of the next live event; throws std::logic_error when empty.
  [[nodiscard]] SimTime next_time() const;

  /// Removes and returns the next live event record (time order, FIFO on
  /// ties); throws std::logic_error when empty. Marks the record fired.
  std::shared_ptr<EventRecord> pop();

  /// Discards all pending events.
  void clear() noexcept;

 private:
  static bool before(const EventRecord& a, const EventRecord& b) noexcept;
  void drop_cancelled_top();
  void remove_top();
  void sift_up(std::size_t i);
  void sift_down(std::size_t i);

  std::vector<std::shared_ptr<EventRecord>> heap_;
  std::uint64_t next_seq_ = 0;
  std::shared_ptr<std::uint64_t> live_;
};

}  // namespace nashlb::des
