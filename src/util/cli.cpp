#include "util/cli.hpp"

#include <cstdlib>
#include <stdexcept>

namespace nashlb::util {
namespace {

bool looks_like_option(const std::string& s) {
  return s.size() > 2 && s[0] == '-' && s[1] == '-';
}

}  // namespace

Args::Args(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (!looks_like_option(arg)) {
      positional_.push_back(arg);
      continue;
    }
    const std::string body = arg.substr(2);
    const auto eq = body.find('=');
    if (eq != std::string::npos) {
      options_[body.substr(0, eq)] = body.substr(eq + 1);
    } else if (i + 1 < argc && !looks_like_option(argv[i + 1])) {
      options_[body] = argv[++i];
    } else {
      options_[body] = "";  // bare flag
    }
  }
}

bool Args::has(const std::string& name) const {
  return options_.count(name) != 0;
}

std::string Args::get(const std::string& name,
                      const std::string& fallback) const {
  const auto it = options_.find(name);
  return it == options_.end() ? fallback : it->second;
}

long Args::get_int(const std::string& name, long fallback) const {
  const auto it = options_.find(name);
  if (it == options_.end()) return fallback;
  char* end = nullptr;
  const long v = std::strtol(it->second.c_str(), &end, 10);
  if (end == it->second.c_str() || *end != '\0') {
    throw std::invalid_argument("--" + name + ": not an integer: '" +
                                it->second + "'");
  }
  return v;
}

double Args::get_double(const std::string& name, double fallback) const {
  const auto it = options_.find(name);
  if (it == options_.end()) return fallback;
  char* end = nullptr;
  const double v = std::strtod(it->second.c_str(), &end);
  if (end == it->second.c_str() || *end != '\0') {
    throw std::invalid_argument("--" + name + ": not a number: '" +
                                it->second + "'");
  }
  return v;
}

bool Args::get_bool(const std::string& name, bool fallback) const {
  const auto it = options_.find(name);
  if (it == options_.end()) return fallback;
  const std::string& v = it->second;
  if (v.empty() || v == "1" || v == "true" || v == "yes" || v == "on") {
    return true;
  }
  if (v == "0" || v == "false" || v == "no" || v == "off") return false;
  throw std::invalid_argument("--" + name + ": not a boolean: '" + v + "'");
}

}  // namespace nashlb::util
