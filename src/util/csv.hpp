// Minimal CSV emission for machine-readable experiment output.
//
// Every bench binary can mirror its human-readable table into a CSV file so
// downstream plotting (gnuplot/matplotlib) can regenerate the paper's
// figures without re-running the sweep.
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace nashlb::util {

/// Streams rows into a CSV file. Cells containing commas, quotes or
/// newlines are quoted per RFC 4180.
class CsvWriter {
 public:
  /// Opens `path` for writing and emits the header row.
  /// Throws std::runtime_error if the file cannot be opened.
  CsvWriter(const std::string& path, const std::vector<std::string>& header);

  /// Appends one data row; throws std::invalid_argument on arity mismatch.
  void add_row(const std::vector<std::string>& cells);

  /// Number of data rows written so far.
  [[nodiscard]] std::size_t row_count() const { return rows_written_; }

  /// Escapes a single cell per RFC 4180 (exposed for testing).
  [[nodiscard]] static std::string escape(const std::string& cell);

 private:
  void write_row(const std::vector<std::string>& cells);

  std::ofstream out_;
  std::size_t arity_;
  std::size_t rows_written_ = 0;
};

}  // namespace nashlb::util
