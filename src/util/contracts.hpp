// Paper-invariant contract layer.
//
// The model of Grosu & Chronopoulos rests on explicit preconditions that
// the incremental solver core (core/load_state, the *_into fast paths)
// must preserve while mutating shared state in place:
//
//   * simplex membership   — s_ji >= 0 and sum_i s_ji = 1 per user,
//   * stability            — Phi < sum_i mu_i (assumption A2) and
//                            mu^j_i > 0 on every allocation's support,
//   * the Thm 2.1 cut rule — computers are active iff sqrt(c_i) > t
//                            under the decreasing-capacity order,
//   * load consistency     — the carried lambda tracks a from-scratch
//                            rebuild of the profile's loads.
//
// A silent break of any of these produces a plausible-but-wrong
// "equilibrium" rather than a crash, so the hot paths assert them with
// the macros below. Contracts are compiled to no-ops unless the build
// defines NASHLB_CHECK_ENABLED=1 (CMake: -DNASHLB_CHECK=ON), keeping the
// benchmarked configuration byte-for-byte free of checking overhead —
// docs/PERFORMANCE.md numbers are NASHLB_CHECK=OFF by definition.
//
// Naming follows the usual design-by-contract split:
//   NASHLB_EXPECT(cond, fmt, ...)    — precondition on entry,
//   NASHLB_ENSURE(cond, fmt, ...)    — postcondition on exit,
//   NASHLB_INVARIANT(cond, fmt, ...) — relation that must hold throughout.
// All three behave identically at runtime: on violation they print
// `NASHLB_<KIND> violated at file:line: (expr) message` to stderr and
// abort(). The printf-style message is mandatory — a contract that can
// fire must say which quantity went out of range and by how much.
// abort() (not exit/throw) keeps the failure ASan/UBSan-friendly: the
// sanitizer runtime flushes its report and the core dump points at the
// violating frame.
//
// Checked-build-only scaffolding (e.g. a scratch rebuild to diff
// against) goes under `#if NASHLB_CHECK_ENABLED` so disabled builds
// don't pay for it and -Werror doesn't flag unused locals.
#pragma once

#ifndef NASHLB_CHECK_ENABLED
#define NASHLB_CHECK_ENABLED 0
#endif

#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace nashlb::util {

/// True in builds with active contracts (-DNASHLB_CHECK=ON).
inline constexpr bool kCheckEnabled = NASHLB_CHECK_ENABLED != 0;

/// Last-words hook, invoked by contract_fail after the violation report
/// is printed and flushed, immediately before abort(). The obs event
/// journal installs its flight-recorder dump here (obs::Journal::
/// install_crash_handler) so a contract breach carries the last N solver
/// events out with it. The hook runs on the failure path: it must be
/// noexcept and must not allocate. Null means "no hook".
using ContractFailureHook = void (*)() noexcept;

/// The single process-wide hook slot (assign to install, nullptr to
/// clear). A function-local static keeps util header-only and avoids any
/// static-init ordering with the instruments that install into it.
inline ContractFailureHook& contract_failure_hook() noexcept {
  static ContractFailureHook hook = nullptr;
  return hook;
}

/// Prints the violation report and aborts. Formats into a fixed stack
/// buffer — no allocation on the failure path, so a contract can fire
/// safely from out-of-memory or ASan-poisoned contexts.
#if defined(__GNUC__) || defined(__clang__)
__attribute__((format(printf, 5, 6)))
#endif
[[noreturn]] inline void
contract_fail(const char* kind, const char* expr, const char* file, int line,
              const char* fmt, ...) noexcept {
  char message[512];
  std::va_list args;
  va_start(args, fmt);
  std::vsnprintf(message, sizeof message, fmt, args);
  va_end(args);
  std::fprintf(stderr, "NASHLB_%s violated at %s:%d: (%s) %s\n", kind, file,
               line, expr, message);
  std::fflush(stderr);
  if (ContractFailureHook hook = contract_failure_hook()) {
    hook();
    std::fflush(stderr);
  }
  std::abort();
}

}  // namespace nashlb::util

#if NASHLB_CHECK_ENABLED
#define NASHLB_CONTRACT_IMPL_(kind, cond, ...)                          \
  do {                                                                  \
    if (!(cond)) {                                                      \
      ::nashlb::util::contract_fail(kind, #cond, __FILE__, __LINE__,    \
                                    __VA_ARGS__);                       \
    }                                                                   \
  } while (false)
#else
#define NASHLB_CONTRACT_IMPL_(kind, cond, ...) static_cast<void>(0)
#endif

#define NASHLB_EXPECT(cond, ...) NASHLB_CONTRACT_IMPL_("EXPECT", cond, __VA_ARGS__)
#define NASHLB_ENSURE(cond, ...) NASHLB_CONTRACT_IMPL_("ENSURE", cond, __VA_ARGS__)
#define NASHLB_INVARIANT(cond, ...) \
  NASHLB_CONTRACT_IMPL_("INVARIANT", cond, __VA_ARGS__)
