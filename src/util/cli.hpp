// Tiny command-line option parser shared by examples and benches.
//
// Supports `--key=value` and `--key value` long options plus bare `--flag`
// booleans; anything else is a positional argument. Deliberately small:
// the examples need a handful of numeric knobs, not a framework.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

namespace nashlb::util {

/// Parsed command line: option map + positionals, with typed accessors.
class Args {
 public:
  /// Parses argv[1..argc). Unrecognized syntax never throws at parse time;
  /// typed accessors throw std::invalid_argument on malformed values.
  Args(int argc, const char* const* argv);

  /// True if `--name` was present (with or without a value).
  [[nodiscard]] bool has(const std::string& name) const;

  /// Value of `--name`, or `fallback` when absent.
  [[nodiscard]] std::string get(const std::string& name,
                                const std::string& fallback = "") const;

  /// Numeric accessors; throw std::invalid_argument if the value does not
  /// parse completely as the requested type.
  [[nodiscard]] long get_int(const std::string& name, long fallback) const;
  [[nodiscard]] double get_double(const std::string& name,
                                  double fallback) const;
  [[nodiscard]] bool get_bool(const std::string& name, bool fallback) const;

  /// Positional arguments in order of appearance.
  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }

 private:
  std::map<std::string, std::string> options_;
  std::vector<std::string> positional_;
};

}  // namespace nashlb::util
