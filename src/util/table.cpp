#include "util/table.hpp"

#include <cstdio>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace nashlb::util {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)), aligns_(headers_.size(), Align::Right) {
  if (headers_.empty()) {
    throw std::invalid_argument("Table: need at least one column");
  }
}

void Table::set_align(std::size_t col, Align align) {
  if (col >= aligns_.size()) {
    throw std::out_of_range("Table::set_align: column out of range");
  }
  aligns_[col] = align;
}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("Table::add_row: arity mismatch");
  }
  rows_.push_back(std::move(cells));
}

std::string Table::str() const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    width[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }

  std::ostringstream out;
  auto emit_cell = [&](const std::string& cell, std::size_t c) {
    const std::size_t pad = width[c] - cell.size();
    if (aligns_[c] == Align::Right) {
      out << std::string(pad, ' ') << cell;
    } else {
      out << cell << std::string(pad, ' ');
    }
    if (c + 1 < width.size()) out << "  ";
  };

  for (std::size_t c = 0; c < headers_.size(); ++c) emit_cell(headers_[c], c);
  out << '\n';
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    out << std::string(width[c], '-');
    if (c + 1 < width.size()) out << "  ";
  }
  out << '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) emit_cell(row[c], c);
    out << '\n';
  }
  return out.str();
}

void Table::print(std::ostream& os) const { os << str(); }

std::string format_fixed(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", digits, v);
  return buf;
}

std::string format_sig(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*g", digits, v);
  return buf;
}

std::string format_percent(double ratio, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f%%", digits, ratio * 100.0);
  return buf;
}

}  // namespace nashlb::util
