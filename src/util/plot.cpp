#include "util/plot.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <stdexcept>

namespace nashlb::util {

std::string render_plot(const std::vector<Series>& series,
                        const PlotOptions& options) {
  if (options.width < 2 || options.height < 2) {
    throw std::invalid_argument("render_plot: grid too small");
  }
  // Gather the plottable range.
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  std::size_t max_len = 0;
  for (const Series& s : series) {
    max_len = std::max(max_len, s.values.size());
    for (double v : s.values) {
      if (options.log_y && !(v > 0.0)) continue;
      if (!std::isfinite(v)) continue;
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
  }
  if (!(lo <= hi) || max_len == 0) {
    throw std::invalid_argument("render_plot: nothing to plot");
  }
  if (lo == hi) {  // flat series: open a window around it
    lo = options.log_y ? lo * 0.5 : lo - 1.0;
    hi = options.log_y ? hi * 2.0 : hi + 1.0;
  }
  const double y_lo = options.log_y ? std::log10(lo) : lo;
  const double y_hi = options.log_y ? std::log10(hi) : hi;

  std::vector<std::string> grid(options.height,
                                std::string(options.width, ' '));
  auto to_row = [&](double v) -> long {
    const double y = options.log_y ? std::log10(v) : v;
    const double frac = (y - y_lo) / (y_hi - y_lo);
    return static_cast<long>(std::lround(
        (1.0 - frac) * static_cast<double>(options.height - 1)));
  };
  auto to_col = [&](std::size_t idx) -> std::size_t {
    if (max_len == 1) return 0;
    return idx * (options.width - 1) / (max_len - 1);
  };

  for (const Series& s : series) {
    const char marker = s.label.empty() ? '*' : s.label.front();
    for (std::size_t k = 0; k < s.values.size(); ++k) {
      const double v = s.values[k];
      if (!std::isfinite(v)) continue;
      if (options.log_y && !(v > 0.0)) continue;
      const long row = to_row(v);
      if (row < 0 || row >= static_cast<long>(options.height)) continue;
      char& cell = grid[static_cast<std::size_t>(row)][to_col(k)];
      cell = (cell == ' ' || cell == marker) ? marker : '#';  // overlap
    }
  }

  std::string out;
  char buf[64];
  for (std::size_t r = 0; r < options.height; ++r) {
    const double frac =
        1.0 - static_cast<double>(r) / static_cast<double>(options.height - 1);
    const double y = y_lo + frac * (y_hi - y_lo);
    const double value = options.log_y ? std::pow(10.0, y) : y;
    std::snprintf(buf, sizeof buf, "%10.3g |", value);
    out += buf;
    out += grid[r];
    out += '\n';
  }
  out += std::string(11, ' ') + '+' + std::string(options.width, '-') + '\n';
  out += std::string(12, ' ') + "x: 1.." + std::to_string(max_len) + "   ";
  for (const Series& s : series) {
    out += "[";
    out += s.label.empty() ? '*' : s.label.front();
    out += "] " + s.label + "  ";
  }
  out += "('#' = overlap)\n";
  return out;
}

}  // namespace nashlb::util
