#include "util/csv.hpp"

#include <stdexcept>

namespace nashlb::util {

CsvWriter::CsvWriter(const std::string& path,
                     const std::vector<std::string>& header)
    : out_(path), arity_(header.size()) {
  if (!out_) {
    throw std::runtime_error("CsvWriter: cannot open " + path);
  }
  if (arity_ == 0) {
    throw std::invalid_argument("CsvWriter: empty header");
  }
  write_row(header);
}

void CsvWriter::add_row(const std::vector<std::string>& cells) {
  if (cells.size() != arity_) {
    throw std::invalid_argument("CsvWriter::add_row: arity mismatch");
  }
  write_row(cells);
  ++rows_written_;
}

std::string CsvWriter::escape(const std::string& cell) {
  const bool needs_quote =
      cell.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quote) return cell;
  std::string quoted = "\"";
  for (char ch : cell) {
    if (ch == '"') quoted += '"';
    quoted += ch;
  }
  quoted += '"';
  return quoted;
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i != 0) out_ << ',';
    out_ << escape(cells[i]);
  }
  out_ << '\n';
}

}  // namespace nashlb::util
