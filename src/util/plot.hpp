// Terminal line plots for the bench binaries.
//
// Renders one or more (x implied by index) series on a character grid,
// optionally with a logarithmic y-axis — which is how the Figure 2 bench
// shows the geometric norm decay the way the paper's semi-log plot does.
#pragma once

#include <string>
#include <vector>

namespace nashlb::util {

/// One plotted series: a label (its first character is the plot marker)
/// and the y values (x = 1..n).
struct Series {
  std::string label;
  std::vector<double> values;
};

/// Options for render_plot.
struct PlotOptions {
  std::size_t width = 64;    ///< columns of the plotting area
  std::size_t height = 16;   ///< rows of the plotting area
  bool log_y = false;        ///< logarithmic y axis (requires values > 0)
};

/// Renders the series onto a grid. Non-positive values are skipped when
/// log_y is set. Returns a multi-line string including a y-axis scale and
/// a legend. Throws std::invalid_argument when no series has any
/// plottable point or options are degenerate.
[[nodiscard]] std::string render_plot(const std::vector<Series>& series,
                                      const PlotOptions& options = {});

}  // namespace nashlb::util
