// ASCII table rendering for benchmark and example output.
//
// The benchmark harness reproduces the paper's tables and figure series as
// text; this printer keeps that output aligned and diff-friendly.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace nashlb::util {

/// Column alignment inside a rendered table.
enum class Align { Left, Right };

/// An ASCII table builder: set a header, append rows, render.
///
/// Cells are strings; numeric formatting is the caller's concern (see
/// `format_fixed` / `format_sig`). Rendering pads each column to its widest
/// cell and separates the header with a rule, e.g.:
///
///   utilization  NASH    GOS     IOS     PS
///   -----------  ------  ------  ------  ------
///   10%          0.0142  0.0141  0.0142  0.0311
class Table {
 public:
  /// Creates a table with the given column headers. All rows appended later
  /// must have exactly `headers.size()` cells.
  explicit Table(std::vector<std::string> headers);

  /// Sets the alignment of column `col` (default: Right for all columns).
  void set_align(std::size_t col, Align align);

  /// Appends one row; throws std::invalid_argument on arity mismatch.
  void add_row(std::vector<std::string> cells);

  /// Number of data rows currently in the table.
  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }

  /// Renders the table to a string (trailing newline included).
  [[nodiscard]] std::string str() const;

  /// Renders the table to a stream.
  void print(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<Align> aligns_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats `v` with `digits` digits after the decimal point ("%.*f").
[[nodiscard]] std::string format_fixed(double v, int digits);

/// Formats `v` with `digits` significant digits ("%.*g").
[[nodiscard]] std::string format_sig(double v, int digits);

/// Formats a ratio as a percentage with `digits` decimals, e.g. 0.6 -> "60%".
[[nodiscard]] std::string format_percent(double ratio, int digits = 0);

}  // namespace nashlb::util
