// Deterministic parallel execution: a fixed-size thread pool and a
// statically-partitioned parallel_for.
//
// The hot loops this layer serves are *embarrassingly* parallel by
// construction — a Jacobi best-reply round replies against the frozen
// round-start loads (core/dynamics), and DES replications are fully
// independent runs on jump-separated RNG streams (simmodel/replication).
// What the callers need is therefore not throughput tricks but a
// *determinism contract*:
//
//   * work-stealing-free: iteration chunks are assigned to workers by a
//     static rule (chunk c runs on worker c mod W), so which worker —
//     and therefore which per-worker workspace — touches which index is
//     a pure function of (range, grain, pool size), never of timing;
//   * threads = 1 is byte-for-byte the serial path: no pool threads are
//     spawned, no mutex is taken, `parallel_for` degenerates to a plain
//     loop calling fn(i, 0) in index order;
//   * results must be reduced by the *caller* in index order (each
//     index writes its own slot; the pool never reorders a reduction),
//     which is what makes the callers bitwise independent of the
//     thread count.
//
// Thread-count resolution: an explicit `threads` request wins; 0 means
// "auto" — the NASHLB_THREADS environment variable if set, else
// std::thread::hardware_concurrency(). All concurrency in src/ goes
// through this pool: tools/lint_nashlb.py (`raw-concurrency` rule)
// rejects raw std::thread / std::async / OpenMP anywhere else, so every
// parallel code path inherits the contract above and is covered by the
// single TSan gate (tools/check_tsan.sh).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>  // nashlb-lint: allow(raw-concurrency) — the pool's own implementation
#include <vector>

namespace nashlb::util {

/// Thread-count knob shared by the pool's consumers (DynamicsOptions,
/// ReplicationConfig embed the same semantics).
struct ParallelOptions {
  /// 1 = serial, 0 = auto (NASHLB_THREADS env, else hardware
  /// concurrency), k > 1 = exactly k workers.
  std::size_t threads = 1;
};

/// Resolves a thread-count request to a concrete worker count >= 1:
/// `requested` itself when nonzero; otherwise the NASHLB_THREADS
/// environment variable when it parses to a positive integer; otherwise
/// std::thread::hardware_concurrency() (itself clamped to >= 1).
[[nodiscard]] std::size_t resolve_threads(std::size_t requested = 0) noexcept;

/// Fixed-size pool: `size()` workers total, of which `size() - 1` are
/// background threads and the calling thread is worker 0. A pool of
/// size 1 owns no threads at all. Construction is the only expensive
/// operation (~50 us per thread); create one pool per solve/batch, not
/// per round.
class ThreadPool {
 public:
  /// `threads` is resolved via resolve_threads (so 0 = auto).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total worker count (calling thread included).
  [[nodiscard]] std::size_t size() const noexcept { return workers_; }

  /// Runs fn(i, worker) for every i in [begin, end), where worker in
  /// [0, size()) identifies the executing worker (index per-worker
  /// scratch with it). The range is split into contiguous chunks of at
  /// least `grain` indices (grain 0 counts as 1) and chunk c is executed
  /// by worker c % size(), each worker walking its chunks in ascending
  /// order — fully deterministic assignment, no stealing. Blocks until
  /// every index ran. If any fn invocation throws, the exception from
  /// the lowest-numbered chunk is rethrown after the join (later chunks
  /// of the same worker are skipped; other workers run to completion).
  ///
  /// Not reentrant: fn must not call parallel_for on the same pool.
  void parallel_for(std::size_t begin, std::size_t end, std::size_t grain,
                    const std::function<void(std::size_t, std::size_t)>& fn);

 private:
  struct Chunk {
    std::size_t begin;
    std::size_t end;
  };

  void worker_loop(std::size_t worker);
  void run_chunks(std::size_t worker);

  std::size_t workers_ = 1;
  std::vector<std::thread> threads_;  // nashlb-lint: allow(raw-concurrency)

  // Job state, guarded by mutex_. A "job" is one parallel_for call:
  // generation_ bumps, workers wake, run their static chunk share, and
  // the last one to finish wakes the caller.
  std::mutex mutex_;
  std::condition_variable wake_workers_;
  std::condition_variable job_done_;
  std::uint64_t generation_ = 0;
  std::size_t pending_workers_ = 0;
  bool stopping_ = false;

  // Per-job data: written by the caller before the wake, read-only
  // while the job runs (chunk exception slots are disjoint per chunk).
  const std::function<void(std::size_t, std::size_t)>* job_fn_ = nullptr;
  std::vector<Chunk> chunks_;
  std::vector<std::exception_ptr> chunk_errors_;
};

}  // namespace nashlb::util
