#include "util/parallel.hpp"

#include <cstdlib>

namespace nashlb::util {

std::size_t resolve_threads(std::size_t requested) noexcept {
  if (requested != 0) return requested;
  if (const char* env = std::getenv("NASHLB_THREADS")) {
    char* end = nullptr;
    const unsigned long long parsed = std::strtoull(env, &end, 10);
    if (end != env && *end == '\0' && parsed >= 1) {
      return static_cast<std::size_t>(parsed);
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

ThreadPool::ThreadPool(std::size_t threads)
    : workers_(resolve_threads(threads)) {
  threads_.reserve(workers_ - 1);
  for (std::size_t w = 1; w < workers_; ++w) {
    threads_.emplace_back([this, w] { worker_loop(w); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  wake_workers_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::run_chunks(std::size_t worker) {
  // Static assignment: worker w owns chunks w, w + W, w + 2W, ... in
  // ascending order. No shared counters, so the (chunk -> worker)
  // mapping — and each worker's visit order — is a pure function of
  // the range.
  for (std::size_t c = worker; c < chunks_.size(); c += workers_) {
    try {
      for (std::size_t i = chunks_[c].begin; i < chunks_[c].end; ++i) {
        (*job_fn_)(i, worker);
      }
    } catch (...) {
      chunk_errors_[c] = std::current_exception();
      return;  // skip this worker's remaining chunks
    }
  }
}

void ThreadPool::worker_loop(std::size_t worker) {
  std::uint64_t seen = 0;
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    wake_workers_.wait(lock,
                       [&] { return stopping_ || generation_ != seen; });
    if (stopping_) return;
    seen = generation_;
    lock.unlock();
    run_chunks(worker);
    lock.lock();
    if (--pending_workers_ == 0) job_done_.notify_one();
  }
}

void ThreadPool::parallel_for(
    std::size_t begin, std::size_t end, std::size_t grain,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  if (begin >= end) return;
  const std::size_t count = end - begin;
  if (grain == 0) grain = 1;
  if (workers_ == 1 || count <= grain) {
    // The serial path: a plain index-order loop, no locks, no threads.
    for (std::size_t i = begin; i < end; ++i) fn(i, 0);
    return;
  }

  // Chunking: small enough chunks that uneven per-index cost balances
  // across workers (4 per worker), but never below the caller's grain
  // and never more chunks than indices.
  std::size_t chunk_size = (count + workers_ * 4 - 1) / (workers_ * 4);
  if (chunk_size < grain) chunk_size = grain;
  const std::size_t num_chunks = (count + chunk_size - 1) / chunk_size;
  chunks_.clear();
  chunks_.reserve(num_chunks);
  for (std::size_t c = 0; c < num_chunks; ++c) {
    const std::size_t lo = begin + c * chunk_size;
    const std::size_t hi = lo + chunk_size < end ? lo + chunk_size : end;
    chunks_.push_back({lo, hi});
  }
  chunk_errors_.assign(num_chunks, nullptr);
  job_fn_ = &fn;

  {
    const std::lock_guard<std::mutex> lock(mutex_);
    pending_workers_ = workers_ - 1;
    ++generation_;
  }
  wake_workers_.notify_all();
  run_chunks(0);  // the calling thread is worker 0
  {
    std::unique_lock<std::mutex> lock(mutex_);
    job_done_.wait(lock, [&] { return pending_workers_ == 0; });
  }
  job_fn_ = nullptr;

  // Deterministic error propagation: the lowest-numbered failing chunk
  // wins, regardless of which worker hit it first in wall time.
  for (const std::exception_ptr& err : chunk_errors_) {
    if (err) std::rethrow_exception(err);
  }
}

}  // namespace nashlb::util
