// Online (dynamic) load balancing — the paper's second future-work
// direction: "game theoretic models for dynamic load balancing".
//
// A closed-loop simulated system. Jobs flow through the M/M/1 farm while
// the users' strategies adapt *online*:
//
//   * the users' arrival rates follow a piecewise-constant schedule
//     (diurnal drift, flash crowds, ...) that the controller does NOT see;
//   * every `update_period` simulated seconds one user (round-robin, as
//     in the paper's ring) refreshes its strategy with a damped OPTIMAL
//     best reply — computed from *measured* quantities only: windowed
//     arrival-rate meters per computer (the growth rate of the run
//     queues — the practical reading of §2's "statistical estimation of
//     the run queue length"; crucially, arrival rates do not saturate
//     under overload the way busy fractions do, so an over-subscribed
//     computer actively repels flow) and the user's own dispatch counts
//     (local knowledge); the available-rate estimate is
//     mu_i - (lambda_hat_i - own_hat_i), clamped below by a small floor;
//   * response times are recorded in windows so the adaptation transient
//     is visible, not averaged away.
//
// The A12 bench compares this adaptive loop against a static profile
// frozen at the nominal load and against an oracle that re-solves the
// equilibrium exactly whenever the schedule changes.
#pragma once

#include <cstdint>
#include <vector>

#include "core/types.hpp"

namespace nashlb::adaptive {

/// Piecewise-constant user arrival rates: segment k applies from
/// time[k] (inclusive) to time[k+1] (or the horizon for the last one).
struct RateSchedule {
  std::vector<double> start_times;           ///< ascending, first == 0
  std::vector<std::vector<double>> phi;      ///< one rate vector per segment

  /// The rate vector in force at time t.
  [[nodiscard]] const std::vector<double>& at(double t) const;

  /// Validates shape (non-empty, matching sizes, ascending times,
  /// positive rates); throws std::invalid_argument on violation.
  void validate() const;
};

/// Controller and measurement knobs.
struct OnlineOptions {
  double horizon = 2000.0;          ///< simulated seconds
  double update_period = 5.0;       ///< one user update every this often
  double window = 20.0;             ///< utilization measurement window
  double report_period = 50.0;      ///< response-time reporting window
  std::uint64_t seed = 0xD1CEULL;
  /// Damping of each strategy update: the adopted row is
  /// (1-gain)*old + gain*best_reply. 1 = undamped (can oscillate under
  /// measurement staleness); the default trades convergence speed for
  /// stability under noisy windowed estimates.
  double gain = 0.5;
  /// When false, the controller never runs: the initial profile stays
  /// frozen for the whole run (the "static" baseline of the A12 bench).
  bool adapt = true;
};

/// One reporting window's outcome.
struct WindowReport {
  double end_time = 0.0;
  double mean_response = 0.0;   ///< mean response of jobs completed in it
  std::uint64_t jobs = 0;
};

/// Whole-run outcome.
struct OnlineResult {
  std::vector<WindowReport> windows;
  double overall_mean_response = 0.0;  ///< over all post-window-0 jobs
  std::uint64_t jobs_completed = 0;
  core::StrategyProfile final_profile;
  std::uint64_t strategy_updates = 0;  ///< controller invocations
};

/// Runs the closed-loop simulation. `mu` are the computers' rates,
/// `schedule` the (hidden) user arrival-rate schedule, `initial` the
/// profile in force at t = 0. Requires every segment to satisfy
/// Phi < sum(mu) and the initial profile to be feasible for segment 0.
[[nodiscard]] OnlineResult simulate_online(const std::vector<double>& mu,
                                           const RateSchedule& schedule,
                                           const core::StrategyProfile& initial,
                                           const OnlineOptions& options = {});

}  // namespace nashlb::adaptive
