#include "adaptive/online.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <memory>
#include <stdexcept>

#include "core/best_reply.hpp"
#include "des/facility.hpp"
#include "des/simulator.hpp"
#include "stats/distributions.hpp"
#include "stats/moments.hpp"
#include "stats/rng.hpp"

namespace nashlb::adaptive {

const std::vector<double>& RateSchedule::at(double t) const {
  std::size_t k = 0;
  while (k + 1 < start_times.size() && start_times[k + 1] <= t) ++k;
  return phi[k];
}

void RateSchedule::validate() const {
  if (start_times.empty() || start_times.size() != phi.size()) {
    throw std::invalid_argument(
        "RateSchedule: need matching, non-empty times and rates");
  }
  if (start_times.front() != 0.0) {
    throw std::invalid_argument("RateSchedule: first segment must start at 0");
  }
  const std::size_t m = phi.front().size();
  for (std::size_t k = 0; k < phi.size(); ++k) {
    if (k > 0 && !(start_times[k] > start_times[k - 1])) {
      throw std::invalid_argument("RateSchedule: times must be ascending");
    }
    if (phi[k].size() != m) {
      throw std::invalid_argument("RateSchedule: user count must not change");
    }
    for (double rate : phi[k]) {
      if (!(rate > 0.0) || !std::isfinite(rate)) {
        throw std::invalid_argument("RateSchedule: rates must be > 0");
      }
    }
  }
}

namespace {

/// Categorical draw by cumulative scan — the profile mutates at runtime,
/// so a rebuildable O(n) scan beats maintaining alias tables.
std::size_t sample_row(std::span<const double> row, stats::Xoshiro256& rng) {
  const double u = rng.next_double();
  double acc = 0.0;
  for (std::size_t i = 0; i < row.size(); ++i) {
    acc += row[i];
    if (u < acc) return i;
  }
  return row.size() - 1;  // rounding tail
}

/// Timestamped cumulative measurements for windowed estimation.
struct Snapshot {
  double time = 0.0;
  std::vector<double> computer_arrivals;          // per computer
  std::vector<std::vector<double>> own_arrivals;  // per user x computer
};

}  // namespace

OnlineResult simulate_online(const std::vector<double>& mu,
                             const RateSchedule& schedule,
                             const core::StrategyProfile& initial,
                             const OnlineOptions& options) {
  schedule.validate();
  const std::size_t n = mu.size();
  const std::size_t m = schedule.phi.front().size();
  if (initial.num_users() != m || initial.num_computers() != n) {
    throw std::invalid_argument("simulate_online: profile shape mismatch");
  }
  for (std::size_t j = 0; j < m; ++j) {
    double total = 0.0;
    for (double f : initial.row(j)) {
      if (!(f >= 0.0)) {
        throw std::invalid_argument(
            "simulate_online: initial profile has negative fractions");
      }
      total += f;
    }
    if (std::fabs(total - 1.0) > 1e-6) {
      throw std::invalid_argument(
          "simulate_online: initial profile rows must sum to 1");
    }
  }
  if (!(options.horizon > 0.0) || !(options.update_period > 0.0) ||
      !(options.window > 0.0) || !(options.report_period > 0.0)) {
    throw std::invalid_argument("simulate_online: periods must be > 0");
  }
  double capacity = 0.0;
  for (double rate : mu) {
    if (!(rate > 0.0)) {
      throw std::invalid_argument("simulate_online: computer rates must be > 0");
    }
    capacity += rate;
  }
  for (const std::vector<double>& seg : schedule.phi) {
    double total = 0.0;
    for (double rate : seg) total += rate;
    if (!(total < capacity)) {
      throw std::invalid_argument(
          "simulate_online: every segment must satisfy Phi < capacity");
    }
  }

  des::Simulator sim;
  const stats::RngStreams streams(options.seed);
  stats::Xoshiro256 dispatch_rng = streams.stream(0, 1);
  std::vector<stats::Xoshiro256> arrival_rng;
  std::vector<stats::Xoshiro256> service_rng;
  for (std::size_t j = 0; j < m; ++j) {
    arrival_rng.push_back(streams.stream(0, 100 + j));
  }
  for (std::size_t i = 0; i < n; ++i) {
    service_rng.push_back(streams.stream(0, 10000 + i));
  }

  std::vector<std::unique_ptr<des::Facility>> computers;
  for (std::size_t i = 0; i < n; ++i) {
    computers.push_back(std::make_unique<des::Facility>(
        sim, "computer-" + std::to_string(i)));
  }

  OnlineResult result{{}, 0.0, 0, initial, 0};
  core::StrategyProfile& profile = result.final_profile;

  // --- measurement state -------------------------------------------------
  // Arrival-rate metering: cumulative dispatch counts per computer (the
  // observable behind "run queue length estimation" — unlike busy-time,
  // arrival rates do NOT saturate under overload, so an overloaded
  // computer is visibly over-subscribed) and each user's own dispatch
  // counts per computer (local knowledge a user always has).
  std::vector<double> computer_arrivals(n, 0.0);
  std::vector<std::vector<double>> own_arrivals(m,
                                                std::vector<double>(n, 0.0));
  auto take_snapshot = [&]() {
    Snapshot snap;
    snap.time = sim.now();
    snap.computer_arrivals = computer_arrivals;
    snap.own_arrivals = own_arrivals;
    return snap;
  };
  std::deque<Snapshot> history;
  history.push_back(take_snapshot());

  // --- response-time reporting -------------------------------------------
  std::vector<stats::RunningStats> window_stats;
  stats::RunningStats overall;
  auto record_response = [&](double completion_time, double response) {
    const auto w = static_cast<std::size_t>(
        completion_time / options.report_period);
    if (window_stats.size() <= w) window_stats.resize(w + 1);
    window_stats[w].add(response);
    if (completion_time >= options.report_period) overall.add(response);
  };

  // --- arrival processes (piecewise-constant rates) -----------------------
  // Each user's chain carries a generation stamp; segment boundaries bump
  // the generation and restart the chain at the new rate, which both
  // realizes the schedule and keeps the process memoryless per segment.
  std::vector<std::uint64_t> generation(m, 0);
  std::function<void(std::size_t, std::uint64_t)> spawn_next =
      [&](std::size_t user, std::uint64_t gen) {
        if (gen != generation[user]) return;  // superseded by a boundary
        const double rate = schedule.at(sim.now())[user];
        const double gap =
            -std::log(arrival_rng[user].next_double_open()) / rate;
        if (sim.now() + gap > options.horizon) return;
        sim.schedule(gap, [&, user, gen](des::SimTime t_arrival) {
          if (gen != generation[user]) return;
          const std::size_t target =
              sample_row(profile.row(user), dispatch_rng);
          computer_arrivals[target] += 1.0;
          own_arrivals[user][target] += 1.0;
          const double service =
              -std::log(service_rng[target].next_double_open()) / mu[target];
          computers[target]->request(
              service, [&, t_arrival](des::SimTime t_done) {
                ++result.jobs_completed;
                record_response(t_done, t_done - t_arrival);
              });
          spawn_next(user, gen);
        });
      };
  for (std::size_t j = 0; j < m; ++j) spawn_next(j, 0);
  for (std::size_t k = 1; k < schedule.start_times.size(); ++k) {
    if (schedule.start_times[k] >= options.horizon) break;
    sim.schedule_at(schedule.start_times[k], [&](des::SimTime) {
      for (std::size_t j = 0; j < m; ++j) {
        ++generation[j];
        spawn_next(j, generation[j]);
      }
    });
  }

  // --- the controller ------------------------------------------------------
  std::size_t next_user = 0;
  std::function<void(des::SimTime)> controller = [&](des::SimTime) {
    // Windowed estimates: compare against the oldest snapshot still
    // inside the measurement window (or the oldest available).
    const Snapshot now_snap = take_snapshot();
    while (history.size() > 1 &&
           now_snap.time - history[1].time >= options.window) {
      history.pop_front();
    }
    const Snapshot& base = history.front();
    const double span = now_snap.time - base.time;
    if (options.adapt && span > 0.0) {
      const std::size_t user = next_user;
      next_user = (next_user + 1) % m;

      double phi_hat = 0.0;
      std::vector<double> own(n);
      for (std::size_t i = 0; i < n; ++i) {
        own[i] = (now_snap.own_arrivals[user][i] -
                  base.own_arrivals[user][i]) /
                 span;
        phi_hat += own[i];
      }
      if (phi_hat > 0.0) {
        std::vector<double> avail(n);
        double headroom = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
          const double lambda_hat = (now_snap.computer_arrivals[i] -
                                     base.computer_arrivals[i]) /
                                    span;
          // Available rate as seen by this user: capacity minus the
          // *other* users' metered arrival rate. Unlike a busy-fraction
          // estimate this goes negative under overload (clamped to a
          // floor), so over-subscribed computers actively repel flow.
          avail[i] = std::clamp(mu[i] - (lambda_hat - own[i]),
                                1e-3 * mu[i], mu[i]);
          headroom += avail[i];
        }
        if (phi_hat < 0.95 * headroom) {
          const std::vector<double> reply =
              core::optimal_fractions(avail, phi_hat);
          // Damped adoption: measurement noise and cross-user staleness
          // make the raw best reply overshoot; a convex step keeps the
          // loop stable without changing its fixed point.
          std::vector<double> row(n);
          for (std::size_t i = 0; i < n; ++i) {
            row[i] = (1.0 - options.gain) * profile.at(user, i) +
                     options.gain * reply[i];
          }
          profile.set_row(user, row);
          ++result.strategy_updates;
        }
      }
    }
    history.push_back(now_snap);
    if (sim.now() + options.update_period <= options.horizon) {
      sim.schedule(options.update_period, controller);
    }
  };
  sim.schedule(options.update_period, controller);

  sim.run();

  for (std::size_t w = 0; w < window_stats.size(); ++w) {
    WindowReport report;
    report.end_time = (static_cast<double>(w) + 1.0) * options.report_period;
    report.mean_response = window_stats[w].mean();
    report.jobs = window_stats[w].count();
    result.windows.push_back(report);
  }
  result.overall_mean_response = overall.mean();
  return result;
}

}  // namespace nashlb::adaptive
