#include "simmodel/replication.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>

#include "util/parallel.hpp"

namespace nashlb::simmodel {

std::vector<std::string> replication_trace_columns() {
  return {"replication",    "wall_seconds",   "sim_seconds",
          "jobs_generated", "jobs_completed", "overall_response"};
}

ReplicatedResult replicate(const core::Instance& inst,
                           const core::StrategyProfile& profile,
                           const ReplicationConfig& config) {
  if (config.replications < 2) {
    throw std::invalid_argument(
        "replicate: need at least two replications for intervals");
  }
  const std::size_t r_total = config.replications;
  std::vector<SimRunResult> runs(r_total);
  std::vector<double> wall_seconds(r_total, 0.0);
  // One metrics shard per replication: the shard is private to the
  // worker while the run executes, and the shards merge below — after
  // the join, in replication order — so the reduced registry is
  // identical whatever the thread count.
  std::vector<obs::Registry> shards(config.metrics != nullptr ? r_total : 0);

  const std::size_t workers =
      std::min(util::resolve_threads(config.threads), r_total);

  // Replication r is fully determined by its index (stream family r),
  // so each pool index computes the same run wherever it is scheduled.
  util::ThreadPool pool(workers);
  pool.parallel_for(0, r_total, 1, [&](std::size_t r, std::size_t) {
    SimConfig cfg = config.base;
    cfg.replication = r;
    cfg.metrics = shards.empty() ? nullptr : &shards[r];
    const auto start = std::chrono::steady_clock::now();
    runs[r] = simulate(inst, profile, cfg);
    wall_seconds[r] = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - start)
                          .count();
  });

  const std::size_t m = inst.num_users();
  const std::size_t n = inst.num_computers();
  ReplicatedResult out;
  out.user_response.reserve(m);
  for (std::size_t j = 0; j < m; ++j) {
    std::vector<double> means;
    means.reserve(r_total);
    for (const SimRunResult& run : runs) {
      means.push_back(run.user_mean_response[j]);
    }
    out.user_response.push_back(stats::t_interval(means, config.confidence));
  }
  {
    std::vector<double> means;
    means.reserve(r_total);
    for (const SimRunResult& run : runs) {
      means.push_back(run.overall_mean_response);
    }
    out.overall_response = stats::t_interval(means, config.confidence);
  }
  out.computer_utilization.assign(n, 0.0);
  out.computer_sojourn.assign(n, obs::Histogram{});
  for (const SimRunResult& run : runs) {
    out.total_jobs += run.jobs_generated;
    for (std::size_t i = 0; i < n; ++i) {
      out.computer_utilization[i] +=
          run.computer_utilization[i] / static_cast<double>(r_total);
      if (obs::kEnabled && i < run.computer_sojourn.size()) {
        out.computer_sojourn[i].merge(run.computer_sojourn[i]);
      }
    }
  }
  if (config.metrics != nullptr) {
    for (const obs::Registry& shard : shards) config.metrics->merge(shard);
  }
  if (obs::kEnabled && config.trace) {
    for (std::size_t r = 0; r < r_total; ++r) {
      const SimRunResult& run = runs[r];
      config.trace->record({static_cast<std::int64_t>(r), wall_seconds[r],
                            run.end_time,
                            static_cast<std::int64_t>(run.jobs_generated),
                            static_cast<std::int64_t>(run.jobs_completed),
                            run.overall_mean_response});
    }
  }
  out.wall_seconds = std::move(wall_seconds);
  out.runs = std::move(runs);
  return out;
}

}  // namespace nashlb::simmodel
