#include "simmodel/replication.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>

namespace nashlb::simmodel {

std::vector<std::string> replication_trace_columns() {
  return {"replication",    "wall_seconds",   "sim_seconds",
          "jobs_generated", "jobs_completed", "overall_response"};
}

ReplicatedResult replicate(const core::Instance& inst,
                           const core::StrategyProfile& profile,
                           const ReplicationConfig& config) {
  if (config.replications < 2) {
    throw std::invalid_argument(
        "replicate: need at least two replications for intervals");
  }
  const std::size_t r_total = config.replications;
  std::vector<SimRunResult> runs(r_total);
  std::vector<double> wall_seconds(r_total, 0.0);

  std::size_t workers = config.threads;
  if (workers == 0) {
    workers = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers = std::min(workers, r_total);

  // Work-stealing by atomic counter: replication r is fully determined by
  // its index, so scheduling order cannot affect results.
  std::atomic<std::size_t> next{0};
  auto worker = [&]() {
    for (;;) {
      const std::size_t r = next.fetch_add(1);
      if (r >= r_total) return;
      SimConfig cfg = config.base;
      cfg.replication = r;
      const auto start = std::chrono::steady_clock::now();
      runs[r] = simulate(inst, profile, cfg);
      wall_seconds[r] = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - start)
                            .count();
    }
  };
  if (workers == 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
  }

  const std::size_t m = inst.num_users();
  const std::size_t n = inst.num_computers();
  ReplicatedResult out;
  out.user_response.reserve(m);
  for (std::size_t j = 0; j < m; ++j) {
    std::vector<double> means;
    means.reserve(r_total);
    for (const SimRunResult& run : runs) {
      means.push_back(run.user_mean_response[j]);
    }
    out.user_response.push_back(stats::t_interval(means, config.confidence));
  }
  {
    std::vector<double> means;
    means.reserve(r_total);
    for (const SimRunResult& run : runs) {
      means.push_back(run.overall_mean_response);
    }
    out.overall_response = stats::t_interval(means, config.confidence);
  }
  out.computer_utilization.assign(n, 0.0);
  for (const SimRunResult& run : runs) {
    out.total_jobs += run.jobs_generated;
    for (std::size_t i = 0; i < n; ++i) {
      out.computer_utilization[i] +=
          run.computer_utilization[i] / static_cast<double>(r_total);
    }
  }
  if (obs::kEnabled && config.trace) {
    for (std::size_t r = 0; r < r_total; ++r) {
      const SimRunResult& run = runs[r];
      config.trace->record({static_cast<std::int64_t>(r), wall_seconds[r],
                            run.end_time,
                            static_cast<std::int64_t>(run.jobs_generated),
                            static_cast<std::int64_t>(run.jobs_completed),
                            run.overall_mean_response});
    }
  }
  out.wall_seconds = std::move(wall_seconds);
  out.runs = std::move(runs);
  return out;
}

}  // namespace nashlb::simmodel
