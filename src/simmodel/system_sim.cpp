#include "simmodel/system_sim.hpp"

#include <memory>
#include <stdexcept>

#include "des/facility.hpp"
#include "des/simulator.hpp"
#include "stats/distributions.hpp"
#include "stats/moments.hpp"
#include "stats/rng.hpp"

namespace nashlb::simmodel {
namespace {

// Stream-id layout within a replication: one arrival stream and one
// dispatch stream per user, one service stream per computer.
enum StreamKind : std::uint64_t {
  kArrival = 0,
  kDispatch = 1,
  kService = 2,
};

std::uint64_t stream_id(StreamKind kind, std::size_t index) {
  return static_cast<std::uint64_t>(kind) * 4096 +
         static_cast<std::uint64_t>(index);
}

}  // namespace

SimRunResult simulate(const core::Instance& inst,
                      const core::StrategyProfile& profile,
                      const SimConfig& config) {
  inst.validate();
  if (!profile.is_feasible(inst, 1e-7)) {
    throw std::invalid_argument("simulate: profile is not feasible");
  }
  if (!(config.horizon > 0.0) || !(config.warmup >= 0.0) ||
      !(config.warmup < config.horizon)) {
    throw std::invalid_argument(
        "simulate: need 0 <= warmup < horizon, horizon > 0");
  }

  const std::size_t m = inst.num_users();
  const std::size_t n = inst.num_computers();

  des::Simulator sim;
  // Per-replication stream family: replication r of the same experiment
  // uses disjoint streams, exactly the paper's replication discipline.
  const stats::RngStreams streams(config.seed);

  // Computers: one single-server FCFS facility each.
  std::vector<std::unique_ptr<des::Facility>> computers;
  computers.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    computers.push_back(std::make_unique<des::Facility>(
        sim, "computer-" + std::to_string(i), 1, des::PreemptPolicy::None));
  }

  // Per-source RNG state.
  std::vector<stats::Xoshiro256> arrival_rng;
  std::vector<stats::Xoshiro256> dispatch_rng;
  std::vector<stats::Xoshiro256> service_rng;
  for (std::size_t j = 0; j < m; ++j) {
    arrival_rng.push_back(
        streams.stream(config.replication, stream_id(kArrival, j)));
    dispatch_rng.push_back(
        streams.stream(config.replication, stream_id(kDispatch, j)));
  }
  for (std::size_t i = 0; i < n; ++i) {
    service_rng.push_back(
        streams.stream(config.replication, stream_id(kService, i)));
  }

  std::vector<stats::Exponential> interarrival;
  interarrival.reserve(m);
  for (std::size_t j = 0; j < m; ++j) {
    interarrival.emplace_back(inst.phi[j]);
  }
  std::vector<stats::Exponential> service;
  service.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    service.emplace_back(inst.mu[i]);
  }

  // Dispatch tables: alias samplers over each user's strategy row. Rows
  // can carry exact zeros (inactive computers); Discrete never draws them.
  std::vector<stats::Discrete> dispatch;
  dispatch.reserve(m);
  for (std::size_t j = 0; j < m; ++j) {
    dispatch.emplace_back(profile.row(j));
  }

  SimRunResult result;
  result.user_mean_response.assign(m, 0.0);
  result.user_jobs.assign(m, 0);
  result.computer_utilization.assign(n, 0.0);
  result.computer_mean_response.assign(n, 0.0);
  result.computer_jobs.assign(n, 0);
  result.computer_mean_queue.assign(n, 0.0);
  std::vector<stats::RunningStats> user_stats(m);
  std::vector<stats::RunningStats> computer_stats(n);
  stats::RunningStats overall_stats;

  // Job generation: each user is a self-rescheduling arrival process that
  // stops spawning at the horizon; in-flight jobs drain afterwards.
  std::function<void(std::size_t)> spawn_next = [&](std::size_t user) {
    const double gap = interarrival[user].sample(arrival_rng[user]);
    const double arrival_time = sim.now() + gap;
    if (arrival_time > config.horizon) return;
    sim.schedule(gap, [&, user](des::SimTime t_arrival) {
      ++result.jobs_generated;
      const std::size_t target = dispatch[user].sample(dispatch_rng[user]);
      const double service_time = service[target].sample(service_rng[target]);
      computers[target]->request(
          service_time, [&, user, target, t_arrival](des::SimTime t_done) {
            ++result.jobs_completed;
            if (t_arrival >= config.warmup) {
              const double response = t_done - t_arrival;
              user_stats[user].add(response);
              computer_stats[target].add(response);
              overall_stats.add(response);
              if (config.on_sample) config.on_sample(user, response);
            }
          });
      spawn_next(user);
    });
  };
  for (std::size_t j = 0; j < m; ++j) spawn_next(j);

  sim.run();  // drains: generation stops at the horizon

  for (std::size_t j = 0; j < m; ++j) {
    result.user_mean_response[j] = user_stats[j].mean();
    result.user_jobs[j] = user_stats[j].count();
  }
  result.overall_mean_response = overall_stats.mean();
  result.end_time = sim.now();
  result.computer_sojourn.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    result.computer_utilization[i] = computers[i]->utilization(sim.now());
    result.computer_mean_response[i] = computer_stats[i].mean();
    result.computer_jobs[i] = computer_stats[i].count();
    result.computer_mean_queue[i] = computers[i]->mean_queue_length(sim.now());
    result.computer_sojourn.push_back(computers[i]->sojourn_histogram());
  }
  if (obs::kEnabled && config.metrics) {
    sim.publish_metrics(*config.metrics);
    for (std::size_t i = 0; i < n; ++i) {
      computers[i]->publish_metrics(*config.metrics, sim.now());
    }
  }
  return result;
}

}  // namespace nashlb::simmodel
