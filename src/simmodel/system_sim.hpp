// End-to-end discrete-event simulation of the distributed system (§4.1).
//
// "The simulation model consists of a collection of computers connected by
// a communication network. Jobs arriving at the system are distributed to
// the computers according to the specified load balancing scheme. Jobs
// which have been dispatched to a particular computer are run-to-completion
// in FCFS order. Each computer is modeled as an M/M/1 queueing system."
//
// Mapping to this module:
//   * each user is a Poisson source with rate phi_j (exponential
//     inter-arrival times, one RNG stream per user per replication);
//   * each arriving job is dispatched to computer i with probability
//     s_ji — the strategy profile acts as a probabilistic splitter (an
//     O(1) alias-table draw);
//   * each computer is a single-server FCFS des::Facility with
//     exponential service at rate mu_i;
//   * per-user and per-computer response-time statistics accumulate after
//     a warm-up cutoff so transients don't bias the steady-state means.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "core/types.hpp"
#include "obs/histogram.hpp"
#include "obs/metrics.hpp"

namespace nashlb::simmodel {

/// One simulation run's parameters.
struct SimConfig {
  /// Simulated seconds of job generation. The paper runs "several
  /// thousands of seconds, sufficient to generate 1 to 2 million jobs".
  double horizon = 2000.0;
  /// Statistics ignore jobs arriving before this time (warm-up).
  double warmup = 100.0;
  /// Master seed; combined with `replication` to derive all streams.
  std::uint64_t seed = 0xC0FFEEULL;
  /// Replication index (selects independent RNG streams).
  std::uint64_t replication = 0;
  /// Optional per-job hook: called for every post-warm-up completion with
  /// (user, response time), in completion order. Feeds batch-means
  /// analysis (stats::BatchMeans) and response-time histograms without
  /// the simulator having to store per-job records.
  std::function<void(std::size_t, double)> on_sample;
  /// Optional metrics sink (not owned, may be null): when the run
  /// drains, the DES kernel and every facility publish their counters,
  /// timers and sojourn histograms into it (`des.*`, `computer-<i>.*`).
  /// The Registry is not thread-safe — concurrent replications each get
  /// their own shard registry, merged after the join (see
  /// replication.hpp and docs/OBSERVABILITY.md, "Sharded registries").
  /// A no-op when the obs layer is compiled out.
  obs::Registry* metrics = nullptr;
};

/// Steady-state estimates from one run.
struct SimRunResult {
  /// Mean response time of each user's jobs (post-warm-up completions).
  std::vector<double> user_mean_response;
  /// Number of post-warm-up completions per user.
  std::vector<std::uint64_t> user_jobs;
  /// Job-weighted mean response time over all users.
  double overall_mean_response = 0.0;
  /// Busy fraction of each computer over the measured window.
  std::vector<double> computer_utilization;
  /// Mean response time of post-warm-up jobs completed at each computer
  /// (0 where no job completed) — compare with MM1::mean_response_time.
  std::vector<double> computer_mean_response;
  /// Post-warm-up completions per computer.
  std::vector<std::uint64_t> computer_jobs;
  /// Time-average number waiting at each computer — compare with
  /// MM1::mean_queue_length (Little's law cross-check in the tests).
  std::vector<double> computer_mean_queue;
  /// Per-computer sojourn-time histogram (every completed job, including
  /// warm-up — see des::Facility::sojourn_histogram). Quantiles compare
  /// with the exact M/M/1 sojourn quantile -ln(1-q)/(mu_i - lambda_i).
  /// Empty histograms when the obs layer is compiled out.
  std::vector<obs::Histogram> computer_sojourn;
  /// Total jobs generated / completed (incl. warm-up).
  std::uint64_t jobs_generated = 0;
  std::uint64_t jobs_completed = 0;
  /// Time the simulation drained (>= horizon; in-flight jobs finish).
  double end_time = 0.0;
};

/// Simulates `profile` on `inst`. The profile must be feasible (see
/// StrategyProfile::is_feasible); throws std::invalid_argument otherwise.
[[nodiscard]] SimRunResult simulate(const core::Instance& inst,
                                    const core::StrategyProfile& profile,
                                    const SimConfig& config = {});

}  // namespace nashlb::simmodel
