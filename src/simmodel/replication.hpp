// Replicated simulation runs with confidence intervals (§4.1).
//
// "Each run was replicated five times with different random number streams
// and the results averaged over replications. The standard error is less
// than 5% at the 95% confidence level." This module runs R independent
// replications (optionally on worker threads — each replication owns a
// whole Simulator, so parallelism is embarrassingly clean) and reduces
// them into Student-t intervals per user and overall.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "core/types.hpp"
#include "obs/trace.hpp"
#include "simmodel/system_sim.hpp"
#include "stats/confidence.hpp"

namespace nashlb::simmodel {

/// Parameters of a replicated experiment.
struct ReplicationConfig {
  SimConfig base;                 ///< per-run parameters (seed, horizon...)
  std::size_t replications = 5;   ///< the paper's count
  double confidence = 0.95;
  /// Worker threads for the replication fan-out (util::ThreadPool):
  /// 0 = auto (NASHLB_THREADS env, else hardware concurrency),
  /// 1 = sequential, k > 1 = exactly k workers. Replication r always
  /// runs with stream family r regardless of which worker executes it,
  /// so every replication's sample path is bitwise identical to the
  /// sequential run (tests/simmodel/test_replication.cpp pins this).
  std::size_t threads = 0;
  /// Optional per-replication trace (not owned, may be null): one row per
  /// replication under the `replication_trace_columns()` schema. Rows are
  /// appended after the workers join, in replication order, so the sink
  /// needs no synchronization.
  obs::TraceSink* trace = nullptr;
  /// Optional metrics sink (not owned, may be null): each replication
  /// publishes its DES metrics (see SimConfig::metrics) into a private
  /// shard registry; after the workers join the shards merge into this
  /// registry in replication order (counters sum, timers fold extremes,
  /// histograms merge cell-by-cell), so the merged registry is identical
  /// for every thread count. `base.metrics` is ignored — the shard takes
  /// its place. A no-op when the obs layer is compiled out.
  obs::Registry* metrics = nullptr;
};

/// Schema of the per-replication trace, in column order: replication
/// (0-based index), wall_seconds (host time for the run), sim_seconds
/// (simulated time the run drained at), jobs_generated, jobs_completed,
/// overall_response (job-weighted mean response time, seconds).
[[nodiscard]] std::vector<std::string> replication_trace_columns();

/// Reduced results across replications.
struct ReplicatedResult {
  /// Mean response time per user with its confidence interval.
  std::vector<stats::ConfidenceInterval> user_response;
  /// Overall (job-weighted) mean response time interval.
  stats::ConfidenceInterval overall_response;
  /// Mean per-computer utilization across replications.
  std::vector<double> computer_utilization;
  /// Per-computer sojourn histograms merged across all replications
  /// (cell-by-cell; see obs::Histogram::merge), in replication order.
  /// Empty histograms when the obs layer is compiled out.
  std::vector<obs::Histogram> computer_sojourn;
  /// Total jobs generated across all replications.
  std::uint64_t total_jobs = 0;
  /// Host wall-clock seconds each replication took (by replication index;
  /// replications run concurrently, so these do not sum to elapsed time).
  std::vector<double> wall_seconds;
  /// The raw per-replication results (ordered by replication index).
  std::vector<SimRunResult> runs;
};

/// Runs `config.replications` independent simulations of `profile` and
/// reduces them. Deterministic for a fixed config regardless of thread
/// count (replication r always uses stream family r).
[[nodiscard]] ReplicatedResult replicate(const core::Instance& inst,
                                         const core::StrategyProfile& profile,
                                         const ReplicationConfig& config = {});

}  // namespace nashlb::simmodel
