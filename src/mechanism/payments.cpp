#include "mechanism/payments.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/waterfill.hpp"

namespace nashlb::mechanism {
namespace {

void check_bids(std::span<const double> bids, double phi) {
  if (bids.empty()) {
    throw std::invalid_argument("mechanism: no computers");
  }
  double capacity = 0.0;
  for (double b : bids) {
    if (!(b > 0.0) || !std::isfinite(b)) {
      throw std::invalid_argument("mechanism: bids must be finite and > 0");
    }
    capacity += 1.0 / b;
  }
  if (!(phi > 0.0) || !(phi < capacity)) {
    throw std::invalid_argument(
        "mechanism: need 0 < phi < claimed total capacity");
  }
}

/// Work assigned to `agent` when it bids `b` and the others bid as in
/// `bids`. Returns 0 when the claimed system cannot even carry phi (an
/// agent bidding absurdly slow simply drops out: the remaining computers
/// must cover the demand; if they cannot, the instance is infeasible and
/// the mechanism would reject it — for the rebate integral we only ever
/// raise one agent's bid, which monotonically shrinks its share, so the
/// zero return is the correct limit).
double work_of_agent_at_bid(std::span<const double> bids, double phi,
                            std::size_t agent, double b) {
  std::vector<double> rates(bids.size());
  double others_capacity = 0.0;
  for (std::size_t i = 0; i < bids.size(); ++i) {
    rates[i] = 1.0 / (i == agent ? b : bids[i]);
    if (i != agent) others_capacity += rates[i];
  }
  if (others_capacity + rates[agent] <= phi) {
    // Claimed capacity cannot carry the demand: the allocation is
    // undefined; treat the agent as excluded (its share at the stability
    // boundary tends to its full claimed rate, but the mechanism rejects
    // such bid vectors — see check in work_allocation/payment).
    throw std::invalid_argument(
        "mechanism: claimed capacity below demand during evaluation");
  }
  return core::waterfill_sqrt(rates, phi).lambda[agent];
}

}  // namespace

std::vector<double> work_allocation(std::span<const double> bids,
                                    double phi) {
  check_bids(bids, phi);
  std::vector<double> rates(bids.size());
  for (std::size_t i = 0; i < bids.size(); ++i) rates[i] = 1.0 / bids[i];
  return core::waterfill_sqrt(rates, phi).lambda;
}

double payment(std::span<const double> bids, double phi, std::size_t agent,
               std::size_t quad_points) {
  check_bids(bids, phi);
  if (agent >= bids.size()) {
    throw std::out_of_range("payment: agent out of range");
  }
  if (quad_points < 2) {
    throw std::invalid_argument("payment: need quad_points >= 2");
  }

  const double b0 = bids[agent];
  const double w0 = work_of_agent_at_bid(bids, phi, agent, b0);

  // Support of the rebate integral: find the cutoff bid beyond which the
  // agent receives no work. w_i is non-increasing in the bid, so double
  // until it vanishes, then bisect the exact boundary.
  double lo = b0;
  double hi = b0;
  // An agent can always be priced out as long as the others can carry
  // the demand; if they cannot, the integral diverges conceptually and
  // the payment is undefined — the mechanism requires redundancy.
  double others_capacity = 0.0;
  for (std::size_t i = 0; i < bids.size(); ++i) {
    if (i != agent) others_capacity += 1.0 / bids[i];
  }
  if (!(others_capacity > phi)) {
    throw std::invalid_argument(
        "payment: other computers must be able to carry the demand "
        "(agent is a monopolist; no finite truthful payment exists)");
  }
  for (int step = 0; step < 200; ++step) {
    hi *= 2.0;
    if (work_of_agent_at_bid(bids, phi, agent, hi) <= 0.0) break;
    lo = hi;
  }
  for (int step = 0; step < 100; ++step) {
    const double mid = 0.5 * (lo + hi);
    if (work_of_agent_at_bid(bids, phi, agent, mid) > 0.0) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  const double cutoff = hi;

  // Composite Simpson over [b0, cutoff]. The work curve is continuous
  // and piecewise smooth (kinks where the active set changes); Simpson
  // at this resolution is far below the tests' tolerance.
  std::size_t n = quad_points;
  if (n % 2 == 1) ++n;
  const double h = (cutoff - b0) / static_cast<double>(n);
  double integral = 0.0;
  if (h > 0.0) {
    auto w_at = [&](double u) {
      return work_of_agent_at_bid(bids, phi, agent, u);
    };
    integral = w_at(b0) + w_at(cutoff);
    for (std::size_t k = 1; k < n; ++k) {
      const double u = b0 + h * static_cast<double>(k);
      integral += (k % 2 == 1 ? 4.0 : 2.0) * w_at(u);
    }
    integral *= h / 3.0;
  }
  return b0 * w0 + integral;
}

AgentOutcome evaluate_agent(std::span<const double> bids, double phi,
                            std::size_t agent, std::size_t quad_points) {
  AgentOutcome outcome;
  outcome.work = work_allocation(bids, phi)[agent];
  outcome.payment = payment(bids, phi, agent, quad_points);
  return outcome;
}

double best_misreport_gain(std::span<const double> true_costs, double phi,
                           std::size_t agent,
                           std::span<const double> factors) {
  if (agent >= true_costs.size()) {
    throw std::out_of_range("best_misreport_gain: agent out of range");
  }
  // High quadrature resolution: the probe compares profits whose
  // difference is dominated by integration error otherwise.
  constexpr std::size_t kProbePoints = 8192;
  std::vector<double> bids(true_costs.begin(), true_costs.end());
  const double truthful_profit =
      evaluate_agent(bids, phi, agent, kProbePoints)
          .profit(true_costs[agent]);

  double best = 0.0;
  for (double factor : factors) {
    if (!(factor > 0.0)) {
      throw std::invalid_argument(
          "best_misreport_gain: factors must be > 0");
    }
    bids[agent] = true_costs[agent] * factor;
    // Skip bid vectors the mechanism would reject outright.
    double cap = 0.0;
    for (double b : bids) cap += 1.0 / b;
    if (!(phi < cap)) continue;
    const double profit = evaluate_agent(bids, phi, agent, kProbePoints)
                              .profit(true_costs[agent]);
    best = std::max(best, profit - truthful_profit);
  }
  return best;
}

}  // namespace nashlb::mechanism
