// Truthful payments for load balancing — the authors' direct follow-up
// to the reproduced paper (Grosu & Chronopoulos, "Algorithmic Mechanism
// Design for Load Balancing in Distributed Systems", IEEE CLUSTER 2002),
// built here on the same water-filling machinery.
//
// Setting: the computers themselves are strategic. Computer i privately
// knows its processing rate mu_i; equivalently its *cost parameter*
// t_i = 1/mu_i, the seconds of machine time one job consumes. The system
// asks each computer for a bid b_i (a claimed cost), computes the
// globally optimal allocation on the claimed rates 1/b_i (the GOS
// sqrt-rule water-filling of the base paper), and pays each computer for
// the work assigned to it. A computer's profit is payment minus true
// cost: P_i(b) - t_i * w_i(b), where w_i is its assigned arrival rate.
//
// This is exactly Archer & Tardos's one-parameter agent framework: the
// allocation w_i(b_i, b_-i) is non-increasing in the bid b_i (bidding
// slower costs you work — verified by tests), so the unique truthful
// payment rule is
//
//   P_i(b) = b_i w_i(b) + integral_{b_i}^{inf} w_i(u, b_-i) du .
//
// The integral has bounded support — once a computer claims to be slow
// enough it leaves the optimal allocation's active set and w_i vanishes
// — and is evaluated here by adaptive Simpson quadrature on the (known
// monotone) work curve. Under this rule truth-telling maximizes every
// computer's profit regardless of the other bids (dominant strategy),
// and profits are non-negative (voluntary participation).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace nashlb::mechanism {

/// The GOS work curve on claimed costs: allocation w_i for every
/// computer, where computer i's claimed rate is 1/bids[i]. `phi` is the
/// total arrival rate; requires every bid > 0 and
/// phi < sum_i (1/bids[i]); throws std::invalid_argument otherwise.
[[nodiscard]] std::vector<double> work_allocation(
    std::span<const double> bids, double phi);

/// Archer–Tardos payment to `agent` under bid vector `bids`.
/// `quad_points` controls the quadrature resolution of the rebate
/// integral (error is O(h^4); the default is ample for 1e-9 relative
/// accuracy on these smooth curves).
[[nodiscard]] double payment(std::span<const double> bids, double phi,
                             std::size_t agent,
                             std::size_t quad_points = 512);

/// Everything about one computer's outcome under a bid vector.
struct AgentOutcome {
  double work = 0.0;     ///< assigned arrival rate w_i(b)
  double payment = 0.0;  ///< P_i(b)
  /// Profit given the agent's *true* cost parameter (1/true rate).
  [[nodiscard]] double profit(double true_cost) const noexcept {
    return payment - true_cost * work;
  }
};

/// Computes work + payment for one agent.
[[nodiscard]] AgentOutcome evaluate_agent(std::span<const double> bids,
                                          double phi, std::size_t agent,
                                          std::size_t quad_points = 512);

/// Truthfulness probe: the agent's best profit over a multiplicative
/// misreport grid, relative to its truthful profit. A (numerically)
/// truthful mechanism returns <= ~0; used by tests and the bench.
/// `factors` are multipliers applied to the true cost.
[[nodiscard]] double best_misreport_gain(std::span<const double> true_costs,
                                         double phi, std::size_t agent,
                                         std::span<const double> factors);

}  // namespace nashlb::mechanism
