// Confidence intervals for replicated simulation output.
//
// §4.1: "Each run was replicated five times with different random number
// streams ... The standard error is less than 5% at the 95% confidence
// level." With R replications the across-replication mean gets a
// Student-t interval with R-1 degrees of freedom; this module supplies the
// t quantile (computed, not tabulated, so any R works) and the interval.
#pragma once

#include <cstdint>
#include <vector>

namespace nashlb::stats {

/// Regularized incomplete beta function I_x(a, b), via the Lentz continued
/// fraction. Accurate to ~1e-12 over the parameter ranges used here.
[[nodiscard]] double incomplete_beta(double a, double b, double x);

/// CDF of Student's t distribution with `dof` degrees of freedom.
[[nodiscard]] double student_t_cdf(double t, double dof);

/// Two-sided critical value t* with P(|T| <= t*) = `confidence`
/// (e.g. confidence = 0.95). `dof` >= 1. Computed by bisection on the CDF.
[[nodiscard]] double student_t_critical(double confidence, double dof);

/// A two-sided confidence interval for a mean.
struct ConfidenceInterval {
  double mean = 0.0;
  double half_width = 0.0;      ///< t* · s/sqrt(R)
  double confidence = 0.0;      ///< e.g. 0.95

  [[nodiscard]] double lower() const noexcept { return mean - half_width; }
  [[nodiscard]] double upper() const noexcept { return mean + half_width; }

  /// True if `value` lies inside the interval.
  [[nodiscard]] bool contains(double value) const noexcept {
    return value >= lower() && value <= upper();
  }

  /// Relative half width |half_width / mean| (the paper's "standard error
  /// less than 5%" criterion); returns +inf when mean == 0.
  [[nodiscard]] double relative_half_width() const noexcept;
};

/// Builds a Student-t interval from per-replication means.
/// Requires at least two samples; throws std::invalid_argument otherwise.
[[nodiscard]] ConfidenceInterval t_interval(
    const std::vector<double>& replication_means, double confidence = 0.95);

}  // namespace nashlb::stats
