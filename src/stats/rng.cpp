#include "stats/rng.hpp"

namespace nashlb::stats {
namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

std::uint64_t splitmix64_next(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

Xoshiro256::Xoshiro256(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& word : state_) word = splitmix64_next(sm);
  // All-zero state is the one invalid xoshiro state; SplitMix64 cannot
  // produce four consecutive zeros, but guard against hostile seeds anyway.
  if (state_[0] == 0 && state_[1] == 0 && state_[2] == 0 && state_[3] == 0) {
    state_[0] = 0x9e3779b97f4a7c15ULL;
  }
}

Xoshiro256::result_type Xoshiro256::operator()() noexcept {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

void Xoshiro256::jump() noexcept {
  static constexpr std::uint64_t kJump[] = {
      0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL, 0xa9582618e03fc9aaULL,
      0x39abdc4529b1661cULL};
  std::array<std::uint64_t, 4> acc{0, 0, 0, 0};
  for (std::uint64_t word : kJump) {
    for (int b = 0; b < 64; ++b) {
      if (word & (std::uint64_t{1} << b)) {
        for (std::size_t i = 0; i < 4; ++i) acc[i] ^= state_[i];
      }
      (*this)();
    }
  }
  state_ = acc;
}

double Xoshiro256::next_double() noexcept {
  // Top 53 bits -> [0, 1) with full double precision.
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Xoshiro256::next_double_open() noexcept {
  // (0, 1]: complement of [0, 1). Guarantees log() never sees zero.
  return 1.0 - next_double();
}

std::uint64_t Xoshiro256::next_below(std::uint64_t bound) noexcept {
  if (bound <= 1) return 0;
  // Rejection sampling on the top bits: unbiased for any bound.
  const std::uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    const std::uint64_t r = (*this)();
    if (r >= threshold) return r % bound;
  }
}

Xoshiro256 RngStreams::stream(std::uint64_t id) const noexcept {
  // Mix the id into the seed so nearby ids are decorrelated, then jump once
  // per id as a belt-and-braces guarantee of non-overlap for small ids.
  std::uint64_t sm = master_seed_;
  (void)splitmix64_next(sm);
  sm ^= id * 0xda942042e4dd58b5ULL;
  Xoshiro256 g(splitmix64_next(sm));
  for (std::uint64_t i = 0; i < (id & 0xff); ++i) g.jump();
  return g;
}

Xoshiro256 RngStreams::stream(std::uint64_t replication,
                              std::uint64_t source) const noexcept {
  return stream(replication * 0x10001ULL + source);
}

}  // namespace nashlb::stats
