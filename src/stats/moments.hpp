// Online sample statistics (Welford) and time-weighted averages.
//
// Response-time samples stream out of the simulator one job at a time and a
// single run generates millions of them (§4.1: "1 to 2 millions jobs
// typically"); Welford's update keeps the mean/variance numerically stable
// without storing the samples.
#pragma once

#include <cstddef>
#include <cstdint>

namespace nashlb::stats {

/// Streaming mean/variance accumulator (Welford's algorithm).
class RunningStats {
 public:
  /// Folds one observation into the accumulator.
  void add(double x) noexcept;

  /// Merges another accumulator (Chan et al. parallel combination), so
  /// per-thread statistics can be reduced after a parallel sweep.
  void merge(const RunningStats& other) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }

  /// Unbiased sample variance; 0 for fewer than two samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;

  /// Standard error of the mean: stddev / sqrt(n); 0 for n < 2.
  [[nodiscard]] double std_error() const noexcept;

  [[nodiscard]] double min() const noexcept { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return n_ ? max_ : 0.0; }
  [[nodiscard]] double sum() const noexcept { return mean_ * static_cast<double>(n_); }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Time-weighted average of a piecewise-constant signal, e.g. queue length
/// or number-in-system. Call `update(t, v)` whenever the signal changes to
/// value `v` at time `t`; `average(t_end)` integrates up to `t_end`.
class TimeWeighted {
 public:
  explicit TimeWeighted(double t0 = 0.0, double v0 = 0.0) noexcept
      : last_t_(t0), value_(v0) {}

  /// Records that the signal takes value `v` from time `t` on.
  /// `t` must be non-decreasing across calls.
  void update(double t, double v) noexcept;

  /// Time average over [t0, t_end]. Returns 0 for an empty interval.
  [[nodiscard]] double average(double t_end) const noexcept;

  [[nodiscard]] double current() const noexcept { return value_; }

 private:
  double last_t_;
  double value_;
  double integral_ = 0.0;
  double start_t_ = last_t_;
};

}  // namespace nashlb::stats
