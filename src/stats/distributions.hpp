// Sampling distributions used by the M/M/1 simulation model.
//
// The paper's model needs exactly two stochastic primitives — exponential
// inter-arrival/service times (M/M/1, Kleinrock [9]) and a categorical
// draw over computers with probabilities given by a user's strategy vector.
// The categorical sampler uses Walker's alias method so dispatching a job
// costs O(1) regardless of the number of computers.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "stats/rng.hpp"

namespace nashlb::stats {

/// Exponential(rate) sampler via inversion: -log(U)/rate with U in (0,1].
class Exponential {
 public:
  /// `rate` must be strictly positive; throws std::invalid_argument else.
  explicit Exponential(double rate);

  /// Draws one variate (always finite and > 0).
  [[nodiscard]] double sample(Xoshiro256& rng) const noexcept;

  [[nodiscard]] double rate() const noexcept { return rate_; }
  [[nodiscard]] double mean() const noexcept { return 1.0 / rate_; }

 private:
  double rate_;
};

/// Uniform(lo, hi) sampler; requires lo < hi.
class Uniform {
 public:
  Uniform(double lo, double hi);
  [[nodiscard]] double sample(Xoshiro256& rng) const noexcept;
  [[nodiscard]] double mean() const noexcept { return 0.5 * (lo_ + hi_); }

 private:
  double lo_;
  double hi_;
};

/// Normal(mean, stddev) sampler via Box–Muller (both variates used).
/// Used by the uncertainty extension (noisy run-queue estimates, A6).
class Normal {
 public:
  /// `stddev` must be >= 0; throws std::invalid_argument else.
  Normal(double mean, double stddev);
  [[nodiscard]] double sample(Xoshiro256& rng) const noexcept;
  [[nodiscard]] double mean() const noexcept { return mean_; }
  [[nodiscard]] double stddev() const noexcept { return stddev_; }

 private:
  double mean_;
  double stddev_;
  mutable bool have_spare_ = false;
  mutable double spare_ = 0.0;
};

/// Categorical distribution over {0..n-1} with O(1) sampling
/// (Walker/Vose alias method).
///
/// Weights need not be normalized; they must be non-negative, finite, and
/// sum to something positive. Entries with zero weight are never drawn.
class Discrete {
 public:
  /// Builds the alias table in O(n). Throws std::invalid_argument on
  /// negative/non-finite weights or an all-zero weight vector.
  explicit Discrete(std::span<const double> weights);

  /// Draws an index in [0, size()). O(1).
  [[nodiscard]] std::size_t sample(Xoshiro256& rng) const noexcept;

  /// Normalized probability of index `i` (for verification/tests).
  [[nodiscard]] double probability(std::size_t i) const;

  [[nodiscard]] std::size_t size() const noexcept { return prob_.size(); }

 private:
  std::vector<double> prob_;   // alias-table acceptance probabilities
  std::vector<std::size_t> alias_;
  std::vector<double> norm_;   // normalized input weights
};

}  // namespace nashlb::stats
