#include "stats/confidence.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace nashlb::stats {
namespace {

// Continued-fraction core of the incomplete beta (Numerical-Recipes-style
// modified Lentz iteration).
double beta_cf(double a, double b, double x) {
  constexpr int kMaxIter = 300;
  constexpr double kEps = 3e-14;
  constexpr double kTiny = 1e-300;

  const double qab = a + b;
  const double qap = a + 1.0;
  const double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::fabs(d) < kTiny) d = kTiny;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= kMaxIter; ++m) {
    const double m2 = 2.0 * m;
    double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < kEps) break;
  }
  return h;
}

}  // namespace

double incomplete_beta(double a, double b, double x) {
  if (!(a > 0.0) || !(b > 0.0)) {
    throw std::invalid_argument("incomplete_beta: a, b must be > 0");
  }
  if (x <= 0.0) return 0.0;
  if (x >= 1.0) return 1.0;
  const double ln_front = std::lgamma(a + b) - std::lgamma(a) -
                          std::lgamma(b) + a * std::log(x) +
                          b * std::log1p(-x);
  const double front = std::exp(ln_front);
  // Use the symmetry that keeps the continued fraction rapidly convergent.
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return front * beta_cf(a, b, x) / a;
  }
  return 1.0 - front * beta_cf(b, a, 1.0 - x) / b;
}

double student_t_cdf(double t, double dof) {
  if (!(dof > 0.0)) {
    throw std::invalid_argument("student_t_cdf: dof must be > 0");
  }
  if (t == 0.0) return 0.5;
  const double x = dof / (dof + t * t);
  const double p = 0.5 * incomplete_beta(0.5 * dof, 0.5, x);
  return t > 0.0 ? 1.0 - p : p;
}

double student_t_critical(double confidence, double dof) {
  if (!(confidence > 0.0) || !(confidence < 1.0)) {
    throw std::invalid_argument(
        "student_t_critical: confidence must be in (0, 1)");
  }
  if (!(dof >= 1.0)) {
    throw std::invalid_argument("student_t_critical: dof must be >= 1");
  }
  const double target = 0.5 + 0.5 * confidence;  // upper-tail CDF value
  double lo = 0.0;
  double hi = 1.0;
  while (student_t_cdf(hi, dof) < target) hi *= 2.0;  // bracket
  for (int i = 0; i < 200; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (student_t_cdf(mid, dof) < target) {
      lo = mid;
    } else {
      hi = mid;
    }
    if (hi - lo < 1e-12 * (1.0 + hi)) break;
  }
  return 0.5 * (lo + hi);
}

double ConfidenceInterval::relative_half_width() const noexcept {
  if (mean == 0.0) return std::numeric_limits<double>::infinity();
  return std::fabs(half_width / mean);
}

ConfidenceInterval t_interval(const std::vector<double>& replication_means,
                              double confidence) {
  const std::size_t r = replication_means.size();
  if (r < 2) {
    throw std::invalid_argument("t_interval: need at least two replications");
  }
  double mean = 0.0;
  for (double v : replication_means) mean += v;
  mean /= static_cast<double>(r);
  double ss = 0.0;
  for (double v : replication_means) ss += (v - mean) * (v - mean);
  const double sample_sd = std::sqrt(ss / static_cast<double>(r - 1));
  const double tstar =
      student_t_critical(confidence, static_cast<double>(r - 1));
  ConfidenceInterval ci;
  ci.mean = mean;
  ci.half_width = tstar * sample_sd / std::sqrt(static_cast<double>(r));
  ci.confidence = confidence;
  return ci;
}

}  // namespace nashlb::stats
