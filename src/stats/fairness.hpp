// Jain's fairness index (Jain, Chiu & Hawe, DEC-TR-301, 1984).
//
// The paper uses I(D) = (sum_j D_j)^2 / (m * sum_j D_j^2) over the vector
// of per-user expected response times to quantify how evenly a load
// balancing scheme treats users: 1 means perfectly fair, 1/m means one
// user gets everything.
#pragma once

#include <span>

namespace nashlb::stats {

/// Jain's fairness index of a non-negative vector.
///
/// Returns 1.0 for an empty or all-zero vector (a degenerate allocation is
/// vacuously fair — this matches the paper's convention that PS, which
/// assigns identical response times, has index exactly 1).
/// Throws std::invalid_argument if any entry is negative or non-finite.
[[nodiscard]] double fairness_index(std::span<const double> values);

}  // namespace nashlb::stats
