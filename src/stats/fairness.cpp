#include "stats/fairness.hpp"

#include <cmath>
#include <stdexcept>

namespace nashlb::stats {

double fairness_index(std::span<const double> values) {
  if (values.empty()) return 1.0;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (double v : values) {
    if (!(v >= 0.0) || !std::isfinite(v)) {
      throw std::invalid_argument(
          "fairness_index: values must be finite and non-negative");
    }
    sum += v;
    sum_sq += v * v;
  }
  if (sum_sq == 0.0) return 1.0;
  return (sum * sum) / (static_cast<double>(values.size()) * sum_sq);
}

}  // namespace nashlb::stats
