// Deterministic, multi-stream pseudo-random number generation.
//
// The paper's simulation methodology (§4.1) replicates every run five times
// "with different random number streams". This module provides the stream
// discipline: a master seed plus a stream id always yields the same
// statistically independent generator, so experiments are reproducible
// bit-for-bit across machines while replications stay uncorrelated.
//
// Engine: xoshiro256** (Blackman & Vigna), seeded through SplitMix64 as its
// authors recommend. Streams are separated with xoshiro's jump() function,
// which advances the state by 2^128 steps — far more than any simulation
// consumes — guaranteeing non-overlapping subsequences.
#pragma once

#include <array>
#include <cstdint>
#include <limits>

namespace nashlb::stats {

/// SplitMix64 step: used for seeding and as a cheap stateless mixer.
/// Advances `state` and returns the next 64-bit output.
[[nodiscard]] std::uint64_t splitmix64_next(std::uint64_t& state) noexcept;

/// xoshiro256** engine. Satisfies std::uniform_random_bit_generator, so it
/// plugs into <random> distributions, but the simulator uses the native
/// helpers below for cross-platform determinism (libstdc++/libc++ disagree
/// on distribution algorithms; our helpers do not).
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four state words via SplitMix64 from a single 64-bit seed.
  explicit Xoshiro256(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  /// Next raw 64-bit output.
  result_type operator()() noexcept;

  /// Advances the state by 2^128 outputs (used to derive disjoint streams).
  void jump() noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  /// Uniform double in [0, 1) with 53 random mantissa bits.
  [[nodiscard]] double next_double() noexcept;

  /// Uniform double in (0, 1] — never zero, safe as a log() argument.
  [[nodiscard]] double next_double_open() noexcept;

  /// Uniform integer in [0, bound). Unbiased (Lemire-style rejection).
  [[nodiscard]] std::uint64_t next_below(std::uint64_t bound) noexcept;

  friend bool operator==(const Xoshiro256& a, const Xoshiro256& b) noexcept {
    return a.state_ == b.state_;
  }

 private:
  std::array<std::uint64_t, 4> state_;
};

/// Factory for independent random streams derived from one master seed.
///
/// `stream(i)` is deterministic in (master_seed, i) and the streams for
/// distinct ids are non-overlapping subsequences of the xoshiro orbit.
/// Conventionally: stream ids encode (replication, source) pairs so every
/// stochastic source in the simulation has its own stream.
class RngStreams {
 public:
  explicit RngStreams(std::uint64_t master_seed) noexcept
      : master_seed_(master_seed) {}

  /// Returns the generator for stream `id`.
  [[nodiscard]] Xoshiro256 stream(std::uint64_t id) const noexcept;

  /// Convenience encoding of a (replication, source) stream id.
  [[nodiscard]] Xoshiro256 stream(std::uint64_t replication,
                                  std::uint64_t source) const noexcept;

  [[nodiscard]] std::uint64_t master_seed() const noexcept {
    return master_seed_;
  }

 private:
  std::uint64_t master_seed_;
};

}  // namespace nashlb::stats
