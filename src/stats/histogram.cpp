#include "stats/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace nashlb::stats {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), bin_width_((hi - lo) / static_cast<double>(bins)) {
  if (!(lo < hi) || bins == 0) {
    throw std::invalid_argument("Histogram: need lo < hi and bins >= 1");
  }
  counts_.assign(bins, 0);
}

void Histogram::add(double x) noexcept {
  ++total_;
  if (x < lo_) {
    ++under_;
  } else if (x >= hi_) {
    ++over_;
  } else {
    auto bin = static_cast<std::size_t>((x - lo_) / bin_width_);
    bin = std::min(bin, counts_.size() - 1);  // guard fp edge at hi_
    ++counts_[bin];
  }
}

std::uint64_t Histogram::count(std::size_t bin) const {
  if (bin >= counts_.size()) {
    throw std::out_of_range("Histogram::count: bin out of range");
  }
  return counts_[bin];
}

std::pair<double, double> Histogram::bin_edges(std::size_t bin) const {
  if (bin >= counts_.size()) {
    throw std::out_of_range("Histogram::bin_edges: bin out of range");
  }
  const double left = lo_ + bin_width_ * static_cast<double>(bin);
  return {left, left + bin_width_};
}

double Histogram::fraction(std::size_t bin) const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(count(bin)) / static_cast<double>(total_);
}

std::string Histogram::ascii(std::size_t max_width) const {
  std::uint64_t peak = 1;
  for (std::uint64_t c : counts_) peak = std::max(peak, c);
  std::string out;
  char line[160];
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const auto [left, right] = bin_edges(i);
    const auto bar_len = static_cast<std::size_t>(
        static_cast<double>(counts_[i]) / static_cast<double>(peak) *
        static_cast<double>(max_width));
    std::snprintf(line, sizeof line, "[%9.4f, %9.4f) %8llu ", left, right,
                  static_cast<unsigned long long>(counts_[i]));
    out += line;
    out.append(bar_len, '#');
    out += '\n';
  }
  return out;
}

}  // namespace nashlb::stats
