#include "stats/batch_means.hpp"

#include <stdexcept>

namespace nashlb::stats {

BatchMeans::BatchMeans(std::uint64_t batch_size) : batch_size_(batch_size) {
  if (batch_size == 0) {
    throw std::invalid_argument("BatchMeans: batch_size must be >= 1");
  }
}

void BatchMeans::add(double x) {
  ++count_;
  current_sum_ += x;
  if (++current_n_ == batch_size_) {
    means_.push_back(current_sum_ / static_cast<double>(batch_size_));
    current_sum_ = 0.0;
    current_n_ = 0;
  }
}

double BatchMeans::mean() const noexcept {
  if (means_.empty()) return 0.0;
  double total = 0.0;
  for (double m : means_) total += m;
  return total / static_cast<double>(means_.size());
}

ConfidenceInterval BatchMeans::interval(double confidence) const {
  return t_interval(means_, confidence);
}

double BatchMeans::lag1_autocorrelation() const noexcept {
  const std::size_t k = means_.size();
  if (k < 3) return 0.0;
  const double grand = mean();
  double num = 0.0;
  double den = 0.0;
  for (std::size_t i = 0; i < k; ++i) {
    const double d = means_[i] - grand;
    den += d * d;
    if (i + 1 < k) {
      num += d * (means_[i + 1] - grand);
    }
  }
  if (den == 0.0) return 0.0;
  return num / den;
}

}  // namespace nashlb::stats
