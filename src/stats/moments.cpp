#include "stats/moments.hpp"

#include <algorithm>
#include <cmath>

namespace nashlb::stats {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double n_total = na + nb;
  mean_ += delta * nb / n_total;
  m2_ += other.m2_ + delta * delta * na * nb / n_total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const noexcept {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double RunningStats::std_error() const noexcept {
  if (n_ < 2) return 0.0;
  return stddev() / std::sqrt(static_cast<double>(n_));
}

void TimeWeighted::update(double t, double v) noexcept {
  if (t > last_t_) {
    integral_ += value_ * (t - last_t_);
    last_t_ = t;
  }
  value_ = v;
}

double TimeWeighted::average(double t_end) const noexcept {
  const double span = t_end - start_t_;
  if (!(span > 0.0)) return 0.0;
  double integral = integral_;
  if (t_end > last_t_) integral += value_ * (t_end - last_t_);
  return integral / span;
}

}  // namespace nashlb::stats
