// Batch-means output analysis: confidence intervals from a single long
// simulation run.
//
// The paper uses independent replications (§4.1); the classic alternative
// for steady-state simulation is the method of batch means — split one
// long post-warm-up observation stream into k contiguous batches whose
// means are approximately i.i.d. normal, then apply the Student-t
// interval. The simmodel exposes both so users can cross-check; the
// integration tests verify the two methods agree on the M/M/1 farm.
#pragma once

#include <cstdint>
#include <vector>

#include "stats/confidence.hpp"

namespace nashlb::stats {

/// Online batch-means accumulator with a fixed batch size.
///
/// Observations stream in via add(); every `batch_size` consecutive
/// observations form one batch whose mean is recorded. The trailing
/// partial batch is excluded from the interval (standard practice — a
/// short batch would be over-weighted).
class BatchMeans {
 public:
  /// `batch_size >= 1`; throws std::invalid_argument otherwise.
  explicit BatchMeans(std::uint64_t batch_size);

  /// Folds one observation into the current batch.
  void add(double x);

  [[nodiscard]] std::uint64_t batch_size() const noexcept {
    return batch_size_;
  }
  /// Number of completed batches so far.
  [[nodiscard]] std::size_t batch_count() const noexcept {
    return means_.size();
  }
  /// Total observations consumed (including the partial batch).
  [[nodiscard]] std::uint64_t observations() const noexcept { return count_; }

  /// Means of the completed batches, in order.
  [[nodiscard]] const std::vector<double>& batch_means() const noexcept {
    return means_;
  }

  /// Grand mean over completed batches (0 when none).
  [[nodiscard]] double mean() const noexcept;

  /// Student-t interval over the completed batch means. Requires at
  /// least two completed batches; throws std::invalid_argument otherwise.
  [[nodiscard]] ConfidenceInterval interval(double confidence = 0.95) const;

  /// Lag-1 autocorrelation of the batch means — the standard diagnostic
  /// for "are my batches long enough?" (should be near 0). Returns 0
  /// when fewer than 3 batches exist.
  [[nodiscard]] double lag1_autocorrelation() const noexcept;

 private:
  std::uint64_t batch_size_;
  std::uint64_t count_ = 0;
  double current_sum_ = 0.0;
  std::uint64_t current_n_ = 0;
  std::vector<double> means_;
};

}  // namespace nashlb::stats
