#include "stats/distributions.hpp"

#include <cmath>
#include <numeric>
#include <stdexcept>

namespace nashlb::stats {

Exponential::Exponential(double rate) : rate_(rate) {
  if (!(rate > 0.0) || !std::isfinite(rate)) {
    throw std::invalid_argument("Exponential: rate must be finite and > 0");
  }
}

double Exponential::sample(Xoshiro256& rng) const noexcept {
  return -std::log(rng.next_double_open()) / rate_;
}

Uniform::Uniform(double lo, double hi) : lo_(lo), hi_(hi) {
  if (!(lo < hi) || !std::isfinite(lo) || !std::isfinite(hi)) {
    throw std::invalid_argument("Uniform: need finite lo < hi");
  }
}

double Uniform::sample(Xoshiro256& rng) const noexcept {
  return lo_ + (hi_ - lo_) * rng.next_double();
}

Normal::Normal(double mean, double stddev) : mean_(mean), stddev_(stddev) {
  if (!(stddev >= 0.0) || !std::isfinite(stddev) || !std::isfinite(mean)) {
    throw std::invalid_argument("Normal: need finite mean and stddev >= 0");
  }
}

double Normal::sample(Xoshiro256& rng) const noexcept {
  if (have_spare_) {
    have_spare_ = false;
    return mean_ + stddev_ * spare_;
  }
  const double u1 = rng.next_double_open();
  const double u2 = rng.next_double();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * 3.14159265358979323846 * u2;
  spare_ = r * std::sin(theta);
  have_spare_ = true;
  return mean_ + stddev_ * r * std::cos(theta);
}

Discrete::Discrete(std::span<const double> weights) {
  if (weights.empty()) {
    throw std::invalid_argument("Discrete: empty weight vector");
  }
  double total = 0.0;
  for (double w : weights) {
    if (!(w >= 0.0) || !std::isfinite(w)) {
      throw std::invalid_argument(
          "Discrete: weights must be finite and non-negative");
    }
    total += w;
  }
  if (!(total > 0.0)) {
    throw std::invalid_argument("Discrete: weights sum to zero");
  }

  const std::size_t n = weights.size();
  norm_.resize(n);
  for (std::size_t i = 0; i < n; ++i) norm_[i] = weights[i] / total;

  // Vose's stable alias-table construction.
  prob_.assign(n, 0.0);
  alias_.assign(n, 0);
  std::vector<double> scaled(n);
  for (std::size_t i = 0; i < n; ++i) {
    scaled[i] = norm_[i] * static_cast<double>(n);
  }
  std::vector<std::size_t> small, large;
  small.reserve(n);
  large.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(i);
  }
  while (!small.empty() && !large.empty()) {
    const std::size_t s = small.back();
    small.pop_back();
    const std::size_t l = large.back();
    large.pop_back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    (scaled[l] < 1.0 ? small : large).push_back(l);
  }
  // Numerical leftovers: both queues drain to probability-1 cells.
  for (std::size_t i : large) prob_[i] = 1.0;
  for (std::size_t i : small) prob_[i] = 1.0;
}

std::size_t Discrete::sample(Xoshiro256& rng) const noexcept {
  const std::size_t col = static_cast<std::size_t>(
      rng.next_below(static_cast<std::uint64_t>(prob_.size())));
  return rng.next_double() < prob_[col] ? col : alias_[col];
}

double Discrete::probability(std::size_t i) const {
  if (i >= norm_.size()) {
    throw std::out_of_range("Discrete::probability: index out of range");
  }
  return norm_[i];
}

}  // namespace nashlb::stats
