// Fixed-bin histogram for response-time distributions.
//
// Not required to regenerate the paper's figures (those report means), but
// the examples use it to show users *distributional* consequences of a
// scheme choice, and the simulator's self-tests compare empirical
// exponential histograms against theory.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace nashlb::stats {

/// Equal-width histogram over [lo, hi) with overflow/underflow counters.
class Histogram {
 public:
  /// Throws std::invalid_argument unless lo < hi and bins >= 1.
  Histogram(double lo, double hi, std::size_t bins);

  /// Adds one observation (routed to underflow/overflow when outside).
  void add(double x) noexcept;

  [[nodiscard]] std::size_t bin_count() const noexcept {
    return counts_.size();
  }
  [[nodiscard]] std::uint64_t count(std::size_t bin) const;
  [[nodiscard]] std::uint64_t underflow() const noexcept { return under_; }
  [[nodiscard]] std::uint64_t overflow() const noexcept { return over_; }
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }

  /// [left, right) edges of bin `i`.
  [[nodiscard]] std::pair<double, double> bin_edges(std::size_t bin) const;

  /// Fraction of all observations (incl. under/overflow) in bin `i`.
  [[nodiscard]] double fraction(std::size_t bin) const;

  /// Crude terminal rendering: one line per bin with a bar of '#'.
  [[nodiscard]] std::string ascii(std::size_t max_width = 50) const;

 private:
  double lo_;
  double hi_;
  double bin_width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t under_ = 0;
  std::uint64_t over_ = 0;
  std::uint64_t total_ = 0;
};

}  // namespace nashlb::stats
