#include "stats/batch_means.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "stats/rng.hpp"

namespace nashlb::stats {
namespace {

TEST(BatchMeans, RejectsZeroBatchSize) {
  EXPECT_THROW(BatchMeans(0), std::invalid_argument);
}

TEST(BatchMeans, CompletesBatchesAtExactBoundaries) {
  BatchMeans bm(3);
  bm.add(1.0);
  bm.add(2.0);
  EXPECT_EQ(bm.batch_count(), 0u);
  bm.add(3.0);  // first batch complete: mean 2
  EXPECT_EQ(bm.batch_count(), 1u);
  EXPECT_DOUBLE_EQ(bm.batch_means()[0], 2.0);
  bm.add(10.0);
  EXPECT_EQ(bm.batch_count(), 1u);  // partial batch excluded
  EXPECT_EQ(bm.observations(), 4u);
}

TEST(BatchMeans, GrandMeanOverCompleteBatches) {
  BatchMeans bm(2);
  bm.add(1.0);
  bm.add(3.0);  // batch mean 2
  bm.add(5.0);
  bm.add(7.0);  // batch mean 6
  bm.add(100.0);  // partial, ignored
  EXPECT_DOUBLE_EQ(bm.mean(), 4.0);
}

TEST(BatchMeans, IntervalNeedsTwoBatches) {
  BatchMeans bm(2);
  bm.add(1.0);
  bm.add(1.0);
  EXPECT_THROW((void)bm.interval(), std::invalid_argument);
  bm.add(2.0);
  bm.add(2.0);
  const ConfidenceInterval ci = bm.interval(0.95);
  EXPECT_DOUBLE_EQ(ci.mean, 1.5);
  EXPECT_GT(ci.half_width, 0.0);
}

TEST(BatchMeans, IidStreamCoversTrueMean) {
  // Exponential(2) stream: mean 0.5. 40 batches of 500 samples; the 95%
  // interval should contain 0.5 (checked at a single seed — this is a
  // deterministic regression, not a statistical assertion).
  stats::Xoshiro256 rng(99);
  BatchMeans bm(500);
  for (int i = 0; i < 20000; ++i) {
    bm.add(-0.5 * std::log(rng.next_double_open()));
  }
  EXPECT_EQ(bm.batch_count(), 40u);
  const ConfidenceInterval ci = bm.interval(0.95);
  EXPECT_TRUE(ci.contains(0.5)) << ci.mean << " +/- " << ci.half_width;
  EXPECT_LT(ci.relative_half_width(), 0.05);
}

TEST(BatchMeans, Lag1AutocorrelationNearZeroForIid) {
  stats::Xoshiro256 rng(7);
  BatchMeans bm(100);
  for (int i = 0; i < 10000; ++i) bm.add(rng.next_double());
  EXPECT_LT(std::fabs(bm.lag1_autocorrelation()), 0.3);
}

TEST(BatchMeans, Lag1AutocorrelationDetectsTrend) {
  BatchMeans bm(10);
  for (int i = 0; i < 1000; ++i) bm.add(static_cast<double>(i));
  EXPECT_GT(bm.lag1_autocorrelation(), 0.9);  // strongly correlated
}

TEST(BatchMeans, FewBatchesAutocorrelationIsZero) {
  BatchMeans bm(1);
  bm.add(1.0);
  bm.add(2.0);
  EXPECT_DOUBLE_EQ(bm.lag1_autocorrelation(), 0.0);
}

}  // namespace
}  // namespace nashlb::stats
