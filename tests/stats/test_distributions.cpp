#include "stats/distributions.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <stdexcept>
#include <vector>

namespace nashlb::stats {
namespace {

TEST(Exponential, RejectsBadRate) {
  EXPECT_THROW(Exponential(0.0), std::invalid_argument);
  EXPECT_THROW(Exponential(-1.0), std::invalid_argument);
  EXPECT_THROW(Exponential(std::nan("")), std::invalid_argument);
}

TEST(Exponential, SampleMeanMatchesTheory) {
  const Exponential d(4.0);
  Xoshiro256 rng(1);
  double sum = 0.0;
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) sum += d.sample(rng);
  EXPECT_NEAR(sum / kN, 0.25, 0.01);
}

TEST(Exponential, SamplesArePositive) {
  const Exponential d(2.0);
  Xoshiro256 rng(2);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_GT(d.sample(rng), 0.0);
  }
}

TEST(Exponential, TailProbabilityMatchesTheory) {
  // P(X > 1/rate) = 1/e.
  const Exponential d(3.0);
  Xoshiro256 rng(3);
  int over = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    if (d.sample(rng) > 1.0 / 3.0) ++over;
  }
  EXPECT_NEAR(static_cast<double>(over) / kN, std::exp(-1.0), 0.01);
}

TEST(Uniform, RejectsBadRange) {
  EXPECT_THROW(Uniform(1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(Uniform(2.0, 1.0), std::invalid_argument);
}

TEST(Uniform, SamplesInRangeWithCorrectMean) {
  const Uniform d(-2.0, 6.0);
  Xoshiro256 rng(4);
  double sum = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    const double x = d.sample(rng);
    EXPECT_GE(x, -2.0);
    EXPECT_LT(x, 6.0);
    sum += x;
  }
  EXPECT_NEAR(sum / kN, 2.0, 0.05);
}

TEST(Normal, RejectsBadParams) {
  EXPECT_THROW(Normal(0.0, -1.0), std::invalid_argument);
  EXPECT_THROW(Normal(std::nan(""), 1.0), std::invalid_argument);
}

TEST(Normal, MomentsMatchTheory) {
  const Normal d(3.0, 2.0);
  Xoshiro256 rng(5);
  double sum = 0.0, sum_sq = 0.0;
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) {
    const double x = d.sample(rng);
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / kN;
  const double var = sum_sq / kN - mean * mean;
  EXPECT_NEAR(mean, 3.0, 0.03);
  EXPECT_NEAR(var, 4.0, 0.1);
}

TEST(Normal, ZeroSigmaIsDegenerate) {
  const Normal d(1.5, 0.0);
  Xoshiro256 rng(6);
  for (int i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(d.sample(rng), 1.5);
  }
}

TEST(Discrete, RejectsBadWeights) {
  EXPECT_THROW(Discrete(std::vector<double>{}), std::invalid_argument);
  EXPECT_THROW(Discrete(std::vector<double>{0.0, 0.0}),
               std::invalid_argument);
  EXPECT_THROW(Discrete(std::vector<double>{1.0, -0.5}),
               std::invalid_argument);
}

TEST(Discrete, NormalizesProbabilities) {
  const Discrete d(std::vector<double>{2.0, 6.0});
  EXPECT_NEAR(d.probability(0), 0.25, 1e-12);
  EXPECT_NEAR(d.probability(1), 0.75, 1e-12);
  EXPECT_THROW(static_cast<void>(d.probability(2)), std::out_of_range);
}

TEST(Discrete, ZeroWeightEntriesNeverDrawn) {
  const Discrete d(std::vector<double>{0.0, 1.0, 0.0, 1.0});
  Xoshiro256 rng(7);
  for (int i = 0; i < 20000; ++i) {
    const std::size_t k = d.sample(rng);
    EXPECT_TRUE(k == 1 || k == 3);
  }
}

TEST(Discrete, EmpiricalFrequenciesMatchWeights) {
  const std::vector<double> w{1.0, 2.0, 3.0, 4.0};
  const Discrete d(w);
  Xoshiro256 rng(8);
  std::array<int, 4> counts{};
  constexpr int kN = 400000;
  for (int i = 0; i < kN; ++i) ++counts[d.sample(rng)];
  for (std::size_t k = 0; k < 4; ++k) {
    EXPECT_NEAR(static_cast<double>(counts[k]) / kN, w[k] / 10.0, 0.005);
  }
}

TEST(Discrete, SingleOutcome) {
  const Discrete d(std::vector<double>{5.0});
  Xoshiro256 rng(9);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(d.sample(rng), 0u);
}

TEST(Discrete, ManyCategoriesStillExact) {
  // Alias table over 1000 uniform categories: each ~1/1000.
  std::vector<double> w(1000, 1.0);
  const Discrete d(w);
  Xoshiro256 rng(10);
  std::vector<int> counts(1000, 0);
  constexpr int kN = 1000000;
  for (int i = 0; i < kN; ++i) ++counts[d.sample(rng)];
  int min_c = counts[0], max_c = counts[0];
  for (int c : counts) {
    min_c = std::min(min_c, c);
    max_c = std::max(max_c, c);
  }
  EXPECT_GT(min_c, 700);   // E = 1000, sd ~ 32
  EXPECT_LT(max_c, 1300);
}

}  // namespace
}  // namespace nashlb::stats
