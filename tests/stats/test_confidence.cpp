#include "stats/confidence.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace nashlb::stats {
namespace {

TEST(IncompleteBeta, BoundaryValues) {
  EXPECT_DOUBLE_EQ(incomplete_beta(2.0, 3.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(incomplete_beta(2.0, 3.0, 1.0), 1.0);
}

TEST(IncompleteBeta, SymmetricCase) {
  // I_{1/2}(a, a) = 1/2 by symmetry.
  for (double a : {0.5, 1.0, 2.0, 7.5}) {
    EXPECT_NEAR(incomplete_beta(a, a, 0.5), 0.5, 1e-10);
  }
}

TEST(IncompleteBeta, UniformSpecialCase) {
  // I_x(1, 1) = x.
  for (double x : {0.1, 0.25, 0.9}) {
    EXPECT_NEAR(incomplete_beta(1.0, 1.0, x), x, 1e-12);
  }
}

TEST(IncompleteBeta, KnownValue) {
  // I_x(2, 2) = x^2 (3 - 2x).
  const double x = 0.3;
  EXPECT_NEAR(incomplete_beta(2.0, 2.0, x), x * x * (3 - 2 * x), 1e-12);
}

TEST(IncompleteBeta, RejectsBadParams) {
  EXPECT_THROW(static_cast<void>(incomplete_beta(0.0, 1.0, 0.5)), std::invalid_argument);
  EXPECT_THROW(static_cast<void>(incomplete_beta(1.0, -1.0, 0.5)), std::invalid_argument);
}

TEST(StudentT, CdfAtZeroIsHalf) {
  for (double dof : {1.0, 4.0, 30.0}) {
    EXPECT_NEAR(student_t_cdf(0.0, dof), 0.5, 1e-12);
  }
}

TEST(StudentT, CdfSymmetry) {
  EXPECT_NEAR(student_t_cdf(1.7, 6.0) + student_t_cdf(-1.7, 6.0), 1.0,
              1e-10);
}

TEST(StudentT, Dof1IsCauchy) {
  // t with 1 dof is Cauchy: CDF(t) = 1/2 + atan(t)/pi.
  const double t = 2.0;
  EXPECT_NEAR(student_t_cdf(t, 1.0),
              0.5 + std::atan(t) / 3.14159265358979323846, 1e-10);
}

TEST(StudentT, CriticalValuesMatchTables) {
  // Standard two-sided 95% critical values.
  EXPECT_NEAR(student_t_critical(0.95, 4.0), 2.776, 2e-3);   // R = 5
  EXPECT_NEAR(student_t_critical(0.95, 9.0), 2.262, 2e-3);
  EXPECT_NEAR(student_t_critical(0.95, 29.0), 2.045, 2e-3);
  EXPECT_NEAR(student_t_critical(0.99, 4.0), 4.604, 5e-3);
  EXPECT_NEAR(student_t_critical(0.90, 4.0), 2.132, 2e-3);
}

TEST(StudentT, CriticalApproachesNormalForLargeDof) {
  EXPECT_NEAR(student_t_critical(0.95, 10000.0), 1.960, 2e-3);
}

TEST(StudentT, RejectsBadInputs) {
  EXPECT_THROW(static_cast<void>(student_t_critical(0.0, 4.0)), std::invalid_argument);
  EXPECT_THROW(static_cast<void>(student_t_critical(1.0, 4.0)), std::invalid_argument);
  EXPECT_THROW(static_cast<void>(student_t_critical(0.95, 0.5)), std::invalid_argument);
  EXPECT_THROW(static_cast<void>(student_t_cdf(0.0, 0.0)), std::invalid_argument);
}

TEST(TInterval, FiveReplicationCase) {
  // The paper's setup: 5 replications -> 4 dof, t* = 2.776.
  const std::vector<double> reps{10.0, 11.0, 9.0, 10.5, 9.5};
  const ConfidenceInterval ci = t_interval(reps, 0.95);
  EXPECT_NEAR(ci.mean, 10.0, 1e-12);
  // s = sqrt(0.625), hw = 2.776 * s / sqrt(5)
  EXPECT_NEAR(ci.half_width, 2.776 * std::sqrt(0.625) / std::sqrt(5.0),
              2e-3);
  EXPECT_TRUE(ci.contains(10.0));
  EXPECT_FALSE(ci.contains(12.0));
  EXPECT_DOUBLE_EQ(ci.lower(), ci.mean - ci.half_width);
  EXPECT_DOUBLE_EQ(ci.upper(), ci.mean + ci.half_width);
}

TEST(TInterval, RelativeHalfWidth) {
  ConfidenceInterval ci;
  ci.mean = 10.0;
  ci.half_width = 0.4;
  EXPECT_NEAR(ci.relative_half_width(), 0.04, 1e-12);
  ci.mean = 0.0;
  EXPECT_TRUE(std::isinf(ci.relative_half_width()));
}

TEST(TInterval, RequiresTwoSamples) {
  EXPECT_THROW(static_cast<void>(t_interval({1.0})), std::invalid_argument);
  EXPECT_THROW(static_cast<void>(t_interval({})), std::invalid_argument);
}

TEST(TInterval, IdenticalSamplesZeroWidth) {
  const ConfidenceInterval ci = t_interval({2.0, 2.0, 2.0});
  EXPECT_DOUBLE_EQ(ci.mean, 2.0);
  EXPECT_DOUBLE_EQ(ci.half_width, 0.0);
}

}  // namespace
}  // namespace nashlb::stats
