#include "stats/moments.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace nashlb::stats {
namespace {

TEST(RunningStats, EmptyIsZero) {
  const RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.std_error(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(3.5);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.5);
}

TEST(RunningStats, MatchesDirectComputation) {
  const std::vector<double> xs{1.0, 2.0, 4.0, 8.0, 16.0};
  RunningStats s;
  for (double x : xs) s.add(x);
  EXPECT_EQ(s.count(), xs.size());
  EXPECT_DOUBLE_EQ(s.mean(), 6.2);
  // Unbiased variance: sum((x-6.2)^2)/4 = (27.04+17.64+4.84+3.24+96.04)/4
  EXPECT_NEAR(s.variance(), 37.2, 1e-12);
  EXPECT_NEAR(s.stddev(), std::sqrt(37.2), 1e-12);
  EXPECT_NEAR(s.std_error(), std::sqrt(37.2 / 5.0), 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 16.0);
  EXPECT_NEAR(s.sum(), 31.0, 1e-12);
}

TEST(RunningStats, NumericallyStableForLargeOffsets) {
  // Classic catastrophic-cancellation case: tiny variance on a huge mean.
  RunningStats s;
  const double base = 1e9;
  for (int i = 0; i < 1000; ++i) s.add(base + (i % 2 == 0 ? 0.5 : -0.5));
  EXPECT_NEAR(s.mean(), base, 1e-3);
  EXPECT_NEAR(s.variance(), 0.2502502502, 1e-4);
}

TEST(RunningStats, MergeEqualsSequential) {
  RunningStats a, b, all;
  for (int i = 0; i < 50; ++i) {
    const double x = 0.1 * i * i - 3.0 * i;
    (i < 20 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-10);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-8);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmptyIsIdentity) {
  RunningStats a, empty;
  a.add(1.0);
  a.add(2.0);
  const double mean_before = a.mean();
  a.merge(empty);
  EXPECT_DOUBLE_EQ(a.mean(), mean_before);
  EXPECT_EQ(a.count(), 2u);

  RunningStats c;
  c.merge(a);
  EXPECT_DOUBLE_EQ(c.mean(), a.mean());
  EXPECT_EQ(c.count(), 2u);
}

TEST(TimeWeighted, ConstantSignal) {
  TimeWeighted tw(0.0, 5.0);
  EXPECT_DOUBLE_EQ(tw.average(10.0), 5.0);
}

TEST(TimeWeighted, StepSignal) {
  TimeWeighted tw(0.0, 0.0);
  tw.update(2.0, 4.0);  // 0 on [0,2), 4 on [2,...)
  EXPECT_DOUBLE_EQ(tw.average(4.0), 2.0);  // (0*2 + 4*2)/4
}

TEST(TimeWeighted, MultipleSteps) {
  TimeWeighted tw(0.0, 1.0);
  tw.update(1.0, 2.0);
  tw.update(3.0, 0.0);
  // 1 on [0,1), 2 on [1,3), 0 on [3,5): (1 + 4 + 0)/5 = 1.
  EXPECT_DOUBLE_EQ(tw.average(5.0), 1.0);
}

TEST(TimeWeighted, EmptyIntervalIsZero) {
  TimeWeighted tw(2.0, 9.0);
  EXPECT_DOUBLE_EQ(tw.average(2.0), 0.0);
  EXPECT_DOUBLE_EQ(tw.average(1.0), 0.0);
}

TEST(TimeWeighted, CurrentTracksLastUpdate) {
  TimeWeighted tw;
  tw.update(1.0, 7.0);
  EXPECT_DOUBLE_EQ(tw.current(), 7.0);
}

TEST(TimeWeighted, NonZeroStartTime) {
  TimeWeighted tw(10.0, 3.0);
  tw.update(12.0, 6.0);
  // 3 on [10,12), 6 on [12,14): (6+12)/4 = 4.5.
  EXPECT_DOUBLE_EQ(tw.average(14.0), 4.5);
}

}  // namespace
}  // namespace nashlb::stats
