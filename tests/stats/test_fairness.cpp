#include "stats/fairness.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <stdexcept>
#include <vector>

namespace nashlb::stats {
namespace {

TEST(Fairness, EqualValuesAreFair) {
  const std::vector<double> v{3.0, 3.0, 3.0, 3.0};
  EXPECT_DOUBLE_EQ(fairness_index(v), 1.0);
}

TEST(Fairness, SingleValueIsFair) {
  const std::vector<double> v{42.0};
  EXPECT_DOUBLE_EQ(fairness_index(v), 1.0);
}

TEST(Fairness, OneUserTakesAllIsOneOverM) {
  const std::vector<double> v{7.0, 0.0, 0.0, 0.0, 0.0};
  EXPECT_NEAR(fairness_index(v), 0.2, 1e-12);
}

TEST(Fairness, KnownMixedVector) {
  // I = (1+2+3)^2 / (3 * (1+4+9)) = 36/42.
  const std::vector<double> v{1.0, 2.0, 3.0};
  EXPECT_NEAR(fairness_index(v), 36.0 / 42.0, 1e-12);
}

TEST(Fairness, ScaleInvariant) {
  const std::vector<double> v{1.0, 2.0, 5.0, 0.5};
  std::vector<double> scaled;
  for (double x : v) scaled.push_back(1000.0 * x);
  EXPECT_NEAR(fairness_index(v), fairness_index(scaled), 1e-12);
}

TEST(Fairness, BoundedBetweenOneOverMAndOne) {
  const std::vector<double> v{0.1, 0.7, 3.0, 9.0, 2.2};
  const double f = fairness_index(v);
  EXPECT_GE(f, 1.0 / 5.0);
  EXPECT_LE(f, 1.0);
}

TEST(Fairness, EmptyAndAllZeroAreVacuouslyFair) {
  EXPECT_DOUBLE_EQ(fairness_index(std::vector<double>{}), 1.0);
  EXPECT_DOUBLE_EQ(fairness_index(std::vector<double>{0.0, 0.0}), 1.0);
}

TEST(Fairness, RejectsNegativeOrNonFinite) {
  EXPECT_THROW(static_cast<void>(fairness_index(std::vector<double>{1.0, -1.0})), std::invalid_argument);
  EXPECT_THROW(static_cast<void>(fairness_index(std::vector<double>{1.0, std::nan("")})), std::invalid_argument);
  EXPECT_THROW(static_cast<void>(fairness_index(std::vector<double>{
                   1.0, std::numeric_limits<double>::infinity()})), std::invalid_argument);
}

}  // namespace
}  // namespace nashlb::stats
