#include "stats/histogram.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace nashlb::stats {
namespace {

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(2.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(Histogram, BinsValuesCorrectly) {
  Histogram h(0.0, 10.0, 5);  // bins of width 2
  h.add(0.0);
  h.add(1.9);
  h.add(2.0);
  h.add(9.99);
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(1), 1u);
  EXPECT_EQ(h.count(4), 1u);
  EXPECT_EQ(h.total(), 4u);
}

TEST(Histogram, UnderAndOverflow) {
  Histogram h(0.0, 1.0, 2);
  h.add(-0.1);
  h.add(1.0);   // hi edge counts as overflow (half-open interval)
  h.add(5.0);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(Histogram, BinEdges) {
  Histogram h(1.0, 3.0, 4);
  const auto [lo, hi] = h.bin_edges(1);
  EXPECT_DOUBLE_EQ(lo, 1.5);
  EXPECT_DOUBLE_EQ(hi, 2.0);
  EXPECT_THROW(static_cast<void>(h.bin_edges(4)), std::out_of_range);
}

TEST(Histogram, Fractions) {
  Histogram h(0.0, 2.0, 2);
  h.add(0.5);
  h.add(0.6);
  h.add(1.5);
  h.add(9.0);  // overflow still counts in the denominator
  EXPECT_DOUBLE_EQ(h.fraction(0), 0.5);
  EXPECT_DOUBLE_EQ(h.fraction(1), 0.25);
}

TEST(Histogram, FractionOfEmptyIsZero) {
  Histogram h(0.0, 1.0, 2);
  EXPECT_DOUBLE_EQ(h.fraction(0), 0.0);
}

TEST(Histogram, CountOutOfRangeThrows) {
  Histogram h(0.0, 1.0, 2);
  EXPECT_THROW(static_cast<void>(h.count(2)), std::out_of_range);
}

TEST(Histogram, AsciiRendersOneLinePerBin) {
  Histogram h(0.0, 1.0, 3);
  h.add(0.1);
  h.add(0.5);
  h.add(0.55);
  const std::string art = h.ascii(10);
  int newlines = 0;
  for (char c : art) {
    if (c == '\n') ++newlines;
  }
  EXPECT_EQ(newlines, 3);
  EXPECT_NE(art.find('#'), std::string::npos);
}

}  // namespace
}  // namespace nashlb::stats
