#include "stats/rng.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace nashlb::stats {
namespace {

TEST(SplitMix64, KnownSequenceFromZeroSeed) {
  // Reference values for seed 0 (SplitMix64 is fully specified).
  std::uint64_t state = 0;
  EXPECT_EQ(splitmix64_next(state), 0xe220a8397b1dcdafULL);
  EXPECT_EQ(splitmix64_next(state), 0x6e789e6aa1b965f4ULL);
  EXPECT_EQ(splitmix64_next(state), 0x06c45d188009454fULL);
}

TEST(Xoshiro256, DeterministicForSeed) {
  Xoshiro256 a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a(), b());
  }
}

TEST(Xoshiro256, DifferentSeedsDiffer) {
  Xoshiro256 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Xoshiro256, NextDoubleInUnitInterval) {
  Xoshiro256 g(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = g.next_double();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Xoshiro256, NextDoubleOpenNeverZero) {
  Xoshiro256 g(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_GT(g.next_double_open(), 0.0);
    EXPECT_LE(g.next_double_open(), 1.0);
  }
}

TEST(Xoshiro256, NextDoubleMeanIsHalf) {
  Xoshiro256 g(123);
  double sum = 0.0;
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) sum += g.next_double();
  EXPECT_NEAR(sum / kN, 0.5, 0.005);
}

TEST(Xoshiro256, NextBelowRespectsBound) {
  Xoshiro256 g(9);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(g.next_below(17), 17u);
  }
}

TEST(Xoshiro256, NextBelowCoversAllResidues) {
  Xoshiro256 g(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(g.next_below(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Xoshiro256, NextBelowOneIsZero) {
  Xoshiro256 g(3);
  EXPECT_EQ(g.next_below(1), 0u);
  EXPECT_EQ(g.next_below(0), 0u);
}

TEST(Xoshiro256, NextBelowApproxUniform) {
  Xoshiro256 g(5);
  std::vector<int> counts(8, 0);
  constexpr int kN = 80000;
  for (int i = 0; i < kN; ++i) ++counts[g.next_below(8)];
  for (int c : counts) {
    EXPECT_NEAR(c, kN / 8, kN / 8 / 5);  // within 20%
  }
}

TEST(Xoshiro256, JumpChangesState) {
  Xoshiro256 a(42);
  Xoshiro256 b(42);
  b.jump();
  EXPECT_FALSE(a == b);
  // Jumped generator produces a different sequence.
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngStreams, SameIdSameStream) {
  const RngStreams streams(99);
  Xoshiro256 a = streams.stream(4);
  Xoshiro256 b = streams.stream(4);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(a(), b());
}

TEST(RngStreams, DistinctIdsDecorrelated) {
  const RngStreams streams(99);
  Xoshiro256 a = streams.stream(0);
  Xoshiro256 b = streams.stream(1);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngStreams, PairEncodingIsInjectiveForSmallIndices) {
  const RngStreams streams(1);
  // (rep, source) pairs within the simulator's usage never collide.
  std::set<std::uint64_t> firsts;
  for (std::uint64_t rep = 0; rep < 6; ++rep) {
    for (std::uint64_t src = 0; src < 40; ++src) {
      firsts.insert(streams.stream(rep, src)());
    }
  }
  EXPECT_EQ(firsts.size(), 6u * 40u);
}

TEST(RngStreams, MasterSeedMatters) {
  Xoshiro256 a = RngStreams(1).stream(0);
  Xoshiro256 b = RngStreams(2).stream(0);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 2);
}

}  // namespace
}  // namespace nashlb::stats
