#include "schemes/metrics.hpp"

#include <gtest/gtest.h>

#include "core/cost.hpp"
#include "stats/fairness.hpp"

namespace nashlb::schemes {
namespace {

core::Instance two_two() {
  core::Instance inst;
  inst.mu = {10.0, 5.0};
  inst.phi = {4.0, 2.0};
  return inst;
}

TEST(Metrics, MatchesCoreCostFunctions) {
  const core::Instance inst = two_two();
  const core::StrategyProfile s = core::StrategyProfile::proportional(inst);
  const Metrics m = evaluate(inst, s);
  EXPECT_NEAR(m.overall_response_time,
              core::overall_response_time(inst, s), 1e-12);
  const std::vector<double> d = core::user_response_times(inst, s);
  ASSERT_EQ(m.user_response_times.size(), d.size());
  for (std::size_t j = 0; j < d.size(); ++j) {
    EXPECT_NEAR(m.user_response_times[j], d[j], 1e-12);
  }
  EXPECT_NEAR(m.fairness, stats::fairness_index(d), 1e-12);
}

TEST(Metrics, LoadsAndUtilization) {
  const core::Instance inst = two_two();
  core::StrategyProfile s(2, 2);
  s.set_row(0, std::vector<double>{1.0, 0.0});
  s.set_row(1, std::vector<double>{0.0, 1.0});
  const Metrics m = evaluate(inst, s);
  EXPECT_DOUBLE_EQ(m.loads[0], 4.0);
  EXPECT_DOUBLE_EQ(m.loads[1], 2.0);
  EXPECT_DOUBLE_EQ(m.computer_utilization[0], 0.4);
  EXPECT_DOUBLE_EQ(m.computer_utilization[1], 0.4);
}

TEST(Metrics, ProportionalProfileIsPerfectlyFair) {
  const core::Instance inst = two_two();
  const Metrics m =
      evaluate(inst, core::StrategyProfile::proportional(inst));
  EXPECT_NEAR(m.fairness, 1.0, 1e-12);
}

}  // namespace
}  // namespace nashlb::schemes
