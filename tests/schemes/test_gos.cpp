#include "schemes/gos.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "core/cost.hpp"
#include "schemes/metrics.hpp"
#include "schemes/ps.hpp"

namespace nashlb::schemes {
namespace {

core::Instance instance(double util = 0.6, std::size_t users = 4) {
  core::Instance inst;
  inst.mu = {10.0, 20.0, 50.0, 100.0};
  const double phi = util * 180.0;
  // Uneven users (heavier first), like the paper's population.
  std::vector<double> q{0.4, 0.3, 0.2, 0.1};
  q.resize(users, 0.1);
  double t = std::accumulate(q.begin(), q.end(), 0.0);
  for (double& x : q) x /= t;
  inst.phi.clear();
  for (double x : q) inst.phi.push_back(x * phi);
  return inst;
}

TEST(GOS, OptimalLoadsSatisfyKkt) {
  const core::Instance inst = instance();
  const std::vector<double> lambda =
      GlobalOptimalScheme::optimal_loads(inst);
  double alpha = -1.0;
  for (std::size_t i = 0; i < lambda.size(); ++i) {
    if (lambda[i] > 1e-9) {
      const double slack = inst.mu[i] - lambda[i];
      const double g = inst.mu[i] / (slack * slack);
      if (alpha < 0.0) {
        alpha = g;
      } else {
        EXPECT_NEAR(g, alpha, 1e-6 * alpha);
      }
    }
  }
}

TEST(GOS, BothSplitsRealizeTheSameAggregateLoads) {
  const core::Instance inst = instance();
  const std::vector<double> lambda =
      GlobalOptimalScheme::optimal_loads(inst);
  for (GosSplit split : {GosSplit::GreedyFill, GosSplit::Uniform}) {
    const core::StrategyProfile s = GlobalOptimalScheme(split).solve(inst);
    EXPECT_TRUE(s.is_feasible(inst));
    const std::vector<double> realized = s.loads(inst);
    for (std::size_t i = 0; i < lambda.size(); ++i) {
      EXPECT_NEAR(realized[i], lambda[i], 1e-8 * (1.0 + lambda[i]))
          << "split " << static_cast<int>(split) << " computer " << i;
    }
  }
}

TEST(GOS, BothSplitsAttainTheSameOverallOptimum) {
  const core::Instance inst = instance();
  const Metrics greedy =
      evaluate(inst, GlobalOptimalScheme(GosSplit::GreedyFill).solve(inst));
  const Metrics uniform =
      evaluate(inst, GlobalOptimalScheme(GosSplit::Uniform).solve(inst));
  EXPECT_NEAR(greedy.overall_response_time, uniform.overall_response_time,
              1e-9);
}

TEST(GOS, BeatsPsOnOverallResponseTime) {
  for (double util : {0.3, 0.6, 0.85}) {
    const core::Instance inst = instance(util);
    const Metrics gos =
        evaluate(inst, GlobalOptimalScheme().solve(inst));
    const Metrics ps = evaluate(inst, ProportionalScheme().solve(inst));
    EXPECT_LE(gos.overall_response_time,
              ps.overall_response_time + 1e-12)
        << "util " << util;
  }
}

TEST(GOS, GlobalOptimalityAgainstRandomLoadVectors) {
  const core::Instance inst = instance();
  const double phi = inst.total_arrival_rate();
  const std::vector<double> lambda =
      GlobalOptimalScheme::optimal_loads(inst);
  const double opt =
      core::overall_response_time_from_loads(lambda, inst.mu);
  // Deterministic competitor grid: mixture of proportional and uniform.
  for (int k = 0; k <= 10; ++k) {
    const double a = k / 10.0;
    std::vector<double> l(inst.mu.size());
    for (std::size_t i = 0; i < l.size(); ++i) {
      l[i] = a * phi * inst.mu[i] / 180.0 +
             (1.0 - a) * phi / static_cast<double>(l.size());
    }
    if (!std::all_of(l.begin(), l.end(), [&](double x) { return x > 0; })) {
      continue;
    }
    bool stable = true;
    for (std::size_t i = 0; i < l.size(); ++i) {
      if (l[i] >= inst.mu[i]) stable = false;
    }
    if (!stable) continue;
    EXPECT_GE(core::overall_response_time_from_loads(l, inst.mu),
              opt - 1e-12);
  }
}

TEST(GOS, GreedyFillIsUnfairUniformIsFair) {
  // The A1 ablation in miniature: same optimum, opposite fairness.
  const core::Instance inst = instance(0.7, 4);
  const Metrics greedy =
      evaluate(inst, GlobalOptimalScheme(GosSplit::GreedyFill).solve(inst));
  const Metrics uniform =
      evaluate(inst, GlobalOptimalScheme(GosSplit::Uniform).solve(inst));
  EXPECT_NEAR(uniform.fairness, 1.0, 1e-9);
  EXPECT_LT(greedy.fairness, 0.95);
}

TEST(GOS, GreedyFillRowsAreValidStrategies) {
  const core::Instance inst = instance(0.5, 6);
  const core::StrategyProfile s = GlobalOptimalScheme().solve(inst);
  for (std::size_t j = 0; j < inst.num_users(); ++j) {
    double total = 0.0;
    for (std::size_t i = 0; i < inst.num_computers(); ++i) {
      EXPECT_GE(s.at(j, i), 0.0);
      total += s.at(j, i);
    }
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
}

TEST(GOS, LowLoadConcentratesOnFastComputers) {
  const core::Instance inst = instance(0.05);
  const std::vector<double> lambda =
      GlobalOptimalScheme::optimal_loads(inst);
  // At 5% utilization the slowest computers stay empty.
  EXPECT_DOUBLE_EQ(lambda[0], 0.0);
  EXPECT_GT(lambda[3], 0.0);
}

}  // namespace
}  // namespace nashlb::schemes
