#include "schemes/stackelberg.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "core/cost.hpp"
#include "schemes/gos.hpp"
#include "schemes/ios.hpp"

namespace nashlb::schemes {
namespace {

core::Instance instance(double util = 0.6) {
  core::Instance inst;
  inst.mu = {10.0, 20.0, 50.0, 100.0};
  const double phi = util * 180.0;
  inst.phi = {0.5 * phi, 0.3 * phi, 0.2 * phi};
  return inst;
}

TEST(Stackelberg, RejectsBadBeta) {
  const core::Instance inst = instance();
  EXPECT_THROW((void)stackelberg_llf(inst, -0.1), std::invalid_argument);
  EXPECT_THROW((void)stackelberg_llf(inst, 1.1), std::invalid_argument);
}

TEST(Stackelberg, BetaZeroIsWardrop) {
  const core::Instance inst = instance();
  const StackelbergResult r = stackelberg_llf(inst, 0.0);
  const std::vector<double> wardrop =
      IndividualOptimalScheme::wardrop_loads(inst);
  for (std::size_t i = 0; i < wardrop.size(); ++i) {
    EXPECT_NEAR(r.total_flow()[i], wardrop[i], 1e-9);
    EXPECT_DOUBLE_EQ(r.leader_flow[i], 0.0);
  }
}

TEST(Stackelberg, BetaOneIsGlobalOptimum) {
  const core::Instance inst = instance();
  const StackelbergResult r = stackelberg_llf(inst, 1.0);
  const std::vector<double> opt =
      GlobalOptimalScheme::optimal_loads(inst);
  for (std::size_t i = 0; i < opt.size(); ++i) {
    EXPECT_NEAR(r.total_flow()[i], opt[i], 1e-9);
    EXPECT_DOUBLE_EQ(r.follower_flow[i], 0.0);
  }
}

TEST(Stackelberg, FlowConservation) {
  const core::Instance inst = instance(0.8);
  for (double beta : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    const StackelbergResult r = stackelberg_llf(inst, beta);
    const std::vector<double> total = r.total_flow();
    const double sum =
        std::accumulate(total.begin(), total.end(), 0.0);
    EXPECT_NEAR(sum, inst.total_arrival_rate(), 1e-9) << beta;
    double leader = std::accumulate(r.leader_flow.begin(),
                                    r.leader_flow.end(), 0.0);
    EXPECT_NEAR(leader, beta * inst.total_arrival_rate(), 1e-9) << beta;
    for (std::size_t i = 0; i < total.size(); ++i) {
      EXPECT_GE(r.leader_flow[i], 0.0);
      EXPECT_GE(r.follower_flow[i], 0.0);
      EXPECT_LT(total[i], inst.mu[i]);
    }
  }
}

TEST(Stackelberg, InducedCostBetweenWardropAndOptimum) {
  const core::Instance inst = instance(0.7);
  const double d_wardrop =
      stackelberg_response_time(inst, stackelberg_llf(inst, 0.0));
  const double d_opt =
      stackelberg_response_time(inst, stackelberg_llf(inst, 1.0));
  for (double beta : {0.2, 0.5, 0.8}) {
    const double d =
        stackelberg_response_time(inst, stackelberg_llf(inst, beta));
    EXPECT_GE(d, d_opt - 1e-12) << beta;
    EXPECT_LE(d, d_wardrop + 1e-9) << beta;
  }
}

TEST(Stackelberg, RoughgardenOneOverBetaBound) {
  // LLF guarantee: induced cost <= (1/beta) * optimal cost.
  const core::Instance inst = instance(0.85);
  const double d_opt =
      stackelberg_response_time(inst, stackelberg_llf(inst, 1.0));
  for (double beta : {0.25, 0.5, 0.75}) {
    const double d =
        stackelberg_response_time(inst, stackelberg_llf(inst, beta));
    EXPECT_LE(d, d_opt / beta + 1e-9) << beta;
  }
}

TEST(Stackelberg, LeaderFillsSlowestOptimalMachinesFirst) {
  // LLF places leader flow on the machines with the largest latency
  // under the optimal flow — for the sqrt rule, the slowest machines.
  const core::Instance inst = instance(0.7);
  const StackelbergResult r = stackelberg_llf(inst, 0.3);
  // Leader budget = 0.3 * 126 = 37.8; optimal loads on mu={10,20} total
  // less than that, so both slow machines are fully leader-owned.
  const std::vector<double> opt =
      GlobalOptimalScheme::optimal_loads(inst);
  EXPECT_NEAR(r.leader_flow[0], opt[0], 1e-9);
  EXPECT_NEAR(r.leader_flow[1], opt[1], 1e-9);
  EXPECT_DOUBLE_EQ(r.leader_flow[3], 0.0);
}

}  // namespace
}  // namespace nashlb::schemes
