#include "schemes/ios.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "core/cost.hpp"
#include "schemes/gos.hpp"
#include "schemes/metrics.hpp"

namespace nashlb::schemes {
namespace {

core::Instance instance(double util = 0.6) {
  core::Instance inst;
  inst.mu = {10.0, 20.0, 50.0, 100.0};
  const double phi = util * 180.0;
  inst.phi = {0.5 * phi, 0.3 * phi, 0.2 * phi};
  return inst;
}

TEST(IOS, WardropLoadsEqualizeResponseTimes) {
  const core::Instance inst = instance();
  const std::vector<double> lambda =
      IndividualOptimalScheme::wardrop_loads(inst);
  double common = -1.0;
  for (std::size_t i = 0; i < lambda.size(); ++i) {
    if (lambda[i] > 1e-9) {
      const double f = 1.0 / (inst.mu[i] - lambda[i]);
      if (common < 0.0) {
        common = f;
      } else {
        EXPECT_NEAR(f, common, 1e-9 * common);
      }
    }
  }
  // No idle computer would be faster (Wardrop's first principle).
  for (std::size_t i = 0; i < lambda.size(); ++i) {
    if (lambda[i] <= 1e-9) {
      EXPECT_GE(1.0 / inst.mu[i], common - 1e-9);
    }
  }
}

TEST(IOS, AllUsersGetIdenticalTimes) {
  const core::Instance inst = instance();
  const Metrics m = evaluate(inst, IndividualOptimalScheme().solve(inst));
  EXPECT_NEAR(m.fairness, 1.0, 1e-12);
  for (std::size_t j = 1; j < m.user_response_times.size(); ++j) {
    EXPECT_NEAR(m.user_response_times[j], m.user_response_times[0], 1e-12);
  }
}

TEST(IOS, NeverBeatsGosOnOverallTime) {
  // The price of anarchy is >= 1: Wardrop flow cannot undercut the
  // overall optimum.
  for (double util : {0.2, 0.5, 0.8, 0.95}) {
    const core::Instance inst = instance(util);
    const Metrics ios =
        evaluate(inst, IndividualOptimalScheme().solve(inst));
    const Metrics gos = evaluate(inst, GlobalOptimalScheme().solve(inst));
    EXPECT_GE(ios.overall_response_time,
              gos.overall_response_time - 1e-12)
        << "util " << util;
  }
}

TEST(IOS, ProfileIsFeasible) {
  const core::Instance inst = instance(0.9);
  const core::StrategyProfile s = IndividualOptimalScheme().solve(inst);
  EXPECT_TRUE(s.is_feasible(inst));
}

TEST(IosIterative, ConvergesToClosedForm) {
  const core::Instance inst = instance(0.7);
  const std::vector<double> exact =
      IndividualOptimalScheme::wardrop_loads(inst);
  const IosIterativeResult it = ios_iterative(inst, 1e-10, 200000, 0.5);
  ASSERT_TRUE(it.converged);
  for (std::size_t i = 0; i < exact.size(); ++i) {
    EXPECT_NEAR(it.loads[i], exact[i], 1e-3 * (1.0 + exact[i]))
        << "computer " << i;
  }
}

TEST(IosIterative, IsSlowerThanClosedForm) {
  // The paper calls the reference procedure "not very efficient": the
  // iterative method needs many sweeps where the closed form needs none.
  const core::Instance inst = instance(0.7);
  const IosIterativeResult it = ios_iterative(inst, 1e-10);
  EXPECT_GT(it.iterations, 10u);
}

TEST(IosIterative, SmallRelaxationConvergesSlower) {
  const core::Instance inst = instance(0.6);
  const IosIterativeResult fast = ios_iterative(inst, 1e-8, 200000, 0.9);
  const IosIterativeResult slow = ios_iterative(inst, 1e-8, 200000, 0.05);
  ASSERT_TRUE(fast.converged);
  ASSERT_TRUE(slow.converged);
  EXPECT_GT(slow.iterations, fast.iterations);
}

TEST(IosIterative, RejectsBadRelaxation) {
  const core::Instance inst = instance();
  EXPECT_THROW((void)ios_iterative(inst, 1e-8, 100, 0.0),
               std::invalid_argument);
  EXPECT_THROW((void)ios_iterative(inst, 1e-8, 100, 1.5),
               std::invalid_argument);
}

TEST(IosIterative, LoadsStayStableThroughout) {
  const core::Instance inst = instance(0.9);
  const IosIterativeResult it = ios_iterative(inst, 1e-9);
  double total = 0.0;
  for (std::size_t i = 0; i < it.loads.size(); ++i) {
    EXPECT_GE(it.loads[i], 0.0);
    EXPECT_LT(it.loads[i], inst.mu[i]);
    total += it.loads[i];
  }
  EXPECT_NEAR(total, inst.total_arrival_rate(), 1e-6);
}

}  // namespace
}  // namespace nashlb::schemes
