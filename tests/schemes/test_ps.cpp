#include "schemes/ps.hpp"

#include <gtest/gtest.h>

#include "schemes/metrics.hpp"

namespace nashlb::schemes {
namespace {

core::Instance instance(double util = 0.6) {
  core::Instance inst;
  inst.mu = {10.0, 20.0, 50.0, 100.0};
  const double phi = util * 180.0;
  inst.phi = {0.5 * phi, 0.3 * phi, 0.2 * phi};
  return inst;
}

TEST(PS, FractionsAreProportionalToRates) {
  const core::Instance inst = instance();
  const core::StrategyProfile s = ProportionalScheme().solve(inst);
  for (std::size_t j = 0; j < inst.num_users(); ++j) {
    EXPECT_NEAR(s.at(j, 0), 10.0 / 180.0, 1e-12);
    EXPECT_NEAR(s.at(j, 3), 100.0 / 180.0, 1e-12);
  }
  EXPECT_TRUE(s.is_feasible(inst));
}

TEST(PS, EqualUtilizationEverywhere) {
  // PS loads every computer at exactly the system utilization.
  const core::Instance inst = instance(0.6);
  const Metrics m = evaluate(inst, ProportionalScheme().solve(inst));
  for (double u : m.computer_utilization) {
    EXPECT_NEAR(u, 0.6, 1e-12);
  }
}

TEST(PS, FairnessIsExactlyOneAtAnyLoad) {
  // The paper: "It can be shown that for this scheme the fairness index
  // is always 1" — every user sees identical response times.
  for (double util : {0.1, 0.4, 0.7, 0.9}) {
    const core::Instance inst = instance(util);
    const Metrics m = evaluate(inst, ProportionalScheme().solve(inst));
    EXPECT_NEAR(m.fairness, 1.0, 1e-12) << "util " << util;
    for (std::size_t j = 1; j < m.user_response_times.size(); ++j) {
      EXPECT_NEAR(m.user_response_times[j], m.user_response_times[0],
                  1e-12);
    }
  }
}

TEST(PS, ResponseTimeEqualsRateWeightedMM1Average) {
  // With every queue at utilization rho, PS response time is
  // sum_i (mu_i/M) * 1/(mu_i(1-rho)) / ... = n / (M (1-rho)).
  const core::Instance inst = instance(0.5);
  const Metrics m = evaluate(inst, ProportionalScheme().solve(inst));
  const double expected = 4.0 / (180.0 * 0.5);
  EXPECT_NEAR(m.overall_response_time, expected, 1e-12);
}

TEST(PS, RejectsInvalidInstance) {
  core::Instance inst;
  inst.mu = {1.0};
  inst.phi = {2.0};
  EXPECT_THROW((void)ProportionalScheme().solve(inst),
               std::invalid_argument);
}

}  // namespace
}  // namespace nashlb::schemes
