#include "schemes/nash.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "core/equilibrium.hpp"
#include "schemes/gos.hpp"
#include "schemes/metrics.hpp"
#include "schemes/ps.hpp"

namespace nashlb::schemes {
namespace {

core::Instance instance(double util = 0.6) {
  core::Instance inst;
  inst.mu = {10.0, 10.0, 20.0, 50.0, 100.0};
  const double cap = std::accumulate(inst.mu.begin(), inst.mu.end(), 0.0);
  const double phi = util * cap;
  inst.phi = {0.4 * phi, 0.3 * phi, 0.2 * phi, 0.1 * phi};
  return inst;
}

TEST(NashScheme, ProducesANashEquilibrium) {
  const core::Instance inst = instance();
  for (auto init :
       {core::Initialization::Zero, core::Initialization::Proportional}) {
    const NashScheme scheme(init, 1e-9);
    const core::StrategyProfile s = scheme.solve(inst);
    EXPECT_TRUE(s.is_feasible(inst));
    EXPECT_TRUE(core::is_nash_equilibrium(inst, s, 1e-6))
        << scheme.name();
  }
}

TEST(NashScheme, NamesDistinguishVariants) {
  EXPECT_EQ(NashScheme(core::Initialization::Zero).name(), "NASH_0");
  EXPECT_EQ(NashScheme(core::Initialization::Proportional).name(),
            "NASH_P");
}

TEST(NashScheme, TraceExposesConvergenceHistory) {
  const core::Instance inst = instance();
  const NashScheme scheme(core::Initialization::Proportional, 1e-8);
  const core::DynamicsResult res = scheme.solve_with_trace(inst);
  EXPECT_TRUE(res.converged);
  EXPECT_EQ(res.norm_history.size(), res.iterations);
  EXPECT_GE(res.iterations, 1u);
}

TEST(NashScheme, NashPNeedsFewerIterationsThanNash0) {
  const core::Instance inst = instance();
  const auto r0 =
      NashScheme(core::Initialization::Zero, 1e-8).solve_with_trace(inst);
  const auto rp = NashScheme(core::Initialization::Proportional, 1e-8)
                      .solve_with_trace(inst);
  ASSERT_TRUE(r0.converged);
  ASSERT_TRUE(rp.converged);
  EXPECT_LT(rp.iterations, r0.iterations);
}

TEST(NashScheme, ThrowsIfCapTooSmall) {
  const core::Instance inst = instance(0.9);
  const NashScheme scheme(core::Initialization::Zero, 1e-12, 1);
  EXPECT_THROW((void)scheme.solve(inst), std::runtime_error);
}

TEST(NashScheme, BetweenGosAndPsOnOverallTime) {
  // Figure 4's ordering at medium/high load: GOS <= NASH <= PS.
  for (double util : {0.4, 0.6, 0.8}) {
    const core::Instance inst = instance(util);
    const Metrics nash =
        evaluate(inst, NashScheme(core::Initialization::Proportional, 1e-8)
                           .solve(inst));
    const Metrics gos = evaluate(inst, GlobalOptimalScheme().solve(inst));
    const Metrics ps = evaluate(inst, ProportionalScheme().solve(inst));
    EXPECT_GE(nash.overall_response_time,
              gos.overall_response_time - 1e-9)
        << util;
    EXPECT_LE(nash.overall_response_time,
              ps.overall_response_time + 1e-9)
        << util;
  }
}

TEST(NashScheme, NearPerfectFairness) {
  const core::Instance inst = instance(0.6);
  const Metrics m = evaluate(
      inst,
      NashScheme(core::Initialization::Proportional, 1e-8).solve(inst));
  EXPECT_GT(m.fairness, 0.98);  // "close to 1" (§4.2.2)
}

TEST(NashScheme, EachUserAtItsPersonalOptimum) {
  // User-optimality: no user can improve by deviating (checked through
  // the best-reply gain, which is the definition).
  const core::Instance inst = instance(0.5);
  const core::StrategyProfile s =
      NashScheme(core::Initialization::Proportional, 1e-10).solve(inst);
  EXPECT_LE(core::max_best_reply_gain(inst, s), 1e-7);
}

}  // namespace
}  // namespace nashlb::schemes
