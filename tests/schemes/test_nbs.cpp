#include "schemes/nbs.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "core/cost.hpp"
#include "schemes/gos.hpp"
#include "schemes/metrics.hpp"
#include "schemes/nash.hpp"

namespace nashlb::schemes {
namespace {

core::Instance instance(double util = 0.6) {
  core::Instance inst;
  inst.mu = {10.0, 20.0, 50.0, 100.0};
  const double phi = util * 180.0;
  inst.phi = {0.5 * phi, 0.3 * phi, 0.2 * phi};
  return inst;
}

double nash_product_log(const core::Instance& inst,
                        const core::StrategyProfile& s) {
  double g = 0.0;
  for (double d : core::user_response_times(inst, s)) g += std::log(d);
  return g;
}

TEST(NBS, SolverConvergesToFeasibleProfile) {
  const core::Instance inst = instance();
  NbsTrace trace;
  const core::StrategyProfile s = NbsScheme().solve_with_trace(inst, trace);
  EXPECT_TRUE(trace.converged);
  EXPECT_TRUE(s.is_feasible(inst, 1e-6));
}

TEST(NBS, ImprovesNashProductOverProportional) {
  const core::Instance inst = instance();
  const core::StrategyProfile nbs = NbsScheme().solve(inst);
  const core::StrategyProfile prop =
      core::StrategyProfile::proportional(inst);
  EXPECT_LT(nash_product_log(inst, nbs), nash_product_log(inst, prop));
}

TEST(NBS, NashProductAtLeastAsGoodAsCompetitors) {
  // NBS maximizes the Nash product by construction; the noncooperative
  // equilibrium and GOS cannot beat it on that objective.
  const core::Instance inst = instance(0.7);
  const double nbs = nash_product_log(inst, NbsScheme().solve(inst));
  const double nash = nash_product_log(
      inst,
      NashScheme(core::Initialization::Proportional, 1e-9).solve(inst));
  const double gos =
      nash_product_log(inst, GlobalOptimalScheme().solve(inst));
  EXPECT_LE(nbs, nash + 1e-6);
  EXPECT_LE(nbs, gos + 1e-6);
}

TEST(NBS, OverallTimeNoBetterThanGos) {
  const core::Instance inst = instance(0.5);
  const Metrics nbs = evaluate(inst, NbsScheme().solve(inst));
  const Metrics gos = evaluate(inst, GlobalOptimalScheme().solve(inst));
  EXPECT_GE(nbs.overall_response_time,
            gos.overall_response_time - 1e-9);
}

TEST(NBS, FairAllocationForSymmetricUsers) {
  core::Instance inst;
  inst.mu = {10.0, 50.0};
  inst.phi = {12.0, 12.0};  // symmetric users
  const Metrics m = evaluate(inst, NbsScheme().solve(inst));
  EXPECT_NEAR(m.user_response_times[0], m.user_response_times[1], 1e-5);
  EXPECT_GT(m.fairness, 0.999);
}

TEST(NBS, SingleUserReducesToThatUsersOptimum) {
  // With one user the Nash product is just D_1: NBS == OPTIMAL == GOS.
  core::Instance inst;
  inst.mu = {10.0, 20.0, 50.0};
  inst.phi = {30.0};
  const Metrics nbs = evaluate(inst, NbsScheme(1e-10, 50000).solve(inst));
  const Metrics gos = evaluate(inst, GlobalOptimalScheme().solve(inst));
  EXPECT_NEAR(nbs.overall_response_time, gos.overall_response_time, 1e-4);
}

}  // namespace
}  // namespace nashlb::schemes
