// Scheme-interface conformance matrix: every registered scheme, across a
// grid of instances, must produce a feasible profile with finite,
// positive metrics. This is the contract the benches and examples rely
// on when they iterate over schemes generically.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "schemes/metrics.hpp"
#include "schemes/registry.hpp"
#include "workload/configs.hpp"
#include "workload/random.hpp"

namespace nashlb::schemes {
namespace {

using Param = std::tuple<const char*, double>;  // (scheme, utilization)

class SchemeConformance : public ::testing::TestWithParam<Param> {};

TEST_P(SchemeConformance, Table1InstanceContract) {
  const auto [name, util] = GetParam();
  const core::Instance inst = workload::table1_instance(util);
  const SchemePtr scheme = make_scheme(name);
  const core::StrategyProfile profile = scheme->solve(inst);

  EXPECT_TRUE(profile.is_feasible(inst, 1e-6)) << name;
  const Metrics m = evaluate(inst, profile);
  EXPECT_TRUE(std::isfinite(m.overall_response_time)) << name;
  EXPECT_GT(m.overall_response_time, 0.0) << name;
  EXPECT_GE(m.fairness, 1.0 / static_cast<double>(inst.num_users()));
  EXPECT_LE(m.fairness, 1.0 + 1e-9);
  for (double d : m.user_response_times) {
    EXPECT_TRUE(std::isfinite(d)) << name;
    EXPECT_GT(d, 0.0) << name;
  }
  double total_load = 0.0;
  for (std::size_t i = 0; i < inst.num_computers(); ++i) {
    EXPECT_LT(m.loads[i], inst.mu[i]) << name;
    total_load += m.loads[i];
  }
  EXPECT_NEAR(total_load, inst.total_arrival_rate(),
              1e-6 * inst.total_arrival_rate())
      << name;
}

TEST_P(SchemeConformance, RandomInstanceContract) {
  const auto [name, util] = GetParam();
  workload::RandomInstanceOptions opts;
  opts.utilization = util;
  opts.num_computers = 12;
  opts.num_users = 6;
  opts.heterogeneity = 20.0;
  opts.seed = static_cast<std::uint64_t>(util * 1000) + 7;
  const core::Instance inst = workload::random_instance(opts);
  const SchemePtr scheme = make_scheme(name);
  const core::StrategyProfile profile = scheme->solve(inst);
  EXPECT_TRUE(profile.is_feasible(inst, 1e-6)) << name;
  EXPECT_TRUE(
      std::isfinite(evaluate(inst, profile).overall_response_time))
      << name;
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, SchemeConformance,
    ::testing::Combine(::testing::Values("NASH_P", "NASH_0", "GOS",
                                         "GOS_UNIFORM", "IOS", "PS", "NBS"),
                       ::testing::Values(0.15, 0.5, 0.85)),
    [](const ::testing::TestParamInfo<Param>& param_info) {
      return std::string(std::get<0>(param_info.param)) + "_u" +
             std::to_string(
                 static_cast<int>(std::get<1>(param_info.param) * 100));
    });

}  // namespace
}  // namespace nashlb::schemes
