#include "schemes/registry.hpp"

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>

namespace nashlb::schemes {
namespace {

TEST(Registry, PaperSchemesAreTheFigureLineup) {
  const std::vector<SchemePtr> schemes = paper_schemes();
  ASSERT_EQ(schemes.size(), 4u);
  EXPECT_EQ(schemes[0]->name(), "NASH_P");
  EXPECT_EQ(schemes[1]->name(), "GOS");
  EXPECT_EQ(schemes[2]->name(), "IOS");
  EXPECT_EQ(schemes[3]->name(), "PS");
}

TEST(Registry, MakeSchemeKnowsEveryName) {
  for (const char* name :
       {"NASH", "NASH_0", "NASH_P", "GOS", "GOS_UNIFORM", "IOS", "PS",
        "NBS"}) {
    const SchemePtr s = make_scheme(name);
    ASSERT_NE(s, nullptr) << name;
    EXPECT_FALSE(s->name().empty());
  }
}

TEST(Registry, MakeSchemeRejectsUnknown) {
  EXPECT_THROW((void)make_scheme("FIFO"), std::invalid_argument);
  EXPECT_THROW((void)make_scheme(""), std::invalid_argument);
}

TEST(Registry, SchemesSolveAConcreteInstance) {
  core::Instance inst;
  inst.mu = {10.0, 20.0, 50.0};
  inst.phi = {15.0, 10.0};
  for (const SchemePtr& scheme : paper_schemes(1e-6)) {
    const core::StrategyProfile s = scheme->solve(inst);
    EXPECT_TRUE(s.is_feasible(inst)) << scheme->name();
  }
}

}  // namespace
}  // namespace nashlb::schemes
