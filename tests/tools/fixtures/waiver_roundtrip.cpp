// Golden fixture: the same violations as nondet_bad.cpp, every one
// carrying a reasoned waiver — expected output is empty (exit 0).
// Analyzed as if at src/core/waiver_roundtrip.cpp.
namespace std {
struct random_device {
  unsigned operator()();
};
namespace chrono {
struct steady_clock {
  static long now();
};
}  // namespace chrono
}  // namespace std

unsigned seed_from_entropy() {
  // nashlb-analyzer: allow(nondeterminism-sources) -- fixture: seeding a
  // diagnostics-only RNG whose draws never reach solver state
  std::random_device rd;
  return rd();
}

long stamp() {
  // Trailing-form waiver on the offending line itself.
  return std::chrono::steady_clock::now();  // nashlb-analyzer: allow(nondeterminism-sources) -- fixture: trace-only
}

long stamp_wrapped() {
  // Block-form waiver covering a statement wrapped across lines.
  // nashlb-analyzer: allow(nondeterminism-sources) -- fixture: trace-only
  long wall =
      std::chrono::steady_clock::now();
  return wall;
}
