// Golden fixture: a waiver without a reason is itself a finding, and it
// still suppresses the underlying rule (the waiver-missing-reason
// finding is the enforcement point, not a double report).
// Analyzed as if at src/core/waiver_missing_reason.cpp.
namespace std {
struct random_device {
  unsigned operator()();
};
}  // namespace std

unsigned seed_from_entropy() {
  // nashlb-analyzer: allow(nondeterminism-sources)
  std::random_device rd;
  return rd();
}
