// Golden fixture: raw nondeterminism sources in solver code.
// Analyzed as if at src/core/nondet_bad.cpp.
namespace std {
struct random_device {
  unsigned operator()();
};
namespace chrono {
struct steady_clock {
  static long now();
};
}  // namespace chrono
}  // namespace std
extern "C" int rand();
extern "C" long time(long*);

unsigned seed_from_entropy() {
  std::random_device rd;  // line 17: raw entropy source
  return rd();
}

int jitter() {
  return rand();  // line 22: CRT randomness
}

long stamp() {
  long wall = time(nullptr);                     // line 26: wall clock
  return wall + std::chrono::steady_clock::now();  // line 27: clock read
}
