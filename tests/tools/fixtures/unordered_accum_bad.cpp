// Golden fixture: float accumulation over unordered iteration.
// Analyzed as if at src/core/unordered_accum_bad.cpp.
namespace std {
template <class K, class V>
struct unordered_map {
  struct value_type {
    K first;
    V second;
  };
  value_type* begin();
  value_type* end();
};
}  // namespace std

double total_load(std::unordered_map<int, double>& per_user) {
  double sum = 0.0;
  for (auto& kv : per_user) {
    sum += kv.second;  // line 18: order-dependent float fold
  }
  // Per-key writes reference the loop variable: order-independent, OK.
  for (auto& kv : per_user) {
    kv.second *= 2.0;
  }
  return sum;
}
