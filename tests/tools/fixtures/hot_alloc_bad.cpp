// Golden fixture: allocations inside a designated hot function.
// Analyzed as if at src/core/hot_alloc_bad.cpp (the `_into` suffix puts
// reply_into in the hot set). Expected findings: hot_alloc_bad.expected.
namespace std {
template <class T>
struct vector {
  void push_back(const T&);
  void reserve(unsigned long);
};
template <class T, class U>
T* make_unique(U);
}  // namespace std

void reply_into(double* out, unsigned long n) {
  std::vector<double> scratch;           // line 15: allocating local
  double* raw = new double[n];           // line 16: new-expression
  auto owned = std::make_unique<double, unsigned long>(n);  // line 17
  for (unsigned long i = 0; i < n; ++i) {
    scratch.push_back(0.0);              // line 19: push_back, no reserve
    out[i] = raw[i];
  }
  (void)owned;
}

// Cold sibling: same body, not in the hot set — no findings expected.
void reply_setup(double* out, unsigned long n) {
  std::vector<double> scratch;
  for (unsigned long i = 0; i < n; ++i) {
    scratch.push_back(0.0);
    out[i] = 0.0;
  }
}
