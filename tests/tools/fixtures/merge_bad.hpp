// Golden fixture: obs shard merges that can throw past the capture point.
// Analyzed as if at src/obs/merge_bad.hpp.
#pragma once

struct merge_error {};

struct EnabledCounter {
  // line 10: per-instrument merge not declared noexcept.
  void merge(const EnabledCounter& other) { value_ += other.value_; }
  long value_ = 0;
};

struct EnabledTimer {
  // Throwing merge: one finding for the throw, one for missing noexcept.
  void merge(const EnabledTimer& other) {
    if (other.total_ < 0.0) throw merge_error{};  // line 16
    total_ += other.total_;
  }
  double total_ = 0.0;
};

struct EnabledRegistry {
  // Registry-level merge runs post-join on the caller thread: allocation
  // and propagation are fine there, noexcept not required.
  void merge(const EnabledRegistry& other) { (void)other; }
};
