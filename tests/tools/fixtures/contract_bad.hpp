// Golden fixture: public core API without contract coverage.
// Analyzed as if at src/core/contract_bad.hpp.
#pragma once

struct StrategyProfile {};

// Audited (StrategyProfile parameter), no contract anywhere: finding.
inline double reply_gap(const StrategyProfile& s, int user) {
  (void)s;
  return user * 0.0;
}

// Audited but covered through a callee that states a contract: clean.
inline void check_user(int user) {
  NASHLB_EXPECT(user >= 0, "user %d out of range", user);
}
inline double covered_gap(const StrategyProfile& s, int user) {
  (void)s;
  check_user(user);
  return 0.0;
}

// Not audited (no profile/fractions/loads parameter): clean.
inline int plain_helper(int x) { return x + 1; }
