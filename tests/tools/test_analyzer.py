#!/usr/bin/env python3
"""Golden-finding tests for tools/nashlb_analyzer.py (ctest:
analyzer_fixtures).

Three layers, mirroring how lint_nashlb.py is pinned:

  1. the analyzer's own selftest (every rule must fire and must not
     fire on its synthetic snippets);
  2. fixture goldens: each fixtures/*.cpp|hpp is analyzed under a
     virtual src/ path and its findings must match fixtures/*.expected
     byte-for-byte — exact rule, file, and line (the waiver fixtures pin
     the round-trip: reasoned waivers silence findings, a reasonless
     waiver is itself a finding);
  3. the clean-tree test: the analyzer over the real tree must report
     zero findings (exit 0 under the clang engine, 77 under the partial
     token engine — anything else fails).

Exit: 0 all green, 1 any mismatch.
"""

import os
import subprocess
import sys

HERE = os.path.dirname(os.path.abspath(__file__))
ROOT = os.path.dirname(os.path.dirname(HERE))
ANALYZER = os.path.join(ROOT, "tools", "nashlb_analyzer.py")
FIXTURES = os.path.join(HERE, "fixtures")

# fixture file -> (virtual path, expected exit code)
CASES = {
    "hot_alloc_bad.cpp": ("src/core/hot_alloc_bad.cpp", 1),
    "unordered_accum_bad.cpp": ("src/core/unordered_accum_bad.cpp", 1),
    "nondet_bad.cpp": ("src/core/nondet_bad.cpp", 1),
    "contract_bad.hpp": ("src/core/contract_bad.hpp", 1),
    "merge_bad.hpp": ("src/obs/merge_bad.hpp", 1),
    "waiver_roundtrip.cpp": ("src/core/waiver_roundtrip.cpp", 0),
    "waiver_missing_reason.cpp": ("src/core/waiver_missing_reason.cpp", 1),
}


def run(args):
    return subprocess.run([sys.executable, ANALYZER] + args,
                          capture_output=True, text=True)


def main():
    failures = []

    proc = run(["--selftest-only"])
    if proc.returncode != 0:
        failures.append("selftest failed:\n%s%s" % (proc.stdout, proc.stderr))

    for name in sorted(CASES):
        virtual, want_exit = CASES[name]
        fixture = os.path.join(FIXTURES, name)
        expected_path = os.path.join(
            FIXTURES, os.path.splitext(name)[0] + ".expected")
        with open(expected_path, encoding="utf-8") as f:
            expected = f.read()
        proc = run(["--no-selftest", "--check-file",
                    "%s:%s" % (fixture, virtual)])
        if proc.returncode != want_exit:
            failures.append("%s: exit %d, expected %d\n%s%s"
                            % (name, proc.returncode, want_exit,
                               proc.stdout, proc.stderr))
        if proc.stdout != expected:
            failures.append(
                "%s: findings drifted from the golden file.\n"
                "--- expected (%s)\n%s--- got\n%s"
                % (name, os.path.basename(expected_path), expected,
                   proc.stdout))

    proc = run([ROOT])
    if proc.returncode not in (0, 77):
        failures.append("clean-tree run reported findings (exit %d):\n%s%s"
                        % (proc.returncode, proc.stdout, proc.stderr))

    if failures:
        for f in failures:
            print("test_analyzer: FAIL: %s" % f, file=sys.stderr)
        print("test_analyzer: %d failure(s)" % len(failures),
              file=sys.stderr)
        return 1
    print("test_analyzer: OK — selftest, %d fixture goldens, clean tree"
          % len(CASES))
    return 0


if __name__ == "__main__":
    sys.exit(main())
