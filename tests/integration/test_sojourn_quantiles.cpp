// Integration: the simulated per-computer sojourn-time *distribution*
// matches the analytic M/M/1 model, not just its mean. Each computer of
// the Table 1 system under the NASH profile is an M/M/1 queue, so its
// sojourn time is Exponential(mu_i - lambda_i) with exact quantile
//   Q_i(q) = -ln(1 - q) / (mu_i - lambda_i),
// which the per-facility obs::Histogram must reproduce at p50/p90/p99
// within the stated tolerance (10%, 15% at p99 where the per-computer
// tail sample is thinner). Skipped in an obs-disabled build, where the
// histograms are no-op twins.
#include <gtest/gtest.h>

#include <cmath>

#include "obs/histogram.hpp"
#include "schemes/registry.hpp"
#include "simmodel/replication.hpp"
#include "workload/configs.hpp"

namespace nashlb {
namespace {

TEST(SojournQuantiles, MatchExactMm1ExponentialQuantiles) {
  if constexpr (!obs::kEnabled) {
    GTEST_SKIP() << "obs layer compiled out: no sojourn histograms";
  }
  const core::Instance inst = workload::table1_instance(0.6);
  const schemes::SchemePtr scheme = schemes::make_scheme("NASH");
  const core::StrategyProfile profile = scheme->solve(inst);

  simmodel::ReplicationConfig cfg;
  cfg.base.horizon = 2000.0;
  cfg.base.warmup = 100.0;
  cfg.replications = 3;
  const simmodel::ReplicatedResult sim =
      simmodel::replicate(inst, profile, cfg);

  const std::size_t n = inst.num_computers();
  std::vector<obs::Histogram> merged(n);
  for (const simmodel::SimRunResult& run : sim.runs) {
    ASSERT_EQ(run.computer_sojourn.size(), n);
    for (std::size_t i = 0; i < n; ++i) {
      merged[i].merge(run.computer_sojourn[i]);
    }
  }

  std::size_t checked = 0;
  for (std::size_t i = 0; i < n; ++i) {
    double lambda = 0.0;
    for (std::size_t j = 0; j < inst.num_users(); ++j) {
      lambda += profile.at(j, i) * inst.phi[j];
    }
    // Idle or barely-loaded computers carry too few jobs for stable
    // p99 estimates; the Table 1 NASH profile loads every fast computer.
    if (merged[i].count() < 10000) continue;
    ++checked;
    ASSERT_LT(lambda, inst.mu[i]) << "computer " << i;
    for (const auto& [q, tol] :
         {std::pair{0.50, 0.10}, {0.90, 0.10}, {0.99, 0.15}}) {
      const double exact = -std::log1p(-q) / (inst.mu[i] - lambda);
      const double simulated = merged[i].quantile(q);
      EXPECT_NEAR(simulated, exact, tol * exact)
          << "computer " << i << " q=" << q << " (" << merged[i].count()
          << " jobs)";
    }
  }
  // The check must actually bite: the paper's system keeps its fast
  // computers busy, so several must clear the sample-size floor.
  EXPECT_GE(checked, 3u);
}

}  // namespace
}  // namespace nashlb
