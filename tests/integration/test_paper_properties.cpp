// Integration: the qualitative claims of the paper's evaluation (§4.2)
// hold on the exact experimental configurations — these are the
// regression gates behind the Figure 2-6 benches.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "core/equilibrium.hpp"
#include "schemes/gos.hpp"
#include "schemes/ios.hpp"
#include "schemes/metrics.hpp"
#include "schemes/nash.hpp"
#include "schemes/ps.hpp"
#include "workload/configs.hpp"

namespace nashlb {
namespace {

using schemes::evaluate;
using schemes::Metrics;

Metrics metrics_of(const core::Instance& inst, const char* name) {
  if (std::string(name) == "NASH") {
    return evaluate(inst, schemes::NashScheme(
                              core::Initialization::Proportional, 1e-8)
                              .solve(inst));
  }
  if (std::string(name) == "GOS") {
    return evaluate(inst, schemes::GlobalOptimalScheme().solve(inst));
  }
  if (std::string(name) == "IOS") {
    return evaluate(inst, schemes::IndividualOptimalScheme().solve(inst));
  }
  return evaluate(inst, schemes::ProportionalScheme().solve(inst));
}

// --- Figure 2 / 3: convergence ----------------------------------------

TEST(Figure2, NashPConvergesInFewerIterationsThanNash0) {
  const core::Instance inst = workload::table1_instance(0.6);
  const auto r0 = schemes::NashScheme(core::Initialization::Zero, 1e-3)
                      .solve_with_trace(inst);
  const auto rp =
      schemes::NashScheme(core::Initialization::Proportional, 1e-3)
          .solve_with_trace(inst);
  ASSERT_TRUE(r0.converged);
  ASSERT_TRUE(rp.converged);
  // Direction of §4.2.1's claim: the proportional start is closer to the
  // equilibrium, so NASH_P needs strictly fewer rounds and starts from a
  // much smaller norm. (Our measured reduction is 10-30%, not the paper's
  // ">half" — see EXPERIMENTS.md F2 for the discussion.)
  EXPECT_LT(rp.iterations, r0.iterations);
  EXPECT_LT(2.0 * rp.norm_history.front(), r0.norm_history.front());
}

TEST(Figure2, NormDecreasesMonotonicallyAfterFirstRounds) {
  const core::Instance inst = workload::table1_instance(0.6);
  const auto res =
      schemes::NashScheme(core::Initialization::Proportional, 1e-6)
          .solve_with_trace(inst);
  ASSERT_TRUE(res.converged);
  for (std::size_t l = 1; l + 1 < res.norm_history.size(); ++l) {
    EXPECT_LE(res.norm_history[l + 1], res.norm_history[l] * 1.5)
        << "round " << l;
  }
}

TEST(Figure3, BothVariantsConvergeForFourToThirtyTwoUsers) {
  for (std::size_t m : {4u, 8u, 16u, 32u}) {
    const core::Instance inst = workload::table1_instance(0.6, m);
    for (auto init :
         {core::Initialization::Zero, core::Initialization::Proportional}) {
      const auto res =
          schemes::NashScheme(init, 1e-2, 2000).solve_with_trace(inst);
      EXPECT_TRUE(res.converged) << "m=" << m;
      EXPECT_TRUE(core::is_nash_equilibrium(inst, res.profile, 1e-2))
          << "m=" << m;
    }
  }
}

// --- Figure 4: effect of system utilization ---------------------------

TEST(Figure4, LowLoadAllButPsCoincide) {
  const core::Instance inst = workload::table1_instance(0.1);
  const Metrics nash = metrics_of(inst, "NASH");
  const Metrics gos = metrics_of(inst, "GOS");
  const Metrics ios = metrics_of(inst, "IOS");
  const Metrics ps = metrics_of(inst, "PS");
  EXPECT_NEAR(nash.overall_response_time, gos.overall_response_time,
              0.05 * gos.overall_response_time);
  EXPECT_NEAR(ios.overall_response_time, gos.overall_response_time,
              0.05 * gos.overall_response_time);
  // PS is clearly worse even at low load.
  EXPECT_GT(ps.overall_response_time, 1.5 * gos.overall_response_time);
}

TEST(Figure4, MediumLoadNashNearGosAndWellBelowPs) {
  const core::Instance inst = workload::table1_instance(0.5);
  const Metrics nash = metrics_of(inst, "NASH");
  const Metrics gos = metrics_of(inst, "GOS");
  const Metrics ps = metrics_of(inst, "PS");
  // "mean response time of NASH is 30% less than PS and 7% greater than
  // GOS" — we require the same direction and rough magnitude.
  EXPECT_LT(nash.overall_response_time, 0.8 * ps.overall_response_time);
  EXPECT_LT(nash.overall_response_time, 1.2 * gos.overall_response_time);
  EXPECT_GE(nash.overall_response_time,
            gos.overall_response_time - 1e-12);
}

TEST(Figure4, HighLoadOrderingGosNashBelowIosPs) {
  const core::Instance inst = workload::table1_instance(0.9);
  const Metrics nash = metrics_of(inst, "NASH");
  const Metrics gos = metrics_of(inst, "GOS");
  const Metrics ios = metrics_of(inst, "IOS");
  const Metrics ps = metrics_of(inst, "PS");
  EXPECT_LT(gos.overall_response_time, ios.overall_response_time);
  EXPECT_LT(nash.overall_response_time, ios.overall_response_time);
  // IOS and PS converge toward each other at high load.
  EXPECT_NEAR(ios.overall_response_time, ps.overall_response_time,
              0.15 * ps.overall_response_time);
}

TEST(Figure4, FairnessProfile) {
  // PS and IOS pin fairness at 1; NASH stays close to 1; GOS degrades
  // badly at high load.
  for (double util : {0.2, 0.5, 0.8, 0.9}) {
    const core::Instance inst = workload::table1_instance(util);
    EXPECT_NEAR(metrics_of(inst, "PS").fairness, 1.0, 1e-9) << util;
    EXPECT_NEAR(metrics_of(inst, "IOS").fairness, 1.0, 1e-9) << util;
    EXPECT_GT(metrics_of(inst, "NASH").fairness, 0.95) << util;
  }
  // GOS's fairness degrades with load. (The paper prints "0.2" at high
  // load, but Jain's index over GOS user times is bounded below by ~0.55
  // on this system because per-computer response times under the sqrt
  // rule differ by at most sqrt(mu_max/mu_min) = sqrt(10); see
  // EXPERIMENTS.md F4. We assert the defensible part: a clear drop.)
  const double gos_low =
      metrics_of(workload::table1_instance(0.1), "GOS").fairness;
  const double gos_high =
      metrics_of(workload::table1_instance(0.9), "GOS").fairness;
  EXPECT_LT(gos_high, 0.95);
  EXPECT_LT(gos_high, gos_low);
}

// --- Figure 5: per-user response times at 60% load ---------------------

TEST(Figure5, PsAndIosGiveIdenticalTimesToEveryUser) {
  const core::Instance inst = workload::table1_instance(0.6);
  for (const char* name : {"PS", "IOS"}) {
    const Metrics m = metrics_of(inst, name);
    for (std::size_t j = 1; j < m.user_response_times.size(); ++j) {
      EXPECT_NEAR(m.user_response_times[j], m.user_response_times[0],
                  1e-9)
          << name;
    }
  }
}

TEST(Figure5, GosSpreadsUsersNashDoesNot) {
  const core::Instance inst = workload::table1_instance(0.6);
  const Metrics gos = metrics_of(inst, "GOS");
  const Metrics nash = metrics_of(inst, "NASH");
  auto spread = [](const std::vector<double>& v) {
    double lo = v[0], hi = v[0];
    for (double x : v) {
      lo = std::min(lo, x);
      hi = std::max(hi, x);
    }
    return hi / lo;
  };
  EXPECT_GT(spread(gos.user_response_times), 2.0);   // "large differences"
  EXPECT_LT(spread(nash.user_response_times), 1.2);  // near-equal
}

TEST(Figure5, NashGivesEachUserItsMinimumPossibleTime) {
  const core::Instance inst = workload::table1_instance(0.6);
  const core::StrategyProfile s =
      schemes::NashScheme(core::Initialization::Proportional, 1e-9)
          .solve(inst);
  EXPECT_LE(core::max_best_reply_gain(inst, s), 1e-6);
}

// --- Figure 6: effect of heterogeneity --------------------------------

TEST(Figure6, HighSkewNashApproachesGos) {
  const core::Instance inst = workload::skewness_instance(20.0, 0.6);
  const Metrics nash = metrics_of(inst, "NASH");
  const Metrics gos = metrics_of(inst, "GOS");
  EXPECT_NEAR(nash.overall_response_time, gos.overall_response_time,
              0.05 * gos.overall_response_time);
}

TEST(Figure6, IosGoodAtHighSkewPoorAtLowSkew) {
  const Metrics ios_high = metrics_of(
      workload::skewness_instance(20.0, 0.6), "IOS");
  const Metrics gos_high = metrics_of(
      workload::skewness_instance(20.0, 0.6), "GOS");
  EXPECT_LT(ios_high.overall_response_time,
            1.1 * gos_high.overall_response_time);

  const Metrics ios_low =
      metrics_of(workload::skewness_instance(1.0, 0.6), "IOS");
  const Metrics gos_low =
      metrics_of(workload::skewness_instance(1.0, 0.6), "GOS");
  // Homogeneous system: Wardrop == proportional == ... everything equal;
  // the "poor" IOS behaviour shows at intermediate skews.
  EXPECT_NEAR(ios_low.overall_response_time,
              gos_low.overall_response_time,
              1e-9);
  const Metrics ios_mid =
      metrics_of(workload::skewness_instance(4.0, 0.6), "IOS");
  const Metrics gos_mid =
      metrics_of(workload::skewness_instance(4.0, 0.6), "GOS");
  EXPECT_GT(ios_mid.overall_response_time,
            1.05 * gos_mid.overall_response_time);
}

TEST(Figure6, PsDegradesWithSkew) {
  const Metrics ps = metrics_of(workload::skewness_instance(16.0, 0.6), "PS");
  const Metrics nash =
      metrics_of(workload::skewness_instance(16.0, 0.6), "NASH");
  EXPECT_GT(ps.overall_response_time, 2.0 * nash.overall_response_time);
}

TEST(Figure6, FairnessAtHighSkew) {
  const core::Instance inst = workload::skewness_instance(18.0, 0.6);
  EXPECT_NEAR(metrics_of(inst, "PS").fairness, 1.0, 1e-9);
  EXPECT_NEAR(metrics_of(inst, "IOS").fairness, 1.0, 1e-9);
  EXPECT_GT(metrics_of(inst, "NASH").fairness, 0.95);
}

}  // namespace
}  // namespace nashlb
