// Integration: the DES simulation agrees with the analytic M/M/1 model
// for every scheme on the paper's Table 1 system (V1 in DESIGN.md).
#include <gtest/gtest.h>

#include <cmath>

#include "core/cost.hpp"
#include "schemes/metrics.hpp"
#include "schemes/registry.hpp"
#include "simmodel/replication.hpp"
#include "workload/configs.hpp"

namespace nashlb {
namespace {

class SimVsAnalytic : public ::testing::TestWithParam<const char*> {};

TEST_P(SimVsAnalytic, OverallResponseWithinFivePercent) {
  const core::Instance inst = workload::table1_instance(0.6);
  const schemes::SchemePtr scheme = schemes::make_scheme(GetParam());
  const core::StrategyProfile profile = scheme->solve(inst);
  const double analytic = core::overall_response_time(inst, profile);

  simmodel::ReplicationConfig cfg;
  cfg.base.horizon = 3000.0;
  cfg.base.warmup = 200.0;
  cfg.replications = 5;
  const simmodel::ReplicatedResult sim =
      simmodel::replicate(inst, profile, cfg);

  EXPECT_NEAR(sim.overall_response.mean, analytic, 0.05 * analytic)
      << GetParam() << ": sim " << sim.overall_response.mean
      << " vs analytic " << analytic;
  EXPECT_LT(sim.overall_response.relative_half_width(), 0.05);
}

TEST_P(SimVsAnalytic, PerUserResponseTracksAnalytic) {
  const core::Instance inst = workload::table1_instance(0.5);
  const schemes::SchemePtr scheme = schemes::make_scheme(GetParam());
  const core::StrategyProfile profile = scheme->solve(inst);
  const std::vector<double> analytic =
      core::user_response_times(inst, profile);

  simmodel::ReplicationConfig cfg;
  cfg.base.horizon = 3000.0;
  cfg.base.warmup = 200.0;
  cfg.replications = 5;
  const simmodel::ReplicatedResult sim =
      simmodel::replicate(inst, profile, cfg);

  for (std::size_t j = 0; j < analytic.size(); ++j) {
    EXPECT_NEAR(sim.user_response[j].mean, analytic[j],
                0.10 * analytic[j])
        << GetParam() << " user " << j;
  }
}

INSTANTIATE_TEST_SUITE_P(PaperSchemes, SimVsAnalytic,
                         ::testing::Values("NASH", "GOS", "IOS", "PS"),
                         [](const auto& param_info) {
                           return std::string(param_info.param);
                         });

}  // namespace
}  // namespace nashlb
