// Integration: output-analysis methodology cross-checks and the fuzz
// sweep backing the paper's open convergence question.
#include <gtest/gtest.h>

#include <cmath>

#include "core/cost.hpp"
#include "core/dynamics.hpp"
#include "core/equilibrium.hpp"
#include "simmodel/replication.hpp"
#include "stats/batch_means.hpp"
#include "stats/histogram.hpp"
#include "workload/configs.hpp"
#include "workload/random.hpp"

namespace nashlb {
namespace {

TEST(Methodology, BatchMeansAgreesWithReplications) {
  // Same experiment, both §4.1-style replications and a single long run
  // analysed by batch means: the intervals must overlap and both must
  // cover the analytic value.
  core::Instance inst;
  inst.mu = {10.0, 5.0};
  inst.phi = {4.0, 2.0};
  const core::StrategyProfile s = core::StrategyProfile::proportional(inst);
  const double analytic = core::overall_response_time(inst, s);

  simmodel::ReplicationConfig rep_cfg;
  rep_cfg.base.horizon = 2000.0;
  rep_cfg.base.warmup = 100.0;
  const simmodel::ReplicatedResult reps =
      simmodel::replicate(inst, s, rep_cfg);

  stats::BatchMeans bm(2000);  // ~30 batches at Phi * horizon samples
  simmodel::SimConfig long_run;
  long_run.horizon = 10000.0;
  long_run.warmup = 100.0;
  long_run.on_sample = [&](std::size_t, double r) { bm.add(r); };
  (void)simmodel::simulate(inst, s, long_run);

  ASSERT_GE(bm.batch_count(), 10u);
  const stats::ConfidenceInterval bm_ci = bm.interval(0.95);
  EXPECT_NEAR(bm_ci.mean, analytic, 0.05 * analytic);
  EXPECT_NEAR(reps.overall_response.mean, analytic, 0.05 * analytic);
  // Intervals overlap.
  EXPECT_LT(std::max(bm_ci.lower(), reps.overall_response.lower()),
            std::min(bm_ci.upper(), reps.overall_response.upper()));
  // Batches long enough: low lag-1 autocorrelation.
  EXPECT_LT(std::fabs(bm.lag1_autocorrelation()), 0.4);
}

TEST(Methodology, ResponseTimeDistributionIsExponentialForMM1) {
  // For a single M/M/1 computer the sojourn time is exponential with
  // rate mu - lambda; the simulated histogram must match that tail.
  core::Instance inst;
  inst.mu = {10.0};
  inst.phi = {4.0};
  core::StrategyProfile s(1, 1);
  s.set(0, 0, 1.0);

  stats::Histogram hist(0.0, 1.0, 20);
  simmodel::SimConfig cfg;
  cfg.horizon = 20000.0;
  cfg.warmup = 200.0;
  cfg.on_sample = [&](std::size_t, double r) { hist.add(r); };
  (void)simmodel::simulate(inst, s, cfg);

  ASSERT_GT(hist.total(), 50000u);
  const double rate = 6.0;  // mu - lambda
  for (std::size_t bin = 0; bin < hist.bin_count(); bin += 4) {
    const auto [lo, hi] = hist.bin_edges(bin);
    const double expect =
        std::exp(-rate * lo) - std::exp(-rate * hi);
    EXPECT_NEAR(hist.fraction(bin), expect, 0.15 * expect + 0.002)
        << "bin " << bin;
  }
}

class ConvergenceFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ConvergenceFuzz, RandomInstancesConvergeAndCertify) {
  workload::RandomInstanceOptions opts;
  stats::Xoshiro256 meta(GetParam());
  opts.num_computers = 2 + meta.next_below(30);
  opts.num_users = 2 + meta.next_below(16);
  opts.utilization = 0.15 + 0.75 * meta.next_double();
  opts.heterogeneity = 1.0 + 49.0 * meta.next_double();
  opts.user_skew = 1.0 + 9.0 * meta.next_double();
  opts.seed = GetParam() * 1000;
  const core::Instance inst = workload::random_instance(opts);

  core::DynamicsOptions dopts;
  dopts.tolerance = 1e-8;
  dopts.max_iterations = 5000;
  const core::DynamicsResult res = core::best_reply_dynamics(inst, dopts);
  ASSERT_TRUE(res.converged)
      << "n=" << opts.num_computers << " m=" << opts.num_users
      << " rho=" << opts.utilization;
  EXPECT_TRUE(core::is_nash_equilibrium(inst, res.profile, 1e-5));
  for (std::size_t j = 0; j < inst.num_users(); ++j) {
    EXPECT_LT(core::kkt_residual(inst, res.profile, j), 1e-3);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConvergenceFuzz,
                         ::testing::Range<std::uint64_t>(1, 21));

}  // namespace
}  // namespace nashlb
