#include "core/dynamics.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "core/cost.hpp"
#include "core/equilibrium.hpp"

namespace nashlb::core {
namespace {

Instance hetero_instance(std::size_t users, double utilization) {
  Instance inst;
  inst.mu = {10.0, 10.0, 20.0, 50.0, 100.0, 100.0};
  const double cap = std::accumulate(inst.mu.begin(), inst.mu.end(), 0.0);
  inst.phi.assign(users, utilization * cap / static_cast<double>(users));
  return inst;
}

TEST(Dynamics, ConvergesToNashFromProportional) {
  const Instance inst = hetero_instance(4, 0.6);
  DynamicsOptions opts;
  opts.init = Initialization::Proportional;
  opts.tolerance = 1e-8;
  const DynamicsResult res = best_reply_dynamics(inst, opts);
  EXPECT_TRUE(res.converged);
  EXPECT_FALSE(res.diverged);
  EXPECT_TRUE(res.profile.is_feasible(inst));
  EXPECT_TRUE(is_nash_equilibrium(inst, res.profile, 1e-6));
}

TEST(Dynamics, ConvergesToNashFromZero) {
  const Instance inst = hetero_instance(4, 0.6);
  DynamicsOptions opts;
  opts.init = Initialization::Zero;
  opts.tolerance = 1e-8;
  const DynamicsResult res = best_reply_dynamics(inst, opts);
  EXPECT_TRUE(res.converged);
  EXPECT_TRUE(is_nash_equilibrium(inst, res.profile, 1e-6));
}

TEST(Dynamics, BothInitializationsReachTheSameEquilibrium) {
  // Orda et al.: the equilibrium is unique for these cost functions, so
  // the two variants must agree.
  const Instance inst = hetero_instance(5, 0.7);
  DynamicsOptions o0;
  o0.init = Initialization::Zero;
  o0.tolerance = 1e-10;
  DynamicsOptions op = o0;
  op.init = Initialization::Proportional;
  const DynamicsResult r0 = best_reply_dynamics(inst, o0);
  const DynamicsResult rp = best_reply_dynamics(inst, op);
  ASSERT_TRUE(r0.converged);
  ASSERT_TRUE(rp.converged);
  EXPECT_LT(r0.profile.max_difference(rp.profile), 1e-4);
}

TEST(Dynamics, ProportionalInitConvergesFaster) {
  // The headline claim behind NASH_P (Figure 2).
  const Instance inst = hetero_instance(10, 0.6);
  DynamicsOptions o0;
  o0.init = Initialization::Zero;
  o0.tolerance = 1e-6;
  DynamicsOptions op = o0;
  op.init = Initialization::Proportional;
  const DynamicsResult r0 = best_reply_dynamics(inst, o0);
  const DynamicsResult rp = best_reply_dynamics(inst, op);
  ASSERT_TRUE(r0.converged);
  ASSERT_TRUE(rp.converged);
  EXPECT_LT(rp.iterations, r0.iterations);
}

TEST(Dynamics, NormHistoryIsRecordedAndDecays) {
  const Instance inst = hetero_instance(6, 0.5);
  DynamicsOptions opts;
  opts.tolerance = 1e-9;
  const DynamicsResult res = best_reply_dynamics(inst, opts);
  ASSERT_TRUE(res.converged);
  ASSERT_EQ(res.norm_history.size(), res.iterations);
  EXPECT_LE(res.norm_history.back(), 1e-9);
  // The norm at the end is far below the norm after round 1.
  EXPECT_LT(res.norm_history.back(),
            res.norm_history.front() * 1e-3 + 1e-12);
}

TEST(Dynamics, ObserverSeesEveryRound) {
  const Instance inst = hetero_instance(3, 0.4);
  std::size_t calls = 0;
  std::size_t last_round = 0;
  DynamicsOptions opts;
  const DynamicsResult res = best_reply_dynamics(
      inst, opts, [&](std::size_t round, const StrategyProfile& p, double) {
        ++calls;
        EXPECT_EQ(round, last_round + 1);
        last_round = round;
        EXPECT_EQ(p.num_users(), inst.num_users());
      });
  EXPECT_EQ(calls, res.iterations);
}

TEST(Dynamics, SingleUserConvergesInOneEffectiveRound) {
  // With one user, the first best reply is already optimal; the second
  // round only confirms it (norm 0).
  Instance inst;
  inst.mu = {10.0, 5.0};
  inst.phi = {6.0};
  DynamicsOptions opts;
  opts.init = Initialization::Zero;
  opts.tolerance = 1e-12;
  const DynamicsResult res = best_reply_dynamics(inst, opts);
  EXPECT_TRUE(res.converged);
  EXPECT_LE(res.iterations, 2u);
  EXPECT_TRUE(is_nash_equilibrium(inst, res.profile, 1e-9));
}

TEST(Dynamics, IterationCapReportsNonConvergence) {
  const Instance inst = hetero_instance(8, 0.9);
  DynamicsOptions opts;
  opts.tolerance = 0.0;     // unreachable
  opts.max_iterations = 3;  // tiny cap
  const DynamicsResult res = best_reply_dynamics(inst, opts);
  EXPECT_FALSE(res.converged);
  EXPECT_EQ(res.iterations, 3u);
}

TEST(Dynamics, UserTimesMatchProfile) {
  const Instance inst = hetero_instance(4, 0.6);
  const DynamicsResult res = best_reply_dynamics(inst);
  const std::vector<double> direct = user_response_times(inst, res.profile);
  ASSERT_EQ(res.user_times.size(), direct.size());
  for (std::size_t j = 0; j < direct.size(); ++j) {
    EXPECT_NEAR(res.user_times[j], direct[j], 1e-12);
  }
}

TEST(Dynamics, FromExplicitStartProfile) {
  const Instance inst = hetero_instance(3, 0.5);
  StrategyProfile start = StrategyProfile::proportional(inst);
  const DynamicsResult res = best_reply_dynamics_from(inst, start);
  EXPECT_TRUE(res.converged);
  EXPECT_TRUE(is_nash_equilibrium(inst, res.profile, 1e-3));

  StrategyProfile wrong(2, 2);
  EXPECT_THROW((void)best_reply_dynamics_from(inst, wrong),
               std::invalid_argument);
}

TEST(Dynamics, JacobiVariantRunsAndReportsHonestly) {
  // Simultaneous updates are not the paper's algorithm; at moderate load
  // they often still converge, but the contract is only "no silent lie":
  // either converged, or diverged/cap-hit is flagged.
  const Instance inst = hetero_instance(4, 0.3);
  DynamicsOptions opts;
  opts.order = UpdateOrder::Simultaneous;
  opts.max_iterations = 200;
  const DynamicsResult res = best_reply_dynamics(inst, opts);
  if (res.converged) {
    EXPECT_FALSE(res.diverged);
    EXPECT_TRUE(res.profile.is_feasible(inst));
  } else {
    EXPECT_TRUE(res.diverged || res.iterations == 200u);
  }
}

TEST(Dynamics, JacobiIsBitwiseIdenticalAcrossThreadCounts) {
  // The tentpole determinism claim: a pooled Jacobi round reads only the
  // frozen loads and the user's own row, so every thread count — and the
  // serial path — must produce the same bits, not just the same limits.
  const Instance inst = hetero_instance(16, 0.5);
  DynamicsOptions base;
  base.order = UpdateOrder::Simultaneous;
  base.tolerance = 1e-10;
  base.max_iterations = 300;
  base.threads = 1;
  const DynamicsResult serial = best_reply_dynamics(inst, base);
  for (std::size_t threads : {2u, 4u, 8u}) {
    DynamicsOptions opts = base;
    opts.threads = threads;
    const DynamicsResult pooled = best_reply_dynamics(inst, opts);
    EXPECT_EQ(pooled.iterations, serial.iterations) << threads << " threads";
    EXPECT_EQ(pooled.converged, serial.converged) << threads << " threads";
    EXPECT_EQ(pooled.profile.max_difference(serial.profile), 0.0)
        << threads << " threads";
    ASSERT_EQ(pooled.norm_history.size(), serial.norm_history.size());
    for (std::size_t r = 0; r < serial.norm_history.size(); ++r) {
      EXPECT_EQ(pooled.norm_history[r], serial.norm_history[r])
          << threads << " threads, round " << r + 1;
    }
  }
}

TEST(Dynamics, JacobiAutoThreadsMatchesSerialBitwise) {
  // threads = 0 resolves via NASHLB_THREADS / hardware concurrency;
  // whatever it picks, the bits must not move.
  const Instance inst = hetero_instance(8, 0.6);
  DynamicsOptions serial;
  serial.order = UpdateOrder::Simultaneous;
  serial.tolerance = 1e-9;
  serial.max_iterations = 300;
  DynamicsOptions autod = serial;
  autod.threads = 0;
  const DynamicsResult a = best_reply_dynamics(inst, serial);
  const DynamicsResult b = best_reply_dynamics(inst, autod);
  EXPECT_EQ(a.iterations, b.iterations);
  EXPECT_EQ(a.profile.max_difference(b.profile), 0.0);
}

TEST(Dynamics, PooledJacobiDivergenceIsDetectedIdentically) {
  // Near saturation Jacobi overshoots; the pooled feasibility scan must
  // flag the same round the serial scan does.
  const Instance inst = hetero_instance(12, 0.95);
  DynamicsOptions serial;
  serial.order = UpdateOrder::Simultaneous;
  serial.max_iterations = 50;
  serial.tolerance = 1e-12;
  DynamicsOptions pooled = serial;
  pooled.threads = 4;
  const DynamicsResult a = best_reply_dynamics(inst, serial);
  const DynamicsResult b = best_reply_dynamics(inst, pooled);
  EXPECT_EQ(a.diverged, b.diverged);
  EXPECT_EQ(a.converged, b.converged);
  EXPECT_EQ(a.iterations, b.iterations);
  EXPECT_EQ(a.profile.max_difference(b.profile), 0.0);
}

TEST(Dynamics, RandomOrderConvergesToTheSameEquilibrium) {
  const Instance inst = hetero_instance(6, 0.7);
  DynamicsOptions rr;
  rr.tolerance = 1e-10;
  DynamicsOptions rnd = rr;
  rnd.order = UpdateOrder::RandomOrder;
  const DynamicsResult a = best_reply_dynamics(inst, rr);
  const DynamicsResult b = best_reply_dynamics(inst, rnd);
  ASSERT_TRUE(a.converged);
  ASSERT_TRUE(b.converged);
  EXPECT_LT(a.profile.max_difference(b.profile), 1e-4);
  EXPECT_TRUE(is_nash_equilibrium(inst, b.profile, 1e-6));
}

TEST(Dynamics, RandomOrderIsDeterministicPerSeed) {
  const Instance inst = hetero_instance(5, 0.6);
  DynamicsOptions o;
  o.order = UpdateOrder::RandomOrder;
  o.tolerance = 1e-8;
  o.order_seed = 99;
  const DynamicsResult a = best_reply_dynamics(inst, o);
  const DynamicsResult b = best_reply_dynamics(inst, o);
  EXPECT_EQ(a.iterations, b.iterations);
  EXPECT_DOUBLE_EQ(a.profile.max_difference(b.profile), 0.0);
}

TEST(Dynamics, EquilibriumUserTimesDoNotExceedProportional) {
  // At the Nash equilibrium every user does at least as well as it would
  // if it stayed at the shared proportional profile... deviating first is
  // weakly better for the deviator, and the dynamics started there.
  const Instance inst = hetero_instance(5, 0.6);
  const StrategyProfile prop = StrategyProfile::proportional(inst);
  const std::vector<double> before = user_response_times(inst, prop);
  DynamicsOptions opts;
  opts.tolerance = 1e-8;
  const DynamicsResult res = best_reply_dynamics(inst, opts);
  ASSERT_TRUE(res.converged);
  // All users are symmetric here (equal phi), so the equilibrium is
  // symmetric and dominates the proportional profile for everyone.
  for (std::size_t j = 0; j < inst.num_users(); ++j) {
    EXPECT_LE(res.user_times[j], before[j] + 1e-9);
  }
}

}  // namespace
}  // namespace nashlb::core
