#include "core/cost.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace nashlb::core {
namespace {

Instance two_by_two() {
  Instance inst;
  inst.mu = {10.0, 5.0};
  inst.phi = {4.0, 2.0};
  return inst;
}

TEST(Cost, ComputerResponseTimesAreMM1Sojourns) {
  const Instance inst = two_by_two();
  StrategyProfile s(2, 2);
  s.set_row(0, std::vector<double>{1.0, 0.0});
  s.set_row(1, std::vector<double>{0.0, 1.0});
  const std::vector<double> f = computer_response_times(inst, s);
  EXPECT_DOUBLE_EQ(f[0], 1.0 / (10.0 - 4.0));
  EXPECT_DOUBLE_EQ(f[1], 1.0 / (5.0 - 2.0));
}

TEST(Cost, UserResponseTimeIsStrategyWeighted) {
  const Instance inst = two_by_two();
  StrategyProfile s(2, 2);
  s.set_row(0, std::vector<double>{0.5, 0.5});
  s.set_row(1, std::vector<double>{0.5, 0.5});
  // lambda = (3, 3); F = (1/7, 1/2); D_j = 0.5/7 + 0.5/2 for both users.
  const double expected = 0.5 / 7.0 + 0.5 / 2.0;
  EXPECT_NEAR(user_response_time(inst, s, 0), expected, 1e-12);
  EXPECT_NEAR(user_response_time(inst, s, 1), expected, 1e-12);
  const std::vector<double> d = user_response_times(inst, s);
  EXPECT_NEAR(d[0], expected, 1e-12);
  EXPECT_NEAR(d[1], expected, 1e-12);
}

TEST(Cost, OverallIsJobWeightedAverage) {
  const Instance inst = two_by_two();
  StrategyProfile s(2, 2);
  s.set_row(0, std::vector<double>{1.0, 0.0});
  s.set_row(1, std::vector<double>{0.0, 1.0});
  // D_0 = 1/6, D_1 = 1/3; overall = (4*(1/6) + 2*(1/3))/6.
  const double expected = (4.0 / 6.0 + 2.0 / 3.0) / 6.0;
  EXPECT_NEAR(overall_response_time(inst, s), expected, 1e-12);
}

TEST(Cost, UnusedUnstableComputerDoesNotPoisonUser) {
  Instance inst;
  inst.mu = {10.0, 1.0};
  inst.phi = {4.0, 2.0};
  StrategyProfile s(2, 2);
  s.set_row(0, std::vector<double>{1.0, 0.0});
  s.set_row(1, std::vector<double>{0.0, 1.0});  // 2 > mu_1 = 1: unstable
  // User 0 does not use computer 1 -> finite; user 1 does -> infinite.
  EXPECT_TRUE(std::isfinite(user_response_time(inst, s, 0)));
  EXPECT_TRUE(std::isinf(user_response_time(inst, s, 1)));
  EXPECT_TRUE(std::isinf(overall_response_time(inst, s)));
}

TEST(Cost, OverallFromLoadsMatchesProfileForm) {
  const Instance inst = two_by_two();
  StrategyProfile s(2, 2);
  s.set_row(0, std::vector<double>{0.75, 0.25});
  s.set_row(1, std::vector<double>{0.25, 0.75});
  const std::vector<double> lambda = s.loads(inst);
  EXPECT_NEAR(overall_response_time(inst, s),
              overall_response_time_from_loads(lambda, inst.mu), 1e-12);
}

TEST(Cost, OverallFromLoadsEdgeCases) {
  const std::vector<double> mu{10.0, 5.0};
  EXPECT_DOUBLE_EQ(
      overall_response_time_from_loads(std::vector<double>{0.0, 0.0}, mu),
      0.0);
  EXPECT_TRUE(std::isinf(overall_response_time_from_loads(
      std::vector<double>{10.0, 0.0}, mu)));
  EXPECT_THROW(static_cast<void>(overall_response_time_from_loads(std::vector<double>{1.0}, mu)), std::invalid_argument);
}

TEST(Cost, ConvexityAlongFeasibleSegment) {
  // D_j is convex in the user's own strategy (the appendix proof's key
  // fact): check midpoint convexity on a random segment.
  const Instance inst = two_by_two();
  StrategyProfile base(2, 2);
  base.set_row(1, std::vector<double>{0.5, 0.5});

  auto d_of = [&](double a) {
    StrategyProfile s = base;
    s.set_row(0, std::vector<double>{a, 1.0 - a});
    return user_response_time(inst, s, 0);
  };
  const double a0 = 0.2, a1 = 0.9;
  EXPECT_LE(d_of(0.5 * (a0 + a1)), 0.5 * (d_of(a0) + d_of(a1)) + 1e-12);
}

}  // namespace
}  // namespace nashlb::core
