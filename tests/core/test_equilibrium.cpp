#include "core/equilibrium.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <stdexcept>

#include "core/dynamics.hpp"

namespace nashlb::core {
namespace {

Instance instance(std::size_t users = 4, double util = 0.6) {
  Instance inst;
  inst.mu = {10.0, 20.0, 50.0, 100.0};
  const double cap = std::accumulate(inst.mu.begin(), inst.mu.end(), 0.0);
  inst.phi.assign(users, util * cap / static_cast<double>(users));
  return inst;
}

StrategyProfile equilibrium_of(const Instance& inst) {
  DynamicsOptions opts;
  opts.tolerance = 1e-10;
  const DynamicsResult res = best_reply_dynamics(inst, opts);
  EXPECT_TRUE(res.converged);
  return res.profile;
}

TEST(Equilibrium, ComputedEquilibriumPassesAllCertificates) {
  const Instance inst = instance();
  const StrategyProfile eq = equilibrium_of(inst);

  EXPECT_TRUE(is_nash_equilibrium(inst, eq, 1e-7));
  EXPECT_LE(max_best_reply_gain(inst, eq), 1e-7);
  for (std::size_t j = 0; j < inst.num_users(); ++j) {
    EXPECT_LT(kkt_residual(inst, eq, j), 1e-4) << "user " << j;
  }
}

TEST(Equilibrium, ProportionalProfileIsNotAnEquilibrium) {
  const Instance inst = instance();
  const StrategyProfile prop = StrategyProfile::proportional(inst);
  EXPECT_FALSE(is_nash_equilibrium(inst, prop, 1e-7));
  EXPECT_GT(max_best_reply_gain(inst, prop), 1e-5);
  EXPECT_GT(kkt_residual(inst, prop, 0), 1e-3);
}

TEST(Equilibrium, InfeasibleProfileIsNotAnEquilibrium) {
  const Instance inst = instance();
  StrategyProfile s(inst.num_users(), inst.num_computers());
  EXPECT_FALSE(is_nash_equilibrium(inst, s));  // all-zero: no conservation
}

TEST(Equilibrium, RandomDeviationsCannotBeatEquilibrium) {
  const Instance inst = instance(3, 0.7);
  const StrategyProfile eq = equilibrium_of(inst);
  stats::Xoshiro256 rng(77);
  for (std::size_t j = 0; j < inst.num_users(); ++j) {
    EXPECT_LE(best_random_deviation_gain(inst, eq, j, rng, 300, 0.2), 1e-8)
        << "user " << j;
  }
}

TEST(Equilibrium, RandomDeviationsFindGainOffEquilibrium) {
  const Instance inst = instance(2, 0.3);  // phi_j = 27 each
  // Both users crowd onto computer 2 / 3, leaving faster capacity unused;
  // the falsifier must find an improvement.
  StrategyProfile bad(2, 4);
  bad.set_row(0, std::vector<double>{0.0, 0.0, 1.0, 0.0});
  bad.set_row(1, std::vector<double>{0.0, 0.0, 0.0, 1.0});
  ASSERT_TRUE(bad.is_feasible(inst));
  stats::Xoshiro256 rng(78);
  EXPECT_GT(best_random_deviation_gain(inst, bad, 0, rng, 300, 0.5), 1e-4);
}

TEST(Equilibrium, KktResidualBoundsChecks) {
  const Instance inst = instance();
  const StrategyProfile eq = equilibrium_of(inst);
  EXPECT_THROW((void)kkt_residual(inst, eq, 99), std::out_of_range);
  stats::Xoshiro256 rng(1);
  EXPECT_THROW((void)best_random_deviation_gain(inst, eq, 99, rng),
               std::out_of_range);
}

TEST(Equilibrium, KktResidualInfiniteOnOverloadedProfile) {
  Instance inst;
  inst.mu = {4.0, 10.0};
  inst.phi = {5.0};
  StrategyProfile s(1, 2);
  s.set_row(0, std::vector<double>{1.0, 0.0});  // 5 > 4: overloaded
  EXPECT_TRUE(std::isinf(kkt_residual(inst, s, 0)));
}

TEST(Equilibrium, HeterogeneousUsersStillCertify) {
  Instance inst;
  inst.mu = {10.0, 20.0, 50.0, 100.0};
  inst.phi = {40.0, 20.0, 10.0, 5.0, 4.0};  // very uneven users
  const StrategyProfile eq = equilibrium_of(inst);
  EXPECT_TRUE(is_nash_equilibrium(inst, eq, 1e-6));
  for (std::size_t j = 0; j < inst.num_users(); ++j) {
    EXPECT_LT(kkt_residual(inst, eq, j), 1e-4);
  }
}

}  // namespace
}  // namespace nashlb::core
