// Property sweep for the generic convex best-reply solver: randomized
// agreement with the closed form, KKT certificates on M/M/c, and
// monotonicity of the equilibrium machinery across model mixes.
#include <gtest/gtest.h>

#include <memory>
#include <numeric>

#include "core/convex_reply.hpp"
#include "core/waterfill.hpp"
#include "stats/rng.hpp"

namespace nashlb::core {
namespace {

struct MixParam {
  std::uint64_t seed;
  bool multicore;  // include M/M/c nodes in the mix
};

class ConvexReplyProperty : public ::testing::TestWithParam<MixParam> {};

std::vector<DelayModelPtr> random_models(stats::Xoshiro256& rng,
                                         std::size_t n, bool multicore,
                                         double& capacity) {
  std::vector<DelayModelPtr> models;
  capacity = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double rate = 5.0 + 95.0 * rng.next_double();
    if (multicore && rng.next_below(2) == 0) {
      const unsigned cores = 2 + static_cast<unsigned>(rng.next_below(7));
      models.push_back(
          std::make_shared<MMCDelay>(rate / cores, cores));
      capacity += rate;
    } else {
      models.push_back(std::make_shared<MM1Delay>(rate));
      capacity += rate;
    }
  }
  return models;
}

TEST_P(ConvexReplyProperty, KktCertificateHolds) {
  const auto [seed, multicore] = GetParam();
  stats::Xoshiro256 rng(seed);
  const std::size_t n = 2 + rng.next_below(10);
  double capacity = 0.0;
  const std::vector<DelayModelPtr> models =
      random_models(rng, n, multicore, capacity);

  std::vector<double> background(n);
  double headroom = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    background[i] = 0.6 * models[i]->capacity() * rng.next_double();
    headroom += models[i]->capacity() - background[i];
  }
  const double phi = 0.6 * headroom * rng.next_double_open();
  const ConvexReplyResult r =
      convex_best_reply(models, background, phi, 1e-11);

  // Conservation, positivity, stability.
  EXPECT_NEAR(std::accumulate(r.flow.begin(), r.flow.end(), 0.0), phi,
              1e-6 * (1.0 + phi));
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_GE(r.flow[i], 0.0);
    EXPECT_LT(background[i] + r.flow[i], models[i]->capacity());
  }
  // KKT: equal marginals on support, no better idle computer.
  for (std::size_t i = 0; i < n; ++i) {
    const double load = background[i] + r.flow[i];
    const double g = models[i]->response_time(load) +
                     r.flow[i] * models[i]->response_time_derivative(load);
    if (r.flow[i] > 1e-9 * phi) {
      EXPECT_NEAR(g, r.alpha, 1e-4 * r.alpha) << "computer " << i;
    } else {
      EXPECT_GE(g, r.alpha * (1.0 - 1e-6)) << "computer " << i;
    }
  }
}

TEST_P(ConvexReplyProperty, BeatsRandomFeasibleFlows) {
  const auto [seed, multicore] = GetParam();
  stats::Xoshiro256 rng(seed ^ 0x5a5a5a5aULL);
  const std::size_t n = 2 + rng.next_below(6);
  double capacity = 0.0;
  const std::vector<DelayModelPtr> models =
      random_models(rng, n, multicore, capacity);
  const std::vector<double> background(n, 0.0);
  const double phi = 0.5 * capacity;

  const ConvexReplyResult best = convex_best_reply(models, background, phi);
  auto cost = [&](const std::vector<double>& flow) {
    double c = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      if (flow[i] > 0.0) {
        c += flow[i] * models[i]->response_time(flow[i]);
      }
    }
    return c;
  };
  const double opt = cost(best.flow);

  for (int trial = 0; trial < 50; ++trial) {
    std::vector<double> w(n);
    double wt = 0.0;
    for (double& x : w) {
      x = rng.next_double_open();
      wt += x;
    }
    std::vector<double> flow(n);
    bool ok = true;
    for (std::size_t i = 0; i < n; ++i) {
      flow[i] = phi * w[i] / wt;
      if (flow[i] >= models[i]->capacity()) ok = false;
    }
    if (!ok) continue;
    EXPECT_GE(cost(flow), opt - 1e-7 * (1.0 + opt));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Mixes, ConvexReplyProperty,
    ::testing::Values(MixParam{1, false}, MixParam{2, false},
                      MixParam{3, false}, MixParam{4, true},
                      MixParam{5, true}, MixParam{6, true},
                      MixParam{7, true}, MixParam{8, true}),
    [](const ::testing::TestParamInfo<MixParam>& param_info) {
      return std::string(param_info.param.multicore ? "mixed" : "mm1") +
             "_s" + std::to_string(param_info.param.seed);
    });

}  // namespace
}  // namespace nashlb::core
