#include "core/types.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace nashlb::core {
namespace {

Instance small_instance() {
  Instance inst;
  inst.mu = {10.0, 5.0};
  inst.phi = {4.0, 2.0};
  return inst;
}

TEST(Instance, Aggregates) {
  const Instance inst = small_instance();
  EXPECT_DOUBLE_EQ(inst.total_arrival_rate(), 6.0);
  EXPECT_DOUBLE_EQ(inst.total_capacity(), 15.0);
  EXPECT_DOUBLE_EQ(inst.system_utilization(), 0.4);
  EXPECT_EQ(inst.num_computers(), 2u);
  EXPECT_EQ(inst.num_users(), 2u);
}

TEST(Instance, ValidateAcceptsStableSystem) {
  EXPECT_NO_THROW(small_instance().validate());
}

TEST(Instance, ValidateRejectsOverload) {
  Instance inst = small_instance();
  inst.phi = {10.0, 5.0};  // Phi == capacity
  EXPECT_THROW(inst.validate(), std::invalid_argument);
}

TEST(Instance, ValidateRejectsNonPositiveRates) {
  Instance inst = small_instance();
  inst.mu[0] = 0.0;
  EXPECT_THROW(inst.validate(), std::invalid_argument);
  inst = small_instance();
  inst.phi[1] = -1.0;
  EXPECT_THROW(inst.validate(), std::invalid_argument);
}

TEST(Instance, ValidateRejectsEmpty) {
  Instance inst;
  inst.phi = {1.0};
  EXPECT_THROW(inst.validate(), std::invalid_argument);
  inst.mu = {10.0};
  inst.phi = {};
  EXPECT_THROW(inst.validate(), std::invalid_argument);
}

TEST(StrategyProfile, ZeroConstruction) {
  const StrategyProfile s(3, 4);
  EXPECT_EQ(s.num_users(), 3u);
  EXPECT_EQ(s.num_computers(), 4u);
  for (std::size_t j = 0; j < 3; ++j) {
    for (std::size_t i = 0; i < 4; ++i) {
      EXPECT_DOUBLE_EQ(s.at(j, i), 0.0);
    }
  }
  EXPECT_THROW(StrategyProfile(0, 4), std::invalid_argument);
}

TEST(StrategyProfile, SetAndGetWithBoundsChecks) {
  StrategyProfile s(2, 2);
  s.set(1, 0, 0.7);
  EXPECT_DOUBLE_EQ(s.at(1, 0), 0.7);
  EXPECT_THROW(static_cast<void>(s.at(2, 0)), std::out_of_range);
  EXPECT_THROW(static_cast<void>(s.set(0, 2, 0.1)), std::out_of_range);
}

TEST(StrategyProfile, ProportionalRowsSumToOne) {
  const Instance inst = small_instance();
  const StrategyProfile s = StrategyProfile::proportional(inst);
  for (std::size_t j = 0; j < 2; ++j) {
    EXPECT_NEAR(s.at(j, 0) + s.at(j, 1), 1.0, 1e-12);
    EXPECT_NEAR(s.at(j, 0), 10.0 / 15.0, 1e-12);
  }
  EXPECT_TRUE(s.is_feasible(inst));
}

TEST(StrategyProfile, LoadsAggregateUserFlows) {
  const Instance inst = small_instance();
  StrategyProfile s(2, 2);
  s.set_row(0, std::vector<double>{1.0, 0.0});
  s.set_row(1, std::vector<double>{0.5, 0.5});
  const std::vector<double> lambda = s.loads(inst);
  EXPECT_DOUBLE_EQ(lambda[0], 4.0 + 1.0);
  EXPECT_DOUBLE_EQ(lambda[1], 1.0);
}

TEST(StrategyProfile, AvailableRatesExcludeOwnFlow) {
  const Instance inst = small_instance();
  StrategyProfile s(2, 2);
  s.set_row(0, std::vector<double>{1.0, 0.0});
  s.set_row(1, std::vector<double>{0.5, 0.5});
  // User 0 sees mu minus user 1's flow only.
  const std::vector<double> avail0 = s.available_rates(inst, 0);
  EXPECT_DOUBLE_EQ(avail0[0], 10.0 - 1.0);
  EXPECT_DOUBLE_EQ(avail0[1], 5.0 - 1.0);
  // User 1 sees mu minus user 0's flow only.
  const std::vector<double> avail1 = s.available_rates(inst, 1);
  EXPECT_DOUBLE_EQ(avail1[0], 10.0 - 4.0);
  EXPECT_DOUBLE_EQ(avail1[1], 5.0);
}

TEST(StrategyProfile, FeasibilityChecksAllThreeConstraints) {
  const Instance inst = small_instance();
  StrategyProfile s(2, 2);
  // Conservation violated (all zero).
  EXPECT_FALSE(s.is_feasible(inst));
  // Feasible.
  s.set_row(0, std::vector<double>{0.5, 0.5});
  s.set_row(1, std::vector<double>{0.5, 0.5});
  EXPECT_TRUE(s.is_feasible(inst));
  // Positivity violated.
  s.set_row(0, std::vector<double>{1.5, -0.5});
  EXPECT_FALSE(s.is_feasible(inst));
}

TEST(StrategyProfile, StabilityViolationDetected) {
  Instance inst;
  inst.mu = {4.0, 10.0};
  inst.phi = {6.0};
  StrategyProfile s(1, 2);
  s.set_row(0, std::vector<double>{1.0, 0.0});  // 6 > mu_0 = 4
  EXPECT_FALSE(s.is_feasible(inst));
  s.set_row(0, std::vector<double>{0.0, 1.0});
  EXPECT_TRUE(s.is_feasible(inst));
}

TEST(StrategyProfile, SetRowValidatesSize) {
  StrategyProfile s(1, 3);
  EXPECT_THROW(s.set_row(0, std::vector<double>{1.0}),
               std::invalid_argument);
  EXPECT_THROW(s.set_row(1, std::vector<double>{1.0, 0.0, 0.0}),
               std::out_of_range);
}

TEST(StrategyProfile, MaxDifference) {
  StrategyProfile a(1, 2), b(1, 2);
  a.set_row(0, std::vector<double>{0.3, 0.7});
  b.set_row(0, std::vector<double>{0.5, 0.5});
  EXPECT_NEAR(a.max_difference(b), 0.2, 1e-12);
  EXPECT_DOUBLE_EQ(a.max_difference(a), 0.0);
  StrategyProfile c(2, 2);
  EXPECT_THROW(static_cast<void>(a.max_difference(c)), std::invalid_argument);
}

TEST(StrategyProfile, EqualityIsValueBased) {
  StrategyProfile a(1, 2), b(1, 2);
  EXPECT_TRUE(a == b);
  a.set(0, 0, 0.1);
  EXPECT_FALSE(a == b);
}

}  // namespace
}  // namespace nashlb::core
