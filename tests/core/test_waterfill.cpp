#include "core/waterfill.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <stdexcept>
#include <tuple>
#include <vector>

#include "stats/rng.hpp"

namespace nashlb::core {
namespace {

double total(const std::vector<double>& v) {
  return std::accumulate(v.begin(), v.end(), 0.0);
}

// ---------------------------------------------------------------------
// Directed unit tests
// ---------------------------------------------------------------------

TEST(WaterfillSqrt, RejectsBadInputs) {
  const std::vector<double> mu{10.0, 5.0};
  EXPECT_THROW(waterfill_sqrt(std::vector<double>{}, 1.0),
               std::invalid_argument);
  EXPECT_THROW(waterfill_sqrt(std::vector<double>{10.0, 0.0}, 1.0),
               std::invalid_argument);
  EXPECT_THROW(waterfill_sqrt(mu, -1.0), std::invalid_argument);
  EXPECT_THROW(waterfill_sqrt(mu, 15.0), std::invalid_argument);
  EXPECT_THROW(waterfill_sqrt(mu, 16.0), std::invalid_argument);
}

TEST(WaterfillSqrt, SingleComputerGetsEverything) {
  const WaterfillResult r = waterfill_sqrt(std::vector<double>{10.0}, 7.0);
  EXPECT_DOUBLE_EQ(r.lambda[0], 7.0);
  EXPECT_EQ(r.active_count, 1u);
}

TEST(WaterfillSqrt, ZeroDemandAllocatesNothing) {
  const WaterfillResult r =
      waterfill_sqrt(std::vector<double>{10.0, 5.0}, 0.0);
  EXPECT_DOUBLE_EQ(total(r.lambda), 0.0);
  EXPECT_EQ(r.active_count, 0u);
}

TEST(WaterfillSqrt, HomogeneousSplitsEvenly) {
  const WaterfillResult r =
      waterfill_sqrt(std::vector<double>{8.0, 8.0, 8.0, 8.0}, 6.0);
  for (double l : r.lambda) EXPECT_NEAR(l, 1.5, 1e-12);
  EXPECT_EQ(r.active_count, 4u);
}

TEST(WaterfillSqrt, LowDemandUsesOnlyFastComputers) {
  // With tiny demand the slow computer must stay empty: at the optimum no
  // idle computer's marginal 1/mu may undercut the active marginal.
  const WaterfillResult r =
      waterfill_sqrt(std::vector<double>{100.0, 1.0}, 1.0);
  EXPECT_DOUBLE_EQ(r.lambda[1], 0.0);
  EXPECT_DOUBLE_EQ(r.lambda[0], 1.0);
  EXPECT_EQ(r.active_count, 1u);
}

TEST(WaterfillSqrt, KnownTwoComputerSolution) {
  // mu = {4, 1}, phi = 2: both active iff sqrt(1) > t with
  // t = (5-2)/(2+1) = 1 -> NOT active (boundary); only the fast one used.
  const WaterfillResult r = waterfill_sqrt(std::vector<double>{4.0, 1.0}, 2.0);
  EXPECT_EQ(r.active_count, 1u);
  EXPECT_DOUBLE_EQ(r.lambda[0], 2.0);
  EXPECT_DOUBLE_EQ(r.lambda[1], 0.0);
}

TEST(WaterfillSqrt, KnownTwoComputerInteriorSolution) {
  // mu = {4, 1}, phi = 3: t = (5-3)/3 = 2/3 < 1 -> both active.
  // lambda_0 = 4 - 2*(2/3) = 8/3, lambda_1 = 1 - 2/3 = 1/3.
  const WaterfillResult r = waterfill_sqrt(std::vector<double>{4.0, 1.0}, 3.0);
  EXPECT_EQ(r.active_count, 2u);
  EXPECT_NEAR(r.lambda[0], 8.0 / 3.0, 1e-12);
  EXPECT_NEAR(r.lambda[1], 1.0 / 3.0, 1e-12);
}

TEST(WaterfillSqrt, OrderIndependentOfInputPermutation) {
  const std::vector<double> a{10.0, 20.0, 50.0};
  const std::vector<double> b{50.0, 10.0, 20.0};
  const WaterfillResult ra = waterfill_sqrt(a, 30.0);
  const WaterfillResult rb = waterfill_sqrt(b, 30.0);
  EXPECT_NEAR(ra.lambda[0], rb.lambda[1], 1e-12);
  EXPECT_NEAR(ra.lambda[1], rb.lambda[2], 1e-12);
  EXPECT_NEAR(ra.lambda[2], rb.lambda[0], 1e-12);
}

TEST(WaterfillLinear, EqualizesResponseTimes) {
  const std::vector<double> mu{10.0, 6.0, 2.0};
  const WaterfillResult r = waterfill_linear(mu, 12.0);
  // All active: t = (18-12)/3 = 2 == mu_2 -> boundary, computer 2 dropped:
  // t = (16-12)/2 = 2; lambda = {8, 4, 0}; response times 1/2 each.
  EXPECT_DOUBLE_EQ(r.lambda[0], 8.0);
  EXPECT_DOUBLE_EQ(r.lambda[1], 4.0);
  EXPECT_DOUBLE_EQ(r.lambda[2], 0.0);
  const double f0 = 1.0 / (mu[0] - r.lambda[0]);
  const double f1 = 1.0 / (mu[1] - r.lambda[1]);
  EXPECT_NEAR(f0, f1, 1e-12);
  // The idle computer is not faster than the common level.
  EXPECT_GE(1.0 / mu[2], f0 - 1e-12);
}

TEST(WaterfillLinear, HighDemandActivatesAll) {
  const std::vector<double> mu{10.0, 6.0, 2.0};
  const WaterfillResult r = waterfill_linear(mu, 16.0);
  EXPECT_EQ(r.active_count, 3u);
  const double f0 = 1.0 / (mu[0] - r.lambda[0]);
  for (std::size_t i = 1; i < 3; ++i) {
    EXPECT_NEAR(1.0 / (mu[i] - r.lambda[i]), f0, 1e-12);
  }
}

TEST(WaterfillLinear, RejectsBadInputs) {
  EXPECT_THROW(waterfill_linear(std::vector<double>{}, 1.0),
               std::invalid_argument);
  EXPECT_THROW(waterfill_linear(std::vector<double>{1.0}, 1.0),
               std::invalid_argument);
}

// ---------------------------------------------------------------------
// Property sweep: invariants on random instances
// ---------------------------------------------------------------------

struct SweepParam {
  std::size_t n;          // number of computers
  double utilization;     // demand / capacity
  std::uint64_t seed;
};

class WaterfillProperty : public ::testing::TestWithParam<SweepParam> {};

std::vector<double> random_capacities(std::size_t n, std::uint64_t seed) {
  stats::Xoshiro256 rng(seed);
  std::vector<double> mu(n);
  for (double& m : mu) {
    m = 1.0 + 99.0 * rng.next_double();  // heterogeneity up to ~100x
  }
  return mu;
}

TEST_P(WaterfillProperty, SqrtRuleInvariants) {
  const auto [n, util, seed] = GetParam();
  const std::vector<double> mu = random_capacities(n, seed);
  const double demand = util * total(mu);
  const WaterfillResult r = waterfill_sqrt(mu, demand);

  // Conservation (exact by construction).
  EXPECT_NEAR(total(r.lambda), demand, 1e-9 * (1.0 + demand));
  std::size_t active = 0;
  for (std::size_t i = 0; i < n; ++i) {
    // Positivity and stability.
    EXPECT_GE(r.lambda[i], 0.0);
    EXPECT_LT(r.lambda[i], mu[i]);
    if (r.lambda[i] > 0.0) ++active;
  }
  EXPECT_EQ(active, r.active_count);

  // KKT: equal marginals mu/(mu-l)^2 on the support, no idle computer
  // with a smaller marginal 1/mu.
  double alpha = 0.0;
  std::size_t support = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (r.lambda[i] > 1e-12 * demand) {
      const double slack = mu[i] - r.lambda[i];
      alpha += mu[i] / (slack * slack);
      ++support;
    }
  }
  if (support == 0) return;
  alpha /= static_cast<double>(support);
  for (std::size_t i = 0; i < n; ++i) {
    if (r.lambda[i] > 1e-12 * demand) {
      const double slack = mu[i] - r.lambda[i];
      EXPECT_NEAR(mu[i] / (slack * slack), alpha, 1e-6 * alpha);
    } else {
      EXPECT_GE(1.0 / mu[i], alpha * (1.0 - 1e-9));
    }
  }
}

TEST_P(WaterfillProperty, SqrtRuleBeatsRandomFeasibleAllocations) {
  const auto [n, util, seed] = GetParam();
  const std::vector<double> mu = random_capacities(n, seed);
  const double demand = util * total(mu);
  const WaterfillResult r = waterfill_sqrt(mu, demand);

  auto cost = [&](const std::vector<double>& l) {
    double c = 0.0;
    for (std::size_t i = 0; i < l.size(); ++i) c += l[i] / (mu[i] - l[i]);
    return c;
  };
  const double opt = cost(r.lambda);

  // Random feasible competitors (rejection-sampled proportional jitter).
  stats::Xoshiro256 rng(seed ^ 0xabcdef);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<double> w(n);
    for (double& x : w) x = rng.next_double_open();
    double wt = total(w);
    std::vector<double> l(n);
    bool ok = true;
    for (std::size_t i = 0; i < n; ++i) {
      l[i] = demand * w[i] / wt;
      if (l[i] >= mu[i]) ok = false;
    }
    if (!ok) continue;
    EXPECT_GE(cost(l), opt - 1e-9 * (1.0 + opt));
  }
}

TEST_P(WaterfillProperty, LinearRuleInvariants) {
  const auto [n, util, seed] = GetParam();
  const std::vector<double> mu = random_capacities(n, seed + 17);
  const double demand = util * total(mu);
  const WaterfillResult r = waterfill_linear(mu, demand);

  EXPECT_NEAR(total(r.lambda), demand, 1e-9 * (1.0 + demand));
  double common = -1.0;
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_GE(r.lambda[i], 0.0);
    EXPECT_LT(r.lambda[i], mu[i]);
    if (r.lambda[i] > 1e-12 * demand) {
      const double f = 1.0 / (mu[i] - r.lambda[i]);
      if (common < 0.0) {
        common = f;
      } else {
        EXPECT_NEAR(f, common, 1e-6 * common);  // Wardrop equalization
      }
    }
  }
  if (common > 0.0) {
    for (std::size_t i = 0; i < n; ++i) {
      if (r.lambda[i] <= 1e-12 * demand) {
        EXPECT_GE(1.0 / mu[i], common * (1.0 - 1e-9));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, WaterfillProperty,
    ::testing::Values(
        SweepParam{2, 0.1, 1}, SweepParam{2, 0.5, 2}, SweepParam{2, 0.9, 3},
        SweepParam{5, 0.1, 4}, SweepParam{5, 0.5, 5}, SweepParam{5, 0.9, 6},
        SweepParam{16, 0.1, 7}, SweepParam{16, 0.6, 8},
        SweepParam{16, 0.95, 9}, SweepParam{64, 0.3, 10},
        SweepParam{64, 0.8, 11}, SweepParam{256, 0.5, 12},
        SweepParam{256, 0.99, 13}),
    [](const ::testing::TestParamInfo<SweepParam>& param_info) {
      return "n" + std::to_string(param_info.param.n) + "_u" +
             std::to_string(
                 static_cast<int>(param_info.param.utilization * 100));
    });

}  // namespace
}  // namespace nashlb::core
