#include "core/potential.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <stdexcept>

#include "core/waterfill.hpp"
#include "stats/rng.hpp"

namespace nashlb::core {
namespace {

TEST(Beckmann, ZeroLoadIsZero) {
  const std::vector<double> mu{10.0, 5.0};
  EXPECT_DOUBLE_EQ(beckmann_potential(std::vector<double>{0.0, 0.0}, mu),
                   0.0);
}

TEST(Beckmann, KnownValue) {
  // B = ln(10) - ln(6) + ln(5) - ln(4).
  const std::vector<double> mu{10.0, 5.0};
  const std::vector<double> lambda{4.0, 1.0};
  EXPECT_NEAR(beckmann_potential(lambda, mu),
              std::log(10.0 / 6.0) + std::log(5.0 / 4.0), 1e-12);
}

TEST(Beckmann, RejectsUnstableLoads) {
  const std::vector<double> mu{10.0};
  EXPECT_THROW((void)beckmann_potential(std::vector<double>{10.0}, mu),
               std::invalid_argument);
  EXPECT_THROW((void)beckmann_potential(std::vector<double>{-1.0}, mu),
               std::invalid_argument);
  EXPECT_THROW(
      (void)beckmann_potential(std::vector<double>{1.0, 1.0}, mu),
      std::invalid_argument);
}

TEST(Beckmann, WardropLoadsMinimizeThePotential) {
  // The theory behind IOS: waterfill_linear is the Beckmann minimizer.
  stats::Xoshiro256 rng(31);
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t n = 2 + rng.next_below(8);
    std::vector<double> mu(n);
    double cap = 0.0;
    for (double& m : mu) {
      m = 5.0 + 45.0 * rng.next_double();
      cap += m;
    }
    const double phi = 0.7 * cap * rng.next_double_open();
    const WaterfillResult eq = waterfill_linear(mu, phi);
    const double b_eq = beckmann_potential(eq.lambda, mu);

    // Random feasible competitors never score lower.
    for (int k = 0; k < 30; ++k) {
      std::vector<double> l(n);
      double w = 0.0;
      std::vector<double> weights(n);
      for (double& x : weights) {
        x = rng.next_double_open();
        w += x;
      }
      bool ok = true;
      for (std::size_t i = 0; i < n; ++i) {
        l[i] = phi * weights[i] / w;
        if (l[i] >= mu[i]) ok = false;
      }
      if (!ok) continue;
      EXPECT_GE(beckmann_potential(l, mu), b_eq - 1e-9);
    }
  }
}

TEST(Inefficiency, RatiosAreAtLeastOneAndOrdered) {
  Instance inst;
  inst.mu = {10.0, 20.0, 50.0, 100.0};
  inst.phi = {40.0, 35.0, 33.0};
  const InefficiencyReport r = inefficiency_report(inst);
  EXPECT_GT(r.social_optimum, 0.0);
  EXPECT_GE(r.nash_ratio, 1.0 - 1e-9);
  EXPECT_GE(r.wardrop_ratio, 1.0 - 1e-9);
  // Finitely many users hurt less than infinitely many (Haurie-Marcotte:
  // Wardrop is the many-player limit of Nash; at fixed load the per-user
  // equilibrium is at least as efficient here).
  EXPECT_LE(r.nash_ratio, r.wardrop_ratio + 1e-9);
  EXPECT_NEAR(r.nash_cost, r.nash_ratio * r.social_optimum, 1e-12);
}

TEST(Inefficiency, VanishesAtLowLoad) {
  Instance inst;
  inst.mu = {10.0, 20.0, 50.0, 100.0};
  inst.phi = {6.0, 6.0, 6.0};  // 10% utilization
  const InefficiencyReport r = inefficiency_report(inst);
  EXPECT_LT(r.nash_ratio, 1.02);
  EXPECT_LT(r.wardrop_ratio, 1.02);
}

TEST(Inefficiency, SingleUserNashIsSociallyOptimal) {
  // One user's selfish optimum IS the overall optimum (same objective).
  Instance inst;
  inst.mu = {10.0, 20.0, 50.0};
  inst.phi = {40.0};
  const InefficiencyReport r = inefficiency_report(inst);
  EXPECT_NEAR(r.nash_ratio, 1.0, 1e-6);
}

}  // namespace
}  // namespace nashlb::core
