// User-class aggregation (core/user_classes): partition construction,
// the expand/collapse round trip, the eps-Nash certificate, and the
// structural pin that the singleton partition makes the class dynamics
// bitwise identical to the per-user solver. See docs/SCALING.md.
#include "core/user_classes.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <numeric>
#include <vector>

#include "core/best_reply.hpp"
#include "core/cost.hpp"
#include "core/dynamics.hpp"
#include "core/equilibrium.hpp"
#include "schemes/nash.hpp"
#include "stats/rng.hpp"
#include "util/contracts.hpp"

namespace nashlb::core {
namespace {

/// Heterogeneous test system: 8 computers in the Table-1 speed classes,
/// m users with log-uniform demands spanning ~20x, at 60% utilization.
Instance hetero_instance(std::size_t m, std::uint64_t seed) {
  Instance inst;
  inst.mu = {10.0, 20.0, 50.0, 100.0, 10.0, 20.0, 50.0, 100.0};
  const double cap = std::accumulate(inst.mu.begin(), inst.mu.end(), 0.0);
  stats::Xoshiro256 rng(seed);
  inst.phi.resize(m);
  double total = 0.0;
  for (double& phi : inst.phi) {
    phi = std::exp(rng.next_double() * std::log(20.0));
    total += phi;
  }
  for (double& phi : inst.phi) phi *= 0.6 * cap / total;
  inst.validate();
  return inst;
}

/// A system whose demands repeat a short cycle exactly — the natural
/// input of the `exact` grouping mode.
Instance repeated_instance(std::size_t m) {
  Instance inst;
  inst.mu = {10.0, 20.0, 50.0, 100.0};
  const double cap = std::accumulate(inst.mu.begin(), inst.mu.end(), 0.0);
  static const double kCycle[3] = {1.0, 2.0, 5.0};
  inst.phi.resize(m);
  double total = 0.0;
  for (std::size_t j = 0; j < m; ++j) {
    inst.phi[j] = kCycle[j % 3];
    total += inst.phi[j];
  }
  for (double& phi : inst.phi) phi *= 0.6 * cap / total;
  inst.validate();
  return inst;
}

TEST(UserClasses, ExactGroupsEqualDemandsAndKeepsWeightInvariant) {
  const Instance inst = repeated_instance(30);
  const UserClassPartition part = UserClassPartition::exact(inst);
  EXPECT_EQ(part.num_classes(), 3u);
  EXPECT_EQ(part.num_users(), 30u);
  EXPECT_EQ(part.max_abs_deviation(), 0.0);
  EXPECT_EQ(part.max_rel_deviation(), 0.0);
  const double phi_total = inst.total_arrival_rate();
  EXPECT_NEAR(part.total_weight(), phi_total, 1e-9 * phi_total);
  for (const UserClass& cls : part.classes()) {
    EXPECT_EQ(cls.members.size(), 10u);
    EXPECT_DOUBLE_EQ(cls.phi_min, cls.phi_max);
    EXPECT_DOUBLE_EQ(cls.rep_phi, cls.phi_min);
    // Every member maps back to its class.
    for (std::size_t j : cls.members) {
      EXPECT_EQ(&part.classes()[part.class_of(j)], &cls);
    }
  }
}

TEST(UserClasses, QuantizedRespectsWidthAndClassCap) {
  const Instance inst = hetero_instance(400, 7);
  const UserClassPartition fine = UserClassPartition::quantized(inst, 1e-3);
  // Geometric cells of relative width eps: every member sits within
  // roughly eps of its representative.
  EXPECT_LE(fine.max_rel_deviation(), 1e-3);
  EXPECT_GT(fine.num_classes(), 1u);
  EXPECT_LT(fine.num_classes(), inst.num_users());

  const UserClassPartition capped =
      UserClassPartition::quantized(inst, 1e-6, 8);
  EXPECT_LE(capped.num_classes(), 8u);
  const double phi_total = inst.total_arrival_rate();
  EXPECT_NEAR(capped.total_weight(), phi_total, 1e-9 * phi_total);
}

TEST(UserClasses, QuantizedRejectsBadWidth) {
  const Instance inst = hetero_instance(10, 1);
  EXPECT_THROW(static_cast<void>(UserClassPartition::quantized(inst, 0.0)),
               std::invalid_argument);
  EXPECT_THROW(static_cast<void>(UserClassPartition::quantized(inst, -1.0)),
               std::invalid_argument);
}

TEST(UserClasses, ExpandCollapseRoundTrip) {
  const Instance inst = hetero_instance(100, 3);
  const UserClassPartition part = UserClassPartition::quantized(inst, 0.05);
  const Instance agg = part.aggregate_instance(inst);
  const StrategyProfile cls = StrategyProfile::proportional(agg);
  const StrategyProfile full = part.expand(cls);
  EXPECT_EQ(full.num_users(), inst.num_users());
  // Every member plays its class's row, bitwise.
  for (std::size_t j = 0; j < inst.num_users(); ++j) {
    const std::size_t k = part.class_of(j);
    for (std::size_t i = 0; i < inst.num_computers(); ++i) {
      EXPECT_EQ(full.row(j)[i], cls.row(k)[i]);
    }
  }
  const StrategyProfile back = part.collapse(full);
  EXPECT_EQ(back.max_difference(cls), 0.0);
}

TEST(UserClasses, ExpandedLoadsMatchExpandedProfile) {
  const Instance inst = hetero_instance(100, 5);
  const UserClassPartition part = UserClassPartition::quantized(inst, 0.05);
  const Instance agg = part.aggregate_instance(inst);
  const StrategyProfile cls = StrategyProfile::proportional(agg);
  const std::vector<double> fast = part.expanded_loads(inst, cls);
  const std::vector<double> slow = part.expand(cls).loads(inst);
  ASSERT_EQ(fast.size(), slow.size());
  for (std::size_t i = 0; i < fast.size(); ++i) {
    EXPECT_NEAR(fast[i], slow[i], 1e-9 * (1.0 + slow[i]));
  }
}

// --- the structural pin: singleton class dynamics == per-user solver ----

void expect_bitwise_equal(const DynamicsResult& a, const DynamicsResult& b) {
  EXPECT_EQ(a.converged, b.converged);
  EXPECT_EQ(a.iterations, b.iterations);
  EXPECT_EQ(a.profile.max_difference(b.profile), 0.0);
  ASSERT_EQ(a.norm_history.size(), b.norm_history.size());
  for (std::size_t l = 0; l < a.norm_history.size(); ++l) {
    EXPECT_EQ(a.norm_history[l], b.norm_history[l]) << "round " << l + 1;
  }
  ASSERT_EQ(a.user_times.size(), b.user_times.size());
  for (std::size_t j = 0; j < a.user_times.size(); ++j) {
    EXPECT_EQ(a.user_times[j], b.user_times[j]) << "user " << j;
  }
}

TEST(UserClasses, SingletonDynamicsBitwiseMatchesPerUserSolver) {
  for (const std::uint64_t seed : {11ull, 42ull, 2002ull}) {
    const Instance inst = hetero_instance(24, seed);
    const UserClassPartition part = UserClassPartition::singletons(inst);
    ASSERT_TRUE(part.all_singletons());
    for (const UpdateOrder order : {UpdateOrder::RoundRobin,
                                    UpdateOrder::Simultaneous,
                                    UpdateOrder::RandomOrder}) {
      for (const Initialization init :
           {Initialization::Proportional, Initialization::Zero}) {
        DynamicsOptions opts;
        opts.init = init;
        opts.order = order;
        opts.tolerance = 1e-7;
        const DynamicsResult per_user = best_reply_dynamics(inst, opts);
        opts.classes = &part;
        const DynamicsResult via_classes = best_reply_dynamics(inst, opts);
        SCOPED_TRACE(testing::Message()
                     << "seed=" << seed << " order="
                     << static_cast<int>(order)
                     << " init=" << static_cast<int>(init));
        expect_bitwise_equal(per_user, via_classes);
      }
    }
  }
}

TEST(UserClasses, SingletonPooledJacobiBitwiseMatchesPerUserSolver) {
  const Instance inst = hetero_instance(32, 9);
  const UserClassPartition part = UserClassPartition::singletons(inst);
  DynamicsOptions opts;
  opts.order = UpdateOrder::Simultaneous;
  opts.tolerance = 1e-7;
  opts.threads = 4;
  const DynamicsResult per_user = best_reply_dynamics(inst, opts);
  opts.classes = &part;
  const DynamicsResult via_classes = best_reply_dynamics(inst, opts);
  expect_bitwise_equal(per_user, via_classes);
}

TEST(UserClasses, StartingProfileOverloadRunsAtClassLevel) {
  const Instance inst = hetero_instance(60, 13);
  const UserClassPartition part = UserClassPartition::quantized(inst, 0.05);
  const Instance agg = part.aggregate_instance(inst);
  DynamicsOptions opts;
  opts.tolerance = 1e-7;
  opts.classes = &part;
  const DynamicsResult res = best_reply_dynamics_from(
      inst, StrategyProfile::proportional(agg), opts);
  EXPECT_TRUE(res.converged);
  EXPECT_EQ(res.profile.num_users(), part.num_classes());
  // A per-user-shaped start is a contract violation in class mode.
  EXPECT_THROW(static_cast<void>(best_reply_dynamics_from(
                   inst, StrategyProfile::proportional(inst), opts)),
               std::invalid_argument);
}

// --- eps-Nash certificate ------------------------------------------------

TEST(UserClasses, ExactClassEquilibriumCertifiesNearZeroEps) {
  const Instance inst = repeated_instance(60);
  const UserClassPartition part = UserClassPartition::exact(inst);
  DynamicsOptions opts;
  opts.tolerance = 1e-10;
  opts.classes = &part;
  const DynamicsResult res = best_reply_dynamics(inst, opts);
  ASSERT_TRUE(res.converged);
  const EpsNashCertificate cert = certify_eps_nash(inst, part, res.profile);
  // Exact mode: delta = 0, so the bound collapses to gap_rep / D — tiny
  // at this tolerance — and the expanded profile is a Nash equilibrium.
  EXPECT_LT(cert.eps_nash, 1e-8);
  EXPECT_LT(cert.analytic_bound, 1e-6);
  EXPECT_TRUE(
      is_nash_equilibrium(inst, part.expand(res.profile), 1e-6));
}

TEST(UserClasses, QuantizedCertificateBoundsEveryUsersGain) {
  const Instance inst = hetero_instance(200, 21);
  // A deliberately coarse bucketing so the eps is visibly nonzero.
  const UserClassPartition part = UserClassPartition::quantized(inst, 0.1);
  DynamicsOptions opts;
  // Far below the ~1e-2 bucketing error the certificate measures; tighter
  // tolerances hit the dynamics' numerical noise floor on this instance.
  opts.tolerance = 1e-7;
  opts.classes = &part;
  const DynamicsResult res = best_reply_dynamics(inst, opts);
  ASSERT_TRUE(res.converged);
  const EpsNashCertificate cert = certify_eps_nash(inst, part, res.profile);
  ASSERT_TRUE(std::isfinite(cert.analytic_bound));
  EXPECT_GE(cert.eps_nash, 0.0);
  EXPECT_LE(cert.eps_nash, cert.analytic_bound + 1e-9);
  EXPECT_GE(cert.evaluated_members, part.num_classes());

  // The analytic bound must dominate the *brute-force* relative gain of
  // every user, not just the probed bucket extremes.
  const StrategyProfile full = part.expand(res.profile);
  double brute = 0.0;
  for (std::size_t j = 0; j < inst.num_users(); ++j) {
    const double gain = best_reply_gain(inst, full, j);
    const double d = user_response_time(inst, full, j);
    ASSERT_TRUE(std::isfinite(d));
    brute = std::max(brute, std::max(gain, 0.0) / d);
  }
  EXPECT_LE(brute, cert.analytic_bound + 1e-9);
}

TEST(UserClasses, FinerBucketsTightenTheCertificate) {
  const Instance inst = hetero_instance(300, 33);
  double prev_bound = std::numeric_limits<double>::infinity();
  for (const double eps_phi : {0.2, 0.02, 0.002}) {
    const UserClassPartition part =
        UserClassPartition::quantized(inst, eps_phi);
    DynamicsOptions opts;
    // The finest width is near-singleton granularity, where Gauss–Seidel
    // over 300 crowded users converges slowly — stop well below the
    // bucketing error the certificate measures rather than at a depth
    // the dynamics cannot reach in the round cap.
    opts.tolerance = 1e-5;
    opts.max_iterations = 5000;
    opts.classes = &part;
    const DynamicsResult res = best_reply_dynamics(inst, opts);
    ASSERT_TRUE(res.converged);
    const EpsNashCertificate cert =
        certify_eps_nash(inst, part, res.profile);
    EXPECT_LE(cert.analytic_bound, prev_bound * (1.0 + 1e-6))
        << "eps_phi=" << eps_phi;
    prev_bound = cert.analytic_bound;
  }
  // At the finest width the certificate is comfortably inside 1e-3 — the
  // regime the scale bench gates (see bench/bench_scale.cpp).
  EXPECT_LT(prev_bound, 1e-3);
}

// --- scheme integration --------------------------------------------------

TEST(UserClasses, NashSchemeExpandsClassModeToFullProfile) {
  const Instance inst = hetero_instance(80, 17);
  const UserClassPartition part = UserClassPartition::quantized(inst, 0.01);
  schemes::NashScheme scheme(Initialization::Proportional, 1e-7);
  DynamicsOptions base;
  base.classes = &part;
  scheme.set_dynamics_options(base);
  const StrategyProfile full = scheme.solve(inst);
  EXPECT_EQ(full.num_users(), inst.num_users());
  EXPECT_EQ(full.num_computers(), inst.num_computers());
  EXPECT_TRUE(full.is_feasible(inst));
}

// --- contracts -----------------------------------------------------------

#if NASHLB_CHECK_ENABLED


TEST(UserClassesDeathTest, OverlappingClassesAbort) {
  const Instance inst = hetero_instance(4, 1);
  EXPECT_DEATH(static_cast<void>(UserClassPartition::from_members(
                   inst, {{0, 1}, {1, 2, 3}})),
               "NASHLB_EXPECT.*overlap");
}

TEST(UserClassesDeathTest, EmptyClassAborts) {
  const Instance inst = hetero_instance(4, 1);
  EXPECT_DEATH(static_cast<void>(UserClassPartition::from_members(
                   inst, {{0, 1, 2, 3}, {}})),
               "NASHLB_EXPECT.*empty");
}

TEST(UserClassesDeathTest, IncompletePartitionAborts) {
  const Instance inst = hetero_instance(4, 1);
  EXPECT_DEATH(static_cast<void>(
                   UserClassPartition::from_members(inst, {{0, 1, 3}})),
               "NASHLB_EXPECT.*incomplete");
}

#else

TEST(UserClassesDeathTest, SkippedWithoutContractLayer) {
  GTEST_SKIP() << "partition contracts compile to no-ops without "
                  "-DNASHLB_CHECK=ON";
}

#endif

TEST(UserClasses, MismatchedPartitionThrows) {
  const Instance inst = hetero_instance(20, 1);
  const Instance other = hetero_instance(30, 1);
  const UserClassPartition part = UserClassPartition::singletons(other);
  DynamicsOptions opts;
  opts.classes = &part;
  EXPECT_THROW(static_cast<void>(best_reply_dynamics(inst, opts)),
               std::invalid_argument);
}

}  // namespace
}  // namespace nashlb::core
