#include "core/simplex.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "stats/rng.hpp"

namespace nashlb::core {
namespace {

double total(const std::vector<double>& v) {
  return std::accumulate(v.begin(), v.end(), 0.0);
}

TEST(Simplex, PointAlreadyOnSimplexIsFixed) {
  const std::vector<double> x{0.2, 0.3, 0.5};
  const std::vector<double> p = project_to_simplex(x);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(p[i], x[i], 1e-12);
  }
}

TEST(Simplex, UniformShiftRemoved) {
  // v = x + c*1 projects back to x when x is on the simplex.
  const std::vector<double> v{0.2 + 5.0, 0.3 + 5.0, 0.5 + 5.0};
  const std::vector<double> p = project_to_simplex(v);
  EXPECT_NEAR(p[0], 0.2, 1e-12);
  EXPECT_NEAR(p[1], 0.3, 1e-12);
  EXPECT_NEAR(p[2], 0.5, 1e-12);
}

TEST(Simplex, NegativeCoordinatesClipToZero) {
  const std::vector<double> v{1.0, -10.0};
  const std::vector<double> p = project_to_simplex(v);
  EXPECT_DOUBLE_EQ(p[0], 1.0);
  EXPECT_DOUBLE_EQ(p[1], 0.0);
}

TEST(Simplex, SingleElement) {
  const std::vector<double> p = project_to_simplex(std::vector<double>{-3.0});
  EXPECT_DOUBLE_EQ(p[0], 1.0);
}

TEST(Simplex, CustomRadius) {
  const std::vector<double> p =
      project_to_simplex(std::vector<double>{1.0, 1.0}, 4.0);
  EXPECT_DOUBLE_EQ(p[0], 2.0);
  EXPECT_DOUBLE_EQ(p[1], 2.0);
}

TEST(Simplex, RejectsBadInput) {
  EXPECT_THROW(project_to_simplex(std::vector<double>{}),
               std::invalid_argument);
  EXPECT_THROW(project_to_simplex(std::vector<double>{1.0}, 0.0),
               std::invalid_argument);
  EXPECT_THROW(project_to_simplex(std::vector<double>{std::nan("")}),
               std::invalid_argument);
}

class SimplexProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SimplexProperty, ProjectionIsFeasibleAndOptimal) {
  stats::Xoshiro256 rng(GetParam());
  const std::size_t n = 2 + rng.next_below(30);
  std::vector<double> v(n);
  for (double& x : v) x = 10.0 * (rng.next_double() - 0.5);

  const std::vector<double> p = project_to_simplex(v);
  // Feasibility.
  EXPECT_NEAR(total(p), 1.0, 1e-9);
  for (double x : p) EXPECT_GE(x, 0.0);

  // Optimality: no feasible point sampled at random is closer to v.
  auto dist2 = [&](const std::vector<double>& q) {
    double d = 0.0;
    for (std::size_t i = 0; i < n; ++i) d += (q[i] - v[i]) * (q[i] - v[i]);
    return d;
  };
  const double best = dist2(p);
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<double> q(n);
    double qt = 0.0;
    for (double& x : q) {
      x = rng.next_double_open();
      qt += x;
    }
    for (double& x : q) x /= qt;
    EXPECT_GE(dist2(q), best - 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimplexProperty,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

}  // namespace
}  // namespace nashlb::core
