// Tests for the incremental solver core: LoadState consistency against
// recompute-from-scratch, the allocation-free waterfill/best-reply fast
// paths, and — the load-bearing property — that the rewired
// best_reply_dynamics reproduces the seed implementation (which
// recomputed the aggregate loads from the whole profile on every call)
// exactly: identical iteration counts, profiles within 1e-12, for all
// three update orders and both initializations.
#include "core/load_state.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <string>
#include <vector>

#include "core/best_reply.hpp"
#include "core/cost.hpp"
#include "core/dynamics.hpp"
#include "core/waterfill.hpp"
#include "stats/rng.hpp"
#include "workload/configs.hpp"
#include "workload/random.hpp"

namespace nashlb::core {
namespace {

Instance small_instance() {
  Instance inst;
  inst.mu = {10.0, 20.0, 50.0, 100.0};
  inst.phi = {30.0, 20.0, 10.0, 5.0, 5.0};
  return inst;
}

/// A random feasible-ish row on the simplex (positive, sums to 1).
std::vector<double> random_row(std::size_t n, stats::Xoshiro256& rng) {
  std::vector<double> row(n);
  double total = 0.0;
  for (double& f : row) {
    f = rng.next_double_open() + 1e-3;
    total += f;
  }
  for (double& f : row) f /= total;
  return row;
}

TEST(LoadState, MatchesScratchLoadsAfterLongRandomMoveSequence) {
  const Instance inst = small_instance();
  StrategyProfile s = StrategyProfile::proportional(inst);
  LoadState state(inst, s);
  stats::Xoshiro256 rng(0xfeedULL);

  for (int move = 0; move < 5000; ++move) {
    const auto user =
        static_cast<std::size_t>(rng.next_below(inst.num_users()));
    const std::vector<double> row = random_row(inst.num_computers(), rng);
    state.commit_row(s, user, row);
    // The committed row must land in the profile verbatim.
    for (std::size_t i = 0; i < row.size(); ++i) {
      ASSERT_EQ(s.at(user, i), row[i]);
    }
  }
  // 5000 incremental O(n) updates stay within a hair of the O(m·n)
  // from-scratch recompute...
  EXPECT_LT(state.max_drift(s), 1e-10);
  // ...and a rebuild makes them bitwise identical.
  state.rebuild(s);
  EXPECT_EQ(state.max_drift(s), 0.0);
}

TEST(LoadState, AvailableRatesMatchProfileComputation) {
  const Instance inst = small_instance();
  StrategyProfile s = StrategyProfile::proportional(inst);
  const LoadState state(inst, s);
  std::vector<double> fast(inst.num_computers());
  for (std::size_t j = 0; j < inst.num_users(); ++j) {
    state.available_rates(s, j, fast);
    const std::vector<double> slow = s.available_rates(inst, j);
    for (std::size_t i = 0; i < fast.size(); ++i) {
      EXPECT_NEAR(fast[i], slow[i], 1e-12) << "user " << j << " computer "
                                           << i;
    }
  }
}

TEST(LoadState, UserResponseTimeMatchesCostModel) {
  const Instance inst = small_instance();
  const StrategyProfile s = StrategyProfile::proportional(inst);
  const LoadState state(inst, s);
  for (std::size_t j = 0; j < inst.num_users(); ++j) {
    EXPECT_NEAR(state.user_response_time(s, j),
                user_response_time(inst, s, j), 1e-12);
  }
}

TEST(LoadState, RejectsDimensionMismatches) {
  const Instance inst = small_instance();
  const StrategyProfile s = StrategyProfile::proportional(inst);
  LoadState state(inst, s);
  StrategyProfile wrong(inst.num_users() + 1, inst.num_computers());
  EXPECT_THROW(state.rebuild(wrong), std::invalid_argument);
  std::vector<double> small_buf(inst.num_computers() - 1);
  EXPECT_THROW(state.available_rates(s, 0, small_buf),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Allocation-free waterfill fast path.

TEST(WaterfillWorkspace, IntoVariantsMatchAllocatingOnesBitwise) {
  stats::Xoshiro256 rng(0xabcdULL);
  WaterfillWorkspace ws_sqrt;
  WaterfillWorkspace ws_lin;
  std::vector<double> caps(12);
  std::vector<double> out(12);
  for (double& c : caps) c = 1.0 + 99.0 * rng.next_double_open();

  // Repeated calls with slowly drifting capacities: the workspace's order
  // is reused (incremental re-sort) and must still reproduce the fresh
  // stable sort's allocation exactly, bit for bit.
  for (int round = 0; round < 200; ++round) {
    double total = 0.0;
    for (double c : caps) total += c;
    const double demand = total * (0.05 + 0.9 * rng.next_double_open());

    const WaterfillResult ref = waterfill_sqrt(caps, demand);
    const WaterfillInfo info = waterfill_sqrt_into(caps, demand, out, ws_sqrt);
    EXPECT_EQ(info.active_count, ref.active_count);
    EXPECT_EQ(info.level, ref.level);
    for (std::size_t i = 0; i < out.size(); ++i) {
      EXPECT_EQ(out[i], ref.lambda[i]) << "round " << round;
    }

    const WaterfillResult lref = waterfill_linear(caps, demand);
    const WaterfillInfo linfo =
        waterfill_linear_into(caps, demand, out, ws_lin);
    EXPECT_EQ(linfo.active_count, lref.active_count);
    for (std::size_t i = 0; i < out.size(); ++i) {
      EXPECT_EQ(out[i], lref.lambda[i]);
    }

    // Drift each capacity a little, as consecutive best-reply rounds do.
    for (double& c : caps) {
      c *= 1.0 + 0.05 * (rng.next_double_open() - 0.5);
    }
  }
}

TEST(WaterfillWorkspace, HandlesSizeChangesAndTies) {
  WaterfillWorkspace ws;
  std::vector<double> caps{5.0, 5.0, 5.0};  // all tied: index order rules
  std::vector<double> out(3);
  (void)waterfill_sqrt_into(caps, 6.0, out, ws);
  const WaterfillResult ref = waterfill_sqrt(caps, 6.0);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_EQ(out[i], ref.lambda[i]);

  // Shrink, then grow: the stale order must be rebuilt, not trusted.
  std::vector<double> caps2{3.0, 9.0};
  std::vector<double> out2(2);
  (void)waterfill_sqrt_into(caps2, 4.0, out2, ws);
  const WaterfillResult ref2 = waterfill_sqrt(caps2, 4.0);
  for (std::size_t i = 0; i < 2; ++i) EXPECT_EQ(out2[i], ref2.lambda[i]);

  std::vector<double> caps3{1.0, 8.0, 2.0, 8.0};
  std::vector<double> out3(4);
  (void)waterfill_sqrt_into(caps3, 10.0, out3, ws);
  const WaterfillResult ref3 = waterfill_sqrt(caps3, 10.0);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(out3[i], ref3.lambda[i]);

  EXPECT_THROW((void)waterfill_sqrt_into(caps3, 5.0, out2, ws),
               std::invalid_argument);  // wrong output size
}

TEST(BestReplyInto, MatchesAllocatingBestReply) {
  const Instance inst = small_instance();
  const StrategyProfile s = StrategyProfile::proportional(inst);
  const LoadState state(inst, s);
  BestReplyWorkspace ws;
  for (std::size_t j = 0; j < inst.num_users(); ++j) {
    const std::vector<double> ref = best_reply(inst, s, j);
    const std::span<const double> fast = best_reply_into(inst, s, state, j, ws);
    ASSERT_EQ(fast.size(), ref.size());
    for (std::size_t i = 0; i < ref.size(); ++i) {
      EXPECT_NEAR(fast[i], ref[i], 1e-14);
    }
  }
}

TEST(BestReplyGain, MatchesDeviatedProfileDefinition) {
  // The no-copy gain must equal the definitional value: install the best
  // reply in a copied profile and compare response times.
  const Instance inst = small_instance();
  stats::Xoshiro256 rng(0x1234ULL);
  StrategyProfile s = StrategyProfile::proportional(inst);
  // Perturb the proportional rows toward random simplex points, gently
  // enough that every computer keeps slack (the gain is finite).
  for (std::size_t j = 0; j < inst.num_users(); ++j) {
    const std::vector<double> noise = random_row(inst.num_computers(), rng);
    std::vector<double> row(inst.num_computers());
    for (std::size_t i = 0; i < row.size(); ++i) {
      row[i] = 0.8 * s.at(j, i) + 0.2 * noise[i];
    }
    s.set_row(j, row);
  }
  ASSERT_TRUE(s.is_feasible(inst, 1e-9));
  for (std::size_t j = 0; j < inst.num_users(); ++j) {
    const double current = user_response_time(inst, s, j);
    StrategyProfile deviated = s;
    deviated.set_row(j, best_reply(inst, s, j));
    const double reference = current - user_response_time(inst, deviated, j);
    EXPECT_NEAR(best_reply_gain(inst, s, j), reference, 1e-10) << "user "
                                                               << j;
  }
}

// ---------------------------------------------------------------------------
// Dynamics equivalence: the incremental core against a faithful copy of
// the seed implementation (recompute-from-scratch per user move).

/// The seed's run loop, reproduced verbatim on the allocating APIs.
DynamicsResult reference_dynamics(const Instance& inst,
                                  const DynamicsOptions& options) {
  const std::size_t m = inst.num_users();
  StrategyProfile profile(m, inst.num_computers());
  std::vector<double> last_times(m, 0.0);
  if (options.init == Initialization::Proportional) {
    profile = StrategyProfile::proportional(inst);
    last_times = user_response_times(inst, profile);
    for (double& d : last_times) {
      if (!std::isfinite(d)) d = 0.0;
    }
  }
  DynamicsResult result{std::move(profile), false, false, 0, {}, {}};
  stats::Xoshiro256 order_rng(options.order_seed);
  std::vector<std::size_t> order(m);
  std::iota(order.begin(), order.end(), std::size_t{0});

  for (std::size_t round = 1; round <= options.max_iterations; ++round) {
    double norm = 0.0;
    if (options.order == UpdateOrder::RoundRobin ||
        options.order == UpdateOrder::RandomOrder) {
      if (options.order == UpdateOrder::RandomOrder) {
        for (std::size_t k = m; k > 1; --k) {
          std::swap(order[k - 1],
                    order[static_cast<std::size_t>(order_rng.next_below(k))]);
        }
      }
      for (std::size_t idx = 0; idx < m; ++idx) {
        const std::size_t j = order[idx];
        result.profile.set_row(j, best_reply(inst, result.profile, j));
        const double d = user_response_time(inst, result.profile, j);
        norm += std::fabs(d - last_times[j]);
        last_times[j] = d;
      }
    } else {
      const StrategyProfile frozen = result.profile;
      for (std::size_t j = 0; j < m; ++j) {
        result.profile.set_row(j, best_reply(inst, frozen, j));
      }
      bool ok = true;
      for (std::size_t j = 0; j < m && ok; ++j) {
        const std::vector<double> avail =
            result.profile.available_rates(inst, j);
        for (double a : avail) {
          if (!(a > 0.0)) ok = false;
        }
      }
      for (std::size_t j = 0; j < m; ++j) {
        const double d = user_response_time(inst, result.profile, j);
        if (!std::isfinite(d)) ok = false;
        norm += std::fabs(d - last_times[j]);
        last_times[j] = d;
      }
      if (!ok) {
        result.iterations = round;
        result.norm_history.push_back(norm);
        result.diverged = true;
        result.user_times = std::move(last_times);
        return result;
      }
    }
    result.iterations = round;
    result.norm_history.push_back(norm);
    if (norm <= options.tolerance) {
      result.converged = true;
      break;
    }
  }
  result.user_times = user_response_times(inst, result.profile);
  return result;
}

void expect_equivalent(const Instance& inst, const DynamicsOptions& options,
                       const char* label) {
  const DynamicsResult ref = reference_dynamics(inst, options);
  const DynamicsResult incr = best_reply_dynamics(inst, options);
  EXPECT_EQ(incr.converged, ref.converged) << label;
  EXPECT_EQ(incr.diverged, ref.diverged) << label;
  EXPECT_EQ(incr.iterations, ref.iterations) << label;
  EXPECT_LT(incr.profile.max_difference(ref.profile), 1e-12) << label;
  ASSERT_EQ(incr.norm_history.size(), ref.norm_history.size()) << label;
  for (std::size_t l = 0; l < ref.norm_history.size(); ++l) {
    if (std::isinf(ref.norm_history[l])) {
      // A diverging Jacobi round: both paths must blow up identically.
      EXPECT_EQ(incr.norm_history[l], ref.norm_history[l])
          << label << " round " << l + 1;
    } else {
      EXPECT_NEAR(incr.norm_history[l], ref.norm_history[l], 1e-10)
          << label << " round " << l + 1;
    }
  }
}

TEST(DynamicsEquivalence, Table1AllOrdersAndInitializations) {
  const Instance inst = workload::table1_instance(0.6);
  for (const UpdateOrder order :
       {UpdateOrder::RoundRobin, UpdateOrder::RandomOrder,
        UpdateOrder::Simultaneous}) {
    for (const Initialization init :
         {Initialization::Zero, Initialization::Proportional}) {
      DynamicsOptions opts;
      opts.order = order;
      opts.init = init;
      opts.tolerance = 1e-6;
      opts.max_iterations = 2000;
      expect_equivalent(inst, opts,
                        (std::string("table1 order=") +
                         std::to_string(static_cast<int>(order)) +
                         " init=" + std::to_string(static_cast<int>(init)))
                            .c_str());
    }
  }
}

TEST(DynamicsEquivalence, RandomizedInstances) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    workload::RandomInstanceOptions ropts;
    ropts.num_computers = 3 + 5 * static_cast<std::size_t>(seed % 4);
    ropts.num_users = 2 + 7 * static_cast<std::size_t>(seed % 3);
    ropts.utilization = 0.4 + 0.09 * static_cast<double>(seed);
    ropts.heterogeneity = 30.0;
    ropts.seed = 0xc0ffee + seed;
    const Instance inst = workload::random_instance(ropts);
    for (const UpdateOrder order :
         {UpdateOrder::RoundRobin, UpdateOrder::RandomOrder,
          UpdateOrder::Simultaneous}) {
      DynamicsOptions opts;
      opts.order = order;
      opts.init = Initialization::Proportional;
      opts.tolerance = 1e-5;
      opts.max_iterations = 3000;
      expect_equivalent(
          inst, opts,
          ("random seed=" + std::to_string(seed) + " order=" +
           std::to_string(static_cast<int>(order)))
              .c_str());
    }
  }
}

TEST(DynamicsEquivalence, ZeroInitRandomizedInstances) {
  workload::RandomInstanceOptions ropts;
  ropts.num_computers = 12;
  ropts.num_users = 9;
  ropts.utilization = 0.85;
  ropts.seed = 0xdeadULL;
  const Instance inst = workload::random_instance(ropts);
  for (const UpdateOrder order :
       {UpdateOrder::RoundRobin, UpdateOrder::RandomOrder}) {
    DynamicsOptions opts;
    opts.order = order;
    opts.init = Initialization::Zero;
    opts.tolerance = 1e-5;
    opts.max_iterations = 3000;
    expect_equivalent(inst, opts, "zero-init random");
  }
}

// ---------------------------------------------------------------------------
// certificate_stride.

TEST(CertificateStride, DefaultRecordsEveryRoundStrideSkipsInBetween) {
  if (!obs::kEnabled) GTEST_SKIP() << "observability compiled out";
  const Instance inst = small_instance();

  DynamicsOptions opts;
  opts.tolerance = 1e-9;
  opts.max_iterations = 40;

  obs::TraceSink every(dynamics_trace_columns());
  opts.trace = &every;
  (void)best_reply_dynamics(inst, opts);
  const std::vector<double> gaps_every = every.column_as_doubles(
      "best_reply_gap");
  ASSERT_FALSE(gaps_every.empty());
  for (double g : gaps_every) EXPECT_TRUE(std::isfinite(g));

  obs::TraceSink strided(dynamics_trace_columns());
  opts.trace = &strided;
  opts.certificate_stride = 3;
  (void)best_reply_dynamics(inst, opts);
  const std::vector<double> gaps = strided.column_as_doubles(
      "best_reply_gap");
  const std::vector<double> norms = strided.column_as_doubles("norm");
  ASSERT_EQ(gaps.size(), norms.size());  // every round still gets a row
  for (std::size_t r = 0; r < gaps.size(); ++r) {
    if (r % 3 == 0) {
      EXPECT_TRUE(std::isfinite(gaps[r])) << "round " << r + 1;
      EXPECT_NEAR(gaps[r], gaps_every[r], 1e-9);
    } else {
      EXPECT_TRUE(std::isnan(gaps[r])) << "round " << r + 1;
    }
  }

  obs::TraceSink off(dynamics_trace_columns());
  opts.trace = &off;
  opts.certificate_stride = 0;
  (void)best_reply_dynamics(inst, opts);
  for (double g : off.column_as_doubles("best_reply_gap")) {
    EXPECT_TRUE(std::isnan(g));
  }
  for (double k : off.column_as_doubles("max_kkt_residual")) {
    EXPECT_TRUE(std::isnan(k));
  }
}

}  // namespace
}  // namespace nashlb::core
