#include "core/best_reply.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <stdexcept>

#include "core/cost.hpp"
#include "stats/rng.hpp"

namespace nashlb::core {
namespace {

Instance small() {
  Instance inst;
  inst.mu = {10.0, 5.0, 2.0};
  inst.phi = {3.0, 2.0};
  return inst;
}

TEST(OptimalFractions, SumToOne) {
  const std::vector<double> f =
      optimal_fractions(std::vector<double>{10.0, 5.0, 2.0}, 4.0);
  EXPECT_NEAR(std::accumulate(f.begin(), f.end(), 0.0), 1.0, 1e-12);
  for (double x : f) EXPECT_GE(x, 0.0);
}

TEST(OptimalFractions, SingleUserEqualsGlobalWaterfill) {
  // With one user the best reply against nobody is the global optimum of
  // the single-class problem: fast computers loaded per the sqrt rule.
  const std::vector<double> f =
      optimal_fractions(std::vector<double>{4.0, 1.0}, 3.0);
  EXPECT_NEAR(f[0] * 3.0, 8.0 / 3.0, 1e-12);
  EXPECT_NEAR(f[1] * 3.0, 1.0 / 3.0, 1e-12);
}

TEST(OptimalFractions, RejectsBadInputs) {
  EXPECT_THROW(optimal_fractions(std::vector<double>{5.0}, 0.0),
               std::invalid_argument);
  EXPECT_THROW(optimal_fractions(std::vector<double>{5.0}, -1.0),
               std::invalid_argument);
  EXPECT_THROW(optimal_fractions(std::vector<double>{5.0}, 5.0),
               std::invalid_argument);
}

TEST(BestReply, ImprovesOnArbitraryFeasibleStrategy) {
  const Instance inst = small();
  StrategyProfile s(2, 3);
  s.set_row(0, std::vector<double>{0.2, 0.3, 0.5});
  s.set_row(1, std::vector<double>{0.6, 0.2, 0.2});
  ASSERT_TRUE(s.is_feasible(inst));

  const double before = user_response_time(inst, s, 0);
  StrategyProfile after = s;
  after.set_row(0, best_reply(inst, s, 0));
  const double improved = user_response_time(inst, after, 0);
  EXPECT_LE(improved, before + 1e-12);
  EXPECT_TRUE(after.is_feasible(inst));
}

TEST(BestReply, IsIdempotent) {
  // Replying twice against the same opponents gives the same strategy
  // (the best reply is unique by strict convexity).
  const Instance inst = small();
  StrategyProfile s(2, 3);
  s.set_row(0, std::vector<double>{0.5, 0.25, 0.25});
  s.set_row(1, std::vector<double>{0.5, 0.25, 0.25});
  const std::vector<double> r1 = best_reply(inst, s, 0);
  StrategyProfile s2 = s;
  s2.set_row(0, r1);
  const std::vector<double> r2 = best_reply(inst, s2, 0);
  for (std::size_t i = 0; i < r1.size(); ++i) {
    EXPECT_NEAR(r1[i], r2[i], 1e-9);
  }
}

TEST(BestReply, RespectsOtherUsersLoads) {
  // If user 1 saturates the slow computer, user 0's reply avoids it.
  Instance inst;
  inst.mu = {10.0, 3.0};
  inst.phi = {2.0, 2.9};
  StrategyProfile s(2, 2);
  s.set_row(1, std::vector<double>{0.0, 1.0});  // 2.9 on computer 1
  const std::vector<double> reply = best_reply(inst, s, 0);
  // Available rates: {10, 0.1}: nearly everything goes to computer 0.
  EXPECT_GT(reply[0], 0.95);
}

TEST(BestReply, ThrowsWhenOthersOverloadEverything) {
  Instance inst;
  inst.mu = {4.0, 4.0};
  inst.phi = {1.0, 5.0};
  StrategyProfile s(2, 2);
  s.set_row(1, std::vector<double>{1.0, 0.0});  // 5 > mu_0: overloaded
  EXPECT_THROW(best_reply(inst, s, 0), std::invalid_argument);
  EXPECT_THROW(best_reply(inst, s, 7), std::out_of_range);
}

TEST(BestReplyGain, NonNegativeAndZeroAtOptimum) {
  const Instance inst = small();
  StrategyProfile s(2, 3);
  s.set_row(0, std::vector<double>{0.1, 0.1, 0.8});
  s.set_row(1, std::vector<double>{0.4, 0.4, 0.2});
  const double gain = best_reply_gain(inst, s, 0);
  EXPECT_GE(gain, 0.0);
  EXPECT_GT(gain, 1e-4);  // the start strategy is clearly suboptimal

  StrategyProfile at_opt = s;
  at_opt.set_row(0, best_reply(inst, s, 0));
  EXPECT_NEAR(best_reply_gain(inst, at_opt, 0), 0.0, 1e-10);
}

class BestReplyProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BestReplyProperty, BeatsRandomFeasibleDeviations) {
  stats::Xoshiro256 rng(GetParam());
  Instance inst;
  const std::size_t n = 2 + rng.next_below(8);
  const std::size_t m = 2 + rng.next_below(4);
  inst.mu.resize(n);
  for (double& mu : inst.mu) mu = 5.0 + 45.0 * rng.next_double();
  const double cap = std::accumulate(inst.mu.begin(), inst.mu.end(), 0.0);
  inst.phi.assign(m, 0.6 * cap / static_cast<double>(m));

  // Opponents at the proportional profile; user 0 replies.
  StrategyProfile s = StrategyProfile::proportional(inst);
  StrategyProfile replied = s;
  replied.set_row(0, best_reply(inst, s, 0));
  const double best = user_response_time(inst, replied, 0);

  for (int trial = 0; trial < 100; ++trial) {
    std::vector<double> strat(n);
    double t = 0.0;
    for (double& x : strat) {
      x = rng.next_double_open();
      t += x;
    }
    for (double& x : strat) x /= t;
    StrategyProfile candidate = s;
    candidate.set_row(0, strat);
    if (!candidate.is_feasible(inst, 1e-9)) continue;
    EXPECT_GE(user_response_time(inst, candidate, 0), best - 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BestReplyProperty,
                         ::testing::Values(11u, 12u, 13u, 14u, 15u, 16u));

}  // namespace
}  // namespace nashlb::core
