#include "core/convex_reply.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <stdexcept>

#include "core/best_reply.hpp"
#include "core/dynamics.hpp"
#include "core/waterfill.hpp"
#include "stats/rng.hpp"

namespace nashlb::core {
namespace {

TEST(DelayModel, MM1MatchesFormulas) {
  const MM1Delay d(10.0);
  EXPECT_DOUBLE_EQ(d.capacity(), 10.0);
  EXPECT_DOUBLE_EQ(d.response_time(4.0), 1.0 / 6.0);
  EXPECT_DOUBLE_EQ(d.response_time_derivative(4.0), 1.0 / 36.0);
  EXPECT_THROW((void)d.response_time(10.0), std::invalid_argument);
  EXPECT_THROW(MM1Delay(0.0), std::invalid_argument);
}

TEST(DelayModel, MMCDerivativeMatchesFiniteDifference) {
  const MMCDelay d(2.5, 4);
  const double lambda = 6.0;
  const double h = 1e-5;
  const double numeric =
      (d.response_time(lambda + h) - d.response_time(lambda - h)) / (2 * h);
  EXPECT_NEAR(d.response_time_derivative(lambda), numeric, 1e-5);
}

TEST(DelayModel, MMCSingleServerEqualsMM1) {
  const MMCDelay mmc(7.0, 1);
  const MM1Delay mm1(7.0);
  for (double l : {0.0, 2.0, 5.0, 6.9}) {
    EXPECT_NEAR(mmc.response_time(l), mm1.response_time(l), 1e-10);
  }
}

TEST(DelayModel, MM1ModelsFactory) {
  const auto models = mm1_models({10.0, 20.0});
  ASSERT_EQ(models.size(), 2u);
  EXPECT_DOUBLE_EQ(models[1]->capacity(), 20.0);
}

TEST(ConvexReply, MatchesClosedFormOnMM1) {
  // THE validation: the generic KKT solver must reproduce the paper's
  // closed-form OPTIMAL on M/M/1 models, background included.
  stats::Xoshiro256 rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 2 + rng.next_below(10);
    std::vector<double> mu(n), background(n), avail(n);
    double headroom = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      mu[i] = 5.0 + 95.0 * rng.next_double();
      background[i] = 0.8 * mu[i] * rng.next_double();
      avail[i] = mu[i] - background[i];
      headroom += avail[i];
    }
    const double phi = 0.5 * headroom * rng.next_double_open();

    const ConvexReplyResult generic =
        convex_best_reply(mm1_models(mu), background, phi, 1e-12);
    const WaterfillResult closed = waterfill_sqrt(avail, phi);

    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(generic.flow[i], closed.lambda[i],
                  1e-6 * (1.0 + closed.lambda[i]))
          << "trial " << trial << " computer " << i;
    }
  }
}

TEST(ConvexReply, ConservationHoldsExactly) {
  const auto models = mm1_models({10.0, 20.0, 50.0});
  const std::vector<double> background{2.0, 5.0, 10.0};
  const ConvexReplyResult r = convex_best_reply(models, background, 12.0);
  const double total =
      std::accumulate(r.flow.begin(), r.flow.end(), 0.0);
  EXPECT_NEAR(total, 12.0, 1e-9);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_GE(r.flow[i], 0.0);
    EXPECT_LT(background[i] + r.flow[i], models[i]->capacity());
  }
}

TEST(ConvexReply, KktConditionsHold) {
  const auto models = mm1_models({10.0, 20.0, 50.0, 100.0});
  const std::vector<double> background{1.0, 2.0, 5.0, 10.0};
  const double phi = 40.0;
  const ConvexReplyResult r = convex_best_reply(models, background, phi);
  for (std::size_t i = 0; i < 4; ++i) {
    const double load = background[i] + r.flow[i];
    const double g = models[i]->response_time(load) +
                     r.flow[i] * models[i]->response_time_derivative(load);
    if (r.flow[i] > 1e-9) {
      EXPECT_NEAR(g, r.alpha, 1e-6 * r.alpha) << i;
    } else {
      EXPECT_GE(g, r.alpha * (1.0 - 1e-9)) << i;
    }
  }
}

TEST(ConvexReply, RejectsBadInputs) {
  const auto models = mm1_models({10.0});
  EXPECT_THROW((void)convex_best_reply(models, {0.0}, 0.0),
               std::invalid_argument);
  EXPECT_THROW((void)convex_best_reply(models, {10.0}, 1.0),
               std::invalid_argument);
  EXPECT_THROW((void)convex_best_reply(models, {0.0}, 10.0),
               std::invalid_argument);
  EXPECT_THROW((void)convex_best_reply(models, {0.0, 0.0}, 1.0),
               std::invalid_argument);
}

TEST(GenericDynamics, MM1EquilibriumMatchesPaperDynamics) {
  // Full-circle validation: the generic dynamics on M/M/1 models reaches
  // the same equilibrium as the specialized paper implementation.
  Instance inst;
  inst.mu = {10.0, 20.0, 50.0, 100.0};
  inst.phi = {30.0, 40.0, 38.0};

  DynamicsOptions opts;
  opts.tolerance = 1e-10;
  const DynamicsResult paper = best_reply_dynamics(inst, opts);
  ASSERT_TRUE(paper.converged);

  const GenericDynamicsResult generic = generic_best_reply_dynamics(
      mm1_models(inst.mu), inst.phi, 1e-10, 1000);
  ASSERT_TRUE(generic.converged);

  for (std::size_t j = 0; j < inst.num_users(); ++j) {
    for (std::size_t i = 0; i < inst.num_computers(); ++i) {
      EXPECT_NEAR(generic.flows[j][i] / inst.phi[j],
                  paper.profile.at(j, i), 1e-5)
          << "user " << j << " computer " << i;
    }
    EXPECT_NEAR(generic.user_times[j], paper.user_times[j], 1e-6);
  }
}

TEST(GenericDynamics, MMCGameConvergesToEquilibrium) {
  // The extension the paper cannot do in closed form: multi-core nodes.
  std::vector<DelayModelPtr> models{
      std::make_shared<MMCDelay>(25.0, 4),   // 4-core node
      std::make_shared<MMCDelay>(50.0, 2),   // 2-core node
      std::make_shared<MM1Delay>(100.0),     // one fast core
  };
  const std::vector<double> phi{60.0, 60.0, 60.0};
  const GenericDynamicsResult res =
      generic_best_reply_dynamics(models, phi, 1e-8, 2000);
  ASSERT_TRUE(res.converged);

  // Equilibrium check: no user can reduce its time via its best reply.
  std::vector<double> loads(3, 0.0);
  for (const auto& f : res.flows) {
    for (std::size_t i = 0; i < 3; ++i) loads[i] += f[i];
  }
  for (std::size_t j = 0; j < phi.size(); ++j) {
    std::vector<double> background(3);
    for (std::size_t i = 0; i < 3; ++i) {
      background[i] = loads[i] - res.flows[j][i];
    }
    const ConvexReplyResult reply =
        convex_best_reply(models, background, phi[j]);
    double d_reply = 0.0;
    for (std::size_t i = 0; i < 3; ++i) {
      if (reply.flow[i] > 0.0) {
        d_reply += reply.flow[i] *
                   models[i]->response_time(background[i] + reply.flow[i]);
      }
    }
    d_reply /= phi[j];
    EXPECT_LE(res.user_times[j] - d_reply, 1e-6) << "user " << j;
  }
}

TEST(DelayModel, ShiftedDelayAddsConstant) {
  const auto base = std::make_shared<MM1Delay>(10.0);
  const ShiftedDelay shifted(base, 0.05);
  EXPECT_DOUBLE_EQ(shifted.capacity(), 10.0);
  EXPECT_NEAR(shifted.response_time(4.0), 1.0 / 6.0 + 0.05, 1e-12);
  EXPECT_DOUBLE_EQ(shifted.response_time_derivative(4.0),
                   base->response_time_derivative(4.0));
  EXPECT_THROW(ShiftedDelay(nullptr, 0.1), std::invalid_argument);
  EXPECT_THROW(ShiftedDelay(base, -0.1), std::invalid_argument);
}

TEST(ConvexReply, CommunicationDelayRepelsRemoteComputers) {
  // Two identical computers, one behind a network delay: the best reply
  // favors the local one, and increasingly so as the delay grows.
  const std::vector<double> mu{10.0, 10.0};
  const std::vector<double> background{0.0, 0.0};
  double prev_remote_share = 1.0;
  for (double d : {0.0, 0.05, 0.2, 1.0}) {
    const auto models = mm1_models_with_comm(mu, {0.0, d});
    const ConvexReplyResult r = convex_best_reply(models, background, 8.0);
    const double remote_share = r.flow[1] / 8.0;
    EXPECT_LE(remote_share, prev_remote_share + 1e-9) << "delay " << d;
    if (d == 0.0) {
      EXPECT_NEAR(remote_share, 0.5, 1e-9);  // symmetry
    }
    prev_remote_share = remote_share;
  }
  // A large enough delay shuts the remote computer out entirely.
  const auto models = mm1_models_with_comm(mu, {0.0, 100.0});
  const ConvexReplyResult r = convex_best_reply(models, background, 8.0);
  EXPECT_DOUBLE_EQ(r.flow[1], 0.0);
}

TEST(GenericDynamics, CommDelayGameReachesEquilibrium) {
  const auto models = mm1_models_with_comm({50.0, 50.0, 100.0},
                                           {0.0, 0.02, 0.04});
  const std::vector<double> phi{40.0, 40.0, 40.0};
  const GenericDynamicsResult res =
      generic_best_reply_dynamics(models, phi, 1e-9, 2000);
  ASSERT_TRUE(res.converged);
  // Symmetric users, so identical equilibrium times.
  EXPECT_NEAR(res.user_times[0], res.user_times[1], 1e-6);
  EXPECT_NEAR(res.user_times[0], res.user_times[2], 1e-6);
}

TEST(GenericDynamics, RejectsOverload) {
  EXPECT_THROW((void)generic_best_reply_dynamics(mm1_models({10.0}), {11.0}),
               std::invalid_argument);
  EXPECT_THROW((void)generic_best_reply_dynamics({}, {1.0}),
               std::invalid_argument);
}

}  // namespace
}  // namespace nashlb::core
