#include "mechanism/payments.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace nashlb::mechanism {
namespace {

// True cost parameters (1/mu) of a 4-computer system with rates
// {10, 20, 50, 100} jobs/s.
std::vector<double> true_costs() {
  return {1.0 / 10.0, 1.0 / 20.0, 1.0 / 50.0, 1.0 / 100.0};
}

TEST(Mechanism, WorkAllocationMatchesGos) {
  // Pure allocation question (no payments), so high demand is fine here.
  const std::vector<double> costs = true_costs();
  const std::vector<double> w = work_allocation(costs, 108.0);  // 60% load
  // Total work = demand; faster computers carry more.
  EXPECT_NEAR(std::accumulate(w.begin(), w.end(), 0.0), 108.0, 1e-9);
  EXPECT_GT(w[3], w[2]);
  EXPECT_GT(w[2], w[1]);
  EXPECT_GT(w[1], w[0]);
  EXPECT_GT(w[0], 0.0);
}

TEST(Mechanism, RejectsBadInputs) {
  const std::vector<double> costs = true_costs();
  EXPECT_THROW((void)work_allocation(std::vector<double>{}, 1.0),
               std::invalid_argument);
  EXPECT_THROW((void)work_allocation(std::vector<double>{0.0}, 1.0),
               std::invalid_argument);
  EXPECT_THROW((void)work_allocation(costs, 180.0),  // = capacity
               std::invalid_argument);
  EXPECT_THROW((void)payment(costs, 70.0, 4), std::out_of_range);
  EXPECT_THROW((void)payment(costs, 70.0, 0, 1), std::invalid_argument);
}

TEST(Mechanism, WorkIsMonotoneNonIncreasingInOwnBid) {
  // The Archer–Tardos precondition: claiming to be slower never wins a
  // computer more work.
  const std::vector<double> costs = true_costs();
  const double phi = 70.0;
  for (std::size_t agent = 0; agent < costs.size(); ++agent) {
    double prev_work = std::numeric_limits<double>::infinity();
    for (double factor : {0.5, 0.8, 1.0, 1.5, 2.5, 5.0, 20.0}) {
      std::vector<double> bids = costs;
      bids[agent] *= factor;
      double cap = 0.0;
      for (double b : bids) cap += 1.0 / b;
      if (!(phi < cap)) continue;
      const double w = work_allocation(bids, phi)[agent];
      EXPECT_LE(w, prev_work + 1e-9)
          << "agent " << agent << " factor " << factor;
      prev_work = w;
    }
  }
}

TEST(Mechanism, PaymentCoversCost) {
  // Voluntary participation: truthful profit >= 0 for every computer.
  const std::vector<double> costs = true_costs();
  const double phi = 70.0;
  for (std::size_t agent = 0; agent < costs.size(); ++agent) {
    const AgentOutcome outcome = evaluate_agent(costs, phi, agent);
    EXPECT_GE(outcome.profit(costs[agent]), -1e-9) << "agent " << agent;
    EXPECT_GE(outcome.payment, costs[agent] * outcome.work - 1e-9);
  }
}

TEST(Mechanism, UnusedComputerEarnsNothing) {
  // At very low demand the slow computer gets no work — and the truthful
  // payment rule pays it nothing (no work at any higher bid either).
  const std::vector<double> costs = true_costs();
  const double phi = 5.0;
  const std::vector<double> w = work_allocation(costs, phi);
  ASSERT_DOUBLE_EQ(w[0], 0.0);
  const AgentOutcome outcome = evaluate_agent(costs, phi, 0);
  EXPECT_NEAR(outcome.payment, 0.0, 1e-9);
}

TEST(Mechanism, MonopolistIsRejected) {
  // If the other computers cannot carry the demand the rebate integral
  // diverges; the mechanism must refuse rather than pay infinity.
  const std::vector<double> costs{1.0 / 100.0, 1.0 / 5.0};
  const double phi = 50.0;  // only computer 0 can carry this
  EXPECT_THROW((void)payment(costs, phi, 0), std::invalid_argument);
}

class Truthfulness : public ::testing::TestWithParam<std::size_t> {};

TEST_P(Truthfulness, NoMisreportBeatsTruth) {
  const std::vector<double> costs = true_costs();
  const double phi = 70.0;
  const std::vector<double> factors{0.3,  0.5, 0.7, 0.9, 0.95, 1.05,
                                    1.1,  1.3, 1.7, 2.5, 4.0,  8.0};
  const double gain =
      best_misreport_gain(costs, phi, GetParam(), factors);
  // Numerically zero: quadrature + waterfill noise only.
  EXPECT_LE(gain, 1e-4) << "agent " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Agents, Truthfulness,
                         ::testing::Values(0u, 1u, 2u, 3u));

TEST(Mechanism, TruthfulnessHoldsAtOtherLoads) {
  const std::vector<double> costs = true_costs();
  const std::vector<double> factors{0.5, 0.8, 1.25, 2.0};
  for (double phi : {20.0, 45.0, 75.0}) {
    for (std::size_t agent = 0; agent < costs.size(); ++agent) {
      EXPECT_LE(best_misreport_gain(costs, phi, agent, factors), 1e-4)
          << "phi " << phi << " agent " << agent;
    }
  }
}

TEST(Mechanism, OverbiddingStrictlyHurtsActiveAgents) {
  // Wildly over-claiming cost prices the computer out and forfeits its
  // (positive) truthful profit.
  const std::vector<double> costs = true_costs();
  const double phi = 70.0;
  const AgentOutcome truthful = evaluate_agent(costs, phi, 3);
  std::vector<double> bids = costs;
  bids[3] *= 50.0;
  const AgentOutcome lied = evaluate_agent(bids, phi, 3);
  EXPECT_LT(lied.profit(costs[3]), truthful.profit(costs[3]) + 1e-9);
}

}  // namespace
}  // namespace nashlb::mechanism
