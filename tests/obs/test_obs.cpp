// Tests of the observability layer (obs/metrics.hpp, obs/histogram.hpp,
// obs/span.hpp, obs/trace.hpp): counter/timer/histogram semantics,
// registry export round-trips through the CSV and JSON-lines writers,
// span tracing and its Chrome trace-event serialization, the no-op
// contract of the disabled twins, and the instrumentation points in
// core/distributed/simmodel.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <type_traits>

#include "core/dynamics.hpp"
#include "des/facility.hpp"
#include "des/simulator.hpp"
#include "distributed/ring_protocol.hpp"
#include "obs/histogram.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "obs/trace.hpp"
#include "simmodel/replication.hpp"
#include "stats/distributions.hpp"
#include "stats/rng.hpp"

namespace {

using namespace nashlb;

/// Unique temp file path per test; removed on destruction.
class TempFile {
 public:
  explicit TempFile(const std::string& name)
      : path_((std::filesystem::temp_directory_path() /
               ("nashlb_obs_test_" + name))
                  .string()) {}
  ~TempFile() {
    std::error_code ec;
    std::filesystem::remove(path_, ec);
  }
  [[nodiscard]] const std::string& path() const { return path_; }
  [[nodiscard]] std::string contents() const {
    std::ifstream in(path_);
    std::stringstream ss;
    ss << in.rdbuf();
    return ss.str();
  }

 private:
  std::string path_;
};

core::Instance small_instance() {
  core::Instance inst;
  inst.mu = {100.0, 50.0, 10.0};
  inst.phi = {40.0, 20.0};
  return inst;
}

// --- counters / timers --------------------------------------------------

TEST(ObsMetrics, CounterAccumulates) {
  obs::detail::EnabledCounter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(ObsMetrics, TimerAccumulatesAndAverages) {
  obs::detail::EnabledTimer t;
  t.add_seconds(0.5);
  t.add_seconds(1.5);
  EXPECT_EQ(t.count(), 2u);
  EXPECT_DOUBLE_EQ(t.total_seconds(), 2.0);
  EXPECT_DOUBLE_EQ(t.mean_seconds(), 1.0);
  t.add_batch(3.0, 3);
  EXPECT_EQ(t.count(), 5u);
  EXPECT_DOUBLE_EQ(t.total_seconds(), 5.0);
}

TEST(ObsMetrics, TimerTracksExtremes) {
  obs::detail::EnabledTimer t;
  EXPECT_DOUBLE_EQ(t.min_seconds(), 0.0);  // empty: no extremes yet
  EXPECT_DOUBLE_EQ(t.max_seconds(), 0.0);
  t.add_seconds(1.5);
  t.add_seconds(0.5);
  EXPECT_DOUBLE_EQ(t.min_seconds(), 0.5);
  EXPECT_DOUBLE_EQ(t.max_seconds(), 1.5);
  // The 2-arg batch carries no extremes and must not disturb them.
  t.add_batch(100.0, 10);
  EXPECT_DOUBLE_EQ(t.min_seconds(), 0.5);
  EXPECT_DOUBLE_EQ(t.max_seconds(), 1.5);
  // The 4-arg batch folds its own extremes in.
  t.add_batch(1.0, 4, 0.01, 3.0);
  EXPECT_DOUBLE_EQ(t.min_seconds(), 0.01);
  EXPECT_DOUBLE_EQ(t.max_seconds(), 3.0);
  // An empty batch must not install bogus extremes.
  obs::detail::EnabledTimer u;
  u.add_batch(0.0, 0, 99.0, -99.0);
  EXPECT_DOUBLE_EQ(u.min_seconds(), 0.0);
  EXPECT_DOUBLE_EQ(u.max_seconds(), 0.0);
  t.reset();
  EXPECT_DOUBLE_EQ(t.min_seconds(), 0.0);
  EXPECT_DOUBLE_EQ(t.max_seconds(), 0.0);
}

TEST(ObsMetrics, CounterMergeSumsShards) {
  obs::detail::EnabledCounter a;
  obs::detail::EnabledCounter b;
  a.add(40);
  b.add(2);
  a.merge(b);
  EXPECT_EQ(a.value(), 42u);
  EXPECT_EQ(b.value(), 2u);  // the source shard is untouched
}

TEST(ObsMetrics, TimerMergeFoldsTotalsAndExtremes) {
  obs::detail::EnabledTimer a;
  obs::detail::EnabledTimer b;
  a.add_seconds(1.0);
  b.add_seconds(0.25);
  b.add_seconds(4.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_DOUBLE_EQ(a.total_seconds(), 5.25);
  EXPECT_DOUBLE_EQ(a.min_seconds(), 0.25);
  EXPECT_DOUBLE_EQ(a.max_seconds(), 4.0);
  // A shard with no recorded extremes (extreme-less batches only) must
  // not disturb the target's extremes — including a legitimate min of 0.
  obs::detail::EnabledTimer batch_only;
  batch_only.add_batch(10.0, 5);
  a.merge(batch_only);
  EXPECT_EQ(a.count(), 8u);
  EXPECT_DOUBLE_EQ(a.total_seconds(), 15.25);
  EXPECT_DOUBLE_EQ(a.min_seconds(), 0.25);
  EXPECT_DOUBLE_EQ(a.max_seconds(), 4.0);
  // Merging into an empty timer adopts the source's extremes verbatim.
  obs::detail::EnabledTimer empty;
  empty.merge(a);
  EXPECT_DOUBLE_EQ(empty.min_seconds(), 0.25);
  EXPECT_DOUBLE_EQ(empty.max_seconds(), 4.0);
}

TEST(ObsMetrics, RegistryMergeReducesShardsMetricByMetric) {
  // The sharding pattern behind parallel replications: one registry per
  // worker, merged in a fixed order after the join.
  obs::detail::EnabledRegistry total;
  obs::detail::EnabledRegistry shard1;
  obs::detail::EnabledRegistry shard2;
  total.counter("jobs").add(1);
  shard1.counter("jobs").add(10);
  shard1.timer("busy").add_seconds(0.5);
  shard1.histogram("sojourn").record(0.125);
  shard2.counter("jobs").add(100);
  shard2.counter("only_in_shard2").add(7);
  shard2.timer("busy").add_seconds(1.5);
  shard2.histogram("sojourn").record(2.0);
  total.merge(shard1);
  total.merge(shard2);
  EXPECT_EQ(total.counter("jobs").value(), 111u);
  EXPECT_EQ(total.counter("only_in_shard2").value(), 7u);
  EXPECT_EQ(total.timer("busy").count(), 2u);
  EXPECT_DOUBLE_EQ(total.timer("busy").total_seconds(), 2.0);
  EXPECT_DOUBLE_EQ(total.timer("busy").min_seconds(), 0.5);
  EXPECT_DOUBLE_EQ(total.timer("busy").max_seconds(), 1.5);
  EXPECT_EQ(total.histogram("sojourn").count(), 2u);
  EXPECT_DOUBLE_EQ(total.histogram("sojourn").min(), 0.125);
  EXPECT_DOUBLE_EQ(total.histogram("sojourn").max(), 2.0);
  // Merge order over disjoint shards is associative for these folds:
  // merging the other way round yields the same reduced metrics.
  obs::detail::EnabledRegistry reversed;
  reversed.counter("jobs").add(1);
  reversed.merge(shard2);
  reversed.merge(shard1);
  EXPECT_EQ(reversed.counter("jobs").value(), 111u);
  EXPECT_DOUBLE_EQ(reversed.timer("busy").min_seconds(), 0.5);
  EXPECT_EQ(reversed.histogram("sojourn").count(), 2u);
}

TEST(ObsMetrics, NullTwinsMergeAsNoOps) {
  obs::detail::NullCounter nc;
  nc.merge(obs::detail::NullCounter{});
  EXPECT_EQ(nc.value(), 0u);
  obs::detail::NullTimer nt;
  nt.merge(obs::detail::NullTimer{});
  EXPECT_EQ(nt.count(), 0u);
  obs::detail::NullRegistry nr;
  nr.merge(obs::detail::NullRegistry{});
  EXPECT_EQ(nr.size(), 0u);
}

TEST(ObsMetrics, ScopedTimerChargesOnExit) {
  obs::detail::EnabledTimer t;
  {
    obs::detail::EnabledScopedTimer scope(t);
    EXPECT_EQ(t.count(), 0u);  // charged at scope exit, not construction
    EXPECT_GE(scope.elapsed_seconds(), 0.0);
  }
  EXPECT_EQ(t.count(), 1u);
  EXPECT_GE(t.total_seconds(), 0.0);
}

TEST(ObsMetrics, RegistryReferencesAreStable) {
  obs::detail::EnabledRegistry reg;
  obs::detail::EnabledCounter& a = reg.counter("a");
  // Creating many more metrics must not invalidate `a`.
  for (int i = 0; i < 100; ++i) {
    const std::string suffix = std::to_string(i);
    reg.counter("c" + suffix).add();
    reg.timer("t" + suffix).add_seconds(0.1);
  }
  a.add(7);
  EXPECT_EQ(reg.counter("a").value(), 7u);
  EXPECT_EQ(reg.size(), 201u);
}

TEST(ObsMetrics, RegistryCsvRoundTrip) {
  obs::detail::EnabledRegistry reg;
  reg.counter("solver.rounds").add(17);
  reg.timer("solver.wall").add_batch(2.5, 5);
  reg.histogram("solver.round_latency").record(0.5);
  TempFile f("registry.csv");
  reg.write_csv(f.path());
  const std::string csv = f.contents();
  EXPECT_NE(csv.find("metric,kind,count,total_seconds,min_seconds,"
                     "max_seconds,p50,p90,p99"),
            std::string::npos);
  EXPECT_NE(csv.find("solver.rounds,counter,17,0,0,0,0,0,0"),
            std::string::npos);
  // The batch carried no extremes, so min/max export as 0.
  EXPECT_NE(csv.find("solver.wall,timer,5,2.5,0,0,0,0,0"),
            std::string::npos);
  // A single 0.5 s observation: every quantile clamps to the exact value.
  EXPECT_NE(csv.find("solver.round_latency,histogram,1,0.5,0.5,0.5,"
                     "0.5,0.5,0.5"),
            std::string::npos);
}

TEST(ObsMetrics, RegistryExportColumnsMatchSnapshotFields) {
  // The programmatic schema is what consumers (and the lint) key on.
  const std::vector<std::string> cols = obs::registry_export_columns();
  ASSERT_EQ(cols.size(), 9u);
  EXPECT_EQ(cols.front(), "metric");
  EXPECT_EQ(cols.back(), "p99");
}

TEST(ObsMetrics, RegistryJsonlRoundTrip) {
  obs::detail::EnabledRegistry reg;
  reg.counter("events").add(3);
  TempFile f("registry.jsonl");
  reg.write_jsonl(f.path());
  EXPECT_EQ(f.contents(),
            "{\"metric\":\"events\",\"kind\":\"counter\",\"count\":3,"
            "\"total_seconds\":0,\"min_seconds\":0,\"max_seconds\":0,"
            "\"p50\":0,\"p90\":0,\"p99\":0}\n");
}

// --- trace sink ---------------------------------------------------------

TEST(ObsTrace, SchemaIsValidated) {
  EXPECT_THROW(obs::detail::EnabledTraceSink({}), std::invalid_argument);
  EXPECT_THROW(obs::detail::EnabledTraceSink({"a", "a"}),
               std::invalid_argument);
  obs::detail::EnabledTraceSink sink({"a", "b"});
  EXPECT_THROW(sink.record({std::int64_t{1}}), std::invalid_argument);
  EXPECT_EQ(sink.size(), 0u);
}

TEST(ObsTrace, RecordsTypedRows) {
  obs::detail::EnabledTraceSink sink({"iter", "norm", "tag"});
  sink.record({std::int64_t{1}, 0.5, std::string("warm")});
  sink.record({std::int64_t{2}, 0.25, std::string("steady")});
  ASSERT_EQ(sink.size(), 2u);
  const std::vector<double> norms = sink.column_as_doubles("norm");
  ASSERT_EQ(norms.size(), 2u);
  EXPECT_DOUBLE_EQ(norms[0], 0.5);
  EXPECT_DOUBLE_EQ(norms[1], 0.25);
  // Integer columns convert; string columns come back NaN.
  EXPECT_DOUBLE_EQ(sink.column_as_doubles("iter")[1], 2.0);
  EXPECT_TRUE(std::isnan(sink.column_as_doubles("tag")[0]));
  EXPECT_THROW((void)sink.column_as_doubles("nope"), std::out_of_range);
}

TEST(ObsTrace, CsvRoundTripWithQuoting) {
  obs::detail::EnabledTraceSink sink({"scheme", "value"});
  sink.record({std::string("NASH, eps=1e-4"), 0.0625});
  TempFile f("trace.csv");
  sink.write_csv(f.path());
  EXPECT_EQ(f.contents(),
            "scheme,value\n\"NASH, eps=1e-4\",0.0625\n");
}

TEST(ObsTrace, JsonlRoundTrip) {
  obs::detail::EnabledTraceSink sink({"iter", "norm", "note"});
  sink.record({std::int64_t{3}, 0.125, std::string("a\"b")});
  TempFile f("trace.jsonl");
  sink.write_jsonl(f.path());
  EXPECT_EQ(f.contents(),
            "{\"iter\":3,\"norm\":0.125,\"note\":\"a\\\"b\"}\n");
}

TEST(ObsTrace, DoublesSurviveRoundTrip) {
  // The CSV/JSON number formatting must be round-trippable, not pretty.
  const double v = 0.1 + 0.2;  // 0.30000000000000004
  obs::detail::EnabledTraceSink sink({"v"});
  sink.record({v});
  TempFile f("roundtrip.csv");
  sink.write_csv(f.path());
  std::ifstream in(f.path());
  std::string header, cell;
  std::getline(in, header);
  std::getline(in, cell);
  EXPECT_EQ(std::stod(cell), v);
}

TEST(ObsJson, EscapesControlCharacters) {
  EXPECT_EQ(obs::json_quote("a\nb\t\"\\"), "\"a\\nb\\t\\\"\\\\\"");
  EXPECT_EQ(obs::json_quote(std::string(1, '\x01')), "\"\\u0001\"");
  EXPECT_EQ(obs::json_number(std::numeric_limits<double>::infinity()),
            "null");
}

// --- histograms ---------------------------------------------------------

TEST(ObsHistogram, LayoutIsMonotoneAndSelfConsistent) {
  using Layout = obs::HistogramLayout;
  ASSERT_GT(Layout::bucket_count(), 0u);
  for (std::size_t k = 0; k < Layout::bucket_count(); ++k) {
    const double lo = Layout::bucket_lower_bound(k);
    const double hi = Layout::bucket_upper_bound(k);
    EXPECT_LT(lo, hi);
    if (k > 0) {
      EXPECT_DOUBLE_EQ(lo, Layout::bucket_upper_bound(k - 1));
    }
    // A value strictly inside the bucket indexes back to it.
    EXPECT_EQ(Layout::bucket_index(lo * 1.01), k);
  }
  // Out-of-grid values clamp instead of falling off.
  EXPECT_EQ(Layout::bucket_index(0.0), 0u);
  EXPECT_EQ(Layout::bucket_index(-1.0), 0u);
  EXPECT_EQ(Layout::bucket_index(1e300), Layout::bucket_count() - 1);
}

TEST(ObsHistogram, RecordsCountSumAndExtremes) {
  obs::detail::EnabledHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);  // empty
  h.record(0.25);
  h.record(1.0);
  h.record(0.03);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.sum(), 1.28);
  EXPECT_DOUBLE_EQ(h.min(), 0.03);
  EXPECT_DOUBLE_EQ(h.max(), 1.0);
  EXPECT_DOUBLE_EQ(h.mean(), 1.28 / 3.0);
  // Quantiles stay inside the exact observed range.
  EXPECT_GE(h.p50(), h.min());
  EXPECT_LE(h.p99(), h.max());
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.max(), 0.0);
}

TEST(ObsHistogram, QuantilesTrackExactSampleQuantiles) {
  // Random exponential latencies: the histogram's interpolated quantile
  // must track the exact sorted-sample quantile within the bucket
  // relative width (~4.4%) plus interpolation slack.
  stats::Xoshiro256 rng(0xfeedULL);
  const stats::Exponential latency(50.0);  // mean 20 ms
  obs::detail::EnabledHistogram h;
  std::vector<double> samples;
  const std::size_t kN = 20000;
  samples.reserve(kN);
  for (std::size_t s = 0; s < kN; ++s) {
    const double x = latency.sample(rng);
    samples.push_back(x);
    h.record(x);
  }
  std::sort(samples.begin(), samples.end());
  for (double q : {0.10, 0.50, 0.90, 0.99}) {
    const std::size_t rank = static_cast<std::size_t>(
        std::ceil(q * static_cast<double>(kN)));
    const double exact = samples[rank - 1];
    EXPECT_NEAR(h.quantile(q), exact, 0.06 * exact)
        << "q=" << q;
  }
  // Degenerate quantiles clamp to the exact extremes.
  EXPECT_DOUBLE_EQ(h.quantile(0.0), samples.front());
  EXPECT_DOUBLE_EQ(h.quantile(1.0), samples.back());
}

TEST(ObsHistogram, MergeIsAssociativeAndCommutative) {
  stats::Xoshiro256 rng(0xabcdULL);
  const stats::Exponential latency(10.0);
  obs::detail::EnabledHistogram a, b, c;
  for (int s = 0; s < 500; ++s) a.record(latency.sample(rng));
  for (int s = 0; s < 300; ++s) b.record(latency.sample(rng) * 2.0);
  for (int s = 0; s < 100; ++s) c.record(latency.sample(rng) * 0.1);

  const auto same = [](const obs::detail::EnabledHistogram& x,
                       const obs::detail::EnabledHistogram& y) {
    ASSERT_EQ(x.count(), y.count());
    EXPECT_DOUBLE_EQ(x.sum(), y.sum());
    EXPECT_DOUBLE_EQ(x.min(), y.min());
    EXPECT_DOUBLE_EQ(x.max(), y.max());
    for (std::size_t k = 0; k < obs::HistogramLayout::bucket_count(); ++k) {
      ASSERT_EQ(x.bucket(k), y.bucket(k)) << "bucket " << k;
    }
    EXPECT_DOUBLE_EQ(x.p50(), y.p50());
    EXPECT_DOUBLE_EQ(x.p99(), y.p99());
  };

  // Commutativity: a+b == b+a.
  obs::detail::EnabledHistogram ab = a, ba = b;
  ab.merge(b);
  ba.merge(a);
  same(ab, ba);

  // Associativity: (a+b)+c == a+(b+c).
  obs::detail::EnabledHistogram left = ab, bc = b, right = a;
  left.merge(c);
  bc.merge(c);
  right.merge(bc);
  same(left, right);

  // Merging an empty histogram is the identity.
  obs::detail::EnabledHistogram a2 = a;
  a2.merge(obs::detail::EnabledHistogram{});
  same(a2, a);
}

// --- span tracer --------------------------------------------------------

TEST(ObsSpan, BeginEndNestAndInterleave) {
  obs::detail::EnabledSpanTracer tracer;
  const obs::SpanId outer = tracer.begin("round", "dynamics", 0, 1);
  const obs::SpanId inner = tracer.begin("reply", "dynamics", 0, 7);
  EXPECT_EQ(tracer.open_spans(), 2u);
  tracer.end(inner);
  tracer.end(outer);
  EXPECT_EQ(tracer.open_spans(), 0u);
  ASSERT_EQ(tracer.size(), 2u);
  // Completion order: inner first; the outer span encloses it.
  const obs::SpanEvent& reply = tracer.events()[0];
  const obs::SpanEvent& round = tracer.events()[1];
  EXPECT_EQ(reply.name, "reply");
  EXPECT_EQ(round.name, "round");
  EXPECT_EQ(reply.id, 7);
  EXPECT_LE(round.start_us, reply.start_us);
  EXPECT_GE(round.start_us + round.duration_us,
            reply.start_us + reply.duration_us);
  // Ending an unknown id is ignored.
  tracer.end(obs::SpanId{12345});
  EXPECT_EQ(tracer.size(), 2u);
}

TEST(ObsSpan, RecordSpanUsesCallerTimeline) {
  obs::detail::EnabledSpanTracer tracer;
  tracer.record_span("hop", "ring", 2.5, 0.001, 3, 11);
  tracer.record_span("clamped", "ring", 1.0, -5.0);
  ASSERT_EQ(tracer.size(), 2u);
  EXPECT_DOUBLE_EQ(tracer.events()[0].start_us, 2.5e6);
  EXPECT_DOUBLE_EQ(tracer.events()[0].duration_us, 1e3);
  EXPECT_EQ(tracer.events()[0].track, 3u);
  EXPECT_EQ(tracer.events()[0].id, 11);
  EXPECT_DOUBLE_EQ(tracer.events()[1].duration_us, 0.0);
}

TEST(ObsSpan, ChromeTraceJsonIsSchemaComplete) {
  obs::detail::EnabledSpanTracer tracer;
  tracer.record_span("compute", "ring", 0.0, 0.5, 1, 1);
  tracer.record_span("hop \"x\"", "ring", 0.5, 0.1, 1, 2);
  const obs::SpanId open = tracer.begin("dangling", "test");
  (void)open;  // left open: must not be exported
  TempFile f("spans.json");
  tracer.write_chrome_trace(f.path());
  const std::string json = f.contents();
  EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  // Every declared field appears once per event, and only complete ("X")
  // events are emitted.
  std::size_t events = 0;
  for (std::size_t at = json.find("\"ph\":\"X\""); at != std::string::npos;
       at = json.find("\"ph\":\"X\"", at + 1)) {
    ++events;
  }
  EXPECT_EQ(events, tracer.size());
  for (const std::string& field : obs::span_trace_fields()) {
    std::size_t hits = 0;
    const std::string needle = "\"" + field + "\":";
    for (std::size_t at = json.find(needle); at != std::string::npos;
         at = json.find(needle, at + 1)) {
      ++hits;
    }
    EXPECT_EQ(hits, tracer.size()) << "field " << field;
  }
  EXPECT_NE(json.find("hop \\\"x\\\""), std::string::npos);  // escaping
  EXPECT_EQ(json.find("dangling"), std::string::npos);
  ASSERT_EQ(obs::span_trace_fields().size(), 8u);
}

// --- the no-op twins (the disabled build's types) -----------------------

TEST(ObsDisabled, NullTypesAreEmptyNoOps) {
  // The disabled build swaps these in for the real types; they must have
  // empty layout and discard everything.
  static_assert(std::is_empty_v<obs::detail::NullCounter>);
  static_assert(std::is_empty_v<obs::detail::NullTimer>);
  static_assert(std::is_empty_v<obs::detail::NullHistogram>);
  static_assert(std::is_empty_v<obs::detail::NullSpanTracer>);
  obs::detail::NullCounter c;
  c.add(1000);
  EXPECT_EQ(c.value(), 0u);
  obs::detail::NullTimer t;
  t.add_seconds(5.0);
  t.add_batch(5.0, 5);
  t.add_batch(5.0, 5, 1.0, 4.0);
  EXPECT_EQ(t.count(), 0u);
  EXPECT_EQ(t.total_seconds(), 0.0);
  EXPECT_EQ(t.min_seconds(), 0.0);
  EXPECT_EQ(t.max_seconds(), 0.0);
  {
    obs::detail::NullScopedTimer scope(t);
    EXPECT_EQ(scope.elapsed_seconds(), 0.0);
  }
  EXPECT_EQ(t.count(), 0u);
}

TEST(ObsDisabled, NullHistogramRecordsNothing) {
  obs::detail::NullHistogram h;
  h.record(1.0);
  obs::detail::NullHistogram other;
  other.record(2.0);
  h.merge(other);
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0.0);
  EXPECT_EQ(h.min(), 0.0);
  EXPECT_EQ(h.max(), 0.0);
  EXPECT_EQ(h.quantile(0.99), 0.0);
  EXPECT_EQ(h.p50(), 0.0);
  EXPECT_EQ(h.bucket(0), 0u);
}

TEST(ObsDisabled, NullSpanTracerDiscardsAndWritesNoFiles) {
  obs::detail::NullSpanTracer tracer;
  const obs::SpanId id = tracer.begin("round", "dynamics");
  tracer.record_span("hop", "ring", 0.0, 1.0);
  tracer.end(id);
  {
    obs::detail::NullScopedSpan scope(tracer, "reply", "dynamics");
  }
  EXPECT_TRUE(tracer.empty());
  EXPECT_EQ(tracer.size(), 0u);
  EXPECT_EQ(tracer.open_spans(), 0u);
  EXPECT_TRUE(tracer.events().empty());
  TempFile f("null_spans.json");
  tracer.write_chrome_trace(f.path());
  EXPECT_FALSE(std::filesystem::exists(f.path()));
}

TEST(ObsDisabled, NullRegistryAndSinkDiscardEverything) {
  obs::detail::NullRegistry reg;
  reg.counter("x").add(5);
  reg.timer("y").add_seconds(1.0);
  reg.histogram("z").record(1.0);
  EXPECT_EQ(reg.size(), 0u);
  EXPECT_TRUE(reg.snapshot().empty());

  obs::detail::NullTraceSink sink({"a", "b"});
  sink.record({std::int64_t{1}, 2.0});
  EXPECT_TRUE(sink.empty());
  EXPECT_TRUE(sink.rows().empty());
  EXPECT_TRUE(sink.column_as_doubles("a").empty());
  // write_* must not create files.
  TempFile f("null_sink.csv");
  sink.write_csv(f.path());
  reg.write_csv(f.path());
  EXPECT_FALSE(std::filesystem::exists(f.path()));
}

// An instrumented call site, templated on the sink type the way the
// library's call sites are switched by NASHLB_OBS_ENABLED: with the null
// sink the same code must compile and record nothing.
template <typename Sink>
std::size_t instrumented_loop(Sink& sink) {
  std::size_t work = 0;
  for (int i = 0; i < 4; ++i) {
    work += static_cast<std::size_t>(i);
    sink.record({static_cast<std::int64_t>(i), static_cast<double>(i) * 0.5});
  }
  return work;
}

TEST(ObsDisabled, InstrumentedCallSiteCompilesAgainstBothTwins) {
  obs::detail::EnabledTraceSink enabled({"i", "v"});
  obs::detail::NullTraceSink null({"i", "v"});
  EXPECT_EQ(instrumented_loop(enabled), instrumented_loop(null));
  EXPECT_EQ(enabled.size(), 4u);
  EXPECT_EQ(null.size(), 0u);
}

// --- instrumentation points in the stack --------------------------------

TEST(ObsWiring, DynamicsEmitsOneRowPerRound) {
  const core::Instance inst = small_instance();
  obs::TraceSink sink(core::dynamics_trace_columns());
  core::DynamicsOptions opts;
  opts.tolerance = 1e-8;
  opts.trace = &sink;
  const core::DynamicsResult r = core::best_reply_dynamics(inst, opts);
  ASSERT_TRUE(r.converged);
  if constexpr (obs::kEnabled) {
    ASSERT_EQ(sink.size(), r.iterations);
    // The recorded norms are exactly the result's norm history...
    const std::vector<double> norms = sink.column_as_doubles("norm");
    for (std::size_t l = 0; l < r.iterations; ++l) {
      EXPECT_DOUBLE_EQ(norms[l], r.norm_history[l]);
    }
    // ...the certificates decay to equilibrium quality...
    EXPECT_LE(sink.column_as_doubles("best_reply_gap").back(), 1e-6);
    EXPECT_LE(sink.column_as_doubles("max_kkt_residual").back(), 1e-6);
    // ...cut indices are within [1, n], and wall time is nondecreasing.
    const std::vector<double> wall = sink.column_as_doubles("wall_seconds");
    for (std::size_t l = 0; l < r.iterations; ++l) {
      EXPECT_GE(sink.column_as_doubles("min_cut")[l], 1.0);
      EXPECT_LE(sink.column_as_doubles("max_cut")[l],
                static_cast<double>(inst.num_computers()));
      if (l > 0) {
        EXPECT_GE(wall[l], wall[l - 1]);
      }
    }
  } else {
    EXPECT_EQ(sink.size(), 0u);
  }
}

TEST(ObsWiring, DynamicsEmitsNestedRoundAndReplySpans) {
  const core::Instance inst = small_instance();
  obs::SpanTracer spans;
  core::DynamicsOptions opts;
  opts.spans = &spans;
  const core::DynamicsResult r = core::best_reply_dynamics(inst, opts);
  ASSERT_TRUE(r.converged);
  if constexpr (obs::kEnabled) {
    EXPECT_EQ(spans.open_spans(), 0u);
    std::vector<const obs::SpanEvent*> rounds, replies;
    for (const obs::SpanEvent& e : spans.events()) {
      EXPECT_EQ(e.category, "dynamics");
      if (e.name == "round") rounds.push_back(&e);
      if (e.name == "reply") replies.push_back(&e);
    }
    EXPECT_EQ(rounds.size() + replies.size(), spans.size());
    ASSERT_EQ(rounds.size(), r.iterations);
    EXPECT_EQ(replies.size(), r.iterations * inst.num_users());
    // Round ids are the 1-based round index, in order.
    for (std::size_t l = 0; l < rounds.size(); ++l) {
      EXPECT_EQ(rounds[l]->id, static_cast<std::int64_t>(l + 1));
    }
    // Every reply span is enclosed by some round span.
    for (const obs::SpanEvent* reply : replies) {
      bool enclosed = false;
      for (const obs::SpanEvent* round : rounds) {
        if (round->start_us <= reply->start_us &&
            round->start_us + round->duration_us >=
                reply->start_us + reply->duration_us) {
          enclosed = true;
          break;
        }
      }
      EXPECT_TRUE(enclosed) << "reply for user " << reply->id;
    }
  } else {
    EXPECT_TRUE(spans.empty());
  }
}

TEST(ObsWiring, RingProtocolEmitsOneRowPerRound) {
  const core::Instance inst = small_instance();
  obs::TraceSink sink(distributed::ring_trace_columns());
  distributed::RingOptions opts;
  opts.trace = &sink;
  const distributed::RingResult r = distributed::run_ring_protocol(inst, opts);
  ASSERT_TRUE(r.converged);
  if constexpr (obs::kEnabled) {
    ASSERT_EQ(sink.size(), r.rounds);
    EXPECT_DOUBLE_EQ(sink.column_as_doubles("norm").back(),
                     r.norm_history.back());
    // Messages accumulate monotonically; sim time advances.
    const std::vector<double> msgs = sink.column_as_doubles("messages");
    const std::vector<double> sim_t = sink.column_as_doubles("sim_time");
    for (std::size_t l = 1; l < sink.size(); ++l) {
      EXPECT_GE(msgs[l], msgs[l - 1]);
      EXPECT_GT(sim_t[l], sim_t[l - 1]);
    }
  } else {
    EXPECT_EQ(sink.size(), 0u);
  }
}

TEST(ObsWiring, RingProtocolEmitsSpansAndPerNodeCounters) {
  const core::Instance inst = small_instance();
  const std::size_t m = inst.num_users();
  obs::SpanTracer spans;
  obs::Registry reg;
  distributed::RingOptions opts;
  opts.spans = &spans;
  opts.metrics = &reg;
  const distributed::RingResult r = distributed::run_ring_protocol(inst, opts);
  ASSERT_TRUE(r.converged);
  if constexpr (obs::kEnabled) {
    std::size_t hops = 0;
    std::size_t computes = 0;
    for (const obs::SpanEvent& e : spans.events()) {
      EXPECT_EQ(e.category, "ring");
      EXPECT_LT(e.track, m);
      EXPECT_GE(e.id, 1);  // tagged with the 1-based round
      if (e.name == "hop" || e.name == "stop") ++hops;
      if (e.name == "compute") ++computes;
    }
    // One hop/stop span per ring message, one compute span per update.
    EXPECT_EQ(hops, r.messages);
    EXPECT_EQ(computes, r.rounds * m);
    // The per-node send counters partition the message total.
    std::uint64_t sent = 0;
    for (std::size_t j = 0; j < m; ++j) {
      sent += reg.counter("ring.node." + std::to_string(j) + ".sent").value();
    }
    EXPECT_EQ(sent, r.messages);
  } else {
    EXPECT_TRUE(spans.empty());
    EXPECT_EQ(reg.size(), 0u);
  }
}

TEST(ObsWiring, DesKernelAndFacilityPublishCounters) {
  des::Simulator sim;
  des::Facility server(sim, "cpu0", 1);
  // Two back-to-back unit jobs: one served immediately, one queued.
  sim.schedule(0.0, [&](des::SimTime) {
    server.request(1.0, [](des::SimTime) {});
    server.request(1.0, [](des::SimTime) {});
  });
  sim.run();
  obs::Registry reg;
  sim.publish_metrics(reg);
  server.publish_metrics(reg, sim.now());
  if constexpr (obs::kEnabled) {
    EXPECT_EQ(reg.counter("des.events_executed").value(),
              sim.events_executed());
    EXPECT_GE(reg.counter("des.events_scheduled").value(),
              reg.counter("des.events_executed").value());
    EXPECT_EQ(reg.counter("cpu0.requests").value(), 2u);
    EXPECT_EQ(reg.counter("cpu0.completed").value(), 2u);
    // Two unit jobs back to back: 2 busy server-seconds over [0, 2].
    EXPECT_NEAR(reg.timer("cpu0.busy_time").total_seconds(), 2.0, 1e-12);
    // The queued job waited exactly one service time; the 4-arg batch
    // publish carries the per-job extremes.
    EXPECT_NEAR(reg.timer("cpu0.waiting").total_seconds(), 1.0, 1e-12);
    EXPECT_EQ(reg.timer("cpu0.waiting").count(), 2u);
    EXPECT_NEAR(reg.timer("cpu0.waiting").min_seconds(), 0.0, 1e-12);
    EXPECT_NEAR(reg.timer("cpu0.waiting").max_seconds(), 1.0, 1e-12);
    // Sojourns: 1 s for the first job, 2 s for the queued one.
    const obs::Histogram& sojourn = server.sojourn_histogram();
    EXPECT_EQ(sojourn.count(), 2u);
    EXPECT_NEAR(sojourn.min(), 1.0, 1e-12);
    EXPECT_NEAR(sojourn.max(), 2.0, 1e-12);
    EXPECT_NEAR(sojourn.sum(), 3.0, 1e-12);
    EXPECT_EQ(reg.histogram("cpu0.sojourn").count(), 2u);
    EXPECT_NEAR(reg.histogram("cpu0.sojourn").max(), 2.0, 1e-12);
  } else {
    EXPECT_EQ(reg.size(), 0u);
  }
}

TEST(ObsWiring, SystemSimExportsPerComputerSojournHistograms) {
  const core::Instance inst = small_instance();
  const core::StrategyProfile profile =
      core::StrategyProfile::proportional(inst);
  simmodel::SimConfig cfg;
  cfg.horizon = 50.0;
  cfg.warmup = 0.0;
  const simmodel::SimRunResult run = simmodel::simulate(inst, profile, cfg);
  ASSERT_EQ(run.computer_sojourn.size(), inst.num_computers());
  if constexpr (obs::kEnabled) {
    std::uint64_t recorded = 0;
    for (const obs::Histogram& h : run.computer_sojourn) {
      recorded += h.count();
      if (h.count() > 0) {
        EXPECT_GT(h.max(), 0.0);
      }
    }
    // Every completed job's sojourn is recorded (incl. warmup = 0 here).
    EXPECT_EQ(recorded, run.jobs_completed);
  } else {
    for (const obs::Histogram& h : run.computer_sojourn) {
      EXPECT_EQ(h.count(), 0u);
    }
  }
}

TEST(ObsWiring, ReplicationEmitsOneRowPerReplication) {
  const core::Instance inst = small_instance();
  const core::StrategyProfile profile =
      core::StrategyProfile::proportional(inst);
  simmodel::ReplicationConfig cfg;
  cfg.base.horizon = 20.0;
  cfg.base.warmup = 2.0;
  cfg.replications = 3;
  obs::TraceSink sink(simmodel::replication_trace_columns());
  cfg.trace = &sink;
  const simmodel::ReplicatedResult rep =
      simmodel::replicate(inst, profile, cfg);
  ASSERT_EQ(rep.wall_seconds.size(), 3u);
  for (double w : rep.wall_seconds) EXPECT_GT(w, 0.0);
  if constexpr (obs::kEnabled) {
    ASSERT_EQ(sink.size(), 3u);
    const std::vector<double> reps = sink.column_as_doubles("replication");
    for (std::size_t r = 0; r < 3; ++r) {
      EXPECT_DOUBLE_EQ(reps[r], static_cast<double>(r));
    }
    for (double jobs : sink.column_as_doubles("jobs_generated")) {
      EXPECT_GT(jobs, 0.0);
    }
  } else {
    EXPECT_EQ(sink.size(), 0u);
  }
}

}  // namespace
