// Tests of the observability layer (obs/metrics.hpp, obs/trace.hpp):
// counter/timer semantics, registry export round-trips through the CSV
// and JSON-lines writers, the no-op contract of the disabled twins, and
// the instrumentation points in core/distributed/simmodel.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <type_traits>

#include "core/dynamics.hpp"
#include "des/facility.hpp"
#include "des/simulator.hpp"
#include "distributed/ring_protocol.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "simmodel/replication.hpp"

namespace {

using namespace nashlb;

/// Unique temp file path per test; removed on destruction.
class TempFile {
 public:
  explicit TempFile(const std::string& name)
      : path_((std::filesystem::temp_directory_path() /
               ("nashlb_obs_test_" + name))
                  .string()) {}
  ~TempFile() {
    std::error_code ec;
    std::filesystem::remove(path_, ec);
  }
  [[nodiscard]] const std::string& path() const { return path_; }
  [[nodiscard]] std::string contents() const {
    std::ifstream in(path_);
    std::stringstream ss;
    ss << in.rdbuf();
    return ss.str();
  }

 private:
  std::string path_;
};

core::Instance small_instance() {
  core::Instance inst;
  inst.mu = {100.0, 50.0, 10.0};
  inst.phi = {40.0, 20.0};
  return inst;
}

// --- counters / timers --------------------------------------------------

TEST(ObsMetrics, CounterAccumulates) {
  obs::detail::EnabledCounter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(ObsMetrics, TimerAccumulatesAndAverages) {
  obs::detail::EnabledTimer t;
  t.add_seconds(0.5);
  t.add_seconds(1.5);
  EXPECT_EQ(t.count(), 2u);
  EXPECT_DOUBLE_EQ(t.total_seconds(), 2.0);
  EXPECT_DOUBLE_EQ(t.mean_seconds(), 1.0);
  t.add_batch(3.0, 3);
  EXPECT_EQ(t.count(), 5u);
  EXPECT_DOUBLE_EQ(t.total_seconds(), 5.0);
}

TEST(ObsMetrics, ScopedTimerChargesOnExit) {
  obs::detail::EnabledTimer t;
  {
    obs::detail::EnabledScopedTimer scope(t);
    EXPECT_EQ(t.count(), 0u);  // charged at scope exit, not construction
    EXPECT_GE(scope.elapsed_seconds(), 0.0);
  }
  EXPECT_EQ(t.count(), 1u);
  EXPECT_GE(t.total_seconds(), 0.0);
}

TEST(ObsMetrics, RegistryReferencesAreStable) {
  obs::detail::EnabledRegistry reg;
  obs::detail::EnabledCounter& a = reg.counter("a");
  // Creating many more metrics must not invalidate `a`.
  for (int i = 0; i < 100; ++i) {
    const std::string suffix = std::to_string(i);
    reg.counter("c" + suffix).add();
    reg.timer("t" + suffix).add_seconds(0.1);
  }
  a.add(7);
  EXPECT_EQ(reg.counter("a").value(), 7u);
  EXPECT_EQ(reg.size(), 201u);
}

TEST(ObsMetrics, RegistryCsvRoundTrip) {
  obs::detail::EnabledRegistry reg;
  reg.counter("solver.rounds").add(17);
  reg.timer("solver.wall").add_batch(2.5, 5);
  TempFile f("registry.csv");
  reg.write_csv(f.path());
  const std::string csv = f.contents();
  EXPECT_NE(csv.find("metric,kind,count,total_seconds"), std::string::npos);
  EXPECT_NE(csv.find("solver.rounds,counter,17,0"), std::string::npos);
  EXPECT_NE(csv.find("solver.wall,timer,5,2.5"), std::string::npos);
}

TEST(ObsMetrics, RegistryJsonlRoundTrip) {
  obs::detail::EnabledRegistry reg;
  reg.counter("events").add(3);
  TempFile f("registry.jsonl");
  reg.write_jsonl(f.path());
  EXPECT_EQ(f.contents(),
            "{\"metric\":\"events\",\"kind\":\"counter\",\"count\":3,"
            "\"total_seconds\":0}\n");
}

// --- trace sink ---------------------------------------------------------

TEST(ObsTrace, SchemaIsValidated) {
  EXPECT_THROW(obs::detail::EnabledTraceSink({}), std::invalid_argument);
  EXPECT_THROW(obs::detail::EnabledTraceSink({"a", "a"}),
               std::invalid_argument);
  obs::detail::EnabledTraceSink sink({"a", "b"});
  EXPECT_THROW(sink.record({std::int64_t{1}}), std::invalid_argument);
  EXPECT_EQ(sink.size(), 0u);
}

TEST(ObsTrace, RecordsTypedRows) {
  obs::detail::EnabledTraceSink sink({"iter", "norm", "tag"});
  sink.record({std::int64_t{1}, 0.5, std::string("warm")});
  sink.record({std::int64_t{2}, 0.25, std::string("steady")});
  ASSERT_EQ(sink.size(), 2u);
  const std::vector<double> norms = sink.column_as_doubles("norm");
  ASSERT_EQ(norms.size(), 2u);
  EXPECT_DOUBLE_EQ(norms[0], 0.5);
  EXPECT_DOUBLE_EQ(norms[1], 0.25);
  // Integer columns convert; string columns come back NaN.
  EXPECT_DOUBLE_EQ(sink.column_as_doubles("iter")[1], 2.0);
  EXPECT_TRUE(std::isnan(sink.column_as_doubles("tag")[0]));
  EXPECT_THROW((void)sink.column_as_doubles("nope"), std::out_of_range);
}

TEST(ObsTrace, CsvRoundTripWithQuoting) {
  obs::detail::EnabledTraceSink sink({"scheme", "value"});
  sink.record({std::string("NASH, eps=1e-4"), 0.0625});
  TempFile f("trace.csv");
  sink.write_csv(f.path());
  EXPECT_EQ(f.contents(),
            "scheme,value\n\"NASH, eps=1e-4\",0.0625\n");
}

TEST(ObsTrace, JsonlRoundTrip) {
  obs::detail::EnabledTraceSink sink({"iter", "norm", "note"});
  sink.record({std::int64_t{3}, 0.125, std::string("a\"b")});
  TempFile f("trace.jsonl");
  sink.write_jsonl(f.path());
  EXPECT_EQ(f.contents(),
            "{\"iter\":3,\"norm\":0.125,\"note\":\"a\\\"b\"}\n");
}

TEST(ObsTrace, DoublesSurviveRoundTrip) {
  // The CSV/JSON number formatting must be round-trippable, not pretty.
  const double v = 0.1 + 0.2;  // 0.30000000000000004
  obs::detail::EnabledTraceSink sink({"v"});
  sink.record({v});
  TempFile f("roundtrip.csv");
  sink.write_csv(f.path());
  std::ifstream in(f.path());
  std::string header, cell;
  std::getline(in, header);
  std::getline(in, cell);
  EXPECT_EQ(std::stod(cell), v);
}

TEST(ObsJson, EscapesControlCharacters) {
  EXPECT_EQ(obs::json_quote("a\nb\t\"\\"), "\"a\\nb\\t\\\"\\\\\"");
  EXPECT_EQ(obs::json_quote(std::string(1, '\x01')), "\"\\u0001\"");
  EXPECT_EQ(obs::json_number(std::numeric_limits<double>::infinity()),
            "null");
}

// --- the no-op twins (the disabled build's types) -----------------------

TEST(ObsDisabled, NullTypesAreEmptyNoOps) {
  // The disabled build swaps these in for the real types; they must have
  // empty layout and discard everything.
  static_assert(std::is_empty_v<obs::detail::NullCounter>);
  static_assert(std::is_empty_v<obs::detail::NullTimer>);
  obs::detail::NullCounter c;
  c.add(1000);
  EXPECT_EQ(c.value(), 0u);
  obs::detail::NullTimer t;
  t.add_seconds(5.0);
  t.add_batch(5.0, 5);
  EXPECT_EQ(t.count(), 0u);
  EXPECT_EQ(t.total_seconds(), 0.0);
  {
    obs::detail::NullScopedTimer scope(t);
    EXPECT_EQ(scope.elapsed_seconds(), 0.0);
  }
  EXPECT_EQ(t.count(), 0u);
}

TEST(ObsDisabled, NullRegistryAndSinkDiscardEverything) {
  obs::detail::NullRegistry reg;
  reg.counter("x").add(5);
  reg.timer("y").add_seconds(1.0);
  EXPECT_EQ(reg.size(), 0u);
  EXPECT_TRUE(reg.snapshot().empty());

  obs::detail::NullTraceSink sink({"a", "b"});
  sink.record({std::int64_t{1}, 2.0});
  EXPECT_TRUE(sink.empty());
  EXPECT_TRUE(sink.rows().empty());
  EXPECT_TRUE(sink.column_as_doubles("a").empty());
  // write_* must not create files.
  TempFile f("null_sink.csv");
  sink.write_csv(f.path());
  reg.write_csv(f.path());
  EXPECT_FALSE(std::filesystem::exists(f.path()));
}

// An instrumented call site, templated on the sink type the way the
// library's call sites are switched by NASHLB_OBS_ENABLED: with the null
// sink the same code must compile and record nothing.
template <typename Sink>
std::size_t instrumented_loop(Sink& sink) {
  std::size_t work = 0;
  for (int i = 0; i < 4; ++i) {
    work += static_cast<std::size_t>(i);
    sink.record({static_cast<std::int64_t>(i), static_cast<double>(i) * 0.5});
  }
  return work;
}

TEST(ObsDisabled, InstrumentedCallSiteCompilesAgainstBothTwins) {
  obs::detail::EnabledTraceSink enabled({"i", "v"});
  obs::detail::NullTraceSink null({"i", "v"});
  EXPECT_EQ(instrumented_loop(enabled), instrumented_loop(null));
  EXPECT_EQ(enabled.size(), 4u);
  EXPECT_EQ(null.size(), 0u);
}

// --- instrumentation points in the stack --------------------------------

TEST(ObsWiring, DynamicsEmitsOneRowPerRound) {
  const core::Instance inst = small_instance();
  obs::TraceSink sink(core::dynamics_trace_columns());
  core::DynamicsOptions opts;
  opts.tolerance = 1e-8;
  opts.trace = &sink;
  const core::DynamicsResult r = core::best_reply_dynamics(inst, opts);
  ASSERT_TRUE(r.converged);
  if constexpr (obs::kEnabled) {
    ASSERT_EQ(sink.size(), r.iterations);
    // The recorded norms are exactly the result's norm history...
    const std::vector<double> norms = sink.column_as_doubles("norm");
    for (std::size_t l = 0; l < r.iterations; ++l) {
      EXPECT_DOUBLE_EQ(norms[l], r.norm_history[l]);
    }
    // ...the certificates decay to equilibrium quality...
    EXPECT_LE(sink.column_as_doubles("best_reply_gap").back(), 1e-6);
    EXPECT_LE(sink.column_as_doubles("max_kkt_residual").back(), 1e-6);
    // ...cut indices are within [1, n], and wall time is nondecreasing.
    const std::vector<double> wall = sink.column_as_doubles("wall_seconds");
    for (std::size_t l = 0; l < r.iterations; ++l) {
      EXPECT_GE(sink.column_as_doubles("min_cut")[l], 1.0);
      EXPECT_LE(sink.column_as_doubles("max_cut")[l],
                static_cast<double>(inst.num_computers()));
      if (l > 0) {
        EXPECT_GE(wall[l], wall[l - 1]);
      }
    }
  } else {
    EXPECT_EQ(sink.size(), 0u);
  }
}

TEST(ObsWiring, RingProtocolEmitsOneRowPerRound) {
  const core::Instance inst = small_instance();
  obs::TraceSink sink(distributed::ring_trace_columns());
  distributed::RingOptions opts;
  opts.trace = &sink;
  const distributed::RingResult r = distributed::run_ring_protocol(inst, opts);
  ASSERT_TRUE(r.converged);
  if constexpr (obs::kEnabled) {
    ASSERT_EQ(sink.size(), r.rounds);
    EXPECT_DOUBLE_EQ(sink.column_as_doubles("norm").back(),
                     r.norm_history.back());
    // Messages accumulate monotonically; sim time advances.
    const std::vector<double> msgs = sink.column_as_doubles("messages");
    const std::vector<double> sim_t = sink.column_as_doubles("sim_time");
    for (std::size_t l = 1; l < sink.size(); ++l) {
      EXPECT_GE(msgs[l], msgs[l - 1]);
      EXPECT_GT(sim_t[l], sim_t[l - 1]);
    }
  } else {
    EXPECT_EQ(sink.size(), 0u);
  }
}

TEST(ObsWiring, DesKernelAndFacilityPublishCounters) {
  des::Simulator sim;
  des::Facility server(sim, "cpu0", 1);
  // Two back-to-back unit jobs: one served immediately, one queued.
  sim.schedule(0.0, [&](des::SimTime) {
    server.request(1.0, [](des::SimTime) {});
    server.request(1.0, [](des::SimTime) {});
  });
  sim.run();
  obs::Registry reg;
  sim.publish_metrics(reg);
  server.publish_metrics(reg, sim.now());
  if constexpr (obs::kEnabled) {
    EXPECT_EQ(reg.counter("des.events_executed").value(),
              sim.events_executed());
    EXPECT_GE(reg.counter("des.events_scheduled").value(),
              reg.counter("des.events_executed").value());
    EXPECT_EQ(reg.counter("cpu0.requests").value(), 2u);
    EXPECT_EQ(reg.counter("cpu0.completed").value(), 2u);
    // Two unit jobs back to back: 2 busy server-seconds over [0, 2].
    EXPECT_NEAR(reg.timer("cpu0.busy_time").total_seconds(), 2.0, 1e-12);
    // The queued job waited exactly one service time.
    EXPECT_NEAR(reg.timer("cpu0.waiting").total_seconds(), 1.0, 1e-12);
    EXPECT_EQ(reg.timer("cpu0.waiting").count(), 2u);
  } else {
    EXPECT_EQ(reg.size(), 0u);
  }
}

TEST(ObsWiring, ReplicationEmitsOneRowPerReplication) {
  const core::Instance inst = small_instance();
  const core::StrategyProfile profile =
      core::StrategyProfile::proportional(inst);
  simmodel::ReplicationConfig cfg;
  cfg.base.horizon = 20.0;
  cfg.base.warmup = 2.0;
  cfg.replications = 3;
  obs::TraceSink sink(simmodel::replication_trace_columns());
  cfg.trace = &sink;
  const simmodel::ReplicatedResult rep =
      simmodel::replicate(inst, profile, cfg);
  ASSERT_EQ(rep.wall_seconds.size(), 3u);
  for (double w : rep.wall_seconds) EXPECT_GT(w, 0.0);
  if constexpr (obs::kEnabled) {
    ASSERT_EQ(sink.size(), 3u);
    const std::vector<double> reps = sink.column_as_doubles("replication");
    for (std::size_t r = 0; r < 3; ++r) {
      EXPECT_DOUBLE_EQ(reps[r], static_cast<double>(r));
    }
    for (double jobs : sink.column_as_doubles("jobs_generated")) {
      EXPECT_GT(jobs, 0.0);
    }
  } else {
    EXPECT_EQ(sink.size(), 0u);
  }
}

}  // namespace
