// Tests of the flight-recorder event journal (obs/journal.hpp): schema
// registration and arity checks, ring overflow + drop accounting,
// deterministic shard merges, the JSON-lines and crash-dump exports, the
// Registry surfacing, the no-op/no-allocation contract of the disabled
// twin, and the contract-failure crash hook (death-tested under
// -DNASHLB_CHECK=ON).
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <new>
#include <sstream>
#include <stdexcept>
#include <type_traits>

#include "obs/journal.hpp"
#include "obs/metrics.hpp"
#include "util/contracts.hpp"

namespace {

using namespace nashlb;

// Counting global operator new/delete: malloc passthrough plus a bump of
// g_alloc_count, so tests can assert a code region allocates nothing.
// Link-wide for this binary; the counter is only read around the regions
// under test, so the rest of the suite is unaffected.
std::size_t g_alloc_count = 0;

void* count_alloc(std::size_t n) {
  ++g_alloc_count;
  if (void* p = std::malloc(n == 0 ? 1 : n)) return p;
  throw std::bad_alloc();
}

}  // namespace

void* operator new(std::size_t n) { return count_alloc(n); }
void* operator new[](std::size_t n) { return count_alloc(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

class TempFile {
 public:
  explicit TempFile(const std::string& name)
      : path_((std::filesystem::temp_directory_path() /
               ("nashlb_journal_test_" + name))
                  .string()) {}
  ~TempFile() {
    std::error_code ec;
    std::filesystem::remove(path_, ec);
  }
  [[nodiscard]] const std::string& path() const { return path_; }
  [[nodiscard]] std::string contents() const {
    std::ifstream in(path_);
    std::stringstream ss;
    ss << in.rdbuf();
    return ss.str();
  }

 private:
  std::string path_;
};

// --- schema registration ------------------------------------------------

TEST(Journal, RegisterIsIdempotentOnIdenticalSchema) {
  obs::detail::EnabledJournal j(8);
  const obs::EventId a = j.register_event("round", {"r", "norm"});
  const obs::EventId b = j.register_event("round", {"r", "norm"});
  EXPECT_EQ(a.index, b.index);
  EXPECT_EQ(j.num_events(), 1u);
  EXPECT_EQ(j.event_name(a), "round");
}

TEST(Journal, RegisterRejectsConflictsAndOversizedSchemas) {
  obs::detail::EnabledJournal j(8);
  (void)j.register_event("round", {"r", "norm"});
  EXPECT_THROW((void)j.register_event("round", {"r"}), std::invalid_argument);
  EXPECT_THROW((void)j.register_event("", {"r"}), std::invalid_argument);
  std::vector<std::string> too_many(obs::kJournalMaxFields + 1, "f");
  for (std::size_t i = 0; i < too_many.size(); ++i) {
    too_many[i] += std::to_string(i);
  }
  EXPECT_THROW((void)j.register_event("big", too_many),
               std::invalid_argument);
}

TEST(Journal, EmitChecksArityLikeTraceSink) {
  obs::detail::EnabledJournal j(8);
  const obs::EventId ev = j.register_event("round", {"r", "norm"});
  j.emit(ev, {1.0, 0.5});
  EXPECT_THROW(j.emit(ev, {1.0}), std::invalid_argument);
  EXPECT_THROW(j.emit(obs::EventId{7}, {1.0}), std::invalid_argument);
  EXPECT_EQ(j.emitted(), 1u);
}

// --- ring semantics -----------------------------------------------------

TEST(Journal, RingOverflowKeepsNewestAndCountsDrops) {
  obs::detail::EnabledJournal j(4);
  const obs::EventId ev = j.register_event("tick", {"k"});
  for (int k = 0; k < 10; ++k) j.emit(ev, {static_cast<double>(k)});
  EXPECT_EQ(j.emitted(), 10u);
  EXPECT_EQ(j.dropped(), 6u);
  EXPECT_EQ(j.size(), 4u);
  std::vector<obs::detail::EnabledJournal::Slot> window;
  j.snapshot(window);
  ASSERT_EQ(window.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(window[i].seq, 6u + i);                 // oldest first
    EXPECT_EQ(window[i].values[0], 6.0 + static_cast<double>(i));
  }
}

TEST(Journal, EmitIsAllocationFreeAfterInit) {
  obs::detail::EnabledJournal j(64);
  const obs::EventId ev =
      j.register_event("tick", {"a", "b", "c", "d", "e", "f", "g", "h"});
  j.emit(ev, {1, 2, 3, 4, 5, 6, 7, 8});  // warm-up before the snapshot
  const std::size_t before = g_alloc_count;
  for (int k = 0; k < 1000; ++k) {
    j.emit(ev, {1.0 * k, 2, 3, 4, 5, 6, 7, 8});  // wraps the ring too
  }
  EXPECT_EQ(g_alloc_count, before);
}

TEST(Journal, ClearDropsEventsButKeepsSchemas) {
  obs::detail::EnabledJournal j(4);
  const obs::EventId ev = j.register_event("tick", {"k"});
  j.emit(ev, {1.0});
  j.clear();
  EXPECT_EQ(j.size(), 0u);
  EXPECT_EQ(j.emitted(), 0u);
  EXPECT_EQ(j.num_events(), 1u);
  j.emit(ev, {2.0});
  EXPECT_EQ(j.size(), 1u);
}

// --- shard merge --------------------------------------------------------

TEST(Journal, MergeAppendsShardsInCallOrder) {
  obs::detail::EnabledJournal owner(16);
  const obs::EventId ev = owner.register_event("tick", {"k"});
  obs::detail::EnabledJournal shard_a = owner;  // clones registrations
  obs::detail::EnabledJournal shard_b = owner;
  shard_a.emit(ev, {1.0});
  shard_a.emit(ev, {2.0});
  shard_b.emit(ev, {3.0});
  owner.merge(shard_a);
  owner.merge(shard_b);
  EXPECT_EQ(owner.emitted(), 3u);
  EXPECT_EQ(owner.dropped(), 0u);
  std::vector<obs::detail::EnabledJournal::Slot> window;
  owner.snapshot(window);
  ASSERT_EQ(window.size(), 3u);
  EXPECT_EQ(window[0].values[0], 1.0);
  EXPECT_EQ(window[1].values[0], 2.0);
  EXPECT_EQ(window[2].values[0], 3.0);
  for (std::size_t i = 0; i < window.size(); ++i) {
    EXPECT_EQ(window[i].seq, i);  // renumbered into the owner's sequence
  }
  static_assert(noexcept(owner.merge(shard_a)),
                "shard merges run inside pool workers");
}

TEST(Journal, MergeDiscardsForeignEventsAndKeepsAccounting) {
  obs::detail::EnabledJournal owner(16);
  (void)owner.register_event("tick", {"k"});
  obs::detail::EnabledJournal foreign(16);
  (void)foreign.register_event("tick", {"k"});
  const obs::EventId other = foreign.register_event("other", {"x", "y"});
  foreign.emit(other, {1.0, 2.0});  // schema unknown to `owner`
  owner.merge(foreign);
  EXPECT_EQ(owner.size(), 0u);
  EXPECT_EQ(owner.dropped(), 1u);
  EXPECT_EQ(owner.emitted(), owner.dropped() + owner.size());
}

// --- exports ------------------------------------------------------------

TEST(Journal, WriteJsonlDumpsRetainedWindow) {
  obs::detail::EnabledJournal j(8);
  const obs::EventId ev = j.register_event("dynamics.round", {"round", "norm"});
  j.emit(ev, {1.0, 0.25});
  j.emit(ev, {2.0, 0.125});
  TempFile file("journal.jsonl");
  j.write_jsonl(file.path());
  const std::string text = file.contents();
  EXPECT_NE(text.find("{\"seq\":0,\"event\":\"dynamics.round\","
                      "\"round\":1,\"norm\":0.25}"),
            std::string::npos);
  EXPECT_NE(text.find("\"round\":2,\"norm\":0.125"), std::string::npos);
}

TEST(Journal, DumpTailPrintsLastEventsOldestFirst) {
  obs::detail::EnabledJournal j(8);
  const obs::EventId ev = j.register_event("tick", {"k"});
  for (int k = 0; k < 5; ++k) j.emit(ev, {static_cast<double>(k)});
  TempFile file("journal_tail.txt");
  std::FILE* out = std::fopen(file.path().c_str(), "w");
  ASSERT_NE(out, nullptr);
  j.dump_tail(out, 2);
  std::fclose(out);
  const std::string text = file.contents();
  EXPECT_EQ(text.find("k=2"), std::string::npos);  // only the last two
  EXPECT_LT(text.find("[3] tick: k=3"), text.find("[4] tick: k=4"));
}

TEST(Journal, PublishMetricsSurfacesDropAccounting) {
  obs::detail::EnabledJournal j(2);
  const obs::EventId ev = j.register_event("tick", {"k"});
  for (int k = 0; k < 5; ++k) j.emit(ev, {static_cast<double>(k)});
  obs::detail::EnabledRegistry registry;
  j.publish_metrics(registry);
  EXPECT_EQ(registry.counter("journal.emitted").value(), 5u);
  EXPECT_EQ(registry.counter("journal.dropped").value(), 3u);
  EXPECT_EQ(registry.counter("journal.retained").value(), 2u);
}

// --- the no-op twin -----------------------------------------------------

TEST(JournalNull, TwinIsEmptyAndStateless) {
  static_assert(std::is_empty_v<obs::detail::NullJournal>,
                "the disabled journal must carry no state");
  obs::detail::NullJournal j(128);
  const obs::EventId ev = j.register_event("tick", {"k"});
  j.emit(ev, {1.0});
  EXPECT_EQ(j.size(), 0u);
  EXPECT_EQ(j.emitted(), 0u);
  EXPECT_EQ(j.num_events(), 0u);
  EXPECT_TRUE(j.event_name(ev).empty());
  j.merge(obs::detail::NullJournal{});
  obs::detail::NullRegistry registry;
  j.publish_metrics(registry);
}

TEST(JournalNull, TwinHasZeroSideEffectsAndZeroAllocations) {
  TempFile file("null_journal.jsonl");
  obs::detail::NullJournal j(128);
  // Registration happens outside the measured window: building the
  // schema argument ({"k"} -> vector<string>) allocates at the call
  // site no matter which twin receives it.
  const obs::EventId ev = j.register_event("tick", {"k"});
  const std::size_t before = g_alloc_count;
  for (int k = 0; k < 100; ++k) j.emit(ev, {static_cast<double>(k)});
  j.write_jsonl(file.path());
  j.dump_tail(stderr, 10);
  j.install_crash_handler();
  obs::detail::NullJournal::uninstall_crash_handler();
  EXPECT_EQ(g_alloc_count, before);
  EXPECT_FALSE(std::filesystem::exists(file.path()));  // no file created
}

// --- the crash hook -----------------------------------------------------

TEST(Journal, InstallAndUninstallManageTheContractHook) {
  ASSERT_EQ(util::contract_failure_hook(), nullptr);
  {
    obs::detail::EnabledJournal j(8);
    j.install_crash_handler();
    EXPECT_NE(util::contract_failure_hook(), nullptr);
  }
  // The destructor uninstalls the journal it pointed at.
  EXPECT_EQ(util::contract_failure_hook(), nullptr);
}

#if NASHLB_CHECK_ENABLED
#if defined(GTEST_HAS_DEATH_TEST)
TEST(JournalDeathTest, ContractFailureDumpsTheFlightRecorder) {
  // A contract violation with an installed journal must print the
  // violation *and* the journal tail before aborting.
  EXPECT_DEATH(
      {
        obs::detail::EnabledJournal j(8);
        const obs::EventId ev =
            j.register_event("dynamics.round", {"round", "norm"});
        j.emit(ev, {1.0, 0.5});
        j.emit(ev, {2.0, 0.25});
        j.install_crash_handler();
        NASHLB_EXPECT(false, "deliberate breach with %d events",
                      static_cast<int>(j.size()));
      },
      "NASHLB_EXPECT violated.*deliberate breach"
      "(.|\n)*flight recorder tail"
      "(.|\n)*dynamics\\.round: round=2 norm=0\\.25");
}
#endif  // GTEST_HAS_DEATH_TEST
#endif  // NASHLB_CHECK_ENABLED

}  // namespace
