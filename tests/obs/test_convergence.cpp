// Tests of the convergence telemetry layer: the obs::ConvergenceProbe
// store/export/summary semantics, its no-op twin, the
// core::ConvergenceProbeDriver wiring through all three dynamics orders,
// class mode and the ring protocol, the journal events those solvers
// emit, and the obs::RunManifest provenance record.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <type_traits>

#include "core/dynamics.hpp"
#include "core/user_classes.hpp"
#include "distributed/ring_protocol.hpp"
#include "obs/convergence.hpp"
#include "obs/journal.hpp"
#include "obs/manifest.hpp"
#include "util/contracts.hpp"
#include "workload/configs.hpp"

namespace {

using namespace nashlb;

class TempFile {
 public:
  explicit TempFile(const std::string& name)
      : path_((std::filesystem::temp_directory_path() /
               ("nashlb_convergence_test_" + name))
                  .string()) {}
  ~TempFile() {
    std::error_code ec;
    std::filesystem::remove(path_, ec);
  }
  [[nodiscard]] const std::string& path() const { return path_; }
  [[nodiscard]] std::string contents() const {
    std::ifstream in(path_);
    std::stringstream ss;
    ss << in.rdbuf();
    return ss.str();
  }

 private:
  std::string path_;
};

core::Instance small_instance() {
  core::Instance inst;
  inst.mu = {100.0, 50.0, 10.0};
  inst.phi = {40.0, 20.0};
  return inst;
}

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

// --- probe storage + summaries ------------------------------------------

TEST(ConvergenceProbe, SchemaHasSevenColumns) {
  const std::vector<std::string> cols = obs::convergence_trace_columns();
  ASSERT_EQ(cols.size(), 7u);
  EXPECT_EQ(cols.front(), "round");
  EXPECT_EQ(cols.back(), "util_spread");
}

TEST(ConvergenceProbe, RecordsRowsInOrder) {
  obs::detail::EnabledConvergenceProbe probe;
  probe.record_round(1, 0.5, 0.1, 2.0, 0.3, 2, 0.4);
  probe.record_round(2, 0.25, 0.05, 1.9, 0.29, 1, 0.35);
  ASSERT_EQ(probe.size(), 2u);
  EXPECT_EQ(probe.rows()[0].round, 1);
  EXPECT_EQ(probe.rows()[1].norm, 0.25);
  EXPECT_EQ(probe.rows()[1].active_set_churn, 1);
  probe.clear();
  EXPECT_TRUE(probe.empty());
}

TEST(ConvergenceProbe, RoundsToTolFindsFirstQualifyingRound) {
  obs::detail::EnabledConvergenceProbe probe;
  probe.record_round(1, 0.5, kNaN, 0, 0, 0, 0);
  probe.record_round(2, 0.05, kNaN, 0, 0, 0, 0);
  probe.record_round(3, 0.01, kNaN, 0, 0, 0, 0);
  EXPECT_EQ(probe.rounds_to_tol(0.1), 2);
  EXPECT_EQ(probe.rounds_to_tol(1.0), 1);
  EXPECT_EQ(probe.rounds_to_tol(1e-9), 0);  // never reached
}

TEST(ConvergenceProbe, FinalEpsNashSkipsNonFiniteGaps) {
  obs::detail::EnabledConvergenceProbe probe;
  probe.record_round(1, 0.5, 0.125, 0, 0, 0, 0);
  probe.record_round(2, 0.25, kNaN, 0, 0, 0, 0);  // strided-off round
  EXPECT_EQ(probe.final_eps_nash(), 0.125);
  obs::detail::EnabledConvergenceProbe empty;
  EXPECT_TRUE(std::isnan(empty.final_eps_nash()));
}

TEST(ConvergenceProbe, CsvAndJsonlExports) {
  obs::detail::EnabledConvergenceProbe probe;
  probe.record_round(1, 0.5, 0.1, 2.0, 0.3, 2, 0.4);
  TempFile csv("probe.csv");
  TempFile jsonl("probe.jsonl");
  probe.write_csv(csv.path());
  probe.write_jsonl(jsonl.path());
  EXPECT_NE(csv.contents().find(
                "round,norm,eps_nash_gap,potential,overall_cost,"
                "active_set_churn,util_spread"),
            std::string::npos);
  EXPECT_NE(csv.contents().find("1,0.5,0.1,2,0.3,2,0.4"), std::string::npos);
  EXPECT_NE(jsonl.contents().find("{\"round\":1,\"norm\":0.5,"
                                  "\"eps_nash_gap\":0.1,\"potential\":2,"
                                  "\"overall_cost\":0.3,"
                                  "\"active_set_churn\":2,"
                                  "\"util_spread\":0.4}"),
            std::string::npos);
}

TEST(ConvergenceProbeNull, TwinIsEmptyStatelessAndWritesNothing) {
  static_assert(std::is_empty_v<obs::detail::NullConvergenceProbe>,
                "the disabled probe must carry no state");
  obs::detail::NullConvergenceProbe probe;
  probe.record_round(1, 0.5, 0.1, 2.0, 0.3, 2, 0.4);
  EXPECT_EQ(probe.size(), 0u);
  EXPECT_TRUE(probe.empty());
  EXPECT_EQ(probe.rounds_to_tol(1.0), 0);
  EXPECT_EQ(probe.final_eps_nash(), 0.0);
  TempFile csv("null_probe.csv");
  probe.write_csv(csv.path());
  probe.write_jsonl(csv.path());
  EXPECT_FALSE(std::filesystem::exists(csv.path()));  // no file created
}

// --- dynamics wiring ----------------------------------------------------

struct ProbeRun {
  obs::ConvergenceProbe probe;
  core::DynamicsResult result;
};

ProbeRun run_with_probe(const core::Instance& inst,
                        core::DynamicsOptions opts) {
  obs::ConvergenceProbe probe;
  opts.probe = &probe;
  core::DynamicsResult res = core::best_reply_dynamics(inst, opts);
  return {std::move(probe), std::move(res)};
}

TEST(ConvergenceWiring, AllThreeOrdersRecordOneRowPerRound) {
  const core::Instance inst = small_instance();
  for (const core::UpdateOrder order :
       {core::UpdateOrder::RoundRobin, core::UpdateOrder::RandomOrder,
        core::UpdateOrder::Simultaneous}) {
    core::DynamicsOptions opts;
    opts.order = order;
    const ProbeRun run = run_with_probe(inst, opts);
    const obs::ConvergenceProbe& probe = run.probe;
    const core::DynamicsResult& res = run.result;
    if constexpr (obs::kEnabled) {
      ASSERT_EQ(probe.size(), res.iterations);
      for (std::size_t k = 0; k < probe.size(); ++k) {
        const auto& row = probe.rows()[k];
        EXPECT_EQ(row.round, static_cast<std::int64_t>(k + 1));
        EXPECT_EQ(row.norm, res.norm_history[k]);  // bitwise: same double
        EXPECT_GE(row.active_set_churn, 0);
        EXPECT_LE(row.active_set_churn,
                  static_cast<std::int64_t>(inst.num_users()));
        EXPECT_GE(row.util_spread, 0.0);
        EXPECT_TRUE(std::isfinite(row.overall_cost));
      }
      if (res.converged) {
        EXPECT_EQ(probe.rounds_to_tol(opts.tolerance),
                  static_cast<std::int64_t>(res.iterations));
        const double gap = probe.final_eps_nash();
        EXPECT_TRUE(std::isfinite(gap));
        EXPECT_GE(gap, 0.0);
      }
    } else {
      EXPECT_EQ(probe.size(), 0u);
    }
  }
}

TEST(ConvergenceWiring, CertificateStrideGatesTheGapColumn) {
  const core::Instance inst = small_instance();
  core::DynamicsOptions opts;
  opts.certificate_stride = 2;
  const obs::ConvergenceProbe probe = run_with_probe(inst, opts).probe;
  if constexpr (obs::kEnabled) {
    ASSERT_GE(probe.size(), 2u);
    EXPECT_TRUE(std::isfinite(probe.rows()[0].eps_nash_gap));  // round 1
    EXPECT_TRUE(std::isnan(probe.rows()[1].eps_nash_gap));     // round 2
  }
}

TEST(ConvergenceWiring, SingletonClassRunMatchesPerUserRowForRow) {
  const core::Instance inst = small_instance();
  core::DynamicsOptions opts;
  const obs::ConvergenceProbe per_user = run_with_probe(inst, opts).probe;
  const core::UserClassPartition part =
      core::UserClassPartition::singletons(inst);
  opts.classes = &part;
  const obs::ConvergenceProbe classed = run_with_probe(inst, opts).probe;
  if constexpr (obs::kEnabled) {
    ASSERT_EQ(classed.size(), per_user.size());
    for (std::size_t k = 0; k < classed.size(); ++k) {
      const auto& a = per_user.rows()[k];
      const auto& b = classed.rows()[k];
      EXPECT_EQ(a.norm, b.norm);
      EXPECT_EQ(a.eps_nash_gap, b.eps_nash_gap);
      EXPECT_EQ(a.potential, b.potential);
      EXPECT_EQ(a.overall_cost, b.overall_cost);
      EXPECT_EQ(a.active_set_churn, b.active_set_churn);
      EXPECT_EQ(a.util_spread, b.util_spread);
    }
  }
}

TEST(ConvergenceWiring, DivergedJacobiRecordsTheBlowUpRow) {
  // Table 1 at 60% utilization: the simultaneous (Jacobi) update is the
  // documented divergence case (bench P5, ablation A3). The probe must
  // record the blow-up round with non-finite certificates instead of
  // aborting.
  const core::Instance inst = workload::table1_instance(0.6);
  core::DynamicsOptions opts;
  opts.order = core::UpdateOrder::Simultaneous;
  const ProbeRun run = run_with_probe(inst, opts);
  const obs::ConvergenceProbe& probe = run.probe;
  const core::DynamicsResult& res = run.result;
  if constexpr (obs::kEnabled) {
    ASSERT_TRUE(res.diverged);
    ASSERT_EQ(probe.size(), res.iterations);
    const auto& last = probe.rows().back();
    EXPECT_TRUE(std::isnan(last.potential));  // overloaded computer
    EXPECT_FALSE(std::isfinite(last.overall_cost));
  }
}

TEST(ConvergenceWiring, DynamicsJournalEventsCountRoundsPlusStop) {
  const core::Instance inst = small_instance();
  obs::Journal journal(256);
  core::DynamicsOptions opts;
  opts.journal = &journal;
  const core::DynamicsResult res = core::best_reply_dynamics(inst, opts);
  if constexpr (obs::kEnabled) {
    EXPECT_EQ(journal.emitted(), res.iterations + 1);  // rounds + stop
    EXPECT_EQ(journal.num_events(), 2u);
    std::vector<obs::detail::EnabledJournal::Slot> window;
    journal.snapshot(window);
    ASSERT_FALSE(window.empty());
    EXPECT_EQ(journal.event_name(obs::EventId{window.back().event}),
              "dynamics.stop");
    EXPECT_EQ(window.back().values[2], 1.0);  // converged flag
  } else {
    EXPECT_EQ(journal.emitted(), 0u);
  }
}

// --- ring wiring --------------------------------------------------------

TEST(ConvergenceWiring, RingProtocolRecordsOneRowPerRoundClose) {
  const core::Instance inst = small_instance();
  obs::ConvergenceProbe probe;
  obs::Journal journal(256);
  distributed::RingOptions opts;
  opts.probe = &probe;
  opts.journal = &journal;
  const distributed::RingResult res =
      distributed::run_ring_protocol(inst, opts);
  if constexpr (obs::kEnabled) {
    ASSERT_TRUE(res.converged);
    ASSERT_EQ(probe.size(), res.rounds);
    for (std::size_t k = 0; k < probe.size(); ++k) {
      EXPECT_EQ(probe.rows()[k].norm, res.norm_history[k]);
      EXPECT_TRUE(std::isfinite(probe.rows()[k].eps_nash_gap));
    }
    EXPECT_EQ(probe.rounds_to_tol(opts.tolerance),
              static_cast<std::int64_t>(res.rounds));
    EXPECT_EQ(journal.emitted(), res.rounds);
  } else {
    EXPECT_EQ(probe.size(), 0u);
  }
}

// --- run manifest -------------------------------------------------------

TEST(RunManifest, CollectRecordsBuildConfiguration) {
  const obs::RunManifest m = obs::RunManifest::collect();
  EXPECT_FALSE(m.git_sha.empty());
  EXPECT_EQ(m.obs_enabled, obs::kEnabled);
  EXPECT_EQ(m.check_enabled, util::kCheckEnabled);
  EXPECT_GE(m.threads, 1u);
}

TEST(RunManifest, SetOverwritesByKeyAndHashTracksContent) {
  obs::RunManifest m = obs::RunManifest::collect();
  m.set("seed", std::int64_t{42});
  const std::uint64_t h1 = m.config_hash();
  m.set("seed", std::int64_t{43});
  const std::uint64_t h2 = m.config_hash();
  EXPECT_NE(h1, h2);
  m.set("seed", std::int64_t{42});
  EXPECT_EQ(m.config_hash(), h1);
  ASSERT_EQ(m.extras.size(), 1u);  // overwritten, not appended
}

TEST(RunManifest, JsonRoundTripContainsEveryField) {
  obs::RunManifest m = obs::RunManifest::collect();
  m.set("utilization", 0.6);
  const std::string json = m.to_json();
  for (const char* key :
       {"\"git_sha\":", "\"obs\":", "\"check\":", "\"sanitize\":",
        "\"werror\":", "\"threads\":", "\"config_hash\":",
        "\"extras\":{\"utilization\":\"0.6\"}"}) {
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }
  TempFile file("manifest.json");
  m.write_json(file.path());
  EXPECT_EQ(file.contents(), json + "\n");
}

}  // namespace
