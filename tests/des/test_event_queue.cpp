#include "des/event_queue.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace nashlb::des {
namespace {

TEST(EventQueue, StartsEmpty) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
  EXPECT_THROW(q.pop(), std::logic_error);
  EXPECT_THROW(static_cast<void>(q.next_time()), std::logic_error);
}

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  std::vector<double> fired;
  q.push(3.0, [&](SimTime t) { fired.push_back(t); });
  q.push(1.0, [&](SimTime t) { fired.push_back(t); });
  q.push(2.0, [&](SimTime t) { fired.push_back(t); });
  while (!q.empty()) {
    auto rec = q.pop();
    rec->fn(rec->time);
  }
  EXPECT_EQ(fired, (std::vector<double>{1.0, 2.0, 3.0}));
}

TEST(EventQueue, SimultaneousEventsAreFifo) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.push(5.0, [&order, i](SimTime) { order.push_back(i); });
  }
  while (!q.empty()) {
    auto rec = q.pop();
    rec->fn(rec->time);
  }
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(order[i], static_cast<int>(i));
  }
}

TEST(EventQueue, NextTimePeeksWithoutPopping) {
  EventQueue q;
  q.push(4.0, [](SimTime) {});
  q.push(2.0, [](SimTime) {});
  EXPECT_DOUBLE_EQ(q.next_time(), 2.0);
  EXPECT_EQ(q.size(), 2u);
}

TEST(EventQueue, CancelPreventsDelivery) {
  EventQueue q;
  bool fired = false;
  EventHandle h = q.push(1.0, [&](SimTime) { fired = true; });
  EXPECT_TRUE(h.pending());
  EXPECT_TRUE(h.cancel());
  EXPECT_FALSE(h.pending());
  EXPECT_TRUE(q.empty());  // live count reflects the cancellation
  EXPECT_FALSE(h.cancel());  // double cancel is a no-op
  EXPECT_FALSE(fired);
}

TEST(EventQueue, CancelledEventSkippedOnPop) {
  EventQueue q;
  std::vector<int> fired;
  EventHandle h = q.push(1.0, [&](SimTime) { fired.push_back(1); });
  q.push(2.0, [&](SimTime) { fired.push_back(2); });
  h.cancel();
  EXPECT_EQ(q.size(), 1u);
  EXPECT_DOUBLE_EQ(q.next_time(), 2.0);
  auto rec = q.pop();
  rec->fn(rec->time);
  EXPECT_EQ(fired, std::vector<int>{2});
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, HandleExpiresAfterPop) {
  EventQueue q;
  EventHandle h = q.push(1.0, [](SimTime) {});
  auto rec = q.pop();
  (void)rec;
  EXPECT_FALSE(h.pending());
  EXPECT_FALSE(h.cancel());  // already fired
}

TEST(EventQueue, ClearDropsEverything) {
  EventQueue q;
  EventHandle h = q.push(1.0, [](SimTime) {});
  q.push(2.0, [](SimTime) {});
  q.clear();
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(h.pending());
}

TEST(EventQueue, DefaultHandleIsInert) {
  EventHandle h;
  EXPECT_FALSE(h.pending());
  EXPECT_FALSE(h.cancel());
}

TEST(EventQueue, HeapStressRandomOrder) {
  EventQueue q;
  // Insert times in a scrambled deterministic order; verify sorted pops.
  std::uint64_t x = 88172645463325252ULL;
  std::vector<double> times;
  for (int i = 0; i < 2000; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    const double t = static_cast<double>(x % 100000) / 100.0;
    times.push_back(t);
    q.push(t, [](SimTime) {});
  }
  double prev = -1.0;
  while (!q.empty()) {
    auto rec = q.pop();
    EXPECT_GE(rec->time, prev);
    prev = rec->time;
  }
}

}  // namespace
}  // namespace nashlb::des
