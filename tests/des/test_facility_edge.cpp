// Edge behaviours of the facility: multi-server priority and preemption
// interactions, zero-remaining resumes, and dispatch-after-completion
// ordering — the corners a queueing substrate has to get right.
#include <gtest/gtest.h>

#include <functional>
#include <utility>
#include <vector>

#include "des/facility.hpp"

namespace nashlb::des {
namespace {

TEST(FacilityEdge, PreemptionPicksTheLowestPriorityVictim) {
  Simulator sim;
  Facility f(sim, "cpu", 2, PreemptPolicy::Resume);
  std::vector<char> done;
  f.request(10.0, 1, [&](SimTime) { done.push_back('a'); });  // prio 1
  f.request(10.0, 3, [&](SimTime) { done.push_back('b'); });  // prio 3
  // Arrives at t=0 logically after both servers busy; preempts 'a'
  // (the lower-priority victim), never 'b'.
  f.request(2.0, 5, [&](SimTime) { done.push_back('c'); });
  sim.run();
  ASSERT_EQ(done.size(), 3u);
  EXPECT_EQ(done[0], 'c');  // finishes at t=2
  EXPECT_EQ(done[1], 'b');  // undisturbed, t=10
  EXPECT_EQ(done[2], 'a');  // resumed at t=2 with 10 left, t=12
}

TEST(FacilityEdge, PreemptedJobResumesAheadOfLaterArrivalsOfItsClass) {
  Simulator sim;
  Facility f(sim, "cpu", 1, PreemptPolicy::Resume);
  std::vector<char> done;
  f.request(4.0, 0, [&](SimTime) { done.push_back('a'); });  // in service
  sim.schedule(1.0, [&](SimTime) {
    f.request(1.0, 2, [&](SimTime) { done.push_back('h'); });  // preempts
  });
  sim.schedule(1.5, [&](SimTime) {
    f.request(1.0, 0, [&](SimTime) { done.push_back('b'); });  // same class
  });
  sim.run();
  // 'h' runs 1..2; 'a' (3 left, original seq) resumes 2..5; 'b' 5..6.
  EXPECT_EQ(done, (std::vector<char>{'h', 'a', 'b'}));
}

TEST(FacilityEdge, PreemptionAccountingInStats) {
  Simulator sim;
  Facility f(sim, "cpu", 1, PreemptPolicy::Resume);
  f.request(5.0, 0, [](SimTime) {});
  sim.schedule(1.0, [&](SimTime) { f.request(1.0, 9, [](SimTime) {}); });
  sim.run();
  EXPECT_EQ(f.preemptions(), 1u);
  EXPECT_EQ(f.completed(), 2u);
  EXPECT_EQ(f.busy_servers(), 0u);
}

TEST(FacilityEdge, ZeroRemainingAfterPreemptionCompletesImmediately) {
  Simulator sim;
  Facility f(sim, "cpu", 1, PreemptPolicy::Resume);
  std::vector<std::pair<char, double>> done;
  f.request(2.0, 0, [&](SimTime t) { done.push_back({'a', t}); });
  // Preempt exactly at the victim's completion instant boundary: the
  // victim has ~0 remaining and must still complete exactly once.
  sim.schedule(2.0 - 1e-12, [&](SimTime) {
    f.request(1.0, 5, [&](SimTime t) { done.push_back({'h', t}); });
  });
  sim.run();
  ASSERT_EQ(done.size(), 2u);
  EXPECT_EQ(f.completed(), 2u);
}

TEST(FacilityEdge, MultiServerFillsIdleBeforePreempting) {
  Simulator sim;
  Facility f(sim, "pool", 2, PreemptPolicy::Resume);
  f.request(10.0, 0, [](SimTime) {});
  // Second server idle: the high-priority arrival must take it rather
  // than displace the running job.
  f.request(1.0, 9, [](SimTime) {});
  sim.run_until(2.0);
  EXPECT_EQ(f.preemptions(), 0u);
  EXPECT_EQ(f.completed(), 1u);
}

TEST(FacilityEdge, CompletionCallbackCanResubmitSafely) {
  Simulator sim;
  Facility f(sim, "cpu");
  int generations = 0;
  std::function<void(SimTime)> resubmit = [&](SimTime) {
    if (++generations < 5) {
      f.request(1.0, resubmit);
    }
  };
  f.request(1.0, resubmit);
  sim.run();
  EXPECT_EQ(generations, 5);
  EXPECT_DOUBLE_EQ(sim.now(), 5.0);
}

TEST(FacilityEdge, WaitingTimeCountsOnlyFirstServiceStart) {
  Simulator sim;
  Facility f(sim, "cpu", 1, PreemptPolicy::Resume);
  f.request(4.0, 0, [](SimTime) {});                            // waits 0
  sim.schedule(1.0, [&](SimTime) { f.request(1.0, 9, [](SimTime) {}); });
  sim.run();
  // The preempted job's wait is counted once (0 at t=0), not again on
  // resume; the preemptor waited 0 as well.
  EXPECT_EQ(f.waiting_times().count(), 2u);
  EXPECT_DOUBLE_EQ(f.waiting_times().max(), 0.0);
}

}  // namespace
}  // namespace nashlb::des
