#include "des/facility.hpp"

#include <gtest/gtest.h>

#include <functional>
#include <stdexcept>
#include <utility>
#include <vector>

#include "stats/distributions.hpp"
#include "stats/rng.hpp"

namespace nashlb::des {
namespace {

TEST(Facility, RejectsInvalidConstructionAndRequests) {
  Simulator sim;
  EXPECT_THROW(Facility(sim, "f", 0), std::invalid_argument);
  Facility f(sim, "f");
  EXPECT_THROW(f.request(0.0, [](SimTime) {}), std::invalid_argument);
  EXPECT_THROW(f.request(-1.0, [](SimTime) {}), std::invalid_argument);
}

TEST(Facility, SingleJobCompletesAfterServiceTime) {
  Simulator sim;
  Facility f(sim, "cpu");
  double done_at = -1.0;
  f.request(2.5, [&](SimTime t) { done_at = t; });
  sim.run();
  EXPECT_DOUBLE_EQ(done_at, 2.5);
  EXPECT_EQ(f.completed(), 1u);
}

TEST(Facility, FcfsOrderPreserved) {
  Simulator sim;
  Facility f(sim, "cpu");
  std::vector<int> done;
  for (int i = 0; i < 4; ++i) {
    f.request(1.0, [&done, i](SimTime) { done.push_back(i); });
  }
  sim.run();
  EXPECT_EQ(done, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.now(), 4.0);
}

TEST(Facility, QueueAndBusyCounts) {
  Simulator sim;
  Facility f(sim, "cpu");
  f.request(1.0, [](SimTime) {});
  f.request(1.0, [](SimTime) {});
  f.request(1.0, [](SimTime) {});
  EXPECT_EQ(f.busy_servers(), 1u);
  EXPECT_EQ(f.queue_length(), 2u);
  sim.run();
  EXPECT_EQ(f.busy_servers(), 0u);
  EXPECT_EQ(f.queue_length(), 0u);
  EXPECT_EQ(f.completed(), 3u);
}

TEST(Facility, HigherPriorityJumpsQueue) {
  Simulator sim;
  Facility f(sim, "cpu");
  std::vector<char> done;
  f.request(1.0, 0, [&](SimTime) { done.push_back('a'); });  // in service
  f.request(1.0, 0, [&](SimTime) { done.push_back('b'); });
  f.request(1.0, 5, [&](SimTime) { done.push_back('c'); });  // jumps b
  sim.run();
  EXPECT_EQ(done, (std::vector<char>{'a', 'c', 'b'}));
}

TEST(Facility, NoPreemptionUnderNonePolicy) {
  Simulator sim;
  Facility f(sim, "cpu", 1, PreemptPolicy::None);
  std::vector<char> done;
  f.request(10.0, 0, [&](SimTime) { done.push_back('l'); });
  sim.schedule(1.0, [&](SimTime) {
    f.request(1.0, 99, [&](SimTime) { done.push_back('h'); });
  });
  sim.run();
  // Low-priority job runs to completion (the paper's model).
  EXPECT_EQ(done, (std::vector<char>{'l', 'h'}));
  EXPECT_EQ(f.preemptions(), 0u);
}

TEST(Facility, PreemptiveResumeDisplacesAndResumes) {
  Simulator sim;
  Facility f(sim, "cpu", 1, PreemptPolicy::Resume);
  std::vector<std::pair<char, double>> done;
  f.request(10.0, 0, [&](SimTime t) { done.push_back({'l', t}); });
  sim.schedule(4.0, [&](SimTime) {
    f.request(2.0, 1, [&](SimTime t) { done.push_back({'h', t}); });
  });
  sim.run();
  ASSERT_EQ(done.size(), 2u);
  // High finishes at 6; low resumes with 6 remaining, finishes at 12.
  EXPECT_EQ(done[0].first, 'h');
  EXPECT_DOUBLE_EQ(done[0].second, 6.0);
  EXPECT_EQ(done[1].first, 'l');
  EXPECT_DOUBLE_EQ(done[1].second, 12.0);
  EXPECT_EQ(f.preemptions(), 1u);
}

TEST(Facility, EqualPriorityNeverPreempts) {
  Simulator sim;
  Facility f(sim, "cpu", 1, PreemptPolicy::Resume);
  std::vector<char> done;
  f.request(5.0, 3, [&](SimTime) { done.push_back('a'); });
  sim.schedule(1.0, [&](SimTime) {
    f.request(1.0, 3, [&](SimTime) { done.push_back('b'); });
  });
  sim.run();
  EXPECT_EQ(done, (std::vector<char>{'a', 'b'}));
  EXPECT_EQ(f.preemptions(), 0u);
}

TEST(Facility, MultiServerParallelism) {
  Simulator sim;
  Facility f(sim, "pool", 3);
  int done = 0;
  for (int i = 0; i < 3; ++i) {
    f.request(2.0, [&](SimTime) { ++done; });
  }
  sim.run();
  EXPECT_EQ(done, 3);
  EXPECT_DOUBLE_EQ(sim.now(), 2.0);  // all three ran concurrently
}

TEST(Facility, UtilizationMeasuresBusyFraction) {
  Simulator sim;
  Facility f(sim, "cpu");
  f.request(3.0, [](SimTime) {});
  sim.run();
  sim.schedule(3.0, [](SimTime) {});  // idle window [3, 6]
  sim.run();
  EXPECT_NEAR(f.utilization(sim.now()), 0.5, 1e-12);
}

TEST(Facility, MeanQueueLengthTimeWeighted) {
  Simulator sim;
  Facility f(sim, "cpu");
  // Two 1s jobs submitted at t=0: queue holds 1 job during [0,1), 0 after.
  f.request(1.0, [](SimTime) {});
  f.request(1.0, [](SimTime) {});
  sim.run();
  EXPECT_NEAR(f.mean_queue_length(2.0), 0.5, 1e-12);
}

TEST(Facility, WaitingTimeStats) {
  Simulator sim;
  Facility f(sim, "cpu");
  f.request(2.0, [](SimTime) {});  // waits 0
  f.request(2.0, [](SimTime) {});  // waits 2
  f.request(2.0, [](SimTime) {});  // waits 4
  sim.run();
  EXPECT_EQ(f.waiting_times().count(), 3u);
  EXPECT_NEAR(f.waiting_times().mean(), 2.0, 1e-12);
  EXPECT_DOUBLE_EQ(f.waiting_times().max(), 4.0);
}

TEST(Facility, MM1SimulationMatchesTheory) {
  // End-to-end validation of the facility as an M/M/1 station:
  // lambda = 4, mu = 10 -> T = 1/6, rho = 0.4.
  Simulator sim;
  Facility f(sim, "cpu");
  stats::Xoshiro256 arr_rng(101), svc_rng(202);
  const stats::Exponential interarrival(4.0);
  const stats::Exponential service(10.0);
  stats::RunningStats response;
  constexpr double kHorizon = 20000.0;

  std::function<void()> arrive = [&]() {
    const double gap = interarrival.sample(arr_rng);
    if (sim.now() + gap > kHorizon) return;
    sim.schedule(gap, [&](SimTime t_arr) {
      f.request(service.sample(svc_rng),
                [&, t_arr](SimTime t_done) { response.add(t_done - t_arr); });
      arrive();
    });
  };
  arrive();
  sim.run();

  EXPECT_GT(response.count(), 50000u);
  EXPECT_NEAR(response.mean(), 1.0 / 6.0, 0.01);
  EXPECT_NEAR(f.utilization(sim.now()), 0.4, 0.01);
  // Little's law on the queue: Lq = lambda * Wq.
  EXPECT_NEAR(f.mean_queue_length(sim.now()),
              4.0 * f.waiting_times().mean(), 0.05);
}

}  // namespace
}  // namespace nashlb::des
