#include "des/simulator.hpp"

#include <gtest/gtest.h>

#include <functional>
#include <limits>
#include <stdexcept>
#include <vector>

namespace nashlb::des {
namespace {

TEST(Simulator, ClockStartsAtZero) {
  Simulator sim;
  EXPECT_DOUBLE_EQ(sim.now(), 0.0);
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(Simulator, RunAdvancesClockThroughEvents) {
  Simulator sim;
  std::vector<double> seen;
  sim.schedule(1.5, [&](SimTime t) { seen.push_back(t); });
  sim.schedule(0.5, [&](SimTime t) { seen.push_back(t); });
  EXPECT_EQ(sim.run(), StopReason::Exhausted);
  EXPECT_EQ(seen, (std::vector<double>{0.5, 1.5}));
  EXPECT_DOUBLE_EQ(sim.now(), 1.5);
  EXPECT_EQ(sim.events_executed(), 2u);
}

TEST(Simulator, EventsCanScheduleEvents) {
  Simulator sim;
  int depth = 0;
  std::function<void(SimTime)> chain = [&](SimTime) {
    if (++depth < 5) sim.schedule(1.0, chain);
  };
  sim.schedule(1.0, chain);
  sim.run();
  EXPECT_EQ(depth, 5);
  EXPECT_DOUBLE_EQ(sim.now(), 5.0);
}

TEST(Simulator, RunUntilStopsAtHorizon) {
  Simulator sim;
  int fired = 0;
  for (int i = 1; i <= 10; ++i) {
    sim.schedule(static_cast<double>(i), [&](SimTime) { ++fired; });
  }
  EXPECT_EQ(sim.run_until(4.5), StopReason::TimeLimit);
  EXPECT_EQ(fired, 4);
  EXPECT_DOUBLE_EQ(sim.now(), 4.5);
  // Remaining events still pending; a second call finishes them.
  EXPECT_EQ(sim.run_until(100.0), StopReason::Exhausted);
  EXPECT_EQ(fired, 10);
}

TEST(Simulator, EventExactlyAtHorizonFires) {
  Simulator sim;
  bool fired = false;
  sim.schedule(2.0, [&](SimTime) { fired = true; });
  sim.run_until(2.0);
  EXPECT_TRUE(fired);
}

TEST(Simulator, EventLimit) {
  Simulator sim;
  int fired = 0;
  for (int i = 0; i < 10; ++i) {
    sim.schedule(1.0 * i, [&](SimTime) { ++fired; });
  }
  EXPECT_EQ(sim.run(3), StopReason::EventLimit);
  EXPECT_EQ(fired, 3);
}

TEST(Simulator, StopRequestHonored) {
  Simulator sim;
  int fired = 0;
  sim.schedule(1.0, [&](SimTime) {
    ++fired;
    sim.stop();
  });
  sim.schedule(2.0, [&](SimTime) { ++fired; });
  EXPECT_EQ(sim.run(), StopReason::Stopped);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.pending_events(), 1u);
}

TEST(Simulator, NegativeDelayRejected) {
  Simulator sim;
  EXPECT_THROW(sim.schedule(-1.0, [](SimTime) {}), std::invalid_argument);
  EXPECT_THROW(sim.schedule(std::numeric_limits<double>::infinity(),
                            [](SimTime) {}),
               std::invalid_argument);
}

TEST(Simulator, ScheduleAtAbsoluteTime) {
  Simulator sim;
  sim.schedule(5.0, [](SimTime) {});
  sim.run();
  EXPECT_DOUBLE_EQ(sim.now(), 5.0);
  EXPECT_THROW(sim.schedule_at(4.0, [](SimTime) {}), std::invalid_argument);
  bool fired = false;
  sim.schedule_at(6.0, [&](SimTime) { fired = true; });
  sim.run();
  EXPECT_TRUE(fired);
}

TEST(Simulator, StepExecutesSingleEvent) {
  Simulator sim;
  int fired = 0;
  sim.schedule(1.0, [&](SimTime) { ++fired; });
  sim.schedule(2.0, [&](SimTime) { ++fired; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
}

TEST(Simulator, ResetDropsPendingAndRewindsClock) {
  Simulator sim;
  sim.schedule(1.0, [](SimTime) {});
  sim.schedule(9.0, [](SimTime) {});
  sim.run_until(1.0);
  sim.reset();
  EXPECT_DOUBLE_EQ(sim.now(), 0.0);
  EXPECT_EQ(sim.pending_events(), 0u);
  EXPECT_EQ(sim.run(), StopReason::Exhausted);
}

TEST(Simulator, CancelledEventDoesNotFire) {
  Simulator sim;
  bool fired = false;
  EventHandle h = sim.schedule(1.0, [&](SimTime) { fired = true; });
  h.cancel();
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(Simulator, RunUntilPastHorizonRejected) {
  Simulator sim;
  sim.schedule(5.0, [](SimTime) {});
  sim.run();
  EXPECT_THROW(sim.run_until(1.0), std::invalid_argument);
}

}  // namespace
}  // namespace nashlb::des
