#include "des/process.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "stats/distributions.hpp"
#include "stats/moments.hpp"
#include "stats/rng.hpp"

namespace nashlb::des {
namespace {

TEST(Process, RunsSequentiallyThroughDelays) {
  Simulator sim;
  std::vector<double> checkpoints;
  auto body = [&](Simulator& s) -> Task {
    checkpoints.push_back(s.now());
    co_await delay(s, 1.5);
    checkpoints.push_back(s.now());
    co_await delay(s, 2.5);
    checkpoints.push_back(s.now());
  };
  spawn(sim, body(sim));
  sim.run();
  ASSERT_EQ(checkpoints.size(), 3u);
  EXPECT_DOUBLE_EQ(checkpoints[0], 0.0);
  EXPECT_DOUBLE_EQ(checkpoints[1], 1.5);
  EXPECT_DOUBLE_EQ(checkpoints[2], 4.0);
}

TEST(Process, DelayAwaitYieldsResumeTime) {
  Simulator sim;
  double resumed_at = -1.0;
  auto body = [&](Simulator& s) -> Task {
    resumed_at = co_await delay(s, 3.0);
  };
  spawn(sim, body(sim));
  sim.run();
  EXPECT_DOUBLE_EQ(resumed_at, 3.0);
}

TEST(Process, ServiceAwaitQueuesAtFacility) {
  Simulator sim;
  Facility cpu(sim, "cpu");
  std::vector<std::pair<int, double>> done;
  auto job = [&](Simulator& s, int id, double t) -> Task {
    const SimTime finished = co_await service(cpu, t);
    done.push_back({id, finished});
    (void)s;
  };
  spawn(sim, job(sim, 1, 2.0));
  spawn(sim, job(sim, 2, 1.0));
  sim.run();
  ASSERT_EQ(done.size(), 2u);
  // FCFS: job 1 (spawned first) served first.
  EXPECT_EQ(done[0].first, 1);
  EXPECT_DOUBLE_EQ(done[0].second, 2.0);
  EXPECT_EQ(done[1].first, 2);
  EXPECT_DOUBLE_EQ(done[1].second, 3.0);
}

TEST(Process, MultipleProcessesInterleave) {
  Simulator sim;
  std::vector<int> order;
  auto ticker = [&](Simulator& s, int id, double period,
                    int count) -> Task {
    for (int k = 0; k < count; ++k) {
      co_await delay(s, period);
      order.push_back(id);
    }
  };
  spawn(sim, ticker(sim, 1, 2.0, 3));  // fires at 2, 4, 6
  spawn(sim, ticker(sim, 2, 3.0, 2));  // fires at 3, 6
  sim.run();
  // At t = 6 both fire; ticker 2's event was *scheduled* earlier (at
  // t = 3 vs t = 4), so the FIFO tie-break delivers it first.
  EXPECT_EQ(order, (std::vector<int>{1, 2, 1, 2, 1}));
}

TEST(Process, UnspawnedTaskLeaksNothing) {
  // A task that is created but never spawned must destroy its frame via
  // its destructor; this test's sanitizer/valgrind value is the absence
  // of leaks, here we just check it does not run.
  Simulator sim;
  bool ran = false;
  {
    auto body = [&](Simulator& s) -> Task {
      ran = true;
      co_await delay(s, 1.0);
    };
    Task t = body(sim);
    (void)t;  // dropped without spawn
  }
  sim.run();
  EXPECT_FALSE(ran);
}

TEST(Process, SpawnStartsAtCurrentTime) {
  Simulator sim;
  double started_at = -1.0;
  sim.schedule(5.0, [&](SimTime) {
    auto body = [&](Simulator& s) -> Task {
      started_at = s.now();
      co_return;
    };
    spawn(sim, body(sim));
  });
  sim.run();
  EXPECT_DOUBLE_EQ(started_at, 5.0);
}

TEST(Process, MM1SourceAsProcessMatchesTheory) {
  // The canonical process-style M/M/1: one generator process spawning
  // customer processes. lambda = 3, mu = 10 -> T = 1/7.
  Simulator sim;
  Facility cpu(sim, "cpu");
  stats::Xoshiro256 arr_rng(11), svc_rng(22);
  const stats::Exponential interarrival(3.0);
  const stats::Exponential svc(10.0);
  stats::RunningStats response;
  constexpr double kHorizon = 20000.0;

  auto customer = [&](Simulator& s) -> Task {
    const SimTime arrived = s.now();
    const SimTime finished = co_await service(cpu, svc.sample(svc_rng));
    response.add(finished - arrived);
  };
  auto generator = [&](Simulator& s) -> Task {
    for (;;) {
      const double gap = interarrival.sample(arr_rng);
      if (s.now() + gap > kHorizon) co_return;
      co_await delay(s, gap);
      spawn(s, customer(s));
    }
  };
  spawn(sim, generator(sim));
  sim.run();

  EXPECT_GT(response.count(), 40000u);
  EXPECT_NEAR(response.mean(), 1.0 / 7.0, 0.01);
  EXPECT_NEAR(cpu.utilization(sim.now()), 0.3, 0.01);
}

}  // namespace
}  // namespace nashlb::des
