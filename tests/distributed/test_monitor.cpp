#include "distributed/monitor.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace nashlb::distributed {
namespace {

core::Instance instance() {
  core::Instance inst;
  inst.mu = {10.0, 5.0};
  inst.phi = {4.0, 2.0};
  return inst;
}

TEST(RateMonitor, ExactModeReturnsTrueAvailableRates) {
  const core::Instance inst = instance();
  core::StrategyProfile s = core::StrategyProfile::proportional(inst);
  RateMonitor monitor(0.0);
  const std::vector<double> obs = monitor.observe(inst, s, 0);
  const std::vector<double> truth = s.available_rates(inst, 0);
  ASSERT_EQ(obs.size(), truth.size());
  for (std::size_t i = 0; i < obs.size(); ++i) {
    EXPECT_DOUBLE_EQ(obs[i], truth[i]);
  }
}

TEST(RateMonitor, NoisyModePerturbsButStaysBounded) {
  const core::Instance inst = instance();
  core::StrategyProfile s = core::StrategyProfile::proportional(inst);
  RateMonitor monitor(0.3, 42);
  bool saw_difference = false;
  const std::vector<double> truth = s.available_rates(inst, 0);
  for (int round = 0; round < 100; ++round) {
    const std::vector<double> obs = monitor.observe(inst, s, 0);
    for (std::size_t i = 0; i < obs.size(); ++i) {
      EXPECT_GT(obs[i], 0.0);
      EXPECT_LE(obs[i], truth[i] + 1e-12);  // never over-estimates
      if (obs[i] != truth[i]) saw_difference = true;
    }
  }
  EXPECT_TRUE(saw_difference);
}

TEST(RateMonitor, NoiseIsDeterministicPerSeed) {
  const core::Instance inst = instance();
  core::StrategyProfile s = core::StrategyProfile::proportional(inst);
  RateMonitor a(0.2, 7), b(0.2, 7);
  for (int round = 0; round < 10; ++round) {
    const std::vector<double> oa = a.observe(inst, s, 1);
    const std::vector<double> ob = b.observe(inst, s, 1);
    for (std::size_t i = 0; i < oa.size(); ++i) {
      EXPECT_DOUBLE_EQ(oa[i], ob[i]);
    }
  }
}

TEST(RateMonitor, RejectsNegativeSigma) {
  EXPECT_THROW(RateMonitor(-0.1), std::invalid_argument);
}

}  // namespace
}  // namespace nashlb::distributed
