#include "distributed/ring_protocol.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "core/equilibrium.hpp"
#include "workload/configs.hpp"

namespace nashlb::distributed {
namespace {

core::Instance instance(std::size_t users = 5, double util = 0.6) {
  core::Instance inst;
  inst.mu = {10.0, 20.0, 50.0, 100.0};
  const double cap = std::accumulate(inst.mu.begin(), inst.mu.end(), 0.0);
  inst.phi.assign(users, util * cap / static_cast<double>(users));
  return inst;
}

TEST(RingProtocol, ConvergesToNashEquilibrium) {
  const core::Instance inst = instance();
  RingOptions opts;
  opts.tolerance = 1e-8;
  const RingResult res = run_ring_protocol(inst, opts);
  EXPECT_TRUE(res.converged);
  EXPECT_TRUE(res.profile.is_feasible(inst));
  EXPECT_TRUE(core::is_nash_equilibrium(inst, res.profile, 1e-6));
}

TEST(RingProtocol, MatchesInMemoryDynamicsExactly) {
  // With exact monitoring the protocol performs the same best replies in
  // the same order as the in-memory dynamics: same rounds, same profile,
  // same norm trace (V2 in DESIGN.md).
  const core::Instance inst = instance(6, 0.7);
  const double eps = 1e-7;

  RingOptions ropts;
  ropts.tolerance = eps;
  ropts.init = core::Initialization::Proportional;
  const RingResult ring = run_ring_protocol(inst, ropts);

  core::DynamicsOptions dopts;
  dopts.tolerance = eps;
  dopts.init = core::Initialization::Proportional;
  const core::DynamicsResult mem = core::best_reply_dynamics(inst, dopts);

  ASSERT_TRUE(ring.converged);
  ASSERT_TRUE(mem.converged);
  EXPECT_EQ(ring.rounds, mem.iterations);
  EXPECT_LT(ring.profile.max_difference(mem.profile), 1e-12);
  ASSERT_EQ(ring.norm_history.size(), mem.norm_history.size());
  for (std::size_t l = 0; l < mem.norm_history.size(); ++l) {
    EXPECT_NEAR(ring.norm_history[l], mem.norm_history[l], 1e-12);
  }
}

TEST(RingProtocol, Nash0AlsoMatchesInMemory) {
  const core::Instance inst = instance(4, 0.5);
  RingOptions ropts;
  ropts.init = core::Initialization::Zero;
  ropts.tolerance = 1e-6;
  const RingResult ring = run_ring_protocol(inst, ropts);
  core::DynamicsOptions dopts;
  dopts.init = core::Initialization::Zero;
  dopts.tolerance = 1e-6;
  const core::DynamicsResult mem = core::best_reply_dynamics(inst, dopts);
  ASSERT_TRUE(ring.converged);
  EXPECT_EQ(ring.rounds, mem.iterations);
  EXPECT_LT(ring.profile.max_difference(mem.profile), 1e-12);
}

TEST(RingProtocol, MessageCountIsRoundsTimesUsersPlusStopWave) {
  const core::Instance inst = instance(5);
  RingOptions opts;
  opts.tolerance = 1e-6;
  const RingResult res = run_ring_protocol(inst, opts);
  ASSERT_TRUE(res.converged);
  // Each round passes the token m times (user 0 -> ... -> back to 0);
  // the STOP wave adds m-1 forwards.
  EXPECT_EQ(res.messages, res.rounds * 5 + 4);
}

TEST(RingProtocol, FinishTimeScalesWithLatency) {
  const core::Instance inst = instance(5);
  RingOptions fast;
  fast.tolerance = 1e-6;
  fast.link_latency = 1e-4;
  RingOptions slow = fast;
  slow.link_latency = 1e-1;
  const RingResult rf = run_ring_protocol(inst, fast);
  const RingResult rs = run_ring_protocol(inst, slow);
  ASSERT_TRUE(rf.converged);
  ASSERT_TRUE(rs.converged);
  EXPECT_EQ(rf.rounds, rs.rounds);  // latency does not change the math
  EXPECT_GT(rs.finish_time, rf.finish_time * 10.0);
}

TEST(RingProtocol, SingleUserDegenerates) {
  core::Instance inst;
  inst.mu = {10.0, 5.0};
  inst.phi = {7.0};
  RingOptions opts;
  opts.tolerance = 1e-10;
  const RingResult res = run_ring_protocol(inst, opts);
  EXPECT_TRUE(res.converged);
  EXPECT_TRUE(core::is_nash_equilibrium(inst, res.profile, 1e-8));
}

TEST(RingProtocol, RoundCapReportsNonConvergence) {
  const core::Instance inst = instance(6, 0.8);
  RingOptions opts;
  opts.tolerance = 0.0;  // unreachable
  opts.max_rounds = 4;
  const RingResult res = run_ring_protocol(inst, opts);
  EXPECT_FALSE(res.converged);
  EXPECT_EQ(res.rounds, 4u);
}

TEST(RingProtocol, NoisyMonitoringStillLandsNearEquilibrium) {
  // A6: estimation noise perturbs each reply, but the dynamics remains in
  // a neighbourhood of the exact equilibrium.
  const core::Instance inst = instance(4, 0.5);
  RingOptions exact;
  exact.tolerance = 1e-8;
  const RingResult clean = run_ring_protocol(inst, exact);
  ASSERT_TRUE(clean.converged);

  RingOptions noisy = exact;
  noisy.noise_sigma = 0.02;
  noisy.tolerance = 1e-3;  // noise floors the achievable norm
  noisy.max_rounds = 200;
  const RingResult res = run_ring_protocol(inst, noisy);
  // Converged or not, the final profile must stay feasible and close.
  EXPECT_TRUE(res.profile.is_feasible(inst));
  EXPECT_LT(res.profile.max_difference(clean.profile), 0.2);
}

TEST(RingProtocol, Table1SystemConverges) {
  const core::Instance inst = workload::table1_instance(0.6);
  RingOptions opts;
  opts.tolerance = 1e-4;
  const RingResult res = run_ring_protocol(inst, opts);
  EXPECT_TRUE(res.converged);
  EXPECT_TRUE(core::is_nash_equilibrium(inst, res.profile, 1e-3));
}

TEST(RingProtocol, RejectsNegativeLatency) {
  const core::Instance inst = instance();
  RingOptions opts;
  opts.link_latency = -1.0;
  EXPECT_THROW((void)run_ring_protocol(inst, opts), std::invalid_argument);
}

}  // namespace
}  // namespace nashlb::distributed
