// Additional ring-protocol behaviours: timing decomposition, norm-trace
// shape, and determinism of the noisy variant.
#include <gtest/gtest.h>

#include <numeric>

#include "distributed/ring_protocol.hpp"

namespace nashlb::distributed {
namespace {

core::Instance instance(std::size_t users = 4) {
  core::Instance inst;
  inst.mu = {10.0, 20.0, 50.0, 100.0};
  inst.phi.assign(users, 0.6 * 180.0 / static_cast<double>(users));
  return inst;
}

TEST(RingEdge, FinishTimeDecomposesIntoLatencyAndCompute) {
  // Every round costs m link hops + m compute slots; the STOP wave adds
  // m-1 hops. The simulated clock must equal that sum exactly.
  const core::Instance inst = instance(4);
  RingOptions opts;
  opts.tolerance = 1e-6;
  opts.link_latency = 0.25;
  opts.compute_time = 0.125;
  const RingResult res = run_ring_protocol(inst, opts);
  ASSERT_TRUE(res.converged);
  const double expected =
      static_cast<double>(res.rounds) * 4.0 *
          (opts.link_latency + opts.compute_time) +
      3.0 * opts.link_latency;  // STOP wave
  EXPECT_NEAR(res.finish_time, expected, 1e-9);
}

TEST(RingEdge, ZeroLatencyZeroComputeStillWorks) {
  const core::Instance inst = instance(3);
  RingOptions opts;
  opts.tolerance = 1e-8;
  opts.link_latency = 0.0;
  opts.compute_time = 0.0;
  const RingResult res = run_ring_protocol(inst, opts);
  EXPECT_TRUE(res.converged);
  EXPECT_DOUBLE_EQ(res.finish_time, 0.0);
}

TEST(RingEdge, NormHistoryLengthEqualsRounds) {
  const core::Instance inst = instance(5);
  RingOptions opts;
  opts.tolerance = 1e-5;
  const RingResult res = run_ring_protocol(inst, opts);
  ASSERT_TRUE(res.converged);
  EXPECT_EQ(res.norm_history.size(), res.rounds);
  EXPECT_LE(res.norm_history.back(), opts.tolerance);
  EXPECT_GT(res.norm_history.front(), opts.tolerance);
}

TEST(RingEdge, NoisyRunsAreDeterministicPerSeed) {
  const core::Instance inst = instance(4);
  RingOptions opts;
  opts.noise_sigma = 0.05;
  opts.tolerance = 1e-3;
  opts.max_rounds = 100;
  opts.seed = 424242;
  const RingResult a = run_ring_protocol(inst, opts);
  const RingResult b = run_ring_protocol(inst, opts);
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_DOUBLE_EQ(a.profile.max_difference(b.profile), 0.0);
  opts.seed = 424243;
  const RingResult c = run_ring_protocol(inst, opts);
  EXPECT_GT(a.profile.max_difference(c.profile), 0.0);
}

TEST(RingEdge, UserTimesSumConsistentWithProfile) {
  const core::Instance inst = instance(4);
  RingOptions opts;
  opts.tolerance = 1e-8;
  const RingResult res = run_ring_protocol(inst, opts);
  ASSERT_TRUE(res.converged);
  ASSERT_EQ(res.user_times.size(), 4u);
  for (double d : res.user_times) {
    EXPECT_GT(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

}  // namespace
}  // namespace nashlb::distributed
