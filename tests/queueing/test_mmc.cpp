#include "queueing/mmc.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "queueing/mm1.hpp"

namespace nashlb::queueing {
namespace {

TEST(ErlangC, RejectsBadInputs) {
  EXPECT_THROW(static_cast<void>(erlang_c(0, 0.5)), std::invalid_argument);
  EXPECT_THROW(static_cast<void>(erlang_c(2, 2.0)), std::invalid_argument);
  EXPECT_THROW(static_cast<void>(erlang_c(2, -0.1)), std::invalid_argument);
}

TEST(ErlangC, ZeroLoadNeverWaits) {
  EXPECT_DOUBLE_EQ(erlang_c(3, 0.0), 0.0);
}

TEST(ErlangC, SingleServerIsRho) {
  // For c = 1 the wait probability is the server utilization.
  for (double a : {0.1, 0.5, 0.9}) {
    EXPECT_NEAR(erlang_c(1, a), a, 1e-12);
  }
}

TEST(ErlangC, KnownTextbookValue) {
  // Classic call-centre example: c = 2, a = 1 -> C = 1/3.
  EXPECT_NEAR(erlang_c(2, 1.0), 1.0 / 3.0, 1e-12);
}

TEST(ErlangC, MonotoneInLoad) {
  double prev = 0.0;
  for (double a = 0.2; a < 3.9; a += 0.2) {
    const double c = erlang_c(4, a);
    EXPECT_GT(c, prev);
    prev = c;
  }
}

TEST(ErlangC, BoundedInUnitInterval) {
  for (unsigned c = 1; c <= 16; ++c) {
    for (double frac : {0.1, 0.5, 0.9, 0.99}) {
      const double p = erlang_c(c, frac * c);
      EXPECT_GE(p, 0.0);
      EXPECT_LE(p, 1.0);
    }
  }
}

TEST(MMC, RejectsUnstable) {
  EXPECT_THROW(MMC(4.0, 2.0, 2), std::invalid_argument);
  EXPECT_THROW(MMC(1.0, 2.0, 0), std::invalid_argument);
  EXPECT_THROW(MMC(-1.0, 2.0, 2), std::invalid_argument);
}

TEST(MMC, SingleServerMatchesMM1) {
  const MMC mmc(3.0, 5.0, 1);
  const MM1 mm1(3.0, 5.0);
  EXPECT_NEAR(mmc.mean_response_time(), mm1.mean_response_time(), 1e-12);
  EXPECT_NEAR(mmc.mean_waiting_time(), mm1.mean_waiting_time(), 1e-12);
  EXPECT_NEAR(mmc.mean_number_in_system(), mm1.mean_number_in_system(),
              1e-12);
}

TEST(MMC, PoolingBeatsSplitQueues) {
  // A classic queueing fact: one M/M/2 beats two separate M/M/1s at the
  // same total load and capacity.
  const double lambda = 3.0;
  const MMC pooled(lambda, 2.0, 2);
  const MM1 split(lambda / 2.0, 2.0);
  EXPECT_LT(pooled.mean_response_time(), split.mean_response_time());
}

TEST(MMC, FastSingleServerBeatsManySlow) {
  // ...but one fast M/M/1 of equal capacity beats the M/M/c pool.
  const double lambda = 3.0;
  const MMC pool(lambda, 1.0, 4);
  const MM1 fast(lambda, 4.0);
  EXPECT_LT(fast.mean_response_time(), pool.mean_response_time());
}

TEST(MMC, LittleLawConsistency) {
  const MMC q(5.0, 2.0, 4);
  EXPECT_NEAR(q.mean_number_in_system(),
              q.arrival_rate() * q.mean_response_time(), 1e-12);
  EXPECT_NEAR(q.utilization(), 5.0 / 8.0, 1e-12);
}

TEST(MMC, ResponseDivergesNearSaturation) {
  const MMC q(7.999, 2.0, 4);
  EXPECT_GT(q.mean_response_time(), 100.0);
}

}  // namespace
}  // namespace nashlb::queueing
