#include "queueing/mm1.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace nashlb::queueing {
namespace {

TEST(MM1, RejectsUnstableOrInvalid) {
  EXPECT_THROW(MM1(1.0, 1.0), std::invalid_argument);   // lambda == mu
  EXPECT_THROW(MM1(2.0, 1.0), std::invalid_argument);   // lambda > mu
  EXPECT_THROW(MM1(-0.1, 1.0), std::invalid_argument);  // negative lambda
  EXPECT_THROW(MM1(0.0, 0.0), std::invalid_argument);   // zero mu
  EXPECT_THROW(MM1(0.0, -1.0), std::invalid_argument);
}

TEST(MM1, KleinrockTextbookValues) {
  // lambda = 8, mu = 10: rho = 0.8, T = 0.5, W = 0.4, L = 4, Lq = 3.2.
  const MM1 q(8.0, 10.0);
  EXPECT_DOUBLE_EQ(q.utilization(), 0.8);
  EXPECT_DOUBLE_EQ(q.mean_response_time(), 0.5);
  EXPECT_DOUBLE_EQ(q.mean_waiting_time(), 0.4);
  EXPECT_DOUBLE_EQ(q.mean_number_in_system(), 4.0);
  EXPECT_NEAR(q.mean_queue_length(), 3.2, 1e-12);
}

TEST(MM1, EmptyQueueIsJustService) {
  const MM1 q(0.0, 4.0);
  EXPECT_DOUBLE_EQ(q.utilization(), 0.0);
  EXPECT_DOUBLE_EQ(q.mean_response_time(), 0.25);  // pure service time
  EXPECT_DOUBLE_EQ(q.mean_waiting_time(), 0.0);
  EXPECT_DOUBLE_EQ(q.mean_number_in_system(), 0.0);
}

TEST(MM1, LittlesLawConsistency) {
  const MM1 q(3.7, 5.2);
  EXPECT_NEAR(q.mean_number_in_system(),
              q.arrival_rate() * q.mean_response_time(), 1e-12);
  EXPECT_NEAR(q.mean_queue_length(),
              q.arrival_rate() * q.mean_waiting_time(), 1e-12);
  // T = W + 1/mu.
  EXPECT_NEAR(q.mean_response_time(),
              q.mean_waiting_time() + 1.0 / q.service_rate(), 1e-12);
}

TEST(MM1, OccupancyDistributionIsGeometric) {
  const MM1 q(6.0, 10.0);
  double total = 0.0;
  double expected_n = 0.0;
  for (unsigned n = 0; n < 200; ++n) {
    const double p = q.prob_n_in_system(n);
    EXPECT_NEAR(p, 0.4 * std::pow(0.6, n), 1e-12);
    total += p;
    expected_n += n * p;
  }
  EXPECT_NEAR(total, 1.0, 1e-12);
  EXPECT_NEAR(expected_n, q.mean_number_in_system(), 1e-8);
}

TEST(MM1, ResponseTimeTailIsExponential) {
  const MM1 q(2.0, 5.0);  // mu - lambda = 3
  EXPECT_DOUBLE_EQ(q.response_time_tail(0.0), 1.0);
  EXPECT_NEAR(q.response_time_tail(1.0), std::exp(-3.0), 1e-12);
  // Mean from the tail: integral of the tail = mean.
  EXPECT_NEAR(q.response_time_variance(),
              q.mean_response_time() * q.mean_response_time(), 1e-12);
}

TEST(MM1, ResponseTimeDivergesNearSaturation) {
  const MM1 q(9.999, 10.0);
  EXPECT_GT(q.mean_response_time(), 999.0);
}

TEST(MarginalDelay, MatchesDerivative) {
  // d/dl [l/(mu-l)] = mu/(mu-l)^2, checked by finite differences.
  const double mu = 7.0, l = 3.0, h = 1e-6;
  auto cost = [&](double x) { return x / (mu - x); };
  const double numeric = (cost(l + h) - cost(l - h)) / (2 * h);
  EXPECT_NEAR(mm1_marginal_delay(l, mu), numeric, 1e-5);
}

TEST(MarginalDelay, MonotoneInLoad) {
  double prev = 0.0;
  for (double l = 0.0; l < 9.0; l += 1.0) {
    const double g = mm1_marginal_delay(l, 10.0);
    EXPECT_GT(g, prev);
    prev = g;
  }
}

TEST(MarginalDelay, RejectsUnstable) {
  EXPECT_THROW(static_cast<void>(mm1_marginal_delay(10.0, 10.0)), std::invalid_argument);
  EXPECT_THROW(static_cast<void>(mm1_marginal_delay(-1.0, 10.0)), std::invalid_argument);
}

}  // namespace
}  // namespace nashlb::queueing
