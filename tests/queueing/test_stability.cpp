#include "queueing/stability.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace nashlb::queueing {
namespace {

TEST(Stability, AllStationsStableBasic) {
  const std::vector<double> lambda{1.0, 2.0};
  const std::vector<double> mu{2.0, 3.0};
  EXPECT_TRUE(all_stations_stable(lambda, mu));
}

TEST(Stability, SaturatedStationIsUnstable) {
  EXPECT_FALSE(all_stations_stable(std::vector<double>{2.0},
                                   std::vector<double>{2.0}));
  EXPECT_FALSE(all_stations_stable(std::vector<double>{3.0},
                                   std::vector<double>{2.0}));
}

TEST(Stability, NegativeLoadIsInvalid) {
  EXPECT_FALSE(all_stations_stable(std::vector<double>{-0.1},
                                   std::vector<double>{2.0}));
}

TEST(Stability, MarginTightens) {
  const std::vector<double> lambda{1.9};
  const std::vector<double> mu{2.0};
  EXPECT_TRUE(all_stations_stable(lambda, mu, 0.0));
  EXPECT_FALSE(all_stations_stable(lambda, mu, 0.2));
}

TEST(Stability, SizeMismatchThrows) {
  EXPECT_THROW(static_cast<void>(all_stations_stable(std::vector<double>{1.0},
                                   std::vector<double>{2.0, 3.0})), std::invalid_argument);
}

TEST(Stability, SystemStable) {
  const std::vector<double> mu{10.0, 20.0};
  EXPECT_TRUE(system_stable(29.9, mu));
  EXPECT_FALSE(system_stable(30.0, mu));
  EXPECT_FALSE(system_stable(-1.0, mu));
}

TEST(Stability, SystemUtilization) {
  const std::vector<double> mu{10.0, 20.0, 50.0, 100.0};
  EXPECT_DOUBLE_EQ(system_utilization(90.0, mu), 0.5);
  EXPECT_DOUBLE_EQ(system_utilization(0.0, mu), 0.0);
}

TEST(Stability, TotalCapacity) {
  EXPECT_DOUBLE_EQ(total_capacity(std::vector<double>{1.5, 2.5}), 4.0);
  EXPECT_THROW(static_cast<void>(total_capacity(std::vector<double>{1.0, 0.0})), std::invalid_argument);
  EXPECT_THROW(static_cast<void>(total_capacity(std::vector<double>{-1.0})), std::invalid_argument);
}

}  // namespace
}  // namespace nashlb::queueing
