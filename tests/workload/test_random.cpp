#include "workload/random.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

namespace nashlb::workload {
namespace {

TEST(RandomInstance, ProducesValidInstances) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    RandomInstanceOptions opts;
    opts.seed = seed;
    const core::Instance inst = random_instance(opts);
    EXPECT_NO_THROW(inst.validate());
    EXPECT_EQ(inst.num_computers(), 16u);
    EXPECT_EQ(inst.num_users(), 10u);
    EXPECT_NEAR(inst.system_utilization(), 0.6, 1e-9);
  }
}

TEST(RandomInstance, DeterministicInSeed) {
  RandomInstanceOptions opts;
  opts.seed = 42;
  const core::Instance a = random_instance(opts);
  const core::Instance b = random_instance(opts);
  EXPECT_EQ(a.mu, b.mu);
  EXPECT_EQ(a.phi, b.phi);
  opts.seed = 43;
  const core::Instance c = random_instance(opts);
  EXPECT_NE(a.mu, c.mu);
}

TEST(RandomInstance, HeterogeneityBoundsRespected) {
  RandomInstanceOptions opts;
  opts.heterogeneity = 5.0;
  opts.num_computers = 64;
  opts.seed = 7;
  const core::Instance inst = random_instance(opts);
  const auto [lo, hi] =
      std::minmax_element(inst.mu.begin(), inst.mu.end());
  EXPECT_LE(*hi / *lo, 5.0 + 1e-9);
}

TEST(RandomInstance, HomogeneousWhenRatiosAreOne) {
  RandomInstanceOptions opts;
  opts.heterogeneity = 1.0;
  opts.user_skew = 1.0;
  opts.seed = 9;
  const core::Instance inst = random_instance(opts);
  for (double mu : inst.mu) EXPECT_DOUBLE_EQ(mu, inst.mu[0]);
  for (double phi : inst.phi) EXPECT_NEAR(phi, inst.phi[0], 1e-12);
}

TEST(RandomInstance, RejectsBadOptions) {
  RandomInstanceOptions opts;
  opts.num_computers = 0;
  EXPECT_THROW((void)random_instance(opts), std::invalid_argument);
  opts = {};
  opts.utilization = 1.0;
  EXPECT_THROW((void)random_instance(opts), std::invalid_argument);
  opts = {};
  opts.heterogeneity = 0.5;
  EXPECT_THROW((void)random_instance(opts), std::invalid_argument);
}

}  // namespace
}  // namespace nashlb::workload
