#include "workload/configs.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <stdexcept>

namespace nashlb::workload {
namespace {

TEST(Table1, ClassesMatchThePaper) {
  const std::vector<SpeedClass> classes = table1_classes();
  ASSERT_EQ(classes.size(), 4u);
  EXPECT_DOUBLE_EQ(classes[0].relative_rate, 1.0);
  EXPECT_DOUBLE_EQ(classes[3].relative_rate, 10.0);
  EXPECT_EQ(classes[0].count, 6u);
  EXPECT_EQ(classes[1].count, 5u);
  EXPECT_EQ(classes[2].count, 3u);
  EXPECT_EQ(classes[3].count, 2u);
  EXPECT_DOUBLE_EQ(classes[0].rate, 10.0);
  EXPECT_DOUBLE_EQ(classes[3].rate, 100.0);
  // Relative rate really is rate / slowest rate.
  for (const SpeedClass& c : classes) {
    EXPECT_DOUBLE_EQ(c.rate, c.relative_rate * classes[0].rate);
  }
}

TEST(Table1, SixteenComputersTotalCapacity) {
  const std::vector<double> mu = table1_rates();
  EXPECT_EQ(mu.size(), 16u);
  EXPECT_DOUBLE_EQ(std::accumulate(mu.begin(), mu.end(), 0.0),
                   6 * 10.0 + 5 * 20.0 + 3 * 50.0 + 2 * 100.0);  // 510
}

TEST(UserFractions, DefaultTenUsersSumToOne) {
  const std::vector<double> q = default_user_fractions();
  ASSERT_EQ(q.size(), 10u);
  EXPECT_NEAR(std::accumulate(q.begin(), q.end(), 0.0), 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(q[0], 0.3);  // the heavy user
  EXPECT_DOUBLE_EQ(q[9], 0.04);
}

TEST(UserFractions, ArbitraryCountsNormalized) {
  for (std::size_t m : {1u, 4u, 10u, 17u, 32u}) {
    const std::vector<double> q = user_fractions(m);
    ASSERT_EQ(q.size(), m);
    EXPECT_NEAR(std::accumulate(q.begin(), q.end(), 0.0), 1.0, 1e-12);
    for (double x : q) EXPECT_GT(x, 0.0);
  }
  EXPECT_THROW(user_fractions(0), std::invalid_argument);
}

TEST(UserFractions, TenMatchesDefault) {
  const std::vector<double> q = user_fractions(10);
  const std::vector<double> d = default_user_fractions();
  for (std::size_t j = 0; j < 10; ++j) EXPECT_DOUBLE_EQ(q[j], d[j]);
}

TEST(MakeInstance, UtilizationRealized) {
  const core::Instance inst = table1_instance(0.6);
  EXPECT_NEAR(inst.system_utilization(), 0.6, 1e-12);
  EXPECT_EQ(inst.num_computers(), 16u);
  EXPECT_EQ(inst.num_users(), 10u);
  EXPECT_NEAR(inst.phi[0], 0.3 * 0.6 * 510.0, 1e-9);
}

TEST(MakeInstance, RejectsBadUtilization) {
  EXPECT_THROW((void)table1_instance(0.0), std::invalid_argument);
  EXPECT_THROW((void)table1_instance(1.0), std::invalid_argument);
  EXPECT_THROW((void)table1_instance(-0.5), std::invalid_argument);
}

TEST(MakeInstance, RejectsUnnormalizedFractions) {
  EXPECT_THROW((void)make_instance({10.0, 20.0}, {0.5, 0.6}, 0.5),
               std::invalid_argument);
}

TEST(SkewnessInstance, MatchesFigure6Description) {
  const core::Instance inst = skewness_instance(12.0, 0.6);
  ASSERT_EQ(inst.num_computers(), 16u);
  EXPECT_DOUBLE_EQ(inst.mu[0], 120.0);
  EXPECT_DOUBLE_EQ(inst.mu[1], 120.0);
  for (std::size_t i = 2; i < 16; ++i) {
    EXPECT_DOUBLE_EQ(inst.mu[i], 10.0);
  }
  EXPECT_NEAR(inst.system_utilization(), 0.6, 1e-12);
}

TEST(SkewnessInstance, SkewOneIsHomogeneous) {
  const core::Instance inst = skewness_instance(1.0, 0.6);
  for (double mu : inst.mu) EXPECT_DOUBLE_EQ(mu, 10.0);
}

TEST(SkewnessInstance, RejectsSubUnitySkew) {
  EXPECT_THROW((void)skewness_instance(0.5, 0.6), std::invalid_argument);
}

}  // namespace
}  // namespace nashlb::workload
