#include "simmodel/system_sim.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "core/cost.hpp"

namespace nashlb::simmodel {
namespace {

core::Instance small_instance() {
  core::Instance inst;
  inst.mu = {10.0, 5.0};
  inst.phi = {4.0, 2.0};
  return inst;
}

TEST(SystemSim, RejectsInfeasibleProfile) {
  const core::Instance inst = small_instance();
  const core::StrategyProfile zero(2, 2);  // violates conservation
  EXPECT_THROW((void)simulate(inst, zero), std::invalid_argument);
}

TEST(SystemSim, RejectsBadConfig) {
  const core::Instance inst = small_instance();
  const core::StrategyProfile s = core::StrategyProfile::proportional(inst);
  SimConfig cfg;
  cfg.horizon = 0.0;
  EXPECT_THROW((void)simulate(inst, s, cfg), std::invalid_argument);
  cfg.horizon = 10.0;
  cfg.warmup = 10.0;
  EXPECT_THROW((void)simulate(inst, s, cfg), std::invalid_argument);
}

TEST(SystemSim, DeterministicForSameSeedAndReplication) {
  const core::Instance inst = small_instance();
  const core::StrategyProfile s = core::StrategyProfile::proportional(inst);
  SimConfig cfg;
  cfg.horizon = 200.0;
  cfg.warmup = 10.0;
  const SimRunResult a = simulate(inst, s, cfg);
  const SimRunResult b = simulate(inst, s, cfg);
  EXPECT_EQ(a.jobs_generated, b.jobs_generated);
  EXPECT_DOUBLE_EQ(a.overall_mean_response, b.overall_mean_response);
  for (std::size_t j = 0; j < 2; ++j) {
    EXPECT_DOUBLE_EQ(a.user_mean_response[j], b.user_mean_response[j]);
  }
}

TEST(SystemSim, DifferentReplicationsDiffer) {
  const core::Instance inst = small_instance();
  const core::StrategyProfile s = core::StrategyProfile::proportional(inst);
  SimConfig cfg;
  cfg.horizon = 200.0;
  SimConfig cfg2 = cfg;
  cfg2.replication = 1;
  const SimRunResult a = simulate(inst, s, cfg);
  const SimRunResult b = simulate(inst, s, cfg2);
  EXPECT_NE(a.jobs_generated, b.jobs_generated);
}

TEST(SystemSim, JobCountMatchesArrivalRates) {
  const core::Instance inst = small_instance();  // Phi = 6 jobs/sec
  const core::StrategyProfile s = core::StrategyProfile::proportional(inst);
  SimConfig cfg;
  cfg.horizon = 2000.0;
  cfg.warmup = 0.0;
  const SimRunResult r = simulate(inst, s, cfg);
  EXPECT_NEAR(static_cast<double>(r.jobs_generated), 6.0 * 2000.0,
              3.0 * std::sqrt(6.0 * 2000.0) * 2.0);
  EXPECT_EQ(r.jobs_completed, r.jobs_generated);  // fully drained
  EXPECT_GE(r.end_time, cfg.horizon * 0.99);
}

TEST(SystemSim, MeanResponseMatchesMM1Theory) {
  // Proportional profile on the small instance: both queues at rho = 0.4;
  // user response time = sum_i s_i / (mu_i - lambda_i).
  const core::Instance inst = small_instance();
  const core::StrategyProfile s = core::StrategyProfile::proportional(inst);
  const std::vector<double> expected = core::user_response_times(inst, s);

  SimConfig cfg;
  cfg.horizon = 20000.0;
  cfg.warmup = 500.0;
  const SimRunResult r = simulate(inst, s, cfg);
  for (std::size_t j = 0; j < 2; ++j) {
    EXPECT_NEAR(r.user_mean_response[j], expected[j],
                0.05 * expected[j])
        << "user " << j;
  }
  EXPECT_NEAR(r.overall_mean_response,
              core::overall_response_time(inst, s),
              0.05 * r.overall_mean_response);
}

TEST(SystemSim, UtilizationMatchesLoads) {
  const core::Instance inst = small_instance();
  core::StrategyProfile s(2, 2);
  s.set_row(0, std::vector<double>{1.0, 0.0});  // user 0 -> computer 0
  s.set_row(1, std::vector<double>{0.0, 1.0});  // user 1 -> computer 1
  SimConfig cfg;
  cfg.horizon = 10000.0;
  const SimRunResult r = simulate(inst, s, cfg);
  EXPECT_NEAR(r.computer_utilization[0], 4.0 / 10.0, 0.02);
  EXPECT_NEAR(r.computer_utilization[1], 2.0 / 5.0, 0.02);
}

TEST(SystemSim, ZeroFractionComputersReceiveNoJobs) {
  core::Instance inst;
  inst.mu = {10.0, 5.0};
  inst.phi = {3.0};
  core::StrategyProfile s(1, 2);
  s.set_row(0, std::vector<double>{1.0, 0.0});
  SimConfig cfg;
  cfg.horizon = 1000.0;
  const SimRunResult r = simulate(inst, s, cfg);
  EXPECT_DOUBLE_EQ(r.computer_utilization[1], 0.0);
}

TEST(SystemSim, PerComputerStatsMatchMM1Theory) {
  // Dedicated computers: computer 0 is an M/M/1 with lambda=4, mu=10
  // (T = 1/6, Lq = 4/15); computer 1 with lambda=2, mu=5.
  const core::Instance inst = small_instance();
  core::StrategyProfile s(2, 2);
  s.set_row(0, std::vector<double>{1.0, 0.0});
  s.set_row(1, std::vector<double>{0.0, 1.0});
  SimConfig cfg;
  cfg.horizon = 30000.0;
  cfg.warmup = 500.0;
  const SimRunResult r = simulate(inst, s, cfg);
  EXPECT_NEAR(r.computer_mean_response[0], 1.0 / 6.0, 0.01);
  EXPECT_NEAR(r.computer_mean_response[1], 1.0 / 3.0, 0.02);
  EXPECT_NEAR(r.computer_mean_queue[0], 4.0 * (0.4 / 6.0), 0.03);
  EXPECT_GT(r.computer_jobs[0], 2 * r.computer_jobs[1] / 2);
  // Little's law at each station: L = lambda * T with
  // L = Lq + utilization and lambda from the completed-job count.
  for (std::size_t i = 0; i < 2; ++i) {
    const double lambda = inst.phi[i];
    const double l_measured =
        r.computer_mean_queue[i] + r.computer_utilization[i];
    EXPECT_NEAR(l_measured, lambda * r.computer_mean_response[i],
                0.05 * l_measured + 0.01)
        << "computer " << i;
  }
}

TEST(SystemSim, OnSampleHookSeesEveryMeasuredJob) {
  const core::Instance inst = small_instance();
  const core::StrategyProfile s = core::StrategyProfile::proportional(inst);
  SimConfig cfg;
  cfg.horizon = 500.0;
  cfg.warmup = 50.0;
  std::uint64_t hook_calls = 0;
  double hook_sum = 0.0;
  cfg.on_sample = [&](std::size_t user, double response) {
    EXPECT_LT(user, 2u);
    EXPECT_GT(response, 0.0);
    ++hook_calls;
    hook_sum += response;
  };
  const SimRunResult r = simulate(inst, s, cfg);
  const std::uint64_t measured = r.user_jobs[0] + r.user_jobs[1];
  EXPECT_EQ(hook_calls, measured);
  EXPECT_NEAR(hook_sum / static_cast<double>(hook_calls),
              r.overall_mean_response, 1e-9);
}

TEST(SystemSim, WarmupExcludesEarlyJobs) {
  const core::Instance inst = small_instance();
  const core::StrategyProfile s = core::StrategyProfile::proportional(inst);
  SimConfig with_warmup;
  with_warmup.horizon = 500.0;
  with_warmup.warmup = 400.0;
  SimConfig without = with_warmup;
  without.warmup = 0.0;
  const SimRunResult a = simulate(inst, s, with_warmup);
  const SimRunResult b = simulate(inst, s, without);
  const std::uint64_t measured_a =
      std::accumulate(a.user_jobs.begin(), a.user_jobs.end(),
                      std::uint64_t{0});
  const std::uint64_t measured_b =
      std::accumulate(b.user_jobs.begin(), b.user_jobs.end(),
                      std::uint64_t{0});
  EXPECT_LT(measured_a, measured_b);
  EXPECT_GT(measured_a, 0u);
}

}  // namespace
}  // namespace nashlb::simmodel
