#include "simmodel/replication.hpp"

#include <gtest/gtest.h>

#include "core/cost.hpp"

namespace nashlb::simmodel {
namespace {

core::Instance instance() {
  core::Instance inst;
  inst.mu = {10.0, 5.0};
  inst.phi = {4.0, 2.0};
  return inst;
}

ReplicationConfig quick_config(std::size_t reps = 5) {
  ReplicationConfig cfg;
  cfg.base.horizon = 2000.0;
  cfg.base.warmup = 100.0;
  cfg.replications = reps;
  return cfg;
}

TEST(Replication, RequiresAtLeastTwo) {
  const core::Instance inst = instance();
  const core::StrategyProfile s = core::StrategyProfile::proportional(inst);
  ReplicationConfig cfg = quick_config(1);
  EXPECT_THROW((void)replicate(inst, s, cfg), std::invalid_argument);
}

TEST(Replication, IntervalsCoverAnalyticTruth) {
  // §4.1's acceptance criterion in miniature: CI contains theory.
  const core::Instance inst = instance();
  const core::StrategyProfile s = core::StrategyProfile::proportional(inst);
  const ReplicatedResult r = replicate(inst, s, quick_config());
  const std::vector<double> truth = core::user_response_times(inst, s);
  ASSERT_EQ(r.user_response.size(), 2u);
  for (std::size_t j = 0; j < 2; ++j) {
    // Allow the interval a small numerical margin around the truth.
    EXPECT_LT(std::abs(r.user_response[j].mean - truth[j]),
              3.0 * r.user_response[j].half_width + 0.05 * truth[j])
        << "user " << j;
  }
  EXPECT_EQ(r.runs.size(), 5u);
  EXPECT_GT(r.total_jobs, 5u * 2000u * 5u);  // ~Phi * horizon * reps
}

TEST(Replication, DeterministicAcrossThreadCounts) {
  const core::Instance inst = instance();
  const core::StrategyProfile s = core::StrategyProfile::proportional(inst);
  ReplicationConfig seq = quick_config(4);
  seq.base.horizon = 500.0;
  seq.threads = 1;
  ReplicationConfig par = seq;
  par.threads = 4;
  const ReplicatedResult a = replicate(inst, s, seq);
  const ReplicatedResult b = replicate(inst, s, par);
  EXPECT_DOUBLE_EQ(a.overall_response.mean, b.overall_response.mean);
  for (std::size_t r = 0; r < 4; ++r) {
    EXPECT_EQ(a.runs[r].jobs_generated, b.runs[r].jobs_generated);
    EXPECT_DOUBLE_EQ(a.runs[r].overall_mean_response,
                     b.runs[r].overall_mean_response);
  }
}

TEST(Replication, SamplePathsArePinnedToStreamFamilies) {
  // Replication r always runs with RNG stream family r, so every run's
  // sample path must be bitwise identical whether the fan-out is
  // sequential, pooled, or auto-sized — exact equality, not tolerance.
  const core::Instance inst = instance();
  const core::StrategyProfile s = core::StrategyProfile::proportional(inst);
  ReplicationConfig seq = quick_config(6);
  seq.base.horizon = 400.0;
  seq.threads = 1;
  const ReplicatedResult a = replicate(inst, s, seq);
  for (std::size_t threads : {0u, 2u, 3u, 8u}) {
    ReplicationConfig par = seq;
    par.threads = threads;
    const ReplicatedResult b = replicate(inst, s, par);
    for (std::size_t r = 0; r < 6; ++r) {
      EXPECT_EQ(a.runs[r].jobs_generated, b.runs[r].jobs_generated)
          << "threads=" << threads << " rep=" << r;
      EXPECT_EQ(a.runs[r].jobs_completed, b.runs[r].jobs_completed)
          << "threads=" << threads << " rep=" << r;
      EXPECT_EQ(a.runs[r].end_time, b.runs[r].end_time)
          << "threads=" << threads << " rep=" << r;
      EXPECT_EQ(a.runs[r].overall_mean_response,
                b.runs[r].overall_mean_response)
          << "threads=" << threads << " rep=" << r;
      for (std::size_t j = 0; j < 2; ++j) {
        EXPECT_EQ(a.runs[r].user_mean_response[j],
                  b.runs[r].user_mean_response[j])
            << "threads=" << threads << " rep=" << r << " user=" << j;
      }
    }
    EXPECT_EQ(a.overall_response.mean, b.overall_response.mean);
    EXPECT_EQ(a.overall_response.half_width, b.overall_response.half_width);
  }
}

TEST(Replication, MergedSojournHistogramsSumTheRuns) {
  const core::Instance inst = instance();
  const core::StrategyProfile s = core::StrategyProfile::proportional(inst);
  ReplicationConfig cfg = quick_config(3);
  cfg.base.horizon = 300.0;
  const ReplicatedResult r = replicate(inst, s, cfg);
  ASSERT_EQ(r.computer_sojourn.size(), 2u);
  if (!obs::kEnabled) {
    EXPECT_EQ(r.computer_sojourn[0].count(), 0u);  // no-op twin
    return;
  }
  for (std::size_t i = 0; i < 2; ++i) {
    std::uint64_t total = 0;
    double min_seen = 0.0;
    for (const SimRunResult& run : r.runs) {
      total += run.computer_sojourn[i].count();
      const double m = run.computer_sojourn[i].min();
      if (min_seen == 0.0 || (m > 0.0 && m < min_seen)) min_seen = m;
    }
    EXPECT_EQ(r.computer_sojourn[i].count(), total) << "computer " << i;
    EXPECT_EQ(r.computer_sojourn[i].min(), min_seen) << "computer " << i;
    EXPECT_GT(total, 0u);
  }
}

TEST(Replication, MetricsShardsMergeIdenticallyAcrossThreadCounts) {
  // Each replication publishes into a private shard; the shards merge in
  // replication order after the join, so the reduced registry must not
  // depend on the thread count.
  const core::Instance inst = instance();
  const core::StrategyProfile s = core::StrategyProfile::proportional(inst);
  ReplicationConfig seq = quick_config(4);
  seq.base.horizon = 300.0;
  seq.threads = 1;
  obs::Registry serial_reg;
  seq.metrics = &serial_reg;
  const ReplicatedResult a = replicate(inst, s, seq);
  ReplicationConfig par = seq;
  par.threads = 4;
  obs::Registry pooled_reg;
  par.metrics = &pooled_reg;
  const ReplicatedResult b = replicate(inst, s, par);
  if (!obs::kEnabled) {
    EXPECT_EQ(serial_reg.size(), 0u);  // no-op twin swallows everything
    EXPECT_EQ(pooled_reg.size(), 0u);
    return;
  }
  EXPECT_EQ(a.total_jobs, b.total_jobs);
  const auto sa = serial_reg.snapshot();
  const auto sb = pooled_reg.snapshot();
  ASSERT_GT(sa.size(), 0u) << "replications published des.* metrics";
  ASSERT_EQ(sa.size(), sb.size());
  for (std::size_t k = 0; k < sa.size(); ++k) {
    EXPECT_EQ(sa[k].name, sb[k].name);
    EXPECT_EQ(sa[k].kind, sb[k].kind);
    EXPECT_EQ(sa[k].count, sb[k].count) << sa[k].name;
    EXPECT_EQ(sa[k].min_seconds, sb[k].min_seconds) << sa[k].name;
    EXPECT_EQ(sa[k].max_seconds, sb[k].max_seconds) << sa[k].name;
  }
}

TEST(Replication, RelativeHalfWidthIsSmall) {
  // The paper reports standard error below 5% at 95% confidence; our
  // replications at this horizon meet the same bar.
  const core::Instance inst = instance();
  const core::StrategyProfile s = core::StrategyProfile::proportional(inst);
  const ReplicatedResult r = replicate(inst, s, quick_config());
  EXPECT_LT(r.overall_response.relative_half_width(), 0.05);
}

TEST(Replication, UtilizationAveragedAcrossRuns) {
  const core::Instance inst = instance();
  const core::StrategyProfile s = core::StrategyProfile::proportional(inst);
  const ReplicatedResult r = replicate(inst, s, quick_config(3));
  ASSERT_EQ(r.computer_utilization.size(), 2u);
  EXPECT_NEAR(r.computer_utilization[0], 0.4, 0.05);
  EXPECT_NEAR(r.computer_utilization[1], 0.4, 0.05);
}

}  // namespace
}  // namespace nashlb::simmodel
