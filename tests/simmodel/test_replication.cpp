#include "simmodel/replication.hpp"

#include <gtest/gtest.h>

#include "core/cost.hpp"

namespace nashlb::simmodel {
namespace {

core::Instance instance() {
  core::Instance inst;
  inst.mu = {10.0, 5.0};
  inst.phi = {4.0, 2.0};
  return inst;
}

ReplicationConfig quick_config(std::size_t reps = 5) {
  ReplicationConfig cfg;
  cfg.base.horizon = 2000.0;
  cfg.base.warmup = 100.0;
  cfg.replications = reps;
  return cfg;
}

TEST(Replication, RequiresAtLeastTwo) {
  const core::Instance inst = instance();
  const core::StrategyProfile s = core::StrategyProfile::proportional(inst);
  ReplicationConfig cfg = quick_config(1);
  EXPECT_THROW((void)replicate(inst, s, cfg), std::invalid_argument);
}

TEST(Replication, IntervalsCoverAnalyticTruth) {
  // §4.1's acceptance criterion in miniature: CI contains theory.
  const core::Instance inst = instance();
  const core::StrategyProfile s = core::StrategyProfile::proportional(inst);
  const ReplicatedResult r = replicate(inst, s, quick_config());
  const std::vector<double> truth = core::user_response_times(inst, s);
  ASSERT_EQ(r.user_response.size(), 2u);
  for (std::size_t j = 0; j < 2; ++j) {
    // Allow the interval a small numerical margin around the truth.
    EXPECT_LT(std::abs(r.user_response[j].mean - truth[j]),
              3.0 * r.user_response[j].half_width + 0.05 * truth[j])
        << "user " << j;
  }
  EXPECT_EQ(r.runs.size(), 5u);
  EXPECT_GT(r.total_jobs, 5u * 2000u * 5u);  // ~Phi * horizon * reps
}

TEST(Replication, DeterministicAcrossThreadCounts) {
  const core::Instance inst = instance();
  const core::StrategyProfile s = core::StrategyProfile::proportional(inst);
  ReplicationConfig seq = quick_config(4);
  seq.base.horizon = 500.0;
  seq.threads = 1;
  ReplicationConfig par = seq;
  par.threads = 4;
  const ReplicatedResult a = replicate(inst, s, seq);
  const ReplicatedResult b = replicate(inst, s, par);
  EXPECT_DOUBLE_EQ(a.overall_response.mean, b.overall_response.mean);
  for (std::size_t r = 0; r < 4; ++r) {
    EXPECT_EQ(a.runs[r].jobs_generated, b.runs[r].jobs_generated);
    EXPECT_DOUBLE_EQ(a.runs[r].overall_mean_response,
                     b.runs[r].overall_mean_response);
  }
}

TEST(Replication, RelativeHalfWidthIsSmall) {
  // The paper reports standard error below 5% at 95% confidence; our
  // replications at this horizon meet the same bar.
  const core::Instance inst = instance();
  const core::StrategyProfile s = core::StrategyProfile::proportional(inst);
  const ReplicatedResult r = replicate(inst, s, quick_config());
  EXPECT_LT(r.overall_response.relative_half_width(), 0.05);
}

TEST(Replication, UtilizationAveragedAcrossRuns) {
  const core::Instance inst = instance();
  const core::StrategyProfile s = core::StrategyProfile::proportional(inst);
  const ReplicatedResult r = replicate(inst, s, quick_config(3));
  ASSERT_EQ(r.computer_utilization.size(), 2u);
  EXPECT_NEAR(r.computer_utilization[0], 0.4, 0.05);
  EXPECT_NEAR(r.computer_utilization[1], 0.4, 0.05);
}

}  // namespace
}  // namespace nashlb::simmodel
