#include "util/csv.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace nashlb::util {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

class CsvTest : public ::testing::Test {
 protected:
  std::string path_ = ::testing::TempDir() + "nashlb_csv_test.csv";
  void TearDown() override { std::remove(path_.c_str()); }
};

TEST_F(CsvTest, WritesHeaderAndRows) {
  {
    CsvWriter w(path_, {"x", "y"});
    w.add_row({"1", "2"});
    w.add_row({"3", "4"});
    EXPECT_EQ(w.row_count(), 2u);
  }
  EXPECT_EQ(read_file(path_), "x,y\n1,2\n3,4\n");
}

TEST_F(CsvTest, ArityMismatchThrows) {
  CsvWriter w(path_, {"x", "y"});
  EXPECT_THROW(w.add_row({"1"}), std::invalid_argument);
}

TEST_F(CsvTest, EmptyHeaderThrows) {
  EXPECT_THROW(CsvWriter(path_, {}), std::invalid_argument);
}

TEST(CsvEscape, PlainCellUnchanged) {
  EXPECT_EQ(CsvWriter::escape("hello"), "hello");
}

TEST(CsvEscape, CommaQuoted) {
  EXPECT_EQ(CsvWriter::escape("a,b"), "\"a,b\"");
}

TEST(CsvEscape, QuoteDoubled) {
  EXPECT_EQ(CsvWriter::escape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(CsvEscape, NewlineQuoted) {
  EXPECT_EQ(CsvWriter::escape("a\nb"), "\"a\nb\"");
}

TEST(CsvWriterErrors, UnopenablePathThrows) {
  EXPECT_THROW(CsvWriter("/nonexistent-dir/x.csv", {"a"}),
               std::runtime_error);
}

}  // namespace
}  // namespace nashlb::util
