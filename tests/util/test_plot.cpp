#include "util/plot.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace nashlb::util {
namespace {

TEST(Plot, RendersGridWithMarkers) {
  const Series s{"norm", {1.0, 2.0, 3.0, 4.0}};
  const std::string out = render_plot({s}, {.width = 20, .height = 5});
  EXPECT_NE(out.find('n'), std::string::npos);   // marker = first char
  EXPECT_NE(out.find("norm"), std::string::npos);  // legend
  EXPECT_NE(out.find("x: 1..4"), std::string::npos);
}

TEST(Plot, LogScaleSkipsNonPositive) {
  const Series s{"a", {1e-3, 0.0, 1e-1, 10.0}};
  const std::string out =
      render_plot({s}, {.width = 20, .height = 8, .log_y = true});
  EXPECT_NE(out.find('a'), std::string::npos);
}

TEST(Plot, OverlapMarkedWithHash) {
  const Series a{"a", {5.0, 5.0}};
  const Series b{"b", {5.0, 1.0}};
  const std::string out = render_plot({a, b}, {.width = 10, .height = 4});
  EXPECT_NE(out.find('#'), std::string::npos);
}

TEST(Plot, FlatSeriesGetsWindow) {
  const Series s{"flat", {2.0, 2.0, 2.0}};
  EXPECT_NO_THROW((void)render_plot({s}));
}

TEST(Plot, RejectsDegenerateInput) {
  EXPECT_THROW((void)render_plot({}, {}), std::invalid_argument);
  const Series empty{"e", {}};
  EXPECT_THROW((void)render_plot({empty}), std::invalid_argument);
  const Series s{"s", {1.0}};
  EXPECT_THROW((void)render_plot({s}, {.width = 1, .height = 1}),
               std::invalid_argument);
  const Series neg{"n", {-1.0}};
  EXPECT_THROW((void)render_plot({neg}, {.width = 10, .height = 4,
                                         .log_y = true}),
               std::invalid_argument);
}

TEST(Plot, HeightControlsLineCount) {
  const Series s{"s", {1.0, 2.0}};
  const std::string out = render_plot({s}, {.width = 10, .height = 6});
  int lines = 0;
  for (char c : out) {
    if (c == '\n') ++lines;
  }
  EXPECT_EQ(lines, 6 + 2);  // grid + axis + legend
}

}  // namespace
}  // namespace nashlb::util
