// Negative-path coverage for the paper-invariant contract layer
// (src/util/contracts.hpp). Each test seeds a violation the hot paths
// are contracted against and checks the build reacts per its mode:
//
//   NASHLB_CHECK=ON   the process aborts with an identifying message
//                     (gtest death tests match the stderr report),
//   NASHLB_CHECK=OFF  the same operations complete silently — contracts
//                     must be free when disabled, including not
//                     evaluating their condition expressions.
//
// Both halves compile in both modes; the `#if NASHLB_CHECK_ENABLED`
// split selects which expectations apply. The suite is part of
// test_util, so the default (OFF) build exercises the no-op half and
// tools/check_sanitize.sh's -DNASHLB_CHECK=ON build exercises the
// aborting half.

#include <gtest/gtest.h>

#include <vector>

#include "core/dynamics.hpp"
#include "core/load_state.hpp"
#include "core/types.hpp"
#include "util/contracts.hpp"

namespace {

using nashlb::core::Instance;
using nashlb::core::LoadState;
using nashlb::core::StrategyProfile;

Instance stable_instance() {
  Instance inst;
  inst.mu = {10.0, 5.0, 2.0};
  inst.phi = {3.0, 2.0};
  return inst;
}

TEST(Contracts, CheckEnabledConstantMatchesMacroGate) {
#if NASHLB_CHECK_ENABLED
  EXPECT_TRUE(nashlb::util::kCheckEnabled);
#else
  EXPECT_FALSE(nashlb::util::kCheckEnabled);
#endif
}

TEST(Contracts, PassingContractsAreSilentInBothModes) {
  int evaluations = 0;
  NASHLB_EXPECT((++evaluations, true), "must not fire (%d)", evaluations);
  NASHLB_ENSURE((++evaluations, true), "must not fire (%d)", evaluations);
  NASHLB_INVARIANT((++evaluations, true), "must not fire (%d)", evaluations);
#if NASHLB_CHECK_ENABLED
  EXPECT_EQ(evaluations, 3) << "enabled contracts evaluate their condition";
#else
  EXPECT_EQ(evaluations, 0)
      << "disabled contracts must not evaluate their condition";
#endif
}

TEST(Contracts, ValidOperationsNeverAbort) {
  const Instance inst = stable_instance();
  StrategyProfile s = StrategyProfile::proportional(inst);
  LoadState state(inst, s);
  const std::vector<double> row = {0.5, 0.3, 0.2};
  state.commit_row(s, 0, row);
  state.rebuild(s);
  state.assert_consistent(s);
  EXPECT_LE(state.max_drift(s), 1e-12);
}

#if NASHLB_CHECK_ENABLED
#if defined(GTEST_HAS_DEATH_TEST)

TEST(ContractsDeathTest, FalseConditionAbortsWithFormattedReport) {
  const double value = 0.25;
  EXPECT_DEATH(NASHLB_EXPECT(value > 1.0, "value=%.2f too small", value),
               "NASHLB_EXPECT violated at .*: \\(value > 1.0\\) "
               "value=0.25 too small");
  EXPECT_DEATH(NASHLB_ENSURE(false, "postcondition"), "NASHLB_ENSURE");
  EXPECT_DEATH(NASHLB_INVARIANT(false, "invariant"), "NASHLB_INVARIANT");
}

TEST(ContractsDeathTest, CommitRowOutsideSimplexAborts) {
  const Instance inst = stable_instance();
  StrategyProfile s = StrategyProfile::proportional(inst);
  LoadState state(inst, s);
  const std::vector<double> short_row = {0.5, 0.2, 0.1};  // sums to 0.8
  EXPECT_DEATH(state.commit_row(s, 0, short_row),
               "NASHLB_EXPECT.*strategy row sums to");
  const std::vector<double> negative_row = {-0.1, 0.6, 0.5};
  EXPECT_DEATH(state.commit_row(s, 1, negative_row), "NASHLB_EXPECT.*< 0");
}

TEST(ContractsDeathTest, UnstableInstanceAbortsOnRebuild) {
  // Sum phi = 9 >= sum mu = 8: assumption A2 of the paper is violated,
  // so building aggregate loads from a full (simplex-row) profile must
  // trip the stability invariant. The profile is assembled by hand —
  // proportional() would reject the instance up front via validate(),
  // before the contract in rebuild() ever runs.
  Instance inst;
  inst.mu = {5.0, 3.0};
  inst.phi = {6.0, 3.0};
  StrategyProfile s(2, 2);
  const std::vector<double> half = {0.5, 0.5};
  s.set_row(0, half);
  s.set_row(1, half);
  EXPECT_DEATH(LoadState(inst, s), "NASHLB_INVARIANT.*unstable loads");
}

TEST(ContractsDeathTest, ThreadsWithSequentialOrderAborts) {
  // Parallel rounds are a Jacobi-only option: a sequential order run on
  // a pool would silently compute a different dynamics. The contract
  // must reject the combination for both sequential orders, whether the
  // thread count is explicit or auto-resolved.
  const Instance inst = stable_instance();
  nashlb::core::DynamicsOptions opts;
  opts.order = nashlb::core::UpdateOrder::RoundRobin;
  opts.threads = 2;
  EXPECT_DEATH((void)nashlb::core::best_reply_dynamics(inst, opts),
               "NASHLB_EXPECT.*sequential update");
  opts.order = nashlb::core::UpdateOrder::RandomOrder;
  opts.threads = 8;
  EXPECT_DEATH((void)nashlb::core::best_reply_dynamics(inst, opts),
               "NASHLB_EXPECT.*sequential update");
}

TEST(ContractsDeathTest, StaleLoadStateAborts) {
  const Instance inst = stable_instance();
  StrategyProfile s = StrategyProfile::proportional(inst);
  LoadState state(inst, s);
  // Mutating the profile behind the state's back leaves the carried
  // lambda stale; the consistency contract must catch the drift.
  const std::vector<double> moved = {1.0, 0.0, 0.0};
  s.set_row(0, moved);
  EXPECT_DEATH(state.assert_consistent(s), "NASHLB_INVARIANT.*stale");
}

#endif  // GTEST_HAS_DEATH_TEST
#else   // contracts disabled: the same violations must pass silently

TEST(Contracts, SeededViolationsAreFreeWhenDisabled) {
  const Instance inst = stable_instance();
  StrategyProfile s = StrategyProfile::proportional(inst);
  LoadState state(inst, s);
  const std::vector<double> short_row = {0.5, 0.2, 0.1};  // sums to 0.8
  state.commit_row(s, 0, short_row);  // no abort: contract compiled out
  const std::vector<double> moved = {1.0, 0.0, 0.0};
  s.set_row(1, moved);
  state.assert_consistent(s);  // no abort: no-op when disabled
  EXPECT_GT(state.max_drift(s), 1e-3)
      << "the seeded mutation really did leave the state stale";
}

TEST(Contracts, ThreadsWithSequentialOrderFallsBackToSerialWhenDisabled) {
  // With contracts compiled out the misconfiguration must not crash or
  // change results: the dynamics ignores the pool for sequential orders
  // and runs the exact serial path.
  const Instance inst = stable_instance();
  nashlb::core::DynamicsOptions serial;
  serial.order = nashlb::core::UpdateOrder::RoundRobin;
  serial.tolerance = 1e-10;
  nashlb::core::DynamicsOptions pooled = serial;
  pooled.threads = 4;
  const auto a = nashlb::core::best_reply_dynamics(inst, serial);
  const auto b = nashlb::core::best_reply_dynamics(inst, pooled);
  EXPECT_EQ(a.iterations, b.iterations);
  EXPECT_EQ(a.profile.max_difference(b.profile), 0.0);
}

#endif  // NASHLB_CHECK_ENABLED

}  // namespace
