#include "util/table.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

namespace nashlb::util {
namespace {

TEST(Table, RendersHeaderRuleAndRows) {
  Table t({"a", "bb"});
  t.add_row({"1", "2"});
  const std::string out = t.str();
  EXPECT_NE(out.find("a  bb"), std::string::npos) << out;
  EXPECT_NE(out.find("-  --"), std::string::npos) << out;
  EXPECT_NE(out.find("1   2"), std::string::npos) << out;
}

TEST(Table, RightAlignsByDefault) {
  Table t({"col"});
  t.add_row({"x"});
  // width 3 -> two leading spaces before "x"
  EXPECT_NE(t.str().find("  x"), std::string::npos);
}

TEST(Table, LeftAlignWorks) {
  Table t({"col"});
  t.set_align(0, Align::Left);
  t.add_row({"x"});
  const std::string out = t.str();
  // The data line should start with "x", padded on the right.
  EXPECT_NE(out.find("\nx  "), std::string::npos) << out;
}

TEST(Table, ColumnWidthTracksWidestCell) {
  Table t({"h"});
  t.add_row({"wide-cell"});
  t.add_row({"x"});
  const std::string out = t.str();
  EXPECT_NE(out.find("wide-cell"), std::string::npos);
  EXPECT_NE(out.find("---------"), std::string::npos);
}

TEST(Table, ArityMismatchThrows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(Table, EmptyHeaderThrows) {
  EXPECT_THROW(Table({}), std::invalid_argument);
}

TEST(Table, SetAlignOutOfRangeThrows) {
  Table t({"a"});
  EXPECT_THROW(t.set_align(1, Align::Left), std::out_of_range);
}

TEST(Table, RowCountTracksAdds) {
  Table t({"a"});
  EXPECT_EQ(t.row_count(), 0u);
  t.add_row({"1"});
  t.add_row({"2"});
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(Table, PrintWritesToStream) {
  Table t({"a"});
  t.add_row({"1"});
  std::ostringstream os;
  t.print(os);
  EXPECT_EQ(os.str(), t.str());
}

TEST(Format, FixedDigits) {
  EXPECT_EQ(format_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(format_fixed(-0.5, 1), "-0.5");
  EXPECT_EQ(format_fixed(2.0, 0), "2");
}

TEST(Format, SignificantDigits) {
  EXPECT_EQ(format_sig(1234.5678, 3), "1.23e+03");
  EXPECT_EQ(format_sig(0.001234, 2), "0.0012");
}

TEST(Format, Percent) {
  EXPECT_EQ(format_percent(0.6), "60%");
  EXPECT_EQ(format_percent(0.125, 1), "12.5%");
}

}  // namespace
}  // namespace nashlb::util
