#include "util/cli.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace nashlb::util {
namespace {

Args parse(std::initializer_list<const char*> argv) {
  std::vector<const char*> v{"prog"};
  v.insert(v.end(), argv.begin(), argv.end());
  return Args(static_cast<int>(v.size()), v.data());
}

TEST(Args, EqualsSyntax) {
  const Args a = parse({"--users=10"});
  EXPECT_EQ(a.get_int("users", 0), 10);
}

TEST(Args, SpaceSyntax) {
  const Args a = parse({"--users", "10"});
  EXPECT_EQ(a.get_int("users", 0), 10);
}

TEST(Args, BareFlag) {
  const Args a = parse({"--verbose"});
  EXPECT_TRUE(a.has("verbose"));
  EXPECT_TRUE(a.get_bool("verbose", false));
}

TEST(Args, MissingReturnsFallback) {
  const Args a = parse({});
  EXPECT_EQ(a.get("name", "dflt"), "dflt");
  EXPECT_EQ(a.get_int("n", 7), 7);
  EXPECT_DOUBLE_EQ(a.get_double("x", 2.5), 2.5);
  EXPECT_FALSE(a.get_bool("b", false));
}

TEST(Args, Positionals) {
  const Args a = parse({"first", "--k=v", "second"});
  ASSERT_EQ(a.positional().size(), 2u);
  EXPECT_EQ(a.positional()[0], "first");
  EXPECT_EQ(a.positional()[1], "second");
}

TEST(Args, DoubleParsing) {
  const Args a = parse({"--rho=0.65"});
  EXPECT_DOUBLE_EQ(a.get_double("rho", 0.0), 0.65);
}

TEST(Args, BoolVariants) {
  EXPECT_TRUE(parse({"--f=true"}).get_bool("f", false));
  EXPECT_TRUE(parse({"--f=yes"}).get_bool("f", false));
  EXPECT_TRUE(parse({"--f=1"}).get_bool("f", false));
  EXPECT_FALSE(parse({"--f=false"}).get_bool("f", true));
  EXPECT_FALSE(parse({"--f=off"}).get_bool("f", true));
}

TEST(Args, MalformedIntThrows) {
  const Args a = parse({"--n=abc"});
  EXPECT_THROW(static_cast<void>(a.get_int("n", 0)), std::invalid_argument);
}

TEST(Args, MalformedDoubleThrows) {
  const Args a = parse({"--x=1.2.3"});
  EXPECT_THROW(static_cast<void>(a.get_double("x", 0.0)), std::invalid_argument);
}

TEST(Args, MalformedBoolThrows) {
  const Args a = parse({"--b=maybe"});
  EXPECT_THROW(static_cast<void>(a.get_bool("b", false)), std::invalid_argument);
}

TEST(Args, NegativeNumberAsValue) {
  const Args a = parse({"--delta", "-5"});
  // "-5" does not start with "--", so it is consumed as the value.
  EXPECT_EQ(a.get_int("delta", 0), -5);
}

}  // namespace
}  // namespace nashlb::util
