// The deterministic thread pool (src/util/parallel.hpp) carries the
// whole PR's correctness story: the solver and the simulation only
// stay bitwise thread-count-independent if parallel_for's (chunk ->
// worker) mapping is a pure function of the range and the serial path
// really is a plain loop. These tests pin that contract directly.

#include "util/parallel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

namespace nashlb::util {
namespace {

TEST(ResolveThreads, ExplicitRequestWinsVerbatim) {
  EXPECT_EQ(resolve_threads(1), 1u);
  EXPECT_EQ(resolve_threads(3), 3u);
  EXPECT_EQ(resolve_threads(64), 64u);
}

TEST(ResolveThreads, EnvOverridesAutoDetection) {
  ASSERT_EQ(setenv("NASHLB_THREADS", "5", 1), 0);
  EXPECT_EQ(resolve_threads(0), 5u);
  // Explicit requests ignore the env var.
  EXPECT_EQ(resolve_threads(2), 2u);
  // Garbage values fall through to hardware detection (>= 1).
  ASSERT_EQ(setenv("NASHLB_THREADS", "zero", 1), 0);
  EXPECT_GE(resolve_threads(0), 1u);
  ASSERT_EQ(setenv("NASHLB_THREADS", "0", 1), 0);
  EXPECT_GE(resolve_threads(0), 1u);
  ASSERT_EQ(unsetenv("NASHLB_THREADS"), 0);
  EXPECT_GE(resolve_threads(0), 1u);
}

TEST(ThreadPool, CoversEveryIndexExactlyOnce) {
  for (std::size_t threads : {1u, 2u, 3u, 8u}) {
    ThreadPool pool(threads);
    EXPECT_EQ(pool.size(), threads);
    std::vector<std::atomic<int>> hits(257);
    pool.parallel_for(0, hits.size(), 1, [&](std::size_t i, std::size_t) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (std::size_t i = 0; i < hits.size(); ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "index " << i << " with " << threads
                                   << " threads";
    }
  }
}

TEST(ThreadPool, EmptyAndSubGrainRangesRunInline) {
  ThreadPool pool(4);
  std::size_t calls = 0;
  const std::thread::id caller = std::this_thread::get_id();
  pool.parallel_for(3, 3, 1, [&](std::size_t, std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0u);
  // count <= grain: the caller runs the loop itself as worker 0.
  pool.parallel_for(0, 8, 8, [&](std::size_t i, std::size_t w) {
    EXPECT_EQ(i, calls);
    EXPECT_EQ(w, 0u);
    EXPECT_EQ(std::this_thread::get_id(), caller);
    ++calls;
  });
  EXPECT_EQ(calls, 8u);
}

TEST(ThreadPool, SingleWorkerPoolIsThePlainLoop) {
  ThreadPool pool(1);
  const std::thread::id caller = std::this_thread::get_id();
  std::vector<std::size_t> order;
  pool.parallel_for(10, 20, 1, [&](std::size_t i, std::size_t w) {
    EXPECT_EQ(w, 0u);
    EXPECT_EQ(std::this_thread::get_id(), caller);
    order.push_back(i);
  });
  std::vector<std::size_t> expected(10);
  std::iota(expected.begin(), expected.end(), std::size_t{10});
  EXPECT_EQ(order, expected);
}

TEST(ThreadPool, IndexToWorkerMappingIsAPureFunctionOfTheRange) {
  // Static chunk assignment: re-running the same range on the same-sized
  // pool must hand every index to the same worker slot, run after run
  // and pool after pool. (This is what makes per-worker scratch state
  // deterministic.)
  constexpr std::size_t kCount = 500;
  auto mapping = [](ThreadPool& pool) {
    std::vector<std::size_t> owner(kCount);
    pool.parallel_for(0, kCount, 1,
                      [&](std::size_t i, std::size_t w) { owner[i] = w; });
    return owner;
  };
  ThreadPool a(4);
  ThreadPool b(4);
  const std::vector<std::size_t> first = mapping(a);
  EXPECT_EQ(mapping(a), first) << "same pool, second run";
  EXPECT_EQ(mapping(b), first) << "fresh pool of the same size";
  for (std::size_t w : first) EXPECT_LT(w, 4u);
}

TEST(ThreadPool, PoolIsReusableAcrossManyJobs) {
  ThreadPool pool(3);
  std::atomic<std::size_t> total{0};
  for (int job = 0; job < 50; ++job) {
    pool.parallel_for(0, 64, 1, [&](std::size_t, std::size_t) {
      total.fetch_add(1, std::memory_order_relaxed);
    });
  }
  EXPECT_EQ(total.load(), 50u * 64u);
}

TEST(ThreadPool, ExceptionsPropagateToTheCaller) {
  for (std::size_t threads : {1u, 4u}) {
    ThreadPool pool(threads);
    EXPECT_THROW(
        pool.parallel_for(0, 100, 1,
                          [&](std::size_t i, std::size_t) {
                            if (i == 37) throw std::runtime_error("boom@37");
                          }),
        std::runtime_error)
        << threads << " threads";
    // The pool survives a throwing job.
    std::atomic<std::size_t> ok{0};
    pool.parallel_for(0, 10, 1, [&](std::size_t, std::size_t) {
      ok.fetch_add(1, std::memory_order_relaxed);
    });
    EXPECT_EQ(ok.load(), 10u);
  }
}

TEST(ThreadPool, LowestFailingChunkWinsDeterministically) {
  // Two indices throw; the rethrown error must always be the one from
  // the lower-numbered chunk, regardless of wall-clock racing.
  ThreadPool pool(4);
  for (int attempt = 0; attempt < 10; ++attempt) {
    try {
      pool.parallel_for(0, 400, 1, [&](std::size_t i, std::size_t) {
        if (i == 11) throw std::runtime_error("low");
        if (i == 399) throw std::runtime_error("high");
      });
      FAIL() << "parallel_for must rethrow";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "low");
    }
  }
}

}  // namespace
}  // namespace nashlb::util
