#include "adaptive/online.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <stdexcept>

#include "core/cost.hpp"
#include "core/dynamics.hpp"
#include "workload/configs.hpp"

namespace nashlb::adaptive {
namespace {

RateSchedule constant_schedule(const std::vector<double>& phi) {
  RateSchedule s;
  s.start_times = {0.0};
  s.phi = {phi};
  return s;
}

TEST(RateSchedule, ValidatesShape) {
  RateSchedule s;
  EXPECT_THROW(s.validate(), std::invalid_argument);
  s.start_times = {0.0, 10.0};
  s.phi = {{1.0, 2.0}, {2.0, 1.0}};
  EXPECT_NO_THROW(s.validate());
  s.start_times = {5.0, 10.0};  // must start at 0
  EXPECT_THROW(s.validate(), std::invalid_argument);
  s.start_times = {0.0, 0.0};  // not ascending
  EXPECT_THROW(s.validate(), std::invalid_argument);
  s.start_times = {0.0, 10.0};
  s.phi = {{1.0, 2.0}, {2.0}};  // user count changes
  EXPECT_THROW(s.validate(), std::invalid_argument);
}

TEST(RateSchedule, SelectsSegmentByTime) {
  RateSchedule s;
  s.start_times = {0.0, 10.0, 20.0};
  s.phi = {{1.0}, {2.0}, {3.0}};
  EXPECT_DOUBLE_EQ(s.at(0.0)[0], 1.0);
  EXPECT_DOUBLE_EQ(s.at(9.99)[0], 1.0);
  EXPECT_DOUBLE_EQ(s.at(10.0)[0], 2.0);
  EXPECT_DOUBLE_EQ(s.at(25.0)[0], 3.0);
}

TEST(Online, RejectsBadInputs) {
  const std::vector<double> mu{10.0, 5.0};
  const RateSchedule sched = constant_schedule({4.0, 2.0});
  core::StrategyProfile wrong(1, 2);
  EXPECT_THROW((void)simulate_online(mu, sched, wrong),
               std::invalid_argument);
  const RateSchedule overload = constant_schedule({20.0, 2.0});
  core::StrategyProfile ok(2, 2);
  EXPECT_THROW((void)simulate_online(mu, overload, ok),
               std::invalid_argument);
  // All-zero rows violate conservation: rejected up front, not sampled.
  core::StrategyProfile zeros(2, 2);
  EXPECT_THROW((void)simulate_online(mu, sched, zeros),
               std::invalid_argument);
}

TEST(Online, StaticModeReproducesFrozenProfile) {
  // With adapt = false and a constant schedule, the loop is exactly the
  // plain simulation: the measured mean must match the analytic value of
  // the frozen profile.
  core::Instance inst;
  inst.mu = {10.0, 5.0};
  inst.phi = {4.0, 2.0};
  const core::StrategyProfile prop =
      core::StrategyProfile::proportional(inst);
  OnlineOptions opts;
  opts.horizon = 8000.0;
  opts.adapt = false;
  const OnlineResult res = simulate_online(
      inst.mu, constant_schedule(inst.phi), prop, opts);
  EXPECT_EQ(res.strategy_updates, 0u);
  EXPECT_EQ(res.final_profile.max_difference(prop), 0.0);
  EXPECT_NEAR(res.overall_mean_response,
              core::overall_response_time(inst, prop),
              0.05 * res.overall_mean_response);
}

TEST(Online, AdaptsTowardTheNashEquilibriumUnderConstantLoad) {
  // Starting from the (suboptimal) proportional profile with a constant
  // schedule, the measured-estimate controller should drive the system
  // close to the true equilibrium.
  core::Instance inst = workload::table1_instance(0.6, 4);
  const core::StrategyProfile prop =
      core::StrategyProfile::proportional(inst);
  OnlineOptions opts;
  opts.horizon = 4000.0;
  opts.update_period = 2.0;
  opts.window = 30.0;
  const OnlineResult res = simulate_online(
      inst.mu, constant_schedule(inst.phi), prop, opts);
  EXPECT_GT(res.strategy_updates, 100u);

  core::DynamicsOptions dopts;
  dopts.tolerance = 1e-8;
  const core::DynamicsResult eq = core::best_reply_dynamics(inst, dopts);
  const double d_eq = core::overall_response_time(inst, eq.profile);
  const double d_prop = core::overall_response_time(inst, prop);
  // The adapted operating point's measured response is much closer to
  // the equilibrium's than to the starting profile's.
  EXPECT_LT(std::abs(res.overall_mean_response - d_eq),
            0.5 * std::abs(d_prop - d_eq) + 0.05 * d_eq);
  // And the final profile itself certifies: evaluate analytically.
  const double d_final =
      core::overall_response_time(inst, res.final_profile);
  EXPECT_LT(d_final, d_prop);
}

TEST(Online, TracksALoadShift) {
  // Demand doubles mid-run; the adaptive loop must keep the post-shift
  // response time close to the post-shift equilibrium rather than the
  // stale one.
  core::Instance before = workload::table1_instance(0.35, 4);
  core::Instance after = workload::table1_instance(0.7, 4);

  RateSchedule sched;
  sched.start_times = {0.0, 2000.0};
  sched.phi = {before.phi, after.phi};

  core::DynamicsOptions dopts;
  dopts.tolerance = 1e-8;
  const core::StrategyProfile eq_before =
      core::best_reply_dynamics(before, dopts).profile;
  const core::StrategyProfile eq_after =
      core::best_reply_dynamics(after, dopts).profile;

  OnlineOptions opts;
  opts.horizon = 4000.0;
  opts.update_period = 2.0;
  opts.window = 30.0;
  const OnlineResult adaptive_run =
      simulate_online(before.mu, sched, eq_before, opts);
  OnlineOptions frozen = opts;
  frozen.adapt = false;
  const OnlineResult static_run =
      simulate_online(before.mu, sched, eq_before, frozen);

  // Post-shift steady-state windows (skip the adaptation transient).
  auto tail_mean = [&](const OnlineResult& r) {
    double acc = 0.0;
    std::uint64_t jobs = 0;
    for (const WindowReport& w : r.windows) {
      if (w.end_time > 2600.0 && w.end_time <= 4000.0) {
        acc += w.mean_response * static_cast<double>(w.jobs);
        jobs += w.jobs;
      }
    }
    return acc / static_cast<double>(jobs);
  };
  const double adaptive_tail = tail_mean(adaptive_run);
  const double static_tail = tail_mean(static_run);
  const double d_eq_after = core::overall_response_time(after, eq_after);
  const double d_stale = core::overall_response_time(after, eq_before);

  EXPECT_LT(adaptive_tail, static_tail);          // adaptation helps
  EXPECT_NEAR(adaptive_tail, d_eq_after, 0.15 * d_eq_after);
  EXPECT_NEAR(static_tail, d_stale, 0.15 * d_stale);
}

TEST(Online, WindowReportsPartitionTheRun) {
  core::Instance inst;
  inst.mu = {10.0, 5.0};
  inst.phi = {4.0, 2.0};
  OnlineOptions opts;
  opts.horizon = 1000.0;
  opts.report_period = 100.0;
  const OnlineResult res =
      simulate_online(inst.mu, constant_schedule(inst.phi),
                      core::StrategyProfile::proportional(inst), opts);
  ASSERT_GE(res.windows.size(), 10u);
  std::uint64_t windowed = 0;
  for (const WindowReport& w : res.windows) windowed += w.jobs;
  EXPECT_EQ(windowed, res.jobs_completed);
}

}  // namespace
}  // namespace nashlb::adaptive
