// P3 — parallel execution: pooled Jacobi rounds and DES replication
// fan-out (src/util/parallel.hpp).
//
// Two grids, both keyed (m, n, threads):
//   * solver rows — wall time of one Jacobi (Simultaneous) best-reply
//     round at 1, 2, 4 and 8 threads, with the speedup over threads=1
//     and the bitwise profile cross-check (the pooled round must equal
//     the serial round exactly, not approximately);
//   * DES rows — a 64-replication batch of the system simulation, with
//     replications/second and the same exactness check on every
//     replication's sample path (stream family r is pinned to
//     replication r regardless of the executing worker).
//
// Timing convention (docs/PERFORMANCE.md): NASHLB_OBS=ON, NASHLB_CHECK=OFF.
// The speedup acceptance gate (>= 3x at 8 threads) only applies when the
// host actually has >= 8 hardware threads — the JSON records
// `hardware_threads` so readers can interpret the numbers; the
// determinism gate (max_profile_diff <= 1e-12, in practice exactly 0)
// applies everywhere, always.
//
// Outputs: bench_results/parallel.csv and BENCH_parallel.json (gated by
// tools/check_bench.py against the committed baseline).
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common.hpp"
#include "core/dynamics.hpp"
#include "core/types.hpp"
#include "simmodel/replication.hpp"
#include "util/table.hpp"
#include "workload/configs.hpp"

namespace {

using namespace nashlb;

constexpr double kUtilization = 0.6;
constexpr std::size_t kJacobiRounds = 5;  // rounds per timed block
constexpr int kTimingRepeats = 3;         // blocks per cell; min reported
constexpr std::size_t kReplications = 64;
constexpr double kSpeedupGate = 3.0;      // at 8 threads, when hw allows

const std::vector<std::size_t> kThreadSweep = {1, 2, 4, 8};

/// Same heavy-head/long-tail mix as bench_scale: the published 10-user
/// pattern cycled without per-lap attenuation, so every user stays well
/// conditioned at any m.
std::vector<double> scaled_fractions(std::size_t m) {
  const std::vector<double> base = workload::default_user_fractions();
  std::vector<double> q(m);
  double total = 0.0;
  for (std::size_t j = 0; j < m; ++j) {
    q[j] = base[j % base.size()];
    total += q[j];
  }
  for (double& v : q) v /= total;
  return q;
}

/// Table-1-style heterogeneous system scaled to n computers.
core::Instance scaled_instance(std::size_t m, std::size_t n) {
  static const double kClassRates[4] = {10.0, 20.0, 50.0, 100.0};
  std::vector<double> rates(n);
  for (std::size_t i = 0; i < n; ++i) rates[i] = kClassRates[i % 4];
  return workload::make_instance(std::move(rates), scaled_fractions(m),
                                 kUtilization);
}

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct Row {
  std::string kind;  // "jacobi" or "des"
  std::size_t m = 0;
  std::size_t n = 0;
  std::size_t threads = 0;
  double seconds = 0.0;  // per Jacobi round / per replication batch
  double speedup = 1.0;
  double max_profile_diff = 0.0;
  double replications_per_second = 0.0;  // DES rows only
};

/// Times a block of Jacobi rounds at `threads` and returns (seconds per
/// round, final profile). Tolerance 0 keeps the round count fixed unless
/// the dynamics diverges — and divergence, like everything else on this
/// path, is bitwise thread-count-independent.
std::pair<double, core::StrategyProfile> jacobi_block(
    const core::Instance& inst, std::size_t threads) {
  core::DynamicsOptions opts;
  opts.init = core::Initialization::Proportional;
  opts.order = core::UpdateOrder::Simultaneous;
  opts.tolerance = 0.0;
  opts.max_iterations = kJacobiRounds;
  opts.threads = threads;
  double best = 0.0;
  core::StrategyProfile end(inst.num_users(), inst.num_computers());
  std::size_t iterations = kJacobiRounds;
  for (int rep = 0; rep < kTimingRepeats; ++rep) {
    const double t0 = now_seconds();
    core::DynamicsResult res = core::best_reply_dynamics(inst, opts);
    const double dt = now_seconds() - t0;
    if (rep == 0 || dt < best) best = dt;
    iterations = res.iterations;
    end = std::move(res.profile);
  }
  return {best / static_cast<double>(iterations == 0 ? 1 : iterations),
          std::move(end)};
}

std::vector<Row> jacobi_grid(std::size_t m, std::size_t n) {
  const core::Instance inst = scaled_instance(m, n);
  std::vector<Row> rows;
  double serial_seconds = 0.0;
  core::StrategyProfile serial_profile(inst.num_users(),
                                       inst.num_computers());
  for (std::size_t threads : kThreadSweep) {
    Row r;
    r.kind = "jacobi";
    r.m = m;
    r.n = n;
    r.threads = threads;
    auto [seconds, profile] = jacobi_block(inst, threads);
    if (threads == 1) {
      serial_seconds = seconds;
      serial_profile = std::move(profile);
      r.seconds = seconds;
      r.speedup = 1.0;
      r.max_profile_diff = 0.0;
    } else {
      r.seconds = seconds;
      r.speedup = serial_seconds / seconds;
      r.max_profile_diff = serial_profile.max_difference(profile);
    }
    rows.push_back(r);
  }
  return rows;
}

std::vector<Row> des_grid(std::size_t m, std::size_t n) {
  const core::Instance inst = scaled_instance(m, n);
  const core::StrategyProfile profile =
      core::StrategyProfile::proportional(inst);
  simmodel::ReplicationConfig base;
  base.replications = kReplications;
  base.base.horizon = 50.0;
  base.base.warmup = 5.0;

  std::vector<Row> rows;
  double serial_seconds = 0.0;
  std::vector<double> serial_means;
  for (std::size_t threads : kThreadSweep) {
    simmodel::ReplicationConfig cfg = base;
    cfg.threads = threads;
    double best = 0.0;
    simmodel::ReplicatedResult result;
    for (int rep = 0; rep < 2; ++rep) {
      const double t0 = now_seconds();
      result = simmodel::replicate(inst, profile, cfg);
      const double dt = now_seconds() - t0;
      if (rep == 0 || dt < best) best = dt;
    }
    Row r;
    r.kind = "des";
    r.m = m;
    r.n = n;
    r.threads = threads;
    r.seconds = best;
    r.replications_per_second = static_cast<double>(kReplications) / best;
    if (threads == 1) {
      serial_seconds = best;
      serial_means.clear();
      for (const simmodel::SimRunResult& run : result.runs) {
        serial_means.push_back(run.overall_mean_response);
      }
      r.speedup = 1.0;
      r.max_profile_diff = 0.0;
    } else {
      r.speedup = serial_seconds / best;
      double diff = 0.0;
      for (std::size_t k = 0; k < result.runs.size(); ++k) {
        const double d =
            std::abs(result.runs[k].overall_mean_response - serial_means[k]);
        if (d > diff) diff = d;
      }
      r.max_profile_diff = diff;
    }
    rows.push_back(r);
  }
  return rows;
}

void write_json(const std::vector<Row>& rows, unsigned hardware_threads) {
  std::FILE* f = std::fopen("BENCH_parallel.json", "w");
  if (!f) {
    std::fprintf(stderr, "bench_parallel: cannot write BENCH_parallel.json\n");
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"parallel\",\n");
  obs::RunManifest manifest = bench::run_manifest("P3");
  manifest.set("utilization", kUtilization);
  manifest.set("hardware_threads", static_cast<std::int64_t>(hardware_threads));
  std::fprintf(f, "  \"manifest\": %s,\n", manifest.to_json().c_str());
  std::fprintf(f,
               "  \"description\": \"pooled Jacobi rounds and DES "
               "replication fan-out vs the serial path; max_profile_diff "
               "is the bitwise cross-check against threads=1\",\n");
  std::fprintf(f, "  \"hardware_threads\": %u,\n", hardware_threads);
  std::fprintf(f, "  \"utilization\": %.2f,\n", kUtilization);
  std::fprintf(f, "  \"rows\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    const char* timing_field =
        r.kind == "jacobi" ? "round_seconds" : "batch_seconds";
    std::fprintf(f,
                 "    {\"kind\": \"%s\", \"m\": %zu, \"n\": %zu, "
                 "\"threads\": %zu, \"%s\": %.6e, \"speedup\": %.2f, "
                 "\"max_profile_diff\": %.3e",
                 r.kind.c_str(), r.m, r.n, r.threads, timing_field,
                 r.seconds, r.speedup, r.max_profile_diff);
    if (r.kind == "des") {
      std::fprintf(f, ", \"replications_per_second\": %.2f",
                   r.replications_per_second);
    }
    std::fprintf(f, "}%s\n", i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

}  // namespace

int main() {
  bench::banner("P3", "parallel Jacobi rounds and DES replications",
                "Table-1 speed classes, m users at 60% utilization; "
                "threads in {1, 2, 4, 8}; every pooled result is checked "
                "bitwise against the serial path");
  const unsigned hardware_threads = std::thread::hardware_concurrency();

  std::vector<Row> rows;
  for (const auto& [m, n] :
       std::vector<std::pair<std::size_t, std::size_t>>{{256, 64},
                                                        {1024, 64}}) {
    const std::vector<Row> grid = jacobi_grid(m, n);
    rows.insert(rows.end(), grid.begin(), grid.end());
  }
  {
    const std::vector<Row> grid = des_grid(16, 8);
    rows.insert(rows.end(), grid.begin(), grid.end());
  }

  util::Table table({"kind", "m", "n", "threads", "seconds", "speedup",
                     "max |Δ|", "reps/s"});
  auto csv = bench::csv("parallel",
                        {"kind", "m", "n", "threads", "seconds", "speedup",
                         "max_profile_diff", "replications_per_second"});
  for (const Row& r : rows) {
    table.add_row({r.kind, std::to_string(r.m), std::to_string(r.n),
                   std::to_string(r.threads), bench::num(r.seconds),
                   bench::num(r.speedup), bench::num(r.max_profile_diff),
                   r.kind == "des" ? bench::num(r.replications_per_second)
                                   : std::string("-")});
    if (csv) {
      csv->add_row({r.kind, std::to_string(r.m), std::to_string(r.n),
                    std::to_string(r.threads), bench::num(r.seconds),
                    bench::num(r.speedup), bench::num(r.max_profile_diff),
                    bench::num(r.replications_per_second)});
    }
  }
  std::printf("%s\n", table.str().c_str());
  std::printf("hardware threads: %u\n", hardware_threads);

  write_json(rows, hardware_threads);

  bool ok = true;
  for (const Row& r : rows) {
    if (!(r.max_profile_diff <= 1e-12)) {
      std::printf("FAIL: %s m=%zu n=%zu threads=%zu differs from serial "
                  "(max |Δ| = %.3e)\n",
                  r.kind.c_str(), r.m, r.n, r.threads, r.max_profile_diff);
      ok = false;
    }
  }
  if (hardware_threads >= 8) {
    for (const Row& r : rows) {
      const bool gated = r.threads == 8 &&
                         ((r.kind == "jacobi" && r.m == 1024) ||
                          r.kind == "des");
      if (gated && r.speedup < kSpeedupGate) {
        std::printf("FAIL: %s m=%zu n=%zu at 8 threads: speedup %.2fx "
                    "below the %.0fx acceptance gate\n",
                    r.kind.c_str(), r.m, r.n, r.speedup, kSpeedupGate);
        ok = false;
      }
    }
  } else {
    std::printf("speedup gate skipped: host has %u hardware thread(s), "
                "gate requires >= 8\n",
                hardware_threads);
  }
  std::printf("%s; wrote bench_results/parallel.csv and "
              "BENCH_parallel.json\n",
              ok ? "all checks passed" : "CHECKS FAILED");
  return ok ? 0 : 1;
}
