// T1 — Table 1: "System configuration" (§4.2.2).
//
// Reproduces the input table that defines the heterogeneous system used by
// the utilization, per-user and convergence experiments, plus the derived
// quantities (total capacity, the 10-user arrival split) that the other
// benches consume.
#include <cstdio>

#include "common.hpp"
#include "workload/configs.hpp"

int main() {
  using namespace nashlb;
  bench::banner("T1", "Table 1: system configuration",
                "16 heterogeneous computers in 4 speed classes");

  util::Table table({"Relative processing rate", "Number of computers",
                     "Processing rate (jobs/sec)"});
  auto csv = bench::csv("table1_system",
                        {"relative_rate", "count", "rate_jobs_per_sec"});
  for (const workload::SpeedClass& cls : workload::table1_classes()) {
    table.add_row({util::format_fixed(cls.relative_rate, 0),
                   std::to_string(cls.count),
                   util::format_fixed(cls.rate, 0)});
    if (csv) {
      csv->add_row({bench::num(cls.relative_rate),
                    std::to_string(cls.count), bench::num(cls.rate)});
    }
  }
  std::printf("%s\n", table.str().c_str());

  const std::vector<double> mu = workload::table1_rates();
  double cap = 0.0;
  for (double m : mu) cap += m;
  std::printf("total computers: %zu, aggregate capacity: %.0f jobs/sec\n",
              mu.size(), cap);

  std::printf(
      "\nuser population (10 users; arrival fractions from the journal\n"
      "version of the paper, JPDC 65(9) 2005 — the workshop paper omits "
      "them):\n  ");
  for (double q : workload::default_user_fractions()) {
    std::printf("%.2f ", q);
  }
  std::printf("\n");
  return 0;
}
