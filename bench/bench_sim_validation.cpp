// V1 — §4.1 methodology validation: the discrete-event simulation agrees
// with the analytic M/M/1 model for every scheme.
//
// Table 1 system at 60% utilization; each scheme's profile is simulated
// with 5 replications (different random number streams, per the paper)
// and the across-replication mean ± 95% CI is compared against the
// analytic expected response time. The paper's acceptance criterion —
// "standard error less than 5% at the 95% confidence level" — is checked
// and printed.
#include <cstdio>

#include "common.hpp"
#include "core/cost.hpp"
#include "schemes/registry.hpp"
#include "simmodel/replication.hpp"
#include "workload/configs.hpp"

int main() {
  using namespace nashlb;
  bench::banner("V1", "Simulation vs analytic model (all schemes)",
                "Table 1 system, 10 users, rho = 60%, 5 replications of "
                "3000 simulated seconds");

  const core::Instance inst = workload::table1_instance(0.6);

  util::Table table({"scheme", "analytic D (s)", "simulated D (s)",
                     "95% CI half-width", "rel. error", "CI<5%?"});
  auto csv = bench::csv("sim_validation",
                        {"scheme", "analytic", "simulated", "ci_half_width",
                         "relative_error"});

  for (const schemes::SchemePtr& scheme : schemes::paper_schemes(1e-6)) {
    const core::StrategyProfile profile = scheme->solve(inst);
    const double analytic = core::overall_response_time(inst, profile);

    simmodel::ReplicationConfig cfg;
    cfg.base.horizon = 3000.0;
    cfg.base.warmup = 200.0;
    cfg.replications = 5;
    const simmodel::ReplicatedResult sim =
        simmodel::replicate(inst, profile, cfg);

    const double rel_err =
        std::abs(sim.overall_response.mean - analytic) / analytic;
    table.add_row({scheme->name(), bench::num(analytic),
                   bench::num(sim.overall_response.mean),
                   bench::num(sim.overall_response.half_width),
                   util::format_percent(rel_err, 2),
                   sim.overall_response.relative_half_width() < 0.05
                       ? "yes"
                       : "NO"});
    if (csv) {
      csv->add_row({scheme->name(), bench::num(analytic),
                    bench::num(sim.overall_response.mean),
                    bench::num(sim.overall_response.half_width),
                    bench::num(rel_err)});
    }
    std::printf("%-6s total jobs simulated: %llu\n",
                scheme->name().c_str(),
                static_cast<unsigned long long>(sim.total_jobs));
  }
  std::printf("\n%s\n", table.str().c_str());
  return 0;
}
