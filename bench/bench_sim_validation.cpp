// V1 — §4.1 methodology validation: the discrete-event simulation agrees
// with the analytic M/M/1 model for every scheme.
//
// Table 1 system at 60% utilization; each scheme's profile is simulated
// with 5 replications (different random number streams, per the paper)
// and the across-replication mean ± 95% CI is compared against the
// analytic expected response time. The paper's acceptance criterion —
// "standard error less than 5% at the 95% confidence level" — is checked
// and printed.
//
// A second section validates the *distribution*, not just the mean: the
// per-computer sojourn histograms (obs::Histogram, merged across
// replications) of the NASH profile are compared at p50/p90/p99 against
// the exact M/M/1 sojourn quantile -ln(1-q)/(mu_i - lambda_i). Mirrored
// to sim_sojourn_quantiles.csv; tolerance 10% (15% at p99, where the
// per-computer sample of the tail is thinner).
#include <cmath>
#include <cstdio>
#include <optional>
#include <vector>

#include "common.hpp"
#include "core/cost.hpp"
#include "obs/histogram.hpp"
#include "schemes/registry.hpp"
#include "simmodel/replication.hpp"
#include "workload/configs.hpp"

int main() {
  using namespace nashlb;
  bench::banner("V1", "Simulation vs analytic model (all schemes)",
                "Table 1 system, 10 users, rho = 60%, 5 replications of "
                "3000 simulated seconds");

  const core::Instance inst = workload::table1_instance(0.6);

  util::Table table({"scheme", "analytic D (s)", "simulated D (s)",
                     "95% CI half-width", "rel. error", "CI<5%?"});
  auto csv = bench::csv("sim_validation",
                        {"scheme", "analytic", "simulated", "ci_half_width",
                         "relative_error"});

  std::optional<core::StrategyProfile> nash_profile;
  simmodel::ReplicatedResult nash_sim;

  for (const schemes::SchemePtr& scheme : schemes::paper_schemes(1e-6)) {
    const core::StrategyProfile profile = scheme->solve(inst);
    const double analytic = core::overall_response_time(inst, profile);

    simmodel::ReplicationConfig cfg;
    cfg.base.horizon = 3000.0;
    cfg.base.warmup = 200.0;
    cfg.replications = 5;
    const simmodel::ReplicatedResult sim =
        simmodel::replicate(inst, profile, cfg);
    if (scheme->name() == "NASH_P") {
      nash_profile = profile;
      nash_sim = sim;
    }

    const double rel_err =
        std::abs(sim.overall_response.mean - analytic) / analytic;
    table.add_row({scheme->name(), bench::num(analytic),
                   bench::num(sim.overall_response.mean),
                   bench::num(sim.overall_response.half_width),
                   util::format_percent(rel_err, 2),
                   sim.overall_response.relative_half_width() < 0.05
                       ? "yes"
                       : "NO"});
    if (csv) {
      csv->add_row({scheme->name(), bench::num(analytic),
                    bench::num(sim.overall_response.mean),
                    bench::num(sim.overall_response.half_width),
                    bench::num(rel_err)});
    }
    std::printf("%-6s total jobs simulated: %llu\n",
                scheme->name().c_str(),
                static_cast<unsigned long long>(sim.total_jobs));
  }
  std::printf("\n%s\n", table.str().c_str());

  // --- Sojourn-time quantiles (NASH profile) -----------------------------
  // Each computer is M/M/1, so its sojourn time is Exponential with rate
  // mu_i - lambda_i and exact quantile -ln(1-q)/(mu_i - lambda_i). The
  // simulated quantiles come from the per-facility obs::Histogram, merged
  // across replications. Skipped in an obs-disabled build (the histograms
  // are no-op twins there).
  if (obs::kEnabled && nash_profile.has_value()) {
    const std::size_t n = inst.num_computers();
    std::vector<obs::Histogram> merged(n);
    for (const simmodel::SimRunResult& run : nash_sim.runs) {
      for (std::size_t i = 0; i < n; ++i) {
        merged[i].merge(run.computer_sojourn[i]);
      }
    }

    util::Table qtable({"computer", "lambda (1/s)", "q", "exact (s)",
                        "simulated (s)", "rel. error", "<tol?"});
    auto qcsv = bench::csv("sim_sojourn_quantiles",
                           {"computer", "lambda", "mu", "q", "exact",
                            "simulated", "relative_error"});
    const double quantiles[] = {0.50, 0.90, 0.99};
    bool all_ok = true;
    for (std::size_t i = 0; i < n; ++i) {
      double lambda = 0.0;
      for (std::size_t j = 0; j < inst.num_users(); ++j) {
        lambda += nash_profile->at(j, i) * inst.phi[j];
      }
      if (merged[i].count() == 0) continue;  // unused computer
      for (double q : quantiles) {
        const double exact = -std::log1p(-q) / (inst.mu[i] - lambda);
        const double simulated = merged[i].quantile(q);
        const double rel_err = std::abs(simulated - exact) / exact;
        const double tol = q > 0.95 ? 0.15 : 0.10;
        const bool ok = rel_err < tol;
        all_ok = all_ok && ok;
        qtable.add_row({std::to_string(i), bench::num(lambda), bench::num(q),
                        bench::num(exact), bench::num(simulated),
                        util::format_percent(rel_err, 2), ok ? "yes" : "NO"});
        if (qcsv) {
          qcsv->add_row({std::to_string(i), bench::num(lambda),
                         bench::num(inst.mu[i]), bench::num(q),
                         bench::num(exact), bench::num(simulated),
                         bench::num(rel_err)});
        }
      }
    }
    std::printf(
        "NASH sojourn quantiles vs exact M/M/1 (tolerance 10%%, 15%% at "
        "p99): %s\n%s\n",
        all_ok ? "all within tolerance" : "VIOLATIONS above",
        qtable.str().c_str());
  }
  return 0;
}
