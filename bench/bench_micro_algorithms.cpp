// A5a — timing micro-benchmarks for the algorithmic kernels
// (google-benchmark): the OPTIMAL best reply (O(n log n), Theorem 2.2's
// complexity remark), one full best-reply round, the water-filling
// allocators, the simplex projection and the fairness index.
#include <benchmark/benchmark.h>

#include <numeric>
#include <vector>

#include "core/best_reply.hpp"
#include "core/dynamics.hpp"
#include "core/simplex.hpp"
#include "core/waterfill.hpp"
#include "stats/fairness.hpp"
#include "stats/rng.hpp"

namespace {

using namespace nashlb;

std::vector<double> random_rates(std::size_t n, std::uint64_t seed) {
  stats::Xoshiro256 rng(seed);
  std::vector<double> mu(n);
  for (double& m : mu) m = 1.0 + 99.0 * rng.next_double();
  return mu;
}

core::Instance make_instance(std::size_t n, std::size_t m,
                             double util = 0.6) {
  core::Instance inst;
  inst.mu = random_rates(n, 42);
  const double cap =
      std::accumulate(inst.mu.begin(), inst.mu.end(), 0.0);
  inst.phi.assign(m, util * cap / static_cast<double>(m));
  return inst;
}

void BM_WaterfillSqrt(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::vector<double> mu = random_rates(n, 1);
  const double demand =
      0.6 * std::accumulate(mu.begin(), mu.end(), 0.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::waterfill_sqrt(mu, demand));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_WaterfillSqrt)->RangeMultiplier(4)->Range(16, 4096)->Complexity();

void BM_WaterfillLinear(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::vector<double> mu = random_rates(n, 2);
  const double demand =
      0.6 * std::accumulate(mu.begin(), mu.end(), 0.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::waterfill_linear(mu, demand));
  }
}
BENCHMARK(BM_WaterfillLinear)->RangeMultiplier(4)->Range(16, 4096);

void BM_BestReply(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const core::Instance inst = make_instance(n, 10);
  const core::StrategyProfile s = core::StrategyProfile::proportional(inst);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::best_reply(inst, s, 0));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_BestReply)->RangeMultiplier(4)->Range(16, 4096)->Complexity();

void BM_DynamicsRound(benchmark::State& state) {
  // Cost of one full round of m best replies on an n-computer system.
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto m = static_cast<std::size_t>(state.range(1));
  const core::Instance inst = make_instance(n, m);
  for (auto _ : state) {
    core::DynamicsOptions opts;
    opts.tolerance = 0.0;   // never satisfied
    opts.max_iterations = 1;  // exactly one round
    benchmark::DoNotOptimize(core::best_reply_dynamics(inst, opts));
  }
}
BENCHMARK(BM_DynamicsRound)
    ->Args({16, 4})
    ->Args({16, 16})
    ->Args({16, 64})
    ->Args({256, 16})
    ->Args({1024, 16});

void BM_NashToConvergence(benchmark::State& state) {
  // End-to-end equilibrium computation on the paper's system scale.
  const auto m = static_cast<std::size_t>(state.range(0));
  const core::Instance inst = make_instance(16, m);
  for (auto _ : state) {
    core::DynamicsOptions opts;
    opts.tolerance = 1e-6;
    opts.max_iterations = 5000;
    benchmark::DoNotOptimize(core::best_reply_dynamics(inst, opts));
  }
}
BENCHMARK(BM_NashToConvergence)->Arg(4)->Arg(10)->Arg(32);

void BM_SimplexProjection(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  stats::Xoshiro256 rng(3);
  std::vector<double> v(n);
  for (double& x : v) x = 4.0 * (rng.next_double() - 0.5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::project_to_simplex(v));
  }
}
BENCHMARK(BM_SimplexProjection)->RangeMultiplier(8)->Range(16, 8192);

void BM_FairnessIndex(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  stats::Xoshiro256 rng(4);
  std::vector<double> v(n);
  for (double& x : v) x = rng.next_double_open();
  for (auto _ : state) {
    benchmark::DoNotOptimize(stats::fairness_index(v));
  }
}
BENCHMARK(BM_FairnessIndex)->Arg(10)->Arg(1000);

}  // namespace

BENCHMARK_MAIN();
