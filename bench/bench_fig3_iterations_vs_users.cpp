// F3 — Figure 3: "Convergence of best reply algorithms" (§4.2.1).
//
// Iterations needed to reach the equilibrium for a 16-computer system
// shared by 4..32 users, NASH_0 vs NASH_P. Expected shape: iteration
// count grows with the number of users; NASH_P sits below NASH_0 at
// every population size.
#include <cstdio>

#include "common.hpp"
#include "schemes/nash.hpp"
#include "workload/configs.hpp"

int main() {
  using namespace nashlb;
  bench::banner("F3", "Figure 3: iterations to equilibrium vs users",
                "Table 1 system, 4..32 users, utilization 60%, eps = 1e-4");

  util::Table table({"users", "NASH_0 iterations", "NASH_P iterations"});
  auto csv = bench::csv("fig3_iterations_vs_users",
                        {"users", "nash0_iters", "nashp_iters"});
  for (std::size_t m = 4; m <= 32; m += 4) {
    const core::Instance inst = workload::table1_instance(0.6, m);
    const auto r0 = schemes::NashScheme(core::Initialization::Zero, 1e-4,
                                        5000)
                        .solve_with_trace(inst);
    const auto rp = schemes::NashScheme(core::Initialization::Proportional,
                                        1e-4, 5000)
                        .solve_with_trace(inst);
    const std::string i0 =
        r0.converged ? std::to_string(r0.iterations) : "no convergence";
    const std::string ip =
        rp.converged ? std::to_string(rp.iterations) : "no convergence";
    table.add_row({std::to_string(m), i0, ip});
    if (csv) csv->add_row({std::to_string(m), i0, ip});
  }
  std::printf("%s\n", table.str().c_str());
  std::printf(
      "paper's shape: both curves grow with m; NASH_P below NASH_0 "
      "throughout.\n");
  return 0;
}
