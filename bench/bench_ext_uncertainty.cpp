// A6 — extension: load balancing under uncertainty (§5 "future work").
//
// In a real deployment users estimate available processing rates from run
// queue lengths; estimates are noisy. This sweep runs the distributed
// ring protocol with log-normal multiplicative estimation noise of
// increasing sigma and reports how far the resulting operating point
// drifts from the exact Nash equilibrium, and what that costs users.
#include <cstdio>

#include "common.hpp"
#include "core/cost.hpp"
#include "core/equilibrium.hpp"
#include "distributed/ring_protocol.hpp"
#include "workload/configs.hpp"

int main() {
  using namespace nashlb;
  bench::banner("A6", "Extension: noisy run-queue estimation",
                "Table 1 system, 10 users, rho = 60%, ring protocol, "
                "200-round budget");

  const core::Instance inst = workload::table1_instance(0.6);

  distributed::RingOptions exact;
  exact.tolerance = 1e-8;
  const distributed::RingResult clean =
      distributed::run_ring_protocol(inst, exact);
  const double d_clean =
      core::overall_response_time(inst, clean.profile);

  util::Table table({"noise sigma", "profile drift (max |ds|)",
                     "overall D (s)", "D penalty", "max best-reply gain"});
  auto csv = bench::csv("ext_uncertainty",
                        {"sigma", "drift", "overall_d", "penalty",
                         "max_gain"});
  for (double sigma : {0.0, 0.01, 0.02, 0.05, 0.1, 0.2}) {
    distributed::RingOptions o;
    o.tolerance = 1e-8;
    o.noise_sigma = sigma;
    o.max_rounds = 200;
    o.seed = 12345;
    const distributed::RingResult r =
        distributed::run_ring_protocol(inst, o);
    const double d = core::overall_response_time(inst, r.profile);
    const double gain = core::max_best_reply_gain(inst, r.profile);
    table.add_row({bench::num(sigma),
                   bench::num(r.profile.max_difference(clean.profile)),
                   bench::num(d), bench::num(d - d_clean),
                   bench::num(gain)});
    if (csv) {
      csv->add_row({bench::num(sigma),
                    bench::num(r.profile.max_difference(clean.profile)),
                    bench::num(d), bench::num(d - d_clean),
                    bench::num(gain)});
    }
  }
  std::printf("%s\n", table.str().c_str());
  std::printf(
      "conclusion: the dynamics is robust — small estimation noise keeps\n"
      "the system in a neighbourhood of the equilibrium whose response-\n"
      "time penalty grows smoothly with sigma.\n");
  return 0;
}
