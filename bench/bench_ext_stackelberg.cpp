// A8 — extension: Stackelberg (leader/follower) load balancing, the
// alternative game-theoretic model from the paper's "Past results"
// (Roughgarden, STOC 2001).
//
// Sweeps the centrally-controlled share beta from 0 (pure Wardrop = IOS)
// to 1 (pure optimum = GOS) on the Table 1 system and reports the induced
// overall response time, its ratio to the optimum, and Roughgarden's
// 1/beta guarantee — situating the paper's NASH point (decentralized,
// per-user) against the leader/follower spectrum.
#include <cstdio>

#include "common.hpp"
#include "schemes/metrics.hpp"
#include "schemes/nash.hpp"
#include "schemes/stackelberg.hpp"
#include "workload/configs.hpp"

int main() {
  using namespace nashlb;
  bench::banner("A8", "Extension: Stackelberg (LLF) leader share sweep",
                "Table 1 system, rho = 60%; beta = leader's flow share");

  const core::Instance inst = workload::table1_instance(0.6);
  const double d_opt = schemes::stackelberg_response_time(
      inst, schemes::stackelberg_llf(inst, 1.0));
  const schemes::Metrics nash = schemes::evaluate(
      inst, schemes::NashScheme(core::Initialization::Proportional, 1e-6)
                .solve(inst));

  util::Table table({"beta", "induced D (s)", "D / D_opt",
                     "1/beta bound"});
  auto csv = bench::csv("ext_stackelberg",
                        {"beta", "induced_d", "ratio_to_opt"});
  for (double beta : {0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9,
                      1.0}) {
    const double d = schemes::stackelberg_response_time(
        inst, schemes::stackelberg_llf(inst, beta));
    table.add_row({util::format_fixed(beta, 1), bench::num(d),
                   util::format_fixed(d / d_opt, 4),
                   beta > 0.0 ? util::format_fixed(1.0 / beta, 2) : "-"});
    if (csv) {
      csv->add_row({util::format_fixed(beta, 2), bench::num(d),
                    util::format_fixed(d / d_opt, 6)});
    }
  }
  std::printf("%s\n", table.str().c_str());
  std::printf("for reference, the paper's NASH point: D = %s s "
              "(D/D_opt = %.4f), fully decentralized (beta = 0 control).\n",
              bench::num(nash.overall_response_time).c_str(),
              nash.overall_response_time / d_opt);
  std::printf(
      "reading: a modest centrally-controlled share closes most of the\n"
      "Wardrop-vs-optimal gap; the per-user NASH equilibrium achieves a\n"
      "comparable ratio with no central control at all.\n");
  return 0;
}
