// P1 — performance baseline profile.
//
// The machine-readable "trajectory to beat" for future performance work:
// runs the Table 1 system (10 users, 60% utilization) under every scheme
// in the registry and records, per scheme, solver wall time (min and mean
// over repeats), iteration count, the final best-reply gap, and the
// analytic response time / fairness of the allocation. Three further
// sections exercise the observability layer end-to-end:
//
//   * a per-iteration convergence trace of the NASH dynamics (the
//     Figure 2 experiment, now recorded by the library itself through
//     obs::TraceSink instead of a bespoke bench loop);
//   * a per-replication timing trace of the DES system simulation, with
//     aggregate job throughput;
//   * the DES kernel + facility counters for a canonical M/M/1 run.
//
// The per-scheme solve times are collected in an obs::Histogram, so the
// baseline carries the latency *distribution* (p50/p95/p99), not just min
// and mean — tools/check_bench.py gates regressions against these columns.
// The NASH_P dynamics run additionally records a span trace (per-round
// spans enclosing per-user best-reply spans) exported as Chrome
// trace-event JSON for chrome://tracing / Perfetto.
//
// Outputs (all under bench_results/):
//   profile_baseline.csv      one row per scheme (the headline artifact)
//   profile_nash_trace.csv    per-iteration NASH_P and NASH_0 traces
//   profile_nash_trace.jsonl  the NASH_P trace as JSON-lines
//   profile_nash_spans.json   NASH_P round/reply spans (Chrome trace JSON)
//   profile_replications.csv  per-replication wall/sim time and jobs
//   profile_des_counters.csv  DES kernel/facility counters and timers
#include <cstdio>
#include <functional>
#include <memory>
#include <utility>

#include "common.hpp"
#include "core/dynamics.hpp"
#include "core/equilibrium.hpp"
#include "des/facility.hpp"
#include "des/simulator.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "schemes/metrics.hpp"
#include "schemes/nash.hpp"
#include "schemes/registry.hpp"
#include "simmodel/replication.hpp"
#include "stats/distributions.hpp"
#include "stats/rng.hpp"
#include "util/plot.hpp"
#include "workload/configs.hpp"

namespace {

constexpr double kUtilization = 0.6;
constexpr int kSolveRepeats = 25;

/// Times `repeats` solves of `scheme` into a latency histogram (enough
/// samples for the p50/p95/p99 columns to be meaningful).
nashlb::obs::Histogram time_solves(const nashlb::schemes::Scheme& scheme,
                                   const nashlb::core::Instance& inst,
                                   int repeats) {
  using namespace nashlb;
  obs::Histogram hist;
  obs::Timer timer;
  for (int r = 0; r < repeats; ++r) {
    obs::ScopedTimer scope(timer);
    const core::StrategyProfile p = scheme.solve(inst);
    (void)p;
    hist.record(scope.elapsed_seconds());
  }
  return hist;
}

}  // namespace

int main() {
  using namespace nashlb;
  bench::banner("P1", "performance baseline profile",
                "Table 1 system, 10 users, utilization 60%; all registered "
                "schemes");
  // Re-stamp the banner's sidecar with this run's parameters.
  obs::RunManifest manifest = bench::run_manifest("P1");
  manifest.set("utilization", kUtilization);
  manifest.set("solve_repeats", static_cast<std::int64_t>(kSolveRepeats));
  bench::write_manifest(manifest, "P1");

  const core::Instance inst = workload::table1_instance(kUtilization);

  // --- Section 1: per-scheme solver baseline -----------------------------
  util::Table table({"scheme", "solve min (s)", "solve p50 (s)",
                     "solve p99 (s)", "iterations", "best-reply gap (s)",
                     "overall D (s)", "fairness"});
  auto baseline = bench::csv(
      "profile_baseline",
      {"scheme", "solve_seconds_min", "solve_seconds_mean",
       "solve_seconds_p50", "solve_seconds_p95", "solve_seconds_p99",
       "iterations", "best_reply_gap", "overall_response", "fairness"});
  for (const std::string& name : schemes::registered_scheme_names()) {
    const schemes::SchemePtr scheme = schemes::make_scheme(name);
    // Warm-up solve (page in code/data), then timed repeats.
    const core::StrategyProfile profile = scheme->solve(inst);
    const obs::Histogram solve_hist = time_solves(*scheme, inst, kSolveRepeats);

    // Iteration count: the NASH variants iterate best replies; every other
    // registered scheme is a one-shot closed-form/convex solve.
    std::size_t iterations = 1;
    if (const auto* nash =
            dynamic_cast<const schemes::NashScheme*>(scheme.get())) {
      iterations = nash->solve_with_trace(inst).iterations;
    }

    const double gap = core::max_best_reply_gain(inst, profile);
    const schemes::Metrics metrics = schemes::evaluate(inst, profile);

    table.add_row({name, bench::num(solve_hist.min()),
                   bench::num(solve_hist.p50()), bench::num(solve_hist.p99()),
                   std::to_string(iterations), bench::num(gap),
                   bench::num(metrics.overall_response_time),
                   bench::num(metrics.fairness)});
    if (baseline) {
      baseline->add_row({name, bench::num(solve_hist.min()),
                         bench::num(solve_hist.mean()),
                         bench::num(solve_hist.p50()),
                         bench::num(solve_hist.quantile(0.95)),
                         bench::num(solve_hist.p99()),
                         std::to_string(iterations), bench::num(gap),
                         bench::num(metrics.overall_response_time),
                         bench::num(metrics.fairness)});
    }
  }
  std::printf("%s\n", table.str().c_str());

  // --- Section 2: NASH convergence trace via the obs layer ---------------
  // The same experiment as Figure 2 (eps = 1e-9 so the full decay is
  // visible), but the per-iteration records now come from the dynamics
  // itself through a TraceSink: norm, equilibrium certificates, cut
  // indices and wall time per round.
  core::DynamicsOptions dyn_opts;
  dyn_opts.tolerance = 1e-9;
  dyn_opts.max_iterations = 500;

  obs::TraceSink trace_p(core::dynamics_trace_columns());
  obs::SpanTracer spans_p;
  dyn_opts.init = core::Initialization::Proportional;
  dyn_opts.trace = &trace_p;
  dyn_opts.spans = &spans_p;
  const core::DynamicsResult rp = core::best_reply_dynamics(inst, dyn_opts);
  dyn_opts.spans = nullptr;

  obs::TraceSink trace_0(core::dynamics_trace_columns());
  dyn_opts.init = core::Initialization::Zero;
  dyn_opts.trace = &trace_0;
  const core::DynamicsResult r0 = core::best_reply_dynamics(inst, dyn_opts);

  auto trace_csv = bench::csv("profile_nash_trace",
                              {"variant", "iteration", "norm",
                               "best_reply_gap", "max_kkt_residual",
                               "min_cut", "max_cut", "wall_seconds"});
  if (trace_csv) {
    const auto mirror = [&](const char* variant, const obs::TraceSink& t) {
      for (const std::vector<obs::Cell>& row : t.rows()) {
        std::vector<std::string> cells{variant};
        for (const obs::Cell& cell : row) {
          cells.push_back(obs::cell_to_string(cell));
        }
        trace_csv->add_row(cells);
      }
    };
    mirror("NASH_P", trace_p);
    mirror("NASH_0", trace_0);
  }
  trace_p.write_jsonl("bench_results/profile_nash_trace.jsonl");
  if (obs::kEnabled) {
    spans_p.write_chrome_trace("bench_results/profile_nash_spans.json");
    std::printf(
        "NASH_P span trace: %zu spans (load bench_results/"
        "profile_nash_spans.json in chrome://tracing or Perfetto)\n",
        spans_p.size());
  }

  // Read the norms back out of the traces (falls back to the in-result
  // history in an obs-disabled build, where the sink records nothing).
  std::vector<double> norm_p = trace_p.column_as_doubles("norm");
  std::vector<double> norm_0 = trace_0.column_as_doubles("norm");
  if (norm_p.empty()) norm_p = rp.norm_history;
  if (norm_0.empty()) norm_0 = r0.norm_history;

  util::PlotOptions plot_opts;
  plot_opts.log_y = true;
  plot_opts.height = 12;
  std::printf(
      "NASH convergence trace (library-recorded; log norm vs iteration):\n"
      "%s\n",
      util::render_plot(
          {{"0 NASH_0", norm_0}, {"P NASH_P", norm_p}}, plot_opts)
          .c_str());
  std::printf(
      "NASH_P: %zu rounds, final gap %s s; NASH_0: %zu rounds "
      "(Fig. 2 shape: geometric decay, NASH_P starts lower)\n\n",
      rp.iterations, bench::num(core::max_best_reply_gain(inst, rp.profile)).c_str(),
      r0.iterations);

  // --- Section 3: DES system simulation throughput -----------------------
  simmodel::ReplicationConfig rep_cfg;
  rep_cfg.base.horizon = 300.0;
  rep_cfg.base.warmup = 30.0;
  rep_cfg.replications = 5;
  obs::TraceSink rep_trace(simmodel::replication_trace_columns());
  rep_cfg.trace = &rep_trace;
  const simmodel::ReplicatedResult rep =
      simmodel::replicate(inst, rp.profile, rep_cfg);
  rep_trace.write_csv("bench_results/profile_replications.csv");

  double wall_total = 0.0;
  for (double w : rep.wall_seconds) wall_total += w;
  std::printf(
      "DES system sim: %llu jobs over %zu replications, %s CPU-seconds "
      "total -> %s jobs/CPU-second\n",
      static_cast<unsigned long long>(rep.total_jobs),
      rep.wall_seconds.size(), bench::num(wall_total).c_str(),
      bench::num(static_cast<double>(rep.total_jobs) / wall_total).c_str());

  // --- Section 4: DES kernel/facility counters (canonical M/M/1) ---------
  {
    des::Simulator sim;
    des::Facility server(sim, "mm1", 1);
    stats::Xoshiro256 rng(0x9e3779b97f4a7c15ULL);
    const stats::Exponential arrival(60.0), service(100.0);  // rho = 0.6
    obs::Timer wall;
    std::function<void(des::SimTime)> arrive = [&](des::SimTime) {
      server.request(service.sample(rng), [](des::SimTime) {});
      sim.schedule(arrival.sample(rng), arrive);
    };
    {
      obs::ScopedTimer scope(wall);
      sim.schedule(arrival.sample(rng), arrive);
      sim.run(1'000'000);
    }

    obs::Registry reg;
    sim.publish_metrics(reg);
    server.publish_metrics(reg, sim.now());
    reg.timer("host.wall").add_batch(wall.total_seconds(),
                                     sim.events_executed());
    reg.write_csv("bench_results/profile_des_counters.csv");
    std::printf(
        "DES kernel: %llu events in %s s -> %s events/second "
        "(mm1 utilization %s)\n",
        static_cast<unsigned long long>(sim.events_executed()),
        bench::num(wall.total_seconds()).c_str(),
        bench::num(static_cast<double>(sim.events_executed()) /
                   wall.total_seconds())
            .c_str(),
        bench::num(server.utilization(sim.now())).c_str());
  }

  std::printf(
      "\nwrote bench_results/profile_baseline.csv (+ nash trace, "
      "replications, des counters) — the baseline future perf PRs "
      "measure against; see docs/OBSERVABILITY.md for schemas.\n");
  return 0;
}
