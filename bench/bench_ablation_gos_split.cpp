// A1 — ablation: GOS per-user split policy.
//
// The GOS objective fixes only aggregate computer loads; any per-user
// split achieving them is globally optimal. Figure 5's unfair GOS is one
// such split. This ablation compares GreedyFill (reproduces the paper's
// unfairness) against Uniform (identical fractions for everyone) across
// the utilization sweep: both attain the same overall response time; only
// the fairness differs — i.e. GOS's unfairness is a *choice of split*,
// not a price of optimality.
#include <cstdio>

#include "common.hpp"
#include "schemes/gos.hpp"
#include "schemes/metrics.hpp"
#include "workload/configs.hpp"

int main() {
  using namespace nashlb;
  bench::banner("A1", "Ablation: GOS split policy (GreedyFill vs Uniform)",
                "Table 1 system, 10 users, rho = 10%..90%");

  const schemes::GlobalOptimalScheme greedy(schemes::GosSplit::GreedyFill);
  const schemes::GlobalOptimalScheme uniform(schemes::GosSplit::Uniform);

  util::Table table({"utilization", "D greedy", "D uniform", "D diff",
                     "fairness greedy", "fairness uniform"});
  auto csv = bench::csv("ablation_gos_split",
                        {"utilization", "d_greedy", "d_uniform",
                         "fair_greedy", "fair_uniform"});
  for (int pct = 10; pct <= 90; pct += 10) {
    const double rho = pct / 100.0;
    const core::Instance inst = workload::table1_instance(rho);
    const schemes::Metrics mg = schemes::evaluate(inst, greedy.solve(inst));
    const schemes::Metrics mu = schemes::evaluate(inst, uniform.solve(inst));
    table.add_row({util::format_percent(rho),
                   bench::num(mg.overall_response_time),
                   bench::num(mu.overall_response_time),
                   bench::num(mg.overall_response_time -
                              mu.overall_response_time),
                   util::format_fixed(mg.fairness, 3),
                   util::format_fixed(mu.fairness, 3)});
    if (csv) {
      csv->add_row({util::format_fixed(rho, 2),
                    bench::num(mg.overall_response_time),
                    bench::num(mu.overall_response_time),
                    util::format_fixed(mg.fairness, 4),
                    util::format_fixed(mu.fairness, 4)});
    }
  }
  std::printf("%s\n", table.str().c_str());
  std::printf(
      "conclusion: the overall optimum is split-invariant (D diff ~ 0);\n"
      "fairness is not — the paper's unfair GOS is one admissible split.\n");
  return 0;
}
