// A2 — ablation: acceptance tolerance epsilon.
//
// The distributed algorithm stops when the per-round norm falls to eps.
// This sweep shows the cost/accuracy trade: rounds to converge, the
// remaining best-reply gain (distance from true equilibrium in response-
// time units), and the overall response-time error vs a tight reference.
#include <cstdio>

#include "common.hpp"
#include "core/cost.hpp"
#include "core/equilibrium.hpp"
#include "schemes/nash.hpp"
#include "workload/configs.hpp"

int main() {
  using namespace nashlb;
  bench::banner("A2", "Ablation: stopping tolerance eps",
                "Table 1 system, 10 users, rho = 60%, NASH_P");

  const core::Instance inst = workload::table1_instance(0.6);
  const core::StrategyProfile reference =
      schemes::NashScheme(core::Initialization::Proportional, 1e-12, 5000)
          .solve(inst);
  const double d_ref = core::overall_response_time(inst, reference);

  util::Table table({"eps", "rounds", "max best-reply gain (s)",
                     "overall D error vs eps=1e-12"});
  auto csv = bench::csv("ablation_tolerance",
                        {"eps", "rounds", "max_gain", "d_error"});
  for (double eps : {1e-1, 1e-2, 1e-3, 1e-4, 1e-6, 1e-8, 1e-10}) {
    const auto res =
        schemes::NashScheme(core::Initialization::Proportional, eps, 5000)
            .solve_with_trace(inst);
    const double gain = core::max_best_reply_gain(inst, res.profile);
    const double err =
        std::abs(core::overall_response_time(inst, res.profile) - d_ref);
    table.add_row({bench::num(eps), std::to_string(res.iterations),
                   bench::num(gain), bench::num(err)});
    if (csv) {
      csv->add_row({bench::num(eps), std::to_string(res.iterations),
                    bench::num(gain), bench::num(err)});
    }
  }
  std::printf("%s\n", table.str().c_str());
  std::printf(
      "conclusion: rounds grow ~logarithmically in 1/eps while the\n"
      "equilibrium error falls in lockstep; the paper's eps ~ 1e-2..1e-4\n"
      "is already within measurement noise of the exact equilibrium.\n");
  return 0;
}
