// V2 — the NASH *distributed* algorithm (§3) as a message-passing ring
// protocol, validated against the in-memory dynamics and profiled for
// deployment cost.
//
// Part 1: with exact run-queue monitoring the ring protocol must perform
// the identical sequence of best replies — same rounds, same equilibrium.
// Part 2: simulated wall-clock convergence latency and message count as
// the one-way link latency varies (the decentralization price the paper
// argues is worth paying).
#include <cstdio>

#include "common.hpp"
#include "core/dynamics.hpp"
#include "distributed/ring_protocol.hpp"
#include "workload/configs.hpp"

int main() {
  using namespace nashlb;
  bench::banner("V2", "Distributed ring protocol vs in-memory dynamics",
                "Table 1 system, 10 users, rho = 60%, eps = 1e-4");

  const core::Instance inst = workload::table1_instance(0.6);
  const double eps = 1e-4;

  core::DynamicsOptions dopts;
  dopts.tolerance = eps;
  const core::DynamicsResult mem = core::best_reply_dynamics(inst, dopts);

  distributed::RingOptions ropts;
  ropts.tolerance = eps;
  const distributed::RingResult ring =
      distributed::run_ring_protocol(inst, ropts);

  std::printf("in-memory dynamics : %zu rounds, converged=%s\n",
              mem.iterations, mem.converged ? "yes" : "no");
  std::printf("ring protocol      : %zu rounds, converged=%s, "
              "%zu messages, %.4f simulated seconds\n",
              ring.rounds, ring.converged ? "yes" : "no", ring.messages,
              ring.finish_time);
  std::printf("profiles identical : %s (max |diff| = %.2e)\n\n",
              ring.profile.max_difference(mem.profile) < 1e-12 ? "yes"
                                                               : "NO",
              ring.profile.max_difference(mem.profile));

  util::Table table({"link latency (s)", "rounds", "messages",
                     "convergence latency (s)"});
  auto csv = bench::csv("distributed_ring",
                        {"link_latency", "rounds", "messages",
                         "finish_time"});
  for (double latency : {1e-4, 1e-3, 1e-2, 1e-1}) {
    distributed::RingOptions o;
    o.tolerance = eps;
    o.link_latency = latency;
    const distributed::RingResult r =
        distributed::run_ring_protocol(inst, o);
    table.add_row({bench::num(latency), std::to_string(r.rounds),
                   std::to_string(r.messages), bench::num(r.finish_time)});
    if (csv) {
      csv->add_row({bench::num(latency), std::to_string(r.rounds),
                    std::to_string(r.messages),
                    bench::num(r.finish_time)});
    }
  }
  std::printf("%s\n", table.str().c_str());
  std::printf(
      "the equilibrium (and round count) is latency-invariant; only the\n"
      "wall-clock convergence time scales with the network.\n");
  return 0;
}
