// A11 — extension: algorithmic mechanism design (truthful payments),
// the authors' immediate follow-up to the reproduced paper (Grosu &
// Chronopoulos, IEEE CLUSTER 2002), built on this library's GOS
// water-filling.
//
// The computers privately know their speeds; the mechanism allocates the
// globally optimal flow on *claimed* speeds and pays each computer the
// Archer–Tardos one-parameter payment. Two tables:
//   1. truthful outcome per computer on the Table 1 speed classes:
//      work, payment, profit (all non-negative — voluntary participation);
//   2. one computer's profit as it misreports its cost by a factor —
//      maximized at the truth (dominant-strategy incentive compatibility).
#include <cstdio>
#include <vector>

#include "common.hpp"
#include "mechanism/payments.hpp"
#include "workload/configs.hpp"

int main() {
  using namespace nashlb;
  bench::banner("A11", "Extension: truthful payment mechanism",
                "Table 1 speed classes as strategic computers; "
                "demand = 60% of capacity");

  // Two computers per Table 1 speed class: enough redundancy that no
  // computer is a monopolist at 60% demand (a truthful payment only
  // exists when the others could carry the load without the agent).
  std::vector<double> costs;
  for (const workload::SpeedClass& cls : workload::table1_classes()) {
    costs.push_back(1.0 / cls.rate);
    costs.push_back(1.0 / cls.rate);
  }
  const double phi = 0.6 * 2.0 * (10.0 + 20.0 + 50.0 + 100.0);

  util::Table table({"computer", "true rate", "work (jobs/s)",
                     "payment (per sec)", "cost (per sec)",
                     "profit (per sec)"});
  auto csv = bench::csv("ext_mechanism",
                        {"computer", "rate", "work", "payment", "profit"});
  for (std::size_t i = 0; i < costs.size(); ++i) {
    const mechanism::AgentOutcome outcome =
        mechanism::evaluate_agent(costs, phi, i);
    const double cost = costs[i] * outcome.work;
    table.add_row({std::to_string(i + 1),
                   util::format_fixed(1.0 / costs[i], 0),
                   util::format_fixed(outcome.work, 2),
                   util::format_fixed(outcome.payment, 4),
                   util::format_fixed(cost, 4),
                   util::format_fixed(outcome.profit(costs[i]), 4)});
    if (csv) {
      csv->add_row({std::to_string(i + 1), bench::num(1.0 / costs[i]),
                    bench::num(outcome.work), bench::num(outcome.payment),
                    bench::num(outcome.profit(costs[i]))});
    }
  }
  std::printf("%s\n", table.str().c_str());

  // Misreport sweep for the fastest computer.
  const std::size_t agent = costs.size() - 1;
  util::Table sweep({"claimed cost / true cost", "work", "profit"});
  for (double factor : {0.4, 0.6, 0.8, 1.0, 1.25, 1.6, 2.5, 5.0}) {
    std::vector<double> bids = costs;
    bids[agent] *= factor;
    const mechanism::AgentOutcome outcome =
        mechanism::evaluate_agent(bids, phi, agent);
    sweep.add_row({util::format_fixed(factor, 2),
                   util::format_fixed(outcome.work, 2),
                   util::format_fixed(outcome.profit(costs[agent]), 4)});
  }
  std::printf("misreport sweep (computer 4, true rate 100 jobs/s):\n%s\n",
              sweep.str().c_str());
  std::printf(
      "reading: profit peaks at the truthful report (factor 1.00) —\n"
      "claiming to be slower forfeits work, claiming to be faster takes\n"
      "on work that the payment no longer covers.\n");
  return 0;
}
