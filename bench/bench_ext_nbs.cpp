// A4 — extension: cooperative Nash Bargaining (NBS) scheme vs the
// paper's lineup (the §5 "future work" direction; companion APDCM'02
// paper).
//
// NBS maximizes prod_j 1/D_j (proportional fairness). Expected placement:
// overall response time between GOS (which ignores fairness) and PS, with
// fairness at or near 1 — cooperation buys fairness at a small price in
// total efficiency relative to GOS, while the noncooperative NASH point
// sits close to it.
#include <cstdio>

#include "common.hpp"
#include "schemes/metrics.hpp"
#include "schemes/nbs.hpp"
#include "schemes/registry.hpp"
#include "workload/configs.hpp"

int main() {
  using namespace nashlb;
  bench::banner("A4", "Extension: cooperative NBS scheme",
                "Table 1 system, 10 users, rho = 10%..90%");

  std::vector<schemes::SchemePtr> lineup = schemes::paper_schemes(1e-6);
  lineup.push_back(std::make_shared<schemes::NbsScheme>());

  util::Table ert({"utilization", "NASH", "GOS", "IOS", "PS", "NBS"});
  util::Table fair({"utilization", "NASH", "GOS", "IOS", "PS", "NBS"});
  auto csv = bench::csv("ext_nbs", {"utilization", "scheme",
                                    "overall_response_time", "fairness"});
  for (int pct = 10; pct <= 90; pct += 20) {
    const double rho = pct / 100.0;
    const core::Instance inst = workload::table1_instance(rho);
    std::vector<std::string> ert_row{util::format_percent(rho)};
    std::vector<std::string> fair_row{util::format_percent(rho)};
    for (const schemes::SchemePtr& scheme : lineup) {
      const schemes::Metrics m =
          schemes::evaluate(inst, scheme->solve(inst));
      ert_row.push_back(bench::num(m.overall_response_time));
      fair_row.push_back(util::format_fixed(m.fairness, 3));
      if (csv) {
        csv->add_row({util::format_fixed(rho, 2), scheme->name(),
                      bench::num(m.overall_response_time),
                      util::format_fixed(m.fairness, 4)});
      }
    }
    ert.add_row(ert_row);
    fair.add_row(fair_row);
  }
  std::printf("expected response time (sec):\n%s\n", ert.str().c_str());
  std::printf("fairness index:\n%s\n", fair.str().c_str());
  return 0;
}
