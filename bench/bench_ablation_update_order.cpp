// A3 — ablation: update order of the best-reply dynamics.
//
// The paper's algorithm is round-robin (Gauss–Seidel): users update one
// at a time around the ring. The tempting parallel variant (Jacobi:
// everyone best-replies to the previous round simultaneously) needs no
// token — but the combined move can overshoot, oscillate, or transiently
// overload computers. This sweep shows where each behaviour appears.
#include <cstdio>

#include "common.hpp"
#include "core/dynamics.hpp"
#include "workload/configs.hpp"

int main() {
  using namespace nashlb;
  bench::banner("A3", "Ablation: round-robin vs simultaneous best reply",
                "Table 1 system, 10 users, rho = 10%..90%, eps = 1e-6");

  util::Table table({"utilization", "round-robin rounds",
                     "random-order rounds", "simultaneous rounds",
                     "simultaneous outcome"});
  auto csv = bench::csv("ablation_update_order",
                        {"utilization", "rr_rounds", "random_rounds",
                         "sim_rounds", "sim_outcome"});
  for (int pct = 10; pct <= 90; pct += 10) {
    const double rho = pct / 100.0;
    const core::Instance inst = workload::table1_instance(rho);

    core::DynamicsOptions rr;
    rr.tolerance = 1e-6;
    rr.max_iterations = 2000;
    core::DynamicsOptions rnd = rr;
    rnd.order = core::UpdateOrder::RandomOrder;
    core::DynamicsOptions sim = rr;
    sim.order = core::UpdateOrder::Simultaneous;

    const core::DynamicsResult r = core::best_reply_dynamics(inst, rr);
    const core::DynamicsResult q = core::best_reply_dynamics(inst, rnd);
    const core::DynamicsResult s = core::best_reply_dynamics(inst, sim);

    const std::string outcome = s.diverged      ? "overloaded (diverged)"
                                : s.converged   ? "converged"
                                                : "oscillating (cap hit)";
    const std::string rnd_rounds =
        q.converged ? std::to_string(q.iterations) : "no convergence";
    table.add_row({util::format_percent(rho), std::to_string(r.iterations),
                   rnd_rounds, std::to_string(s.iterations), outcome});
    if (csv) {
      csv->add_row({util::format_fixed(rho, 2),
                    std::to_string(r.iterations), rnd_rounds,
                    std::to_string(s.iterations), outcome});
    }
  }
  std::printf("%s\n", table.str().c_str());
  std::printf(
      "conclusion: *sequential* updates are what matters — any order\n"
      "(fixed ring or a fresh random permutation each round) converges,\n"
      "while the parallel Jacobi variant loses convergence exactly where\n"
      "load balancing matters (medium/high utilization).\n");
  return 0;
}
