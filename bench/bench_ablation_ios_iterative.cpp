// A10 — ablation: IOS computation, closed form vs iterative.
//
// §4.2 on the reference IOS algorithm: "It is based on an iterative
// procedure that is not very efficient." This ablation quantifies that:
// sweeps the iterative flow-deviation method's relaxation factor and
// tolerance, reporting sweep counts and the final load error against the
// closed-form Wardrop equilibrium (which this library computes directly
// by linear water-filling, needing no iteration at all).
#include <cmath>
#include <cstdio>

#include "common.hpp"
#include "schemes/ios.hpp"
#include "workload/configs.hpp"

int main() {
  using namespace nashlb;
  bench::banner("A10", "Ablation: IOS closed form vs iterative procedure",
                "Table 1 system, rho = 60%");

  const core::Instance inst = workload::table1_instance(0.6);
  const std::vector<double> exact =
      schemes::IndividualOptimalScheme::wardrop_loads(inst);

  auto max_error = [&](const std::vector<double>& loads) {
    double worst = 0.0;
    for (std::size_t i = 0; i < loads.size(); ++i) {
      worst = std::max(worst, std::fabs(loads[i] - exact[i]));
    }
    return worst;
  };

  util::Table table({"relaxation", "tolerance", "sweeps",
                     "max load error (jobs/s)", "converged"});
  auto csv = bench::csv("ablation_ios_iterative",
                        {"relaxation", "tolerance", "sweeps", "max_error",
                         "converged"});
  for (double relax : {0.05, 0.25, 0.5, 0.9}) {
    for (double tol : {1e-4, 1e-8, 1e-12}) {
      const schemes::IosIterativeResult r =
          schemes::ios_iterative(inst, tol, 500000, relax);
      table.add_row({util::format_fixed(relax, 2), bench::num(tol),
                     std::to_string(r.iterations),
                     bench::num(max_error(r.loads)),
                     r.converged ? "yes" : "NO"});
      if (csv) {
        csv->add_row({util::format_fixed(relax, 2), bench::num(tol),
                      std::to_string(r.iterations),
                      bench::num(max_error(r.loads)),
                      r.converged ? "yes" : "no"});
      }
    }
  }
  std::printf("%s\n", table.str().c_str());
  std::printf(
      "closed form (this library's default IOS): 0 sweeps, exact — the\n"
      "paper's remark about the reference procedure quantified.\n");
  return 0;
}
