// P2 — solver scaling: incremental core vs recompute-from-scratch.
//
// The paper's NASH algorithm is iterated best reply; Figure 3 shows the
// iteration count growing with the number of users. The seed
// implementation additionally paid O(m·n) per best-reply *call* (the
// aggregate loads were rebuilt from the whole profile every time), so one
// Gauss–Seidel round cost O(m²·n). The incremental core (core/load_state)
// carries the loads across the loop and makes a round O(m·n).
//
// This bench sweeps (m users, n computers) up to 4096×64 and, per size:
//   * times a block of full best-reply rounds under the old path (the
//     still-available allocating APIs, recompute-from-scratch) and under
//     the incremental path, and reports the per-round speedup;
//   * checks both paths land on the same profile after the timed rounds;
//   * runs the incremental dynamics to the paper's tolerance and — at
//     sizes where the old path is not prohibitively slow — the old path
//     too, verifying both converge to the same equilibrium within 1e-10.
//
// A user-class aggregation axis (docs/SCALING.md) extends the sweep to
// m = 10^6: the dynamics runs over weighted classes (round cost
// O(classes·n), independent of m), each row records the a-posteriori
// eps-Nash certificate of the expanded profile, and a singleton-partition
// run is checked bitwise against the per-user solver.
//
// Outputs: bench_results/scale.csv (one row per size), an informational
// pooled-Jacobi threads sweep in bench_results/scale_threads.csv (the
// gated threads grid lives in bench_parallel / BENCH_parallel.json),
// bench_results/scale_classes.csv (the class axis), and a
// machine-readable BENCH_scale.json with the headline speedup at
// m=512, n=64 — the perf trajectory future PRs measure against (see
// docs/PERFORMANCE.md).
#include <chrono>
#include <cmath>
#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "common.hpp"
#include "core/best_reply.hpp"
#include "core/cost.hpp"
#include "core/dynamics.hpp"
#include "core/equilibrium.hpp"
#include "core/load_state.hpp"
#include "core/user_classes.hpp"
#include "stats/rng.hpp"
#include "util/table.hpp"
#include "workload/configs.hpp"

namespace {

using namespace nashlb;

constexpr double kUtilization = 0.6;
/// Paper tolerance for the Table 1 system (m = 10). The stopping norm is a
/// *sum* of per-user response-time deltas, so the bench scales the
/// tolerance by m/10 to keep the per-user stringency constant across the
/// sweep instead of silently tightening it 100x at m = 1024.
constexpr double kTolerancePerTenUsers = 1e-4;
constexpr int kTimedRounds = 3;    // rounds per timed block
constexpr int kTimingRepeats = 3;  // blocks per path; min is reported
/// Old-path full convergence is O(m²·n·iterations); above this user count
/// only the timed-block profile agreement is checked (the CSV records
/// which check ran).
constexpr std::size_t kMaxUsersForOldSolve = 512;

/// Heavy-head/long-tail user mix: the published 10-user pattern cycled
/// *without* the per-lap attenuation of workload::user_fractions. The
/// attenuated mix halves each lap, so by m = 512 the smallest users carry
/// ~1e-16 of the flow — numerically degenerate knife-edge players whose
/// best reply flips between equal-rate computers on 1e-16 load noise. A
/// scaling bench needs every user well conditioned; this keeps all phi_j
/// within 7.5x of each other while preserving the paper's size spread.
std::vector<double> scaled_fractions(std::size_t m) {
  const std::vector<double> base = workload::default_user_fractions();
  std::vector<double> q(m);
  double total = 0.0;
  for (std::size_t j = 0; j < m; ++j) {
    q[j] = base[j % base.size()];
    total += q[j];
  }
  for (double& v : q) v /= total;
  return q;
}

/// Table-1-style heterogeneous system scaled to n computers: the four
/// speed classes {10, 20, 50, 100} jobs/s, cycled.
core::Instance scaled_instance(std::size_t m, std::size_t n) {
  static const double kClassRates[4] = {10.0, 20.0, 50.0, 100.0};
  std::vector<double> rates(n);
  for (std::size_t i = 0; i < n; ++i) rates[i] = kClassRates[i % 4];
  return workload::make_instance(std::move(rates), scaled_fractions(m),
                                 kUtilization);
}

double tolerance_for(std::size_t m) {
  return kTolerancePerTenUsers * (static_cast<double>(m) / 10.0);
}

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// One Gauss–Seidel round, seed implementation: every best reply and
/// response time recomputes the aggregate loads from the m×n profile.
void scratch_round(const core::Instance& inst, core::StrategyProfile& s,
                   std::vector<double>& last_times) {
  for (std::size_t j = 0; j < inst.num_users(); ++j) {
    s.set_row(j, core::best_reply(inst, s, j));
    last_times[j] = core::user_response_time(inst, s, j);
  }
}

/// One Gauss–Seidel round on the incremental core: O(n) per move.
void incremental_round(const core::Instance& inst, core::StrategyProfile& s,
                       core::LoadState& state, core::BestReplyWorkspace& ws,
                       std::vector<double>& last_times) {
  for (std::size_t j = 0; j < inst.num_users(); ++j) {
    state.commit_row(s, j, core::best_reply_into(inst, s, state, j, ws));
    last_times[j] = state.user_response_time(s, j);
  }
}

/// Seed dynamics loop (scratch path) to convergence; returns iterations.
std::size_t scratch_solve(const core::Instance& inst,
                          core::StrategyProfile& s, double tolerance,
                          std::size_t max_rounds) {
  std::vector<double> last = core::user_response_times(inst, s);
  for (std::size_t round = 1; round <= max_rounds; ++round) {
    double norm = 0.0;
    for (std::size_t j = 0; j < inst.num_users(); ++j) {
      s.set_row(j, core::best_reply(inst, s, j));
      const double d = core::user_response_time(inst, s, j);
      norm += std::fabs(d - last[j]);
      last[j] = d;
    }
    if (norm <= tolerance) return round;
  }
  return max_rounds;
}

struct SizeResult {
  std::size_t m = 0;
  std::size_t n = 0;
  double old_round_seconds = 0.0;
  double incr_round_seconds = 0.0;
  double speedup = 0.0;
  std::size_t iterations = 0;
  bool converged = false;
  std::string equilibrium_check;  // "full_solve" or "timed_rounds"
  double max_profile_diff = 0.0;
  double best_reply_gap = 0.0;
};

SizeResult run_size(std::size_t m, std::size_t n) {
  const core::Instance inst = scaled_instance(m, n);
  const core::StrategyProfile start = core::StrategyProfile::proportional(inst);
  SizeResult r;
  r.m = m;
  r.n = n;

  // --- per-round timing, both paths from the identical start ------------
  double old_block = 0.0;
  double incr_block = 0.0;
  core::StrategyProfile old_end = start;
  core::StrategyProfile incr_end = start;
  for (int rep = 0; rep < kTimingRepeats; ++rep) {
    {
      core::StrategyProfile s = start;
      std::vector<double> last(m, 0.0);
      const double t0 = now_seconds();
      for (int k = 0; k < kTimedRounds; ++k) scratch_round(inst, s, last);
      const double dt = now_seconds() - t0;
      if (rep == 0 || dt < old_block) old_block = dt;
      old_end = std::move(s);
    }
    {
      core::StrategyProfile s = start;
      core::LoadState state(inst, s);
      core::BestReplyWorkspace ws;
      ws.resize(n);
      std::vector<double> last(m, 0.0);
      const double t0 = now_seconds();
      for (int k = 0; k < kTimedRounds; ++k) {
        incremental_round(inst, s, state, ws, last);
      }
      const double dt = now_seconds() - t0;
      if (rep == 0 || dt < incr_block) incr_block = dt;
      incr_end = std::move(s);
    }
  }
  r.old_round_seconds = old_block / kTimedRounds;
  r.incr_round_seconds = incr_block / kTimedRounds;
  r.speedup = r.old_round_seconds / r.incr_round_seconds;
  r.max_profile_diff = old_end.max_difference(incr_end);

  // --- equilibrium: incremental solve, old-path cross-check -------------
  core::DynamicsOptions opts;
  opts.init = core::Initialization::Proportional;
  opts.tolerance = tolerance_for(m);
  opts.max_iterations = 5000;
  const core::DynamicsResult res = core::best_reply_dynamics(inst, opts);
  r.iterations = res.iterations;
  r.converged = res.converged;
  r.best_reply_gap = core::max_best_reply_gain(inst, res.profile);

  if (m <= kMaxUsersForOldSolve) {
    core::StrategyProfile old_eq = start;
    (void)scratch_solve(inst, old_eq, opts.tolerance, opts.max_iterations);
    r.max_profile_diff =
        std::max(r.max_profile_diff, res.profile.max_difference(old_eq));
    r.equilibrium_check = "full_solve";
  } else {
    r.equilibrium_check = "timed_rounds";
  }
  return r;
}

// --- user-class aggregation axis (docs/SCALING.md) ----------------------
//
// The per-user sweep tops out at m = 4096 because a round is O(m·n); the
// class dynamics makes a round O(classes · n), so this axis pushes m to
// 10^6. Two populations per size:
//   * classes_exact      — the Table-1 mix cycled (10 distinct phi
//                          values), grouped by UserClassPartition::exact;
//   * classes_quantized  — log-uniform heterogeneous demands spanning a
//                          factor of 100, bucketed at eps_phi = 1e-3
//                          (capped at 512 classes), with the a-posteriori
//                          eps-Nash certificate evaluated on the result.
constexpr double kEpsPhi = 1e-3;
constexpr std::size_t kMaxClasses = 512;

struct ClassResult {
  std::string kind;  // "classes_exact" | "classes_quantized"
  std::size_t m = 0;
  std::size_t n = 0;
  std::size_t classes = 0;
  double build_seconds = 0.0;       // partition construction
  double solve_seconds = 0.0;       // class dynamics to tolerance
  double per_round_seconds = 0.0;   // solve_seconds / iterations
  std::size_t iterations = 0;
  bool converged = false;
  double eps_nash_measured = 0.0;   // certificate: realized relative gain
  double eps_nash_bound = 0.0;      // certificate: analytic bound
  double max_rel_deviation = 0.0;   // realized bucketing width
};

/// Log-uniform heterogeneous demand mix spanning `spread`x between the
/// lightest and heaviest user (deterministic: fixed Xoshiro256 seed).
core::Instance heterogeneous_instance(std::size_t m, std::size_t n,
                                      double spread = 100.0) {
  static const double kClassRates[4] = {10.0, 20.0, 50.0, 100.0};
  std::vector<double> rates(n);
  for (std::size_t i = 0; i < n; ++i) rates[i] = kClassRates[i % 4];
  stats::Xoshiro256 rng(0x5ca1ab1eULL + m);
  std::vector<double> q(m);
  double total = 0.0;
  for (std::size_t j = 0; j < m; ++j) {
    q[j] = std::exp(rng.next_double() * std::log(spread));
    total += q[j];
  }
  for (double& v : q) v /= total;
  return workload::make_instance(std::move(rates), std::move(q),
                                 kUtilization);
}

ClassResult run_class_size(const core::Instance& inst, std::size_t m,
                           std::size_t n, bool quantized) {
  ClassResult r;
  r.kind = quantized ? "classes_quantized" : "classes_exact";
  r.m = m;
  r.n = n;

  const double tb0 = now_seconds();
  const core::UserClassPartition part =
      quantized ? core::UserClassPartition::quantized(inst, kEpsPhi,
                                                      kMaxClasses)
                : core::UserClassPartition::exact(inst);
  r.build_seconds = now_seconds() - tb0;
  r.classes = part.num_classes();
  r.max_rel_deviation = part.max_rel_deviation();

  core::DynamicsOptions opts;
  opts.init = core::Initialization::Proportional;
  opts.tolerance = tolerance_for(m);
  opts.max_iterations = 5000;
  opts.classes = &part;
  std::optional<core::DynamicsResult> res;
  for (int rep = 0; rep < kTimingRepeats; ++rep) {
    const double t0 = now_seconds();
    res = core::best_reply_dynamics(inst, opts);
    const double dt = now_seconds() - t0;
    if (rep == 0 || dt < r.solve_seconds) r.solve_seconds = dt;
  }
  r.iterations = res->iterations;
  r.converged = res->converged;
  r.per_round_seconds =
      r.solve_seconds / static_cast<double>(std::max<std::size_t>(
                            res->iterations, 1));

  const core::EpsNashCertificate cert =
      core::certify_eps_nash(inst, part, res->profile);
  r.eps_nash_measured = cert.eps_nash;
  r.eps_nash_bound = cert.analytic_bound;
  return r;
}

/// The singleton partition must reproduce the per-user solver bitwise —
/// the structural pin that the class code path *is* the per-user path
/// when every class has one member.
bool check_singleton_bitwise(std::size_t m, std::size_t n) {
  const core::Instance inst = scaled_instance(m, n);
  core::DynamicsOptions opts;
  opts.init = core::Initialization::Proportional;
  opts.tolerance = tolerance_for(m);
  opts.max_iterations = 5000;
  const core::DynamicsResult per_user = core::best_reply_dynamics(inst, opts);
  const core::UserClassPartition part =
      core::UserClassPartition::singletons(inst);
  opts.classes = &part;
  const core::DynamicsResult via_classes =
      core::best_reply_dynamics(inst, opts);
  const double diff = per_user.profile.max_difference(via_classes.profile);
  if (diff != 0.0 || per_user.iterations != via_classes.iterations) {
    std::printf("FAIL: singleton class dynamics differs from per-user "
                "solver at m=%zu n=%zu (|Δs| = %.3e, iters %zu vs %zu)\n",
                m, n, diff, per_user.iterations, via_classes.iterations);
    return false;
  }
  return true;
}

void write_json(const std::vector<SizeResult>& rows,
                const std::vector<ClassResult>& class_rows,
                const SizeResult* headline) {
  std::FILE* f = std::fopen("BENCH_scale.json", "w");
  if (!f) {
    std::fprintf(stderr, "bench_scale: cannot write BENCH_scale.json\n");
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"scale\",\n");
  obs::RunManifest manifest = bench::run_manifest("P2");
  manifest.set("utilization", kUtilization);
  manifest.set("tolerance_per_ten_users", kTolerancePerTenUsers);
  std::fprintf(f, "  \"manifest\": %s,\n", manifest.to_json().c_str());
  std::fprintf(f,
               "  \"description\": \"per-round wall time of one full "
               "best-reply round: recompute-from-scratch (seed) vs "
               "incremental LoadState core\",\n");
  std::fprintf(f,
               "  \"utilization\": %.2f,\n  \"tolerance_per_ten_users\": "
               "%g,\n",
               kUtilization, kTolerancePerTenUsers);
  std::fprintf(f, "  \"rows\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const SizeResult& r = rows[i];
    std::fprintf(
        f,
        "    {\"m\": %zu, \"n\": %zu, \"old_round_seconds\": %.6e, "
        "\"incr_round_seconds\": %.6e, \"speedup\": %.2f, "
        "\"iterations\": %zu, \"converged\": %s, "
        "\"equilibrium_check\": \"%s\", \"max_profile_diff\": %.3e, "
        "\"best_reply_gap\": %.3e}%s\n",
        r.m, r.n, r.old_round_seconds, r.incr_round_seconds, r.speedup,
        r.iterations, r.converged ? "true" : "false",
        r.equilibrium_check.c_str(), r.max_profile_diff, r.best_reply_gap,
        i + 1 < rows.size() || !class_rows.empty() ? "," : "");
  }
  for (std::size_t i = 0; i < class_rows.size(); ++i) {
    const ClassResult& r = class_rows[i];
    std::fprintf(
        f,
        "    {\"kind\": \"%s\", \"m\": %zu, \"n\": %zu, \"classes\": %zu, "
        "\"per_round_seconds\": %.6e, \"iterations\": %zu, "
        "\"converged\": %s, \"eps_nash_measured\": %.3e, "
        "\"eps_nash_bound\": %.3e}%s\n",
        r.kind.c_str(), r.m, r.n, r.classes, r.per_round_seconds,
        r.iterations, r.converged ? "true" : "false", r.eps_nash_measured,
        r.eps_nash_bound, i + 1 < class_rows.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  if (headline) {
    std::fprintf(f,
                 "  \"headline\": {\"m\": %zu, \"n\": %zu, \"speedup\": "
                 "%.2f, \"max_profile_diff\": %.3e}\n",
                 headline->m, headline->n, headline->speedup,
                 headline->max_profile_diff);
  } else {
    std::fprintf(f, "  \"headline\": null\n");
  }
  std::fprintf(f, "}\n");
  std::fclose(f);
}

/// Wall seconds per Jacobi round at a given thread count, plus the final
/// profile for the bitwise cross-check. The dynamics runs a fixed block
/// of Simultaneous rounds (tolerance 0 so it never stops early unless it
/// diverges, in which case every thread count diverges on the same
/// round and the comparison still holds).
std::pair<double, core::StrategyProfile> jacobi_rounds(
    const core::Instance& inst, std::size_t threads, std::size_t rounds) {
  core::DynamicsOptions opts;
  opts.init = core::Initialization::Proportional;
  opts.order = core::UpdateOrder::Simultaneous;
  opts.tolerance = 0.0;
  opts.max_iterations = rounds;
  opts.threads = threads;
  double best = 0.0;
  core::StrategyProfile end(inst.num_users(), inst.num_computers());
  std::size_t iterations = rounds;
  for (int rep = 0; rep < kTimingRepeats; ++rep) {
    const double t0 = now_seconds();
    core::DynamicsResult res = core::best_reply_dynamics(inst, opts);
    const double dt = now_seconds() - t0;
    if (rep == 0 || dt < best) best = dt;
    iterations = res.iterations;
    end = std::move(res.profile);
  }
  return {best / static_cast<double>(iterations == 0 ? 1 : iterations),
          std::move(end)};
}

/// The pooled-Jacobi threads sweep (informational, CSV-only: wall times
/// on a shared box are too noisy to gate; BENCH_parallel.json carries
/// the gated grid). The bitwise cross-check against threads=1 is still
/// enforced here — determinism is not allowed to be noisy.
bool run_threads_sweep() {
  const std::vector<std::pair<std::size_t, std::size_t>> sizes = {
      {512, 64}, {1024, 64}, {4096, 64}};
  constexpr std::size_t kRounds = 5;
  util::Table table(
      {"m", "n", "threads", "round (s)", "speedup vs 1", "max |Δs|"});
  auto csv = bench::csv("scale_threads",
                        {"m", "n", "threads", "round_seconds",
                         "speedup_vs_serial", "max_profile_diff"});
  bool ok = true;
  for (const auto& [m, n] : sizes) {
    const core::Instance inst = scaled_instance(m, n);
    const auto [serial_seconds, serial_profile] =
        jacobi_rounds(inst, 1, kRounds);
    for (std::size_t threads : {1u, 2u, 4u, 8u}) {
      const auto [seconds, profile] =
          threads == 1 ? std::pair{serial_seconds, serial_profile}
                       : jacobi_rounds(inst, threads, kRounds);
      const double diff = serial_profile.max_difference(profile);
      table.add_row({std::to_string(m), std::to_string(n),
                     std::to_string(threads), bench::num(seconds),
                     bench::num(serial_seconds / seconds), bench::num(diff)});
      if (csv) {
        csv->add_row({std::to_string(m), std::to_string(n),
                      std::to_string(threads), bench::num(seconds),
                      bench::num(serial_seconds / seconds),
                      bench::num(diff)});
      }
      if (diff != 0.0) {
        std::printf("FAIL: pooled Jacobi differs from serial at m=%zu "
                    "n=%zu threads=%zu (|Δs| = %.3e)\n",
                    m, n, threads, diff);
        ok = false;
      }
    }
  }
  std::printf("pooled Jacobi threads sweep (%zu rounds per block):\n%s\n",
              kRounds, table.str().c_str());
  return ok;
}

}  // namespace

int main() {
  bench::banner("P2", "solver scaling: incremental core vs scratch",
                "Table-1 speed classes cycled to n computers, m users at "
                "60% utilization; per-round wall time of both paths");

  const std::vector<std::pair<std::size_t, std::size_t>> sweep = {
      {32, 16}, {128, 16}, {512, 16}, {32, 64}, {128, 64},
      {512, 64}, {1024, 64}, {2048, 64}, {4096, 64}};

  util::Table table({"m", "n", "old round (s)", "incr round (s)", "speedup",
                     "iters", "equilibrium check", "max |Δs|", "gap (s)"});
  auto csv = bench::csv(
      "scale", {"m", "n", "old_round_seconds", "incr_round_seconds",
                "speedup", "iterations", "converged", "equilibrium_check",
                "max_profile_diff", "best_reply_gap"});

  std::vector<SizeResult> rows;
  const SizeResult* headline = nullptr;
  for (const auto& [m, n] : sweep) {
    rows.push_back(run_size(m, n));
    const SizeResult& r = rows.back();
    table.add_row({std::to_string(r.m), std::to_string(r.n),
                   bench::num(r.old_round_seconds),
                   bench::num(r.incr_round_seconds), bench::num(r.speedup),
                   std::to_string(r.iterations), r.equilibrium_check,
                   bench::num(r.max_profile_diff),
                   bench::num(r.best_reply_gap)});
    if (csv) {
      csv->add_row({std::to_string(r.m), std::to_string(r.n),
                    bench::num(r.old_round_seconds),
                    bench::num(r.incr_round_seconds), bench::num(r.speedup),
                    std::to_string(r.iterations), r.converged ? "1" : "0",
                    r.equilibrium_check, bench::num(r.max_profile_diff),
                    bench::num(r.best_reply_gap)});
    }
  }
  for (const SizeResult& r : rows) {
    if (r.m == 512 && r.n == 64) headline = &r;
  }
  std::printf("%s\n", table.str().c_str());

  // --- user-class aggregation axis (docs/SCALING.md) --------------------
  const std::vector<std::pair<std::size_t, std::size_t>> class_sweep = {
      {4096, 64}, {65536, 64}, {1048576, 64}};
  util::Table ctable({"kind", "m", "n", "classes", "round (s)", "iters",
                      "eps measured", "eps bound"});
  auto ccsv = bench::csv(
      "scale_classes",
      {"kind", "m", "n", "classes", "build_seconds", "solve_seconds",
       "per_round_seconds", "iterations", "converged", "eps_nash_measured",
       "eps_nash_bound", "max_rel_deviation"});
  std::vector<ClassResult> class_rows;
  for (const auto& [m, n] : class_sweep) {
    for (const bool quantized : {false, true}) {
      const core::Instance inst =
          quantized ? heterogeneous_instance(m, n) : scaled_instance(m, n);
      class_rows.push_back(run_class_size(inst, m, n, quantized));
      const ClassResult& r = class_rows.back();
      ctable.add_row({r.kind, std::to_string(r.m), std::to_string(r.n),
                      std::to_string(r.classes),
                      bench::num(r.per_round_seconds),
                      std::to_string(r.iterations),
                      bench::num(r.eps_nash_measured),
                      bench::num(r.eps_nash_bound)});
      if (ccsv) {
        ccsv->add_row({r.kind, std::to_string(r.m), std::to_string(r.n),
                       std::to_string(r.classes), bench::num(r.build_seconds),
                       bench::num(r.solve_seconds),
                       bench::num(r.per_round_seconds),
                       std::to_string(r.iterations), r.converged ? "1" : "0",
                       bench::num(r.eps_nash_measured),
                       bench::num(r.eps_nash_bound),
                       bench::num(r.max_rel_deviation)});
      }
    }
  }
  std::printf("user-class aggregation (eps_phi = %g, <= %zu classes):\n%s\n",
              kEpsPhi, kMaxClasses, ctable.str().c_str());

  write_json(rows, class_rows, headline);

  bool ok = run_threads_sweep();
  ok = check_singleton_bitwise(512, 64) && ok;

  // Class-axis gates: every row must converge with a certified eps-Nash
  // bound <= 1e-3, and a class round at m = 10^6 must stay within 2x of
  // the per-user round at m = 4096 — the whole point of the aggregation.
  const SizeResult* per_user_4096 = nullptr;
  for (const SizeResult& r : rows) {
    if (r.m == 4096 && r.n == 64) per_user_4096 = &r;
  }
  for (const ClassResult& r : class_rows) {
    if (!r.converged) {
      std::printf("FAIL: class dynamics did not converge (%s m=%zu)\n",
                  r.kind.c_str(), r.m);
      ok = false;
    }
    if (!(r.eps_nash_bound <= 1e-3)) {
      std::printf("FAIL: eps_nash_bound %.3e > 1e-3 (%s m=%zu)\n",
                  r.eps_nash_bound, r.kind.c_str(), r.m);
      ok = false;
    }
    if (r.m == 1048576 && per_user_4096 &&
        !(r.per_round_seconds <= 2.0 * per_user_4096->incr_round_seconds)) {
      std::printf("FAIL: class round at m=10^6 (%.3e s, %s) exceeds 2x the "
                  "per-user round at m=4096 (%.3e s)\n",
                  r.per_round_seconds, r.kind.c_str(),
                  per_user_4096->incr_round_seconds);
      ok = false;
    }
  }
  if (headline) {
    std::printf("headline (m=512, n=64): %.1fx per-round speedup, "
                "paths agree to %.2e\n",
                headline->speedup, headline->max_profile_diff);
    if (headline->speedup < 5.0) {
      std::printf("FAIL: speedup below the 5x acceptance threshold\n");
      ok = false;
    }
  }
  for (const SizeResult& r : rows) {
    if (!(r.max_profile_diff <= 1e-10)) {
      std::printf("FAIL: paths disagree at m=%zu n=%zu (|Δs| = %.3e)\n", r.m,
                  r.n, r.max_profile_diff);
      ok = false;
    }
    if (!r.converged) {
      std::printf("FAIL: incremental dynamics did not converge at m=%zu "
                  "n=%zu\n",
                  r.m, r.n);
      ok = false;
    }
  }
  std::printf("%s; wrote bench_results/scale.csv, "
              "bench_results/scale_threads.csv, "
              "bench_results/scale_classes.csv and BENCH_scale.json\n",
              ok ? "all checks passed" : "CHECKS FAILED");
  return ok ? 0 : 1;
}
