// F2 — Figure 2: "Norm vs number of iterations" (§4.2.1).
//
// The Table 1 system (16 computers) shared by 10 users at 60% utilization.
// Runs the NASH best-reply dynamics from both published initializations —
// NASH_0 (empty strategies) and NASH_P (proportional) — and prints the
// per-round norm sum_j |D_j^(l) - D_j^(l-1)|. Expected shape: both decay
// geometrically; NASH_P starts well below NASH_0 and crosses any given
// tolerance first.
#include <cstdio>

#include "common.hpp"
#include "core/dynamics.hpp"
#include "util/plot.hpp"
#include "workload/configs.hpp"

int main() {
  using namespace nashlb;
  bench::banner("F2", "Figure 2: norm vs number of iterations",
                "Table 1 system, 10 users, utilization 60%, eps = 1e-9");

  const core::Instance inst = workload::table1_instance(0.6);

  core::DynamicsOptions opts;
  opts.tolerance = 1e-9;
  opts.max_iterations = 500;

  opts.init = core::Initialization::Zero;
  const core::DynamicsResult r0 = core::best_reply_dynamics(inst, opts);
  opts.init = core::Initialization::Proportional;
  const core::DynamicsResult rp = core::best_reply_dynamics(inst, opts);

  util::Table table({"iteration", "norm NASH_0", "norm NASH_P"});
  auto csv =
      bench::csv("fig2_convergence_norm", {"iteration", "nash0", "nashp"});
  const std::size_t rounds =
      std::max(r0.norm_history.size(), rp.norm_history.size());
  for (std::size_t l = 0; l < rounds; ++l) {
    const std::string n0 = l < r0.norm_history.size()
                               ? bench::num(r0.norm_history[l])
                               : "-";
    const std::string np = l < rp.norm_history.size()
                               ? bench::num(rp.norm_history[l])
                               : "-";
    table.add_row({std::to_string(l + 1), n0, np});
    if (csv) csv->add_row({std::to_string(l + 1), n0, np});
  }
  std::printf("%s\n", table.str().c_str());

  // Semi-log rendering of the decay, like the paper's Figure 2.
  util::PlotOptions plot_opts;
  plot_opts.log_y = true;
  plot_opts.height = 14;
  std::printf("norm vs iteration (log scale; 0 = NASH_0, P = NASH_P):\n%s\n",
              util::render_plot({{"0 NASH_0", r0.norm_history},
                                 {"P NASH_P", rp.norm_history}},
                                plot_opts)
                  .c_str());

  std::printf(
      "iterations to norm <= 1e-9:  NASH_0 = %zu, NASH_P = %zu "
      "(NASH_P saves %.0f%%)\n",
      r0.iterations, rp.iterations,
      100.0 * (1.0 - static_cast<double>(rp.iterations) /
                         static_cast<double>(r0.iterations)));
  std::printf(
      "paper's shape: NASH_P starts an order of magnitude lower and\n"
      "reaches the tolerance first; see EXPERIMENTS.md F2 for the\n"
      "paper-vs-measured discussion of the saving's magnitude.\n");
  return 0;
}
