// F4 — Figure 4: "Expected response time and fairness index vs system
// utilization" (§4.2.2).
//
// Table 1 system, 10 users, utilization swept 10%..90%. For each of the
// paper's four schemes this prints the overall expected response time and
// Jain's fairness index. Expected shape (paper):
//   * low load (10-40%): all schemes except PS nearly identical;
//   * medium load: NASH close to GOS (within ~10%), ~30% better than PS;
//   * high load: IOS ~ PS, both above NASH ~ GOS;
//   * fairness: PS = IOS = 1 everywhere, NASH ~ 1, GOS degrades.
#include <cstdio>

#include "common.hpp"
#include "schemes/metrics.hpp"
#include "schemes/registry.hpp"
#include "workload/configs.hpp"

int main() {
  using namespace nashlb;
  bench::banner("F4",
                "Figure 4: response time & fairness vs utilization",
                "Table 1 system, 10 users, rho = 10%..90%");

  const std::vector<schemes::SchemePtr> lineup =
      schemes::paper_schemes(1e-6);

  util::Table ert({"utilization", "NASH", "GOS", "IOS", "PS"});
  util::Table fair({"utilization", "NASH", "GOS", "IOS", "PS"});
  auto csv = bench::csv("fig4_utilization",
                        {"utilization", "scheme", "overall_response_time",
                         "fairness"});

  for (int pct = 10; pct <= 90; pct += 10) {
    const double rho = pct / 100.0;
    const core::Instance inst = workload::table1_instance(rho);
    std::vector<std::string> ert_row{util::format_percent(rho)};
    std::vector<std::string> fair_row{util::format_percent(rho)};
    for (const schemes::SchemePtr& scheme : lineup) {
      const schemes::Metrics m =
          schemes::evaluate(inst, scheme->solve(inst));
      ert_row.push_back(bench::num(m.overall_response_time));
      fair_row.push_back(util::format_fixed(m.fairness, 3));
      if (csv) {
        csv->add_row({util::format_fixed(rho, 2), scheme->name(),
                      bench::num(m.overall_response_time),
                      util::format_fixed(m.fairness, 4)});
      }
    }
    ert.add_row(ert_row);
    fair.add_row(fair_row);
  }

  std::printf("expected response time (sec):\n%s\n", ert.str().c_str());
  std::printf("fairness index:\n%s\n", fair.str().c_str());
  std::printf(
      "paper's shape: see header comment; EXPERIMENTS.md F4 records the\n"
      "paper-vs-measured comparison including the 50%%-load anchor\n"
      "(NASH ~30%% under PS, ~7%% over GOS).\n");
  return 0;
}
