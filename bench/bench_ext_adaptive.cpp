// A12 — extension: dynamic load balancing (the paper's future-work
// direction), evaluated end to end.
//
// A day of diurnal drift on the Table 1 system: total demand swings
// between 35% and 80% utilization in 8 segments. Three regimes:
//   * static   — the NASH equilibrium of the *nominal* (60%) load,
//                frozen for the whole day;
//   * adaptive — the online controller (measured utilizations + OPTIMAL
//                best replies every 2 simulated seconds, round-robin);
//   * oracle   — analytic equilibrium re-solved exactly for each segment
//                (the unachievable lower bound: it knows the schedule).
// Reported: mean response per segment and overall.
#include <cstdio>

#include "adaptive/online.hpp"
#include "common.hpp"
#include "core/cost.hpp"
#include "core/dynamics.hpp"
#include "workload/configs.hpp"

int main() {
  using namespace nashlb;
  bench::banner("A12", "Extension: dynamic (online) load balancing",
                "Table 1 system, 10 users, diurnal drift 35%..80%, "
                "8 segments x 500 s");

  const std::vector<double> mu = workload::table1_rates();
  const std::vector<double> util{0.35, 0.5, 0.65, 0.8, 0.7, 0.55,
                                 0.45, 0.6};
  adaptive::RateSchedule sched;
  for (std::size_t k = 0; k < util.size(); ++k) {
    sched.start_times.push_back(500.0 * static_cast<double>(k));
    sched.phi.push_back(workload::table1_instance(util[k]).phi);
  }

  // Static baseline: equilibrium of the nominal 60% load.
  core::DynamicsOptions dopts;
  dopts.tolerance = 1e-8;
  const core::Instance nominal = workload::table1_instance(0.6);
  const core::StrategyProfile frozen =
      core::best_reply_dynamics(nominal, dopts).profile;

  adaptive::OnlineOptions opts;
  opts.horizon = 4000.0;
  opts.update_period = 2.0;
  opts.window = 30.0;
  opts.report_period = 500.0;  // one report per segment
  const adaptive::OnlineResult adaptive_run =
      adaptive::simulate_online(mu, sched, frozen, opts);
  adaptive::OnlineOptions off = opts;
  off.adapt = false;
  const adaptive::OnlineResult static_run =
      adaptive::simulate_online(mu, sched, frozen, off);

  util::Table table({"segment", "utilization", "static D (s)",
                     "adaptive D (s)", "oracle D (s)"});
  auto csv = bench::csv("ext_adaptive",
                        {"segment", "utilization", "static_d",
                         "adaptive_d", "oracle_d"});
  for (std::size_t k = 0; k < util.size(); ++k) {
    const core::Instance seg = workload::table1_instance(util[k]);
    const double oracle = core::overall_response_time(
        seg, core::best_reply_dynamics(seg, dopts).profile);
    const double stat = k < static_run.windows.size()
                            ? static_run.windows[k].mean_response
                            : 0.0;
    const double adap = k < adaptive_run.windows.size()
                            ? adaptive_run.windows[k].mean_response
                            : 0.0;
    table.add_row({std::to_string(k + 1), util::format_percent(util[k]),
                   bench::num(stat), bench::num(adap),
                   bench::num(oracle)});
    if (csv) {
      csv->add_row({std::to_string(k + 1), util::format_fixed(util[k], 2),
                    bench::num(stat), bench::num(adap),
                    bench::num(oracle)});
    }
  }
  std::printf("%s\n", table.str().c_str());
  std::printf("overall mean response: static %s s, adaptive %s s "
              "(%zu online strategy updates)\n",
              bench::num(static_run.overall_mean_response).c_str(),
              bench::num(adaptive_run.overall_mean_response).c_str(),
              adaptive_run.strategy_updates);
  std::printf(
      "reading: the online controller tracks each segment's equilibrium\n"
      "within its measurement noise, while the frozen nominal profile\n"
      "pays most at the load peaks — the paper's 'initiated periodically\n"
      "or when the system parameters are changed' made concrete.\n");
  return 0;
}
