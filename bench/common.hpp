// Shared scaffolding for the figure/table reproduction binaries.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "util/csv.hpp"
#include "util/table.hpp"

namespace nashlb::bench {

/// Prints the standard experiment banner: id, paper artifact, setup.
void banner(const std::string& id, const std::string& title,
            const std::string& setup);

/// Opens bench_results/<name>.csv (creating the directory if needed) and
/// returns the writer; returns nullptr (with a warning on stderr) if the
/// directory cannot be created — benches still print to stdout.
std::unique_ptr<util::CsvWriter> csv(const std::string& name,
                                     const std::vector<std::string>& header);

/// Formats a double with 4 significant digits (bench table convention).
std::string num(double v);

}  // namespace nashlb::bench
