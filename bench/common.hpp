// Shared scaffolding for the figure/table reproduction binaries.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "obs/manifest.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

namespace nashlb::bench {

/// Prints the standard experiment banner: id, paper artifact, setup.
void banner(const std::string& id, const std::string& title,
            const std::string& setup);

/// The bench's provenance record: obs::RunManifest::collect() plus a
/// "bench" extra naming the experiment. Benches add their run
/// parameters (seeds, instance shape) with set() before stamping.
obs::RunManifest run_manifest(const std::string& id);

/// Writes `manifest` to bench_results/manifest_<id>.json (creating the
/// directory if needed; warning on stderr instead of a throw, like
/// csv()) and echoes the config hash to stdout — every bench stamps its
/// output files' provenance this way, and JSON writers additionally
/// embed manifest.to_json() as a top-level "manifest" object.
void write_manifest(const obs::RunManifest& manifest, const std::string& id);

/// Opens bench_results/<name>.csv (creating the directory if needed) and
/// returns the writer; returns nullptr (with a warning on stderr) if the
/// directory cannot be created — benches still print to stdout.
std::unique_ptr<util::CsvWriter> csv(const std::string& name,
                                     const std::vector<std::string>& header);

/// Formats a double with 4 significant digits (bench table convention).
std::string num(double v);

}  // namespace nashlb::bench
