// F6 — Figure 6: "The effect of heterogeneity on the expected response
// time and fairness index" (§4.2.3).
//
// 16 computers: 2 fast + 14 slow (10 jobs/sec), utilization fixed at 60%,
// fast computers' relative rate (speed skewness) swept 1..20. Expected
// shape (paper): NASH ~ GOS at high skew; IOS approaches them at high
// skew but is poor at low/medium skew; PS degrades badly with skew;
// fairness: PS = IOS = 1, NASH ~ 1, GOS dips.
#include <cstdio>

#include "common.hpp"
#include "schemes/metrics.hpp"
#include "schemes/registry.hpp"
#include "workload/configs.hpp"

int main() {
  using namespace nashlb;
  bench::banner("F6",
                "Figure 6: response time & fairness vs speed skewness",
                "2 fast + 14 slow computers, utilization 60%, skew 1..20");

  const std::vector<schemes::SchemePtr> lineup =
      schemes::paper_schemes(1e-6);

  util::Table ert({"max/min speed", "NASH", "GOS", "IOS", "PS"});
  util::Table fair({"max/min speed", "NASH", "GOS", "IOS", "PS"});
  auto csv = bench::csv("fig6_heterogeneity",
                        {"skew", "scheme", "overall_response_time",
                         "fairness"});

  for (double skew : {1.0, 2.0, 4.0, 6.0, 8.0, 10.0, 12.0, 14.0, 16.0,
                      18.0, 20.0}) {
    const core::Instance inst = workload::skewness_instance(skew, 0.6);
    std::vector<std::string> ert_row{util::format_fixed(skew, 0)};
    std::vector<std::string> fair_row{util::format_fixed(skew, 0)};
    for (const schemes::SchemePtr& scheme : lineup) {
      const schemes::Metrics m =
          schemes::evaluate(inst, scheme->solve(inst));
      ert_row.push_back(bench::num(m.overall_response_time));
      fair_row.push_back(util::format_fixed(m.fairness, 3));
      if (csv) {
        csv->add_row({util::format_fixed(skew, 0), scheme->name(),
                      bench::num(m.overall_response_time),
                      util::format_fixed(m.fairness, 4)});
      }
    }
    ert.add_row(ert_row);
    fair.add_row(fair_row);
  }

  std::printf("expected response time (sec):\n%s\n", ert.str().c_str());
  std::printf("fairness index:\n%s\n", fair.str().c_str());
  std::printf(
      "paper's shape: increasing skew, GOS and NASH converge; IOS joins\n"
      "them at high skew; PS performs poorly throughout (overloads the\n"
      "slow computers).\n");
  return 0;
}
