// F5 — Figure 5: "Expected response time for each user" (§4.2.2).
//
// Table 1 system at 60% utilization, the 10-user population. Expected
// shape (paper): PS and IOS give every user the same time (PS higher);
// GOS spreads users widely (its overall optimum sacrifices individuals);
// NASH gives each user (nearly) the same, individually minimal, time.
#include <algorithm>
#include <cstdio>

#include "common.hpp"
#include "schemes/metrics.hpp"
#include "schemes/registry.hpp"
#include "workload/configs.hpp"

int main() {
  using namespace nashlb;
  bench::banner("F5", "Figure 5: expected response time per user",
                "Table 1 system, 10 users, utilization 60%");

  const core::Instance inst = workload::table1_instance(0.6);
  const std::vector<schemes::SchemePtr> lineup =
      schemes::paper_schemes(1e-6);

  std::vector<schemes::Metrics> metrics;
  metrics.reserve(lineup.size());
  for (const schemes::SchemePtr& scheme : lineup) {
    metrics.push_back(schemes::evaluate(inst, scheme->solve(inst)));
  }

  util::Table table({"user", "phi_j (jobs/s)", "NASH", "GOS", "IOS", "PS"});
  auto csv = bench::csv("fig5_per_user",
                        {"user", "phi", "scheme", "response_time"});
  for (std::size_t j = 0; j < inst.num_users(); ++j) {
    std::vector<std::string> row{std::to_string(j + 1),
                                 util::format_fixed(inst.phi[j], 2)};
    for (std::size_t k = 0; k < lineup.size(); ++k) {
      row.push_back(bench::num(metrics[k].user_response_times[j]));
      if (csv) {
        csv->add_row({std::to_string(j + 1),
                      util::format_fixed(inst.phi[j], 3),
                      lineup[k]->name(),
                      bench::num(metrics[k].user_response_times[j])});
      }
    }
    table.add_row(row);
  }
  std::printf("%s\n", table.str().c_str());

  for (std::size_t k = 0; k < lineup.size(); ++k) {
    double lo = metrics[k].user_response_times[0];
    double hi = lo;
    for (double d : metrics[k].user_response_times) {
      lo = std::min(lo, d);
      hi = std::max(hi, d);
    }
    std::printf("%-6s  max/min user time = %.3f, fairness = %.3f\n",
                lineup[k]->name().c_str(), hi / lo, metrics[k].fairness);
  }
  std::printf(
      "\npaper's shape: PS and IOS flat (PS higher); GOS wildly uneven;\n"
      "NASH flat at each user's individual optimum.\n");
  return 0;
}
