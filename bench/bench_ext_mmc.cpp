// A7 — extension: the game on multi-core (M/M/c) computers.
//
// The paper's closed form is M/M/1-specific; the generic KKT best-reply
// solver (core/convex_reply.hpp) plays the same game when computers are
// multi-core nodes with a shared FCFS queue. Two experiments:
//   1. validation — on M/M/1 models the generic dynamics must match the
//      paper's closed-form dynamics (it does, to solver tolerance);
//   2. architecture study — equal total capacity arranged as 1, 2 or 4
//      cores per node: how the equilibrium response time degrades as the
//      same silicon is split into more, slower cores.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <memory>

#include "common.hpp"
#include "core/convex_reply.hpp"
#include "core/dynamics.hpp"
#include "workload/configs.hpp"

int main() {
  using namespace nashlb;
  bench::banner("A7", "Extension: multi-core (M/M/c) computers",
                "generic KKT best-reply dynamics; 4 users, rho = 60%");

  // 1. Validation on the paper's model.
  {
    core::Instance inst;
    inst.mu = {10.0, 20.0, 50.0, 100.0};
    inst.phi = {30.0, 30.0, 24.0, 24.0};
    core::DynamicsOptions opts;
    opts.tolerance = 1e-8;
    const core::DynamicsResult paper =
        core::best_reply_dynamics(inst, opts);
    const core::GenericDynamicsResult generic =
        core::generic_best_reply_dynamics(core::mm1_models(inst.mu),
                                          inst.phi, 1e-8, 2000);
    double worst = 0.0;
    for (std::size_t j = 0; j < inst.num_users(); ++j) {
      worst = std::max(
          worst, std::abs(generic.user_times[j] - paper.user_times[j]));
    }
    std::printf("validation on M/M/1: max |D_j difference| between the\n"
                "closed-form and generic solvers = %.2e s "
                "(rounds: %zu vs %zu)\n\n",
                worst, paper.iterations, generic.iterations);
  }

  // 2. Same capacity, different core counts per node.
  // Four nodes of 100 jobs/s total each; cores per node varies.
  util::Table table({"cores per node", "core rate (jobs/s)",
                     "equilibrium D (s)", "rounds"});
  auto csv = bench::csv("ext_mmc",
                        {"cores_per_node", "core_rate", "equilibrium_d",
                         "rounds"});
  const std::vector<double> phi{60.0, 60.0, 60.0, 60.0};  // rho = 0.6
  for (unsigned cores : {1u, 2u, 4u, 8u}) {
    const double core_rate = 100.0 / cores;
    std::vector<core::DelayModelPtr> models;
    for (int node = 0; node < 4; ++node) {
      models.push_back(std::make_shared<core::MMCDelay>(core_rate, cores));
    }
    const core::GenericDynamicsResult res =
        core::generic_best_reply_dynamics(models, phi, 1e-8, 2000);
    double overall = 0.0;
    double total = 0.0;
    for (std::size_t j = 0; j < phi.size(); ++j) {
      overall += phi[j] * res.user_times[j];
      total += phi[j];
    }
    overall /= total;
    table.add_row({std::to_string(cores), bench::num(core_rate),
                   res.converged ? bench::num(overall) : "no convergence",
                   std::to_string(res.iterations)});
    if (csv) {
      csv->add_row({std::to_string(cores), bench::num(core_rate),
                    bench::num(overall), std::to_string(res.iterations)});
    }
  }
  std::printf("%s\n", table.str().c_str());
  std::printf(
      "reading: splitting each node's capacity into more, slower cores\n"
      "raises the equilibrium response time (the M/M/c pooling penalty),\n"
      "while the best-reply dynamics converges regardless — the game's\n"
      "machinery does not depend on the M/M/1 closed form.\n");
  return 0;
}
