// A9 — the paper's open problem, empirically: "The convergence proof for
// more than two users is still an open problem. Several experiments done
// on different settings show that they converge."
//
// This bench is those experiments at scale: a seeded fuzz sweep over
// random instances spanning system size (2..64 computers), population
// (2..32 users), utilization (10%..95%) and heterogeneity (1..100x).
// For every instance the best-reply dynamics must (a) converge within
// the round cap and (b) pass the Nash-equilibrium certificate. Reported:
// convergence rate, round-count distribution per utilization band.
#include <cstdio>

#include "common.hpp"
#include "core/dynamics.hpp"
#include "core/equilibrium.hpp"
#include "stats/moments.hpp"
#include "workload/random.hpp"

int main() {
  using namespace nashlb;
  bench::banner("A9", "Convergence evidence sweep (the paper's open problem)",
                "400 random instances: n in 2..64, m in 2..32, rho in "
                "0.1..0.95, heterogeneity up to 100x; eps = 1e-6");

  struct Band {
    double lo, hi;
    stats::RunningStats rounds;
    std::size_t failures = 0;
    std::size_t count = 0;
  };
  std::vector<Band> bands{{0.1, 0.3, {}, 0, 0},
                          {0.3, 0.6, {}, 0, 0},
                          {0.6, 0.85, {}, 0, 0},
                          {0.85, 0.95, {}, 0, 0}};

  std::size_t total = 0;
  std::size_t converged = 0;
  std::size_t certified = 0;
  stats::Xoshiro256 meta(2002);

  for (std::uint64_t trial = 0; trial < 400; ++trial) {
    workload::RandomInstanceOptions opts;
    opts.num_computers = 2 + meta.next_below(63);
    opts.num_users = 2 + meta.next_below(31);
    opts.utilization = 0.1 + 0.85 * meta.next_double();
    opts.heterogeneity = 1.0 + 99.0 * meta.next_double();
    opts.user_skew = 1.0 + 15.0 * meta.next_double();
    opts.seed = trial + 1;
    const core::Instance inst = workload::random_instance(opts);

    core::DynamicsOptions dopts;
    dopts.tolerance = 1e-6;
    dopts.max_iterations = 5000;
    const core::DynamicsResult res = core::best_reply_dynamics(inst, dopts);

    ++total;
    for (Band& band : bands) {
      if (opts.utilization >= band.lo && opts.utilization < band.hi) {
        ++band.count;
        if (res.converged) {
          band.rounds.add(static_cast<double>(res.iterations));
        } else {
          ++band.failures;
        }
      }
    }
    if (res.converged) {
      ++converged;
      if (core::is_nash_equilibrium(inst, res.profile, 1e-4)) ++certified;
    }
  }

  util::Table table({"utilization band", "instances", "converged",
                     "mean rounds", "max rounds"});
  auto csv = bench::csv("convergence_evidence",
                        {"band_lo", "band_hi", "instances", "converged",
                         "mean_rounds", "max_rounds"});
  for (const Band& band : bands) {
    table.add_row({util::format_fixed(band.lo, 2) + "-" +
                       util::format_fixed(band.hi, 2),
                   std::to_string(band.count),
                   std::to_string(band.count - band.failures),
                   util::format_fixed(band.rounds.mean(), 1),
                   util::format_fixed(band.rounds.max(), 0)});
    if (csv) {
      csv->add_row({util::format_fixed(band.lo, 2),
                    util::format_fixed(band.hi, 2),
                    std::to_string(band.count),
                    std::to_string(band.count - band.failures),
                    util::format_fixed(band.rounds.mean(), 2),
                    util::format_fixed(band.rounds.max(), 0)});
    }
  }
  std::printf("%s\n", table.str().c_str());
  std::printf("total: %zu instances, %zu converged (%.1f%%), "
              "%zu passed the Nash certificate.\n",
              total, converged, 100.0 * static_cast<double>(converged) /
                                    static_cast<double>(total),
              certified);
  std::printf(
      "reading: convergence in every sampled setting, with round counts\n"
      "growing with utilization — consistent with (and far broader than)\n"
      "the paper's reported experience; the proof remains open.\n");
  return 0;
}
