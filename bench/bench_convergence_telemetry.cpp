// P5 — convergence telemetry: the equilibrium trajectory as a first-class
// artifact.
//
// Runs the Table 1 system through every wiring of the new
// obs::ConvergenceProbe — the three in-memory update orders (RoundRobin,
// RandomOrder, Jacobi), a quantized user-class run, and the distributed
// ring protocol — with one shared obs::Journal flight recorder attached,
// and reports per run: rounds executed, rounds to the stopping
// tolerance, and the final certified eps-Nash gap. The Jacobi row is the
// honest negative: at 60% utilization the simultaneous update diverges
// (ablation A3), and the probe records the blow-up trajectory instead of
// a convergence one — exactly the forensic use case the journal and
// probe exist for.
//
// Outputs:
//   bench_results/convergence_roundrobin.csv    RoundRobin probe series
//   bench_results/convergence_roundrobin.jsonl  same, JSON lines
//   bench_results/convergence_journal.jsonl     the shared journal window
//   bench_results/convergence_registry.csv      journal drop accounting
//   BENCH_convergence.json                      manifest + gated rows
//
// BENCH_convergence.json is a committed baseline: `kind`, `iterations`,
// `converged` and `rounds_to_tol` diff exactly and `final_eps_nash`
// gates like a quality metric in tools/check_bench.py.
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "common.hpp"
#include "core/dynamics.hpp"
#include "core/user_classes.hpp"
#include "distributed/ring_protocol.hpp"
#include "obs/convergence.hpp"
#include "obs/journal.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "workload/configs.hpp"

namespace {

constexpr double kUtilization = 0.6;
constexpr double kTolerance = 1e-6;
constexpr double kRingTolerance = 1e-4;
constexpr std::size_t kClassUsers = 512;
constexpr double kEpsPhi = 0.05;
constexpr std::size_t kMaxClasses = 64;
constexpr std::size_t kJournalCapacity = 512;

struct Row {
  std::string kind;
  std::size_t m = 0;
  std::size_t n = 0;
  std::size_t classes = 0;  // 0 = per-user row
  std::size_t iterations = 0;
  bool converged = false;
  std::int64_t rounds_to_tol = 0;
  double final_eps_nash = 0.0;  // NaN when no round had a finite gap
};

Row probe_row(const std::string& kind, const nashlb::obs::ConvergenceProbe& probe,
              std::size_t m, std::size_t n, std::size_t classes,
              std::size_t iterations, bool converged, double tolerance) {
  Row r;
  r.kind = kind;
  r.m = m;
  r.n = n;
  r.classes = classes;
  r.iterations = iterations;
  r.converged = converged;
  r.rounds_to_tol = probe.rounds_to_tol(tolerance);
  r.final_eps_nash = probe.final_eps_nash();
  return r;
}

void write_json(const std::vector<Row>& rows) {
  using nashlb::obs::json_number;
  std::FILE* f = std::fopen("BENCH_convergence.json", "w");
  if (!f) {
    std::fprintf(stderr,
                 "bench_convergence_telemetry: cannot write "
                 "BENCH_convergence.json\n");
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"convergence\",\n");
  nashlb::obs::RunManifest manifest = nashlb::bench::run_manifest("P5");
  manifest.set("utilization", kUtilization);
  manifest.set("tolerance", kTolerance);
  manifest.set("ring_tolerance", kRingTolerance);
  std::fprintf(f, "  \"manifest\": %s,\n", manifest.to_json().c_str());
  std::fprintf(f,
               "  \"description\": \"per-round convergence telemetry of the "
               "best-reply dynamics (all orders), class mode and the ring "
               "protocol; rounds_to_tol and final_eps_nash gate "
               "equilibrium-quality regressions\",\n");
  std::fprintf(f, "  \"rows\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(f,
                 "    {\"kind\": \"%s\", \"m\": %zu, \"n\": %zu, "
                 "\"classes\": %zu, \"iterations\": %zu, \"converged\": %s, "
                 "\"rounds_to_tol\": %lld",
                 r.kind.c_str(), r.m, r.n, r.classes, r.iterations,
                 r.converged ? "true" : "false",
                 static_cast<long long>(r.rounds_to_tol));
    if (std::isfinite(r.final_eps_nash)) {
      std::fprintf(f, ", \"final_eps_nash\": %s",
                   json_number(r.final_eps_nash).c_str());
    }
    std::fprintf(f, "}%s\n", i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

}  // namespace

int main() {
  using namespace nashlb;
  bench::banner("P5", "convergence telemetry: probe + journal wiring",
                "Table 1 system at 60% utilization; RoundRobin / Random / "
                "Jacobi, quantized classes, and the ring protocol under "
                "one ConvergenceProbe per run and a shared Journal");

  obs::Journal journal(kJournalCapacity);
  std::vector<Row> rows;
  bool ok = true;

  const core::Instance inst = workload::table1_instance(kUtilization);
  const std::size_t m = inst.num_users();
  const std::size_t n = inst.num_computers();

  // --- The three in-memory update orders ---------------------------------
  struct OrderCase {
    const char* kind;
    core::UpdateOrder order;
  };
  const OrderCase orders[] = {
      {"roundrobin", core::UpdateOrder::RoundRobin},
      {"random", core::UpdateOrder::RandomOrder},
      {"jacobi", core::UpdateOrder::Simultaneous},
  };
  for (const OrderCase& oc : orders) {
    obs::ConvergenceProbe probe;
    core::DynamicsOptions opts;
    opts.order = oc.order;
    opts.tolerance = kTolerance;
    opts.max_iterations = 5000;
    opts.probe = &probe;
    opts.journal = &journal;
    const core::DynamicsResult res = core::best_reply_dynamics(inst, opts);
    if (obs::kEnabled && probe.size() != res.iterations) {
      std::fprintf(stderr,
                   "FAIL: %s probe recorded %zu rows over %zu rounds\n",
                   oc.kind, probe.size(), res.iterations);
      ok = false;
    }
    rows.push_back(probe_row(oc.kind, probe, m, n, 0, res.iterations,
                             res.converged, kTolerance));
    if (std::string(oc.kind) == "roundrobin") {
      probe.write_csv("bench_results/convergence_roundrobin.csv");
      probe.write_jsonl("bench_results/convergence_roundrobin.jsonl");
    }
  }

  // --- Quantized user classes --------------------------------------------
  {
    const core::Instance big =
        workload::table1_instance(kUtilization, kClassUsers);
    const core::UserClassPartition part =
        core::UserClassPartition::quantized(big, kEpsPhi, kMaxClasses);
    obs::ConvergenceProbe probe;
    core::DynamicsOptions opts;
    opts.tolerance = kTolerance;
    opts.max_iterations = 5000;
    opts.classes = &part;
    opts.probe = &probe;
    opts.journal = &journal;
    const core::DynamicsResult res = core::best_reply_dynamics(big, opts);
    rows.push_back(probe_row("classes", probe, kClassUsers, n,
                             part.num_classes(), res.iterations,
                             res.converged, kTolerance));
    if (!res.converged) {
      std::fprintf(stderr, "FAIL: class-mode run did not converge\n");
      ok = false;
    }
  }

  // --- The distributed ring protocol -------------------------------------
  {
    obs::ConvergenceProbe probe;
    distributed::RingOptions opts;
    opts.tolerance = kRingTolerance;
    opts.probe = &probe;
    opts.journal = &journal;
    const distributed::RingResult res =
        distributed::run_ring_protocol(inst, opts);
    if (obs::kEnabled && probe.size() != res.rounds) {
      std::fprintf(stderr,
                   "FAIL: ring probe recorded %zu rows over %zu rounds\n",
                   probe.size(), res.rounds);
      ok = false;
    }
    rows.push_back(probe_row("ring", probe, m, n, 0, res.rounds,
                             res.converged, kRingTolerance));
  }

  // --- Console summary + artifacts ---------------------------------------
  util::Table table({"kind", "m", "n", "classes", "rounds", "converged",
                     "rounds_to_tol", "final eps-Nash (s)"});
  for (const Row& r : rows) {
    table.add_row({r.kind, std::to_string(r.m), std::to_string(r.n),
                   std::to_string(r.classes), std::to_string(r.iterations),
                   r.converged ? "yes" : "no",
                   std::to_string(r.rounds_to_tol),
                   std::isfinite(r.final_eps_nash)
                       ? bench::num(r.final_eps_nash)
                       : "n/a (diverged)"});
  }
  std::printf("%s\n", table.str().c_str());

  journal.write_jsonl("bench_results/convergence_journal.jsonl");
  obs::Registry registry;
  journal.publish_metrics(registry);
  registry.write_csv("bench_results/convergence_registry.csv");
  std::printf("journal: %llu events emitted, %llu dropped, %zu retained "
              "(bench_results/convergence_journal.jsonl)\n",
              static_cast<unsigned long long>(journal.emitted()),
              static_cast<unsigned long long>(journal.dropped()),
              journal.size());

  write_json(rows);

  // --- Gates -------------------------------------------------------------
  for (const Row& r : rows) {
    if (r.kind == "jacobi") continue;  // the documented divergence case
    if (!r.converged) {
      std::fprintf(stderr, "FAIL: %s did not converge\n", r.kind.c_str());
      ok = false;
    }
    if (obs::kEnabled &&
        (r.rounds_to_tol == 0 ||
         r.rounds_to_tol != static_cast<std::int64_t>(r.iterations))) {
      std::fprintf(stderr,
                   "FAIL: %s rounds_to_tol=%lld != iterations=%zu\n",
                   r.kind.c_str(), static_cast<long long>(r.rounds_to_tol),
                   r.iterations);
      ok = false;
    }
    // The quantized class run's gap is dominated by the eps_phi
    // aggregation error (docs/SCALING.md), not the dynamics tolerance,
    // so it gets a looser bound than the exact per-user runs.
    const double gap_bound = r.kind == "classes" ? 1e-2 : 1e-3;
    if (obs::kEnabled &&
        !(std::isfinite(r.final_eps_nash) && r.final_eps_nash <= gap_bound)) {
      std::fprintf(stderr, "FAIL: %s final eps-Nash gap %.3e above %.0e\n",
                   r.kind.c_str(), r.final_eps_nash, gap_bound);
      ok = false;
    }
  }
  if (obs::kEnabled && journal.emitted() == 0) {
    std::fprintf(stderr, "FAIL: journal recorded no events\n");
    ok = false;
  }
  if (obs::kEnabled &&
      journal.emitted() != journal.dropped() + journal.size()) {
    std::fprintf(stderr, "FAIL: journal accounting emitted=%llu != "
                 "dropped=%llu + retained=%zu\n",
                 static_cast<unsigned long long>(journal.emitted()),
                 static_cast<unsigned long long>(journal.dropped()),
                 journal.size());
    ok = false;
  }
  if (!ok) return 1;
  std::printf("all telemetry gates passed\n");
  return 0;
}
