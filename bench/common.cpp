#include "common.hpp"

#include <cstdio>
#include <filesystem>

namespace nashlb::bench {

void banner(const std::string& id, const std::string& title,
            const std::string& setup) {
  std::printf("==============================================================\n");
  std::printf("%s  %s\n", id.c_str(), title.c_str());
  std::printf("setup: %s\n", setup.c_str());
  std::printf("==============================================================\n");
}

std::unique_ptr<util::CsvWriter> csv(
    const std::string& name, const std::vector<std::string>& header) {
  std::error_code ec;
  std::filesystem::create_directories("bench_results", ec);
  if (ec) {
    std::fprintf(stderr, "warning: cannot create bench_results/: %s\n",
                 ec.message().c_str());
    return nullptr;
  }
  try {
    return std::make_unique<util::CsvWriter>("bench_results/" + name + ".csv",
                                             header);
  } catch (const std::exception& ex) {
    std::fprintf(stderr, "warning: %s\n", ex.what());
    return nullptr;
  }
}

std::string num(double v) { return util::format_sig(v, 4); }

}  // namespace nashlb::bench
