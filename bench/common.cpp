#include "common.hpp"

#include <cstdio>
#include <filesystem>

namespace nashlb::bench {

void banner(const std::string& id, const std::string& title,
            const std::string& setup) {
  std::printf("==============================================================\n");
  std::printf("%s  %s\n", id.c_str(), title.c_str());
  std::printf("setup: %s\n", setup.c_str());
  std::printf("==============================================================\n");
  // Every bench run gets a provenance sidecar up front; benches with
  // run-specific extras re-stamp the same file once they know them.
  write_manifest(run_manifest(id), id);
}

std::unique_ptr<util::CsvWriter> csv(
    const std::string& name, const std::vector<std::string>& header) {
  std::error_code ec;
  std::filesystem::create_directories("bench_results", ec);
  if (ec) {
    std::fprintf(stderr, "warning: cannot create bench_results/: %s\n",
                 ec.message().c_str());
    return nullptr;
  }
  try {
    return std::make_unique<util::CsvWriter>("bench_results/" + name + ".csv",
                                             header);
  } catch (const std::exception& ex) {
    std::fprintf(stderr, "warning: %s\n", ex.what());
    return nullptr;
  }
}

std::string num(double v) { return util::format_sig(v, 4); }

obs::RunManifest run_manifest(const std::string& id) {
  obs::RunManifest manifest = obs::RunManifest::collect();
  manifest.set("bench", id);
  return manifest;
}

void write_manifest(const obs::RunManifest& manifest, const std::string& id) {
  std::error_code ec;
  std::filesystem::create_directories("bench_results", ec);
  if (ec) {
    std::fprintf(stderr, "warning: cannot create bench_results/: %s\n",
                 ec.message().c_str());
    return;
  }
  const std::string path = "bench_results/manifest_" + id + ".json";
  try {
    manifest.write_json(path);
  } catch (const std::exception& ex) {
    std::fprintf(stderr, "warning: %s\n", ex.what());
    return;
  }
  std::printf("manifest: %s (git %s, obs=%d check=%d sanitize=%s threads=%zu)\n",
              path.c_str(), manifest.git_sha.c_str(),
              manifest.obs_enabled ? 1 : 0, manifest.check_enabled ? 1 : 0,
              manifest.sanitize.c_str(), manifest.threads);
}

}  // namespace nashlb::bench
