// A5b — timing micro-benchmarks for the discrete-event substrate
// (google-benchmark): event calendar throughput, facility service cycle,
// RNG/distribution sampling, and the end-to-end M/M/1 farm simulation
// rate in jobs per second of wall time.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <functional>

#include "des/facility.hpp"
#include "des/simulator.hpp"
#include "simmodel/system_sim.hpp"
#include "stats/distributions.hpp"
#include "workload/configs.hpp"

namespace {

using namespace nashlb;

void BM_EventQueuePushPop(benchmark::State& state) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  stats::Xoshiro256 rng(1);
  for (auto _ : state) {
    des::EventQueue q;
    for (std::size_t i = 0; i < batch; ++i) {
      q.push(rng.next_double(), [](des::SimTime) {});
    }
    while (!q.empty()) benchmark::DoNotOptimize(q.pop());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(batch) *
                          state.iterations());
}
BENCHMARK(BM_EventQueuePushPop)->Arg(1024)->Arg(65536);

void BM_SimulatorEventDispatch(benchmark::State& state) {
  for (auto _ : state) {
    des::Simulator sim;
    std::size_t count = 0;
    std::function<void(des::SimTime)> tick = [&](des::SimTime) {
      if (++count < 10000) sim.schedule(1.0, tick);
    };
    sim.schedule(1.0, tick);
    sim.run();
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(10000 * state.iterations());
}
BENCHMARK(BM_SimulatorEventDispatch);

void BM_FacilityServiceCycle(benchmark::State& state) {
  for (auto _ : state) {
    des::Simulator sim;
    des::Facility f(sim, "cpu");
    for (int i = 0; i < 1000; ++i) {
      f.request(1.0, [](des::SimTime) {});
    }
    sim.run();
    benchmark::DoNotOptimize(f.completed());
  }
  state.SetItemsProcessed(1000 * state.iterations());
}
BENCHMARK(BM_FacilityServiceCycle);

void BM_ExponentialSampling(benchmark::State& state) {
  stats::Xoshiro256 rng(7);
  const stats::Exponential d(3.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(d.sample(rng));
  }
}
BENCHMARK(BM_ExponentialSampling);

void BM_AliasTableSampling(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<double> w(n);
  stats::Xoshiro256 seed_rng(8);
  for (double& x : w) x = seed_rng.next_double_open();
  const stats::Discrete d(w);
  stats::Xoshiro256 rng(9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(d.sample(rng));
  }
}
BENCHMARK(BM_AliasTableSampling)->Arg(16)->Arg(4096);

void BM_MM1FarmSimulation(benchmark::State& state) {
  // End-to-end: the paper's Table 1 system simulated for `horizon`
  // seconds; reports simulated jobs per wall-clock second.
  const core::Instance inst = workload::table1_instance(0.6);
  const core::StrategyProfile profile =
      core::StrategyProfile::proportional(inst);
  simmodel::SimConfig cfg;
  cfg.horizon = 50.0;
  cfg.warmup = 0.0;
  std::uint64_t jobs = 0;
  for (auto _ : state) {
    cfg.replication = static_cast<std::uint64_t>(state.iterations());
    const simmodel::SimRunResult r = simmodel::simulate(inst, profile, cfg);
    jobs += r.jobs_generated;
    benchmark::DoNotOptimize(r.overall_mean_response);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(jobs));
  state.counters["jobs_per_run"] =
      static_cast<double>(jobs) /
      static_cast<double>(std::max<std::int64_t>(1, state.iterations()));
}
BENCHMARK(BM_MM1FarmSimulation)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
