#!/bin/sh
# ASan+UBSan smoke check for the solver core.
#
# Configures a separate build tree (build-asan/) with -DNASHLB_SANITIZE=ON
# and runs the core test binary under AddressSanitizer and
# UndefinedBehaviorSanitizer. The incremental solver core
# (core/load_state, the *_into waterfill/best-reply fast paths) hands
# spans over caller-owned buffers across module boundaries, which is
# exactly the kind of code sanitizers exist for — run this after touching
# any of those paths.
#
# The tree is configured with -DNASHLB_CHECK=ON so the paper-invariant
# contract layer (docs/STATIC_ANALYSIS.md) is active under the
# sanitizers: a contract abort()s, which lets ASan flush its report and
# point at the violating frame — the two layers are designed to stack.
# This also keeps the contract-enabled configuration itself under
# sanitizer coverage (the checked build audits extra state, e.g. the
# stride-64 LoadState consistency rebuild).
#
# Usage: tools/check_sanitize.sh [repo-root]   (default: script's parent dir)
set -eu

root=${1:-$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)}
build="$root/build-asan"

cmake -B "$build" -S "$root" \
  -DNASHLB_SANITIZE=ON \
  -DNASHLB_CHECK=ON \
  -DNASHLB_BUILD_BENCH=OFF \
  -DNASHLB_BUILD_EXAMPLES=OFF
cmake --build "$build" --target test_core --target test_util \
  -j "$(nproc 2>/dev/null || echo 4)"

# halt_on_error is already the default via -fno-sanitize-recover=all;
# detect_leaks exercises the allocation-free claim of the fast paths.
ASAN_OPTIONS=detect_leaks=1 UBSAN_OPTIONS=print_stacktrace=1 \
  "$build/tests/test_core"

# test_util carries the contract death tests: each one forks, trips a
# seeded violation and expects the child to abort — under ASan this
# verifies the whole failure path (report formatting included) is clean.
ASAN_OPTIONS=detect_leaks=1 UBSAN_OPTIONS=print_stacktrace=1 \
  "$build/tests/test_util"

echo "check_sanitize: OK (test_core + test_util clean under" \
     "ASan+UBSan with NASHLB_CHECK=ON)"
