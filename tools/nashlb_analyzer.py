#!/usr/bin/env python3
"""Semantic analyzer for the nashlb tree — the checks lint_nashlb.py cannot
express with regexes, grounded in program structure.

Registered as the `check_analyzer` ctest and a tools/check_all.sh step.
Five rules, each protecting a guarantee the scaling layers rest on
(docs/STATIC_ANALYSIS.md, "Semantic analysis"):

  hot-path-alloc
      No allocation in the designated hot set: every `*_into` definition
      tree-wide plus the steady-state helpers of core/dynamics.cpp,
      core/load_state.cpp, core/user_classes.cpp and
      distributed/ring_protocol.cpp (HOT_FILE_FUNCS below). Flags
      new-expressions, construction of allocating containers
      (vector/string/function/map/...), push_back/emplace_back on
      un-reserve()d receivers, and make_unique/make_shared/to_string.
      Allocations on throw paths are exempt — error exits are cold by
      definition. The `_into` layer's whole contract is that a
      steady-state best-reply round performs zero heap allocations; a
      copy constructor the regex lint cannot see breaks it silently.

  unordered-float-accum
      No floating-point accumulation into a loop-invariant target inside
      a range-for over std::unordered_map/std::unordered_set. Hash
      iteration order is implementation- and seed-dependent, and float
      addition does not commute in rounding, so such a loop silently
      breaks the bitwise thread-count/run-to-run determinism story
      (PR 6). Accumulating into a per-key slot (target names the loop
      variable) is order-independent and allowed.

  nondeterminism-sources
      No std::random_device, rand()/srand(), time()/clock(), or
      std::chrono::*_clock::now() in src/core, src/des or
      src/distributed. All randomness goes through the seeded
      stats:: RNG seams and all timing through the obs layer; a raw
      clock read in solver code either steers the iteration (silently
      schedule-dependent results) or belongs in obs. Wall-clock reads
      that only feed a trace column carry a reasoned waiver.

  contract-coverage
      Every public function in src/core (declared in a core header)
      that takes a profile/fractions/loads parameter must state a
      NASHLB_EXPECT/ENSURE/INVARIANT itself or transitively call into a
      function that does. Coverage is reported as a percentage in
      bench_results/analysis_report.json and gated against the
      committed report (check_bench-style: working tree vs
      `git show HEAD:`) — a refactor that drops a precondition from a
      core API fails the gate even though every test still passes.

  noexcept-merge
      The obs shard-reduction paths and the ThreadPool chunk runner
      must not let exceptions escape past the documented capture point:
      (a) src/util/parallel.cpp must keep a catch-all handler that
      stores std::current_exception() around the chunk-functor
      invocation (the capture point of PR 6's deterministic error
      propagation); (b) every merge() defined in src/obs must contain
      no throw-expression, and the per-instrument merges (non-Registry)
      must be declared noexcept — a throwing merge inside a worker
      would std::terminate instead of surfacing as the lowest-chunk
      rethrow.

Engines. The precise engine parses the real clang AST via clang.cindex
against the build's compile_commands.json (CMAKE_EXPORT_COMPILE_COMMANDS
is always on). Machines without libclang fall back to a token-level
structural engine — a real C++ tokenizer with scope tracking, not
regexes — that runs every rule in a documented partial mode (it cannot
see through typedefs or overload resolution). contract-coverage always
runs on the token index in both modes: contracts are preprocessor
macros, a lexical fact the post-expansion AST does not retain under the
default NASHLB_CHECK=OFF flags.

Exit codes follow check_tidy's convention: 0 clean under the full clang
engine, 1 findings or selftest failure under either engine, 77 when
only the partial token engine could run and it found nothing (ctest
SKIP via SKIP_RETURN_CODE — the partial pass is evidence, not proof).

Suppression: `// nashlb-analyzer: allow(<rule>) -- <reason>` on the
offending line or the line above. The reason text is mandatory —
a bare allow() is itself reported (waiver-missing-reason). Waivers that
match nothing are ignored, not errors: the two engines see different
supersets of findings.

Every invocation first runs a built-in selftest: each rule is compiled
against synthetic must-trigger and must-not-trigger snippets (the same
philosophy as lint_nashlb.py), under every engine available.

Usage:
  tools/nashlb_analyzer.py [repo-root [build-dir]] [--engine auto|tokens|clang]
      full run: selftest, tree scan, contract-coverage gate against the
      committed bench_results/analysis_report.json.
  tools/nashlb_analyzer.py --write-report [repo-root [build-dir]]
      also rewrite bench_results/analysis_report.json from this run.
  tools/nashlb_analyzer.py --check-file REAL.cpp:virtual/path.cpp ...
      fixture mode: analyze the named files as if they lived at the
      given repo-relative paths; print findings, skip report/gate
      (tests/tools/test_analyzer.py drives this).
  tools/nashlb_analyzer.py --selftest-only
"""

import argparse
import json
import os
import re
import subprocess
import sys

SKIP = 77

RULES = (
    "hot-path-alloc",
    "unordered-float-accum",
    "nondeterminism-sources",
    "contract-coverage",
    "noexcept-merge",
)

# ---------------------------------------------------------------------------
# Rule configuration
# ---------------------------------------------------------------------------

# The designated hot set beyond `*_into` definitions: per-move steady-state
# functions whose zero-allocation property the O(m*n) round complexity
# (docs/PERFORMANCE.md) depends on. Setup/teardown functions in the same
# files (run(), best_reply_dynamics(), run_ring_protocol(), ...) allocate
# once per solve by design and are deliberately not listed.
HOT_FILE_FUNCS = {
    "src/core/dynamics.cpp": {"replies_computable"},
    "src/core/load_state.cpp": {"commit_row", "available_rates",
                                "user_response_time"},
    "src/core/user_classes.cpp": set(),  # class_reply_into via *_into
    "src/distributed/ring_protocol.cpp": {"update_user"},
}

# Types whose construction allocates (or may allocate) on the heap.
ALLOC_TYPE_NAMES = {
    "vector", "string", "basic_string", "function", "map", "set",
    "multimap", "multiset", "unordered_map", "unordered_set", "deque",
    "list", "forward_list", "ostringstream", "istringstream",
    "stringstream", "shared_ptr",
}
ALLOC_CALL_NAMES = {"make_unique", "make_shared", "to_string"}

# Directories rule 3 polices (src-relative path prefixes).
NONDET_DIRS = ("src/core", "src/des", "src/distributed")
NONDET_FREE_FUNCS = {"rand", "srand", "time", "clock"}

CONTRACT_MACROS = {"NASHLB_EXPECT", "NASHLB_ENSURE", "NASHLB_INVARIANT"}
# A core API is audited for contract coverage when a parameter is one of
# the model types, or a double span/vector whose name says it carries
# profile fractions or computer loads/rates.
AUDIT_PARAM_TYPE_RE = re.compile(
    r"\b(StrategyProfile|LoadState|UserClassPartition)\b")
AUDIT_PARAM_NAMES = {
    "loads", "lambda", "fractions", "fraction", "reply", "avail",
    "available_rates", "rates", "capacities", "row", "new_row", "phi",
}
CONTRACT_CALL_DEPTH = 6

PARALLEL_CPP = "src/util/parallel.cpp"
OBS_DIR = "src/obs"

WAIVER_RE = re.compile(
    r"nashlb-analyzer:\s*allow\(([\w-]+)\)\s*(?:--|:)?\s*(\S.*)?")

CPP_KEYWORDS = {
    "alignas", "alignof", "and", "asm", "auto", "bool", "break", "case",
    "catch", "char", "class", "co_await", "co_return", "co_yield", "concept",
    "const", "consteval", "constexpr", "constinit", "const_cast", "continue",
    "decltype", "default", "delete", "do", "double", "dynamic_cast", "else",
    "enum", "explicit", "export", "extern", "false", "float", "for", "friend",
    "goto", "if", "inline", "int", "long", "mutable", "namespace", "new",
    "noexcept", "not", "nullptr", "operator", "or", "private", "protected",
    "public", "register", "reinterpret_cast", "requires", "return", "short",
    "signed", "sizeof", "static", "static_assert", "static_cast", "struct",
    "switch", "template", "this", "thread_local", "throw", "true", "try",
    "typedef", "typeid", "typename", "union", "unsigned", "using", "virtual",
    "void", "volatile", "while", "final", "override",
}

# ---------------------------------------------------------------------------
# Findings and waivers
# ---------------------------------------------------------------------------


class Finding:
    __slots__ = ("path", "line", "rule", "message")

    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def key(self):
        return (self.path, self.line, self.rule)

    def __str__(self):
        return "%s:%d: [%s] %s" % (self.path, self.line, self.rule,
                                   self.message)


class Waivers:
    """Per-file waiver table, read from the raw source lines (waivers are
    comments — a lexical fact both engines share).

    A trailing waiver covers its own line. A waiver on its own comment
    line covers the rest of its comment block and the one statement
    below it (continuation lines included, until a line ends in `;`,
    `{` or `}`) — so multi-line reasons and wrapped statements work."""

    def __init__(self, lines):
        self.by_line = {}   # 1-based waiver line -> (rule, reason or None)
        self.covered = {}   # 1-based line -> set of waived rules
        pending = set()
        in_statement = False
        for idx, line in enumerate(lines):
            lineno = idx + 1
            stripped = line.strip()
            m = WAIVER_RE.search(line)
            if m:
                self.by_line[lineno] = (m.group(1), m.group(2))
                self.covered.setdefault(lineno, set()).add(m.group(1))
                if stripped.startswith("//"):
                    pending.add(m.group(1))
                    in_statement = False
                continue
            if not stripped:
                pending.clear()
                in_statement = False
                continue
            if stripped.startswith("//"):
                continue  # reason continuation — keep the block pending
            if pending:
                self.covered.setdefault(lineno, set()).update(pending)
                if stripped.endswith((";", "{", "}")):
                    pending.clear()
                else:
                    in_statement = True
            elif in_statement:
                self.covered.setdefault(lineno, set()).update(
                    self.covered.get(lineno - 1, set()))
                if stripped.endswith((";", "{", "}")):
                    in_statement = False

    def covers(self, line, rule):
        return rule in self.covered.get(line, ())

    def missing_reasons(self, path):
        out = []
        for line in sorted(self.by_line):
            rule, reason = self.by_line[line]
            if not reason:
                out.append(Finding(
                    path, line, "waiver-missing-reason",
                    "allow(%s) without a reason; write `-- <why>` after "
                    "the waiver" % rule))
        return out


# ---------------------------------------------------------------------------
# Tokenizer (the structural engine's front end)
# ---------------------------------------------------------------------------

TOKEN_RE = re.compile(
    r"""(?P<ws>\s+)
      | (?P<comment>//[^\n]*|/\*.*?\*/)
      | (?P<rawstr>R"(?P<delim>[^ ()\\\t\n]*)\(.*?\)(?P=delim)")
      | (?P<str>"(?:[^"\\\n]|\\.)*")
      | (?P<chr>'(?:[^'\\\n]|\\.)*')
      | (?P<num>\.?\d(?:[\w.']|[eEpP][+-])*)
      | (?P<id>[A-Za-z_]\w*)
      | (?P<punct>::|->\*?|\+\+|--|<<=|>>=|<=>|[-+*/%&|^!=<>]=|&&|\|\||\.\.\.|.)
    """, re.VERBOSE | re.DOTALL)


class Tok:
    __slots__ = ("kind", "text", "line")

    def __init__(self, kind, text, line):
        self.kind = kind
        self.text = text
        self.line = line

    def __repr__(self):
        return "%s(%r)@%d" % (self.kind, self.text, self.line)


def strip_preprocessor(text):
    """Blanks preprocessor directive lines (keeping the code inside
    conditional blocks — contracts live under #if NASHLB_CHECK_ENABLED)."""
    out = []
    continuation = False
    for line in text.split("\n"):
        directive = continuation or line.lstrip().startswith("#")
        continuation = directive and line.rstrip().endswith("\\")
        out.append("" if directive else line)
    return "\n".join(out)


def tokenize(text):
    toks = []
    line = 1
    for m in TOKEN_RE.finditer(strip_preprocessor(text)):
        kind = m.lastgroup if m.lastgroup != "delim" else "rawstr"
        piece = m.group(0)
        if kind not in ("ws", "comment"):
            toks.append(Tok(kind, piece, line))
        line += piece.count("\n")
    return toks


def match_paren(toks, i, open_ch="(", close_ch=")"):
    """toks[i] must be `open_ch`; returns the index of its match, or None."""
    depth = 0
    for j in range(i, len(toks)):
        if toks[j].text == open_ch:
            depth += 1
        elif toks[j].text == close_ch:
            depth -= 1
            if depth == 0:
                return j
    return None


# ---------------------------------------------------------------------------
# Structural index: function definitions/declarations per file
# ---------------------------------------------------------------------------


class FunctionInfo:
    __slots__ = ("name", "qual", "path", "line", "params", "is_definition",
                 "noexcept_", "body", "calls", "has_contract", "throw_lines",
                 "access")

    def __init__(self, name, qual, path, line, params, is_definition,
                 noexcept_, body, access="public"):
        self.name = name
        self.qual = qual
        self.path = path
        self.line = line
        self.access = access
        self.params = params          # token list between ( )
        self.is_definition = is_definition
        self.noexcept_ = noexcept_
        self.body = body              # token list between { } (or [])
        self.calls = set()
        self.has_contract = False
        self.throw_lines = []
        for idx, t in enumerate(body):
            if (t.kind == "id" and t.text not in CPP_KEYWORDS
                    and idx + 1 < len(body) and body[idx + 1].text == "("):
                self.calls.add(t.text)
                if t.text in CONTRACT_MACROS:
                    self.has_contract = True
            elif t.text == "throw":
                self.throw_lines.append(t.line)

    def param_text(self):
        return " ".join(t.text for t in self.params)


def _collect_name(toks, i):
    """Walks `A :: B :: name` backwards from the id at `i`; returns
    (qualified-name-string, leftmost-index)."""
    parts = [toks[i].text]
    k = i
    while k >= 2 and toks[k - 1].text == "::" and toks[k - 2].kind == "id":
        parts[:0] = [toks[k - 2].text, "::"]
        k -= 2
    if k >= 1 and toks[k - 1].text == "~":
        parts[:0] = ["~"]
        k -= 1
    return "".join(parts), k


def index_file(path, toks):
    """One linear scan: namespace/class scope tracking at type scope,
    function signature parsing, body slicing. Function bodies are sliced
    wholesale (local classes/lambdas stay inside their owner's body)."""
    funcs = []
    scopes = []  # [kind 'ns'|'class'|'brace', name, access]
    i = 0
    n = len(toks)
    while i < n:
        t = toks[i]
        if (t.text in ("public", "private", "protected") and i + 1 < n
                and toks[i + 1].text == ":" and scopes
                and scopes[-1][0] == "class"):
            scopes[-1][2] = t.text
            i += 2
            continue
        if t.text == "namespace":
            j = i + 1
            name = None
            while j < n and (toks[j].kind == "id" or toks[j].text == "::"):
                if toks[j].kind == "id" and name is None:
                    name = toks[j].text
                j += 1
            if j < n and toks[j].text == "{":
                scopes.append(["ns", name or "<anon>", "public"])
                i = j + 1
                continue
            i = j
            continue
        if t.text in ("class", "struct") and (i == 0 or
                                              toks[i - 1].text != "enum"):
            name = None
            j = i + 1
            while j < n and toks[j].text not in ("{", ";", "("):
                if toks[j].kind == "id" and name is None and \
                        toks[j].text not in ("alignas", "final"):
                    name = toks[j].text
                j += 1
            if j < n and toks[j].text == "{":
                scopes.append(["class", name or "<anon>",
                               "public" if t.text == "struct" else "private"])
                i = j + 1
                continue
            i = j
            continue
        if t.text == "{":
            scopes.append(["brace", None, "public"])
            i += 1
            continue
        if t.text == "}":
            if scopes:
                scopes.pop()
            i += 1
            continue
        if (t.kind == "id" and t.text not in CPP_KEYWORDS
                and i + 1 < n and toks[i + 1].text == "("):
            parsed = _parse_function(toks, i, scopes, path, funcs)
            if parsed is not None:
                i = parsed
                continue
        i += 1
    return funcs


def _parse_function(toks, i, scopes, path, funcs):
    """Tries to parse a function declaration/definition whose name is the
    id at `i`. On success appends a FunctionInfo and returns the token
    index to resume at; returns None when this is not a function."""
    n = len(toks)
    name, _left = _collect_name(toks, i)
    close = match_paren(toks, i + 1)
    if close is None:
        return None
    # Scan between the parameter list and the body/semicolon. A ':'
    # introduces a ctor init list, in which a '{' attached to an
    # identifier or '>' is a brace-init, not the body.
    j = close + 1
    init_list = False
    noexcept_ = False
    budget = 400
    while j < n and budget:
        budget -= 1
        tt = toks[j].text
        if tt == ";":
            _record(funcs, toks, i, name, scopes, path, close, False,
                    noexcept_, [])
            return j + 1
        if tt == "=":
            # `= default;` / `= delete;` / pure virtual: declaration-like.
            while j < n and toks[j].text != ";":
                j += 1
            _record(funcs, toks, i, name, scopes, path, close, False,
                    noexcept_, [])
            return j + 1
        if tt == "{":
            prev = toks[j - 1].text
            if init_list and (toks[j - 1].kind == "id" or prev == ">"):
                end = match_paren(toks, j, "{", "}")
                if end is None:
                    return None
                j = end + 1
                continue
            end = match_paren(toks, j, "{", "}")
            if end is None:
                return None
            _record(funcs, toks, i, name, scopes, path, close, True,
                    noexcept_, toks[j + 1:end])
            return end + 1
        if tt == "noexcept":
            noexcept_ = True
        elif tt == ":":
            init_list = True
        elif tt == "(":
            skip = match_paren(toks, j)
            if skip is None:
                return None
            j = skip
        elif tt in (")", "}", "]"):
            return None
        j += 1
    return None


def _record(funcs, toks, i, name, scopes, path, close, is_def, noexcept_,
            body):
    qual = name
    access = "public"
    for kind, scope_name, scope_access in reversed(scopes):
        if kind == "class":
            if "::" not in name:
                qual = "%s::%s" % (scope_name, name)
            access = scope_access
            break
    simple = name.rsplit("::", 1)[-1]
    funcs.append(FunctionInfo(simple, qual, path, toks[i].line,
                              toks[i + 2:close], is_def, noexcept_, body,
                              access))


# ---------------------------------------------------------------------------
# Token engine rules
# ---------------------------------------------------------------------------


def _skip_throw_ranges(body):
    """Indices of body tokens that sit on a throw path (throw ... ;) —
    allocation there is cold by definition."""
    skip = set()
    i = 0
    while i < len(body):
        if body[i].text == "throw":
            j = i
            while j < len(body) and body[j].text != ";":
                skip.add(j)
                j += 1
            i = j
        i += 1
    return skip


def is_hot(func, path):
    if func.is_definition and func.name.endswith("_into"):
        return True
    return func.name in HOT_FILE_FUNCS.get(path, ())


def rule_hot_path_alloc(path, funcs, waivers, out):
    for fn in funcs:
        if not fn.is_definition or not is_hot(fn, path):
            continue
        body = fn.body
        cold = _skip_throw_ranges(body)
        reserved = set()
        for idx in range(len(body) - 3):
            if (body[idx].kind == "id" and body[idx + 1].text == "."
                    and body[idx + 2].text == "reserve"
                    and body[idx + 3].text == "("):
                reserved.add(body[idx].text)
        for idx, t in enumerate(body):
            if idx in cold:
                continue
            line = t.line
            if t.text == "new" and (idx == 0 or
                                    body[idx - 1].text != "operator"):
                _emit(out, waivers, path, line, "hot-path-alloc",
                      "new-expression in hot function %s(); hot paths are "
                      "allocation-free by contract" % fn.name)
            elif (t.kind == "id" and t.text in ALLOC_CALL_NAMES
                  and idx + 1 < len(body) and body[idx + 1].text == "("):
                _emit(out, waivers, path, line, "hot-path-alloc",
                      "%s() allocates in hot function %s()" %
                      (t.text, fn.name))
            elif (t.kind == "id" and t.text in ("push_back", "emplace_back")
                  and idx + 1 < len(body) and body[idx + 1].text == "("
                  and idx >= 2 and body[idx - 1].text in (".", "->")):
                base = body[idx - 2].text
                if base not in reserved:
                    _emit(out, waivers, path, line, "hot-path-alloc",
                          "%s.%s() in hot function %s() without a prior "
                          "%s.reserve()" % (base, t.text, fn.name, base))
            elif (t.text == "std" and idx + 2 < len(body)
                  and body[idx + 1].text == "::"
                  and body[idx + 2].text in ALLOC_TYPE_NAMES):
                # Reference/pointer bindings and nested-name uses
                # (std::vector<T>&, std::vector<T>::iterator) do not
                # allocate — only value declarations and temporaries do.
                after = idx + 3
                if after < len(body) and body[after].text == "<":
                    close_angle = _match_angle(body, after)
                    if close_angle is not None:
                        after = close_angle + 1
                while after < len(body) and body[after].text == "const":
                    after += 1
                if after < len(body) and body[after].text in ("&", "*",
                                                              "::"):
                    continue
                _emit(out, waivers, path, line, "hot-path-alloc",
                      "allocating type std::%s constructed/named in hot "
                      "function %s()" % (body[idx + 2].text, fn.name))


def _unordered_vars(toks):
    """Names declared in this file with an unordered_{map,set} type."""
    names = set()
    for i, t in enumerate(toks):
        if t.kind == "id" and t.text.startswith("unordered_"):
            j = i + 1
            if j < len(toks) and toks[j].text == "<":
                j = _match_angle(toks, j)
                if j is None:
                    continue
                j += 1
            while j < len(toks) and toks[j].text in ("&", "*", "const"):
                j += 1
            if j < len(toks) and toks[j].kind == "id":
                names.add(toks[j].text)
    return names


def _match_angle(toks, i):
    depth = 0
    for j in range(i, len(toks)):
        if toks[j].text == "<":
            depth += 1
        elif toks[j].text == ">":
            depth -= 1
            if depth == 0:
                return j
        elif toks[j].text in (";", "{"):
            return None
    return None


def rule_unordered_float_accum(path, toks, waivers, out):
    unordered = _unordered_vars(toks)
    i = 0
    n = len(toks)
    while i < n:
        if toks[i].text != "for" or i + 1 >= n or toks[i + 1].text != "(":
            i += 1
            continue
        close = match_paren(toks, i + 1)
        if close is None:
            i += 1
            continue
        head = toks[i + 2:close]
        split = _range_for_split(head)
        if split is None:
            i = close + 1
            continue
        loop_vars, range_toks = split
        range_ids = {t.text for t in range_toks if t.kind == "id"}
        if not (range_ids & unordered
                or any(x.startswith("unordered_") for x in range_ids)):
            i = close + 1
            continue
        body_end = close
        if close + 1 < n and toks[close + 1].text == "{":
            body_end = match_paren(toks, close + 1, "{", "}") or close
            body = toks[close + 2:body_end]
        else:
            body_end = close + 1
            while body_end < n and toks[body_end].text != ";":
                body_end += 1
            body = toks[close + 1:body_end]
        stmt_start = 0
        for idx, t in enumerate(body):
            if t.text in (";", "{", "}"):
                stmt_start = idx + 1
            elif t.text in ("+=", "-=", "*=", "/="):
                lhs_ids = {x.text for x in body[stmt_start:idx]
                           if x.kind == "id"}
                if not (lhs_ids & loop_vars):
                    _emit(out, waivers, path, t.line,
                          "unordered-float-accum",
                          "accumulation `%s` into a loop-invariant target "
                          "inside a range-for over an unordered container: "
                          "hash order is nondeterministic and float folds "
                          "do not commute" % t.text)
        i = body_end + 1


def _range_for_split(head):
    """Splits range-for head tokens at the top-level ':'; returns
    (loop-var names, range tokens) or None for a classic for."""
    depth = 0
    for idx, t in enumerate(head):
        if t.text in ("(", "[", "{"):
            depth += 1
        elif t.text in (")", "]", "}"):
            depth -= 1
        elif t.text == ";" and depth == 0:
            return None
        elif t.text == ":" and depth == 0:
            decl = head[:idx]
            loop_vars = set()
            if any(t2.text == "[" for t2 in decl):
                grab = False
                for t2 in decl:
                    if t2.text == "[":
                        grab = True
                    elif t2.text == "]":
                        grab = False
                    elif grab and t2.kind == "id":
                        loop_vars.add(t2.text)
            else:
                ids = [t2.text for t2 in decl if t2.kind == "id"
                       and t2.text not in CPP_KEYWORDS]
                if ids:
                    loop_vars.add(ids[-1])
            return loop_vars, head[idx + 1:]
    return None


# Tokens that can directly precede a *call* to a free function; an
# identifier/type keyword before the name means a declaration instead
# (`extern "C" int rand();`), which is not a use.
_STMT_PREV = {"return", "co_return", "case", "else", "do", "throw",
              "co_await", "co_yield", "and", "or", "not"}


def _is_decl_context(toks, i):
    if i == 0:
        return False
    prev = toks[i - 1]
    return prev.kind == "id" and prev.text not in _STMT_PREV


def rule_nondeterminism(path, toks, waivers, out):
    if not path.startswith(NONDET_DIRS):
        return
    n = len(toks)
    for i, t in enumerate(toks):
        if t.kind != "id":
            continue
        if (t.text == "random_device" and i >= 2
                and toks[i - 1].text == "::" and toks[i - 2].text == "std"):
            _emit(out, waivers, path, t.line, "nondeterminism-sources",
                  "std::random_device: all randomness must flow through "
                  "the seeded stats:: RNG seams")
        elif (t.text in NONDET_FREE_FUNCS
              and i + 1 < n and toks[i + 1].text == "("
              and not _is_decl_context(toks, i)
              and (i == 0 or toks[i - 1].text not in (".", "->"))
              and not (i >= 2 and toks[i - 1].text == "::"
                       and toks[i - 2].text != "std")):
            _emit(out, waivers, path, t.line, "nondeterminism-sources",
                  "%s(): wall-clock/CRT randomness in solver code" % t.text)
        elif (t.text == "now" and i >= 2 and toks[i - 1].text == "::"
              and toks[i - 2].kind == "id"
              and toks[i - 2].text.endswith("_clock")):
            _emit(out, waivers, path, t.line, "nondeterminism-sources",
                  "std::chrono::%s::now(): raw clock read in solver code; "
                  "route timing through obs or waive with a reason"
                  % toks[i - 2].text)


def rule_noexcept_merge(path, toks, funcs, waivers, out):
    if path == PARALLEL_CPP:
        captured = False
        for i, t in enumerate(toks):
            if t.text == "catch" and i + 3 < len(toks) \
                    and toks[i + 1].text == "(" \
                    and toks[i + 2].text == "..." \
                    and toks[i + 3].text == ")":
                close = match_paren(toks, i + 4, "{", "}") \
                    if toks[i + 4].text == "{" else None
                handler = toks[i + 5:close] if close else []
                if any(h.text == "current_exception" for h in handler):
                    captured = True
        if not captured:
            _emit(out, waivers, path, 1, "noexcept-merge",
                  "ThreadPool chunk runner lost its catch(...) handler "
                  "storing std::current_exception() — the documented "
                  "capture point for deterministic error propagation")
        return
    if not path.startswith(OBS_DIR + "/"):
        return
    for fn in funcs:
        if fn.name != "merge" or not fn.is_definition:
            continue
        for line in fn.throw_lines:
            _emit(out, waivers, path, line, "noexcept-merge",
                  "throw-expression inside %s(): shard merges must not "
                  "throw past the pool's capture point" % fn.qual)
        if "Registry" not in fn.qual and not fn.noexcept_:
            _emit(out, waivers, path, fn.line, "noexcept-merge",
                  "per-instrument %s() is not declared noexcept; a "
                  "throwing instrument merge inside a worker would "
                  "std::terminate" % fn.qual)


# ---------------------------------------------------------------------------
# Contract coverage (token index, both engines)
# ---------------------------------------------------------------------------


def audited_param_match(fn):
    params = fn.params
    if not params:
        return False
    # Split at top-level commas.
    groups = [[]]
    depth = 0
    for t in params:
        if t.text in ("(", "<", "[", "{"):
            depth += 1
        elif t.text in (")", ">", "]", "}"):
            depth -= 1
        elif t.text == "," and depth == 0:
            groups.append([])
            continue
        groups[-1].append(t)
    for g in groups:
        text = " ".join(t.text for t in g)
        if AUDIT_PARAM_TYPE_RE.search(text):
            return True
        ids = [t.text for t in g if t.kind == "id"]
        if ("double" in text and ("span" in ids or "vector" in ids)
                and ids and ids[-1] in AUDIT_PARAM_NAMES):
            return True
    return False


def compute_contract_coverage(index, waiver_map):
    """index: {path: [FunctionInfo]}. Returns (entries, findings) where
    entries is the sorted audited set with coverage flags."""
    defs_by_name = {}
    for funcs in index.values():
        for fn in funcs:
            if fn.is_definition:
                defs_by_name.setdefault(fn.name, []).append(fn)

    def covered(fn):
        seen = set()
        frontier = [fn]
        for _ in range(CONTRACT_CALL_DEPTH):
            nxt = []
            for f in frontier:
                if f.has_contract:
                    return True
                for callee in sorted(f.calls):
                    if callee in seen:
                        continue
                    seen.add(callee)
                    nxt.extend(defs_by_name.get(callee, ()))
            if not nxt:
                return False
            frontier = nxt
        return any(f.has_contract for f in frontier)

    audited = {}  # qual -> (decl FunctionInfo)
    for path, funcs in sorted(index.items()):
        if not (path.startswith("src/core/") and path.endswith(".hpp")):
            continue
        for fn in funcs:
            if fn.name.startswith("~") or fn.name == "operator":
                continue
            if fn.access != "public":
                continue  # "public core API" means exactly that
            if audited_param_match(fn):
                audited.setdefault(fn.qual, fn)

    entries = []
    findings = []
    for qual in sorted(audited):
        decl = audited[qual]
        defs = [d for d in defs_by_name.get(qual.rsplit("::", 1)[-1], ())
                if d.qual == qual or "::" not in qual]
        if not defs:  # defaulted / generated: nothing to audit
            continue
        is_covered = any(covered(d) for d in defs)
        waivers = waiver_map.get(decl.path)
        waived = bool(waivers and waivers.covers(decl.line,
                                                 "contract-coverage"))
        if not waived:
            for d in defs:
                dw = waiver_map.get(d.path)
                if dw and dw.covers(d.line, "contract-coverage"):
                    waived = True
                    break
        entries.append({"function": qual, "file": decl.path,
                        "line": decl.line, "covered": is_covered,
                        "waived": waived})
        if not is_covered and not waived:
            findings.append(Finding(
                decl.path, decl.line, "contract-coverage",
                "public core API %s() takes a profile/fractions/loads "
                "parameter but neither it nor its callees state a "
                "NASHLB_EXPECT/ENSURE/INVARIANT" % qual))
    return entries, findings


# ---------------------------------------------------------------------------
# Engine drivers
# ---------------------------------------------------------------------------


def _emit(out, waivers, path, line, rule, message):
    if waivers is not None and waivers.covers(line, rule):
        return
    out.append(Finding(path, line, rule, message))


class TokenEngine:
    """The dependency-free engine: every rule in partial mode plus the
    exact contract-coverage index."""

    name = "tokens"

    def analyze(self, files):
        """files: [(relpath, text)]. Returns (findings, coverage_entries)."""
        findings = []
        index = {}
        waiver_map = {}
        for path, text in files:
            lines = text.split("\n")
            waivers = Waivers(lines)
            waiver_map[path] = waivers
            findings.extend(waivers.missing_reasons(path))
            toks = tokenize(text)
            funcs = index_file(path, toks)
            index[path] = funcs
            rule_hot_path_alloc(path, funcs, waivers, findings)
            rule_unordered_float_accum(path, toks, waivers, findings)
            rule_nondeterminism(path, toks, waivers, findings)
            rule_noexcept_merge(path, toks, funcs, waivers, findings)
        entries, cov_findings = compute_contract_coverage(index, waiver_map)
        findings.extend(cov_findings)
        return findings, entries


class ClangEngine:
    """The precise engine over the real clang AST. Shares the waiver
    layer and the contract-coverage token index with TokenEngine (macros
    and comments are lexical facts); rules 1/2/3/5 run on cursors."""

    name = "clang"

    def __init__(self, cindex, compile_db):
        self.ci = cindex
        self.compile_db = compile_db  # {abs source path: [args]}
        self.index = cindex.Index.create()

    # -- public API ---------------------------------------------------------

    def analyze(self, files):
        token_engine = TokenEngine()
        findings = []
        index = {}
        waiver_map = {}
        for path, text in files:
            lines = text.split("\n")
            waivers = Waivers(lines)
            waiver_map[path] = waivers
            findings.extend(waivers.missing_reasons(path))
            index[path] = index_file(path, tokenize(text))
        entries, cov_findings = compute_contract_coverage(index, waiver_map)
        findings.extend(cov_findings)
        seen_headers = set()
        for path, _text in files:
            if not path.endswith(".cpp"):
                continue
            try:
                tu = self._parse(path)
            except Exception as exc:  # noqa: BLE001 — surface, don't crash
                findings.append(Finding(path, 1, "parse-error",
                                        "clang failed to parse: %s" % exc))
                continue
            findings.extend(self._walk_tu(tu, path, waiver_map,
                                          seen_headers))
        del token_engine
        return findings, entries

    # -- internals ----------------------------------------------------------

    def _parse(self, relpath):
        for abspath, args in self.compile_db.items():
            if abspath.endswith(os.sep + relpath) or abspath == relpath:
                # Contracts must be visible to the AST even though the
                # exported flags build with NASHLB_CHECK=OFF.
                return self.index.parse(
                    abspath, args=args + ["-DNASHLB_CHECK_ENABLED=1"])
        raise RuntimeError("%s not in compile_commands.json" % relpath)

    def _walk_tu(self, tu, main_rel, waiver_map, seen_headers):
        ci = self.ci
        findings = []
        root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

        def rel_of(cursor):
            loc = cursor.location
            if loc.file is None:
                return None
            path = os.path.abspath(loc.file.name)
            if not path.startswith(root + os.sep):
                return None
            return os.path.relpath(path, root).replace(os.sep, "/")

        def waivers_for(rel):
            return waiver_map.get(rel)

        fn_kinds = {ci.CursorKind.FUNCTION_DECL, ci.CursorKind.CXX_METHOD,
                    ci.CursorKind.CONSTRUCTOR, ci.CursorKind.FUNCTION_TEMPLATE}

        def visit(cursor):
            rel = rel_of(cursor)
            if cursor.kind in fn_kinds and cursor.is_definition() \
                    and rel is not None:
                if rel != main_rel and rel in seen_headers:
                    return  # each header function reported once
                self._check_function(cursor, rel, waivers_for(rel), findings)
            for child in cursor.get_children():
                crel = rel_of(child)
                if crel is None and child.location.file is not None:
                    continue  # system headers
                visit(child)

        visit(tu.cursor)
        for rel in {rel_of(c) for c in tu.cursor.get_children()
                    if rel_of(c) is not None}:
            if rel != main_rel:
                seen_headers.add(rel)
        return findings

    def _check_function(self, cursor, rel, waivers, findings):
        ci = self.ci
        name = cursor.spelling
        hot = name.endswith("_into") or \
            name in HOT_FILE_FUNCS.get(rel, ())

        def flag(node, rule, message):
            line = node.location.line if node.location else 1
            _emit(findings, waivers, rel, line, rule, message)

        def in_throw(stack):
            return any(k == ci.CursorKind.CXX_THROW_EXPR for k in stack)

        reserved = set()
        if hot:
            for node in cursor.walk_preorder():
                if node.kind == ci.CursorKind.CALL_EXPR and \
                        node.spelling == "reserve":
                    kids = list(node.get_children())
                    if kids:
                        base = list(kids[0].walk_preorder())
                        for b in base:
                            if b.kind == ci.CursorKind.DECL_REF_EXPR:
                                reserved.add(b.spelling)

        range_float_targets = []

        def walk(node, stack):
            kind = node.kind
            if hot and not in_throw(stack):
                if kind == ci.CursorKind.CXX_NEW_EXPR:
                    flag(node, "hot-path-alloc",
                         "new-expression in hot function %s()" % name)
                elif kind == ci.CursorKind.CALL_EXPR:
                    callee = node.referenced
                    cname = node.spelling
                    if cname in ALLOC_CALL_NAMES:
                        flag(node, "hot-path-alloc",
                             "%s() allocates in hot function %s()"
                             % (cname, name))
                    elif cname in ("push_back", "emplace_back"):
                        kids = list(node.get_children())
                        base_names = set()
                        if kids:
                            for b in kids[0].walk_preorder():
                                if b.kind == ci.CursorKind.DECL_REF_EXPR:
                                    base_names.add(b.spelling)
                        if not (base_names & reserved):
                            flag(node, "hot-path-alloc",
                                 "%s() in hot function %s() without a "
                                 "prior reserve()" % (cname, name))
                    elif callee is not None and \
                            callee.kind == ci.CursorKind.CONSTRUCTOR:
                        parent = callee.semantic_parent
                        if parent is not None and \
                                parent.spelling in ALLOC_TYPE_NAMES:
                            flag(node, "hot-path-alloc",
                                 "std::%s constructed in hot function "
                                 "%s()" % (parent.spelling, name))
            if kind == ci.CursorKind.CXX_FOR_RANGE_STMT:
                kids = list(node.get_children())
                if len(kids) >= 2:
                    range_expr = kids[-2]
                    type_spelling = range_expr.type.spelling
                    if "unordered_map" in type_spelling or \
                            "unordered_set" in type_spelling:
                        loop_var = kids[0].spelling
                        for sub in kids[-1].walk_preorder():
                            if sub.kind == \
                                    ci.CursorKind.COMPOUND_ASSIGNMENT_OPERATOR:
                                subkids = list(sub.get_children())
                                if not subkids:
                                    continue
                                lhs = subkids[0]
                                if lhs.type.spelling not in ("float",
                                                             "double",
                                                             "long double"):
                                    continue
                                refs = {r.spelling for r in
                                        lhs.walk_preorder()
                                        if r.kind ==
                                        ci.CursorKind.DECL_REF_EXPR}
                                if loop_var not in refs:
                                    range_float_targets.append(sub)
            if rel.startswith(NONDET_DIRS):
                if kind in (ci.CursorKind.DECL_REF_EXPR,
                            ci.CursorKind.TYPE_REF) and \
                        node.spelling in ("random_device",):
                    flag(node, "nondeterminism-sources",
                         "std::random_device in solver code")
                elif kind == ci.CursorKind.CALL_EXPR:
                    cname = node.spelling
                    ref = node.referenced
                    parent = ref.semantic_parent if ref is not None else None
                    pspell = parent.spelling if parent is not None else ""
                    if cname in NONDET_FREE_FUNCS and pspell in ("", "std"):
                        flag(node, "nondeterminism-sources",
                             "%s(): wall-clock/CRT randomness in solver "
                             "code" % cname)
                    elif cname == "now" and pspell.endswith("_clock"):
                        flag(node, "nondeterminism-sources",
                             "std::chrono::%s::now() in solver code"
                             % pspell)
            for child in node.get_children():
                walk(child, stack + [kind])

        walk(cursor, [])
        for node in range_float_targets:
            flag(node, "unordered-float-accum",
                 "float accumulation into a loop-invariant target inside "
                 "a range-for over an unordered container")
        if rel.startswith(OBS_DIR + "/") and name == "merge":
            for node in cursor.walk_preorder():
                if node.kind == ci.CursorKind.CXX_THROW_EXPR:
                    flag(node, "noexcept-merge",
                         "throw-expression inside %s()" % name)
            parent = cursor.semantic_parent
            pname = parent.spelling if parent is not None else ""
            if "Registry" not in pname and \
                    cursor.exception_specification_kind not in (
                        ci.ExceptionSpecificationKind.BASIC_NOEXCEPT,
                        ci.ExceptionSpecificationKind.COMPUTED_NOEXCEPT):
                flag(cursor, "noexcept-merge",
                     "per-instrument %s::merge() is not noexcept"
                     % pname)
        if rel == PARALLEL_CPP and name == "run_chunks":
            has_capture = False
            for node in cursor.walk_preorder():
                if node.kind == ci.CursorKind.CXX_CATCH_STMT:
                    kids = list(node.get_children())
                    decls = [k for k in kids
                             if k.kind == ci.CursorKind.VAR_DECL]
                    body = kids[-1] if kids else None
                    if not decls and body is not None:
                        for sub in body.walk_preorder():
                            if sub.spelling == "current_exception":
                                has_capture = True
            if not has_capture:
                flag(cursor, "noexcept-merge",
                     "run_chunks() lost its catch(...)/current_exception "
                     "capture point")


def load_clang_engine(build_dir):
    """Returns a ClangEngine, or None (with a reason) when libclang or the
    compilation database is unavailable."""
    try:
        import clang.cindex as cindex  # noqa: PLC0415 — optional dep
    except ImportError:
        return None, "python clang bindings (clang.cindex) not installed"
    try:
        cindex.Index.create()
    except Exception:  # noqa: BLE001
        found = False
        for cand in ("libclang.so", "libclang.so.1", "libclang-18.so",
                     "libclang-17.so", "libclang-16.so", "libclang-15.so",
                     "libclang-14.so"):
            try:
                cindex.Config.loaded = False
                cindex.Config.set_library_file(cand)
                cindex.Index.create()
                found = True
                break
            except Exception:  # noqa: BLE001
                continue
        if not found:
            return None, "libclang shared library not found"
    db_path = os.path.join(build_dir, "compile_commands.json")
    if not os.path.isfile(db_path):
        return None, "%s not found (configure with cmake first)" % db_path
    with open(db_path, encoding="utf-8") as f:
        raw = json.load(f)
    db = {}
    for entry in raw:
        args = entry.get("arguments")
        if args is None:
            args = entry.get("command", "").split()
        cleaned = []
        skip_next = False
        for a in args[1:]:
            if skip_next:
                skip_next = False
                continue
            if a in ("-c", entry["file"]):
                continue
            if a == "-o":
                skip_next = True
                continue
            cleaned.append(a)
        path = entry["file"]
        if not os.path.isabs(path):
            path = os.path.normpath(os.path.join(entry["directory"], path))
        db[path] = cleaned
    return ClangEngine(cindex, db), None


# ---------------------------------------------------------------------------
# Report + coverage gate
# ---------------------------------------------------------------------------

REPORT_RELPATH = os.path.join("bench_results", "analysis_report.json")


def build_report(engine_name, findings, coverage_entries):
    covered = sum(1 for e in coverage_entries if e["covered"])
    total = len(coverage_entries)
    waived_uncovered = sorted(e["function"] for e in coverage_entries
                              if not e["covered"] and e["waived"])
    percent = round(100.0 * covered / total, 2) if total else 100.0
    rule_counts = {rule: 0 for rule in RULES}
    for f in findings:
        rule_counts[f.rule] = rule_counts.get(f.rule, 0) + 1
    return {
        "schema": 1,
        "engine": engine_name,
        "contract_coverage": {
            "covered": covered,
            "total": total,
            "percent": percent,
            "uncovered": sorted(
                ({"function": e["function"], "file": e["file"],
                  "waived": e["waived"]}
                 for e in coverage_entries if not e["covered"]),
                key=lambda e: e["function"]),
            "waived": waived_uncovered,
        },
        "rules": rule_counts,
    }


def committed_report(root):
    try:
        blob = subprocess.run(
            ["git", "-C", root, "show",
             "HEAD:" + REPORT_RELPATH.replace(os.sep, "/")],
            capture_output=True, text=True, check=True).stdout
        return json.loads(blob)
    except (subprocess.CalledProcessError, OSError, ValueError):
        return None


def coverage_gate(root, report):
    """check_bench-style regression gate: the working tree's contract
    coverage may not drop below the committed report's (same engine)."""
    base = committed_report(root)
    if base is None:
        print("nashlb_analyzer: no committed %s — coverage gate skipped "
              "(run --write-report and commit to arm it)" % REPORT_RELPATH)
        return []
    if base.get("engine") != report["engine"]:
        print("nashlb_analyzer: committed report was produced by the %r "
              "engine, this run used %r — coverage gate skipped"
              % (base.get("engine"), report["engine"]))
        return []
    old = base.get("contract_coverage", {}).get("percent", 0.0)
    new = report["contract_coverage"]["percent"]
    if new + 1e-9 < old:
        return [Finding(
            REPORT_RELPATH, 1, "contract-coverage",
            "contract coverage regressed from %.2f%% to %.2f%%: restore "
            "the dropped NASHLB_EXPECT/ENSURE/INVARIANT (or re-baseline "
            "with --write-report and justify in the PR)" % (old, new))]
    return []


# ---------------------------------------------------------------------------
# Selftest
# ---------------------------------------------------------------------------

SELFTEST_SNIPPETS = [
    # (rule, virtual path, must_trigger, snippet)
    ("hot-path-alloc", "src/core/snippet.cpp", True, """
        namespace std { template <class T> struct vector {
          void push_back(const T&); void reserve(unsigned long); }; }
        void reply_into(double* out, int n) {
          std::vector<double> scratch;
          for (int i = 0; i < n; ++i) out[i] = 0.0;
        }
    """),
    ("hot-path-alloc", "src/core/snippet.cpp", True, """
        struct Buf { void push_back(double); };
        void reply_into(Buf& tmp, int n) {
          for (int i = 0; i < n; ++i) tmp.push_back(1.0);
        }
    """),
    ("hot-path-alloc", "src/core/snippet.cpp", False, """
        struct Buf { void push_back(double); void reserve(unsigned long); };
        void reply_into(Buf& tmp, unsigned long n) {
          tmp.reserve(n);
          for (unsigned long i = 0; i < n; ++i) tmp.push_back(1.0);
        }
    """),
    ("hot-path-alloc", "src/core/snippet.cpp", False, """
        namespace std { template <class T> struct vector {
          void push_back(const T&); }; }
        std::vector<double> setup_profile(int n) {
          std::vector<double> out;
          for (int i = 0; i < n; ++i) out.push_back(0.0);
          return out;
        }
    """),
    ("hot-path-alloc", "src/core/snippet.cpp", False, """
        struct err { err(const char*); };
        void reply_into(double* out, int n) {
          if (n < 0) throw err("negative");
          for (int i = 0; i < n; ++i) out[i] = 0.0;
        }
    """),
    ("hot-path-alloc", "src/core/snippet.cpp", False, """
        namespace std { template <class T> struct vector { T& back(); }; }
        struct Ws { std::vector<double> scratch; };
        void reply_into(Ws& ws, int n) {
          std::vector<double>& buf = ws.scratch;
          for (int i = 0; i < n; ++i) buf.back() = 0.0;
        }
    """),
    ("unordered-float-accum", "src/core/snippet.cpp", True, """
        namespace std { template <class K, class V> struct unordered_map {
          struct value_type { K first; V second; };
          value_type* begin(); value_type* end(); }; }
        double total(std::unordered_map<int, double>& m) {
          double sum = 0.0;
          for (auto& kv : m) sum += kv.second;
          return sum;
        }
    """),
    ("unordered-float-accum", "src/core/snippet.cpp", False, """
        namespace std { template <class K, class V> struct unordered_map {
          struct value_type { K first; V second; };
          value_type* begin(); value_type* end(); };
          template <class T> struct vector { T* begin(); T* end(); }; }
        double merge_per_key(std::unordered_map<int, double>& m,
                             double* slots) {
          for (auto& kv : m) slots[kv.first] += kv.second;
          double sum = 0.0;
          std::vector<double> v;
          for (double x : v) sum += x;
          return sum;
        }
    """),
    ("nondeterminism-sources", "src/core/snippet.cpp", True, """
        namespace std { struct random_device { unsigned operator()(); }; }
        unsigned seed_badly() { std::random_device rd; return rd(); }
    """),
    ("nondeterminism-sources", "src/des/snippet.cpp", True, """
        namespace std { namespace chrono { struct steady_clock {
          static int now(); }; } }
        int stamp() { return std::chrono::steady_clock::now(); }
    """),
    ("nondeterminism-sources", "src/core/snippet.cpp", True, """
        extern "C" int rand();
        int jitter() { return rand(); }
    """),
    ("nondeterminism-sources", "src/core/snippet.cpp", False, """
        struct Xoshiro256 { unsigned long next(); };
        unsigned long draw(Xoshiro256& rng) { return rng.next(); }
        struct Sim { double now() const; };
        double sim_time(const Sim& sim) { return sim.now(); }
    """),
    ("nondeterminism-sources", "src/stats/snippet.cpp", False, """
        namespace std { struct random_device { unsigned operator()(); }; }
        unsigned entropy() { std::random_device rd; return rd(); }
    """),
    ("nondeterminism-sources", "src/core/snippet.cpp", False, """
        namespace std { namespace chrono { struct steady_clock {
          static int now(); }; } }
        int stamp() {
          // wall-clock feeds the trace only
          return std::chrono::steady_clock::now();  // nashlb-analyzer: allow(nondeterminism-sources) -- trace-only wall clock
        }
    """),
    ("contract-coverage", "src/core/snippet.hpp", True, """
        struct StrategyProfile {};
        double gap(const StrategyProfile& s, int user) { return 0.0; }
    """),
    ("contract-coverage", "src/core/snippet.hpp", False, """
        struct StrategyProfile {};
        double gap(const StrategyProfile& s, int user) {
          NASHLB_EXPECT(user >= 0, "user %d", user);
          return 0.0;
        }
    """),
    ("contract-coverage", "src/core/snippet.hpp", False, """
        struct StrategyProfile {};
        void check_row(int user) { NASHLB_EXPECT(user >= 0, "u %d", user); }
        double gap(const StrategyProfile& s, int user) {
          check_row(user);
          return 0.0;
        }
    """),
    ("contract-coverage", "src/core/snippet.hpp", False, """
        struct StrategyProfile {};
        class LoadState {
         public:
          void rebuild(const StrategyProfile& s) {
            NASHLB_EXPECT(true, "reachable");
          }
         private:
          void check_dimensions(const StrategyProfile& s) {}
        };
    """),
    ("noexcept-merge", "src/obs/snippet.hpp", True, """
        struct Shard {};
        struct EnabledCounter {
          void merge(const EnabledCounter&) { value_ += 1; }
          long value_ = 0;
        };
    """),
    ("noexcept-merge", "src/obs/snippet.hpp", True, """
        struct bad {};
        struct EnabledTimer {
          void merge(const EnabledTimer& o) noexcept(false) {
            if (o.total_ < 0) throw bad{};
            total_ += o.total_;
          }
          double total_ = 0;
        };
    """),
    ("noexcept-merge", "src/obs/snippet.hpp", False, """
        struct EnabledCounter {
          void merge(const EnabledCounter&) noexcept { value_ += 1; }
          long value_ = 0;
        };
        struct EnabledRegistry {
          void merge(const EnabledRegistry&) {}
        };
    """),
    ("waiver-missing-reason", "src/core/snippet.cpp", True, """
        namespace std { struct random_device { unsigned operator()(); }; }
        unsigned seed_badly() {
          std::random_device rd;  // nashlb-analyzer: allow(nondeterminism-sources)
          return rd();
        }
    """),
]


def run_selftest(engines):
    """Every snippet must trigger (or not) its rule under every engine.
    Returns an error string or None."""
    for engine in engines:
        for rule, vpath, must_trigger, snippet in SELFTEST_SNIPPETS:
            if engine.name == "clang" and rule in ("contract-coverage",
                                                   "waiver-missing-reason"):
                # lexical rules: identical code path in both engines
                pass
            findings, _cov = engine.analyze([(vpath, snippet)])
            hits = [f for f in findings if f.rule == rule]
            if must_trigger and not hits:
                return ("selftest[%s]: rule %s did not fire on its "
                        "must-trigger snippet:\n%s"
                        % (engine.name, rule, snippet))
            if not must_trigger and hits:
                return ("selftest[%s]: rule %s false-positive on its "
                        "must-not-trigger snippet (%s):\n%s"
                        % (engine.name, rule, hits[0], snippet))
    return None


# ---------------------------------------------------------------------------
# Main
# ---------------------------------------------------------------------------


def collect_tree(root):
    files = []
    src = os.path.join(root, "src")
    for base, _dirs, names in os.walk(src):
        for name in sorted(names):
            if name.endswith((".cpp", ".hpp")):
                path = os.path.join(base, name)
                rel = os.path.relpath(path, root).replace(os.sep, "/")
                with open(path, encoding="utf-8") as f:
                    files.append((rel, f.read()))
    return sorted(files)


def main(argv=None):
    ap = argparse.ArgumentParser(add_help=True)
    ap.add_argument("root", nargs="?", default=None)
    ap.add_argument("build", nargs="?", default=None)
    ap.add_argument("--engine", choices=("auto", "tokens", "clang"),
                    default="auto")
    ap.add_argument("--write-report", action="store_true")
    ap.add_argument("--selftest-only", action="store_true")
    ap.add_argument("--no-selftest", action="store_true")
    ap.add_argument("--check-file", action="append", default=[],
                    metavar="REAL:VIRTUAL")
    args = ap.parse_args(argv)

    root = args.root or os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))
    build = args.build or os.path.join(root, "build")

    clang_engine = None
    clang_reason = "engine forced to tokens"
    if args.engine in ("auto", "clang"):
        clang_engine, clang_reason = load_clang_engine(build)
        if clang_engine is None and args.engine == "clang":
            print("nashlb_analyzer: FAIL: --engine clang but %s"
                  % clang_reason, file=sys.stderr)
            return 1
    engine = clang_engine or TokenEngine()
    partial = clang_engine is None

    if not args.no_selftest:
        engines = [TokenEngine()]
        if clang_engine is not None:
            engines.append(clang_engine)
        err = run_selftest(engines)
        if err:
            print("nashlb_analyzer: FAIL: %s" % err, file=sys.stderr)
            return 1
        if args.selftest_only:
            print("nashlb_analyzer: selftest OK (%d snippets, engines: %s)"
                  % (len(SELFTEST_SNIPPETS),
                     ", ".join(e.name for e in engines)))
            return 0

    if args.check_file:
        files = []
        for spec in args.check_file:
            real, _sep, virtual = spec.partition(":")
            with open(real, encoding="utf-8") as f:
                files.append((virtual or real, f.read()))
        findings, _cov = engine.analyze(files)
        for f in sorted(findings, key=Finding.key):
            print(f)
        return 1 if findings else 0

    files = collect_tree(root)
    findings, coverage_entries = engine.analyze(files)
    report = build_report(engine.name, findings, coverage_entries)
    findings.extend(coverage_gate(root, report))

    if args.write_report:
        path = os.path.join(root, REPORT_RELPATH)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w", encoding="utf-8") as f:
            json.dump(report, f, indent=2, sort_keys=True)
            f.write("\n")
        print("nashlb_analyzer: wrote %s (engine=%s, coverage %.2f%%)"
              % (REPORT_RELPATH, engine.name,
                 report["contract_coverage"]["percent"]))

    if findings:
        for f in sorted(findings, key=Finding.key):
            print("nashlb_analyzer: FAIL: %s" % f, file=sys.stderr)
        print("nashlb_analyzer: %d finding(s) [engine=%s]"
              % (len(findings), engine.name), file=sys.stderr)
        return 1

    cov = report["contract_coverage"]
    print("nashlb_analyzer: OK — %d files, 5 rules, contract coverage "
          "%d/%d (%.2f%%) [engine=%s]"
          % (len(files), cov["covered"], cov["total"], cov["percent"],
             engine.name))
    if partial:
        print("nashlb_analyzer: SKIP: %s — token engine ran all rules in "
              "partial mode, clang AST pass unavailable" % clang_reason)
        return SKIP
    return 0


if __name__ == "__main__":
    sys.exit(main())
