#!/bin/sh
# Documentation drift check, wired as a ctest (see tests/CMakeLists.txt).
#
# Fails if:
#   * a src/<module>/ directory has no `<module>` row in README.md's
#     Architecture table;
#   * docs/OBSERVABILITY.md, docs/STATIC_ANALYSIS.md or docs/SCALING.md
#     is missing, or README.md does not link it.
#
# Usage: tools/check_docs.sh [repo-root]   (default: script's parent dir)
set -u

root=${1:-$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)}
readme="$root/README.md"
status=0

fail() {
    echo "check_docs: FAIL: $1" >&2
    status=1
}

[ -f "$readme" ] || { echo "check_docs: FAIL: no README.md at $root" >&2; exit 1; }

# Every module directory under src/ must be documented in the README
# architecture table (a row containing the backquoted module name).
for dir in "$root"/src/*/; do
    module=$(basename "$dir")
    if ! grep -q "| \`$module\`" "$readme"; then
        fail "src/$module/ has no \`$module\` row in README.md's Architecture table"
    fi
done

# The observability, static-analysis and scaling docs must exist and
# be reachable from the README.
for doc in OBSERVABILITY STATIC_ANALYSIS SCALING; do
    if [ ! -f "$root/docs/$doc.md" ]; then
        fail "docs/$doc.md is missing"
    elif ! grep -q "docs/$doc.md" "$readme"; then
        fail "README.md does not link docs/$doc.md"
    fi
done

# The observability doc must describe every exported instrument family;
# new sections guard against the doc silently lagging the obs layer.
for section in "## Histograms" "## Span tracing" "## Sharded registries" \
               "## Event journal" "## Convergence telemetry" \
               "## Run manifests & nashlb-report"; do
    if [ -f "$root/docs/OBSERVABILITY.md" ] && \
       ! grep -q "^$section" "$root/docs/OBSERVABILITY.md"; then
        fail "docs/OBSERVABILITY.md is missing its \"$section\" section"
    fi
done

# The static-analysis doc must describe every gate check_all runs; the
# analyzer sections guard against the doc silently lagging the tools.
for section in "## Semantic analysis (\`nashlb-analyzer\`)" \
               "## GCC -fanalyzer gate"; do
    if [ -f "$root/docs/STATIC_ANALYSIS.md" ] && \
       ! grep -qF "$section" "$root/docs/STATIC_ANALYSIS.md"; then
        fail "docs/STATIC_ANALYSIS.md is missing its \"$section\" section"
    fi
done

# The scaling doc must keep the sections the class-aggregation layer
# and its certificate are specified by.
for section in "## Class construction" "## The symmetric within-class reply" \
               "## The eps-Nash bound" "## Choosing eps_phi and K"; do
    if [ -f "$root/docs/SCALING.md" ] && \
       ! grep -q "^$section" "$root/docs/SCALING.md"; then
        fail "docs/SCALING.md is missing its \"$section\" section"
    fi
done

if [ "$status" -eq 0 ]; then
    echo "check_docs: OK ($(ls -d "$root"/src/*/ | wc -l | tr -d ' ') modules documented)"
fi
exit "$status"
