#!/bin/sh
# ThreadSanitizer check for the parallel execution layer.
#
# Configures a separate build tree (build-tsan/) with
# -DNASHLB_SANITIZE=thread and runs the test binaries that exercise
# util::ThreadPool concurrency under TSan:
#
#   test_util      the pool itself (chunk scheduling, reuse, exception
#                  propagation across workers);
#   test_core      pooled Jacobi rounds writing disjoint profile rows and
#                  the per-user reduction arrays;
#   test_system    pooled DES replications with per-replication metrics
#                  shards (test_replication lives in this binary).
#
# The determinism story ("bitwise identical at any thread count") rests
# on the claim that workers touch disjoint state between the fork and
# the join — precisely the claim TSan can falsify. A clean pass plus the
# bitwise tests is the PR's whole evidence chain.
#
# Exits 77 (ctest SKIP convention) when the toolchain cannot build and
# run a TSan binary at all — same convention as check_tidy/check_format.
#
# Usage: tools/check_tsan.sh [repo-root]   (default: script's parent dir)
set -eu

root=${1:-$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)}
build="$root/build-tsan"

# Probe: can this toolchain compile, link and *run* -fsanitize=thread?
# (Some kernels/containers break TSan at startup even when it links.)
probe_dir=$(mktemp -d)
trap 'rm -rf "$probe_dir"' EXIT
cat > "$probe_dir/probe.cpp" << 'EOF'
#include <thread>
int main() {
  int x = 0;
  std::thread t([&] { x = 1; });
  t.join();
  return x - 1;
}
EOF
cxx=${CXX:-c++}
if ! "$cxx" -fsanitize=thread -std=c++20 "$probe_dir/probe.cpp" \
     -o "$probe_dir/probe" 2> /dev/null || ! "$probe_dir/probe"; then
    echo "check_tsan: SKIP: toolchain cannot build+run -fsanitize=thread"
    exit 77
fi

cmake -B "$build" -S "$root" \
  -DNASHLB_SANITIZE=thread \
  -DNASHLB_BUILD_BENCH=OFF \
  -DNASHLB_BUILD_EXAMPLES=OFF
cmake --build "$build" --target test_util --target test_core \
  --target test_system -j "$(nproc 2> /dev/null || echo 4)"

# second_deadlock_stack costs nothing and makes lock-order reports
# readable; halt_on_error is already the default via
# -fno-sanitize-recover=all.
TSAN_OPTIONS=second_deadlock_stack=1 "$build/tests/test_util"
TSAN_OPTIONS=second_deadlock_stack=1 "$build/tests/test_core"
TSAN_OPTIONS=second_deadlock_stack=1 "$build/tests/test_system"

echo "check_tsan: OK (test_util + test_core + test_system clean under" \
     "ThreadSanitizer)"
