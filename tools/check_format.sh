#!/bin/sh
# Check-only formatting gate: clang-format --dry-run over every
# first-party source against the repo's .clang-format. Never rewrites
# files — run `clang-format -i` yourself to apply. Registered as the
# `check_format` ctest so tidy fixes can't drift the formatting.
#
# Exit codes: 0 clean, 1 needs formatting, 77 skipped (no clang-format
# on PATH; ctest maps 77 to SKIP via SKIP_RETURN_CODE).
#
# Usage: tools/check_format.sh [repo-root]
set -u

root=${1:-$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)}

fmt=""
for cand in clang-format clang-format-18 clang-format-17 clang-format-16 \
            clang-format-15 clang-format-14; do
    if command -v "$cand" > /dev/null 2>&1; then
        fmt=$cand
        break
    fi
done
if [ -z "$fmt" ]; then
    echo "check_format: SKIP: no clang-format on PATH" >&2
    exit 77
fi

files=$(find "$root/src" "$root/tests" "$root/bench" "$root/examples" \
        \( -name '*.cpp' -o -name '*.hpp' \) 2> /dev/null | sort)
[ -n "$files" ] || { echo "check_format: FAIL: no sources found" >&2; exit 1; }

if echo "$files" | xargs "$fmt" --dry-run --Werror --style=file 2>&1; then
    echo "check_format: OK ($(echo "$files" | wc -l | tr -d ' ') files)"
    exit 0
fi
echo "check_format: FAIL: run '$fmt -i' on the files above" >&2
exit 1
