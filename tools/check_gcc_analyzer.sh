#!/bin/sh
# GCC -fanalyzer gate over the solver core (ctest: check_gcc_analyzer).
#
# Runs GCC's interprocedural path-sensitive analyzer over every .cpp in
# src/core and src/util — the layers whose pointer/lifetime bugs would
# corrupt solves silently — so the tree has real static analysis even on
# boxes without LLVM (clang-tidy and the nashlb-analyzer clang engine
# both SKIP there; see docs/STATIC_ANALYSIS.md).
#
# GCC's C++ analyzer support is explicitly experimental: findings are
# triaged into the suppression table below instead of being blanket-
# disabled, so a *new* warning id or a warning in a new file still
# fails the gate. Each entry records file, warning flag, and why it is
# a false positive.
#
# Exit: 0 clean (or all findings suppressed), 1 unsuppressed finding,
# 77 when g++ or -fanalyzer is unavailable (ctest SKIP).

set -u

root="${1:-$(cd "$(dirname "$0")/.." && pwd)}"
cd "$root" || exit 1

GXX="${CXX:-g++}"

if ! command -v "$GXX" >/dev/null 2>&1; then
  echo "check_gcc_analyzer: SKIP: no C++ compiler ($GXX)"
  exit 77
fi

# Probe: -fanalyzer must exist and accept C++ input on this toolchain.
probe_dir=$(mktemp -d) || exit 1
trap 'rm -rf "$probe_dir"' EXIT
printf 'int main() { return 0; }\n' > "$probe_dir/probe.cpp"
if ! "$GXX" -std=c++20 -fanalyzer -fsyntax-only "$probe_dir/probe.cpp" \
    >/dev/null 2>&1; then
  echo "check_gcc_analyzer: SKIP: $GXX does not support -fanalyzer on C++"
  exit 77
fi

# Triaged false positives: "<file-substring>|<warning-flag>|<why>".
# A diagnostic matching file AND flag is suppressed (and counted); any
# other analyzer diagnostic fails the gate.
suppressions="\
src/core/cost.cpp|-Wanalyzer-use-of-uninitialized-value|GCC 12 cannot see that std::vector's value-initialization writes every element through std::allocator; the 'uninitialized' read it traces into computer_response_times is vector storage the ctor zeroed (known experimental-C++ analyzer limitation)"

log="$probe_dir/diag.log"
status=0
files=0
for f in src/core/*.cpp src/util/*.cpp; do
  [ -e "$f" ] || continue
  files=$((files + 1))
  if ! "$GXX" -std=c++20 -Isrc -fanalyzer -c "$f" -o /dev/null \
      2>> "$log"; then
    echo "check_gcc_analyzer: FAIL: $f does not compile under -fanalyzer" >&2
    status=1
  fi
done

# One diagnostic per "warning:" line; the event traces GCC prints after
# each are context, not separate findings.
suppressed=0
findings=0
while IFS= read -r line; do
  case "$line" in
    *": warning: "*"[-Wanalyzer-"*) ;;
    *) continue ;;
  esac
  findings=$((findings + 1))
  matched=0
  old_ifs="$IFS"; IFS='
'
  for entry in $suppressions; do
    IFS="$old_ifs"
    sfile=${entry%%|*}
    rest=${entry#*|}
    sflag=${rest%%|*}
    case "$line" in
      *"$sfile"*"[$sflag]"*)
        matched=1
        suppressed=$((suppressed + 1))
        break
        ;;
    esac
  done
  IFS="$old_ifs"
  if [ "$matched" -eq 0 ]; then
    echo "check_gcc_analyzer: FAIL: unsuppressed analyzer finding:" >&2
    echo "  $line" >&2
    status=1
  fi
done < "$log"

if [ "$status" -ne 0 ]; then
  echo "check_gcc_analyzer: FAIL ($files files, $findings findings," \
    "$suppressed suppressed)" >&2
  exit 1
fi
echo "check_gcc_analyzer: OK — $files files under -fanalyzer," \
  "$findings findings, all $suppressed triaged as known false positives"
exit 0
